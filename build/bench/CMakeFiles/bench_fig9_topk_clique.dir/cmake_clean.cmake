file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_topk_clique.dir/bench_fig9_topk_clique.cc.o"
  "CMakeFiles/bench_fig9_topk_clique.dir/bench_fig9_topk_clique.cc.o.d"
  "bench_fig9_topk_clique"
  "bench_fig9_topk_clique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_topk_clique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
