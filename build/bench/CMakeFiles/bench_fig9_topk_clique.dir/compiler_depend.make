# Empty compiler generated dependencies file for bench_fig9_topk_clique.
# This may be replaced when dependencies are built.
