# Empty dependencies file for bench_fig11_scal_gcm.
# This may be replaced when dependencies are built.
