file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_scal_gcm.dir/bench_fig11_scal_gcm.cc.o"
  "CMakeFiles/bench_fig11_scal_gcm.dir/bench_fig11_scal_gcm.cc.o.d"
  "bench_fig11_scal_gcm"
  "bench_fig11_scal_gcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_scal_gcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
