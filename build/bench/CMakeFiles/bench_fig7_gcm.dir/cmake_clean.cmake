file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_gcm.dir/bench_fig7_gcm.cc.o"
  "CMakeFiles/bench_fig7_gcm.dir/bench_fig7_gcm.cc.o.d"
  "bench_fig7_gcm"
  "bench_fig7_gcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_gcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
