# Empty dependencies file for bench_fig7_gcm.
# This may be replaced when dependencies are built.
