file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_scal_ghm.dir/bench_fig12_scal_ghm.cc.o"
  "CMakeFiles/bench_fig12_scal_ghm.dir/bench_fig12_scal_ghm.cc.o.d"
  "bench_fig12_scal_ghm"
  "bench_fig12_scal_ghm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_scal_ghm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
