# Empty dependencies file for bench_fig12_scal_ghm.
# This may be replaced when dependencies are built.
