# Empty compiler generated dependencies file for bench_table2_scal_mcc.
# This may be replaced when dependencies are built.
