file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_scal_mcc.dir/bench_table2_scal_mcc.cc.o"
  "CMakeFiles/bench_table2_scal_mcc.dir/bench_table2_scal_mcc.cc.o.d"
  "bench_table2_scal_mcc"
  "bench_table2_scal_mcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_scal_mcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
