# Empty dependencies file for bench_fig2_special_graphs.
# This may be replaced when dependencies are built.
