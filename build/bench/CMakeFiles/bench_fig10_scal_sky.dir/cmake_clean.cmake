file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_scal_sky.dir/bench_fig10_scal_sky.cc.o"
  "CMakeFiles/bench_fig10_scal_sky.dir/bench_fig10_scal_sky.cc.o.d"
  "bench_fig10_scal_sky"
  "bench_fig10_scal_sky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_scal_sky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
