# Empty dependencies file for bench_fig10_scal_sky.
# This may be replaced when dependencies are built.
