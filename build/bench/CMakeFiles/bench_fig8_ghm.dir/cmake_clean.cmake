file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ghm.dir/bench_fig8_ghm.cc.o"
  "CMakeFiles/bench_fig8_ghm.dir/bench_fig8_ghm.cc.o.d"
  "bench_fig8_ghm"
  "bench_fig8_ghm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ghm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
