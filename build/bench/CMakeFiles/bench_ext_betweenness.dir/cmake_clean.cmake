file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_betweenness.dir/bench_ext_betweenness.cc.o"
  "CMakeFiles/bench_ext_betweenness.dir/bench_ext_betweenness.cc.o.d"
  "bench_ext_betweenness"
  "bench_ext_betweenness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_betweenness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
