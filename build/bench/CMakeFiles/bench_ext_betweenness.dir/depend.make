# Empty dependencies file for bench_ext_betweenness.
# This may be replaced when dependencies are built.
