file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_synthetic.dir/bench_fig6_synthetic.cc.o"
  "CMakeFiles/bench_fig6_synthetic.dir/bench_fig6_synthetic.cc.o.d"
  "bench_fig6_synthetic"
  "bench_fig6_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
