file(REMOVE_RECURSE
  "CMakeFiles/community_cliques.dir/community_cliques.cpp.o"
  "CMakeFiles/community_cliques.dir/community_cliques.cpp.o.d"
  "community_cliques"
  "community_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
