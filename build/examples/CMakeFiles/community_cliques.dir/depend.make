# Empty dependencies file for community_cliques.
# This may be replaced when dependencies are built.
