
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/case_study.cpp" "examples/CMakeFiles/case_study.dir/case_study.cpp.o" "gcc" "examples/CMakeFiles/case_study.dir/case_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datasets/CMakeFiles/nsky_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/clique/CMakeFiles/nsky_clique.dir/DependInfo.cmake"
  "/root/repo/build/src/centrality/CMakeFiles/nsky_centrality.dir/DependInfo.cmake"
  "/root/repo/build/src/setjoin/CMakeFiles/nsky_setjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nsky_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nsky_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsky_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
