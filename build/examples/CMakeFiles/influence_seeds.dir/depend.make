# Empty dependencies file for influence_seeds.
# This may be replaced when dependencies are built.
