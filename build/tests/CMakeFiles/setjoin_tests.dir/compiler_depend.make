# Empty compiler generated dependencies file for setjoin_tests.
# This may be replaced when dependencies are built.
