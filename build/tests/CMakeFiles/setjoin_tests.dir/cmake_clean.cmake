file(REMOVE_RECURSE
  "CMakeFiles/setjoin_tests.dir/setjoin/containment_join_test.cc.o"
  "CMakeFiles/setjoin_tests.dir/setjoin/containment_join_test.cc.o.d"
  "CMakeFiles/setjoin_tests.dir/setjoin/records_test.cc.o"
  "CMakeFiles/setjoin_tests.dir/setjoin/records_test.cc.o.d"
  "CMakeFiles/setjoin_tests.dir/setjoin/skyline_via_join_test.cc.o"
  "CMakeFiles/setjoin_tests.dir/setjoin/skyline_via_join_test.cc.o.d"
  "setjoin_tests"
  "setjoin_tests.pdb"
  "setjoin_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setjoin_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
