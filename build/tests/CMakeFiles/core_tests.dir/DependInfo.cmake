
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/base_sky_test.cc" "tests/CMakeFiles/core_tests.dir/core/base_sky_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/base_sky_test.cc.o.d"
  "/root/repo/tests/core/bloom_test.cc" "tests/CMakeFiles/core_tests.dir/core/bloom_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/bloom_test.cc.o.d"
  "/root/repo/tests/core/domination_test.cc" "tests/CMakeFiles/core_tests.dir/core/domination_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/domination_test.cc.o.d"
  "/root/repo/tests/core/dynamic_skyline_test.cc" "tests/CMakeFiles/core_tests.dir/core/dynamic_skyline_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/dynamic_skyline_test.cc.o.d"
  "/root/repo/tests/core/equivalence_test.cc" "tests/CMakeFiles/core_tests.dir/core/equivalence_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/equivalence_test.cc.o.d"
  "/root/repo/tests/core/filter_phase_test.cc" "tests/CMakeFiles/core_tests.dir/core/filter_phase_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/filter_phase_test.cc.o.d"
  "/root/repo/tests/core/filter_refine_test.cc" "tests/CMakeFiles/core_tests.dir/core/filter_refine_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/filter_refine_test.cc.o.d"
  "/root/repo/tests/core/special_graphs_test.cc" "tests/CMakeFiles/core_tests.dir/core/special_graphs_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/special_graphs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datasets/CMakeFiles/nsky_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/clique/CMakeFiles/nsky_clique.dir/DependInfo.cmake"
  "/root/repo/build/src/centrality/CMakeFiles/nsky_centrality.dir/DependInfo.cmake"
  "/root/repo/build/src/setjoin/CMakeFiles/nsky_setjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nsky_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nsky_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsky_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
