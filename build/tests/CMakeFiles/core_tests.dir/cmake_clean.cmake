file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/base_sky_test.cc.o"
  "CMakeFiles/core_tests.dir/core/base_sky_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/bloom_test.cc.o"
  "CMakeFiles/core_tests.dir/core/bloom_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/domination_test.cc.o"
  "CMakeFiles/core_tests.dir/core/domination_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/dynamic_skyline_test.cc.o"
  "CMakeFiles/core_tests.dir/core/dynamic_skyline_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/equivalence_test.cc.o"
  "CMakeFiles/core_tests.dir/core/equivalence_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/filter_phase_test.cc.o"
  "CMakeFiles/core_tests.dir/core/filter_phase_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/filter_refine_test.cc.o"
  "CMakeFiles/core_tests.dir/core/filter_refine_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/special_graphs_test.cc.o"
  "CMakeFiles/core_tests.dir/core/special_graphs_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
