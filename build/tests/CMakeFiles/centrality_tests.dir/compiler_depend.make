# Empty compiler generated dependencies file for centrality_tests.
# This may be replaced when dependencies are built.
