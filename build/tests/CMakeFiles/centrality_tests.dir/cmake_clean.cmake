file(REMOVE_RECURSE
  "CMakeFiles/centrality_tests.dir/centrality/betweenness_test.cc.o"
  "CMakeFiles/centrality_tests.dir/centrality/betweenness_test.cc.o.d"
  "CMakeFiles/centrality_tests.dir/centrality/bfs_test.cc.o"
  "CMakeFiles/centrality_tests.dir/centrality/bfs_test.cc.o.d"
  "CMakeFiles/centrality_tests.dir/centrality/closeness_test.cc.o"
  "CMakeFiles/centrality_tests.dir/centrality/closeness_test.cc.o.d"
  "CMakeFiles/centrality_tests.dir/centrality/greedy_test.cc.o"
  "CMakeFiles/centrality_tests.dir/centrality/greedy_test.cc.o.d"
  "CMakeFiles/centrality_tests.dir/centrality/group_test.cc.o"
  "CMakeFiles/centrality_tests.dir/centrality/group_test.cc.o.d"
  "CMakeFiles/centrality_tests.dir/centrality/lemma_test.cc.o"
  "CMakeFiles/centrality_tests.dir/centrality/lemma_test.cc.o.d"
  "centrality_tests"
  "centrality_tests.pdb"
  "centrality_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centrality_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
