# Empty dependencies file for clique_tests.
# This may be replaced when dependencies are built.
