file(REMOVE_RECURSE
  "CMakeFiles/clique_tests.dir/clique/max_clique_test.cc.o"
  "CMakeFiles/clique_tests.dir/clique/max_clique_test.cc.o.d"
  "CMakeFiles/clique_tests.dir/clique/nei_sky_mc_test.cc.o"
  "CMakeFiles/clique_tests.dir/clique/nei_sky_mc_test.cc.o.d"
  "CMakeFiles/clique_tests.dir/clique/topk_test.cc.o"
  "CMakeFiles/clique_tests.dir/clique/topk_test.cc.o.d"
  "clique_tests"
  "clique_tests.pdb"
  "clique_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clique_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
