file(REMOVE_RECURSE
  "CMakeFiles/datasets_tests.dir/datasets/datasets_test.cc.o"
  "CMakeFiles/datasets_tests.dir/datasets/datasets_test.cc.o.d"
  "datasets_tests"
  "datasets_tests.pdb"
  "datasets_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datasets_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
