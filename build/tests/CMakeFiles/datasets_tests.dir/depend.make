# Empty dependencies file for datasets_tests.
# This may be replaced when dependencies are built.
