# CMake generated Testfile for 
# Source directory: /root/repo/src/clique
# Build directory: /root/repo/build/src/clique
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
