file(REMOVE_RECURSE
  "libnsky_clique.a"
)
