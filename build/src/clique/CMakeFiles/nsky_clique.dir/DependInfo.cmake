
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clique/max_clique.cc" "src/clique/CMakeFiles/nsky_clique.dir/max_clique.cc.o" "gcc" "src/clique/CMakeFiles/nsky_clique.dir/max_clique.cc.o.d"
  "/root/repo/src/clique/nei_sky_mc.cc" "src/clique/CMakeFiles/nsky_clique.dir/nei_sky_mc.cc.o" "gcc" "src/clique/CMakeFiles/nsky_clique.dir/nei_sky_mc.cc.o.d"
  "/root/repo/src/clique/topk.cc" "src/clique/CMakeFiles/nsky_clique.dir/topk.cc.o" "gcc" "src/clique/CMakeFiles/nsky_clique.dir/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nsky_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nsky_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsky_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
