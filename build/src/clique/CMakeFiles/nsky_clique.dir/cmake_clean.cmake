file(REMOVE_RECURSE
  "CMakeFiles/nsky_clique.dir/max_clique.cc.o"
  "CMakeFiles/nsky_clique.dir/max_clique.cc.o.d"
  "CMakeFiles/nsky_clique.dir/nei_sky_mc.cc.o"
  "CMakeFiles/nsky_clique.dir/nei_sky_mc.cc.o.d"
  "CMakeFiles/nsky_clique.dir/topk.cc.o"
  "CMakeFiles/nsky_clique.dir/topk.cc.o.d"
  "libnsky_clique.a"
  "libnsky_clique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsky_clique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
