# Empty dependencies file for nsky_clique.
# This may be replaced when dependencies are built.
