file(REMOVE_RECURSE
  "CMakeFiles/nsky_graph.dir/builder.cc.o"
  "CMakeFiles/nsky_graph.dir/builder.cc.o.d"
  "CMakeFiles/nsky_graph.dir/cores.cc.o"
  "CMakeFiles/nsky_graph.dir/cores.cc.o.d"
  "CMakeFiles/nsky_graph.dir/generators.cc.o"
  "CMakeFiles/nsky_graph.dir/generators.cc.o.d"
  "CMakeFiles/nsky_graph.dir/graph.cc.o"
  "CMakeFiles/nsky_graph.dir/graph.cc.o.d"
  "CMakeFiles/nsky_graph.dir/io.cc.o"
  "CMakeFiles/nsky_graph.dir/io.cc.o.d"
  "CMakeFiles/nsky_graph.dir/sampling.cc.o"
  "CMakeFiles/nsky_graph.dir/sampling.cc.o.d"
  "CMakeFiles/nsky_graph.dir/stats.cc.o"
  "CMakeFiles/nsky_graph.dir/stats.cc.o.d"
  "CMakeFiles/nsky_graph.dir/threshold.cc.o"
  "CMakeFiles/nsky_graph.dir/threshold.cc.o.d"
  "libnsky_graph.a"
  "libnsky_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsky_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
