file(REMOVE_RECURSE
  "libnsky_graph.a"
)
