# Empty compiler generated dependencies file for nsky_graph.
# This may be replaced when dependencies are built.
