file(REMOVE_RECURSE
  "CMakeFiles/nsky_util.dir/bitset.cc.o"
  "CMakeFiles/nsky_util.dir/bitset.cc.o.d"
  "CMakeFiles/nsky_util.dir/memory.cc.o"
  "CMakeFiles/nsky_util.dir/memory.cc.o.d"
  "CMakeFiles/nsky_util.dir/rng.cc.o"
  "CMakeFiles/nsky_util.dir/rng.cc.o.d"
  "CMakeFiles/nsky_util.dir/status.cc.o"
  "CMakeFiles/nsky_util.dir/status.cc.o.d"
  "CMakeFiles/nsky_util.dir/strings.cc.o"
  "CMakeFiles/nsky_util.dir/strings.cc.o.d"
  "CMakeFiles/nsky_util.dir/timer.cc.o"
  "CMakeFiles/nsky_util.dir/timer.cc.o.d"
  "libnsky_util.a"
  "libnsky_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsky_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
