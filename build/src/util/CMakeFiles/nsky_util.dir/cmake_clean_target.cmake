file(REMOVE_RECURSE
  "libnsky_util.a"
)
