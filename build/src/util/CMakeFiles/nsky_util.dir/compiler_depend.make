# Empty compiler generated dependencies file for nsky_util.
# This may be replaced when dependencies are built.
