file(REMOVE_RECURSE
  "libnsky_centrality.a"
)
