
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/centrality/betweenness.cc" "src/centrality/CMakeFiles/nsky_centrality.dir/betweenness.cc.o" "gcc" "src/centrality/CMakeFiles/nsky_centrality.dir/betweenness.cc.o.d"
  "/root/repo/src/centrality/bfs.cc" "src/centrality/CMakeFiles/nsky_centrality.dir/bfs.cc.o" "gcc" "src/centrality/CMakeFiles/nsky_centrality.dir/bfs.cc.o.d"
  "/root/repo/src/centrality/centrality.cc" "src/centrality/CMakeFiles/nsky_centrality.dir/centrality.cc.o" "gcc" "src/centrality/CMakeFiles/nsky_centrality.dir/centrality.cc.o.d"
  "/root/repo/src/centrality/greedy.cc" "src/centrality/CMakeFiles/nsky_centrality.dir/greedy.cc.o" "gcc" "src/centrality/CMakeFiles/nsky_centrality.dir/greedy.cc.o.d"
  "/root/repo/src/centrality/group_centrality.cc" "src/centrality/CMakeFiles/nsky_centrality.dir/group_centrality.cc.o" "gcc" "src/centrality/CMakeFiles/nsky_centrality.dir/group_centrality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nsky_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nsky_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsky_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
