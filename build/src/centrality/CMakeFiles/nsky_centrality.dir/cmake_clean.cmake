file(REMOVE_RECURSE
  "CMakeFiles/nsky_centrality.dir/betweenness.cc.o"
  "CMakeFiles/nsky_centrality.dir/betweenness.cc.o.d"
  "CMakeFiles/nsky_centrality.dir/bfs.cc.o"
  "CMakeFiles/nsky_centrality.dir/bfs.cc.o.d"
  "CMakeFiles/nsky_centrality.dir/centrality.cc.o"
  "CMakeFiles/nsky_centrality.dir/centrality.cc.o.d"
  "CMakeFiles/nsky_centrality.dir/greedy.cc.o"
  "CMakeFiles/nsky_centrality.dir/greedy.cc.o.d"
  "CMakeFiles/nsky_centrality.dir/group_centrality.cc.o"
  "CMakeFiles/nsky_centrality.dir/group_centrality.cc.o.d"
  "libnsky_centrality.a"
  "libnsky_centrality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsky_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
