# Empty compiler generated dependencies file for nsky_centrality.
# This may be replaced when dependencies are built.
