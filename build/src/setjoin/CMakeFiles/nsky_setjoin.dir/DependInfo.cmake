
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/setjoin/containment_join.cc" "src/setjoin/CMakeFiles/nsky_setjoin.dir/containment_join.cc.o" "gcc" "src/setjoin/CMakeFiles/nsky_setjoin.dir/containment_join.cc.o.d"
  "/root/repo/src/setjoin/records.cc" "src/setjoin/CMakeFiles/nsky_setjoin.dir/records.cc.o" "gcc" "src/setjoin/CMakeFiles/nsky_setjoin.dir/records.cc.o.d"
  "/root/repo/src/setjoin/skyline_via_join.cc" "src/setjoin/CMakeFiles/nsky_setjoin.dir/skyline_via_join.cc.o" "gcc" "src/setjoin/CMakeFiles/nsky_setjoin.dir/skyline_via_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nsky_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nsky_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsky_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
