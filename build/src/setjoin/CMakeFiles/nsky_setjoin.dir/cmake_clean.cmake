file(REMOVE_RECURSE
  "CMakeFiles/nsky_setjoin.dir/containment_join.cc.o"
  "CMakeFiles/nsky_setjoin.dir/containment_join.cc.o.d"
  "CMakeFiles/nsky_setjoin.dir/records.cc.o"
  "CMakeFiles/nsky_setjoin.dir/records.cc.o.d"
  "CMakeFiles/nsky_setjoin.dir/skyline_via_join.cc.o"
  "CMakeFiles/nsky_setjoin.dir/skyline_via_join.cc.o.d"
  "libnsky_setjoin.a"
  "libnsky_setjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsky_setjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
