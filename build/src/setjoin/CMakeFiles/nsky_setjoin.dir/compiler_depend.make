# Empty compiler generated dependencies file for nsky_setjoin.
# This may be replaced when dependencies are built.
