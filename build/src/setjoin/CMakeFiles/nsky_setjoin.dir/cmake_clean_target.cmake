file(REMOVE_RECURSE
  "libnsky_setjoin.a"
)
