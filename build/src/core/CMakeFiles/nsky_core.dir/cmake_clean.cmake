file(REMOVE_RECURSE
  "CMakeFiles/nsky_core.dir/base_2hop.cc.o"
  "CMakeFiles/nsky_core.dir/base_2hop.cc.o.d"
  "CMakeFiles/nsky_core.dir/base_cset.cc.o"
  "CMakeFiles/nsky_core.dir/base_cset.cc.o.d"
  "CMakeFiles/nsky_core.dir/base_sky.cc.o"
  "CMakeFiles/nsky_core.dir/base_sky.cc.o.d"
  "CMakeFiles/nsky_core.dir/bloom.cc.o"
  "CMakeFiles/nsky_core.dir/bloom.cc.o.d"
  "CMakeFiles/nsky_core.dir/domination.cc.o"
  "CMakeFiles/nsky_core.dir/domination.cc.o.d"
  "CMakeFiles/nsky_core.dir/dynamic_skyline.cc.o"
  "CMakeFiles/nsky_core.dir/dynamic_skyline.cc.o.d"
  "CMakeFiles/nsky_core.dir/filter_phase.cc.o"
  "CMakeFiles/nsky_core.dir/filter_phase.cc.o.d"
  "CMakeFiles/nsky_core.dir/filter_refine_sky.cc.o"
  "CMakeFiles/nsky_core.dir/filter_refine_sky.cc.o.d"
  "libnsky_core.a"
  "libnsky_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsky_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
