
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/base_2hop.cc" "src/core/CMakeFiles/nsky_core.dir/base_2hop.cc.o" "gcc" "src/core/CMakeFiles/nsky_core.dir/base_2hop.cc.o.d"
  "/root/repo/src/core/base_cset.cc" "src/core/CMakeFiles/nsky_core.dir/base_cset.cc.o" "gcc" "src/core/CMakeFiles/nsky_core.dir/base_cset.cc.o.d"
  "/root/repo/src/core/base_sky.cc" "src/core/CMakeFiles/nsky_core.dir/base_sky.cc.o" "gcc" "src/core/CMakeFiles/nsky_core.dir/base_sky.cc.o.d"
  "/root/repo/src/core/bloom.cc" "src/core/CMakeFiles/nsky_core.dir/bloom.cc.o" "gcc" "src/core/CMakeFiles/nsky_core.dir/bloom.cc.o.d"
  "/root/repo/src/core/domination.cc" "src/core/CMakeFiles/nsky_core.dir/domination.cc.o" "gcc" "src/core/CMakeFiles/nsky_core.dir/domination.cc.o.d"
  "/root/repo/src/core/dynamic_skyline.cc" "src/core/CMakeFiles/nsky_core.dir/dynamic_skyline.cc.o" "gcc" "src/core/CMakeFiles/nsky_core.dir/dynamic_skyline.cc.o.d"
  "/root/repo/src/core/filter_phase.cc" "src/core/CMakeFiles/nsky_core.dir/filter_phase.cc.o" "gcc" "src/core/CMakeFiles/nsky_core.dir/filter_phase.cc.o.d"
  "/root/repo/src/core/filter_refine_sky.cc" "src/core/CMakeFiles/nsky_core.dir/filter_refine_sky.cc.o" "gcc" "src/core/CMakeFiles/nsky_core.dir/filter_refine_sky.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/nsky_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsky_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
