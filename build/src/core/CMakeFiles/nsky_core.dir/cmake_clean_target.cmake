file(REMOVE_RECURSE
  "libnsky_core.a"
)
