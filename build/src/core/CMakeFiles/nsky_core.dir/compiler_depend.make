# Empty compiler generated dependencies file for nsky_core.
# This may be replaced when dependencies are built.
