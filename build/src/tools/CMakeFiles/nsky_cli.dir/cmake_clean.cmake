file(REMOVE_RECURSE
  "CMakeFiles/nsky_cli.dir/cli.cc.o"
  "CMakeFiles/nsky_cli.dir/cli.cc.o.d"
  "libnsky_cli.a"
  "libnsky_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsky_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
