file(REMOVE_RECURSE
  "libnsky_cli.a"
)
