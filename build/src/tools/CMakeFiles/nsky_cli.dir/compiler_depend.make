# Empty compiler generated dependencies file for nsky_cli.
# This may be replaced when dependencies are built.
