# Empty dependencies file for nsky.
# This may be replaced when dependencies are built.
