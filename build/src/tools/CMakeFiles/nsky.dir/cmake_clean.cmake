file(REMOVE_RECURSE
  "CMakeFiles/nsky.dir/nsky_main.cc.o"
  "CMakeFiles/nsky.dir/nsky_main.cc.o.d"
  "nsky"
  "nsky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
