
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/bombing.cc" "src/datasets/CMakeFiles/nsky_datasets.dir/bombing.cc.o" "gcc" "src/datasets/CMakeFiles/nsky_datasets.dir/bombing.cc.o.d"
  "/root/repo/src/datasets/karate.cc" "src/datasets/CMakeFiles/nsky_datasets.dir/karate.cc.o" "gcc" "src/datasets/CMakeFiles/nsky_datasets.dir/karate.cc.o.d"
  "/root/repo/src/datasets/registry.cc" "src/datasets/CMakeFiles/nsky_datasets.dir/registry.cc.o" "gcc" "src/datasets/CMakeFiles/nsky_datasets.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/nsky_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsky_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
