file(REMOVE_RECURSE
  "libnsky_datasets.a"
)
