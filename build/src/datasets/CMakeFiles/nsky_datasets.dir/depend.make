# Empty dependencies file for nsky_datasets.
# This may be replaced when dependencies are built.
