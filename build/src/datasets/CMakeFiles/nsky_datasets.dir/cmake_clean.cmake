file(REMOVE_RECURSE
  "CMakeFiles/nsky_datasets.dir/bombing.cc.o"
  "CMakeFiles/nsky_datasets.dir/bombing.cc.o.d"
  "CMakeFiles/nsky_datasets.dir/karate.cc.o"
  "CMakeFiles/nsky_datasets.dir/karate.cc.o.d"
  "CMakeFiles/nsky_datasets.dir/registry.cc.o"
  "CMakeFiles/nsky_datasets.dir/registry.cc.o.d"
  "libnsky_datasets.a"
  "libnsky_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsky_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
