#include "tools/cli.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "centrality/centrality.h"
#include "centrality/greedy.h"
#include "clique/max_clique.h"
#include "clique/nei_sky_mc.h"
#include "clique/topk.h"
#include "core/nsky.h"
#include "datasets/registry.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "core/skyline_json.h"
#include "persist/snapshot.h"
#include "server/server.h"
#include "server/service.h"
#include "setjoin/skyline_via_join.h"
#include "util/execution_context.h"
#include "util/json_writer.h"
#include "util/metrics.h"
#include "util/prom_export.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::tools {

namespace {

using graph::Graph;
using graph::VertexId;

// Parsed command line: command, an optional positional subcommand (only the
// `snapshot` verb has one), plus --key value options (flags that take no
// value are stored with an empty string).
struct Args {
  std::string command;
  std::string subcommand;
  std::map<std::string, std::string> options;

  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

// Options that do not take a value.
bool IsBareFlag(const std::string& key) {
  return key == "no-skyline-pruning" || key == "lazy" || key == "json" ||
         key == "engine" || key == "stats" || key == "fallback-cold-build" ||
         key == "verify";
}

std::optional<Args> ParseArgs(const std::vector<std::string>& raw,
                              std::ostream& err) {
  Args args;
  if (raw.empty()) {
    err << "error: missing command\n";
    return std::nullopt;
  }
  args.command = raw[0];
  for (size_t i = 1; i < raw.size(); ++i) {
    const std::string& token = raw[i];
    if (token.rfind("--", 0) != 0) {
      if (i == 1 && args.command == "snapshot") {
        args.subcommand = token;
        continue;
      }
      err << "error: unexpected argument '" << token << "'\n";
      return std::nullopt;
    }
    std::string key = token.substr(2);
    if (IsBareFlag(key)) {
      args.options[key] = "";
      continue;
    }
    if (i + 1 >= raw.size()) {
      err << "error: option --" << key << " needs a value\n";
      return std::nullopt;
    }
    args.options[key] = raw[++i];
  }
  return args;
}

// Parses "name:a:b:..." generator specs.
std::optional<Graph> ParseGenerateSpec(const std::string& spec,
                                       std::ostream& err) {
  std::vector<std::string> parts;
  std::istringstream in(spec);
  std::string piece;
  while (std::getline(in, piece, ':')) parts.push_back(piece);
  if (parts.empty()) {
    err << "error: empty --generate spec\n";
    return std::nullopt;
  }
  auto num = [&](size_t i, double fallback) {
    return i < parts.size() ? std::atof(parts[i].c_str()) : fallback;
  };
  const std::string& kind = parts[0];
  auto n = static_cast<VertexId>(num(1, 1000));
  uint64_t seed = 1;
  // A trailing field is the seed for the random models.
  if (kind == "er" && parts.size() > 3) seed = static_cast<uint64_t>(num(3, 1));
  if (kind == "ba" && parts.size() > 3) seed = static_cast<uint64_t>(num(3, 1));
  if (kind == "pl" && parts.size() > 4) seed = static_cast<uint64_t>(num(4, 1));
  if (kind == "social" && parts.size() > 3) {
    seed = static_cast<uint64_t>(num(3, 1));
  }

  if (kind == "er") return graph::MakeErdosRenyi(n, num(2, 0.01), seed);
  if (kind == "ba") {
    return graph::MakeBarabasiAlbert(n, static_cast<uint32_t>(num(2, 3)),
                                     seed);
  }
  if (kind == "pl") {
    return graph::MakeChungLuPowerLaw(n, num(2, 2.5), num(3, 6.0), seed);
  }
  if (kind == "social") {
    return graph::MakeSocialGraph(n, num(2, 6.0), 0.6, 0.4, seed, 0.3);
  }
  if (kind == "clique") return graph::MakeClique(n);
  if (kind == "cycle") return graph::MakeCycle(n);
  if (kind == "path") return graph::MakePath(n);
  if (kind == "star") return graph::MakeStar(n);
  if (kind == "tree") {
    return graph::MakeCompleteBinaryTree(static_cast<uint32_t>(num(1, 5)));
  }
  err << "error: unknown generator '" << kind << "'\n";
  return std::nullopt;
}

// Resolves the graph source options to a graph.
std::optional<Graph> LoadInput(const Args& args, std::ostream& err) {
  int sources = args.Has("input") + args.Has("standin") + args.Has("generate");
  if (sources != 1) {
    err << "error: provide exactly one of --input, --standin, --generate\n";
    return std::nullopt;
  }
  const std::string strict = args.Get("strict-io", "yes");
  if (strict != "yes" && strict != "no") {
    err << "error: --strict-io must be yes or no, got '" << strict << "'\n";
    return std::nullopt;
  }
  if (args.Has("input")) {
    graph::EdgeListOptions io_options;
    io_options.strict = strict == "yes";
    graph::EdgeListReport report;
    auto r = graph::LoadEdgeList(args.Get("input"), io_options, &report);
    if (!r.ok()) {
      err << "error: " << r.status().ToString() << "\n";
      return std::nullopt;
    }
    if (report.skipped_lines > 0) {
      err << "note: skipped " << report.skipped_lines
          << " malformed line(s) in " << args.Get("input") << "\n";
    }
    return std::move(r).value();
  }
  if (args.Has("standin")) {
    auto scale = args.Get("scale", "full") == "small"
                     ? datasets::StandinScale::kSmall
                     : datasets::StandinScale::kFull;
    auto r = datasets::MakeStandin(args.Get("standin"), scale);
    if (!r.ok()) {
      err << "error: " << r.status().ToString() << "\n";
      return std::nullopt;
    }
    return std::move(r).value();
  }
  return ParseGenerateSpec(args.Get("generate"), err);
}

// Renders a failed run: the stable nsky.error.v1 object on --json (instead
// of partial output), a plain error line otherwise. The exit code (and the
// document's exit_code key) come from the canonical status table in
// util/status.h, the same table the network server maps HTTP statuses from.
int EmitFailure(const Args& args, const util::Status& status,
                std::ostream& out, std::ostream& err) {
  const int code = util::CliExitCode(status.code());
  if (args.Has("json")) {
    util::JsonWriter w;
    w.BeginObject();
    w.KV("schema", "nsky.error.v1");
    w.KV("command", args.command);
    w.KV("code", util::StatusCodeName(status.code()));
    w.KV("message", status.message());
    w.KV("exit_code", static_cast<uint64_t>(code));
    w.EndObject();
    out << std::move(w).Take() << "\n";
  } else {
    err << "error: " << status.ToString() << "\n";
  }
  return code;
}

// Reads --timeout-ms and --max-memory-mb into an ExecutionContext. Returns
// false on malformed values.
bool ParseContext(const Args& args, util::ExecutionContext* ctx,
                  std::ostream& err) {
  if (args.Has("timeout-ms")) {
    uint64_t ms = 0;
    if (!util::ParseUint64(args.Get("timeout-ms"), &ms)) {
      err << "error: --timeout-ms must be a non-negative integer, got '"
          << args.Get("timeout-ms") << "'\n";
      return false;
    }
    ctx->set_timeout_ms(ms);
  }
  if (args.Has("max-memory-mb")) {
    uint64_t mb = 0;
    if (!util::ParseUint64(args.Get("max-memory-mb"), &mb) || mb == 0) {
      err << "error: --max-memory-mb must be a positive integer, got '"
          << args.Get("max-memory-mb") << "'\n";
      return false;
    }
    ctx->set_byte_budget(mb * 1024 * 1024);
  }
  return true;
}

void WriteGraphJson(const Graph& g, util::JsonWriter* w) {
  w->Key("graph");
  w->BeginObject();
  w->KV("n", static_cast<uint64_t>(g.NumVertices()));
  w->KV("m", g.NumEdges());
  w->EndObject();
}

int CmdStats(const Args& args, const Graph& g, std::ostream& out) {
  graph::GraphStats s = graph::ComputeStats(g);
  if (args.Has("json")) {
    util::JsonWriter w;
    w.BeginObject();
    w.KV("schema", "nsky.stats.v1");
    w.KV("command", "stats");
    w.Key("graph");
    w.BeginObject();
    w.KV("n", s.num_vertices);
    w.KV("m", s.num_edges);
    w.KV("max_degree", static_cast<uint64_t>(s.max_degree));
    w.KV("avg_degree", s.avg_degree);
    w.KV("num_isolated", s.num_isolated);
    w.KV("num_components", s.num_components);
    w.KV("largest_component", s.largest_component);
    w.EndObject();
    w.EndObject();
    out << std::move(w).Take() << "\n";
    return 0;
  }
  out << graph::StatsToString(s) << "\n";
  return 0;
}

// Reads --threads (default 1; 0 = hardware concurrency). Returns false on a
// malformed value.
bool ParseThreads(const Args& args, uint32_t* threads, std::ostream& err) {
  const std::string raw = args.Get("threads", "1");
  char* end = nullptr;
  long v = std::strtol(raw.c_str(), &end, 10);
  if (raw.empty() || *end != '\0' || v < 0 || v > 4096) {
    err << "error: --threads must be an integer in [0, 4096], got '" << raw
        << "'\n";
    return false;
  }
  *threads = static_cast<uint32_t>(v);
  return true;
}

// Reads --repeat (default 1). Returns false on a malformed value.
bool ParseRepeat(const Args& args, uint64_t* repeat, std::ostream& err) {
  *repeat = 1;
  if (!args.Has("repeat")) return true;
  if (!util::ParseUint64(args.Get("repeat"), repeat) || *repeat == 0) {
    err << "error: --repeat must be a positive integer, got '"
        << args.Get("repeat") << "'\n";
    return false;
  }
  return true;
}

int CmdSkyline(const Args& args, const Graph* g_in, std::ostream& out,
               std::ostream& err, std::string* engine_prom) {
  // --algo is the preferred spelling; --algorithm stays as an alias.
  const std::string algo =
      args.Has("algo") ? args.Get("algo") : args.Get("algorithm", "filter-refine");
  core::SolverOptions options;
  if (!ParseThreads(args, &options.threads, err)) return 2;
  util::ExecutionContext ctx;
  if (!ParseContext(args, &ctx, err)) return 2;
  uint64_t repeat = 1;
  if (!ParseRepeat(args, &repeat, err)) return 2;
  const bool use_engine =
      args.Has("engine") || repeat > 1 || args.Has("snapshot");
  if (args.Has("stats") && !use_engine) {
    // Through EmitFailure so --json callers get the structured nsky.error.v1
    // body instead of a bare stderr line (exit code 2 either way, from the
    // status table's INVALID_ARGUMENT row).
    return EmitFailure(args,
                       util::Status::InvalidArgument(
                           "--stats reports engine introspection; add "
                           "--engine (or --repeat N)"),
                       out, err);
  }
  // Kept alive past the query loop so --stats / --metrics-out can render
  // its introspection documents after the results are written. Owned via
  // pointer because --snapshot receives one ready-made from persist::Load.
  std::unique_ptr<core::Engine> engine;
  if (args.Has("snapshot")) {
    if (algo == "join") {
      err << "error: --snapshot is not supported for --algo join\n";
      return 2;
    }
    // One context covers the load AND the queries: the deadline is
    // absolute, so a replica that spends its whole budget reading the
    // artifact times out before the first query, exactly as intended.
    auto loaded = persist::Load(args.Get("snapshot"), ctx);
    if (!loaded.ok()) return EmitFailure(args, loaded.status(), out, err);
    engine = std::move(loaded).value();
  }
  const Graph& g = g_in != nullptr ? *g_in : engine->graph();
  core::SkylineResult r;
  if (algo == "join") {
    // The set-containment-join adapter lives outside the core engine and
    // ignores --threads; the hardened runtime does not cover it.
    if (args.Has("timeout-ms") || args.Has("max-memory-mb")) {
      err << "error: --timeout-ms/--max-memory-mb are not supported for "
             "--algo join\n";
      return 2;
    }
    if (use_engine) {
      err << "error: --engine/--repeat are not supported for --algo join\n";
      return 2;
    }
    r = setjoin::SkylineViaJoin(g);
  } else if (auto parsed = core::ParseAlgorithm(algo)) {
    options.algorithm = *parsed;
    if (use_engine) {
      // Reuse one engine across all --repeat iterations: artifacts build on
      // the first query, later queries are warm. Results are bit-identical
      // to a single cold solve, so only the last one is rendered. A
      // snapshot-loaded engine starts warm: its first query builds nothing.
      if (engine == nullptr) engine = std::make_unique<core::Engine>(g);
      core::QueryRequest request{options, ctx};
      core::QueryResponse response;
      response.result = std::move(r);
      for (uint64_t i = 0; i < repeat; ++i) {
        if (!engine->Execute(request, &response).ok()) {
          return EmitFailure(args, response.status, out, err);
        }
      }
      r = std::move(response.result);
    } else {
      util::Status status = core::SolveInto(g, options, ctx, &r);
      if (!status.ok()) return EmitFailure(args, status, out, err);
    }
  } else {
    err << "error: unknown --algo '" << algo << "'\n";
    return 2;
  }
  if (engine != nullptr && engine_prom != nullptr) {
    *engine_prom = core::EngineStatsToPrometheus(engine->StatsSnapshot());
  }
  if (args.Has("json")) {
    // Rendered by the shared core/skyline_json.h writer -- the same one the
    // network server uses, which is what keeps `nsky skyline --engine
    // --json` and `GET /v1/skyline` byte-identical.
    core::SkylineDocOptions doc;
    doc.algorithm = algo;
    doc.engine = engine != nullptr;
    doc.repeat = repeat;
    doc.include_engine_docs = engine != nullptr && args.Has("stats");
    out << core::SkylineDocToJson(g, r, doc, engine.get()) << "\n";
    return 0;
  }
  out << "skyline " << r.skyline.size() << " of " << g.NumVertices()
      << " vertices (" << algo << ", threads " << r.stats.threads << ", "
      << util::FormatSeconds(r.stats.seconds) << ")\n";
  if (!r.stats.degraded_from.empty()) {
    err << "note: degraded from " << r.stats.degraded_from
        << " to filter-refine (byte budget)\n";
  }
  if (args.Get("print", "no") == "yes") {
    for (VertexId u : r.skyline) out << u << "\n";
  }
  if (engine != nullptr && args.Has("stats")) {
    // One self-describing document per line, greppable from scripts.
    out << engine->StatsJson() << "\n";
    out << engine->RecentQueriesJson() << "\n";
  }
  return 0;
}

// Parses one --updates file: one update per line, `+ U V` inserts the
// undirected edge {U, V} and `- U V` deletes it. Blank lines and lines
// starting with '#' are skipped; anything else is a usage error (the whole
// batch is rejected before the engine is touched, like the server's body
// validation).
bool LoadUpdatesFile(const std::string& path,
                     std::vector<graph::EdgeUpdate>* updates,
                     std::ostream& err) {
  std::ifstream f(path);
  if (!f) {
    err << "error: cannot open --updates file '" << path << "'\n";
    return false;
  }
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(f, line)) {
    ++line_no;
    std::istringstream in(line);
    std::string op;
    if (!(in >> op) || op[0] == '#') continue;
    uint64_t u = 0;
    uint64_t v = 0;
    std::string extra;
    if ((op != "+" && op != "-") || !(in >> u >> v) || (in >> extra) ||
        u > 0xffffffffULL || v > 0xffffffffULL) {
      err << "error: " << path << ":" << line_no
          << ": expected '+ U V' or '- U V' with vertex ids in [0, 2^32)\n";
      return false;
    }
    updates->push_back({static_cast<VertexId>(u), static_cast<VertexId>(v),
                        op == "+"});
  }
  return true;
}

// `nsky mutate`: apply an edge-update batch to a warm engine and report the
// epoch transition as the stable nsky.mutate.v1 document -- the CLI face of
// Engine::ApplyUpdates, and the offline twin of POST /v1/edges. The engine
// is warmed with one cold query (plus the shared skyline pool) before the
// batch lands, so the mutation exercises the same incremental machinery a
// served replica would: DynamicSkyline maintenance of the cached skyline
// and PreparedGraph::RepairForUpdates on the artifacts. --verify
// cross-checks the post-mutation warm query bit-for-bit -- skyline,
// dominators, every deterministic counter including aux_peak_bytes --
// against a cold-built engine on the mutated graph, and fails the command
// when they diverge.
int CmdMutate(const Args& args, Graph g, std::ostream& out,
              std::ostream& err) {
  if (!args.Has("updates")) {
    err << "error: mutate requires --updates FILE\n";
    return 2;
  }
  std::vector<graph::EdgeUpdate> updates;
  if (!LoadUpdatesFile(args.Get("updates"), &updates, err)) return 2;
  core::SolverOptions options;
  if (!ParseThreads(args, &options.threads, err)) return 2;
  const std::string algo =
      args.Has("algo") ? args.Get("algo") : args.Get("algorithm", "filter-refine");
  auto parsed_algo = core::ParseAlgorithm(algo);
  if (!parsed_algo.has_value()) {
    err << "error: unknown --algo '" << algo
        << "' (mutate serves through the engine; join is not supported)\n";
    return 2;
  }
  options.algorithm = *parsed_algo;

  core::Engine engine(std::move(g));
  engine.Query(options);  // cold: builds this query shape's artifacts
  engine.SkylineCache();  // and the shared skyline pool, so the batch
                          // maintains it through DynamicSkyline
  const core::Engine::MutationResult outcome = engine.ApplyUpdates(updates);
  core::SkylineResult warm = engine.Query(options);  // post-mutation, warm

  bool verified = false;
  if (args.Has("verify")) {
    core::Engine oracle{Graph(engine.graph())};
    core::SkylineResult cold = oracle.Query(options);
    verified =
        warm.skyline == cold.skyline && warm.dominator == cold.dominator &&
        warm.stats.candidate_count == cold.stats.candidate_count &&
        warm.stats.pairs_examined == cold.stats.pairs_examined &&
        warm.stats.bloom_prunes == cold.stats.bloom_prunes &&
        warm.stats.degree_prunes == cold.stats.degree_prunes &&
        warm.stats.inclusion_tests == cold.stats.inclusion_tests &&
        warm.stats.nbr_elements_scanned == cold.stats.nbr_elements_scanned &&
        warm.stats.aux_peak_bytes == cold.stats.aux_peak_bytes;
    if (!verified) {
      return EmitFailure(
          args,
          util::Status::IoError(
              "post-mutation warm result diverged from a cold rebuild "
              "(repair bug: run with --json for the counters)"),
          out, err);
    }
  }

  if (args.Has("json")) {
    // Same keys as the server's POST /v1/edges response, plus the CLI-only
    // skyline/verified trailers.
    util::JsonWriter w;
    w.BeginObject();
    w.KV("schema", "nsky.mutate.v1");
    w.KV("command", "mutate");
    w.KV("applied", static_cast<uint64_t>(outcome.applied));
    w.KV("skipped", static_cast<uint64_t>(outcome.skipped));
    w.KV("epoch", outcome.epoch);
    w.KV("dirty_vertices", outcome.dirty_vertices);
    w.KV("repaired", outcome.repaired);
    w.KV("bulk_solve", outcome.bulk_solve);
    w.Key("graph");
    w.BeginObject();
    w.KV("vertices", static_cast<uint64_t>(engine.graph().NumVertices()));
    w.KV("edges", engine.graph().NumEdges());
    w.EndObject();
    w.Key("skyline");
    w.BeginObject();
    w.KV("size", static_cast<uint64_t>(warm.skyline.size()));
    w.EndObject();
    core::WriteSkylineStatsJson(warm.stats, &w);
    if (args.Has("verify")) w.KV("verified", verified);
    w.EndObject();
    out << std::move(w).Take() << "\n";
    return 0;
  }
  out << "applied " << outcome.applied << " update(s), skipped "
      << outcome.skipped << "; epoch " << outcome.epoch << ", dirty "
      << outcome.dirty_vertices << " vertex(es), "
      << (outcome.repaired ? "artifacts repaired" : "artifacts rebuilt")
      << (outcome.bulk_solve ? ", bulk skyline solve" : "") << "\n";
  out << "skyline " << warm.skyline.size() << " of "
      << engine.graph().NumVertices() << " vertices (" << algo
      << ", warm, " << util::FormatSeconds(warm.stats.seconds) << ")\n";
  if (args.Has("verify")) {
    out << "verify: warm result matches a cold rebuild bit-for-bit\n";
  }
  if (args.Get("print", "no") == "yes") {
    for (VertexId u : warm.skyline) out << u << "\n";
  }
  return 0;
}

// Blocking network front end: serves the loaded graph over loopback
// HTTP 1.1 through core::Engine until --max-requests is reached (or
// forever). The per-request defaults (--timeout-ms / --max-memory-mb) and
// the admission limit (--max-inflight) become the service's config; each
// request may tighten but the endpoint set is fixed (see
// src/server/service.h). With --snapshot the engine is restored by
// persist::Load instead of built from a graph source (`g` is then empty):
// the replica cold-starts in O(read) and answers its first query warm.
// --fallback-cold-build degrades a failed snapshot load to a cold build
// from the graph source instead of exiting; --watch-snapshot-ms N polls the
// snapshot file's id and hot-reloads on change (same swap as the
// POST /v1/admin/reload endpoint).
int CmdServe(const Args& args, std::optional<Graph> g, std::ostream& out,
             std::ostream& err) {
  auto parse_u64 = [&](const char* key, uint64_t fallback, uint64_t* value) {
    *value = fallback;
    if (!args.Has(key)) return true;
    if (!util::ParseUint64(args.Get(key), value)) {
      err << "error: --" << key << " must be a non-negative integer, got '"
          << args.Get(key) << "'\n";
      return false;
    }
    return true;
  };
  uint64_t port = 0;
  uint64_t server_threads = 0;
  uint64_t max_inflight = 0;
  uint64_t timeout_ms = 0;
  uint64_t max_memory_mb = 0;
  uint64_t max_requests = 0;
  uint64_t idle_timeout_ms = 0;
  uint64_t watch_snapshot_ms = 0;
  if (!parse_u64("port", 0, &port) ||
      !parse_u64("server-threads", 4, &server_threads) ||
      !parse_u64("max-inflight", 4, &max_inflight) ||
      !parse_u64("timeout-ms", 0, &timeout_ms) ||
      !parse_u64("max-memory-mb", 0, &max_memory_mb) ||
      !parse_u64("max-requests", 0, &max_requests) ||
      !parse_u64("idle-timeout-ms", 5000, &idle_timeout_ms) ||
      !parse_u64("watch-snapshot-ms", 0, &watch_snapshot_ms)) {
    return 2;
  }
  if (watch_snapshot_ms > 0 && !args.Has("snapshot")) {
    err << "error: --watch-snapshot-ms requires --snapshot\n";
    return 2;
  }
  if (args.Has("fallback-cold-build") && !args.Has("snapshot")) {
    err << "error: --fallback-cold-build requires --snapshot\n";
    return 2;
  }
  if (port > 65535) {
    err << "error: --port must be in [0, 65535]\n";
    return 2;
  }
  if (server_threads == 0 || server_threads > 256) {
    err << "error: --server-threads must be in [1, 256]\n";
    return 2;
  }
  if (max_inflight == 0) {
    err << "error: --max-inflight must be positive\n";
    return 2;
  }

  std::unique_ptr<core::Engine> engine;
  bool cold_fallback = false;
  if (args.Has("snapshot")) {
    auto loaded = persist::Load(args.Get("snapshot"));
    if (loaded.ok()) {
      engine = std::move(loaded).value();
    } else if (args.Has("fallback-cold-build")) {
      // Graceful startup degradation: a corrupt/missing snapshot demotes
      // the replica to a cold build from the graph source (loaded lazily,
      // only now that it is needed) instead of refusing to start.
      err << "warning: snapshot load failed ("
          << loaded.status().ToString()
          << "); falling back to a cold build\n";
      if (!g.has_value()) {
        g = LoadInput(args, err);
        if (!g.has_value()) return 2;
      }
      engine = std::make_unique<core::Engine>(std::move(*g));
      cold_fallback = true;
    } else {
      err << "error: " << loaded.status().ToString() << "\n";
      return util::CliExitCode(loaded.status().code());
    }
  } else {
    engine = std::make_unique<core::Engine>(std::move(*g));
  }

  server::ServiceOptions service_options;
  service_options.default_timeout_ms = timeout_ms;
  service_options.default_max_memory_mb = max_memory_mb;
  service_options.max_inflight = static_cast<uint32_t>(max_inflight);
  server::SkylineService service(std::move(engine), service_options);
  if (cold_fallback) service.RecordColdFallback();

  server::ServerOptions server_options;
  server_options.port = static_cast<uint16_t>(port);
  server_options.session_threads = static_cast<uint32_t>(server_threads);
  server_options.max_requests = max_requests;
  server_options.idle_timeout_ms = idle_timeout_ms;
  server::Server server(&service, server_options);
  if (util::Status s = server.Listen(); !s.ok()) {
    err << "error: " << s.ToString() << "\n";
    return 1;
  }
  // --port-file: how scripts and tests learn an ephemeral port. Written
  // only after the socket is bound, and published atomically (temp +
  // rename), so a reader never observes an empty or partial file.
  if (args.Has("port-file")) {
    const std::string port_path = args.Get("port-file");
    const std::string port_tmp = port_path + ".tmp";
    {
      std::ofstream f(port_tmp, std::ios::binary | std::ios::trunc);
      if (!f) {
        err << "error: cannot open --port-file '" << port_path << "'\n";
        return 1;
      }
      f << server.port() << "\n";
      if (!f) {
        err << "error: cannot write --port-file '" << port_path << "'\n";
        return 1;
      }
    }
    if (std::rename(port_tmp.c_str(), port_path.c_str()) != 0) {
      err << "error: cannot publish --port-file '" << port_path << "'\n";
      return 1;
    }
  }
  out << "serving 127.0.0.1:" << server.port() << " (workers "
      << server_threads << ", max-inflight " << max_inflight;
  if (const auto& info = service.engine().snapshot_info(); info.has_value()) {
    out << ", snapshot " << info->id;
  }
  if (cold_fallback) out << ", cold-fallback";
  out << ")" << std::endl;

  // --watch-snapshot-ms: poll the snapshot file's id (header-only read;
  // safe because Save publishes atomically) and hot-reload on change.
  std::atomic<bool> stop_watching{false};
  std::thread watcher;
  if (watch_snapshot_ms > 0) {
    const std::string snapshot_path = args.Get("snapshot");
    std::string last_id;
    if (const auto& info = service.engine().snapshot_info();
        info.has_value()) {
      last_id = info->id;
    }
    watcher = std::thread([&service, &stop_watching, snapshot_path,
                           watch_snapshot_ms, last_id]() mutable {
      while (!stop_watching.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(watch_snapshot_ms));
        auto id = persist::PeekSnapshotId(snapshot_path);
        if (!id.ok() || id.value() == last_id) continue;
        auto swapped = service.Reload(snapshot_path);
        // A failed reload leaves the serving engine untouched and counts
        // in the lifecycle stats; keep last_id so the next poll retries.
        if (swapped.ok()) last_id = swapped.value().id;
      }
    });
  }

  server.Serve();
  stop_watching.store(true, std::memory_order_relaxed);
  if (watcher.joinable()) watcher.join();
  out << "served " << server.requests_served() << " request(s)\n";
  return 0;
}

// Renders a snapshot manifest as the stable nsky.snapshot.v1 document.
void WriteManifestJson(const persist::Manifest& m, const std::string& action,
                       util::JsonWriter* w) {
  w->BeginObject();
  w->KV("schema", "nsky.snapshot.v1");
  w->KV("command", "snapshot");
  w->KV("action", action);
  w->KV("path", m.path);
  w->KV("id", m.id);
  w->KV("format_version", static_cast<uint64_t>(m.format_version));
  w->KV("file_bytes", m.file_bytes);
  w->Key("sections");
  w->BeginArray();
  for (const persist::SectionInfo& s : m.sections) {
    w->BeginObject();
    w->KV("name", s.name);
    w->KV("id", static_cast<uint64_t>(s.id));
    w->KV("aux", static_cast<uint64_t>(s.aux));
    w->KV("offset", s.offset);
    w->KV("bytes", s.bytes);
    w->KV("crc32", static_cast<uint64_t>(s.crc32));
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

void PrintManifestText(const persist::Manifest& m, std::ostream& out) {
  out << "snapshot " << m.path << "\n"
      << "  id " << m.id << ", format v" << m.format_version << ", "
      << m.file_bytes << " bytes, " << m.sections.size() << " section(s)\n";
  for (const persist::SectionInfo& s : m.sections) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-16s %10llu bytes at %-10llu crc32 %08x%s%s\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.bytes),
                  static_cast<unsigned long long>(s.offset), s.crc32,
                  s.aux != 0 ? " bits " : "",
                  s.aux != 0 ? std::to_string(s.aux).c_str() : "");
    out << line;
  }
}

// Parses the --warm spec: "all" (default), "none", or a comma-separated
// list of engine algorithm names.
bool ParseWarmSpec(const std::string& spec,
                   std::vector<core::Algorithm>* algorithms,
                   std::ostream& err) {
  if (spec == "none") return true;
  std::string list = spec == "all" ? "filter-refine,base,cset,2hop" : spec;
  std::istringstream in(list);
  std::string name;
  while (std::getline(in, name, ',')) {
    if (auto parsed = core::ParseAlgorithm(name)) {
      algorithms->push_back(*parsed);
    } else {
      err << "error: unknown algorithm '" << name << "' in --warm\n";
      return false;
    }
  }
  return true;
}

// `nsky snapshot save`: build an engine (from a graph source, warmed by
// running real queries so the saved artifact widths match what the solvers
// request, or from an existing snapshot via --snapshot, the resave path)
// and serialize it to --output.
int CmdSnapshotSave(const Args& args, std::ostream& out, std::ostream& err) {
  if (!args.Has("output")) {
    err << "error: snapshot save requires --output FILE\n";
    return 2;
  }
  std::unique_ptr<core::Engine> engine;
  if (args.Has("snapshot")) {
    if (args.Has("input") || args.Has("standin") || args.Has("generate")) {
      err << "error: provide either --snapshot or a graph source, not both\n";
      return 2;
    }
    auto loaded = persist::Load(args.Get("snapshot"));
    if (!loaded.ok()) return EmitFailure(args, loaded.status(), out, err);
    engine = std::move(loaded).value();
  } else {
    auto g = LoadInput(args, err);
    if (!g.has_value()) return 2;
    uint32_t threads = 1;
    if (!ParseThreads(args, &threads, err)) return 2;
    std::vector<core::Algorithm> algorithms;
    if (!ParseWarmSpec(args.Get("warm", "all"), &algorithms, err)) return 2;
    engine = std::make_unique<core::Engine>(std::move(*g));
    core::SolverOptions options;
    options.threads = threads;
    for (core::Algorithm algorithm : algorithms) {
      options.algorithm = algorithm;
      engine->Query(options);
    }
    if (!algorithms.empty()) {
      // Orderings the clique / centrality consumers share; cheap relative
      // to the artifacts above and they complete the artifact coverage.
      engine->prepared().DegreeOrder();
      engine->prepared().Cores();
    }
  }
  if (util::Status s = persist::Save(*engine, args.Get("output")); !s.ok()) {
    return EmitFailure(args, s, out, err);
  }
  auto manifest = persist::Inspect(args.Get("output"));
  if (!manifest.ok()) return EmitFailure(args, manifest.status(), out, err);
  if (args.Has("json")) {
    util::JsonWriter w;
    WriteManifestJson(manifest.value(), "save", &w);
    out << std::move(w).Take() << "\n";
  } else {
    out << "saved ";
    PrintManifestText(manifest.value(), out);
  }
  return 0;
}

// `nsky snapshot load`: restore an engine under the CLI's execution limits
// and report what came back. The smoke test for "will this artifact serve".
int CmdSnapshotLoad(const Args& args, std::ostream& out, std::ostream& err) {
  if (!args.Has("snapshot")) {
    err << "error: snapshot load requires --snapshot FILE\n";
    return 2;
  }
  util::ExecutionContext ctx;
  if (!ParseContext(args, &ctx, err)) return 2;
  auto loaded = persist::Load(args.Get("snapshot"), ctx);
  if (!loaded.ok()) return EmitFailure(args, loaded.status(), out, err);
  core::Engine& engine = *loaded.value();
  const auto& info = engine.snapshot_info();
  const core::PreparedGraph& prepared = engine.prepared();
  if (args.Has("json")) {
    util::JsonWriter w;
    w.BeginObject();
    w.KV("schema", "nsky.snapshot.v1");
    w.KV("command", "snapshot");
    w.KV("action", "load");
    w.KV("path", args.Get("snapshot"));
    w.KV("id", info->id);
    w.KV("format_version", static_cast<uint64_t>(info->format_version));
    w.KV("file_bytes", info->file_bytes);
    w.KV("sections", static_cast<uint64_t>(info->sections));
    WriteGraphJson(engine.graph(), &w);
    w.Key("artifacts");
    w.BeginObject();
    w.KV("filter", prepared.PeekFilter() != nullptr);
    w.KV("two_hop", prepared.PeekTwoHop() != nullptr);
    w.KV("degree_order", prepared.PeekDegreeOrder() != nullptr);
    w.KV("cores", prepared.PeekCores() != nullptr);
    w.KV("candidate_blooms",
         static_cast<uint64_t>(prepared.CandidateBloomWidths().size()));
    w.KV("full_blooms",
         static_cast<uint64_t>(prepared.FullBloomWidths().size()));
    w.EndObject();
    w.EndObject();
    out << std::move(w).Take() << "\n";
  } else {
    out << "loaded snapshot " << args.Get("snapshot") << ": id " << info->id
        << ", n=" << engine.graph().NumVertices()
        << ", m=" << engine.graph().NumEdges() << ", " << info->sections
        << " section(s)\n";
  }
  return 0;
}

// `nsky snapshot inspect`: offline fsck. Validates the header, table and
// every section checksum without constructing an engine, then reports the
// per-section layout. Exit status mirrors what Load() would say.
int CmdSnapshotInspect(const Args& args, std::ostream& out,
                       std::ostream& err) {
  if (!args.Has("snapshot")) {
    err << "error: snapshot inspect requires --snapshot FILE\n";
    return 2;
  }
  auto manifest = persist::Inspect(args.Get("snapshot"));
  if (!manifest.ok()) return EmitFailure(args, manifest.status(), out, err);
  if (args.Has("json")) {
    util::JsonWriter w;
    WriteManifestJson(manifest.value(), "inspect", &w);
    out << std::move(w).Take() << "\n";
  } else {
    PrintManifestText(manifest.value(), out);
  }
  return 0;
}

int CmdSnapshot(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.subcommand == "save") return CmdSnapshotSave(args, out, err);
  if (args.subcommand == "load") return CmdSnapshotLoad(args, out, err);
  if (args.subcommand == "inspect") return CmdSnapshotInspect(args, out, err);
  err << "error: snapshot requires a subcommand: save, load or inspect\n";
  return 2;
}

// Self-report of the process-wide metrics registry (counters the solvers
// and CLI mirrored during this process). --format json emits the stable
// nsky.metrics.v1 document; --format prom emits Prometheus exposition text.
int CmdMetrics(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string format = args.Get("format", "json");
  util::metrics::Snapshot snap = util::metrics::Snap();
  if (format == "prom") {
    out << util::metrics::SnapshotToPrometheus(snap);
    return 0;
  }
  if (format != "json") {
    err << "error: --format must be json or prom, got '" << format << "'\n";
    return 2;
  }
  util::JsonWriter w;
  w.BeginObject();
  w.KV("schema", "nsky.metrics.v1");
  w.KV("command", "metrics");
  w.Key("metrics");
  util::metrics::WriteSnapshotJson(snap, &w);
  w.EndObject();
  out << std::move(w).Take() << "\n";
  return 0;
}

int CmdCandidates(const Args& args, const Graph& g, std::ostream& out,
                  std::ostream& err) {
  core::SolverOptions options;
  if (!ParseThreads(args, &options.threads, err)) return 2;
  util::ExecutionContext ctx;
  if (!ParseContext(args, &ctx, err)) return 2;
  core::SkylineResult r;
  if (util::Status status = core::FilterPhaseInto(g, options, ctx, &r);
      !status.ok()) {
    return EmitFailure(args, status, out, err);
  }
  if (args.Has("json")) {
    util::JsonWriter w;
    w.BeginObject();
    w.KV("schema", "nsky.candidates.v1");
    w.KV("command", "candidates");
    WriteGraphJson(g, &w);
    w.Key("candidates");
    w.BeginObject();
    w.KV("size", static_cast<uint64_t>(r.skyline.size()));
    w.EndObject();
    core::WriteSkylineStatsJson(r.stats, &w);
    w.EndObject();
    out << std::move(w).Take() << "\n";
    return 0;
  }
  out << "candidates " << r.skyline.size() << " of " << g.NumVertices()
      << " vertices (" << util::FormatSeconds(r.stats.seconds) << ")\n";
  return 0;
}

int CmdGenerate(const Args& args, const Graph& g, std::ostream& out,
                std::ostream& err) {
  if (!args.Has("output")) {
    err << "error: generate requires --output FILE\n";
    return 2;
  }
  auto status = graph::SaveEdgeList(g, args.Get("output"));
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    return 1;
  }
  out << "wrote " << g.NumVertices() << " vertices, " << g.NumEdges()
      << " edges to " << args.Get("output") << "\n";
  return 0;
}

int CmdCentrality(const Args& args, const Graph& g, std::ostream& out) {
  uint32_t top = static_cast<uint32_t>(
      std::atoi(args.Get("top", "10").c_str()));
  std::vector<double> closeness = centrality::AllCloseness(g);
  std::vector<double> harmonic = centrality::AllHarmonic(g);
  std::vector<VertexId> order(g.NumVertices());
  for (VertexId u = 0; u < g.NumVertices(); ++u) order[u] = u;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return closeness[a] != closeness[b] ? closeness[a] > closeness[b] : a < b;
  });
  out << "vertex  closeness  harmonic  degree\n";
  for (uint32_t i = 0; i < top && i < order.size(); ++i) {
    VertexId u = order[i];
    char line[128];
    std::snprintf(line, sizeof(line), "%-7u %-10.5f %-9.3f %u\n", u,
                  closeness[u], harmonic[u], g.Degree(u));
    out << line;
  }
  return 0;
}

int CmdGroupMax(const Args& args, const Graph& g, std::ostream& out,
                std::ostream& err) {
  uint32_t k = static_cast<uint32_t>(std::atoi(args.Get("k", "5").c_str()));
  if (k == 0) {
    err << "error: --k must be positive\n";
    return 2;
  }
  centrality::GreedyOptions options;
  const std::string objective = args.Get("objective", "closeness");
  if (objective == "closeness") {
    options.objective = centrality::Objective::kCloseness;
  } else if (objective == "harmonic") {
    options.objective = centrality::Objective::kHarmonic;
  } else {
    err << "error: unknown --objective '" << objective << "'\n";
    return 2;
  }
  options.use_skyline_pruning = !args.Has("no-skyline-pruning");
  options.lazy = args.Has("lazy");
  centrality::GreedyResult r = centrality::GreedyGroupMaximization(g, k, options);
  out << "group (" << objective << ", k=" << k << "):";
  for (VertexId v : r.group) out << " " << v;
  out << "\nscore " << r.score << ", " << r.gain_calls << " gain calls, pool "
      << r.pool_size << ", " << util::FormatSeconds(r.seconds) << "\n";
  return 0;
}

int CmdClique(const Args& args, const Graph& g, std::ostream& out) {
  if (args.Has("no-skyline-pruning")) {
    clique::CliqueResult r = clique::MaxClique(g);
    out << "maximum clique size " << r.clique.size() << " ("
        << util::FormatSeconds(r.seconds) << "):";
    for (VertexId v : r.clique) out << " " << v;
    out << "\n";
  } else {
    clique::NeiSkyMcResult r = clique::NeiSkyMC(g);
    out << "maximum clique size " << r.clique.clique.size() << " (skyline "
        << r.skyline_size << " seeds, "
        << util::FormatSeconds(r.total_seconds) << "):";
    for (VertexId v : r.clique.clique) out << " " << v;
    out << "\n";
  }
  return 0;
}

int CmdTopkCliques(const Args& args, const Graph& g, std::ostream& out) {
  uint32_t k = static_cast<uint32_t>(std::atoi(args.Get("k", "3").c_str()));
  auto r = args.Has("no-skyline-pruning") ? clique::BaseTopkMCC(g, k)
                                          : clique::NeiSkyTopkMCC(g, k);
  out << r.cliques.size() << " vertex-disjoint cliques ("
      << util::FormatSeconds(r.total_seconds) << ")\n";
  for (size_t i = 0; i < r.cliques.size(); ++i) {
    out << "  #" << (i + 1) << " size " << r.cliques[i].size() << ":";
    for (VertexId v : r.cliques[i]) out << " " << v;
    out << "\n";
  }
  return 0;
}

int CmdDatasets(std::ostream& out) {
  out << "name          paper_n      paper_m      domain\n";
  for (const auto& spec : datasets::AllStandins()) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-13s %-12llu %-12llu %s\n",
                  spec.name.c_str(),
                  static_cast<unsigned long long>(spec.paper_n),
                  static_cast<unsigned long long>(spec.paper_m),
                  spec.description.c_str());
    out << line;
  }
  return 0;
}

void PrintUsage(std::ostream& out) {
  out << "usage: nsky <command> [options]\n"
         "commands: stats skyline candidates generate centrality group-max\n"
         "          clique topk-cliques serve mutate snapshot datasets\n"
         "          metrics help\n"
         "graph sources: --input FILE | --standin NAME [--scale small|full]\n"
         "               | --generate SPEC (er:N:P, ba:N:M, pl:N:BETA:AVG,\n"
         "                 social:N:AVG, clique:N, cycle:N, path:N, star:N,\n"
         "                 tree:LEVELS; random models accept a trailing seed)\n"
         "solver:    --algo base|filter-refine|cset|2hop|join (skyline)\n"
         "           --threads N (skyline/candidates; 0 = all cores;\n"
         "             results are bit-identical for every N)\n"
         "           --engine (skyline: serve through core::Engine with\n"
         "             cached graph artifacts; implied by --repeat > 1)\n"
         "           --repeat N (skyline: run the query N times against one\n"
         "             engine -- first cold, rest warm; prints the last)\n"
         "limits:    --timeout-ms N (skyline/candidates; exit 4 on deadline)\n"
         "           --max-memory-mb N (aux byte budget; exit 6 when\n"
         "             exhausted; 2hop degrades to filter-refine first)\n"
         "           --strict-io yes|no (default yes: reject malformed\n"
         "             edge-list lines; no: skip and count them)\n"
         "telemetry: --json (stats/skyline/candidates: JSON on stdout;\n"
         "             failures emit nsky.error.v1)\n"
         "           --trace FILE (write Chrome trace-event JSON)\n"
         "           --stats (skyline with --engine: engine introspection --\n"
         "             cache hits/misses, latency percentiles, recent\n"
         "             queries -- as nsky.engine_stats.v1/nsky.queries.v1)\n"
         "           --metrics-out FILE (write Prometheus exposition text\n"
         "             of the metrics registry, plus engine stats when the\n"
         "             command served through an engine)\n"
         "           metrics [--format json|prom] (dump the process-wide\n"
         "             metrics registry and exit)\n"
         "serving:   serve [--port N] [--port-file FILE]\n"
         "             [--server-threads N] [--max-inflight N]\n"
         "             [--timeout-ms N] [--max-memory-mb N]\n"
         "             [--max-requests N] [--idle-timeout-ms N]\n"
         "             [--watch-snapshot-ms N] [--fallback-cold-build]\n"
         "             (loopback HTTP: /v1/skyline /v1/engine_stats\n"
         "              /v1/queries /v1/metrics /healthz, plus\n"
         "              POST /v1/admin/reload?snapshot=PATH for\n"
         "              zero-downtime engine swaps, and POST /v1/edges\n"
         "              for in-place edge mutation with incremental\n"
         "              artifact repair -- nsky.mutate.v1; shed -> 429 and\n"
         "              draining -> 503 both carry Retry-After)\n"
         "mutation:  mutate <graph source> --updates FILE [--algo A]\n"
         "             [--threads N] [--json] [--verify] (apply an edge\n"
         "             batch -- lines '+ U V' / '- U V' -- to a warm\n"
         "             engine: one epoch commit + incremental artifact\n"
         "             repair; --verify cross-checks the warm result\n"
         "             bit-for-bit against a cold rebuild)\n"
         "snapshots: snapshot save <graph source> --output FILE\n"
         "             [--warm all|none|ALGO,...] (build + warm an engine,\n"
         "             serialize it; --snapshot IN instead of a graph\n"
         "             source re-saves an existing snapshot canonically)\n"
         "           snapshot load --snapshot FILE (restore + report)\n"
         "           snapshot inspect --snapshot FILE (offline fsck:\n"
         "             header/table/checksum validation, section layout)\n"
         "           skyline/serve --snapshot FILE (query or serve from a\n"
         "             restored engine; first query is warm)\n"
         "exit codes: 0 ok, 1 runtime/io, 2 usage, 4 deadline, 5 cancelled,\n"
         "            6 resource exhausted, 7 unavailable (shed/draining)\n"
         "see src/tools/cli.h for per-command options and JSON schemas\n";
}

}  // namespace

int RunCli(const std::vector<std::string>& args_raw, std::ostream& out,
           std::ostream& err) {
  auto parsed = ParseArgs(args_raw, err);
  if (!parsed.has_value()) {
    PrintUsage(err);
    return 2;
  }
  const Args& args = *parsed;

  if (args.command == "help") {
    PrintUsage(out);
    return 0;
  }
  if (args.command == "datasets") return CmdDatasets(out);
  if (args.command == "metrics") return CmdMetrics(args, out, err);
  if (args.command == "snapshot") return CmdSnapshot(args, out, err);

  static const char* kGraphCommands[] = {
      "stats",      "skyline",   "candidates", "generate",
      "centrality", "group-max", "clique",     "topk-cliques",
      "serve",      "mutate"};
  bool known = false;
  for (const char* c : kGraphCommands) known |= args.command == c;
  if (!known) {
    err << "error: unknown command '" << args.command << "'\n";
    PrintUsage(err);
    return 2;
  }

  if (args.Has("json") && args.command != "stats" &&
      args.command != "skyline" && args.command != "candidates" &&
      args.command != "mutate") {
    err << "error: --json is not supported for command '" << args.command
        << "'\n";
    return 2;
  }

  // skyline/serve can start from a snapshot instead of a graph source; the
  // two are mutually exclusive so there is never a question of which graph
  // the command ran against. Exception: `serve --fallback-cold-build` names
  // both on purpose -- the graph source is the degraded-startup fallback
  // when the snapshot fails to load (CmdServe loads it lazily).
  const bool from_snapshot =
      args.Has("snapshot") &&
      (args.command == "skyline" || args.command == "serve");
  const bool fallback_serve =
      args.command == "serve" && args.Has("fallback-cold-build");
  if (from_snapshot && !fallback_serve &&
      (args.Has("input") || args.Has("standin") || args.Has("generate"))) {
    err << "error: --snapshot and graph sources "
           "(--input/--standin/--generate) are mutually exclusive\n";
    return 2;
  }
  if (args.Has("fallback-cold-build") && args.command != "serve") {
    err << "error: --fallback-cold-build is not supported for command '"
        << args.command << "'\n";
    return 2;
  }
  if (args.Has("snapshot") && !from_snapshot) {
    err << "error: --snapshot is not supported for command '" << args.command
        << "'\n";
    return 2;
  }

  std::optional<Graph> g;
  if (!from_snapshot) {
    g = LoadInput(args, err);
    if (!g.has_value()) return 2;
  }
  NSKY_COUNTER_INC("nsky.cli.runs");

  // --trace: collect phase spans for this command only, then dump them.
  const bool tracing = args.Has("trace");
  if (tracing) {
    util::trace::Reset();
    util::trace::SetEnabled(true);
  }

  int code;
  std::string engine_prom;
  {
    NSKY_TRACE_SPAN(args.command.c_str());
    if (args.command == "stats") {
      code = CmdStats(args, *g, out);
    } else if (args.command == "skyline") {
      code = CmdSkyline(args, g.has_value() ? &*g : nullptr, out, err,
                        args.Has("metrics-out") ? &engine_prom : nullptr);
    } else if (args.command == "candidates") {
      code = CmdCandidates(args, *g, out, err);
    } else if (args.command == "serve") {
      code = CmdServe(args, std::move(g), out, err);
    } else if (args.command == "mutate") {
      code = CmdMutate(args, std::move(*g), out, err);
    } else if (args.command == "generate") {
      code = CmdGenerate(args, *g, out, err);
    } else if (args.command == "centrality") {
      code = CmdCentrality(args, *g, out);
    } else if (args.command == "group-max") {
      code = CmdGroupMax(args, *g, out, err);
    } else if (args.command == "clique") {
      code = CmdClique(args, *g, out);
    } else {
      code = CmdTopkCliques(args, *g, out);
    }
  }

  if (tracing) {
    util::trace::SetEnabled(false);
    util::Status status = util::trace::WriteChromeTrace(args.Get("trace"));
    if (!status.ok()) {
      err << "error: " << status.ToString() << "\n";
      if (code == 0) code = 1;
    }
  }

  // --metrics-out: Prometheus exposition text of the global registry plus,
  // when the command served through an engine, that engine's scoped stats.
  if (args.Has("metrics-out")) {
    std::ofstream f(args.Get("metrics-out"),
                    std::ios::binary | std::ios::trunc);
    if (!f) {
      err << "error: cannot open --metrics-out file '"
          << args.Get("metrics-out") << "'\n";
      if (code == 0) code = 1;
    } else {
      f << util::metrics::SnapshotToPrometheus(util::metrics::Snap());
      f << engine_prom;
    }
  }
  return code;
}

}  // namespace nsky::tools
