// The `nsky` command-line tool, structured as a library so the argument
// handling and every subcommand can be unit-tested without spawning
// processes.
//
// Usage:
//   nsky <command> [options]
//
// Commands:
//   stats      --input FILE | --standin NAME | --generate SPEC
//   skyline    (same inputs) [--algo base|filter-refine|cset|2hop|join]
//              [--threads N]  (--algorithm is a deprecated alias of --algo)
//   candidates (same inputs) [--threads N]
//   generate   --generate SPEC --output FILE
//   centrality (same inputs) [--top K]           per-vertex closeness/harmonic
//   group-max  (same inputs) --k K [--objective closeness|harmonic]
//              [--no-skyline-pruning]
//   clique     (same inputs) [--no-skyline-pruning]
//   topk-cliques (same inputs) --k K [--no-skyline-pruning]
//   datasets   (no options)                       list stand-in registry
//
// Graph sources (exactly one):
//   --input FILE       SNAP/KONECT edge list
//   --standin NAME     generated stand-in from the dataset registry
//   --generate SPEC    synthetic graph, SPEC one of:
//                        er:N:P | ba:N:M | pl:N:BETA:AVG | social:N:AVG
//                        clique:N | cycle:N | path:N | star:N | tree:LEVELS
//                      an optional trailing :SEED applies to random models.
//
// Solver options (skyline, candidates):
//   --threads N        worker count for the parallel engine (core/solver.h);
//                      1 = sequential (default), 0 = one per hardware
//                      thread. Results are bit-identical for every N; the
//                      resolved count is reported as stats.threads.
//
// Telemetry options (any graph command):
//   --trace FILE       record RAII phase spans during the command and write
//                      them to FILE as Chrome trace-event JSON (loadable in
//                      chrome://tracing or Perfetto).
//   --json             machine-readable output on stdout instead of the text
//                      rendering; supported by stats, skyline and candidates.
//
// Stable JSON schemas (version bumps on breaking change):
//   stats      {"schema":"nsky.stats.v1","command":"stats",
//               "graph":{"n","m","max_degree","avg_degree","num_isolated",
//                        "num_components","largest_component"}}
//   skyline    {"schema":"nsky.skyline.v1","command":"skyline",
//               "algorithm":<string>,"graph":{"n","m"},
//               "skyline":{"size",<uint>,"members":[<uint>...]},
//               "stats":{"candidate_count","pairs_examined","bloom_prunes",
//                        "degree_prunes","inclusion_tests",
//                        "nbr_elements_scanned","aux_peak_bytes","threads",
//                        "seconds"}}
//   candidates {"schema":"nsky.candidates.v1","command":"candidates",
//               "graph":{"n","m"},"candidates":{"size",<uint>},
//               "stats":{...same as skyline...}}
#ifndef NSKY_TOOLS_CLI_H_
#define NSKY_TOOLS_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace nsky::tools {

// Runs the CLI. `args` excludes the program name. Output (including error
// messages) goes to `out` / `err`. Returns the process exit code.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace nsky::tools

#endif  // NSKY_TOOLS_CLI_H_
