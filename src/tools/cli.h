// The `nsky` command-line tool, structured as a library so the argument
// handling and every subcommand can be unit-tested without spawning
// processes.
//
// Usage:
//   nsky <command> [options]
//
// Commands:
//   stats      --input FILE | --standin NAME | --generate SPEC
//   skyline    (same inputs) [--algo base|filter-refine|cset|2hop|join]
//              [--threads N]  (--algorithm is a deprecated alias of --algo)
//   candidates (same inputs) [--threads N]
//   generate   --generate SPEC --output FILE
//   centrality (same inputs) [--top K]           per-vertex closeness/harmonic
//   group-max  (same inputs) --k K [--objective closeness|harmonic]
//              [--no-skyline-pruning]
//   clique     (same inputs) [--no-skyline-pruning]
//   topk-cliques (same inputs) --k K [--no-skyline-pruning]
//   serve      (same inputs) [--port N] [--server-threads N]
//              [--max-inflight N] [--timeout-ms N] [--max-memory-mb N]
//              [--max-requests N] [--idle-timeout-ms N] [--port-file FILE]
//              [--watch-snapshot-ms N] [--fallback-cold-build]
//              serve the graph over loopback HTTP 1.1 (src/server/):
//              /v1/skyline answers the nsky.skyline.v1 document
//              byte-identically to `skyline --engine --json`, plus
//              /v1/engine_stats, /v1/queries, /v1/metrics, /healthz, and
//              POST /v1/admin/reload?snapshot=PATH (zero-downtime engine
//              hot-swap; answers nsky.reload.v1) and POST /v1/edges
//              (in-place edge mutation: one epoch commit + incremental
//              artifact repair; answers nsky.mutate.v1 and stamps
//              X-Nsky-Epoch).
//              --port 0 binds an ephemeral port (written atomically to
//              --port-file after the bind); --max-requests N exits after N
//              requests (0 = run forever). With --snapshot,
//              --watch-snapshot-ms N polls the file's snapshot id and
//              hot-reloads on change, and --fallback-cold-build degrades a
//              failed load to a cold build from the graph source (which is
//              then allowed alongside --snapshot).
//   mutate     (same inputs) --updates FILE [--algo A] [--threads N]
//              [--json] [--verify]
//              apply an edge-update batch to a warm engine as one epoch
//              transition (core::Engine::ApplyUpdates): the update file
//              has one update per line, `+ U V` inserts the undirected
//              edge {U, V} and `- U V` deletes it ('#' comments and blank
//              lines are skipped; a malformed line rejects the whole batch
//              before anything mutates). The engine runs one cold query
//              first so the batch exercises the incremental serving path:
//              DynamicSkyline maintains the cached skyline and
//              PreparedGraph::RepairForUpdates locally patches the
//              artifacts (or drops them past the dirty-fraction cap).
//              --verify rebuilds a cold engine on the mutated graph and
//              fails (exit 1) unless the warm result matches bit-for-bit,
//              aux_peak_bytes included.
//   snapshot   save|load|inspect -- persistent engine snapshots
//              (src/persist/, format in src/persist/format.h):
//                snapshot save <graph source> --output FILE
//                  [--warm all|none|ALGO,...] [--threads N]
//                  build an engine, warm its artifact cache by running the
//                  named algorithms (default "all" = filter-refine, base,
//                  cset, 2hop, plus the degree/core orderings), then
//                  serialize graph + artifacts to FILE. With --snapshot IN
//                  instead of a graph source, re-saves an existing snapshot
//                  (byte-identical output: the format is canonical).
//                snapshot load --snapshot FILE
//                  restore an engine (honouring --timeout-ms /
//                  --max-memory-mb) and report what came back.
//                snapshot inspect --snapshot FILE
//                  offline fsck: validate header, section table and every
//                  section checksum without building an engine; print the
//                  per-section layout. Exit code matches what load would
//                  report for the same damage.
//              skyline/serve also accept --snapshot FILE in place of a
//              graph source; the restored engine answers its first query
//              warm and advertises the snapshot id (/healthz,
//              /v1/engine_stats, flight-recorder origin).
//   datasets   (no options)                       list stand-in registry
//   metrics    [--format json|prom]               dump the process-wide
//              metrics registry (nsky.metrics.v1 JSON, or Prometheus
//              exposition text 0.0.4) and exit; no graph source needed
//
// Graph sources (exactly one):
//   --input FILE       SNAP/KONECT edge list
//   --standin NAME     generated stand-in from the dataset registry
//   --generate SPEC    synthetic graph, SPEC one of:
//                        er:N:P | ba:N:M | pl:N:BETA:AVG | social:N:AVG
//                        clique:N | cycle:N | path:N | star:N | tree:LEVELS
//                      an optional trailing :SEED applies to random models.
//
// Solver options (skyline, candidates):
//   --threads N        worker count for the parallel engine (core/solver.h);
//                      1 = sequential (default), 0 = one per hardware
//                      thread. Results are bit-identical for every N; the
//                      resolved count is reported as stats.threads.
//
// Resource limits (skyline, candidates; not --algo join):
//   --timeout-ms N     wall-clock deadline for the solve; an overrun exits
//                      with code 4 (DEADLINE_EXCEEDED).
//   --max-memory-mb N  auxiliary byte budget (N > 0), checked against the
//                      solver's deterministic memory ledger; exhaustion
//                      exits with code 6 (RESOURCE_EXHAUSTED). A 2hop run
//                      that cannot fit the budget degrades to filter-refine
//                      first (exact result, stats.degraded_from = "2hop").
//
// IO options (--input only):
//   --strict-io yes|no strict (default) rejects any malformed edge-list
//                      line with a line-numbered error; "no" skips bad
//                      lines, counts them, and notes the count on stderr.
//
// Exit codes (canonical table in util/status.h, shared with the server's
// HTTP statuses):
//   0 success, 1 runtime/IO error, 2 usage or load error,
//   4 deadline exceeded, 5 cancelled, 6 resource exhausted, 7 unavailable.
//
// Telemetry options (any graph command):
//   --trace FILE       record RAII phase spans during the command and write
//                      them to FILE as Chrome trace-event JSON (loadable in
//                      chrome://tracing or Perfetto).
//   --json             machine-readable output on stdout instead of the text
//                      rendering; supported by stats, skyline, candidates
//                      and mutate.
//   --stats            (skyline; requires --engine or --repeat) report the
//                      serving engine's introspection after the queries: the
//                      nsky.engine_stats.v1 document (artifact-cache
//                      hit/miss/build-time ledger, workspace high-water
//                      marks, per-algorithm latency percentiles) and the
//                      nsky.queries.v1 flight-recorder dump. With --json
//                      they embed as additive "engine_stats" /
//                      "recent_queries" keys; in text mode each document is
//                      printed on its own line after the summary.
//   --metrics-out FILE write Prometheus exposition text (format 0.0.4) of
//                      the process-wide metrics registry -- plus the
//                      engine's scoped stats when the command served through
//                      one -- to FILE after the command finishes.
//
// Stable JSON schemas (version bumps on breaking change):
//   stats      {"schema":"nsky.stats.v1","command":"stats",
//               "graph":{"n","m","max_degree","avg_degree","num_isolated",
//                        "num_components","largest_component"}}
//   skyline    {"schema":"nsky.skyline.v1","command":"skyline",
//               "algorithm":<string>,"graph":{"n","m"},
//               "skyline":{"size",<uint>,"members":[<uint>...]},
//               "stats":{"candidate_count","pairs_examined","bloom_prunes",
//                        "degree_prunes","inclusion_tests",
//                        "nbr_elements_scanned","aux_peak_bytes","threads",
//                        "degraded_from","seconds"}}
//   candidates {"schema":"nsky.candidates.v1","command":"candidates",
//               "graph":{"n","m"},"candidates":{"size",<uint>},
//               "stats":{...same as skyline...}}
//   error      {"schema":"nsky.error.v1","command":<string>,
//               "code":<StatusCodeName>,"message":<string>,
//               "exit_code":<uint>}
//              emitted (alone, replacing the result document) when a
//              --json skyline/candidates run fails; the process exits with
//              the embedded exit_code.
//   metrics    {"schema":"nsky.metrics.v1","command":"metrics",
//               "metrics":{"counters":{...},"gauges":{...},
//                          "histograms":{...}}}
//   engine_stats (embedded under "engine_stats" by skyline --stats, or
//              standalone from Engine::StatsJson): see core/engine_stats.h
//              for the nsky.engine_stats.v1 layout.
//   queries    (embedded under "recent_queries" by skyline --stats, or
//              standalone from Engine::RecentQueriesJson): see
//              core/flight_recorder.h for the nsky.queries.v1 layout.
//   mutate     {"schema":"nsky.mutate.v1","command":"mutate",
//               "applied",<uint>,"skipped",<uint>,"epoch",<uint>,
//               "dirty_vertices",<uint>,"repaired",<bool>,
//               "bulk_solve",<bool>,"graph":{"vertices","edges"},
//               "skyline":{"size"},"stats":{...same as skyline...}
//               [,"verified":<bool>]}
//              the same leading keys as the server's POST /v1/edges
//              response body; the CLI appends the post-mutation warm
//              query's skyline/stats and, with --verify, the oracle
//              verdict.
//   snapshot   {"schema":"nsky.snapshot.v1","command":"snapshot",
//               "action":"save"|"inspect","path",<string>,"id",<16 hex>,
//               "format_version",<uint>,"file_bytes",<uint>,
//               "sections":[{"name","id","aux","offset","bytes","crc32"}]}
//              ("action":"load" reports the same header fields plus the
//              restored "graph" and an "artifacts" presence map instead of
//              the section list). Emitted by `snapshot ... --json`.
#ifndef NSKY_TOOLS_CLI_H_
#define NSKY_TOOLS_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace nsky::tools {

// Runs the CLI. `args` excludes the program name. Output (including error
// messages) goes to `out` / `err`. Returns the process exit code.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace nsky::tools

#endif  // NSKY_TOOLS_CLI_H_
