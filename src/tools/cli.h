// The `nsky` command-line tool, structured as a library so the argument
// handling and every subcommand can be unit-tested without spawning
// processes.
//
// Usage:
//   nsky <command> [options]
//
// Commands:
//   stats      --input FILE | --standin NAME | --generate SPEC
//   skyline    (same inputs) [--algorithm base|filter-refine|cset|2hop|join]
//   candidates (same inputs)
//   generate   --generate SPEC --output FILE
//   centrality (same inputs) [--top K]           per-vertex closeness/harmonic
//   group-max  (same inputs) --k K [--objective closeness|harmonic]
//              [--no-skyline-pruning]
//   clique     (same inputs) [--no-skyline-pruning]
//   topk-cliques (same inputs) --k K [--no-skyline-pruning]
//   datasets   (no options)                       list stand-in registry
//
// Graph sources (exactly one):
//   --input FILE       SNAP/KONECT edge list
//   --standin NAME     generated stand-in from the dataset registry
//   --generate SPEC    synthetic graph, SPEC one of:
//                        er:N:P | ba:N:M | pl:N:BETA:AVG | social:N:AVG
//                        clique:N | cycle:N | path:N | star:N | tree:LEVELS
//                      an optional trailing :SEED applies to random models.
#ifndef NSKY_TOOLS_CLI_H_
#define NSKY_TOOLS_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace nsky::tools {

// Runs the CLI. `args` excludes the program name. Output (including error
// messages) goes to `out` / `err`. Returns the process exit code.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace nsky::tools

#endif  // NSKY_TOOLS_CLI_H_
