// Entry point of the `nsky` command-line tool; all logic lives in cli.cc so
// the tool is unit-testable.
#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return nsky::tools::RunCli(args, std::cout, std::cerr);
}
