// Bridges the solvers' deterministic SkylineStats into the global telemetry
// subsystem (util/metrics.h, util/trace.h).
//
// Solvers keep accumulating their counters in plain SkylineStats fields --
// the hot loops never touch an atomic -- and mirror them into the metrics
// registry at phase boundaries. Mirroring inside a trace span is what gives
// the span its counter deltas. Everything here is observation-only: with
// metrics disabled the mirrors are no-ops, and SkylineStats values are
// byte-identical either way (asserted by tests/core/equivalence_test.cc).
//
// Naming scheme:
//   nsky.<algo>.runs                 counter, one per completed run
//   nsky.<algo>.pairs_examined       counter   \
//   nsky.<algo>.bloom_prunes         counter    |
//   nsky.<algo>.degree_prunes        counter    | whole-run totals
//   nsky.<algo>.inclusion_tests      counter    |
//   nsky.<algo>.nbr_elements_scanned counter   /
//   nsky.<algo>.candidate_count      gauge, last run
//   nsky.<algo>.aux_peak_bytes       gauge, last run
//   nsky.<algo>.run_us               histogram of run wall time (microseconds)
//   nsky.<algo>.<phase>.*            counters: per-phase share of the totals
#ifndef NSKY_CORE_TELEMETRY_H_
#define NSKY_CORE_TELEMETRY_H_

#include <cstdint>
#include <string>

#include "core/skyline.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace nsky::core {

// Difference of the deterministic counter fields (now - before). Non-counter
// fields (candidate_count, aux_peak_bytes, seconds) keep `now`'s values.
inline SkylineStats StatsSince(const SkylineStats& now,
                               const SkylineStats& before) {
  SkylineStats d = now;
  d.pairs_examined -= before.pairs_examined;
  d.bloom_prunes -= before.bloom_prunes;
  d.degree_prunes -= before.degree_prunes;
  d.inclusion_tests -= before.inclusion_tests;
  d.nbr_elements_scanned -= before.nbr_elements_scanned;
  return d;
}

// Adds the five deterministic counters to "<prefix>.*" counters.
inline void MirrorStatsCounters(const std::string& prefix,
                                const SkylineStats& s) {
  namespace m = util::metrics;
  if (!m::Enabled()) return;
  m::GetCounter(prefix + ".pairs_examined").Add(s.pairs_examined);
  m::GetCounter(prefix + ".bloom_prunes").Add(s.bloom_prunes);
  m::GetCounter(prefix + ".degree_prunes").Add(s.degree_prunes);
  m::GetCounter(prefix + ".inclusion_tests").Add(s.inclusion_tests);
  m::GetCounter(prefix + ".nbr_elements_scanned").Add(s.nbr_elements_scanned);
}

// Whole-run mirror under "nsky.<algo>.*"; call once per completed run, after
// stats.seconds is final and while the solver's outer trace span is open.
inline void MirrorStatsToMetrics(const std::string& algo,
                                 const SkylineStats& s) {
  namespace m = util::metrics;
  if (!m::Enabled()) return;
  const std::string prefix = "nsky." + algo;
  m::GetCounter(prefix + ".runs").Add(1);
  MirrorStatsCounters(prefix, s);
  m::GetGauge(prefix + ".candidate_count")
      .Set(static_cast<int64_t>(s.candidate_count));
  m::GetGauge(prefix + ".aux_peak_bytes")
      .Set(static_cast<int64_t>(s.aux_peak_bytes));
  m::GetHistogram(prefix + ".run_us")
      .Observe(static_cast<uint64_t>(s.seconds * 1e6));
}

}  // namespace nsky::core

#endif  // NSKY_CORE_TELEMETRY_H_
