// FilterRefineSky (Algorithm 3): the paper's filter-refine framework.
//
// Phase 1 (filter): FilterPhase computes the candidate set C under the
// edge-constrained domination order; R subset-of C by Lemma 1.
// Phase 2 (refine): for every candidate u, scan its 2-hop neighbors w and
// test the domination N(u) subset-of N[w], pruning with
//   (a) the degree test deg(w) >= deg(u) (necessary for inclusion),
//   (b) the equal-degree id test (a larger-id tie can never dominate),
//   (c) the non-candidate skip (a filter-dominated w is redundant: some
//       undominated dominator of u is also in scan range, by transitivity),
//   (d) the bloom-filter subset test BF(u) & BF(w) == BF(u), which has no
//       false negatives; survivors are verified exactly against the
//       adjacency lists (NBRcheck).
// Worst-case O(m + dmax * sum_{u in C} deg(u)^2) time and O(m + |C| dmax)
// space (Theorem 3). The refine scan runs on the parallel engine
// (core/solver.h) and is bit-identical for every thread count.
#ifndef NSKY_CORE_FILTER_REFINE_SKY_H_
#define NSKY_CORE_FILTER_REFINE_SKY_H_

#include <cstdint>

#include "core/skyline.h"
#include "core/solver.h"

namespace nsky::core {

// Deprecated: the per-solver options struct was folded into SolverOptions
// (the bloom fields kept their names, `threads` was added). The alias keeps
// old call sites compiling for one release; new code should build a
// SolverOptions and call Solve().
using FilterRefineOptions = SolverOptions;

// Deprecated: use Solve(g, options) with Algorithm::kFilterRefine.
// Computes the neighborhood skyline of g with Algorithm 3; honors
// options.threads.
SkylineResult FilterRefineSky(const Graph& g,
                              const FilterRefineOptions& options = {});

}  // namespace nsky::core

#endif  // NSKY_CORE_FILTER_REFINE_SKY_H_
