// FilterRefineSky (Algorithm 3): the paper's filter-refine framework.
//
// Phase 1 (filter): FilterPhase computes the candidate set C under the
// edge-constrained domination order; R subset-of C by Lemma 1.
// Phase 2 (refine): for every candidate u, scan its 2-hop neighbors w and
// test the domination N(u) subset-of N[w], pruning with
//   (a) the degree test deg(w) >= deg(u) (necessary for inclusion),
//   (b) the dominated-w skip (transitivity makes it safe), and
//   (c) the bloom-filter subset test BF(u) & BF(w) == BF(u), which has no
//       false negatives; survivors are verified exactly against the
//       adjacency lists (NBRcheck).
// Worst-case O(m + dmax * sum_{u in C} deg(u)^2) time and O(m + |C| dmax)
// space (Theorem 3).
#ifndef NSKY_CORE_FILTER_REFINE_SKY_H_
#define NSKY_CORE_FILTER_REFINE_SKY_H_

#include <cstdint>

#include "core/skyline.h"

namespace nsky::core {

struct FilterRefineOptions {
  // Bloom width in bits (power of two, >= 64); 0 picks
  // NeighborhoodBlooms::ChooseBits(dmax, bits_per_neighbor).
  uint32_t bloom_bits = 0;
  // Sizing factor used when bloom_bits == 0.
  uint32_t bits_per_neighbor = 2;
  // Disables the bloom pre-test entirely (ablation).
  bool use_bloom = true;
};

// Computes the neighborhood skyline of g with Algorithm 3.
SkylineResult FilterRefineSky(const Graph& g,
                              const FilterRefineOptions& options = {});

}  // namespace nsky::core

#endif  // NSKY_CORE_FILTER_REFINE_SKY_H_
