// Shared sorted-set containment kernels for the skyline solvers.
//
// The naive two-pointer merge walks the *larger* list, which is ruinous when
// a low-degree vertex is checked against a hub (O(deg(hub)) per test, and
// power-law graphs funnel most tests through hubs). The galloping variant
// advances through the big list with exponential + binary search, giving
// O(|small| * log |big|) with tiny constants and first-miss early exit.
#ifndef NSKY_CORE_SUBSET_CHECK_H_
#define NSKY_CORE_SUBSET_CHECK_H_

#include <algorithm>
#include <cstdint>
#include <span>

#include "graph/graph.h"

namespace nsky::core {

// True iff every element of `small` except `skip` appears in `big`.
// Both spans sorted ascending, duplicate-free. `scanned` (optional)
// accumulates an operation count proportional to the work done.
inline bool SortedSubsetExcept(std::span<const graph::VertexId> small,
                               std::span<const graph::VertexId> big,
                               graph::VertexId skip,
                               uint64_t* scanned = nullptr) {
  size_t j = 0;
  const size_t big_size = big.size();
  uint64_t ops = 0;
  bool ok = true;
  for (graph::VertexId x : small) {
    if (x == skip) continue;
    // Gallop from j to the first position with big[pos] >= x.
    size_t step = 1;
    size_t hi = j;
    while (hi < big_size && big[hi] < x) {
      j = hi + 1;
      hi += step;
      step <<= 1;
      ++ops;
    }
    if (hi > big_size) hi = big_size;
    // Binary search within (j-1, hi].
    const graph::VertexId* found =
        std::lower_bound(big.data() + j, big.data() + hi, x);
    ops += 2;
    j = static_cast<size_t>(found - big.data());
    if (j == big_size || big[j] != x) {
      ok = false;
      break;
    }
    ++j;
  }
  if (scanned != nullptr) *scanned += ops;
  return ok;
}

}  // namespace nsky::core

#endif  // NSKY_CORE_SUBSET_CHECK_H_
