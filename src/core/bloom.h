// Single-hash bloom filters over vertex neighborhoods (Sec. III-B.2).
//
// The paper builds, for every candidate vertex u, a bit array BF(u) holding
// one hashed bit per neighbor, and uses two tests:
//  * whole-filter subset:  BF(u) & BF(w) == BF(u)  implies possibly
//    N(u) subset-of N(w); a failed test *proves* the containment is false
//    (no false negatives).
//  * per-element bit test (BFcheck): bit h(x) of BF(w) for an x in N(u).
// One hash function based on bit-wise operations is used (after [2] in the
// paper); we use the SplitMix64 finalizer.
//
// Filters for all candidates are stored in one contiguous block of
// `words_per_filter` 64-bit words each, which is what the O(|C| * dmax)
// space term in Theorem 3 corresponds to.
#ifndef NSKY_CORE_BLOOM_H_
#define NSKY_CORE_BLOOM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace nsky::util {
class ThreadPool;
}  // namespace nsky::util

namespace nsky::core {

using graph::Graph;
using graph::VertexId;

class NeighborhoodBlooms {
 public:
  // Chooses the filter width (in bits, a power of two) from the maximum
  // degree: the smallest power of two >= `bits_per_neighbor` * dmax, clamped
  // to [64, 1 << 20]. `bits_per_neighbor` defaults to 2 which keeps the
  // false-positive rate of the subset test low at ~dmax bits per filter.
  static uint32_t ChooseBits(uint32_t max_degree, uint32_t bits_per_neighbor = 2);

  // Width tuned to the *average* degree instead of dmax:
  // next_pow2(4 * bits_per_neighbor * avg_degree), clamped to [64, 1 << 16].
  // On power-law graphs this is far smaller than the dmax-based width (the
  // paper's O(|C| dmax) bloom block), trading saturated filters on the few
  // hubs -- whose exact checks gallop cheaply -- for one-or-two-word filters
  // on everything else. Exactness is unaffected (no false negatives either
  // way); the ablation bench sweeps both regimes.
  static uint32_t ChooseBitsAdaptive(const Graph& g,
                                     uint32_t bits_per_neighbor = 2);

  // Builds filters over N(u) for every u with member[u] == true.
  // `bits` must be a power of two >= 64. When `pool` is non-null the
  // per-vertex filter rows are hashed in parallel; each row is written by
  // exactly one worker, so the filter block is identical for any thread
  // count.
  NeighborhoodBlooms(const Graph& g, const std::vector<uint8_t>& member,
                     uint32_t bits, util::ThreadPool* pool = nullptr);

  // Reassembles a filter block from the raw arrays written by slots()/words()
  // (the persistent-snapshot load path, src/persist/). Input comes from disk
  // so shape invariants are checked rather than asserted: `bits` must be a
  // power of two >= 64, occupied slots must be exactly {0 .. k-1} each used
  // once, and words.size() must equal k * (bits / 64). Hash-bit contents are
  // not re-derived; the snapshot layer's checksums cover byte integrity.
  static util::Result<std::unique_ptr<NeighborhoodBlooms>> FromParts(
      uint32_t bits, std::vector<uint32_t> slots, std::vector<uint64_t> words);

  // True when a filter was built for u.
  bool Has(VertexId u) const { return slot_[u] != kNoSlot; }

  // Whole-filter subset test: false when some bit of BF(u) is missing from
  // BF(w), which proves N(u) is not a subset of N(w). Both vertices must
  // have filters.
  bool SubsetTest(VertexId u, VertexId w) const;

  // Subset test against the *closed* neighborhood of w: like SubsetTest but
  // treats w's own hash bit as set in BF(w) (since w is in N[w]). Needed
  // when the potential dominator w may be adjacent to u; still no false
  // negatives for N(u) subset-of N[w].
  bool SubsetTestClosed(VertexId u, VertexId w) const;

  // Per-element test (BFcheck): true when the bit of x is set in BF(w).
  // False proves x is not in N(w).
  bool TestBit(VertexId w, VertexId x) const;

  // --- Incremental repair (core/prepared_graph.h RepairForUpdates) -------
  //
  // A filter row is a pure function of N(u), so after an edge batch only
  // the rows of vertices whose adjacency changed need re-hashing.

  // Re-hashes the rows of `vertices` in place from g's current adjacency.
  // Only valid while the membership set is unchanged (the slot table is
  // kept); vertices without a filter are skipped. The result is
  // bit-identical to a fresh build over the same membership.
  void RehashRows(const Graph& g, std::span<const VertexId> vertices);

  // Builds the filter block for the new membership map by reusing `old`:
  // rows of vertices that are members in both maps and whose adjacency did
  // not change (row_dirty[u] == 0) are copied; everything else is hashed
  // from g. Bit-identical to NeighborhoodBlooms(g, member, old.bits()).
  // `old` must have the same width and cover the same vertex count.
  static std::unique_ptr<NeighborhoodBlooms> RepairedCopy(
      const Graph& g, const std::vector<uint8_t>& member,
      const NeighborhoodBlooms& old, const std::vector<uint8_t>& row_dirty);

  // Bits per filter.
  uint32_t bits() const { return bits_; }

  // Raw arrays for serialization (src/persist/). slots() maps vertex ->
  // filter slot with kAbsent = 0xFFFFFFFF for vertices without a filter;
  // words() is the contiguous filter block, bits()/64 words per slot.
  static constexpr uint32_t kAbsent = static_cast<uint32_t>(-1);
  const std::vector<uint32_t>& slots() const { return slot_; }
  const std::vector<uint64_t>& words() const { return words_; }

  // Total heap bytes of all filters (for the memory ledger).
  uint64_t MemoryBytes() const;

  // Exact heap bytes a build over `num_filters` members of an `n`-vertex
  // graph at width `bits` will occupy -- MemoryBytes() without building.
  // Used by the solver runtime for byte-budget prechecks (core/solver.h).
  static uint64_t EstimateBytes(VertexId n, uint64_t num_filters,
                                uint32_t bits) {
    return num_filters * (bits / 64) * sizeof(uint64_t) +
           static_cast<uint64_t>(n) * sizeof(uint32_t);
  }

 private:
  static constexpr uint32_t kNoSlot = kAbsent;

  NeighborhoodBlooms() = default;

  uint64_t HashBit(VertexId x) const;
  const uint64_t* FilterOf(VertexId u) const {
    return words_.data() + static_cast<size_t>(slot_[u]) * words_per_filter_;
  }

  uint32_t bits_ = 64;
  uint32_t words_per_filter_ = 1;
  std::vector<uint32_t> slot_;   // vertex -> filter slot (kNoSlot if absent)
  std::vector<uint64_t> words_;  // all filters, contiguous
};

}  // namespace nsky::core

#endif  // NSKY_CORE_BLOOM_H_
