// BaseCSet baseline (Sec. V-A): runs FilterPhase (Algorithm 2) to obtain the
// candidate set C, then applies BaseSky's counting scheme (Algorithm 1) only
// to the vertices of C -- candidate pruning without the bloom filter.
// Time O(dmax * sum_{u in C} deg(u)). Runs on the parallel engine
// (core/solver.h); bit-identical for every thread count.
#ifndef NSKY_CORE_BASE_CSET_H_
#define NSKY_CORE_BASE_CSET_H_

#include "core/skyline.h"
#include "core/solver.h"

namespace nsky::core {

// Deprecated: use Solve(g, options) with Algorithm::kBaseCSet.
// Computes the neighborhood skyline via FilterPhase + counting refinement.
SkylineResult BaseCSet(const Graph& g);

// As above with execution options (options.threads; options.algorithm is
// ignored).
SkylineResult BaseCSet(const Graph& g, const SolverOptions& options);

}  // namespace nsky::core

#endif  // NSKY_CORE_BASE_CSET_H_
