// core::Engine: the serving entry point for repeated skyline queries.
//
//   nsky::core::Engine engine(std::move(g));
//   nsky::core::QueryResponse response;
//   engine.Execute({.options = options}, &response);         // cold: builds
//   engine.Execute({.options = options}, &response);         // warm: cached
//
// An Engine owns a graph, a PreparedGraph artifact cache built from it, and
// one {ThreadPool, SolverWorkspace} pair per distinct resolved thread
// count. Execute() is the single query surface (core/query.h): every input
// -- options, limits, output mode -- arrives in a QueryRequest, every
// output -- result, status, warmth -- leaves in a QueryResponse, and the
// historical Query / QueryOrError / QueryInto / QueryBatch entry points are
// thin inline wrappers over it. Execute() routes through the same dispatch
// body as Solve(), so every result -- skyline order, dominator array, every
// deterministic SkylineStats counter including aux_peak_bytes -- is
// bit-identical to a cold Solve() call with the same options at any thread
// count. What changes is the cost profile: graph-derived artifacts (filter
// candidates, blooms, 2-hop lists) are computed once and shared across
// queries, and per-query scratch comes from the pooled workspace, so a warm
// query of a previously-seen shape performs no heap allocation in the
// solver hot path (Execute into a reused response extends that to the
// outputs; the workspace allocation ledger verifies it in tests).
//
// Semantics that differ from cold Solve(), by design:
//  * Artifact builds run under an unlimited context (shared state must not
//    be left half-built by one query's deadline), so a warm query can
//    succeed where the equivalent cold run would have been cancelled
//    mid-build. Per-query deadlines/budgets still apply at every solver
//    phase boundary and between parallel slices.
//  * ThreadPool workers live across queries instead of being spawned and
//    joined per call.
//
// Concurrency: an Engine serves one caller at a time (the underlying
// ThreadPool is not reentrant); queries are not internally synchronized.
// Use one Engine per serving thread, or serialize externally.
#ifndef NSKY_CORE_ENGINE_H_
#define NSKY_CORE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <atomic>
#include <utility>

#include "core/dynamic_skyline.h"
#include "core/engine_stats.h"
#include "core/flight_recorder.h"
#include "core/prepared_graph.h"
#include "core/query.h"
#include "core/solver.h"
#include "core/workspace.h"
#include "graph/graph.h"
#include "graph/versioned_graph.h"
#include "util/execution_context.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace nsky::core {

struct EngineOptions {
  // Options used by Query() / SkylineCache() when the caller passes none.
  SolverOptions defaults;
};

class Engine {
 public:
  // Takes ownership of the graph; artifacts build lazily on first use.
  explicit Engine(Graph g, EngineOptions options = {});
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // The current epoch's graph. The reference is stable until the next
  // ApplyUpdates() commit or RefreshFrom(); in-flight readers that must
  // survive either pin graph_snapshot() instead.
  const Graph& graph() const { return versioned_.Current(); }
  std::shared_ptr<const Graph> graph_snapshot() const {
    return versioned_.Snapshot();
  }

  // Epochs committed by ApplyUpdates since construction / last RefreshFrom.
  uint64_t epoch() const { return versioned_.epoch(); }

  const EngineOptions& options() const { return options_; }
  PreparedGraph& prepared() { return prepared_; }
  const PreparedGraph& prepared() const { return prepared_; }

  // Snapshot provenance (src/persist/). Load() stamps the engine it
  // restores; cold-built engines have no snapshot info. Surfaced through
  // StatsSnapshot(), the flight recorder origin and the server's /healthz.
  void set_snapshot_info(SnapshotInfo info) {
    snapshot_info_ = std::move(info);
    recorder_.set_origin("snapshot:" + snapshot_info_->id);
  }
  const std::optional<SnapshotInfo>& snapshot_info() const {
    return snapshot_info_;
  }

  // snapshot_info() with mutation provenance: once ApplyUpdates has
  // committed an epoch the served graph no longer matches the snapshot
  // file, so the id gains a "+dirty@epoch<N>" suffix. What StatsSnapshot(),
  // /healthz and the X-Nsky-Snapshot header report.
  std::optional<SnapshotInfo> EffectiveSnapshotInfo() const;

  // The single query surface (core/query.h): fills *response with the
  // result, status and warmth of one query run under the request's options
  // and limits. A query interrupted by its context leaves the engine fully
  // serviceable: the next query re-initializes all scratch it reads. The
  // response's buffers are recycled (capacity kept, contents replaced), so
  // a serving loop that reuses one response stays allocation-free once
  // warm. Returns response->status for call-site convenience.
  util::Status Execute(const QueryRequest& request, QueryResponse* response);
  QueryResponse Execute(const QueryRequest& request) {
    QueryResponse response;
    Execute(request, &response);
    return response;
  }

  // Historical wrappers, all thin shims over Execute().
  //
  // Unlimited-context queries; infallible like Solve().
  SkylineResult Query() { return Query(options_.defaults); }
  SkylineResult Query(const SolverOptions& options) {
    QueryResponse response;
    Execute(QueryRequest{options, util::ExecutionContext::Unlimited(), true},
            &response);
    NSKY_CHECK_MSG(response.status.ok(),
                   "Query with an unlimited context cannot fail");
    return std::move(response.result);
  }

  // Context-honoring queries, mirroring SolveOrError / SolveInto.
  util::Result<SkylineResult> QueryOrError(
      const SolverOptions& options, const util::ExecutionContext& ctx = {}) {
    QueryResponse response;
    Execute(QueryRequest{options, ctx, true}, &response);
    if (!response.status.ok()) return response.status;
    return std::move(response.result);
  }
  util::Status QueryInto(const SolverOptions& options,
                         const util::ExecutionContext& ctx,
                         SkylineResult* result) {
    // Donate the caller's buffers to the response so a reused result keeps
    // its steady-state capacity through the round trip.
    QueryResponse response;
    response.result = std::move(*result);
    Execute(QueryRequest{options, ctx, true}, &response);
    *result = std::move(response.result);
    return response.status;
  }

  // Runs the batch serially in order against the shared artifacts; entry i
  // equals Query(batch[i]).
  std::vector<SkylineResult> QueryBatch(
      const std::vector<SolverOptions>& batch);

  // Admission-control hook for serving front ends: accounts for a request
  // that was rejected before reaching Execute() (load shedding, draining).
  // Bumps the shed counter and files a flight-recorder entry carrying the
  // rejection status, so shed traffic shows up in StatsSnapshot() and the
  // nsky.queries.v1 document alongside served queries. Unlike Execute()
  // this is safe to call concurrently with a running query -- rejection is
  // precisely the moment the engine is busy.
  void RecordRejection(const SolverOptions& options,
                       const util::Status& status);

  // The skyline under the engine's default options, computed on first call
  // and cached. The shared pool the clique / centrality / setjoin
  // consumers read instead of privately re-solving.
  const std::vector<VertexId>& SkylineCache();

  // The cached filter-phase artifacts (candidates, O(*) array, membership
  // map), built on first use with the default thread count's pool. The
  // setjoin baseline seeds its query set from these.
  const PreparedGraph::FilterArtifacts& Filter();

  // Drops the PreparedGraph artifacts and the skyline cache; the graph is
  // unchanged. Next query rebuilds.
  void InvalidateArtifacts();

  // Replaces the graph wholesale (a different dataset, not an edit of this
  // one) and invalidates everything derived from the old graph. Rewinds
  // the epoch to 0; for in-place edits ApplyUpdates is strictly better.
  void RefreshFrom(Graph g);

  // --- Mutation (the tentpole of the dynamic-serving path) ----------------

  // Outcome of one ApplyUpdates batch, echoed by the nsky.mutate.v1
  // document.
  struct MutationResult {
    size_t applied = 0;        // updates that changed the staged view
    size_t skipped = 0;        // self loops / out-of-range / no-ops
    uint64_t epoch = 0;        // epoch after the call
    uint64_t dirty_vertices = 0;  // |D| the artifact repair re-verified
    bool repaired = false;     // artifacts patched in place (vs dropped)
    bool bulk_solve = false;   // skyline maintenance chose a full re-solve
  };

  // Applies one edge batch as a single epoch transition: stages every
  // update against the versioned graph, commits the net batch into the
  // next immutable CSR epoch, maintains the cached skyline through
  // DynamicSkyline (incremental or bulk, by its cost model) and locally
  // repairs the PreparedGraph artifacts (PreparedGraph::RepairForUpdates).
  // A batch whose net effect is empty commits nothing and keeps the epoch.
  // After the call, warm queries are bit-identical -- including
  // aux_peak_bytes -- to a cold-built engine on the post-mutation graph.
  // Readers holding graph_snapshot() keep the pre-commit epoch; like
  // Execute(), this must be serialized with queries by the caller.
  MutationResult ApplyUpdates(std::span<const graph::EdgeUpdate> updates);

  uint64_t queries_served() const { return queries_served_; }
  uint64_t shed_queries() const {
    return shed_queries_.load(std::memory_order_relaxed);
  }

  // --- Observability -----------------------------------------------------
  //
  // Everything below is observation-only: no solver reads any of it, and
  // with instrumentation fully enabled every query result (including
  // aux_peak_bytes) stays bit-identical to the uninstrumented path (pinned
  // by the equivalence suite).

  // Point-in-time copy of this engine's serving counters: cache hit/miss
  // ledger per artifact, workspace high-water marks, per-algorithm latency
  // distributions, warm/cold split. Latency histograms observe the
  // algorithm that actually RAN (a degraded 2hop query counts under
  // filter-refine, with the degradation visible in the flight recorder).
  EngineStats StatsSnapshot() const;

  // EngineStatsToJson(StatsSnapshot()): the nsky.engine_stats.v1 document.
  std::string StatsJson() const;

  // recorder().ToJson(max): the nsky.queries.v1 document.
  std::string RecentQueriesJson(
      size_t max = FlightRecorder::kDefaultCapacity) const;

  // Ring of the most recent queries (always on; recording is a handful of
  // relaxed stores). Safe to read concurrently with a running query.
  const FlightRecorder& recorder() const { return recorder_; }

  // Slow-query hook: when a query's dispatch takes at least this many
  // microseconds, its full phase trace is captured into the recorder's slow
  // log. Parsed from $NSKY_SLOW_QUERY_US at construction (0 = off); the
  // setter exists so tests need not mutate the environment. Capture borrows
  // the global tracer, so it stays off while the caller is already tracing.
  void set_slow_query_threshold_us(uint64_t us) {
    slow_query_threshold_us_ = us;
  }
  uint64_t slow_query_threshold_us() const { return slow_query_threshold_us_; }

  // Workspace allocation ledger for the resources serving `threads`
  // (resolved as in SolverOptions). Tests assert these stay flat across
  // warm queries.
  uint64_t WorkspaceAllocationEvents(uint32_t threads);
  uint64_t WorkspaceAllocatedBytes(uint32_t threads);

  // Fills every pooled workspace with garbage; see
  // SolverWorkspace::PoisonForTesting.
  void PoisonScratchForTesting();

 private:
  static constexpr int kNumAlgorithms = 4;  // Algorithm enum arity

  struct Resources {
    explicit Resources(unsigned threads) : pool(threads) {}
    util::ThreadPool pool;
    SolverWorkspace workspace;
  };
  Resources& ResourcesFor(unsigned resolved_threads);

  graph::VersionedGraph versioned_;
  EngineOptions options_;
  PreparedGraph prepared_;
  std::map<unsigned, std::unique_ptr<Resources>> resources_;
  std::vector<VertexId> skyline_cache_;
  bool has_skyline_cache_ = false;
  // Maintains skyline_cache_ across ApplyUpdates batches; created lazily on
  // the first mutation that finds a cached skyline, dropped whenever the
  // cache is (InvalidateArtifacts / RefreshFrom).
  std::unique_ptr<DynamicSkyline> dynamic_;
  // Mutation telemetry (EngineStats::MutationStats).
  uint64_t mutation_batches_ = 0;
  uint64_t updates_applied_ = 0;
  uint64_t updates_skipped_ = 0;
  uint64_t artifact_repairs_ = 0;
  uint64_t repair_fallbacks_ = 0;
  uint64_t dirty_last_ = 0;
  uint64_t dirty_total_ = 0;
  std::optional<SnapshotInfo> snapshot_info_;
  uint64_t queries_served_ = 0;
  uint64_t warm_queries_ = 0;
  uint64_t cold_queries_ = 0;
  uint64_t timeout_queries_ = 0;
  uint64_t cancelled_queries_ = 0;
  // Atomic because RecordRejection() runs concurrently with Execute().
  std::atomic<uint64_t> shed_queries_{0};
  uint64_t slow_query_threshold_us_ = 0;
  FlightRecorder recorder_;
  // Indexed by Algorithm; named with the stable CLI algorithm names. These
  // are engine-scoped (not in the global registry), but the global
  // metrics::SetEnabled() switch still gates Observe().
  util::metrics::Histogram latency_us_[kNumAlgorithms] = {
      util::metrics::Histogram("filter-refine"),
      util::metrics::Histogram("base"),
      util::metrics::Histogram("cset"),
      util::metrics::Histogram("2hop")};
};

}  // namespace nsky::core

#endif  // NSKY_CORE_ENGINE_H_
