// FilterPhase (Algorithm 2): neighborhood-candidate computation.
//
// Evaluates the *edge-constrained* domination order (Definition 5), which
// only relates adjacent vertices, and returns the candidate set
// C = { u : no neighbor v has N[u] subset-of N[v] (strictly, or equal with
// smaller id) }. By Lemma 1 the true skyline R is a subset of C, so C is a
// cheap over-approximation used to prune FilterRefineSky's search space.
//
// Note on the paper: the printed pseudo-code of Algorithm 2 is garbled (its
// counter T is bumped once per neighbor yet compared against deg(u)); we
// implement the semantics of Definition 5 directly with merge-based
// closed-neighborhood containment and the same one-write O(*) discipline.
// Time is O(sum over edges of min work with first-hit early exit) --
// effectively linear on sparse graphs, matching Theorem 2's O(m) intent.
#ifndef NSKY_CORE_FILTER_PHASE_H_
#define NSKY_CORE_FILTER_PHASE_H_

#include "core/skyline.h"
#include "core/solver.h"

namespace nsky::core {

// Computes the neighborhood candidates C of g. The result's `skyline`
// member holds C (sorted) and `dominator` the edge-constrained O(*) array.
SkylineResult FilterPhase(const Graph& g);

// As above with execution options (options.threads drives the parallel
// engine; options.algorithm is ignored -- this always runs the filter).
SkylineResult FilterPhase(const Graph& g, const SolverOptions& options);

// Context-aware variant with SolveInto's partial-result contract
// (core/solver.h): honors ctx's cancel token, deadline and byte budget; on
// failure *result has empty skyline/dominator and partial stats.
util::Status FilterPhaseInto(const Graph& g, const SolverOptions& options,
                             const util::ExecutionContext& ctx,
                             SkylineResult* result);

}  // namespace nsky::core

#endif  // NSKY_CORE_FILTER_PHASE_H_
