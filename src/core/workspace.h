// SolverWorkspace: pooled per-query scratch for the solver engine.
//
// Every solver needs the same families of scratch -- a candidate-membership
// byte map, per-worker stat accumulators, per-worker intersection counters,
// 2-hop build buffers. Historically each Solve() call allocated them fresh;
// a SolverWorkspace owns them across queries so a warm engine
// (core/engine.h) answers repeated queries without touching the heap.
//
// Contract:
//  * Prepare*() returns a buffer sized for the request. Contents are
//    UNSPECIFIED unless the method documents otherwise -- solvers must
//    initialize everything they read, never rely on values left behind by a
//    previous query. The poisoned-scratch test (tests/core/workspace_test.cc)
//    enforces this by filling every buffer with garbage between queries.
//  * Growth is the only allocation: Prepare*() reserves when capacity is
//    short and records the event in allocation_events()/allocated_bytes().
//    Once a workspace has served one query of a given shape (n, workers,
//    algorithm), identical queries are allocation-free -- the property the
//    engine's warm path asserts through these counters.
//  * Determinism: the workspace never influences results. All deterministic
//    ledger charges (SkylineStats::aux_peak_bytes) are computed from logical
//    sizes, not from reused capacities, so a pooled run reports bit-identical
//    stats to a fresh run (core/solver.h).
//  * Not thread-safe: one workspace serves one query at a time. The engine's
//    WorkspacePool hands each concurrent query its own instance.
#ifndef NSKY_CORE_WORKSPACE_H_
#define NSKY_CORE_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "core/skyline.h"
#include "graph/graph.h"

namespace nsky::core {

class SolverWorkspace {
 public:
  SolverWorkspace() = default;
  SolverWorkspace(const SolverWorkspace&) = delete;
  SolverWorkspace& operator=(const SolverWorkspace&) = delete;

  // Membership byte map sized n, zero-filled (callers mark their members).
  std::vector<uint8_t>& PrepareMember(uint64_t n);

  // 2-hop adjacency buffer (RunBase2Hop): outer vector sized n, every inner
  // list cleared with its capacity retained.
  std::vector<std::vector<VertexId>>& PrepareTwoHop(uint64_t n);

  // Per-worker deterministic stat accumulators, reset to zero.
  std::vector<SkylineStats>& PrepareWorkerStats(unsigned workers);

  // Per-worker intersection counters (BaseSky/BaseCSet), each sized n and
  // zero-filled.
  std::vector<std::vector<uint32_t>>& PrepareWorkerCounts(unsigned workers,
                                                          uint64_t n);

  // Per-worker touched-vertex lists, cleared (capacity retained).
  std::vector<std::vector<VertexId>>& PrepareWorkerTouched(unsigned workers);

  // Per-worker uint64 accumulators (byte tallies), zero-filled.
  std::vector<uint64_t>& PrepareWorkerBytes(unsigned workers);

  // Cumulative count of capacity growths since construction and the bytes
  // they added. A warm engine query on a previously-seen shape leaves both
  // unchanged -- the ledger the zero-allocation tests assert on.
  uint64_t allocation_events() const { return allocation_events_; }
  uint64_t allocated_bytes() const { return allocated_bytes_; }

  // Fills every live buffer with garbage (0xAB patterns). Test-only: proves
  // solvers initialize all scratch they read instead of relying on state
  // left behind by earlier queries.
  void PoisonForTesting();

 private:
  template <typename T>
  void Reserve(std::vector<T>& v, size_t need) {
    if (v.capacity() < need) {
      ++allocation_events_;
      allocated_bytes_ += (need - v.capacity()) * sizeof(T);
      v.reserve(need);
    }
  }

  std::vector<uint8_t> member_;
  std::vector<std::vector<VertexId>> two_hop_;
  std::vector<SkylineStats> worker_stats_;
  std::vector<std::vector<uint32_t>> worker_counts_;
  std::vector<std::vector<VertexId>> worker_touched_;
  std::vector<uint64_t> worker_bytes_;

  uint64_t allocation_events_ = 0;
  uint64_t allocated_bytes_ = 0;
};

}  // namespace nsky::core

#endif  // NSKY_CORE_WORKSPACE_H_
