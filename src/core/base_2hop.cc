#include <algorithm>
#include <memory>
#include <vector>

#include "core/bloom.h"
#include "core/solver_internal.h"
#include "core/subset_check.h"
#include "core/telemetry.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace {

// Same exact verification as the filter-refine NBRcheck.
bool OpenSubsetOfClosed(const Graph& g, VertexId u, VertexId w,
                        uint64_t* scanned) {
  return SortedSubsetExcept(g.Neighbors(u), g.Neighbors(w), w, scanned);
}

}  // namespace

namespace internal {

uint64_t EstimateBase2HopBytes(const Graph& g, const SolverOptions& options) {
  const VertexId n = g.NumVertices();
  // Pre-dedup 2-hop buffer volume: for each u the materializer pushes
  // sum_{v in N(u)} deg(v) elements before dedup, so the deduped lists can
  // only be smaller. An O(m) degree scan, no allocation.
  uint64_t elements = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.Neighbors(u)) elements += g.Degree(v);
  }
  uint64_t bytes = elements * sizeof(VertexId) +
                   static_cast<uint64_t>(n) * sizeof(std::vector<VertexId>) +
                   static_cast<uint64_t>(n) * sizeof(VertexId);  // dominator
  if (options.use_bloom) {
    uint32_t bits = options.bloom_bits != 0
                        ? options.bloom_bits
                        : NeighborhoodBlooms::ChooseBitsAdaptive(
                              g, options.bits_per_neighbor);
    bytes += NeighborhoodBlooms::EstimateBytes(n, n, bits);
  }
  return bytes;
}

util::Status RunBase2Hop(const Graph& g, const SolverOptions& options,
                         SolveEnv& env, SkylineResult* result) {
  NSKY_TRACE_SPAN("base_2hop");
  util::Timer timer;
  const util::ExecutionContext& ctx = *env.ctx;
  util::ThreadPool& pool = *env.pool;
  const VertexId n = g.NumVertices();

  ResetResult(result);
  result->dominator.resize(n);
  std::vector<VertexId>& dominator = result->dominator;

  util::MemoryTally tally;
  tally.Add(static_cast<uint64_t>(n) * sizeof(VertexId));  // dominator

  // ---- Materialize all 2-hop neighbor lists (the expensive part). ----
  // Slot u is written only by the worker owning u; the per-vertex lists are
  // identical for any partition. Byte accounting uses the logical list
  // sizes, accumulated per worker and merged in worker order, so the ledger
  // is deterministic and independent of buffer reuse. Warm runs take the
  // PreparedGraph's cached lists and replay the build's recorded charge.
  const std::vector<std::vector<VertexId>>* two_hop_ptr = nullptr;
  if (env.prepared != nullptr) {
    const PreparedGraph::TwoHopArtifacts& art = env.prepared->TwoHop(pool);
    two_hop_ptr = &art.lists;
    tally.Add(art.charged_bytes);
  } else {
    NSKY_TRACE_SPAN("two_hop_build");
    std::vector<std::vector<VertexId>>& two_hop =
        env.workspace->PrepareTwoHop(n);
    std::vector<uint64_t>& bytes_per_worker =
        env.workspace->PrepareWorkerBytes(pool.num_threads());
    util::Status scan = pool.ParallelFor(
        n, ctx, [&](unsigned worker, uint64_t begin, uint64_t end) {
          NSKY_TRACE_SPAN("two_hop_build.worker");
          std::vector<VertexId> buffer;
          for (VertexId u = static_cast<VertexId>(begin); u < end; ++u) {
            buffer.clear();
            for (VertexId v : g.Neighbors(u)) {
              buffer.push_back(v);
              for (VertexId w : g.Neighbors(v)) {
                if (w != u) buffer.push_back(w);
              }
            }
            std::sort(buffer.begin(), buffer.end());
            buffer.erase(std::unique(buffer.begin(), buffer.end()),
                         buffer.end());
            two_hop[u].assign(buffer.begin(), buffer.end());
            bytes_per_worker[worker] += two_hop[u].size() * sizeof(VertexId);
          }
        });
    for (uint64_t bytes : bytes_per_worker) tally.Add(bytes);
    tally.Add(static_cast<uint64_t>(n) * sizeof(std::vector<VertexId>));
    if (!scan.ok()) {
      result->stats.seconds = timer.Seconds();
      return scan;
    }
    two_hop_ptr = &two_hop;
  }
  const std::vector<std::vector<VertexId>>& two_hop = *two_hop_ptr;
  if (util::Status s = ctx.CheckBudget(tally.peak_bytes()); !s.ok()) {
    result->stats.seconds = timer.Seconds();
    return s;
  }

  // ---- Bloom filters for every vertex. ----
  const NeighborhoodBlooms* blooms = nullptr;
  std::unique_ptr<NeighborhoodBlooms> owned_blooms;
  if (options.use_bloom) {
    NSKY_TRACE_SPAN("bloom_build");
    uint32_t bits = options.bloom_bits != 0
                        ? options.bloom_bits
                        : NeighborhoodBlooms::ChooseBitsAdaptive(
                              g, options.bits_per_neighbor);
    if (env.prepared != nullptr) {
      blooms = &env.prepared->FullBlooms(bits, pool);
    } else {
      std::vector<uint8_t>& member = env.workspace->PrepareMember(n);
      std::fill(member.begin(), member.end(), 1);
      owned_blooms =
          std::make_unique<NeighborhoodBlooms>(g, member, bits, &pool);
      blooms = owned_blooms.get();
    }
    tally.Add(blooms->MemoryBytes());
  }
  if (util::Status s = ctx.CheckBudget(tally.peak_bytes()); !s.ok()) {
    result->stats.seconds = timer.Seconds();
    return s;
  }
  if (util::Status s = ctx.CheckHealth(); !s.ok()) {
    result->stats.seconds = timer.Seconds();
    return s;
  }

  // ---- Verify every vertex against its 2-hop list. ----
  // Pure per-vertex scan: the first w in 2-hop order that passes degree,
  // id-tiebreak, bloom and NBRcheck becomes dominator[u]. Workers write
  // only their own chunk's slots.
  {
    NSKY_TRACE_SPAN("verify");
    std::vector<SkylineStats>& per_worker =
        env.workspace->PrepareWorkerStats(pool.num_threads());
    util::Status scan = pool.ParallelFor(
        n, ctx, [&](unsigned worker, uint64_t begin, uint64_t end) {
      NSKY_TRACE_SPAN("verify.worker");
      SkylineStats& stats = per_worker[worker];
      for (VertexId u = static_cast<VertexId>(begin); u < end; ++u) {
        dominator[u] = u;
        const uint32_t deg_u = g.Degree(u);
        for (VertexId w : two_hop[u]) {
          ++stats.pairs_examined;
          if (g.Degree(w) < deg_u) {
            ++stats.degree_prunes;
            continue;
          }
          // Equal degree + inclusion would be mutual; only a smaller id
          // dominates.
          if (g.Degree(w) == deg_u && w > u) continue;
          // The closed-neighborhood variant is required here: unlike in
          // the filter-refine path, w may be adjacent to u (no filter
          // phase ran), and then w's own bit legitimately covers u's
          // neighbor w.
          if (blooms != nullptr && !blooms->SubsetTestClosed(u, w)) {
            ++stats.bloom_prunes;
            continue;
          }
          ++stats.inclusion_tests;
          if (!OpenSubsetOfClosed(g, u, w, &stats.nbr_elements_scanned)) {
            continue;
          }
          dominator[u] = w;  // strict, or equal-degree with w < u
          break;
        }
      }
        });
    MergeWorkerStats(&result->stats, per_worker);
    if (!scan.ok()) {
      result->stats.seconds = timer.Seconds();
      return scan;
    }
    // Mirrored inside the span so "verify" carries its own counter deltas.
    MirrorStatsCounters("nsky.base_2hop.verify", result->stats);
  }

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] == u) result->skyline.push_back(u);
  }
  tally.Add(result->skyline.size() * sizeof(VertexId));
  result->stats.aux_peak_bytes = tally.peak_bytes();
  result->stats.seconds = timer.Seconds();
  MirrorStatsToMetrics("base_2hop", result->stats);
  return util::Status::Ok();
}

}  // namespace internal

}  // namespace nsky::core
