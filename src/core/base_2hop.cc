#include "core/base_2hop.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/bloom.h"
#include "core/subset_check.h"
#include "core/telemetry.h"
#include "util/memory.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace {

// Same exact verification as FilterRefineSky's NBRcheck.
bool OpenSubsetOfClosed(const Graph& g, VertexId u, VertexId w,
                        uint64_t* scanned) {
  return SortedSubsetExcept(g.Neighbors(u), g.Neighbors(w), w, scanned);
}

}  // namespace

SkylineResult Base2Hop(const Graph& g, const FilterRefineOptions& options) {
  NSKY_TRACE_SPAN("base_2hop");
  util::Timer timer;
  const VertexId n = g.NumVertices();

  SkylineResult result;
  result.dominator.resize(n);
  for (VertexId u = 0; u < n; ++u) result.dominator[u] = u;
  std::vector<VertexId>& dominator = result.dominator;

  util::MemoryTally tally;
  tally.Add(dominator.capacity() * sizeof(VertexId));

  // ---- Materialize all 2-hop neighbor lists (the expensive part). ----
  std::vector<std::vector<VertexId>> two_hop(n);
  {
    NSKY_TRACE_SPAN("two_hop_build");
    std::vector<VertexId> buffer;
    for (VertexId u = 0; u < n; ++u) {
      buffer.clear();
      for (VertexId v : g.Neighbors(u)) {
        buffer.push_back(v);
        for (VertexId w : g.Neighbors(v)) {
          if (w != u) buffer.push_back(w);
        }
      }
      std::sort(buffer.begin(), buffer.end());
      buffer.erase(std::unique(buffer.begin(), buffer.end()), buffer.end());
      two_hop[u].assign(buffer.begin(), buffer.end());
      tally.Add(two_hop[u].capacity() * sizeof(VertexId));
    }
    tally.Add(two_hop.capacity() * sizeof(std::vector<VertexId>));
  }

  // ---- Bloom filters for every vertex. ----
  std::unique_ptr<NeighborhoodBlooms> blooms;
  if (options.use_bloom) {
    NSKY_TRACE_SPAN("bloom_build");
    std::vector<uint8_t> member(n, 1);
    uint32_t bits = options.bloom_bits != 0
                        ? options.bloom_bits
                        : NeighborhoodBlooms::ChooseBitsAdaptive(
                              g, options.bits_per_neighbor);
    blooms = std::make_unique<NeighborhoodBlooms>(g, member, bits);
    tally.Add(blooms->MemoryBytes());
  }

  // ---- Verify every vertex against its 2-hop list. ----
  {
    NSKY_TRACE_SPAN("verify");
    for (VertexId u = 0; u < n; ++u) {
      if (dominator[u] != u) continue;
      const uint32_t deg_u = g.Degree(u);
      for (VertexId w : two_hop[u]) {
        ++result.stats.pairs_examined;
        if (g.Degree(w) < deg_u) {
          ++result.stats.degree_prunes;
          continue;
        }
        if (dominator[w] != w) continue;
        // The closed-neighborhood variant is required here: unlike in
        // FilterRefineSky, w may be adjacent to u (no filter phase ran), and
        // then w's own bit legitimately covers u's neighbor w.
        if (blooms != nullptr && !blooms->SubsetTestClosed(u, w)) {
          ++result.stats.bloom_prunes;
          continue;
        }
        ++result.stats.inclusion_tests;
        if (!OpenSubsetOfClosed(g, u, w,
                                &result.stats.nbr_elements_scanned)) {
          continue;
        }
        if (g.Degree(w) == deg_u) {
          if (u > w) {
            dominator[u] = w;
            break;
          }
          if (dominator[w] == w) dominator[w] = u;
        } else {
          dominator[u] = w;
          break;
        }
      }
    }
    // Mirrored inside the span so "verify" carries its own counter deltas.
    MirrorStatsCounters("nsky.base_2hop.verify", result.stats);
  }

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] == u) result.skyline.push_back(u);
  }
  tally.Add(result.skyline.capacity() * sizeof(VertexId));
  result.stats.aux_peak_bytes = tally.peak_bytes();
  result.stats.seconds = timer.Seconds();
  MirrorStatsToMetrics("base_2hop", result.stats);
  return result;
}

}  // namespace nsky::core
