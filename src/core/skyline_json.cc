#include "core/skyline_json.h"

#include <utility>

#include "core/engine_stats.h"
#include "core/flight_recorder.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace nsky::core {

void WriteSkylineStatsJson(const SkylineStats& stats, util::JsonWriter* w) {
  w->Key("stats");
  w->BeginObject();
  w->KV("candidate_count", stats.candidate_count);
  w->KV("pairs_examined", stats.pairs_examined);
  w->KV("bloom_prunes", stats.bloom_prunes);
  w->KV("degree_prunes", stats.degree_prunes);
  w->KV("inclusion_tests", stats.inclusion_tests);
  w->KV("nbr_elements_scanned", stats.nbr_elements_scanned);
  w->KV("aux_peak_bytes", stats.aux_peak_bytes);
  w->KV("threads", static_cast<uint64_t>(stats.threads));
  w->KV("degraded_from", stats.degraded_from);
  w->KV("seconds", stats.seconds);
  w->EndObject();
}

void WriteSkylineDocJson(const graph::Graph& g, const SkylineResult& r,
                         const SkylineDocOptions& doc, Engine* engine,
                         util::JsonWriter* w) {
  NSKY_CHECK_MSG(!doc.include_engine_docs || engine != nullptr,
                 "include_engine_docs requires an engine");
  w->BeginObject();
  w->KV("schema", "nsky.skyline.v1");
  w->KV("command", "skyline");
  w->KV("algorithm", doc.algorithm);
  if (doc.engine) {
    // Additive keys: absent in the classic single-solve output.
    w->KV("engine", true);
    w->KV("repeat", doc.repeat);
  }
  w->Key("graph");
  w->BeginObject();
  w->KV("n", static_cast<uint64_t>(g.NumVertices()));
  w->KV("m", g.NumEdges());
  w->EndObject();
  w->Key("skyline");
  w->BeginObject();
  w->KV("size", static_cast<uint64_t>(r.skyline.size()));
  w->Key("members");
  w->BeginArray();
  for (graph::VertexId u : r.skyline) w->UInt(u);
  w->EndArray();
  w->EndObject();
  WriteSkylineStatsJson(r.stats, w);
  if (doc.include_engine_docs) {
    // Additive keys: the engine's own introspection documents, each
    // carrying its own schema tag.
    w->Key("engine_stats");
    WriteEngineStatsJson(engine->StatsSnapshot(), w);
    w->Key("recent_queries");
    engine->recorder().WriteJson(FlightRecorder::kDefaultCapacity, w);
  }
  w->EndObject();
}

std::string SkylineDocToJson(const graph::Graph& g, const SkylineResult& r,
                             const SkylineDocOptions& doc, Engine* engine) {
  util::JsonWriter w;
  WriteSkylineDocJson(g, r, doc, engine, &w);
  return std::move(w).Take();
}

}  // namespace nsky::core
