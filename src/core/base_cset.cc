#include "core/base_cset.h"

#include <vector>

#include "core/filter_phase.h"
#include "core/telemetry.h"
#include "util/memory.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

SkylineResult BaseCSet(const Graph& g) {
  NSKY_TRACE_SPAN("base_cset");
  util::Timer timer;
  const VertexId n = g.NumVertices();

  SkylineResult result = FilterPhase(g);
  std::vector<VertexId>& dominator = result.dominator;
  const std::vector<VertexId> candidates = std::move(result.skyline);
  result.skyline.clear();
  const SkylineStats after_filter = result.stats;

  util::MemoryTally tally;
  tally.Add(result.stats.aux_peak_bytes);

  std::vector<uint32_t> count(n, 0);
  std::vector<VertexId> touched;
  touched.reserve(256);
  tally.Add(count.capacity() * sizeof(uint32_t));

  // BaseSky's intersection counting, restricted to the candidates.
  {
    NSKY_TRACE_SPAN("refine");
    for (VertexId u : candidates) {
      if (dominator[u] != u) continue;
      const uint32_t deg_u = g.Degree(u);
      bool done = false;
      touched.clear();
      for (VertexId v : g.Neighbors(u)) {
        if (done) break;
        auto process = [&](VertexId w) {
          if (w == u || done) return;
          if (count[w] == 0) touched.push_back(w);
          ++result.stats.pairs_examined;
          if (++count[w] != deg_u) return;
          if (g.Degree(w) == deg_u) {
            if (u > w) {
              dominator[u] = w;
              done = true;
            } else if (dominator[w] == w) {
              dominator[w] = u;
            }
          } else {
            dominator[u] = w;
            done = true;
          }
        };
        for (VertexId w : g.Neighbors(v)) process(w);
        process(v);
      }
      for (VertexId w : touched) count[w] = 0;
    }
    // Mirrored inside the span so "refine" carries its own counter deltas.
    MirrorStatsCounters("nsky.base_cset.refine",
                        StatsSince(result.stats, after_filter));
  }

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] == u) result.skyline.push_back(u);
  }
  tally.Add(result.skyline.capacity() * sizeof(VertexId));
  result.stats.aux_peak_bytes = tally.peak_bytes();
  result.stats.seconds = timer.Seconds();
  MirrorStatsToMetrics("base_cset", result.stats);
  return result;
}

}  // namespace nsky::core
