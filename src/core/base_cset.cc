#include <vector>

#include "core/filter_phase.h"
#include "core/solver_internal.h"
#include "core/telemetry.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace internal {

util::Status RunBaseCSet(const Graph& g, const SolverOptions& options,
                         SolveEnv& env, SkylineResult* result) {
  NSKY_TRACE_SPAN("base_cset");
  util::Timer timer;
  const util::ExecutionContext& ctx = *env.ctx;
  util::ThreadPool& pool = *env.pool;
  const VertexId n = g.NumVertices();

  std::vector<VertexId> candidate_storage;
  const std::vector<VertexId>* candidates_ptr = nullptr;
  if (util::Status s = PrepareFilterOutput(g, options, env, result,
                                           &candidate_storage,
                                           &candidates_ptr);
      !s.ok()) {
    result->stats.seconds = timer.Seconds();
    return s;
  }
  const std::vector<VertexId>& candidates = *candidates_ptr;
  std::vector<VertexId>& dominator = result->dominator;
  const SkylineStats after_filter = result->stats;

  util::MemoryTally tally;
  tally.Add(result->stats.aux_peak_bytes);
  // Per-worker intersection counters; charged once (threads=1 footprint).
  tally.Add(static_cast<uint64_t>(n) * sizeof(uint32_t));
  if (util::Status s = ctx.CheckBudget(tally.peak_bytes()); !s.ok()) {
    result->stats.seconds = timer.Seconds();
    return s;
  }

  // BaseSky's intersection counting, restricted to the candidates. As in
  // RunBaseSky each candidate's verdict is a pure function of its 2-hop
  // neighborhood, so candidates are partitioned across workers and each
  // worker writes only its own candidates' dominator slots.
  {
    NSKY_TRACE_SPAN("refine");
    const unsigned workers = pool.num_threads();
    std::vector<SkylineStats>& per_worker =
        env.workspace->PrepareWorkerStats(workers);
    std::vector<std::vector<uint32_t>>& count_per_worker =
        env.workspace->PrepareWorkerCounts(workers, n);
    std::vector<std::vector<VertexId>>& touched_per_worker =
        env.workspace->PrepareWorkerTouched(workers);
    util::Status scan = pool.ParallelFor(
        candidates.size(), ctx,
        [&](unsigned worker, uint64_t begin, uint64_t end) {
          NSKY_TRACE_SPAN("refine.worker");
          SkylineStats& stats = per_worker[worker];
          // Per-worker scratch (see RunBaseSky): the sliced ParallelFor
          // invokes the body once per slice, so the O(n) counters live in
          // workspace slots, zero-filled by Prepare* before the scan.
          std::vector<uint32_t>& count = count_per_worker[worker];
          std::vector<VertexId>& touched = touched_per_worker[worker];
          touched.reserve(256);
          for (uint64_t i = begin; i < end; ++i) {
            const VertexId u = candidates[i];
            const uint32_t deg_u = g.Degree(u);
            bool done = false;
            touched.clear();
            for (VertexId v : g.Neighbors(u)) {
              if (done) break;
              auto process = [&](VertexId w) {
                if (w == u || done) return;
                if (count[w] == 0) touched.push_back(w);
                ++stats.pairs_examined;
                if (++count[w] != deg_u) return;
                if (g.Degree(w) > deg_u ||
                    (g.Degree(w) == deg_u && w < u)) {
                  dominator[u] = w;
                  done = true;
                }
              };
              for (VertexId w : g.Neighbors(v)) process(w);
              process(v);
            }
            for (VertexId w : touched) count[w] = 0;
          }
        });
    MergeWorkerStats(&result->stats, per_worker);
    if (!scan.ok()) {
      result->stats.seconds = timer.Seconds();
      return scan;
    }
    // Mirrored inside the span so "refine" carries its own counter deltas.
    MirrorStatsCounters("nsky.base_cset.refine",
                        StatsSince(result->stats, after_filter));
  }

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] == u) result->skyline.push_back(u);
  }
  tally.Add(result->skyline.size() * sizeof(VertexId));
  result->stats.aux_peak_bytes = tally.peak_bytes();
  result->stats.seconds = timer.Seconds();
  MirrorStatsToMetrics("base_cset", result->stats);
  return util::Status::Ok();
}

}  // namespace internal

}  // namespace nsky::core
