// Query flight recorder: a fixed-capacity lock-free ring of recent query
// records, plus a bounded log of slow-query phase traces.
//
// A long-running engine needs to answer "what did you just serve?" without
// a debugger attached: the recorder keeps the last `capacity` queries --
// algorithm, thread count, warm/cold, duration, skyline size, status,
// degradation -- and renders them as the stable `nsky.queries.v1` JSON
// document. Recording is a handful of relaxed atomic stores per query; the
// ring never allocates after construction, so it is safe on the
// zero-allocation warm serving path.
//
// Concurrency model: concurrent writers, serialized internally by a writer
// mutex (the common writer is the engine's serving thread, but admission
// control records rejections from other threads precisely while a query is
// running -- see Engine::RecordRejection), and any number of concurrent
// readers (stats scrapers calling Recent()/ToJson()). Slots are published
// with a per-slot version counter, seqlock style: the writer bumps the
// version to odd, stores the fields, then bumps it to even; a reader
// retries a slot whose version was odd or changed mid-copy. All fields are
// relaxed atomics, so racing reads are well-defined (and TSan-clean) -- a
// torn logical record is impossible because of the version protocol.
//
// Slow queries: when the engine's slow-query hook fires
// (NSKY_SLOW_QUERY_US, see core/engine.h), the offending query's full
// phase trace (flattened span tree with wall/self times) is kept in a
// small mutex-guarded log of the most recent kMaxSlowQueries offenders.
#ifndef NSKY_CORE_FLIGHT_RECORDER_H_
#define NSKY_CORE_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/solver.h"
#include "util/status.h"
#include "util/trace.h"

namespace nsky::util {
class JsonWriter;
}  // namespace nsky::util

namespace nsky::core {

// One served query, as the recorder remembers it. Plain value type; the
// ring stores the same fields as atomics internally.
struct QueryRecord {
  uint64_t seq = 0;  // 1-based position in the engine's query history
  Algorithm algorithm = Algorithm::kFilterRefine;
  uint32_t threads = 1;      // resolved worker count
  bool warm = false;         // no artifact build happened during the query
  uint64_t duration_us = 0;  // steady-clock wall time of the dispatch
  uint64_t skyline_size = 0;
  uint64_t aux_peak_bytes = 0;
  util::StatusCode status = util::StatusCode::kOk;
  // Algorithm the query degraded from (byte budget), or -1 when it ran as
  // requested; mirrors SkylineStats::degraded_from as a fixed-size field so
  // the ring slot stays allocation-free.
  int8_t degraded_from = -1;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;
  static constexpr size_t kMaxSlowQueries = 8;

  // One flattened span of a slow query's phase trace.
  struct SpanSummary {
    std::string name;
    uint32_t depth = 0;  // 0 for roots, parents above children
    double dur_us = 0.0;
    double self_us = 0.0;
  };
  struct SlowQuery {
    QueryRecord record;
    uint64_t threshold_us = 0;  // the armed NSKY_SLOW_QUERY_US value
    std::vector<SpanSummary> spans;
  };

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Writer side; safe to call from any thread (writers serialize on an
  // internal mutex). `record.seq` is ignored; the recorder assigns the next
  // sequence number and returns it.
  uint64_t Record(const QueryRecord& record);

  // Keeps `record` plus the flattened `roots` span forest in the slow log,
  // evicting the oldest entry beyond kMaxSlowQueries.
  void RecordSlow(const QueryRecord& record, uint64_t threshold_us,
                  const std::vector<util::trace::SpanNode>& roots);

  // Reader side: the most recent min(max_records, live) records, oldest
  // first. Safe to call concurrently with Record().
  std::vector<QueryRecord> Recent(size_t max_records = kDefaultCapacity) const;

  std::vector<SlowQuery> SlowQueries() const;

  size_t capacity() const { return slots_.size(); }
  // Total queries ever recorded (>= capacity() once the ring has wrapped).
  uint64_t total_recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  // Engine provenance tag (e.g. "snapshot:<id>" for engines restored by
  // persist::Load, gaining a "+dirty@epoch<N>" suffix once the served graph
  // is mutated). When set, rendered as an "origin" key in the
  // nsky.queries.v1 document so recorded queries can be traced back to the
  // artifact that served them. Mutex-guarded: Engine::ApplyUpdates restamps
  // it while scrapers may be rendering the document.
  void set_origin(std::string origin) {
    std::lock_guard<std::mutex> lock(origin_mu_);
    origin_ = std::move(origin);
  }
  std::string origin() const {
    std::lock_guard<std::mutex> lock(origin_mu_);
    return origin_;
  }

  // nsky.queries.v1: {"schema","capacity","total",["origin",]
  // "records":[...],"slow":[...]}. Also available as a writer-embedded
  // object for the CLI.
  std::string ToJson(size_t max_records = kDefaultCapacity) const;
  void WriteJson(size_t max_records, util::JsonWriter* w) const;

 private:
  struct Slot {
    std::atomic<uint64_t> version{0};  // even = stable, odd = being written
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> duration_us{0};
    std::atomic<uint64_t> skyline_size{0};
    std::atomic<uint64_t> aux_peak_bytes{0};
    std::atomic<uint32_t> threads{0};
    std::atomic<int16_t> algorithm{0};
    std::atomic<int16_t> status{0};
    std::atomic<int8_t> degraded_from{-1};
    std::atomic<bool> warm{false};
  };

  // One consistent copy of a slot, or false when the writer overtook us.
  bool ReadSlot(const Slot& slot, QueryRecord* out) const;

  std::vector<Slot> slots_;
  mutable std::mutex origin_mu_;  // guards origin_ (see set_origin)
  std::string origin_;
  std::atomic<uint64_t> next_seq_{0};
  // Serializes Record() callers; never held by readers, so recording stays
  // wait-free with respect to scrapers.
  std::mutex writer_mu_;

  mutable std::mutex slow_mu_;
  std::vector<SlowQuery> slow_;
};

}  // namespace nsky::core

#endif  // NSKY_CORE_FLIGHT_RECORDER_H_
