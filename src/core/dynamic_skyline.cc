#include "core/dynamic_skyline.h"

#include <algorithm>

#include "core/solver.h"
#include "core/subset_check.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace nsky::core {

DynamicSkyline::DynamicSkyline(VertexId num_vertices)
    : adj_(num_vertices), in_skyline_(num_vertices, 1) {}

DynamicSkyline::DynamicSkyline(const Graph& g)
    : adj_(g.NumVertices()), in_skyline_(g.NumVertices(), 0) {
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = g.NumEdges();
  for (VertexId u : Solve(g).skyline) in_skyline_[u] = 1;
}

bool DynamicSkyline::HasEdge(VertexId u, VertexId v) const {
  return std::binary_search(adj_[u].begin(), adj_[u].end(), v);
}

bool DynamicSkyline::Dominates(VertexId w, VertexId x) const {
  NSKY_DCHECK(w != x);
  std::span<const VertexId> nx(adj_[x]);
  std::span<const VertexId> nw(adj_[w]);
  if (!SortedSubsetExcept(nx, nw, w)) return false;  // N(x) subset-of N[w]?
  if (!SortedSubsetExcept(nw, nx, x)) return true;   // strict
  return w < x;                                      // mutual: smaller id
}

void DynamicSkyline::Recheck(VertexId x) {
  ++total_rechecks_;
  NSKY_COUNTER_INC("nsky.dynamic.rechecks");
  in_skyline_[x] = 1;
  if (adj_[x].empty()) return;  // isolated: skyline by the 2-hop convention
  // Pivot narrowing: any dominator of x lies in N[pivot] for x's
  // minimum-degree neighbor.
  VertexId pivot = adj_[x][0];
  for (VertexId y : adj_[x]) {
    if (adj_[y].size() < adj_[pivot].size()) pivot = y;
  }
  const uint32_t deg_x = Degree(x);
  auto consider = [&](VertexId w) -> bool {
    if (w == x || Degree(w) < deg_x) return false;
    if (Dominates(w, x)) {
      in_skyline_[x] = 0;
      return true;
    }
    return false;
  };
  if (consider(pivot)) return;
  for (VertexId w : adj_[pivot]) {
    if (consider(w)) return;
  }
}

void DynamicSkyline::Collect2Hop(VertexId x, std::vector<VertexId>* out) const {
  out->push_back(x);
  for (VertexId y : adj_[x]) {
    out->push_back(y);
    for (VertexId z : adj_[y]) out->push_back(z);
  }
}

void DynamicSkyline::RecheckAll(std::vector<VertexId>* affected) {
  std::sort(affected->begin(), affected->end());
  affected->erase(std::unique(affected->begin(), affected->end()),
                  affected->end());
  for (VertexId x : *affected) Recheck(x);
}

bool DynamicSkyline::AddEdge(VertexId u, VertexId v) {
  NSKY_TRACE_SPAN("dyn_add_edge");
  NSKY_CHECK(u < NumVertices() && v < NumVertices());
  if (u == v || HasEdge(u, v)) return false;
  NSKY_COUNTER_INC("nsky.dynamic.edges_added");
  // Status can change for u, v and everyone who sees u or v within 2 hops
  // in the old or the new graph; the union of old and new 2-hop
  // neighborhoods of u and v (computed after insertion, which covers the
  // old sets too -- insertion only grows them) is exactly that.
  adj_[u].insert(std::upper_bound(adj_[u].begin(), adj_[u].end(), v), v);
  adj_[v].insert(std::upper_bound(adj_[v].begin(), adj_[v].end(), u), u);
  ++num_edges_;
  std::vector<VertexId> affected;
  Collect2Hop(u, &affected);
  Collect2Hop(v, &affected);
  RecheckAll(&affected);
  NotifyInvalidation(/*bulk=*/false);
  return true;
}

bool DynamicSkyline::RemoveEdge(VertexId u, VertexId v) {
  NSKY_TRACE_SPAN("dyn_remove_edge");
  NSKY_CHECK(u < NumVertices() && v < NumVertices());
  if (u == v || !HasEdge(u, v)) return false;
  NSKY_COUNTER_INC("nsky.dynamic.edges_removed");
  // Collect before deletion: the old 2-hop sets are the larger ones here.
  std::vector<VertexId> affected;
  Collect2Hop(u, &affected);
  Collect2Hop(v, &affected);
  auto erase_from = [](std::vector<VertexId>& list, VertexId value) {
    list.erase(std::lower_bound(list.begin(), list.end(), value));
  };
  erase_from(adj_[u], v);
  erase_from(adj_[v], u);
  --num_edges_;
  RecheckAll(&affected);
  NotifyInvalidation(/*bulk=*/false);
  return true;
}

bool DynamicSkyline::ApplyStructural(const EdgeUpdate& update) {
  const VertexId u = update.u;
  const VertexId v = update.v;
  NSKY_CHECK(u < NumVertices() && v < NumVertices());
  if (u == v) return false;
  if (update.insert) {
    if (HasEdge(u, v)) return false;
    adj_[u].insert(std::upper_bound(adj_[u].begin(), adj_[u].end(), v), v);
    adj_[v].insert(std::upper_bound(adj_[v].begin(), adj_[v].end(), u), u);
    ++num_edges_;
  } else {
    if (!HasEdge(u, v)) return false;
    auto erase_from = [](std::vector<VertexId>& list, VertexId value) {
      list.erase(std::lower_bound(list.begin(), list.end(), value));
    };
    erase_from(adj_[u], v);
    erase_from(adj_[v], u);
    --num_edges_;
  }
  return true;
}

size_t DynamicSkyline::ApplyBatch(std::span<const EdgeUpdate> updates) {
  NSKY_TRACE_SPAN("dyn_apply_batch");
  if (updates.size() < kBulkThreshold) {
    // Small batch: incremental repair per update, as for single edges. Each
    // applied update fires the hook with bulk=false through Add/RemoveEdge.
    size_t applied = 0;
    for (const EdgeUpdate& e : updates) {
      const bool changed = e.insert ? AddEdge(e.u, e.v)
                                    : RemoveEdge(e.u, e.v);
      if (changed) ++applied;
    }
    return applied;
  }

  // Bulk: per-update 2-hop rechecks would dwarf one full solve, so mutate
  // the adjacency structurally and recompute the skyline once.
  size_t applied = 0;
  for (const EdgeUpdate& e : updates) {
    if (ApplyStructural(e)) ++applied;
  }
  if (applied == 0) return 0;
  NSKY_COUNTER_INC("nsky.dynamic.bulk_rebuilds");
  std::fill(in_skyline_.begin(), in_skyline_.end(), 0);
  for (VertexId u : Solve(ToGraph()).skyline) in_skyline_[u] = 1;
  NotifyInvalidation(/*bulk=*/true);
  return applied;
}

std::vector<VertexId> DynamicSkyline::Skyline() const {
  std::vector<VertexId> out;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    if (in_skyline_[u]) out.push_back(u);
  }
  return out;
}

Graph DynamicSkyline::ToGraph() const {
  std::vector<graph::Edge> edges;
  edges.reserve(num_edges_);
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : adj_[u]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(NumVertices(), std::move(edges));
}

}  // namespace nsky::core
