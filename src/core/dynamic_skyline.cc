#include "core/dynamic_skyline.h"

#include <algorithm>
#include <map>
#include <utility>

#include "core/solver.h"
#include "core/subset_check.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace nsky::core {

DynamicSkyline::DynamicSkyline(VertexId num_vertices)
    : adj_(num_vertices), in_skyline_(num_vertices, 1) {}

DynamicSkyline::DynamicSkyline(const Graph& g)
    : adj_(g.NumVertices()), in_skyline_(g.NumVertices(), 0) {
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = g.NumEdges();
  for (VertexId u : Solve(g).skyline) in_skyline_[u] = 1;
}

DynamicSkyline::DynamicSkyline(const Graph& g,
                               std::span<const VertexId> skyline)
    : adj_(g.NumVertices()), in_skyline_(g.NumVertices(), 0) {
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = g.NumEdges();
  for (VertexId u : skyline) {
    NSKY_CHECK(u < g.NumVertices());
    in_skyline_[u] = 1;
  }
}

bool DynamicSkyline::HasEdge(VertexId u, VertexId v) const {
  return std::binary_search(adj_[u].begin(), adj_[u].end(), v);
}

bool DynamicSkyline::Dominates(VertexId w, VertexId x) const {
  NSKY_DCHECK(w != x);
  std::span<const VertexId> nx(adj_[x]);
  std::span<const VertexId> nw(adj_[w]);
  if (!SortedSubsetExcept(nx, nw, w)) return false;  // N(x) subset-of N[w]?
  if (!SortedSubsetExcept(nw, nx, x)) return true;   // strict
  return w < x;                                      // mutual: smaller id
}

void DynamicSkyline::Recheck(VertexId x) {
  ++total_rechecks_;
  NSKY_COUNTER_INC("nsky.dynamic.rechecks");
  in_skyline_[x] = 1;
  if (adj_[x].empty()) return;  // isolated: skyline by the 2-hop convention
  // Pivot narrowing: any dominator of x lies in N[pivot] for x's
  // minimum-degree neighbor.
  VertexId pivot = adj_[x][0];
  for (VertexId y : adj_[x]) {
    if (adj_[y].size() < adj_[pivot].size()) pivot = y;
  }
  const uint32_t deg_x = Degree(x);
  auto consider = [&](VertexId w) -> bool {
    if (w == x || Degree(w) < deg_x) return false;
    if (Dominates(w, x)) {
      in_skyline_[x] = 0;
      return true;
    }
    return false;
  };
  if (consider(pivot)) return;
  for (VertexId w : adj_[pivot]) {
    if (consider(w)) return;
  }
}

void DynamicSkyline::BeginAffected() {
  scratch_affected_.clear();
  if (seen_stamp_.size() != adj_.size()) {
    seen_stamp_.assign(adj_.size(), 0);
    current_stamp_ = 0;
  }
  if (++current_stamp_ == 0) {
    // Stamp wrapped: clear once and restart; correctness never depends on
    // stale stamps matching.
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    current_stamp_ = 1;
  }
}

void DynamicSkyline::Collect2Hop(VertexId x) {
  auto mark = [&](VertexId w) {
    if (seen_stamp_[w] != current_stamp_) {
      seen_stamp_[w] = current_stamp_;
      scratch_affected_.push_back(w);
    }
  };
  mark(x);
  for (VertexId y : adj_[x]) {
    mark(y);
    for (VertexId z : adj_[y]) mark(z);
  }
}

void DynamicSkyline::RecheckCollected() {
  // Rechecks are independent (each reads only the adjacency and writes its
  // own in_skyline_ slot), so collection order is as good as sorted order.
  for (VertexId x : scratch_affected_) Recheck(x);
}

bool DynamicSkyline::AddEdge(VertexId u, VertexId v) {
  NSKY_TRACE_SPAN("dyn_add_edge");
  NSKY_CHECK(u < NumVertices() && v < NumVertices());
  if (u == v || HasEdge(u, v)) return false;
  NSKY_COUNTER_INC("nsky.dynamic.edges_added");
  // Status can change for u, v and everyone who sees u or v within 2 hops
  // in the old or the new graph; the union of old and new 2-hop
  // neighborhoods of u and v (computed after insertion, which covers the
  // old sets too -- insertion only grows them) is exactly that.
  adj_[u].insert(std::upper_bound(adj_[u].begin(), adj_[u].end(), v), v);
  adj_[v].insert(std::upper_bound(adj_[v].begin(), adj_[v].end(), u), u);
  ++num_edges_;
  BeginAffected();
  Collect2Hop(u);
  Collect2Hop(v);
  RecheckCollected();
  NotifyInvalidation(/*bulk=*/false);
  return true;
}

bool DynamicSkyline::RemoveEdge(VertexId u, VertexId v) {
  NSKY_TRACE_SPAN("dyn_remove_edge");
  NSKY_CHECK(u < NumVertices() && v < NumVertices());
  if (u == v || !HasEdge(u, v)) return false;
  NSKY_COUNTER_INC("nsky.dynamic.edges_removed");
  // Collect before deletion: the old 2-hop sets are the larger ones here.
  BeginAffected();
  Collect2Hop(u);
  Collect2Hop(v);
  auto erase_from = [](std::vector<VertexId>& list, VertexId value) {
    list.erase(std::lower_bound(list.begin(), list.end(), value));
  };
  erase_from(adj_[u], v);
  erase_from(adj_[v], u);
  --num_edges_;
  RecheckCollected();
  NotifyInvalidation(/*bulk=*/false);
  return true;
}

bool DynamicSkyline::ApplyStructural(const EdgeUpdate& update) {
  const VertexId u = update.u;
  const VertexId v = update.v;
  NSKY_CHECK(u < NumVertices() && v < NumVertices());
  if (u == v) return false;
  if (update.insert) {
    if (HasEdge(u, v)) return false;
    adj_[u].insert(std::upper_bound(adj_[u].begin(), adj_[u].end(), v), v);
    adj_[v].insert(std::upper_bound(adj_[v].begin(), adj_[v].end(), u), u);
    ++num_edges_;
  } else {
    if (!HasEdge(u, v)) return false;
    auto erase_from = [](std::vector<VertexId>& list, VertexId value) {
      list.erase(std::lower_bound(list.begin(), list.end(), value));
    };
    erase_from(adj_[u], v);
    erase_from(adj_[v], u);
    --num_edges_;
  }
  return true;
}

bool DynamicSkyline::ShouldBulkRebuild(
    const std::vector<EdgeUpdate>& net) const {
  if (net.size() >= kBulkThreshold) return true;  // historical hard cap
  // Incremental cost of one update (u, v): collect + recheck the 2-hop
  // neighborhoods of both endpoints, roughly their 2-hop volumes. A full
  // solve is one O(n + 2m) filter scan plus a narrow refine, so rebuild
  // when the summed estimate exceeds a small multiple of that. The factor
  // 2 is calibrated so a handful of updates on a sparse graph stays firmly
  // incremental while tens of updates tip over -- both deterministic
  // functions of the pre-batch adjacency.
  const uint64_t full_solve_cost =
      2 * (static_cast<uint64_t>(NumVertices()) + 2 * num_edges_);
  auto vol2 = [&](VertexId x) {
    uint64_t volume = adj_[x].size();
    for (VertexId y : adj_[x]) volume += adj_[y].size();
    return volume;
  };
  uint64_t estimate = 0;
  for (const EdgeUpdate& e : net) {
    estimate += 2 + vol2(e.u) + vol2(e.v);
    if (estimate > full_solve_cost) return true;
  }
  return false;
}

size_t DynamicSkyline::ApplyBatch(std::span<const EdgeUpdate> updates) {
  NSKY_TRACE_SPAN("dyn_apply_batch");
  // Pass 1: simulate the stream against a toggle map to count the updates
  // that are effective at their point in the sequence (the documented
  // return value) and reduce the batch to its net effect. An edge
  // inserted then deleted in one batch never touches the structure.
  std::map<std::pair<VertexId, VertexId>, std::pair<bool, bool>> state;
  size_t applied = 0;
  for (const EdgeUpdate& e : updates) {
    NSKY_CHECK(e.u < NumVertices() && e.v < NumVertices());
    if (e.u == e.v) continue;
    const auto key = std::minmax(e.u, e.v);
    auto it = state.find(key);
    const bool present =
        it != state.end() ? it->second.second : HasEdge(e.u, e.v);
    if (present == e.insert) continue;  // duplicate insert / absent delete
    if (it == state.end()) {
      state.emplace(key, std::make_pair(present, e.insert));
    } else {
      it->second.second = e.insert;
    }
    ++applied;
  }
  std::vector<EdgeUpdate> net;
  net.reserve(state.size());
  for (const auto& [key, presence] : state) {
    if (presence.first != presence.second) {
      net.push_back({key.first, key.second, presence.second});
    }
  }
  if (net.empty()) return applied;  // structurally a no-op: nothing stale

  if (!ShouldBulkRebuild(net)) {
    // Incremental: each net update repairs its 2-hop neighborhood and
    // fires the hook with bulk=false through Add/RemoveEdge.
    for (const EdgeUpdate& e : net) {
      const bool changed =
          e.insert ? AddEdge(e.u, e.v) : RemoveEdge(e.u, e.v);
      NSKY_DCHECK(changed);
      (void)changed;
    }
    return applied;
  }

  // Bulk: per-update 2-hop rechecks would dwarf one full solve, so mutate
  // the adjacency structurally and recompute the skyline once.
  for (const EdgeUpdate& e : net) {
    const bool changed = ApplyStructural(e);
    NSKY_DCHECK(changed);
    (void)changed;
  }
  NSKY_COUNTER_INC("nsky.dynamic.bulk_rebuilds");
  ++bulk_rebuilds_;
  std::fill(in_skyline_.begin(), in_skyline_.end(), 0);
  for (VertexId u : Solve(ToGraph()).skyline) in_skyline_[u] = 1;
  NotifyInvalidation(/*bulk=*/true);
  return applied;
}

std::vector<VertexId> DynamicSkyline::Skyline() const {
  std::vector<VertexId> out;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    if (in_skyline_[u]) out.push_back(u);
  }
  return out;
}

Graph DynamicSkyline::ToGraph() const {
  std::vector<graph::Edge> edges;
  edges.reserve(num_edges_);
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : adj_[u]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(NumVertices(), std::move(edges));
}

}  // namespace nsky::core
