#include "core/workspace.h"

#include <cstring>

namespace nsky::core {

std::vector<uint8_t>& SolverWorkspace::PrepareMember(uint64_t n) {
  Reserve(member_, n);
  member_.assign(n, 0);
  return member_;
}

std::vector<std::vector<VertexId>>& SolverWorkspace::PrepareTwoHop(
    uint64_t n) {
  Reserve(two_hop_, n);
  if (two_hop_.size() < n) two_hop_.resize(n);
  for (uint64_t u = 0; u < n; ++u) two_hop_[u].clear();
  return two_hop_;
}

std::vector<SkylineStats>& SolverWorkspace::PrepareWorkerStats(
    unsigned workers) {
  Reserve(worker_stats_, workers);
  worker_stats_.clear();
  worker_stats_.resize(workers);
  return worker_stats_;
}

std::vector<std::vector<uint32_t>>& SolverWorkspace::PrepareWorkerCounts(
    unsigned workers, uint64_t n) {
  Reserve(worker_counts_, workers);
  if (worker_counts_.size() < workers) worker_counts_.resize(workers);
  for (unsigned w = 0; w < workers; ++w) {
    Reserve(worker_counts_[w], n);
    worker_counts_[w].assign(n, 0);
  }
  return worker_counts_;
}

std::vector<std::vector<VertexId>>& SolverWorkspace::PrepareWorkerTouched(
    unsigned workers) {
  Reserve(worker_touched_, workers);
  if (worker_touched_.size() < workers) worker_touched_.resize(workers);
  for (unsigned w = 0; w < workers; ++w) worker_touched_[w].clear();
  return worker_touched_;
}

std::vector<uint64_t>& SolverWorkspace::PrepareWorkerBytes(unsigned workers) {
  Reserve(worker_bytes_, workers);
  worker_bytes_.assign(workers, 0);
  return worker_bytes_;
}

void SolverWorkspace::PoisonForTesting() {
  auto poison = [](auto& v) {
    using T = typename std::remove_reference_t<decltype(v)>::value_type;
    v.resize(v.capacity());
    if (!v.empty()) std::memset(v.data(), 0xAB, v.size() * sizeof(T));
  };
  poison(member_);
  for (auto& t : two_hop_) poison(t);
  for (auto& c : worker_counts_) poison(c);
  for (auto& t : worker_touched_) poison(t);
  poison(worker_bytes_);
  for (auto& s : worker_stats_) {
    s.pairs_examined = 0xABABABABULL;
    s.bloom_prunes = 0xABABABABULL;
    s.degree_prunes = 0xABABABABULL;
    s.inclusion_tests = 0xABABABABULL;
    s.nbr_elements_scanned = 0xABABABABULL;
  }
}

}  // namespace nsky::core
