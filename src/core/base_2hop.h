// Base2Hop baseline (Sec. V-A): materializes the full 2-hop neighbor list of
// every vertex up front, then identifies the skyline with the same degree /
// bloom-filter / NBRcheck machinery as FilterRefineSky -- but without the
// candidate filter. Its defining cost is memory: it stores sum_u |N2(u)|
// vertex ids plus a bloom filter for every vertex, which is why the paper
// reports it out-of-memory on WikiTalk. Both the materialization and the
// verification run on the parallel engine (core/solver.h); bit-identical
// for every thread count.
#ifndef NSKY_CORE_BASE_2HOP_H_
#define NSKY_CORE_BASE_2HOP_H_

#include "core/filter_refine_sky.h"
#include "core/skyline.h"
#include "core/solver.h"

namespace nsky::core {

// Deprecated: use Solve(g, options) with Algorithm::kBase2Hop.
// Computes the neighborhood skyline by 2-hop materialization; honors
// options.threads (FilterRefineOptions is an alias of SolverOptions).
SkylineResult Base2Hop(const Graph& g, const FilterRefineOptions& options = {});

}  // namespace nsky::core

#endif  // NSKY_CORE_BASE_2HOP_H_
