// Umbrella header for the neighborhood-skyline core library.
//
// Quick start:
//   #include "core/nsky.h"
//   nsky::graph::Graph g = nsky::graph::MakeChungLuPowerLaw(10000, 2.8, 8, 1);
//   nsky::core::SolverOptions options;   // algorithm, threads, bloom knobs
//   options.threads = 8;                 // bit-identical for any value
//   nsky::core::SkylineResult r = nsky::core::Solve(g, options);
//   // r.skyline now holds the vertices no other vertex dominates.
#ifndef NSKY_CORE_NSKY_H_
#define NSKY_CORE_NSKY_H_

#include "core/base_2hop.h"
#include "core/base_cset.h"
#include "core/base_sky.h"
#include "core/bloom.h"
#include "core/domination.h"
#include "core/dynamic_skyline.h"
#include "core/filter_phase.h"
#include "core/filter_refine_sky.h"
#include "core/skyline.h"
#include "core/solver.h"
#include "core/telemetry.h"

#endif  // NSKY_CORE_NSKY_H_
