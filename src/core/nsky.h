// Umbrella header for the neighborhood-skyline core library.
//
// Quick start:
//   #include "core/nsky.h"
//   nsky::graph::Graph g = nsky::graph::MakeChungLuPowerLaw(10000, 2.8, 8, 1);
//   nsky::core::SolverOptions options;   // algorithm, threads, bloom knobs
//   options.threads = 8;                 // bit-identical for any value
//   nsky::core::SkylineResult r = nsky::core::Solve(g, options);
//   // r.skyline now holds the vertices no other vertex dominates.
//
// Serving repeated queries against one graph? Use nsky::core::Engine
// (core/engine.h): same results, cached artifacts, pooled scratch.
#ifndef NSKY_CORE_NSKY_H_
#define NSKY_CORE_NSKY_H_

#include "core/bloom.h"
#include "core/domination.h"
#include "core/dynamic_skyline.h"
#include "core/engine.h"
#include "core/engine_stats.h"
#include "core/filter_phase.h"
#include "core/flight_recorder.h"
#include "core/prepared_graph.h"
#include "core/skyline.h"
#include "core/solver.h"
#include "core/telemetry.h"
#include "core/workspace.h"

#endif  // NSKY_CORE_NSKY_H_
