// PreparedGraph: immutable, lazily-built cache of graph-derived artifacts.
//
// Every solver pass over the same graph rebuilds the same pure-function-of-
// the-graph structures: the filter-phase candidate set and its O(*) array,
// the neighborhood bloom blocks, the 2-hop adjacency lists, the degree and
// degeneracy orderings. A PreparedGraph computes each artifact once, on
// first request, and hands out const references afterwards, so a warm
// engine (core/engine.h) answers repeated queries without re-deriving any
// of them -- and the clique / centrality / setjoin consumers can share them
// instead of privately recomputing the skyline.
//
// Contract:
//  * Read-only sharing: every artifact is a pure function of the graph (and
//    of the requesting options, e.g. the bloom width). Once built it is
//    immutable, so any number of sequential queries may hold references.
//  * Determinism: artifacts are built with the same deterministic code
//    paths the cold solvers use (filter phase, bloom construction, 2-hop
//    materialization), so a query served from the cache is bit-identical --
//    skyline, dominator array and every deterministic SkylineStats counter,
//    including aux_peak_bytes -- to a cold Solve() at any thread count.
//  * Builds run under an unlimited ExecutionContext: an artifact is shared
//    state, not per-query work, so it is never left half-built by a
//    deadline. Per-query limits still apply at every solver phase boundary;
//    the only visible difference is that a warm query can succeed where the
//    equivalent cold run would have been interrupted mid-build.
//  * Invalidation: Invalidate() drops every artifact. DynamicSkyline's
//    invalidation hook (core/dynamic_skyline.h) is the intended caller --
//    bulk graph updates rebuild, small updates stay incremental.
//  * The graph must outlive the PreparedGraph and must not change while
//    artifacts are live (rebuild through Engine::RefreshFrom instead).
//    Lazy builds are serialized by an internal mutex; concurrent readers of
//    already-built artifacts are safe, but Invalidate() must not race with
//    a query.
#ifndef NSKY_CORE_PREPARED_GRAPH_H_
#define NSKY_CORE_PREPARED_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/bloom.h"
#include "core/skyline.h"
#include "graph/cores.h"
#include "graph/graph.h"
#include "graph/versioned_graph.h"

namespace nsky::util {
class ThreadPool;
}  // namespace nsky::util

namespace nsky::core {

class PreparedGraph {
 public:
  // Output of the filter phase (Algorithm 2) plus the candidate-membership
  // byte map the refine scans snapshot.
  struct FilterArtifacts {
    std::vector<VertexId> candidates;  // candidate set C, sorted ascending
    std::vector<VertexId> dominator;   // edge-constrained O(*) array
    std::vector<uint8_t> member;       // member[u] == 1 iff u in C
    SkylineStats stats;                // deterministic filter-phase stats
  };

  // Materialized 2-hop adjacency (RunBase2Hop's expensive build) plus the
  // deterministic ledger charge of the lists, stored so a warm run reports
  // the exact aux_peak_bytes a cold run would.
  struct TwoHopArtifacts {
    std::vector<std::vector<VertexId>> lists;
    uint64_t charged_bytes = 0;
  };

  // Per-artifact cache accounting. A "miss" is an accessor call that had to
  // build (misses == times built since construction / last Invalidate-era
  // counts are NOT reset -- the stats are cumulative over the object's
  // lifetime); a "hit" is an accessor call served from the cache. build_us
  // accumulates the wall time of the builds.
  struct ArtifactStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t build_us = 0;
    // Times the artifact was patched in place by RepairForUpdates (never
    // counted as a hit, miss or build; warm detection stays intact).
    uint64_t repairs = 0;
  };

  // Snapshot of every artifact's cache accounting; bloom blocks are keyed by
  // their bit width, matching the cache itself.
  struct CacheStats {
    ArtifactStats filter;
    ArtifactStats two_hop;
    ArtifactStats degree_order;
    ArtifactStats cores;
    std::map<uint32_t, ArtifactStats> candidate_blooms;
    std::map<uint32_t, ArtifactStats> full_blooms;
  };

  // Non-owning: `g` must outlive this object (core/engine.h owns both).
  explicit PreparedGraph(const Graph* g) : g_(g) {}
  PreparedGraph(const PreparedGraph&) = delete;
  PreparedGraph& operator=(const PreparedGraph&) = delete;

  const Graph& graph() const { return *g_; }

  // Filter-phase artifacts; built on first call with `pool`.
  const FilterArtifacts& Filter(util::ThreadPool& pool);

  // Bloom block over the open neighborhoods of the filter candidates at the
  // given width (one cached block per width).
  const NeighborhoodBlooms& CandidateBlooms(uint32_t bits,
                                            util::ThreadPool& pool);

  // Bloom block over the open neighborhoods of *all* vertices (RunBase2Hop).
  const NeighborhoodBlooms& FullBlooms(uint32_t bits, util::ThreadPool& pool);

  // Materialized, deduplicated 2-hop neighbor lists for every vertex.
  const TwoHopArtifacts& TwoHop(util::ThreadPool& pool);

  // Vertices ordered by (degree ascending, id ascending) -- the scan order
  // degree-bounded consumers want.
  const std::vector<VertexId>& DegreeOrder();

  // Core decomposition: core numbers plus the degeneracy (peeling) order,
  // the canonical seed order for the clique searches.
  const graph::CoreDecomposition& Cores();

  // Drops every cached artifact; the next request rebuilds from the current
  // graph. Wired to DynamicSkyline's invalidation hook for bulk updates.
  void Invalidate();

  // --- Incremental repair (Engine::ApplyUpdates) ---------------------------

  // Repoints the prepared view at a new Graph object without touching the
  // artifact cache. Only correct when the new object is structurally
  // identical to the old one, or when every artifact is dropped in the same
  // breath (Engine::RefreshFrom pairs this with Invalidate()).
  void Rebind(const Graph* g);

  struct RepairOutcome {
    bool repaired = false;          // false = fell back to a full drop
    uint64_t dirty_vertices = 0;    // |D|: vertices whose verdicts were redone
    uint64_t patched_artifacts = 0;
    uint64_t dropped_artifacts = 0;
  };

  // Fallback policy: when the dirty set's 2-hop volume (sum over dirty u of
  // deg(u) + degree sum of N(u) -- the traversal cost of re-deriving u's
  // verdict and 2-hop list) exceeds this percentage of the whole graph's,
  // a local patch would cost a rebuild anyway, so every artifact is dropped
  // instead (deterministic function of the update batch). Volume, not
  // vertex count: neighbors enter the dirty set with probability
  // proportional to their degree, so on skewed graphs a small dirty SET is
  // routinely a large dirty VOLUME.
  static constexpr uint32_t kRepairMaxDirtyPercent = 25;

  // Locally patches every materialized artifact after the edge batch
  // `updates` turned `old_g` (the epoch the artifacts were built against)
  // into `new_g`, and rebinds the prepared view to `new_g`. `updates` must
  // be the NET batch (graph::VersionedGraph::StagedUpdates()); old_g and
  // new_g must have the same vertex count.
  //
  // Only vertices within the dirty set D = endpoints union their open
  // neighborhoods (in old_g and new_g) can change any artifact row:
  //  * filter verdict / dominator[u] reads N(u), deg of N(u) and rows of
  //    N(u) -- all unchanged outside D;
  //  * 2-hop lists aggregate exactly those rows;
  //  * bloom rows are pure functions of N(u), dirty only for endpoints;
  //  * the degree order moves only endpoints (their degree changed);
  //  * cores have no local repair (global peeling) and are dropped.
  // Patched artifacts are bit-identical to a fresh build on new_g,
  // including the replayed filter stats and ledger charges. Absent
  // artifacts stay absent. When D's 2-hop volume exceeds
  // kRepairMaxDirtyPercent% of the graph's, the cache is dropped wholesale
  // instead (repaired=false in the outcome).
  RepairOutcome RepairForUpdates(const Graph& old_g, const Graph& new_g,
                                 std::span<const graph::EdgeUpdate> updates);

  // Artifact builds performed since construction (telemetry; a warm serving
  // loop should see this settle while queries_served keeps growing).
  uint64_t builds() const;

  // Point-in-time copy of the per-artifact hit / miss / build-time ledger.
  // Observation-only: nothing in the library reads these to make decisions.
  CacheStats CacheStatsSnapshot() const;

  // Introspection for tests: which artifacts are currently materialized.
  bool has_filter() const;
  bool has_two_hop() const;

  // --- Serialization surface (src/persist/) -------------------------------
  //
  // Peek* returns the artifact only if it is already materialized -- never
  // builds, never counts a hit or miss. Restore* installs a previously
  // serialized artifact without touching builds() or the miss counters, so
  // queries against a snapshot-loaded engine register as warm (the loaded
  // artifacts ARE the warm state, byte-for-byte). Restoring over an existing
  // artifact replaces it; callers are expected to restore into a fresh
  // PreparedGraph. Bloom blocks are keyed by bit width, like the cache.
  const FilterArtifacts* PeekFilter() const;
  const TwoHopArtifacts* PeekTwoHop() const;
  const std::vector<VertexId>* PeekDegreeOrder() const;
  const graph::CoreDecomposition* PeekCores() const;
  std::vector<uint32_t> CandidateBloomWidths() const;
  std::vector<uint32_t> FullBloomWidths() const;
  const NeighborhoodBlooms* PeekCandidateBlooms(uint32_t bits) const;
  const NeighborhoodBlooms* PeekFullBlooms(uint32_t bits) const;
  void RestoreFilter(FilterArtifacts artifacts);
  void RestoreTwoHop(TwoHopArtifacts artifacts);
  void RestoreDegreeOrder(std::vector<VertexId> order);
  void RestoreCores(graph::CoreDecomposition cores);
  void RestoreCandidateBlooms(uint32_t bits,
                              std::unique_ptr<NeighborhoodBlooms> blooms);
  void RestoreFullBlooms(uint32_t bits,
                         std::unique_ptr<NeighborhoodBlooms> blooms);

 private:
  const Graph* g_;

  mutable std::mutex mu_;
  std::optional<FilterArtifacts> filter_;
  std::map<uint32_t, std::unique_ptr<NeighborhoodBlooms>> candidate_blooms_;
  std::map<uint32_t, std::unique_ptr<NeighborhoodBlooms>> full_blooms_;
  std::optional<TwoHopArtifacts> two_hop_;
  std::optional<std::vector<VertexId>> degree_order_;
  std::optional<graph::CoreDecomposition> cores_;
  uint64_t builds_ = 0;
  CacheStats cache_stats_;
};

}  // namespace nsky::core

#endif  // NSKY_CORE_PREPARED_GRAPH_H_
