#include "core/flight_recorder.h"

#include <algorithm>

#include "util/json_writer.h"
#include "util/logging.h"

namespace nsky::core {

namespace {

// Flattens a span tree depth-first, parents before children.
void FlattenSpans(const util::trace::SpanNode& node, uint32_t depth,
                  std::vector<FlightRecorder::SpanSummary>* out) {
  out->push_back({node.name, depth, node.dur_us, node.self_us});
  for (const util::trace::SpanNode& child : node.children) {
    FlattenSpans(child, depth + 1, out);
  }
}

const char* DegradedFromName(int8_t degraded_from) {
  if (degraded_from < 0) return "";
  return AlgorithmName(static_cast<Algorithm>(degraded_from));
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

uint64_t FlightRecorder::Record(const QueryRecord& record) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(seq - 1) % slots_.size()];
  // Seqlock publish: odd while the fields are in flux, even when stable.
  const uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.duration_us.store(record.duration_us, std::memory_order_relaxed);
  slot.skyline_size.store(record.skyline_size, std::memory_order_relaxed);
  slot.aux_peak_bytes.store(record.aux_peak_bytes, std::memory_order_relaxed);
  slot.threads.store(record.threads, std::memory_order_relaxed);
  slot.algorithm.store(static_cast<int16_t>(record.algorithm),
                       std::memory_order_relaxed);
  slot.status.store(static_cast<int16_t>(record.status),
                    std::memory_order_relaxed);
  slot.degraded_from.store(record.degraded_from, std::memory_order_relaxed);
  slot.warm.store(record.warm, std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
  return seq;
}

bool FlightRecorder::ReadSlot(const Slot& slot, QueryRecord* out) const {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 % 2 != 0) continue;  // writer mid-publish
    out->seq = slot.seq.load(std::memory_order_relaxed);
    out->duration_us = slot.duration_us.load(std::memory_order_relaxed);
    out->skyline_size = slot.skyline_size.load(std::memory_order_relaxed);
    out->aux_peak_bytes = slot.aux_peak_bytes.load(std::memory_order_relaxed);
    out->threads = slot.threads.load(std::memory_order_relaxed);
    out->algorithm = static_cast<Algorithm>(
        slot.algorithm.load(std::memory_order_relaxed));
    out->status = static_cast<util::StatusCode>(
        slot.status.load(std::memory_order_relaxed));
    out->degraded_from = slot.degraded_from.load(std::memory_order_relaxed);
    out->warm = slot.warm.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) == v1) return true;
  }
  return false;
}

std::vector<QueryRecord> FlightRecorder::Recent(size_t max_records) const {
  const uint64_t total = total_recorded();
  const uint64_t live = std::min<uint64_t>(total, slots_.size());
  const uint64_t want = std::min<uint64_t>(live, max_records);
  std::vector<QueryRecord> out;
  out.reserve(want);
  for (uint64_t seq = total - want + 1; seq <= total; ++seq) {
    QueryRecord record;
    if (!ReadSlot(slots_[(seq - 1) % slots_.size()], &record)) continue;
    // A concurrent writer may have lapped this slot; keep only the record
    // we came for (records stay in ascending-seq order either way).
    if (record.seq == seq) out.push_back(record);
  }
  return out;
}

void FlightRecorder::RecordSlow(const QueryRecord& record,
                                uint64_t threshold_us,
                                const std::vector<util::trace::SpanNode>& roots) {
  SlowQuery slow;
  slow.record = record;
  slow.threshold_us = threshold_us;
  for (const util::trace::SpanNode& root : roots) {
    FlattenSpans(root, 0, &slow.spans);
  }
  std::lock_guard<std::mutex> lock(slow_mu_);
  if (slow_.size() >= kMaxSlowQueries) slow_.erase(slow_.begin());
  slow_.push_back(std::move(slow));
}

std::vector<FlightRecorder::SlowQuery> FlightRecorder::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return slow_;
}

void FlightRecorder::WriteJson(size_t max_records,
                               util::JsonWriter* w) const {
  const std::vector<QueryRecord> records = Recent(max_records);
  const std::vector<SlowQuery> slow = SlowQueries();
  w->BeginObject();
  w->KV("schema", "nsky.queries.v1");
  w->KV("capacity", static_cast<uint64_t>(capacity()));
  w->KV("total", total_recorded());
  if (const std::string tag = origin(); !tag.empty()) w->KV("origin", tag);
  w->Key("records");
  w->BeginArray();
  for (const QueryRecord& r : records) {
    w->BeginObject();
    w->KV("seq", r.seq);
    w->KV("algorithm", AlgorithmName(r.algorithm));
    w->KV("threads", static_cast<uint64_t>(r.threads));
    w->KV("warm", r.warm);
    w->KV("duration_us", r.duration_us);
    w->KV("skyline_size", r.skyline_size);
    w->KV("aux_peak_bytes", r.aux_peak_bytes);
    w->KV("status", util::StatusCodeName(r.status));
    w->KV("degraded_from", DegradedFromName(r.degraded_from));
    w->EndObject();
  }
  w->EndArray();
  w->Key("slow");
  w->BeginArray();
  for (const SlowQuery& s : slow) {
    w->BeginObject();
    w->KV("seq", s.record.seq);
    w->KV("algorithm", AlgorithmName(s.record.algorithm));
    w->KV("duration_us", s.record.duration_us);
    w->KV("threshold_us", s.threshold_us);
    w->Key("spans");
    w->BeginArray();
    for (const SpanSummary& span : s.spans) {
      w->BeginObject();
      w->KV("name", span.name);
      w->KV("depth", static_cast<uint64_t>(span.depth));
      w->KV("dur_us", span.dur_us);
      w->KV("self_us", span.self_us);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string FlightRecorder::ToJson(size_t max_records) const {
  util::JsonWriter w;
  WriteJson(max_records, &w);
  return std::move(w).Take();
}

}  // namespace nsky::core
