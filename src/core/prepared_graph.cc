#include "core/prepared_graph.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/solver_internal.h"
#include "core/workspace.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace {

void CountBuild(const char* artifact) {
  if (util::metrics::Enabled()) {
    util::metrics::GetCounter("nsky.prepared.builds").Add(1);
    util::metrics::GetCounter(std::string("nsky.prepared.build.") + artifact)
        .Add(1);
  }
}

}  // namespace

const PreparedGraph::FilterArtifacts& PreparedGraph::Filter(
    util::ThreadPool& pool) {
  std::lock_guard<std::mutex> lock(mu_);
  if (filter_.has_value()) {
    ++cache_stats_.filter.hits;
    return *filter_;
  }
  NSKY_TRACE_SPAN("prepared.filter_build");
  CountBuild("filter");
  ++builds_;
  ++cache_stats_.filter.misses;
  util::Timer build_timer;

  // Built with the exact cold-path code (internal::RunFilterPhase) under an
  // unlimited context, so the cached counters / candidate_count /
  // aux_peak_bytes are the ones any cold run would have produced.
  const util::ExecutionContext ctx;
  SolverWorkspace workspace;
  internal::SolveEnv env{&ctx, &pool, &workspace, nullptr};
  SkylineResult result;
  util::Status status =
      internal::RunFilterPhase(*g_, SolverOptions{}, env, &result);
  NSKY_CHECK_MSG(status.ok(), "unlimited filter-phase build cannot fail");

  FilterArtifacts fa;
  fa.candidates = std::move(result.skyline);
  fa.dominator = std::move(result.dominator);
  fa.stats = result.stats;
  fa.member.assign(g_->NumVertices(), 0);
  for (VertexId u : fa.candidates) fa.member[u] = 1;
  filter_ = std::move(fa);
  cache_stats_.filter.build_us += static_cast<uint64_t>(build_timer.Micros());
  return *filter_;
}

const NeighborhoodBlooms& PreparedGraph::CandidateBlooms(
    uint32_t bits, util::ThreadPool& pool) {
  // Membership map first; Filter() takes the same mutex.
  const std::vector<uint8_t>& member = Filter(pool).member;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = candidate_blooms_.find(bits);
  if (it != candidate_blooms_.end()) {
    ++cache_stats_.candidate_blooms[bits].hits;
    return *it->second;
  }
  NSKY_TRACE_SPAN("prepared.bloom_build");
  CountBuild("candidate_blooms");
  ++builds_;
  ++cache_stats_.candidate_blooms[bits].misses;
  util::Timer build_timer;
  auto blooms = std::make_unique<NeighborhoodBlooms>(*g_, member, bits, &pool);
  cache_stats_.candidate_blooms[bits].build_us +=
      static_cast<uint64_t>(build_timer.Micros());
  return *candidate_blooms_.emplace(bits, std::move(blooms)).first->second;
}

const NeighborhoodBlooms& PreparedGraph::FullBlooms(uint32_t bits,
                                                    util::ThreadPool& pool) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = full_blooms_.find(bits);
  if (it != full_blooms_.end()) {
    ++cache_stats_.full_blooms[bits].hits;
    return *it->second;
  }
  NSKY_TRACE_SPAN("prepared.bloom_build");
  CountBuild("full_blooms");
  ++builds_;
  ++cache_stats_.full_blooms[bits].misses;
  util::Timer build_timer;
  std::vector<uint8_t> member(g_->NumVertices(), 1);
  auto blooms = std::make_unique<NeighborhoodBlooms>(*g_, member, bits, &pool);
  cache_stats_.full_blooms[bits].build_us +=
      static_cast<uint64_t>(build_timer.Micros());
  return *full_blooms_.emplace(bits, std::move(blooms)).first->second;
}

const PreparedGraph::TwoHopArtifacts& PreparedGraph::TwoHop(
    util::ThreadPool& pool) {
  std::lock_guard<std::mutex> lock(mu_);
  if (two_hop_.has_value()) {
    ++cache_stats_.two_hop.hits;
    return *two_hop_;
  }
  NSKY_TRACE_SPAN("prepared.two_hop_build");
  CountBuild("two_hop");
  ++builds_;
  ++cache_stats_.two_hop.misses;
  util::Timer build_timer;

  // The same deterministic materialization RunBase2Hop performs cold: slot
  // u is written only by the worker owning u, and the recorded charge is
  // the per-worker logical byte sum merged in worker order plus the outer
  // array -- the exact value a cold run adds to its ledger.
  const Graph& g = *g_;
  const VertexId n = g.NumVertices();
  TwoHopArtifacts art;
  art.lists.resize(n);
  std::vector<uint64_t> bytes_per_worker(pool.num_threads(), 0);
  const util::ExecutionContext ctx;
  util::Status scan = pool.ParallelFor(
      n, ctx, [&](unsigned worker, uint64_t begin, uint64_t end) {
        std::vector<VertexId> buffer;
        for (VertexId u = static_cast<VertexId>(begin); u < end; ++u) {
          buffer.clear();
          for (VertexId v : g.Neighbors(u)) {
            buffer.push_back(v);
            for (VertexId w : g.Neighbors(v)) {
              if (w != u) buffer.push_back(w);
            }
          }
          std::sort(buffer.begin(), buffer.end());
          buffer.erase(std::unique(buffer.begin(), buffer.end()),
                       buffer.end());
          art.lists[u].assign(buffer.begin(), buffer.end());
          bytes_per_worker[worker] += art.lists[u].size() * sizeof(VertexId);
        }
      });
  NSKY_CHECK_MSG(scan.ok(), "unlimited 2-hop build cannot fail");
  for (uint64_t bytes : bytes_per_worker) art.charged_bytes += bytes;
  art.charged_bytes += static_cast<uint64_t>(n) * sizeof(std::vector<VertexId>);
  two_hop_ = std::move(art);
  cache_stats_.two_hop.build_us += static_cast<uint64_t>(build_timer.Micros());
  return *two_hop_;
}

const std::vector<VertexId>& PreparedGraph::DegreeOrder() {
  std::lock_guard<std::mutex> lock(mu_);
  if (degree_order_.has_value()) {
    ++cache_stats_.degree_order.hits;
    return *degree_order_;
  }
  CountBuild("degree_order");
  ++builds_;
  ++cache_stats_.degree_order.misses;
  util::Timer build_timer;
  const VertexId n = g_->NumVertices();
  std::vector<VertexId> order(n);
  for (VertexId u = 0; u < n; ++u) order[u] = u;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g_->Degree(a) < g_->Degree(b);
  });
  degree_order_ = std::move(order);
  cache_stats_.degree_order.build_us +=
      static_cast<uint64_t>(build_timer.Micros());
  return *degree_order_;
}

const graph::CoreDecomposition& PreparedGraph::Cores() {
  std::lock_guard<std::mutex> lock(mu_);
  if (cores_.has_value()) {
    ++cache_stats_.cores.hits;
    return *cores_;
  }
  CountBuild("cores");
  ++builds_;
  ++cache_stats_.cores.misses;
  util::Timer build_timer;
  cores_ = graph::ComputeCores(*g_);
  cache_stats_.cores.build_us += static_cast<uint64_t>(build_timer.Micros());
  return *cores_;
}

void PreparedGraph::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  filter_.reset();
  candidate_blooms_.clear();
  full_blooms_.clear();
  two_hop_.reset();
  degree_order_.reset();
  cores_.reset();
  if (util::metrics::Enabled()) {
    util::metrics::GetCounter("nsky.prepared.invalidations").Add(1);
  }
}

uint64_t PreparedGraph::builds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return builds_;
}

PreparedGraph::CacheStats PreparedGraph::CacheStatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_stats_;
}

bool PreparedGraph::has_filter() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filter_.has_value();
}

bool PreparedGraph::has_two_hop() const {
  std::lock_guard<std::mutex> lock(mu_);
  return two_hop_.has_value();
}

const PreparedGraph::FilterArtifacts* PreparedGraph::PeekFilter() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filter_.has_value() ? &*filter_ : nullptr;
}

const PreparedGraph::TwoHopArtifacts* PreparedGraph::PeekTwoHop() const {
  std::lock_guard<std::mutex> lock(mu_);
  return two_hop_.has_value() ? &*two_hop_ : nullptr;
}

const std::vector<VertexId>* PreparedGraph::PeekDegreeOrder() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degree_order_.has_value() ? &*degree_order_ : nullptr;
}

const graph::CoreDecomposition* PreparedGraph::PeekCores() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cores_.has_value() ? &*cores_ : nullptr;
}

std::vector<uint32_t> PreparedGraph::CandidateBloomWidths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> widths;
  widths.reserve(candidate_blooms_.size());
  for (const auto& [bits, blooms] : candidate_blooms_) widths.push_back(bits);
  return widths;
}

std::vector<uint32_t> PreparedGraph::FullBloomWidths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> widths;
  widths.reserve(full_blooms_.size());
  for (const auto& [bits, blooms] : full_blooms_) widths.push_back(bits);
  return widths;
}

const NeighborhoodBlooms* PreparedGraph::PeekCandidateBlooms(
    uint32_t bits) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = candidate_blooms_.find(bits);
  return it != candidate_blooms_.end() ? it->second.get() : nullptr;
}

const NeighborhoodBlooms* PreparedGraph::PeekFullBlooms(uint32_t bits) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = full_blooms_.find(bits);
  return it != full_blooms_.end() ? it->second.get() : nullptr;
}

void PreparedGraph::RestoreFilter(FilterArtifacts artifacts) {
  std::lock_guard<std::mutex> lock(mu_);
  filter_ = std::move(artifacts);
}

void PreparedGraph::RestoreTwoHop(TwoHopArtifacts artifacts) {
  std::lock_guard<std::mutex> lock(mu_);
  two_hop_ = std::move(artifacts);
}

void PreparedGraph::RestoreDegreeOrder(std::vector<VertexId> order) {
  std::lock_guard<std::mutex> lock(mu_);
  degree_order_ = std::move(order);
}

void PreparedGraph::RestoreCores(graph::CoreDecomposition cores) {
  std::lock_guard<std::mutex> lock(mu_);
  cores_ = std::move(cores);
}

void PreparedGraph::RestoreCandidateBlooms(
    uint32_t bits, std::unique_ptr<NeighborhoodBlooms> blooms) {
  std::lock_guard<std::mutex> lock(mu_);
  candidate_blooms_[bits] = std::move(blooms);
}

void PreparedGraph::RestoreFullBlooms(
    uint32_t bits, std::unique_ptr<NeighborhoodBlooms> blooms) {
  std::lock_guard<std::mutex> lock(mu_);
  full_blooms_[bits] = std::move(blooms);
}

}  // namespace nsky::core
