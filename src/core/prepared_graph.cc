#include "core/prepared_graph.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/solver_internal.h"
#include "core/subset_check.h"
#include "core/workspace.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace {

void CountBuild(const char* artifact) {
  if (util::metrics::Enabled()) {
    util::metrics::GetCounter("nsky.prepared.builds").Add(1);
    util::metrics::GetCounter(std::string("nsky.prepared.build.") + artifact)
        .Add(1);
  }
}

// One vertex's share of the filter phase on `g`: its edge-constrained
// dominator plus the deterministic counters its inner loop contributes to
// the phase totals. Must mirror RunFilterPhase's per-vertex loop exactly --
// the repair path subtracts the old-graph share and adds the new-graph
// share, so any divergence breaks warm/cold bit-identity.
struct FilterContribution {
  VertexId dominator = 0;
  uint64_t pairs_examined = 0;
  uint64_t degree_prunes = 0;
  uint64_t inclusion_tests = 0;
  uint64_t nbr_elements_scanned = 0;
};

FilterContribution FilterContributionOf(const Graph& g, VertexId u) {
  FilterContribution c;
  c.dominator = u;
  const uint32_t deg_u = g.Degree(u);
  for (VertexId v : g.Neighbors(u)) {
    ++c.pairs_examined;
    const uint32_t deg_v = g.Degree(v);
    if (deg_v < deg_u) {
      ++c.degree_prunes;
      continue;
    }
    if (deg_v == deg_u && v > u) continue;
    ++c.inclusion_tests;
    if (!SortedSubsetExcept(g.Neighbors(u), g.Neighbors(v), v,
                            &c.nbr_elements_scanned)) {
      continue;
    }
    c.dominator = v;
    break;
  }
  return c;
}

// Reusable seen-marker for 2-hop collection: vertices are deduplicated at
// collection time by stamping, so the sort afterwards runs on the unique
// survivors only. On hub-heavy rows the pre-dedup volume is an order of
// magnitude larger than the unique list; sorting only survivors is the
// difference between a local repair and a hidden rebuild. Stamps are
// generation-counted so the O(n) clear is paid once per scratch lifetime,
// not per vertex.
class TwoHopScratch {
 public:
  explicit TwoHopScratch(VertexId n) : stamp_(n, 0) {}

  // `u`'s deduplicated sorted 2-hop list (neighbors plus
  // neighbors-of-neighbors except u) -- byte-identical to the historical
  // sort+unique over the raw volume.
  std::vector<VertexId> ListOf(const Graph& g, VertexId u) {
    if (++generation_ == 0) {  // counter wrapped; re-zero the stamps
      std::fill(stamp_.begin(), stamp_.end(), 0);
      generation_ = 1;
    }
    std::vector<VertexId> out;
    for (VertexId v : g.Neighbors(u)) {
      if (stamp_[v] != generation_) {
        stamp_[v] = generation_;
        out.push_back(v);
      }
      for (VertexId w : g.Neighbors(v)) {
        if (w != u && stamp_[w] != generation_) {
          stamp_[w] = generation_;
          out.push_back(w);
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t generation_ = 0;
};

}  // namespace

const PreparedGraph::FilterArtifacts& PreparedGraph::Filter(
    util::ThreadPool& pool) {
  std::lock_guard<std::mutex> lock(mu_);
  if (filter_.has_value()) {
    ++cache_stats_.filter.hits;
    return *filter_;
  }
  NSKY_TRACE_SPAN("prepared.filter_build");
  CountBuild("filter");
  ++builds_;
  ++cache_stats_.filter.misses;
  util::Timer build_timer;

  // Built with the exact cold-path code (internal::RunFilterPhase) under an
  // unlimited context, so the cached counters / candidate_count /
  // aux_peak_bytes are the ones any cold run would have produced.
  const util::ExecutionContext ctx;
  SolverWorkspace workspace;
  internal::SolveEnv env{&ctx, &pool, &workspace, nullptr};
  SkylineResult result;
  util::Status status =
      internal::RunFilterPhase(*g_, SolverOptions{}, env, &result);
  NSKY_CHECK_MSG(status.ok(), "unlimited filter-phase build cannot fail");

  FilterArtifacts fa;
  fa.candidates = std::move(result.skyline);
  fa.dominator = std::move(result.dominator);
  fa.stats = result.stats;
  fa.member.assign(g_->NumVertices(), 0);
  for (VertexId u : fa.candidates) fa.member[u] = 1;
  filter_ = std::move(fa);
  cache_stats_.filter.build_us += static_cast<uint64_t>(build_timer.Micros());
  return *filter_;
}

const NeighborhoodBlooms& PreparedGraph::CandidateBlooms(
    uint32_t bits, util::ThreadPool& pool) {
  // Membership map first; Filter() takes the same mutex.
  const std::vector<uint8_t>& member = Filter(pool).member;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = candidate_blooms_.find(bits);
  if (it != candidate_blooms_.end()) {
    ++cache_stats_.candidate_blooms[bits].hits;
    return *it->second;
  }
  NSKY_TRACE_SPAN("prepared.bloom_build");
  CountBuild("candidate_blooms");
  ++builds_;
  ++cache_stats_.candidate_blooms[bits].misses;
  util::Timer build_timer;
  auto blooms = std::make_unique<NeighborhoodBlooms>(*g_, member, bits, &pool);
  cache_stats_.candidate_blooms[bits].build_us +=
      static_cast<uint64_t>(build_timer.Micros());
  return *candidate_blooms_.emplace(bits, std::move(blooms)).first->second;
}

const NeighborhoodBlooms& PreparedGraph::FullBlooms(uint32_t bits,
                                                    util::ThreadPool& pool) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = full_blooms_.find(bits);
  if (it != full_blooms_.end()) {
    ++cache_stats_.full_blooms[bits].hits;
    return *it->second;
  }
  NSKY_TRACE_SPAN("prepared.bloom_build");
  CountBuild("full_blooms");
  ++builds_;
  ++cache_stats_.full_blooms[bits].misses;
  util::Timer build_timer;
  std::vector<uint8_t> member(g_->NumVertices(), 1);
  auto blooms = std::make_unique<NeighborhoodBlooms>(*g_, member, bits, &pool);
  cache_stats_.full_blooms[bits].build_us +=
      static_cast<uint64_t>(build_timer.Micros());
  return *full_blooms_.emplace(bits, std::move(blooms)).first->second;
}

const PreparedGraph::TwoHopArtifacts& PreparedGraph::TwoHop(
    util::ThreadPool& pool) {
  std::lock_guard<std::mutex> lock(mu_);
  if (two_hop_.has_value()) {
    ++cache_stats_.two_hop.hits;
    return *two_hop_;
  }
  NSKY_TRACE_SPAN("prepared.two_hop_build");
  CountBuild("two_hop");
  ++builds_;
  ++cache_stats_.two_hop.misses;
  util::Timer build_timer;

  // The same deterministic materialization RunBase2Hop performs cold: slot
  // u is written only by the worker owning u, and the recorded charge is
  // the per-worker logical byte sum merged in worker order plus the outer
  // array -- the exact value a cold run adds to its ledger.
  const Graph& g = *g_;
  const VertexId n = g.NumVertices();
  TwoHopArtifacts art;
  art.lists.resize(n);
  std::vector<uint64_t> bytes_per_worker(pool.num_threads(), 0);
  const util::ExecutionContext ctx;
  util::Status scan = pool.ParallelFor(
      n, ctx, [&](unsigned worker, uint64_t begin, uint64_t end) {
        TwoHopScratch scratch(n);
        for (VertexId u = static_cast<VertexId>(begin); u < end; ++u) {
          art.lists[u] = scratch.ListOf(g, u);
          bytes_per_worker[worker] += art.lists[u].size() * sizeof(VertexId);
        }
      });
  NSKY_CHECK_MSG(scan.ok(), "unlimited 2-hop build cannot fail");
  for (uint64_t bytes : bytes_per_worker) art.charged_bytes += bytes;
  art.charged_bytes += static_cast<uint64_t>(n) * sizeof(std::vector<VertexId>);
  two_hop_ = std::move(art);
  cache_stats_.two_hop.build_us += static_cast<uint64_t>(build_timer.Micros());
  return *two_hop_;
}

const std::vector<VertexId>& PreparedGraph::DegreeOrder() {
  std::lock_guard<std::mutex> lock(mu_);
  if (degree_order_.has_value()) {
    ++cache_stats_.degree_order.hits;
    return *degree_order_;
  }
  CountBuild("degree_order");
  ++builds_;
  ++cache_stats_.degree_order.misses;
  util::Timer build_timer;
  const VertexId n = g_->NumVertices();
  std::vector<VertexId> order(n);
  for (VertexId u = 0; u < n; ++u) order[u] = u;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g_->Degree(a) < g_->Degree(b);
  });
  degree_order_ = std::move(order);
  cache_stats_.degree_order.build_us +=
      static_cast<uint64_t>(build_timer.Micros());
  return *degree_order_;
}

const graph::CoreDecomposition& PreparedGraph::Cores() {
  std::lock_guard<std::mutex> lock(mu_);
  if (cores_.has_value()) {
    ++cache_stats_.cores.hits;
    return *cores_;
  }
  CountBuild("cores");
  ++builds_;
  ++cache_stats_.cores.misses;
  util::Timer build_timer;
  cores_ = graph::ComputeCores(*g_);
  cache_stats_.cores.build_us += static_cast<uint64_t>(build_timer.Micros());
  return *cores_;
}

void PreparedGraph::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  filter_.reset();
  candidate_blooms_.clear();
  full_blooms_.clear();
  two_hop_.reset();
  degree_order_.reset();
  cores_.reset();
  if (util::metrics::Enabled()) {
    util::metrics::GetCounter("nsky.prepared.invalidations").Add(1);
  }
}

void PreparedGraph::Rebind(const Graph* g) {
  std::lock_guard<std::mutex> lock(mu_);
  g_ = g;
}

PreparedGraph::RepairOutcome PreparedGraph::RepairForUpdates(
    const Graph& old_g, const Graph& new_g,
    std::span<const graph::EdgeUpdate> updates) {
  NSKY_TRACE_SPAN("prepared.repair");
  NSKY_CHECK_MSG(old_g.NumVertices() == new_g.NumVertices(),
                 "repair requires a fixed vertex set");
  std::lock_guard<std::mutex> lock(mu_);
  g_ = &new_g;

  RepairOutcome outcome;
  const VertexId n = new_g.NumVertices();

  // Dirty set D = endpoints of the net batch plus their open neighborhoods
  // in both epochs; `endpoints` separately tracks the vertices whose own
  // adjacency row changed (the only dirty bloom rows / degree moves).
  std::vector<uint8_t> dirty_mark(n, 0);
  std::vector<uint8_t> endpoint_mark(n, 0);
  std::vector<VertexId> dirty;
  std::vector<VertexId> endpoints;
  auto add_dirty = [&](VertexId x) {
    if (!dirty_mark[x]) {
      dirty_mark[x] = 1;
      dirty.push_back(x);
    }
  };
  for (const graph::EdgeUpdate& e : updates) {
    NSKY_CHECK(e.u < n && e.v < n);
    for (VertexId x : {e.u, e.v}) {
      add_dirty(x);
      if (!endpoint_mark[x]) {
        endpoint_mark[x] = 1;
        endpoints.push_back(x);
      }
      for (VertexId y : old_g.Neighbors(x)) add_dirty(y);
      for (VertexId y : new_g.Neighbors(x)) add_dirty(y);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  std::sort(endpoints.begin(), endpoints.end());
  outcome.dirty_vertices = dirty.size();

  auto count_present = [&]() {
    uint64_t present = 0;
    present += filter_.has_value();
    present += two_hop_.has_value();
    present += degree_order_.has_value();
    present += cores_.has_value();
    present += candidate_blooms_.size();
    present += full_blooms_.size();
    return present;
  };

  // Fallback: the cost of repairing a dirty vertex is its 2-hop volume
  // (deg(u) plus the degree sum of its neighbors -- what the filter verdict
  // and 2-hop list rebuilds traverse), so the repair-vs-rebuild decision is
  // volume-based, not count-based. Counting vertices would miss the hub
  // bias: a vertex enters D as some endpoint's neighbor with probability
  // proportional to its degree, so a numerically small dirty set can still
  // carry rebuild-scale traversal volume on skewed graphs. When the dirty
  // volume exceeds the threshold share of the whole graph's, the "local"
  // patch is a full rebuild in disguise -- drop wholesale instead.
  uint64_t dirty_vol = 0;
  for (VertexId u : dirty) {
    dirty_vol += new_g.Degree(u);
    for (VertexId v : new_g.Neighbors(u)) dirty_vol += new_g.Degree(v);
  }
  uint64_t total_vol = 2 * new_g.NumEdges();
  for (VertexId v = 0; v < n; ++v) {
    const uint64_t d = new_g.Degree(v);
    total_vol += d * d;
  }
  if (dirty_vol * 100 > total_vol * kRepairMaxDirtyPercent) {
    outcome.dropped_artifacts = count_present();
    filter_.reset();
    candidate_blooms_.clear();
    full_blooms_.clear();
    two_hop_.reset();
    degree_order_.reset();
    cores_.reset();
    if (util::metrics::Enabled()) {
      util::metrics::GetCounter("nsky.prepared.repair_fallbacks").Add(1);
    }
    return outcome;
  }

  // Filter artifacts: swap each dirty vertex's old-graph contribution for
  // its new-graph one, then rebuild the candidate set from the dominator
  // array (tracking whether the membership map changed for the bloom
  // repair below).
  bool member_changed = false;
  if (filter_.has_value()) {
    FilterArtifacts& fa = *filter_;
    for (VertexId u : dirty) {
      const FilterContribution before = FilterContributionOf(old_g, u);
      const FilterContribution after = FilterContributionOf(new_g, u);
      fa.stats.pairs_examined += after.pairs_examined - before.pairs_examined;
      fa.stats.degree_prunes += after.degree_prunes - before.degree_prunes;
      fa.stats.inclusion_tests +=
          after.inclusion_tests - before.inclusion_tests;
      fa.stats.nbr_elements_scanned +=
          after.nbr_elements_scanned - before.nbr_elements_scanned;
      fa.dominator[u] = after.dominator;
    }
    fa.candidates.clear();
    for (VertexId u = 0; u < n; ++u) {
      const uint8_t is_member = fa.dominator[u] == u ? 1 : 0;
      if (is_member) fa.candidates.push_back(u);
      if (fa.member[u] != is_member) {
        fa.member[u] = is_member;
        member_changed = true;
      }
    }
    fa.stats.candidate_count = fa.candidates.size();
    fa.stats.aux_peak_bytes =
        static_cast<uint64_t>(n) * sizeof(VertexId) +
        fa.candidates.size() * sizeof(VertexId);
    ++cache_stats_.filter.repairs;
    ++outcome.patched_artifacts;
  }

  // Bloom blocks: a row is a pure function of N(u), so only endpoint rows
  // are stale. Same membership -> rehash in place; changed membership ->
  // rebuild the block reusing every clean surviving row.
  for (auto& [bits, blooms] : full_blooms_) {
    blooms->RehashRows(new_g, endpoints);
    ++cache_stats_.full_blooms[bits].repairs;
    ++outcome.patched_artifacts;
  }
  if (!candidate_blooms_.empty()) {
    if (!filter_.has_value()) {
      // No membership map to repair against (possible only via partial
      // Restore*); drop rather than guess.
      outcome.dropped_artifacts += candidate_blooms_.size();
      candidate_blooms_.clear();
    } else {
      for (auto& [bits, blooms] : candidate_blooms_) {
        if (member_changed) {
          blooms = NeighborhoodBlooms::RepairedCopy(new_g, filter_->member,
                                                    *blooms, endpoint_mark);
        } else {
          blooms->RehashRows(new_g, endpoints);
        }
        ++cache_stats_.candidate_blooms[bits].repairs;
        ++outcome.patched_artifacts;
      }
    }
  }

  // 2-hop lists: exactly the dirty vertices aggregate a changed row; the
  // ledger charge moves by the size delta (the outer-array term is fixed).
  if (two_hop_.has_value()) {
    TwoHopArtifacts& th = *two_hop_;
    TwoHopScratch scratch(n);
    for (VertexId u : dirty) {
      th.charged_bytes -= th.lists[u].size() * sizeof(VertexId);
      th.lists[u] = scratch.ListOf(new_g, u);
      th.charged_bytes += th.lists[u].size() * sizeof(VertexId);
    }
    ++cache_stats_.two_hop.repairs;
    ++outcome.patched_artifacts;
  }

  // Degree order: only endpoint degrees changed. Pull them out and
  // reinsert at their (degree, id) position -- the fresh-build order is
  // exactly (degree ascending, id ascending).
  if (degree_order_.has_value()) {
    std::vector<VertexId>& order = *degree_order_;
    order.erase(std::remove_if(order.begin(), order.end(),
                               [&](VertexId x) { return endpoint_mark[x]; }),
                order.end());
    for (VertexId x : endpoints) {
      auto pos = std::lower_bound(
          order.begin(), order.end(), x, [&](VertexId a, VertexId b) {
            const uint32_t da = new_g.Degree(a);
            const uint32_t db = new_g.Degree(b);
            return da != db ? da < db : a < b;
          });
      order.insert(pos, x);
    }
    ++cache_stats_.degree_order.repairs;
    ++outcome.patched_artifacts;
  }

  // Core numbers come from a global peeling with no local repair; drop.
  if (cores_.has_value()) {
    cores_.reset();
    ++outcome.dropped_artifacts;
  }

  outcome.repaired = true;
  if (util::metrics::Enabled()) {
    util::metrics::GetCounter("nsky.prepared.repairs").Add(1);
  }
  return outcome;
}

uint64_t PreparedGraph::builds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return builds_;
}

PreparedGraph::CacheStats PreparedGraph::CacheStatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_stats_;
}

bool PreparedGraph::has_filter() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filter_.has_value();
}

bool PreparedGraph::has_two_hop() const {
  std::lock_guard<std::mutex> lock(mu_);
  return two_hop_.has_value();
}

const PreparedGraph::FilterArtifacts* PreparedGraph::PeekFilter() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filter_.has_value() ? &*filter_ : nullptr;
}

const PreparedGraph::TwoHopArtifacts* PreparedGraph::PeekTwoHop() const {
  std::lock_guard<std::mutex> lock(mu_);
  return two_hop_.has_value() ? &*two_hop_ : nullptr;
}

const std::vector<VertexId>* PreparedGraph::PeekDegreeOrder() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degree_order_.has_value() ? &*degree_order_ : nullptr;
}

const graph::CoreDecomposition* PreparedGraph::PeekCores() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cores_.has_value() ? &*cores_ : nullptr;
}

std::vector<uint32_t> PreparedGraph::CandidateBloomWidths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> widths;
  widths.reserve(candidate_blooms_.size());
  for (const auto& [bits, blooms] : candidate_blooms_) widths.push_back(bits);
  return widths;
}

std::vector<uint32_t> PreparedGraph::FullBloomWidths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> widths;
  widths.reserve(full_blooms_.size());
  for (const auto& [bits, blooms] : full_blooms_) widths.push_back(bits);
  return widths;
}

const NeighborhoodBlooms* PreparedGraph::PeekCandidateBlooms(
    uint32_t bits) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = candidate_blooms_.find(bits);
  return it != candidate_blooms_.end() ? it->second.get() : nullptr;
}

const NeighborhoodBlooms* PreparedGraph::PeekFullBlooms(uint32_t bits) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = full_blooms_.find(bits);
  return it != full_blooms_.end() ? it->second.get() : nullptr;
}

void PreparedGraph::RestoreFilter(FilterArtifacts artifacts) {
  std::lock_guard<std::mutex> lock(mu_);
  filter_ = std::move(artifacts);
}

void PreparedGraph::RestoreTwoHop(TwoHopArtifacts artifacts) {
  std::lock_guard<std::mutex> lock(mu_);
  two_hop_ = std::move(artifacts);
}

void PreparedGraph::RestoreDegreeOrder(std::vector<VertexId> order) {
  std::lock_guard<std::mutex> lock(mu_);
  degree_order_ = std::move(order);
}

void PreparedGraph::RestoreCores(graph::CoreDecomposition cores) {
  std::lock_guard<std::mutex> lock(mu_);
  cores_ = std::move(cores);
}

void PreparedGraph::RestoreCandidateBlooms(
    uint32_t bits, std::unique_ptr<NeighborhoodBlooms> blooms) {
  std::lock_guard<std::mutex> lock(mu_);
  candidate_blooms_[bits] = std::move(blooms);
}

void PreparedGraph::RestoreFullBlooms(
    uint32_t bits, std::unique_ptr<NeighborhoodBlooms> blooms) {
  std::lock_guard<std::mutex> lock(mu_);
  full_blooms_[bits] = std::move(blooms);
}

}  // namespace nsky::core
