#include "core/filter_phase.h"

#include <vector>

#include "core/solver_internal.h"
#include "core/subset_check.h"
#include "core/telemetry.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace {

// Closed-neighborhood containment N[u] subset-of N[v] for an existing edge
// (u, v): every x in N(u) other than v must appear in N(v) (u and v are in
// N[v] trivially). Galloping containment keeps hub-edge tests cheap.
bool ClosedSubsetAlongEdge(const Graph& g, VertexId u, VertexId v,
                           uint64_t* scanned) {
  return SortedSubsetExcept(g.Neighbors(u), g.Neighbors(v), v, scanned);
}

}  // namespace

namespace internal {

util::Status RunFilterPhase(const Graph& g, const SolverOptions& options,
                            SolveEnv& env, SkylineResult* result) {
  (void)options;
  NSKY_TRACE_SPAN("filter");
  util::Timer timer;
  const util::ExecutionContext& ctx = *env.ctx;
  util::ThreadPool& pool = *env.pool;
  const VertexId n = g.NumVertices();

  ResetResult(result);
  result->dominator.resize(n);
  std::vector<VertexId>& dominator = result->dominator;

  util::MemoryTally tally;
  tally.Add(static_cast<uint64_t>(n) * sizeof(VertexId));  // dominator
  if (util::Status s = ctx.CheckBudget(tally.peak_bytes()); !s.ok()) {
    result->stats.seconds = timer.Seconds();
    return s;
  }

  // Each vertex's edge-constrained domination status is a pure function of
  // its adjacency (Definition 5): u is a candidate unless some neighbor v
  // with N[u] subset-of N[v] beats it on degree, or ties on degree with a
  // smaller id. Evaluating it independently per vertex (no cross-vertex
  // marking, no evolving-dominator skips) is what makes the scan
  // partitionable: every worker writes only its own chunk's dominator
  // slots, and the recorded dominator is the first qualifying neighbor in
  // adjacency order regardless of the partition.
  std::vector<SkylineStats>& per_worker =
      env.workspace->PrepareWorkerStats(pool.num_threads());
  util::Status scan = pool.ParallelFor(
      n, ctx, [&](unsigned worker, uint64_t begin, uint64_t end) {
        NSKY_TRACE_SPAN("filter.worker");
        SkylineStats& stats = per_worker[worker];
        for (VertexId u = static_cast<VertexId>(begin); u < end; ++u) {
          dominator[u] = u;
          const uint32_t deg_u = g.Degree(u);
          for (VertexId v : g.Neighbors(u)) {
            ++stats.pairs_examined;
            const uint32_t deg_v = g.Degree(v);
            // N[u] subset-of N[v] forces deg(v) >= deg(u).
            if (deg_v < deg_u) {
              ++stats.degree_prunes;
              continue;
            }
            // Equal degree + containment would mean N[u] == N[v]; the
            // smaller id dominates, so a larger-id v can never dominate u.
            if (deg_v == deg_u && v > u) continue;
            ++stats.inclusion_tests;
            if (!ClosedSubsetAlongEdge(g, u, v,
                                       &stats.nbr_elements_scanned)) {
              continue;
            }
            dominator[u] = v;  // strict, or mutual resolved by smaller id
            break;
          }
        }
      });
  MergeWorkerStats(&result->stats, per_worker);
  if (!scan.ok()) {
    result->stats.seconds = timer.Seconds();
    return scan;
  }

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] == u) result->skyline.push_back(u);
  }
  result->stats.candidate_count = result->skyline.size();
  tally.Add(result->skyline.size() * sizeof(VertexId));
  result->stats.aux_peak_bytes = tally.peak_bytes();
  result->stats.seconds = timer.Seconds();
  MirrorStatsToMetrics("filter_phase", result->stats);
  return util::Status::Ok();
}

util::Status PrepareFilterOutput(const Graph& g, const SolverOptions& options,
                                 SolveEnv& env, SkylineResult* result,
                                 std::vector<VertexId>* storage,
                                 const std::vector<VertexId>** candidates) {
  if (env.prepared == nullptr) {
    if (util::Status s = RunFilterPhase(g, options, env, result); !s.ok()) {
      return s;
    }
    *storage = std::move(result->skyline);
    result->skyline.clear();
    *candidates = storage;
    return util::Status::Ok();
  }

  // Warm path: the PreparedGraph already holds the phase's outputs, built
  // with the same code above. Copy the dominator array (the refine phase
  // mutates it) and replay the deterministic stats so the final result is
  // bit-identical to a cold run; the candidate set is shared by reference.
  const PreparedGraph::FilterArtifacts& fa = env.prepared->Filter(*env.pool);
  ResetResult(result);
  if (util::Status s = env.ctx->CheckBudget(fa.stats.aux_peak_bytes);
      !s.ok()) {
    return s;
  }
  result->dominator = fa.dominator;
  AddCounters(&result->stats, fa.stats);
  result->stats.candidate_count = fa.stats.candidate_count;
  result->stats.aux_peak_bytes = fa.stats.aux_peak_bytes;
  *candidates = &fa.candidates;
  return util::Status::Ok();
}

}  // namespace internal

SkylineResult FilterPhase(const Graph& g) {
  util::ThreadPool pool(1);
  SolverWorkspace workspace;
  const util::ExecutionContext ctx;
  internal::SolveEnv env{&ctx, &pool, &workspace, nullptr};
  SkylineResult result;
  util::Status status =
      internal::RunFilterPhase(g, SolverOptions{}, env, &result);
  NSKY_CHECK_MSG(status.ok(), "unlimited FilterPhase cannot fail");
  return result;
}

SkylineResult FilterPhase(const Graph& g, const SolverOptions& options) {
  SkylineResult result;
  util::Status status = FilterPhaseInto(
      g, options, util::ExecutionContext::Unlimited(), &result);
  NSKY_CHECK_MSG(status.ok(), "unlimited FilterPhase cannot fail");
  return result;
}

util::Status FilterPhaseInto(const Graph& g, const SolverOptions& options,
                             const util::ExecutionContext& ctx,
                             SkylineResult* result) {
  util::ThreadPool pool(internal::ResolveThreads(options.threads));
  SolverWorkspace workspace;
  internal::SolveEnv env{&ctx, &pool, &workspace, nullptr};
  util::Status status = internal::RunFilterPhase(g, options, env, result);
  result->stats.threads = pool.num_threads();
  if (!status.ok()) {
    result->skyline.clear();
    result->dominator.clear();
  }
  return status;
}

}  // namespace nsky::core
