#include "core/filter_phase.h"

#include <vector>

#include "core/subset_check.h"
#include "core/telemetry.h"
#include "util/memory.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace {

// Closed-neighborhood containment N[u] subset-of N[v] for an existing edge
// (u, v): every x in N(u) other than v must appear in N(v) (u and v are in
// N[v] trivially). Galloping containment keeps hub-edge tests cheap.
bool ClosedSubsetAlongEdge(const Graph& g, VertexId u, VertexId v,
                           uint64_t* scanned) {
  return SortedSubsetExcept(g.Neighbors(u), g.Neighbors(v), v, scanned);
}

}  // namespace

SkylineResult FilterPhase(const Graph& g) {
  NSKY_TRACE_SPAN("filter");
  util::Timer timer;
  const VertexId n = g.NumVertices();

  SkylineResult result;
  result.dominator.resize(n);
  for (VertexId u = 0; u < n; ++u) result.dominator[u] = u;
  std::vector<VertexId>& dominator = result.dominator;

  util::MemoryTally tally;
  tally.Add(dominator.capacity() * sizeof(VertexId));

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] != u) continue;  // already dominated, skip
    const uint32_t deg_u = g.Degree(u);
    for (VertexId v : g.Neighbors(u)) {
      ++result.stats.pairs_examined;
      const uint32_t deg_v = g.Degree(v);
      // N[u] subset-of N[v] forces deg(v) >= deg(u).
      if (deg_v < deg_u) {
        ++result.stats.degree_prunes;
        continue;
      }
      ++result.stats.inclusion_tests;
      if (!ClosedSubsetAlongEdge(g, u, v, &result.stats.nbr_elements_scanned)) {
        continue;
      }
      if (deg_v == deg_u) {
        // Same degree + containment => N[u] == N[v]; smaller id dominates.
        if (u > v) {
          dominator[u] = v;
          break;
        }
        if (dominator[v] == v) dominator[v] = u;
      } else {
        // Strict edge-constrained domination.
        dominator[u] = v;
        break;
      }
    }
  }

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] == u) result.skyline.push_back(u);
  }
  result.stats.candidate_count = result.skyline.size();
  tally.Add(result.skyline.capacity() * sizeof(VertexId));
  result.stats.aux_peak_bytes = tally.peak_bytes();
  result.stats.seconds = timer.Seconds();
  MirrorStatsToMetrics("filter_phase", result.stats);
  return result;
}

}  // namespace nsky::core
