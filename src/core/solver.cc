#include "core/solver.h"

#include <utility>

#include "core/solver_internal.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace nsky::core {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFilterRefine:
      return "filter-refine";
    case Algorithm::kBaseSky:
      return "base";
    case Algorithm::kBaseCSet:
      return "cset";
    case Algorithm::kBase2Hop:
      return "2hop";
  }
  return "unknown";
}

std::optional<Algorithm> ParseAlgorithm(std::string_view name) {
  if (name == "filter-refine" || name == "filter_refine") {
    return Algorithm::kFilterRefine;
  }
  if (name == "base") return Algorithm::kBaseSky;
  if (name == "cset") return Algorithm::kBaseCSet;
  if (name == "2hop") return Algorithm::kBase2Hop;
  return std::nullopt;
}

namespace internal {

unsigned ResolveThreads(uint32_t threads) {
  return threads == 0 ? util::ThreadPool::HardwareThreads() : threads;
}

}  // namespace internal

util::Status SolveInto(const Graph& g, const SolverOptions& options,
                       const util::ExecutionContext& ctx,
                       SkylineResult* result) {
  util::ThreadPool pool(internal::ResolveThreads(options.threads));
  *result = SkylineResult{};

  // Predictive degradation: a kBase2Hop run that cannot fit the budget is
  // re-routed to kFilterRefine before any work happens. The estimate is a
  // pure function of (g, options, budget), so the decision is identical at
  // every thread count.
  Algorithm algorithm = options.algorithm;
  std::string degraded_from;
  if (algorithm == Algorithm::kBase2Hop && ctx.has_byte_budget() &&
      internal::EstimateBase2HopBytes(g, options) > ctx.byte_budget()) {
    degraded_from = AlgorithmName(algorithm);
    algorithm = Algorithm::kFilterRefine;
    if (util::metrics::Enabled()) {
      util::metrics::GetCounter("nsky.solve.degraded").Add(1);
    }
  }

  util::Status status;
  switch (algorithm) {
    case Algorithm::kFilterRefine:
      status = internal::RunFilterRefine(g, options, ctx, pool, result);
      break;
    case Algorithm::kBaseSky:
      status = internal::RunBaseSky(g, options, ctx, pool, result);
      break;
    case Algorithm::kBaseCSet:
      status = internal::RunBaseCSet(g, options, ctx, pool, result);
      break;
    case Algorithm::kBase2Hop:
      status = internal::RunBase2Hop(g, options, ctx, pool, result);
      break;
  }
  result->stats.threads = pool.num_threads();
  result->stats.degraded_from = std::move(degraded_from);
  if (!status.ok()) {
    // Well-defined partial result: empty outputs, populated stats.
    result->skyline.clear();
    result->dominator.clear();
  }
  return status;
}

util::Result<SkylineResult> SolveOrError(const Graph& g,
                                         const SolverOptions& options,
                                         const util::ExecutionContext& ctx) {
  SkylineResult result;
  util::Status status = SolveInto(g, options, ctx, &result);
  if (!status.ok()) return status;
  return result;
}

SkylineResult Solve(const Graph& g, const SolverOptions& options) {
  SkylineResult result;
  util::Status status =
      SolveInto(g, options, util::ExecutionContext::Unlimited(), &result);
  NSKY_CHECK_MSG(status.ok(), "Solve with an unlimited context cannot fail");
  return result;
}

}  // namespace nsky::core
