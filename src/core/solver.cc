#include "core/solver.h"

#include "core/solver_internal.h"
#include "util/thread_pool.h"

namespace nsky::core {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFilterRefine:
      return "filter-refine";
    case Algorithm::kBaseSky:
      return "base";
    case Algorithm::kBaseCSet:
      return "cset";
    case Algorithm::kBase2Hop:
      return "2hop";
  }
  return "unknown";
}

std::optional<Algorithm> ParseAlgorithm(std::string_view name) {
  if (name == "filter-refine" || name == "filter_refine") {
    return Algorithm::kFilterRefine;
  }
  if (name == "base") return Algorithm::kBaseSky;
  if (name == "cset") return Algorithm::kBaseCSet;
  if (name == "2hop") return Algorithm::kBase2Hop;
  return std::nullopt;
}

namespace internal {

unsigned ResolveThreads(uint32_t threads) {
  return threads == 0 ? util::ThreadPool::HardwareThreads() : threads;
}

}  // namespace internal

SkylineResult Solve(const Graph& g, const SolverOptions& options) {
  util::ThreadPool pool(internal::ResolveThreads(options.threads));
  SkylineResult result;
  switch (options.algorithm) {
    case Algorithm::kFilterRefine:
      result = internal::RunFilterRefine(g, options, pool);
      break;
    case Algorithm::kBaseSky:
      result = internal::RunBaseSky(g, options, pool);
      break;
    case Algorithm::kBaseCSet:
      result = internal::RunBaseCSet(g, options, pool);
      break;
    case Algorithm::kBase2Hop:
      result = internal::RunBase2Hop(g, options, pool);
      break;
  }
  result.stats.threads = pool.num_threads();
  return result;
}

}  // namespace nsky::core
