#include "core/solver.h"

#include <utility>

#include "core/solver_internal.h"
#include "core/workspace.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace nsky::core {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFilterRefine:
      return "filter-refine";
    case Algorithm::kBaseSky:
      return "base";
    case Algorithm::kBaseCSet:
      return "cset";
    case Algorithm::kBase2Hop:
      return "2hop";
  }
  return "unknown";
}

std::optional<Algorithm> ParseAlgorithm(std::string_view name) {
  if (name == "filter-refine" || name == "filter_refine") {
    return Algorithm::kFilterRefine;
  }
  if (name == "base") return Algorithm::kBaseSky;
  if (name == "cset") return Algorithm::kBaseCSet;
  if (name == "2hop") return Algorithm::kBase2Hop;
  return std::nullopt;
}

namespace internal {

unsigned ResolveThreads(uint32_t threads) {
  return threads == 0 ? util::ThreadPool::HardwareThreads() : threads;
}

util::Status DispatchSolve(const Graph& g, const SolverOptions& options,
                           SolveEnv& env, SkylineResult* result) {
  ResetResult(result);

  // Predictive degradation: a kBase2Hop run that cannot fit the budget is
  // re-routed to kFilterRefine before any work happens. The estimate is a
  // pure function of (g, options, budget), so the decision is identical at
  // every thread count -- and identical cold and warm.
  Algorithm algorithm = options.algorithm;
  std::string degraded_from;
  if (algorithm == Algorithm::kBase2Hop && env.ctx->has_byte_budget() &&
      EstimateBase2HopBytes(g, options) > env.ctx->byte_budget()) {
    degraded_from = AlgorithmName(algorithm);
    algorithm = Algorithm::kFilterRefine;
    if (util::metrics::Enabled()) {
      util::metrics::GetCounter("nsky.solve.degraded").Add(1);
    }
  }

  util::Status status;
  switch (algorithm) {
    case Algorithm::kFilterRefine:
      status = RunFilterRefine(g, options, env, result);
      break;
    case Algorithm::kBaseSky:
      status = RunBaseSky(g, options, env, result);
      break;
    case Algorithm::kBaseCSet:
      status = RunBaseCSet(g, options, env, result);
      break;
    case Algorithm::kBase2Hop:
      status = RunBase2Hop(g, options, env, result);
      break;
  }
  result->stats.threads = env.pool->num_threads();
  result->stats.degraded_from = std::move(degraded_from);
  if (!status.ok()) {
    // Well-defined partial result: empty outputs, populated stats.
    result->skyline.clear();
    result->dominator.clear();
  }
  return status;
}

}  // namespace internal

util::Status SolveInto(const Graph& g, const SolverOptions& options,
                       const util::ExecutionContext& ctx,
                       SkylineResult* result) {
  util::ThreadPool pool(internal::ResolveThreads(options.threads));
  SolverWorkspace workspace;
  internal::SolveEnv env{&ctx, &pool, &workspace, nullptr};
  return internal::DispatchSolve(g, options, env, result);
}

util::Result<SkylineResult> SolveOrError(const Graph& g,
                                         const SolverOptions& options,
                                         const util::ExecutionContext& ctx) {
  SkylineResult result;
  util::Status status = SolveInto(g, options, ctx, &result);
  if (!status.ok()) return status;
  return result;
}

SkylineResult Solve(const Graph& g, const SolverOptions& options) {
  SkylineResult result;
  util::Status status =
      SolveInto(g, options, util::ExecutionContext::Unlimited(), &result);
  NSKY_CHECK_MSG(status.ok(), "Solve with an unlimited context cannot fail");
  return result;
}

}  // namespace nsky::core
