// Incremental neighborhood-skyline maintenance under edge updates
// (extension beyond the paper, which only considers static graphs).
//
// Inserting or deleting an edge (u, v) changes only N(u) and N(v), so the
// domination status can change only for u, v and the vertices that have u
// or v inside their 2-hop neighborhood (in the old or the new graph) --
// everything else keeps both sides of every domination test unchanged.
// DynamicSkyline re-verifies exactly that affected set per update, using
// the same pivot narrowing as FilterRefineSky's refine phase.
//
// Cost per update: O(vol2(u) + vol2(v)) to collect the affected set plus a
// cheap pivot-narrowed recheck per affected vertex. Suited to maintaining
// the skyline across streams of updates without full recomputation; a full
// recompute remains the better choice after bulk changes.
#ifndef NSKY_CORE_DYNAMIC_SKYLINE_H_
#define NSKY_CORE_DYNAMIC_SKYLINE_H_

#include <cstdint>
#include <vector>

#include "core/skyline.h"
#include "graph/graph.h"

namespace nsky::core {

class DynamicSkyline {
 public:
  // Starts from an empty graph on n vertices (all of them skyline members).
  explicit DynamicSkyline(VertexId num_vertices);

  // Starts from an existing graph (skyline computed once up front).
  explicit DynamicSkyline(const Graph& g);

  // Inserts the undirected edge (u, v); returns false (and changes nothing)
  // when the edge already exists or u == v.
  bool AddEdge(VertexId u, VertexId v);

  // Deletes the undirected edge (u, v); returns false when absent.
  bool RemoveEdge(VertexId u, VertexId v);

  VertexId NumVertices() const { return static_cast<VertexId>(adj_.size()); }
  uint64_t NumEdges() const { return num_edges_; }
  uint32_t Degree(VertexId u) const {
    return static_cast<uint32_t>(adj_[u].size());
  }
  bool HasEdge(VertexId u, VertexId v) const;

  // True iff u is currently undominated.
  bool InSkyline(VertexId u) const { return in_skyline_[u]; }

  // Current skyline, sorted ascending.
  std::vector<VertexId> Skyline() const;

  // Snapshot of the current graph as an immutable CSR Graph.
  Graph ToGraph() const;

  // Vertices re-verified over the lifetime (instrumentation).
  uint64_t total_rechecks() const { return total_rechecks_; }

 private:
  // Re-derives in_skyline_[x] from scratch (pivot-narrowed scan).
  void Recheck(VertexId x);
  // Appends x's 2-hop reachable vertices plus x itself to `out`.
  void Collect2Hop(VertexId x, std::vector<VertexId>* out) const;
  // Applies Recheck to every distinct vertex in `affected`.
  void RecheckAll(std::vector<VertexId>* affected);
  bool Dominates(VertexId w, VertexId x) const;

  std::vector<std::vector<VertexId>> adj_;  // sorted adjacency
  std::vector<uint8_t> in_skyline_;
  uint64_t num_edges_ = 0;
  uint64_t total_rechecks_ = 0;
};

}  // namespace nsky::core

#endif  // NSKY_CORE_DYNAMIC_SKYLINE_H_
