// Incremental neighborhood-skyline maintenance under edge updates
// (extension beyond the paper, which only considers static graphs).
//
// Inserting or deleting an edge (u, v) changes only N(u) and N(v), so the
// domination status can change only for u, v and the vertices that have u
// or v inside their 2-hop neighborhood (in the old or the new graph) --
// everything else keeps both sides of every domination test unchanged.
// DynamicSkyline re-verifies exactly that affected set per update, using
// the same pivot narrowing as FilterRefineSky's refine phase.
//
// Cost per update: O(vol2(u) + vol2(v)) to collect the affected set plus a
// cheap pivot-narrowed recheck per affected vertex. Suited to maintaining
// the skyline across streams of updates without full recomputation; a full
// recompute remains the better choice after bulk changes -- ApplyBatch
// deduplicates the stream to its net effect, estimates the affected
// volume, and switches between the two regimes from that cost model.
//
// Invalidation contract with the artifact caches: anything derived from the
// graph (a core::Engine / PreparedGraph serving this graph's queries) goes
// stale on every mutation. set_invalidation_hook() registers a callback
// fired after each applied update -- with bulk=false for single-edge
// incremental updates and bulk=true when ApplyBatch recomputed from scratch
// -- so the owner can invalidate (and lazily rebuild) its artifacts.
// Engine::ApplyUpdates supersedes that wiring for engine-owned instances:
// it repairs the artifact cache in place instead of dropping it
// (core/prepared_graph.h RepairForUpdates).
#ifndef NSKY_CORE_DYNAMIC_SKYLINE_H_
#define NSKY_CORE_DYNAMIC_SKYLINE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/skyline.h"
#include "graph/graph.h"
#include "graph/versioned_graph.h"

namespace nsky::core {

// One undirected edge update. The canonical definition lives in
// graph/versioned_graph.h so VersionedGraph, DynamicSkyline and
// Engine::ApplyUpdates share one vocabulary type; this alias keeps the
// historical core::EdgeUpdate spelling working.
using EdgeUpdate = graph::EdgeUpdate;

class DynamicSkyline {
 public:
  // Starts from an empty graph on n vertices (all of them skyline members).
  explicit DynamicSkyline(VertexId num_vertices);

  // Starts from an existing graph (skyline computed once up front).
  explicit DynamicSkyline(const Graph& g);

  // Starts from an existing graph whose skyline the caller already knows
  // (e.g. Engine's cached default-options skyline), skipping the up-front
  // Solve(). `skyline` must be exactly Solve(g).skyline.
  DynamicSkyline(const Graph& g, std::span<const VertexId> skyline);

  // Inserts the undirected edge (u, v); returns false (and changes nothing)
  // when the edge already exists or u == v.
  bool AddEdge(VertexId u, VertexId v);

  // Deletes the undirected edge (u, v); returns false when absent.
  bool RemoveEdge(VertexId u, VertexId v);

  // Applies a stream of updates and returns how many actually changed the
  // graph at their point in the stream (duplicates / absent edges are
  // skipped, as in AddEdge / RemoveEdge). The stream is first reduced to
  // its NET effect -- an edge inserted then deleted in the same batch
  // touches nothing -- and the incremental-vs-rebuild choice is a cost
  // model over that net batch: the estimated affected 2-hop volume of the
  // net updates against (a small multiple of) one full solve's O(n + m)
  // scan volume. Batches of kBulkThreshold or more net updates always
  // rebuild (the historical cliff survives as a hard cap; the cost model
  // governs everything below it). The hook fires once per incremental
  // update (bulk=false) or once per batch rebuild (bulk=true); a batch
  // whose net effect is empty fires no hook at all.
  static constexpr size_t kBulkThreshold = 32;
  size_t ApplyBatch(std::span<const EdgeUpdate> updates);

  // Called after every applied mutation; bulk=true means the skyline was
  // recomputed from scratch (artifact caches must rebuild), bulk=false
  // means a single-edge incremental repair ran.
  using InvalidationHook = std::function<void(bool bulk)>;
  void set_invalidation_hook(InvalidationHook hook) {
    invalidation_hook_ = std::move(hook);
  }

  VertexId NumVertices() const { return static_cast<VertexId>(adj_.size()); }
  uint64_t NumEdges() const { return num_edges_; }
  uint32_t Degree(VertexId u) const {
    return static_cast<uint32_t>(adj_[u].size());
  }
  bool HasEdge(VertexId u, VertexId v) const;

  // True iff u is currently undominated.
  bool InSkyline(VertexId u) const { return in_skyline_[u]; }

  // Current skyline, sorted ascending.
  std::vector<VertexId> Skyline() const;

  // Snapshot of the current graph as an immutable CSR Graph.
  Graph ToGraph() const;

  // Vertices re-verified over the lifetime (instrumentation).
  uint64_t total_rechecks() const { return total_rechecks_; }

  // Batches ApplyBatch resolved with a full recompute (instrumentation;
  // Engine::ApplyUpdates reports the per-batch choice from the delta).
  uint64_t bulk_rebuilds() const { return bulk_rebuilds_; }

 private:
  // Re-derives in_skyline_[x] from scratch (pivot-narrowed scan).
  void Recheck(VertexId x);

  // Affected-set scratch, reused across updates: BeginAffected() opens a
  // collection round (bumps the seen-stamp), Collect2Hop() appends x's
  // 2-hop reachable vertices plus x itself -- each vertex at most once per
  // round -- and RecheckCollected() rechecks what was gathered. Replaces
  // the historical fresh-vector-plus-sort-unique per update.
  void BeginAffected();
  void Collect2Hop(VertexId x);
  void RecheckCollected();

  bool Dominates(VertexId w, VertexId x) const;

  // Estimated recheck volume of applying `net`, against the cost of one
  // full solve; true = rebuild once.
  bool ShouldBulkRebuild(const std::vector<EdgeUpdate>& net) const;

  // Mutates adjacency only (no recheck); returns false for no-op updates.
  bool ApplyStructural(const EdgeUpdate& update);
  void NotifyInvalidation(bool bulk) {
    if (invalidation_hook_) invalidation_hook_(bulk);
  }

  std::vector<std::vector<VertexId>> adj_;  // sorted adjacency
  std::vector<uint8_t> in_skyline_;
  uint64_t num_edges_ = 0;
  uint64_t total_rechecks_ = 0;
  uint64_t bulk_rebuilds_ = 0;
  InvalidationHook invalidation_hook_;
  // Affected-set scratch (see BeginAffected).
  std::vector<VertexId> scratch_affected_;
  std::vector<uint32_t> seen_stamp_;
  uint32_t current_stamp_ = 0;
};

}  // namespace nsky::core

#endif  // NSKY_CORE_DYNAMIC_SKYLINE_H_
