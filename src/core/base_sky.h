// BaseSky (Algorithm 1): the baseline neighborhood-skyline algorithm,
// adapted from Brandes et al.'s partial-order computation.
//
// For each vertex u it counts, with one shared array T, the intersection
// sizes T(w) = |N(u) /\ N[w]| over all 2-hop reachable w; T(w) reaching
// deg(u) certifies N(u) subset-of N[w], after which the domination order is
// resolved by degrees and ids. Each vertex's dominator indicator O(u) is
// written at most once. O(m * dmax) time, O(m + n) space (Theorem 1).
#ifndef NSKY_CORE_BASE_SKY_H_
#define NSKY_CORE_BASE_SKY_H_

#include "core/skyline.h"

namespace nsky::core {

// Computes the neighborhood skyline of g with Algorithm 1.
SkylineResult BaseSky(const Graph& g);

}  // namespace nsky::core

#endif  // NSKY_CORE_BASE_SKY_H_
