// BaseSky (Algorithm 1): the baseline neighborhood-skyline algorithm,
// adapted from Brandes et al.'s partial-order computation.
//
// For each vertex u it counts, with a per-worker array T, the intersection
// sizes T(w) = |N(u) /\ N[w]| over all 2-hop reachable w; T(w) reaching
// deg(u) certifies N(u) subset-of N[w], after which the domination order is
// resolved by degrees and ids. Each vertex's verdict is independent of
// every other's, so the scan runs on the parallel engine (core/solver.h)
// and is bit-identical for every thread count. O(m * dmax) time,
// O(m + n) space per worker (Theorem 1).
#ifndef NSKY_CORE_BASE_SKY_H_
#define NSKY_CORE_BASE_SKY_H_

#include "core/skyline.h"
#include "core/solver.h"

namespace nsky::core {

// Deprecated: use Solve(g, options) with Algorithm::kBaseSky.
// Computes the neighborhood skyline of g with Algorithm 1.
SkylineResult BaseSky(const Graph& g);

// As above with execution options (options.threads; options.algorithm is
// ignored).
SkylineResult BaseSky(const Graph& g, const SolverOptions& options);

}  // namespace nsky::core

#endif  // NSKY_CORE_BASE_SKY_H_
