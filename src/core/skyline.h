// Common result types for the neighborhood-skyline algorithms.
//
// Every solver (BaseSky, FilterPhase, FilterRefineSky, Base2Hop, BaseCSet and
// the set-containment-join adapter) returns a SkylineResult so benchmarks and
// tests can compare them uniformly.
#ifndef NSKY_CORE_SKYLINE_H_
#define NSKY_CORE_SKYLINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace nsky::core {

using graph::Graph;
using graph::VertexId;

// Instrumentation collected while computing a skyline. Counters are
// deterministic (independent of timing) so they can be asserted in tests and
// reported by the ablation benchmarks.
struct SkylineStats {
  // |C| after the filter phase (0 when the algorithm has no filter phase).
  uint64_t candidate_count = 0;
  // Candidate dominator pairs (u, w) examined in the refine/verify stage.
  uint64_t pairs_examined = 0;
  // Pairs rejected by the whole-filter bloom subset test
  // (BF(u) & BF(w) != BF(u)).
  uint64_t bloom_prunes = 0;
  // Pairs rejected by the degree test deg(w) < deg(u).
  uint64_t degree_prunes = 0;
  // Exact neighborhood-containment verifications performed (NBRcheck runs).
  uint64_t inclusion_tests = 0;
  // Adjacency-list elements touched during exact verifications.
  uint64_t nbr_elements_scanned = 0;
  // Peak auxiliary heap bytes (deterministic ledger, excludes the graph).
  // Thread-count-invariant: per-worker scratch of the parallel engine is
  // charged once, so this reports the canonical threads=1 footprint (see
  // core/solver.h).
  uint64_t aux_peak_bytes = 0;
  // Worker count the run actually used (core/solver.h). Configuration, not
  // a counter: the only field besides `seconds` allowed to differ between
  // otherwise-identical runs.
  uint32_t threads = 1;
  // AlgorithmName of the originally requested algorithm when the runtime
  // degraded the run to fit the execution context's byte budget
  // (core/solver.h); empty when the run executed as requested. Like
  // `threads` this is configuration, and it is deterministic: the
  // degradation decision is a pure function of the graph, the options and
  // the budget.
  std::string degraded_from;
  // Wall-clock seconds for the whole computation.
  double seconds = 0.0;
};

// Output of a skyline computation.
struct SkylineResult {
  // Skyline vertices R, sorted ascending.
  std::vector<VertexId> skyline;
  // dominator[u] != u exactly when the algorithm found a vertex dominating
  // u; the paper calls this the O(*) array. Algorithms record only the first
  // dominator they find.
  std::vector<VertexId> dominator;
  SkylineStats stats;
};

// True iff `u` is reported as a skyline member.
inline bool InSkyline(const SkylineResult& r, VertexId u) {
  return r.dominator[u] == u;
}

}  // namespace nsky::core

#endif  // NSKY_CORE_SKYLINE_H_
