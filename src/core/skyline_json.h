// Shared renderer of the stable `nsky.skyline.v1` JSON document.
//
// Two front ends emit this document: the CLI (`nsky skyline --json`,
// src/tools/cli.cc) and the network server (`GET /v1/skyline`,
// src/server/). The serving contract pins them byte-for-byte equal for the
// same graph and options (tests/server/server_test.cc), which is only
// maintainable if both render through one function -- so the renderer lives
// here, next to the engine, and neither front end writes skyline keys by
// hand.
#ifndef NSKY_CORE_SKYLINE_JSON_H_
#define NSKY_CORE_SKYLINE_JSON_H_

#include <cstdint>
#include <string>

#include "core/engine.h"
#include "core/skyline.h"
#include "graph/graph.h"

namespace nsky::util {
class JsonWriter;
}  // namespace nsky::util

namespace nsky::core {

// Presentation knobs of one nsky.skyline.v1 document. The keys they control
// are additive: a plain single-solve document carries neither the engine
// markers nor the embedded introspection documents.
struct SkylineDocOptions {
  std::string algorithm;  // the requested algorithm, as the caller spelled it
  bool engine = false;    // served through core::Engine ("engine","repeat")
  uint64_t repeat = 1;
  // Embed the engine's own documents ("engine_stats","recent_queries");
  // requires a non-null engine argument.
  bool include_engine_docs = false;
};

// The "stats" member object shared by nsky.skyline.v1 and
// nsky.candidates.v1 (every deterministic SkylineStats counter plus the
// wall-time "seconds" field -- the one key identity tests normalize away).
void WriteSkylineStatsJson(const SkylineStats& stats, util::JsonWriter* w);

// The full document: schema/command/algorithm, optional engine markers, the
// graph shape, the skyline membership, the stats object, and optionally the
// engine's introspection documents. `engine` may be null unless
// doc.include_engine_docs is set.
void WriteSkylineDocJson(const graph::Graph& g, const SkylineResult& r,
                         const SkylineDocOptions& doc, Engine* engine,
                         util::JsonWriter* w);

// WriteSkylineDocJson into a fresh writer; returns the document text
// (no trailing newline -- both front ends append their own).
std::string SkylineDocToJson(const graph::Graph& g, const SkylineResult& r,
                             const SkylineDocOptions& doc,
                             Engine* engine = nullptr);

}  // namespace nsky::core

#endif  // NSKY_CORE_SKYLINE_JSON_H_
