#include "core/domination.h"

#include <algorithm>

#include "util/logging.h"

namespace nsky::core {

namespace {

// True iff every element of `small` except `skip1`/`skip2` appears in
// `big` (both sorted ascending). Linear two-pointer merge.
bool SortedSubset(std::span<const VertexId> small,
                  std::span<const VertexId> big, VertexId skip1,
                  VertexId skip2) {
  size_t j = 0;
  for (VertexId x : small) {
    if (x == skip1 || x == skip2) continue;
    while (j < big.size() && big[j] < x) ++j;
    if (j == big.size() || big[j] != x) return false;
    ++j;
  }
  return true;
}

}  // namespace

bool NeighborhoodIncluded(const Graph& g, VertexId v, VertexId u) {
  NSKY_DCHECK(u != v);
  // N(v) subset-of N(u) + {u}: elements equal to u are trivially inside.
  return SortedSubset(g.Neighbors(v), g.Neighbors(u), u, u);
}

bool ClosedNeighborhoodIncluded(const Graph& g, VertexId v, VertexId u) {
  NSKY_DCHECK(u != v);
  // N[v] subset-of N[u] requires v in N[u], i.e., the edge (u, v).
  if (!g.HasEdge(u, v)) return false;
  // u in N[u] holds trivially; remaining elements of N(v) must be in N(u).
  return SortedSubset(g.Neighbors(v), g.Neighbors(u), u, v);
}

bool Dominates(const Graph& g, VertexId u, VertexId v) {
  NSKY_DCHECK(u != v);
  if (!NeighborhoodIncluded(g, v, u)) return false;
  if (!NeighborhoodIncluded(g, u, v)) return true;  // strict
  return u < v;  // mutual: the smaller id dominates
}

bool EdgeConstrainedDominates(const Graph& g, VertexId u, VertexId v) {
  NSKY_DCHECK(u != v);
  if (!ClosedNeighborhoodIncluded(g, v, u)) return false;
  if (!ClosedNeighborhoodIncluded(g, u, v)) return true;  // strict
  return u < v;  // N[u] == N[v]: the smaller id dominates
}

std::vector<VertexId> TwoHopNeighbors(const Graph& g, VertexId u) {
  std::vector<VertexId> out;
  for (VertexId v : g.Neighbors(u)) {
    out.push_back(v);
    for (VertexId w : g.Neighbors(v)) {
      if (w != u) out.push_back(w);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

SkylineResult BruteForceSkyline(const Graph& g) {
  const VertexId n = g.NumVertices();
  SkylineResult result;
  result.dominator.resize(n);
  for (VertexId u = 0; u < n; ++u) result.dominator[u] = u;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w : TwoHopNeighbors(g, u)) {
      ++result.stats.pairs_examined;
      if (Dominates(g, w, u)) {
        result.dominator[u] = w;
        break;
      }
    }
    if (result.dominator[u] == u) result.skyline.push_back(u);
  }
  return result;
}

SkylineResult BruteForceCandidates(const Graph& g) {
  const VertexId n = g.NumVertices();
  SkylineResult result;
  result.dominator.resize(n);
  for (VertexId u = 0; u < n; ++u) result.dominator[u] = u;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.Neighbors(u)) {
      ++result.stats.pairs_examined;
      if (EdgeConstrainedDominates(g, v, u)) {
        result.dominator[u] = v;
        break;
      }
    }
    if (result.dominator[u] == u) result.skyline.push_back(u);
  }
  result.stats.candidate_count = result.skyline.size();
  return result;
}

std::vector<std::pair<VertexId, VertexId>> AllDominationPairs(const Graph& g) {
  std::vector<std::pair<VertexId, VertexId>> out;
  const VertexId n = g.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : TwoHopNeighbors(g, v)) {
      if (Dominates(g, w, v)) out.emplace_back(w, v);
    }
  }
  return out;
}

}  // namespace nsky::core
