#include <vector>

#include "core/solver_internal.h"
#include "core/telemetry.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace internal {

util::Status RunBaseSky(const Graph& g, const SolverOptions& options,
                        SolveEnv& env, SkylineResult* result) {
  (void)options;
  NSKY_TRACE_SPAN("base_sky");
  util::Timer timer;
  const util::ExecutionContext& ctx = *env.ctx;
  util::ThreadPool& pool = *env.pool;
  const VertexId n = g.NumVertices();

  ResetResult(result);
  result->dominator.resize(n);
  std::vector<VertexId>& dominator = result->dominator;

  util::MemoryTally tally;
  tally.Add(static_cast<uint64_t>(n) * sizeof(VertexId));  // dominator
  // Per-worker intersection counters; charged once (threads=1 footprint)
  // to keep the ledger thread-count-invariant.
  tally.Add(static_cast<uint64_t>(n) * sizeof(uint32_t));
  if (util::Status s = ctx.CheckBudget(tally.peak_bytes()); !s.ok()) {
    result->stats.seconds = timer.Seconds();
    return s;
  }

  // Each vertex's verdict is a pure function of its 2-hop neighborhood:
  // u is dominated iff some w with |N(u) /\ N[w]| = deg(u) beats it on
  // degree or ties with a smaller id. The first such w in the fixed scan
  // order (v ascending in N(u); within v, N(v) ascending then v itself)
  // becomes dominator[u]. No cross-vertex marking, so workers write only
  // their own chunk's slots and the result is partition-independent.
  //
  // The counters must be zero-filled by Prepare*, not lazily in-run: a
  // cancelled earlier query can abandon them mid-sparse-reset.
  const unsigned workers = pool.num_threads();
  std::vector<SkylineStats>& per_worker =
      env.workspace->PrepareWorkerStats(workers);
  std::vector<std::vector<uint32_t>>& count_per_worker =
      env.workspace->PrepareWorkerCounts(workers, n);
  std::vector<std::vector<VertexId>>& touched_per_worker =
      env.workspace->PrepareWorkerTouched(workers);
  util::Status scan = pool.ParallelFor(
      n, ctx, [&](unsigned worker, uint64_t begin, uint64_t end) {
    NSKY_TRACE_SPAN("base_sky.worker");
    SkylineStats& stats = per_worker[worker];
    // Worker-local counters, reset sparsely via `touched` so the cost per
    // vertex stays proportional to the explored 2-hop volume. Kept in
    // per-worker workspace slots because the sliced ParallelFor invokes
    // the body once per slice; worker i runs its slices sequentially, so
    // the shared slot is race-free.
    std::vector<uint32_t>& count = count_per_worker[worker];
    std::vector<VertexId>& touched = touched_per_worker[worker];
    touched.reserve(256);
    for (VertexId u = static_cast<VertexId>(begin); u < end; ++u) {
      dominator[u] = u;
      const uint32_t deg_u = g.Degree(u);
      bool done = false;
      touched.clear();
      for (VertexId v : g.Neighbors(u)) {
        if (done) break;
        // w ranges over N[v] \ {u}; the closed neighborhood is N(v) plus v.
        auto process = [&](VertexId w) {
          if (w == u || done) return;
          if (count[w] == 0) touched.push_back(w);
          ++stats.pairs_examined;
          if (++count[w] != deg_u) return;
          // N(u) subset-of N[w]: w neighborhood-includes u. Strict degree
          // advantage dominates; an equal-degree tie (mutual inclusion,
          // Definition 2 case 2) is won by the smaller id.
          if (g.Degree(w) > deg_u || (g.Degree(w) == deg_u && w < u)) {
            dominator[u] = w;
            done = true;
          }
        };
        for (VertexId w : g.Neighbors(v)) process(w);
        process(v);
      }
      for (VertexId w : touched) count[w] = 0;
    }
  });
  MergeWorkerStats(&result->stats, per_worker);
  if (!scan.ok()) {
    result->stats.seconds = timer.Seconds();
    return scan;
  }

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] == u) result->skyline.push_back(u);
  }
  tally.Add(result->skyline.size() * sizeof(VertexId));
  result->stats.aux_peak_bytes = tally.peak_bytes();
  result->stats.seconds = timer.Seconds();
  MirrorStatsToMetrics("base_sky", result->stats);
  return util::Status::Ok();
}

}  // namespace internal

}  // namespace nsky::core
