#include "core/base_sky.h"

#include <vector>

#include "core/telemetry.h"
#include "util/memory.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

SkylineResult BaseSky(const Graph& g) {
  NSKY_TRACE_SPAN("base_sky");
  util::Timer timer;
  const VertexId n = g.NumVertices();

  SkylineResult result;
  result.dominator.resize(n);
  for (VertexId u = 0; u < n; ++u) result.dominator[u] = u;
  std::vector<VertexId>& dominator = result.dominator;

  // Shared intersection counters; reset sparsely via `touched` so that the
  // per-vertex cost stays proportional to the explored 2-hop volume.
  std::vector<uint32_t> count(n, 0);
  std::vector<VertexId> touched;
  touched.reserve(256);

  util::MemoryTally tally;
  tally.Add(dominator.capacity() * sizeof(VertexId));
  tally.Add(count.capacity() * sizeof(uint32_t));

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] != u) continue;  // already dominated, skip (line 5)
    const uint32_t deg_u = g.Degree(u);
    bool done = false;
    touched.clear();
    for (VertexId v : g.Neighbors(u)) {
      if (done) break;
      // w ranges over N[v] \ {u}; the closed neighborhood is N(v) plus v.
      auto process = [&](VertexId w) {
        if (w == u || done) return;
        if (count[w] == 0) touched.push_back(w);
        ++result.stats.pairs_examined;
        if (++count[w] != deg_u) return;
        // N(u) subset-of N[w]: w neighborhood-includes u.
        if (g.Degree(w) == deg_u) {
          // Equal degrees + inclusion => mutual inclusion; the smaller id
          // dominates (Definition 2, case 2).
          if (u > w) {
            dominator[u] = w;
            done = true;
          } else if (dominator[w] == w) {
            dominator[w] = u;
          }
        } else {
          // Strict domination: u is definitely not in the skyline.
          dominator[u] = w;
          done = true;
        }
      };
      for (VertexId w : g.Neighbors(v)) process(w);
      process(v);
    }
    for (VertexId w : touched) count[w] = 0;
  }

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] == u) result.skyline.push_back(u);
  }
  tally.Add(result.skyline.capacity() * sizeof(VertexId));
  result.stats.aux_peak_bytes = tally.peak_bytes();
  result.stats.seconds = timer.Seconds();
  MirrorStatsToMetrics("base_sky", result.stats);
  return result;
}

}  // namespace nsky::core
