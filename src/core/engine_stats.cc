#include "core/engine_stats.h"

#include <cinttypes>
#include <cstdio>
#include <map>

#include "util/json_writer.h"
#include "util/prom_export.h"

namespace nsky::core {

namespace {

void WriteArtifactStats(const PreparedGraph::ArtifactStats& a,
                        util::JsonWriter* w) {
  w->BeginObject();
  w->KV("hits", a.hits);
  w->KV("misses", a.misses);
  w->KV("build_us", a.build_us);
  w->KV("repairs", a.repairs);
  w->EndObject();
}

void WriteBloomStats(
    const std::map<uint32_t, PreparedGraph::ArtifactStats>& by_bits,
    util::JsonWriter* w) {
  w->BeginObject();
  for (const auto& [bits, a] : by_bits) {
    w->Key(std::to_string(bits));
    WriteArtifactStats(a, w);
  }
  w->EndObject();
}

void WriteHistogramObject(const util::metrics::HistogramSample& h,
                          util::JsonWriter* w) {
  w->BeginObject();
  w->KV("count", h.count);
  w->KV("sum", h.sum);
  w->KV("max", h.max);
  if (h.count > 0) {
    w->KV("p50", util::metrics::EstimateQuantile(h, 0.50));
    w->KV("p90", util::metrics::EstimateQuantile(h, 0.90));
    w->KV("p99", util::metrics::EstimateQuantile(h, 0.99));
  }
  w->Key("buckets");
  w->BeginObject();
  for (const auto& [bucket, n] : h.nonzero_buckets) {
    w->KV(std::to_string(bucket), n);
  }
  w->EndObject();
  w->EndObject();
}

void AppendCounterLine(const char* name, std::string_view labels, uint64_t v,
                       std::string* out) {
  out->append(name);
  if (!labels.empty()) {
    out->append("{");
    out->append(labels);
    out->append("}");
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", v);
  out->append(buf);
}

void AppendCacheLines(const char* artifact, std::string_view extra_label,
                      const PreparedGraph::ArtifactStats& a,
                      std::string* hits, std::string* misses,
                      std::string* build_us, std::string* repairs) {
  std::string labels = std::string("artifact=\"") + artifact + "\"";
  if (!extra_label.empty()) {
    labels.append(",");
    labels.append(extra_label);
  }
  AppendCounterLine("nsky_engine_artifact_hits", labels, a.hits, hits);
  AppendCounterLine("nsky_engine_artifact_misses", labels, a.misses, misses);
  AppendCounterLine("nsky_engine_artifact_build_us", labels, a.build_us,
                    build_us);
  AppendCounterLine("nsky_engine_artifact_repairs", labels, a.repairs,
                    repairs);
}

}  // namespace

void WriteEngineStatsJson(const EngineStats& stats, util::JsonWriter* w) {
  w->BeginObject();
  w->KV("schema", "nsky.engine_stats.v1");
  w->KV("queries_served", stats.queries_served);
  w->KV("warm_queries", stats.warm_queries);
  w->KV("cold_queries", stats.cold_queries);
  w->KV("timeout_queries", stats.timeout_queries);
  w->KV("cancelled_queries", stats.cancelled_queries);
  w->KV("shed_queries", stats.shed_queries);
  w->KV("artifact_builds", stats.artifact_builds);
  if (stats.snapshot.has_value()) {
    w->Key("snapshot");
    w->BeginObject();
    w->KV("id", stats.snapshot->id);
    w->KV("format_version", static_cast<uint64_t>(stats.snapshot->format_version));
    w->KV("file_bytes", stats.snapshot->file_bytes);
    w->KV("sections", static_cast<uint64_t>(stats.snapshot->sections));
    w->KV("path", stats.snapshot->path);
    w->EndObject();
  }
  if (stats.lifecycle.has_value()) {
    w->Key("lifecycle");
    w->BeginObject();
    w->KV("reloads", stats.lifecycle->reloads);
    w->KV("reload_failures", stats.lifecycle->reload_failures);
    w->KV("cold_fallbacks", stats.lifecycle->cold_fallbacks);
    w->EndObject();
  }
  if (stats.mutation.has_value()) {
    w->Key("mutation");
    w->BeginObject();
    w->KV("epoch", stats.mutation->epoch);
    w->KV("batches", stats.mutation->batches);
    w->KV("updates_applied", stats.mutation->updates_applied);
    w->KV("updates_skipped", stats.mutation->updates_skipped);
    w->KV("artifact_repairs", stats.mutation->artifact_repairs);
    w->KV("repair_fallbacks", stats.mutation->repair_fallbacks);
    w->KV("dirty_last", stats.mutation->dirty_last);
    w->KV("dirty_total", stats.mutation->dirty_total);
    w->EndObject();
  }
  w->Key("cache");
  w->BeginObject();
  w->Key("filter");
  WriteArtifactStats(stats.cache.filter, w);
  w->Key("two_hop");
  WriteArtifactStats(stats.cache.two_hop, w);
  w->Key("degree_order");
  WriteArtifactStats(stats.cache.degree_order, w);
  w->Key("cores");
  WriteArtifactStats(stats.cache.cores, w);
  w->Key("candidate_blooms");
  WriteBloomStats(stats.cache.candidate_blooms, w);
  w->Key("full_blooms");
  WriteBloomStats(stats.cache.full_blooms, w);
  w->EndObject();
  w->Key("workspaces");
  w->BeginArray();
  for (const EngineStats::WorkspaceStats& ws : stats.workspaces) {
    w->BeginObject();
    w->KV("threads", static_cast<uint64_t>(ws.threads));
    w->KV("allocation_events", ws.allocation_events);
    w->KV("allocated_bytes", ws.allocated_bytes);
    w->EndObject();
  }
  w->EndArray();
  w->Key("latency_us");
  w->BeginObject();
  for (const EngineStats::AlgorithmLatency& al : stats.latency) {
    w->Key(al.algorithm);
    WriteHistogramObject(al.latency_us, w);
  }
  w->EndObject();
  w->EndObject();
}

std::string EngineStatsToJson(const EngineStats& stats) {
  util::JsonWriter w;
  WriteEngineStatsJson(stats, &w);
  return std::move(w).Take();
}

std::string EngineStatsToPrometheus(const EngineStats& stats) {
  std::string out;
  out.append("# TYPE nsky_engine_queries_served counter\n");
  AppendCounterLine("nsky_engine_queries_served", "", stats.queries_served,
                    &out);
  out.append("# TYPE nsky_engine_warm_queries counter\n");
  AppendCounterLine("nsky_engine_warm_queries", "", stats.warm_queries, &out);
  out.append("# TYPE nsky_engine_cold_queries counter\n");
  AppendCounterLine("nsky_engine_cold_queries", "", stats.cold_queries, &out);
  out.append("# TYPE nsky_engine_timeout_queries counter\n");
  AppendCounterLine("nsky_engine_timeout_queries", "", stats.timeout_queries,
                    &out);
  out.append("# TYPE nsky_engine_cancelled_queries counter\n");
  AppendCounterLine("nsky_engine_cancelled_queries", "",
                    stats.cancelled_queries, &out);
  out.append("# TYPE nsky_engine_shed_queries counter\n");
  AppendCounterLine("nsky_engine_shed_queries", "", stats.shed_queries, &out);
  out.append("# TYPE nsky_engine_artifact_builds counter\n");
  AppendCounterLine("nsky_engine_artifact_builds", "", stats.artifact_builds,
                    &out);
  if (stats.snapshot.has_value()) {
    out.append("# TYPE nsky_engine_snapshot_loaded gauge\n");
    AppendCounterLine(
        "nsky_engine_snapshot_loaded",
        "id=\"" + stats.snapshot->id + "\",version=\"" +
            std::to_string(stats.snapshot->format_version) + "\"",
        1, &out);
    out.append("# TYPE nsky_engine_snapshot_file_bytes gauge\n");
    AppendCounterLine("nsky_engine_snapshot_file_bytes",
                      "id=\"" + stats.snapshot->id + "\"",
                      stats.snapshot->file_bytes, &out);
  }
  if (stats.lifecycle.has_value()) {
    out.append("# TYPE nsky_engine_reloads counter\n");
    AppendCounterLine("nsky_engine_reloads", "", stats.lifecycle->reloads,
                      &out);
    out.append("# TYPE nsky_engine_reload_failures counter\n");
    AppendCounterLine("nsky_engine_reload_failures", "",
                      stats.lifecycle->reload_failures, &out);
    out.append("# TYPE nsky_engine_cold_fallbacks counter\n");
    AppendCounterLine("nsky_engine_cold_fallbacks", "",
                      stats.lifecycle->cold_fallbacks, &out);
  }
  out.append("# TYPE nsky_engine_epoch gauge\n");
  AppendCounterLine("nsky_engine_epoch", "", stats.epoch, &out);
  if (stats.mutation.has_value()) {
    out.append("# TYPE nsky_engine_mutation_batches counter\n");
    AppendCounterLine("nsky_engine_mutation_batches", "",
                      stats.mutation->batches, &out);
    out.append("# TYPE nsky_engine_mutation_updates_applied counter\n");
    AppendCounterLine("nsky_engine_mutation_updates_applied", "",
                      stats.mutation->updates_applied, &out);
    out.append("# TYPE nsky_engine_mutation_updates_skipped counter\n");
    AppendCounterLine("nsky_engine_mutation_updates_skipped", "",
                      stats.mutation->updates_skipped, &out);
    out.append("# TYPE nsky_engine_mutation_artifact_repairs counter\n");
    AppendCounterLine("nsky_engine_mutation_artifact_repairs", "",
                      stats.mutation->artifact_repairs, &out);
    out.append("# TYPE nsky_engine_mutation_repair_fallbacks counter\n");
    AppendCounterLine("nsky_engine_mutation_repair_fallbacks", "",
                      stats.mutation->repair_fallbacks, &out);
    out.append("# TYPE nsky_engine_mutation_dirty_vertices counter\n");
    AppendCounterLine("nsky_engine_mutation_dirty_vertices", "",
                      stats.mutation->dirty_total, &out);
  }

  // Group each metric family under one # TYPE line, as the format requires.
  std::string hits, misses, build_us, repairs;
  AppendCacheLines("filter", "", stats.cache.filter, &hits, &misses,
                   &build_us, &repairs);
  AppendCacheLines("two_hop", "", stats.cache.two_hop, &hits, &misses,
                   &build_us, &repairs);
  AppendCacheLines("degree_order", "", stats.cache.degree_order, &hits,
                   &misses, &build_us, &repairs);
  AppendCacheLines("cores", "", stats.cache.cores, &hits, &misses, &build_us,
                   &repairs);
  for (const auto& [bits, a] : stats.cache.candidate_blooms) {
    AppendCacheLines("candidate_blooms",
                     "bits=\"" + std::to_string(bits) + "\"", a, &hits,
                     &misses, &build_us, &repairs);
  }
  for (const auto& [bits, a] : stats.cache.full_blooms) {
    AppendCacheLines("full_blooms", "bits=\"" + std::to_string(bits) + "\"",
                     a, &hits, &misses, &build_us, &repairs);
  }
  out.append("# TYPE nsky_engine_artifact_hits counter\n");
  out.append(hits);
  out.append("# TYPE nsky_engine_artifact_misses counter\n");
  out.append(misses);
  out.append("# TYPE nsky_engine_artifact_build_us counter\n");
  out.append(build_us);
  out.append("# TYPE nsky_engine_artifact_repairs counter\n");
  out.append(repairs);

  std::string events, bytes;
  for (const EngineStats::WorkspaceStats& ws : stats.workspaces) {
    std::string labels = "threads=\"" + std::to_string(ws.threads) + "\"";
    AppendCounterLine("nsky_engine_workspace_allocation_events", labels,
                      ws.allocation_events, &events);
    AppendCounterLine("nsky_engine_workspace_allocated_bytes", labels,
                      ws.allocated_bytes, &bytes);
  }
  out.append("# TYPE nsky_engine_workspace_allocation_events counter\n");
  out.append(events);
  out.append("# TYPE nsky_engine_workspace_allocated_bytes gauge\n");
  out.append(bytes);

  if (!stats.latency.empty()) {
    out.append("# TYPE nsky_engine_query_latency_us histogram\n");
    for (const EngineStats::AlgorithmLatency& al : stats.latency) {
      util::metrics::AppendPrometheusHistogram(
          "nsky_engine_query_latency_us",
          "algo=\"" + al.algorithm + "\"", al.latency_us, &out);
    }
  }
  return out;
}

}  // namespace nsky::core
