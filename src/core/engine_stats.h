// Per-engine serving stats: the introspection side of core::Engine.
//
// Unlike the process-wide registry (util/metrics.h), these numbers are
// scoped to ONE engine, so a process serving several graphs can tell their
// cache behavior and latency profiles apart. Engine::StatsSnapshot() fills
// an EngineStats; this header renders it as the stable
// `nsky.engine_stats.v1` JSON document and as Prometheus exposition text.
//
// Everything here is observation-only: the snapshot is a copy, rendering
// never touches the engine, and no solver reads any of these values.
#ifndef NSKY_CORE_ENGINE_STATS_H_
#define NSKY_CORE_ENGINE_STATS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/prepared_graph.h"
#include "util/metrics.h"

namespace nsky::util {
class JsonWriter;
}  // namespace nsky::util

namespace nsky::core {

// Provenance of an engine restored from a persistent snapshot
// (src/persist/). `id` is the 16-hex-digit content hash of the section
// table -- identical bytes on disk always yield the same id, so operators
// can compare it across a fleet. Attached to the engine by persist::Load
// and surfaced through /healthz, nsky.engine_stats.v1 and the flight
// recorder; absent entirely for cold-built engines.
struct SnapshotInfo {
  std::string id;               // content hash, 16 lowercase hex digits
  uint32_t format_version = 0;  // on-disk format version (currently 1)
  uint64_t file_bytes = 0;      // snapshot file size
  uint32_t sections = 0;        // sections restored
  std::string path;             // file the engine was loaded from
};

// Serving-lifecycle counters, owned by the serving front end (they must
// survive engine hot-swaps, so they cannot live on the engine itself). The
// front end stamps them onto a stats snapshot before rendering; absent for
// engines that never reloaded or fell back.
struct ServingLifecycle {
  uint64_t reloads = 0;          // successful hot reloads
  uint64_t reload_failures = 0;  // reload attempts that left the old engine
  uint64_t cold_fallbacks = 0;   // startup snapshot failures -> cold build
};

// Point-in-time copy of one engine's serving counters.
struct EngineStats {
  uint64_t queries_served = 0;
  // A query is warm iff no artifact build happened while it ran
  // (PreparedGraph::builds() unchanged across the dispatch).
  uint64_t warm_queries = 0;
  uint64_t cold_queries = 0;
  // Disposition counters: queries stopped by their context (deadline /
  // cancellation, counted inside queries_served) and requests shed by
  // admission control before reaching the solver (NOT counted in
  // queries_served -- no query ran).
  uint64_t timeout_queries = 0;
  uint64_t cancelled_queries = 0;
  uint64_t shed_queries = 0;
  uint64_t artifact_builds = 0;  // PreparedGraph::builds()

  // Set iff the engine was restored from a persistent snapshot.
  std::optional<SnapshotInfo> snapshot;

  // Set iff the serving front end recorded lifecycle events (hot reloads,
  // cold fallbacks); see ServingLifecycle.
  std::optional<ServingLifecycle> lifecycle;

  // Graph epochs committed by Engine::ApplyUpdates (0 = never mutated).
  uint64_t epoch = 0;

  // Mutation-path counters; set iff ApplyUpdates was ever called.
  struct MutationStats {
    uint64_t epoch = 0;             // current epoch (mirrors EngineStats::epoch)
    uint64_t batches = 0;           // ApplyUpdates calls
    uint64_t updates_applied = 0;   // staged successfully, across batches
    uint64_t updates_skipped = 0;   // no-ops / self loops / out of range
    uint64_t artifact_repairs = 0;  // artifacts patched in place
    uint64_t repair_fallbacks = 0;  // batches that dropped the cache instead
    uint64_t dirty_last = 0;        // dirty-set size of the last commit
    uint64_t dirty_total = 0;       // dirty-set sizes summed over commits
  };
  std::optional<MutationStats> mutation;

  // Per-artifact hit / miss / build-time ledger of the artifact cache.
  PreparedGraph::CacheStats cache;

  // Allocation-ledger high-water marks of each pooled workspace, one entry
  // per resolved thread count the engine has served.
  struct WorkspaceStats {
    uint32_t threads = 0;
    uint64_t allocation_events = 0;
    uint64_t allocated_bytes = 0;
  };
  std::vector<WorkspaceStats> workspaces;

  // Query latency distribution (microseconds) per algorithm, in Algorithm
  // enum order; algorithms never queried are omitted.
  struct AlgorithmLatency {
    std::string algorithm;  // stable CLI name (AlgorithmName)
    util::metrics::HistogramSample latency_us;
  };
  std::vector<AlgorithmLatency> latency;
};

// nsky.engine_stats.v1:
// {"schema":"nsky.engine_stats.v1","queries_served":..,"warm_queries":..,
//  "cold_queries":..,"timeout_queries":..,"cancelled_queries":..,
//  "shed_queries":..,"artifact_builds":..,
//  ["snapshot":{"id":"..","format_version":..,"file_bytes":..,
//               "sections":..,"path":".."},]  -- only for loaded engines
//  ["lifecycle":{"reloads":..,"reload_failures":..,"cold_fallbacks":..},]
//      -- only when the serving front end recorded lifecycle events
//  ["mutation":{"epoch":..,"batches":..,"updates_applied":..,
//               "updates_skipped":..,"artifact_repairs":..,
//               "repair_fallbacks":..,"dirty_last":..,"dirty_total":..},]
//      -- only for engines that served Engine::ApplyUpdates batches
//  "cache":{"filter":{"hits":..,"misses":..,"build_us":..,"repairs":..},...,
//           "candidate_blooms":{"<bits>":{...}},"full_blooms":{...}},
//  "workspaces":[{"threads":..,"allocation_events":..,"allocated_bytes":..}],
//  "latency_us":{"<algo>":{"count":..,"sum":..,"max":..,
//                          "p50":..,"p90":..,"p99":..,"buckets":{..}}}}
std::string EngineStatsToJson(const EngineStats& stats);
void WriteEngineStatsJson(const EngineStats& stats, util::JsonWriter* w);

// Prometheus exposition text for the same snapshot. Engine-scoped metrics
// are prefixed nsky_engine_*; the cache ledger and latency histograms carry
// artifact= / algo= labels.
std::string EngineStatsToPrometheus(const EngineStats& stats);

}  // namespace nsky::core

#endif  // NSKY_CORE_ENGINE_STATS_H_
