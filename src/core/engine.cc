#include "core/engine.h"

#include <utility>

#include "core/solver_internal.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace nsky::core {

Engine::Engine(Graph g, EngineOptions options)
    : graph_(std::move(g)), options_(options), prepared_(&graph_) {}

Engine::Resources& Engine::ResourcesFor(unsigned resolved_threads) {
  auto it = resources_.find(resolved_threads);
  if (it == resources_.end()) {
    it = resources_
             .emplace(resolved_threads,
                      std::make_unique<Resources>(resolved_threads))
             .first;
  }
  return *it->second;
}

util::Status Engine::QueryInto(const SolverOptions& options,
                               const util::ExecutionContext& ctx,
                               SkylineResult* result) {
  Resources& res = ResourcesFor(internal::ResolveThreads(options.threads));
  internal::SolveEnv env{&ctx, &res.pool, &res.workspace, &prepared_};
  util::Status status = internal::DispatchSolve(graph_, options, env, result);
  ++queries_served_;
  if (util::metrics::Enabled()) {
    util::metrics::GetCounter("nsky.engine.queries").Add(1);
  }
  return status;
}

SkylineResult Engine::Query(const SolverOptions& options) {
  SkylineResult result;
  util::Status status =
      QueryInto(options, util::ExecutionContext::Unlimited(), &result);
  NSKY_CHECK_MSG(status.ok(),
                 "Query with an unlimited context cannot fail");
  return result;
}

util::Result<SkylineResult> Engine::QueryOrError(
    const SolverOptions& options, const util::ExecutionContext& ctx) {
  SkylineResult result;
  util::Status status = QueryInto(options, ctx, &result);
  if (!status.ok()) return status;
  return result;
}

std::vector<SkylineResult> Engine::QueryBatch(
    const std::vector<SolverOptions>& batch) {
  std::vector<SkylineResult> results;
  results.reserve(batch.size());
  for (const SolverOptions& options : batch) {
    results.push_back(Query(options));
  }
  return results;
}

const std::vector<VertexId>& Engine::SkylineCache() {
  if (!has_skyline_cache_) {
    skyline_cache_ = Query(options_.defaults).skyline;
    has_skyline_cache_ = true;
  }
  return skyline_cache_;
}

const PreparedGraph::FilterArtifacts& Engine::Filter() {
  Resources& res =
      ResourcesFor(internal::ResolveThreads(options_.defaults.threads));
  return prepared_.Filter(res.pool);
}

void Engine::InvalidateArtifacts() {
  prepared_.Invalidate();
  skyline_cache_.clear();
  has_skyline_cache_ = false;
}

void Engine::RefreshFrom(Graph g) {
  // graph_ is a member, so its address -- the pointer prepared_ holds --
  // stays valid across the move-assign; only the contents change.
  graph_ = std::move(g);
  InvalidateArtifacts();
}

uint64_t Engine::WorkspaceAllocationEvents(uint32_t threads) {
  return ResourcesFor(internal::ResolveThreads(threads))
      .workspace.allocation_events();
}

uint64_t Engine::WorkspaceAllocatedBytes(uint32_t threads) {
  return ResourcesFor(internal::ResolveThreads(threads))
      .workspace.allocated_bytes();
}

void Engine::PoisonScratchForTesting() {
  for (auto& [threads, res] : resources_) {
    res->workspace.PoisonForTesting();
  }
}

}  // namespace nsky::core
