#include "core/engine.h"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "core/solver_internal.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace {

// Slow-query capture borrows the process-wide tracer; at most one engine at
// a time may arm it, and never while the caller already has tracing on.
std::atomic<bool> g_slow_trace_busy{false};

uint64_t SlowQueryThresholdFromEnv() {
  const char* env = std::getenv("NSKY_SLOW_QUERY_US");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') return 0;
  return static_cast<uint64_t>(v);
}

}  // namespace

Engine::Engine(Graph g, EngineOptions options)
    : versioned_(std::move(g)),
      options_(options),
      prepared_(&versioned_.Current()),
      slow_query_threshold_us_(SlowQueryThresholdFromEnv()) {}

std::optional<SnapshotInfo> Engine::EffectiveSnapshotInfo() const {
  if (!snapshot_info_.has_value() || versioned_.epoch() == 0) {
    return snapshot_info_;
  }
  SnapshotInfo info = *snapshot_info_;
  info.id += "+dirty@epoch" + std::to_string(versioned_.epoch());
  return info;
}

Engine::Resources& Engine::ResourcesFor(unsigned resolved_threads) {
  auto it = resources_.find(resolved_threads);
  if (it == resources_.end()) {
    it = resources_
             .emplace(resolved_threads,
                      std::make_unique<Resources>(resolved_threads))
             .first;
  }
  return *it->second;
}

util::Status Engine::Execute(const QueryRequest& request,
                             QueryResponse* response) {
  const SolverOptions& options = request.options;
  SkylineResult* result = &response->result;
  const unsigned resolved = internal::ResolveThreads(options.threads);
  Resources& res = ResourcesFor(resolved);
  internal::SolveEnv env{&request.context, &res.pool, &res.workspace,
                         &prepared_};

  // Arm the slow-query trace only when nobody else is tracing: the caller's
  // own trace (CLI --trace) must never be clobbered, and a second engine in
  // the process must not interleave spans into ours.
  bool trace_armed = false;
  if (slow_query_threshold_us_ > 0 && !util::trace::Enabled()) {
    bool expected = false;
    if (g_slow_trace_busy.compare_exchange_strong(expected, true)) {
      util::trace::Reset();
      util::trace::SetEnabled(true);
      trace_armed = true;
    }
  }

  const uint64_t builds_before = prepared_.builds();
  util::Timer query_timer;
  util::Status status =
      internal::DispatchSolve(versioned_.Current(), options, env, result);
  const uint64_t duration_us = static_cast<uint64_t>(query_timer.Micros());
  const bool warm = prepared_.builds() == builds_before;

  ++queries_served_;
  if (warm) {
    ++warm_queries_;
  } else {
    ++cold_queries_;
  }
  if (status.code() == util::StatusCode::kDeadlineExceeded) {
    ++timeout_queries_;
  } else if (status.code() == util::StatusCode::kCancelled) {
    ++cancelled_queries_;
  }

  // Attribute latency to the algorithm that actually ran: a byte-budget
  // degradation lands on filter-refine, with the requested algorithm kept
  // as degraded_from.
  Algorithm ran = options.algorithm;
  int8_t degraded_from = -1;
  if (!result->stats.degraded_from.empty()) {
    if (std::optional<Algorithm> from =
            ParseAlgorithm(result->stats.degraded_from)) {
      degraded_from = static_cast<int8_t>(*from);
    }
    ran = Algorithm::kFilterRefine;
  }
  latency_us_[static_cast<int>(ran)].Observe(duration_us);

  QueryRecord record;
  record.algorithm = ran;
  record.threads = resolved;
  record.warm = warm;
  record.duration_us = duration_us;
  record.skyline_size = result->skyline.size();
  record.aux_peak_bytes = result->stats.aux_peak_bytes;
  record.status = status.code();
  record.degraded_from = degraded_from;
  record.seq = recorder_.Record(record);

  if (trace_armed) {
    util::trace::SetEnabled(false);
    if (duration_us >= slow_query_threshold_us_) {
      recorder_.RecordSlow(record, slow_query_threshold_us_,
                           util::trace::FinishedRoots());
    }
    util::trace::Reset();
    g_slow_trace_busy.store(false);
  }

  if (util::metrics::Enabled()) {
    util::metrics::GetCounter("nsky.engine.queries").Add(1);
  }

  // Output trimming happens after recording so the flight recorder still
  // sees the true skyline size and aux peak of the run.
  if (!request.include_dominators) {
    result->dominator.clear();
  }
  response->status = status;
  response->warm = warm;
  return response->status;
}

void Engine::RecordRejection(const SolverOptions& options,
                             const util::Status& status) {
  shed_queries_.fetch_add(1, std::memory_order_relaxed);
  QueryRecord record;
  record.algorithm = options.algorithm;
  record.threads = internal::ResolveThreads(options.threads);
  record.warm = false;
  record.duration_us = 0;
  record.skyline_size = 0;
  record.aux_peak_bytes = 0;
  record.status = status.code();
  record.degraded_from = -1;
  record.seq = recorder_.Record(record);
}

std::vector<SkylineResult> Engine::QueryBatch(
    const std::vector<SolverOptions>& batch) {
  std::vector<SkylineResult> results;
  results.reserve(batch.size());
  for (const SolverOptions& options : batch) {
    results.push_back(Query(options));
  }
  return results;
}

const std::vector<VertexId>& Engine::SkylineCache() {
  if (!has_skyline_cache_) {
    skyline_cache_ = Query(options_.defaults).skyline;
    has_skyline_cache_ = true;
  }
  return skyline_cache_;
}

const PreparedGraph::FilterArtifacts& Engine::Filter() {
  Resources& res =
      ResourcesFor(internal::ResolveThreads(options_.defaults.threads));
  return prepared_.Filter(res.pool);
}

void Engine::InvalidateArtifacts() {
  prepared_.Invalidate();
  skyline_cache_.clear();
  has_skyline_cache_ = false;
  dynamic_.reset();
}

void Engine::RefreshFrom(Graph g) {
  // A wholesale replacement: the new epoch-0 Graph is a fresh object, so
  // the prepared view must be repointed before anything rebuilds.
  versioned_.Reset(std::move(g));
  prepared_.Rebind(&versioned_.Current());
  InvalidateArtifacts();
  if (snapshot_info_.has_value()) {
    recorder_.set_origin("snapshot:" + snapshot_info_->id);
  }
}

Engine::MutationResult Engine::ApplyUpdates(
    std::span<const graph::EdgeUpdate> updates) {
  NSKY_TRACE_SPAN("engine.apply_updates");
  MutationResult out;
  ++mutation_batches_;
  for (const graph::EdgeUpdate& e : updates) {
    if (versioned_.Stage(e)) {
      ++out.applied;
    } else {
      ++out.skipped;
    }
  }
  updates_applied_ += out.applied;
  updates_skipped_ += out.skipped;
  if (versioned_.staged_edits() == 0) {
    // The batch cancelled itself out (or was all no-ops): no commit, no
    // epoch transition, nothing stale.
    versioned_.DiscardStaged();
    out.epoch = versioned_.epoch();
    out.repaired = true;
    return out;
  }

  std::shared_ptr<const Graph> old_snap = versioned_.Snapshot();
  const std::vector<graph::EdgeUpdate> net = versioned_.StagedUpdates();
  std::shared_ptr<const Graph> new_snap = versioned_.Commit();
  out.epoch = versioned_.epoch();

  // Maintain the cached default-options skyline incrementally instead of
  // dropping it; DynamicSkyline's cost model decides incremental vs bulk.
  if (has_skyline_cache_) {
    if (dynamic_ == nullptr) {
      dynamic_ = std::make_unique<DynamicSkyline>(*old_snap, skyline_cache_);
    }
    const uint64_t bulk_before = dynamic_->bulk_rebuilds();
    dynamic_->ApplyBatch(net);
    out.bulk_solve = dynamic_->bulk_rebuilds() != bulk_before;
    skyline_cache_ = dynamic_->Skyline();
  }

  const PreparedGraph::RepairOutcome repair =
      prepared_.RepairForUpdates(*old_snap, *new_snap, net);
  out.dirty_vertices = repair.dirty_vertices;
  out.repaired = repair.repaired;
  if (repair.repaired) {
    artifact_repairs_ += repair.patched_artifacts;
  } else {
    ++repair_fallbacks_;
  }
  dirty_last_ = repair.dirty_vertices;
  dirty_total_ += repair.dirty_vertices;

  // Served results now come from a mutated graph; stamp the provenance.
  if (snapshot_info_.has_value()) {
    recorder_.set_origin("snapshot:" + EffectiveSnapshotInfo()->id);
  }
  if (util::metrics::Enabled()) {
    util::metrics::GetCounter("nsky.engine.mutation_batches").Add(1);
  }
  return out;
}

uint64_t Engine::WorkspaceAllocationEvents(uint32_t threads) {
  return ResourcesFor(internal::ResolveThreads(threads))
      .workspace.allocation_events();
}

uint64_t Engine::WorkspaceAllocatedBytes(uint32_t threads) {
  return ResourcesFor(internal::ResolveThreads(threads))
      .workspace.allocated_bytes();
}

void Engine::PoisonScratchForTesting() {
  for (auto& [threads, res] : resources_) {
    res->workspace.PoisonForTesting();
  }
}

EngineStats Engine::StatsSnapshot() const {
  EngineStats s;
  s.queries_served = queries_served_;
  s.warm_queries = warm_queries_;
  s.cold_queries = cold_queries_;
  s.timeout_queries = timeout_queries_;
  s.cancelled_queries = cancelled_queries_;
  s.shed_queries = shed_queries_.load(std::memory_order_relaxed);
  s.artifact_builds = prepared_.builds();
  s.snapshot = EffectiveSnapshotInfo();
  s.epoch = versioned_.epoch();
  if (mutation_batches_ > 0) {
    EngineStats::MutationStats ms;
    ms.epoch = versioned_.epoch();
    ms.batches = mutation_batches_;
    ms.updates_applied = updates_applied_;
    ms.updates_skipped = updates_skipped_;
    ms.artifact_repairs = artifact_repairs_;
    ms.repair_fallbacks = repair_fallbacks_;
    ms.dirty_last = dirty_last_;
    ms.dirty_total = dirty_total_;
    s.mutation = ms;
  }
  s.cache = prepared_.CacheStatsSnapshot();
  for (const auto& [threads, res] : resources_) {
    EngineStats::WorkspaceStats ws;
    ws.threads = static_cast<uint32_t>(threads);
    ws.allocation_events = res->workspace.allocation_events();
    ws.allocated_bytes = res->workspace.allocated_bytes();
    s.workspaces.push_back(ws);
  }
  for (int i = 0; i < kNumAlgorithms; ++i) {
    if (latency_us_[i].Count() == 0) continue;
    EngineStats::AlgorithmLatency al;
    al.algorithm = AlgorithmName(static_cast<Algorithm>(i));
    al.latency_us = latency_us_[i].Sample();
    s.latency.push_back(std::move(al));
  }
  return s;
}

std::string Engine::StatsJson() const {
  return EngineStatsToJson(StatsSnapshot());
}

std::string Engine::RecentQueriesJson(size_t max) const {
  return recorder_.ToJson(max);
}

}  // namespace nsky::core
