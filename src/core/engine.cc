#include "core/engine.h"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "core/solver_internal.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace {

// Slow-query capture borrows the process-wide tracer; at most one engine at
// a time may arm it, and never while the caller already has tracing on.
std::atomic<bool> g_slow_trace_busy{false};

uint64_t SlowQueryThresholdFromEnv() {
  const char* env = std::getenv("NSKY_SLOW_QUERY_US");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') return 0;
  return static_cast<uint64_t>(v);
}

}  // namespace

Engine::Engine(Graph g, EngineOptions options)
    : graph_(std::move(g)),
      options_(options),
      prepared_(&graph_),
      slow_query_threshold_us_(SlowQueryThresholdFromEnv()) {}

Engine::Resources& Engine::ResourcesFor(unsigned resolved_threads) {
  auto it = resources_.find(resolved_threads);
  if (it == resources_.end()) {
    it = resources_
             .emplace(resolved_threads,
                      std::make_unique<Resources>(resolved_threads))
             .first;
  }
  return *it->second;
}

util::Status Engine::Execute(const QueryRequest& request,
                             QueryResponse* response) {
  const SolverOptions& options = request.options;
  SkylineResult* result = &response->result;
  const unsigned resolved = internal::ResolveThreads(options.threads);
  Resources& res = ResourcesFor(resolved);
  internal::SolveEnv env{&request.context, &res.pool, &res.workspace,
                         &prepared_};

  // Arm the slow-query trace only when nobody else is tracing: the caller's
  // own trace (CLI --trace) must never be clobbered, and a second engine in
  // the process must not interleave spans into ours.
  bool trace_armed = false;
  if (slow_query_threshold_us_ > 0 && !util::trace::Enabled()) {
    bool expected = false;
    if (g_slow_trace_busy.compare_exchange_strong(expected, true)) {
      util::trace::Reset();
      util::trace::SetEnabled(true);
      trace_armed = true;
    }
  }

  const uint64_t builds_before = prepared_.builds();
  util::Timer query_timer;
  util::Status status = internal::DispatchSolve(graph_, options, env, result);
  const uint64_t duration_us = static_cast<uint64_t>(query_timer.Micros());
  const bool warm = prepared_.builds() == builds_before;

  ++queries_served_;
  if (warm) {
    ++warm_queries_;
  } else {
    ++cold_queries_;
  }
  if (status.code() == util::StatusCode::kDeadlineExceeded) {
    ++timeout_queries_;
  } else if (status.code() == util::StatusCode::kCancelled) {
    ++cancelled_queries_;
  }

  // Attribute latency to the algorithm that actually ran: a byte-budget
  // degradation lands on filter-refine, with the requested algorithm kept
  // as degraded_from.
  Algorithm ran = options.algorithm;
  int8_t degraded_from = -1;
  if (!result->stats.degraded_from.empty()) {
    if (std::optional<Algorithm> from =
            ParseAlgorithm(result->stats.degraded_from)) {
      degraded_from = static_cast<int8_t>(*from);
    }
    ran = Algorithm::kFilterRefine;
  }
  latency_us_[static_cast<int>(ran)].Observe(duration_us);

  QueryRecord record;
  record.algorithm = ran;
  record.threads = resolved;
  record.warm = warm;
  record.duration_us = duration_us;
  record.skyline_size = result->skyline.size();
  record.aux_peak_bytes = result->stats.aux_peak_bytes;
  record.status = status.code();
  record.degraded_from = degraded_from;
  record.seq = recorder_.Record(record);

  if (trace_armed) {
    util::trace::SetEnabled(false);
    if (duration_us >= slow_query_threshold_us_) {
      recorder_.RecordSlow(record, slow_query_threshold_us_,
                           util::trace::FinishedRoots());
    }
    util::trace::Reset();
    g_slow_trace_busy.store(false);
  }

  if (util::metrics::Enabled()) {
    util::metrics::GetCounter("nsky.engine.queries").Add(1);
  }

  // Output trimming happens after recording so the flight recorder still
  // sees the true skyline size and aux peak of the run.
  if (!request.include_dominators) {
    result->dominator.clear();
  }
  response->status = status;
  response->warm = warm;
  return response->status;
}

void Engine::RecordRejection(const SolverOptions& options,
                             const util::Status& status) {
  shed_queries_.fetch_add(1, std::memory_order_relaxed);
  QueryRecord record;
  record.algorithm = options.algorithm;
  record.threads = internal::ResolveThreads(options.threads);
  record.warm = false;
  record.duration_us = 0;
  record.skyline_size = 0;
  record.aux_peak_bytes = 0;
  record.status = status.code();
  record.degraded_from = -1;
  record.seq = recorder_.Record(record);
}

std::vector<SkylineResult> Engine::QueryBatch(
    const std::vector<SolverOptions>& batch) {
  std::vector<SkylineResult> results;
  results.reserve(batch.size());
  for (const SolverOptions& options : batch) {
    results.push_back(Query(options));
  }
  return results;
}

const std::vector<VertexId>& Engine::SkylineCache() {
  if (!has_skyline_cache_) {
    skyline_cache_ = Query(options_.defaults).skyline;
    has_skyline_cache_ = true;
  }
  return skyline_cache_;
}

const PreparedGraph::FilterArtifacts& Engine::Filter() {
  Resources& res =
      ResourcesFor(internal::ResolveThreads(options_.defaults.threads));
  return prepared_.Filter(res.pool);
}

void Engine::InvalidateArtifacts() {
  prepared_.Invalidate();
  skyline_cache_.clear();
  has_skyline_cache_ = false;
}

void Engine::RefreshFrom(Graph g) {
  // graph_ is a member, so its address -- the pointer prepared_ holds --
  // stays valid across the move-assign; only the contents change.
  graph_ = std::move(g);
  InvalidateArtifacts();
}

uint64_t Engine::WorkspaceAllocationEvents(uint32_t threads) {
  return ResourcesFor(internal::ResolveThreads(threads))
      .workspace.allocation_events();
}

uint64_t Engine::WorkspaceAllocatedBytes(uint32_t threads) {
  return ResourcesFor(internal::ResolveThreads(threads))
      .workspace.allocated_bytes();
}

void Engine::PoisonScratchForTesting() {
  for (auto& [threads, res] : resources_) {
    res->workspace.PoisonForTesting();
  }
}

EngineStats Engine::StatsSnapshot() const {
  EngineStats s;
  s.queries_served = queries_served_;
  s.warm_queries = warm_queries_;
  s.cold_queries = cold_queries_;
  s.timeout_queries = timeout_queries_;
  s.cancelled_queries = cancelled_queries_;
  s.shed_queries = shed_queries_.load(std::memory_order_relaxed);
  s.artifact_builds = prepared_.builds();
  s.snapshot = snapshot_info_;
  s.cache = prepared_.CacheStatsSnapshot();
  for (const auto& [threads, res] : resources_) {
    EngineStats::WorkspaceStats ws;
    ws.threads = static_cast<uint32_t>(threads);
    ws.allocation_events = res->workspace.allocation_events();
    ws.allocated_bytes = res->workspace.allocated_bytes();
    s.workspaces.push_back(ws);
  }
  for (int i = 0; i < kNumAlgorithms; ++i) {
    if (latency_us_[i].Count() == 0) continue;
    EngineStats::AlgorithmLatency al;
    al.algorithm = AlgorithmName(static_cast<Algorithm>(i));
    al.latency_us = latency_us_[i].Sample();
    s.latency.push_back(std::move(al));
  }
  return s;
}

std::string Engine::StatsJson() const {
  return EngineStatsToJson(StatsSnapshot());
}

std::string Engine::RecentQueriesJson(size_t max) const {
  return recorder_.ToJson(max);
}

}  // namespace nsky::core
