// Private plumbing of the unified solver engine (core/solver.h).
//
// Each solver translation unit implements one Run* function taking the
// shared SolverOptions plus the run's thread pool; Solve() owns the pool
// and dispatches. Not part of the public API (not in core/nsky.h) -- the
// deprecated per-solver free functions and Solve() are the supported
// surface.
//
// Determinism contract every Run* implementation follows:
//  * ParallelFor partitions a vertex/candidate index range; a worker writes
//    only dominator slots of vertices in its own chunk.
//  * Every per-vertex decision is a pure function of the graph and of
//    immutable pre-phase snapshots (candidate membership, bloom filters) --
//    never of dominator slots another worker may be writing.
//  * Counters accumulate into per-worker SkylineStats and are merged with
//    AddCounters in worker order; sums are independent of the partition.
//  * Per-worker scratch is charged to the MemoryTally once (canonical
//    threads=1 footprint), keeping aux_peak_bytes thread-count-invariant.
#ifndef NSKY_CORE_SOLVER_INTERNAL_H_
#define NSKY_CORE_SOLVER_INTERNAL_H_

#include "core/skyline.h"
#include "core/solver.h"
#include "util/thread_pool.h"

namespace nsky::core::internal {

// Adds the five deterministic counters of `from` into `*into`.
inline void AddCounters(SkylineStats* into, const SkylineStats& from) {
  into->pairs_examined += from.pairs_examined;
  into->bloom_prunes += from.bloom_prunes;
  into->degree_prunes += from.degree_prunes;
  into->inclusion_tests += from.inclusion_tests;
  into->nbr_elements_scanned += from.nbr_elements_scanned;
}

// Merges per-worker stats in worker order into `*into`.
inline void MergeWorkerStats(SkylineStats* into,
                             const std::vector<SkylineStats>& per_worker) {
  for (const SkylineStats& s : per_worker) AddCounters(into, s);
}

// Resolved worker count for options.threads (0 = hardware concurrency).
unsigned ResolveThreads(uint32_t threads);

// Algorithm bodies. Each fills stats.seconds and mirrors telemetry itself;
// stats.threads is stamped by the caller (Solve or a wrapper).
SkylineResult RunFilterPhase(const Graph& g, const SolverOptions& options,
                             util::ThreadPool& pool);
SkylineResult RunFilterRefine(const Graph& g, const SolverOptions& options,
                              util::ThreadPool& pool);
SkylineResult RunBaseSky(const Graph& g, const SolverOptions& options,
                         util::ThreadPool& pool);
SkylineResult RunBaseCSet(const Graph& g, const SolverOptions& options,
                          util::ThreadPool& pool);
SkylineResult RunBase2Hop(const Graph& g, const SolverOptions& options,
                          util::ThreadPool& pool);

}  // namespace nsky::core::internal

#endif  // NSKY_CORE_SOLVER_INTERNAL_H_
