// Private plumbing of the unified solver engine (core/solver.h).
//
// Each solver translation unit implements one Run* function taking the
// shared SolverOptions plus the run's thread pool; Solve() owns the pool
// and dispatches. Not part of the public API (not in core/nsky.h) -- the
// deprecated per-solver free functions and Solve() are the supported
// surface.
//
// Determinism contract every Run* implementation follows:
//  * ParallelFor partitions a vertex/candidate index range; a worker writes
//    only dominator slots of vertices in its own chunk.
//  * Every per-vertex decision is a pure function of the graph and of
//    immutable pre-phase snapshots (candidate membership, bloom filters) --
//    never of dominator slots another worker may be writing.
//  * Counters accumulate into per-worker SkylineStats and are merged with
//    AddCounters in worker order; sums are independent of the partition.
//  * Per-worker scratch is charged to the MemoryTally once (canonical
//    threads=1 footprint), keeping aux_peak_bytes thread-count-invariant.
#ifndef NSKY_CORE_SOLVER_INTERNAL_H_
#define NSKY_CORE_SOLVER_INTERNAL_H_

#include "core/skyline.h"
#include "core/solver.h"
#include "util/execution_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace nsky::core::internal {

// Adds the five deterministic counters of `from` into `*into`.
inline void AddCounters(SkylineStats* into, const SkylineStats& from) {
  into->pairs_examined += from.pairs_examined;
  into->bloom_prunes += from.bloom_prunes;
  into->degree_prunes += from.degree_prunes;
  into->inclusion_tests += from.inclusion_tests;
  into->nbr_elements_scanned += from.nbr_elements_scanned;
}

// Merges per-worker stats in worker order into `*into`.
inline void MergeWorkerStats(SkylineStats* into,
                             const std::vector<SkylineStats>& per_worker) {
  for (const SkylineStats& s : per_worker) AddCounters(into, s);
}

// Resolved worker count for options.threads (0 = hardware concurrency).
unsigned ResolveThreads(uint32_t threads);

// Algorithm bodies. Each fills *result, sets stats.seconds and mirrors
// telemetry itself; stats.threads is stamped by the caller (SolveInto or a
// wrapper). On a non-OK return *result holds a partial run: skyline may be
// empty or incomplete and dominator partially written -- SolveInto
// normalizes that to the documented empty-outputs shape -- but the stats
// counters always reflect the work actually done and stats.seconds the time
// actually spent. The context is consulted at every phase boundary and, via
// the context-aware ParallelFor, between slices inside every parallel scan.
util::Status RunFilterPhase(const Graph& g, const SolverOptions& options,
                            const util::ExecutionContext& ctx,
                            util::ThreadPool& pool, SkylineResult* result);
util::Status RunFilterRefine(const Graph& g, const SolverOptions& options,
                             const util::ExecutionContext& ctx,
                             util::ThreadPool& pool, SkylineResult* result);
util::Status RunBaseSky(const Graph& g, const SolverOptions& options,
                        const util::ExecutionContext& ctx,
                        util::ThreadPool& pool, SkylineResult* result);
util::Status RunBaseCSet(const Graph& g, const SolverOptions& options,
                         const util::ExecutionContext& ctx,
                         util::ThreadPool& pool, SkylineResult* result);
util::Status RunBase2Hop(const Graph& g, const SolverOptions& options,
                         const util::ExecutionContext& ctx,
                         util::ThreadPool& pool, SkylineResult* result);

// Deterministic upper bound on RunBase2Hop's auxiliary bytes: the
// pre-dedup 2-hop buffer volume (an O(m) degree scan, no allocation) plus
// the bloom block and the dominator array. SolveInto compares it against
// the context's byte budget to decide -- identically at every thread count
// -- whether to degrade a kBase2Hop request to kFilterRefine.
uint64_t EstimateBase2HopBytes(const Graph& g, const SolverOptions& options);

}  // namespace nsky::core::internal

#endif  // NSKY_CORE_SOLVER_INTERNAL_H_
