// Private plumbing of the unified solver engine (core/solver.h).
//
// Each solver translation unit implements one Run* function taking the
// shared SolverOptions plus a SolveEnv bundling the run's execution context,
// thread pool, scratch workspace and (optionally) a PreparedGraph artifact
// cache. Solve() owns a per-call pool + workspace; core::Engine owns pooled
// ones and adds the PreparedGraph. Not part of the public API (not in
// core/nsky.h) -- Solve() and Engine are the supported surface.
//
// Determinism contract every Run* implementation follows:
//  * ParallelFor partitions a vertex/candidate index range; a worker writes
//    only dominator slots of vertices in its own chunk.
//  * Every per-vertex decision is a pure function of the graph and of
//    immutable pre-phase snapshots (candidate membership, bloom filters) --
//    never of dominator slots another worker may be writing.
//  * Counters accumulate into per-worker SkylineStats and are merged with
//    AddCounters in worker order; sums are independent of the partition.
//  * Per-worker scratch is charged to the MemoryTally once (canonical
//    threads=1 footprint), keeping aux_peak_bytes thread-count-invariant.
//  * Ledger charges use logical sizes (element counts), never reused
//    capacities, so a warm workspace run reports bit-identical
//    aux_peak_bytes to a cold run.
//  * Scratch borrowed from the workspace is initialized through the
//    Prepare*() methods before any read -- a previous query (possibly
//    cancelled mid-scan) leaves arbitrary contents behind.
#ifndef NSKY_CORE_SOLVER_INTERNAL_H_
#define NSKY_CORE_SOLVER_INTERNAL_H_

#include <vector>

#include "core/prepared_graph.h"
#include "core/skyline.h"
#include "core/solver.h"
#include "core/workspace.h"
#include "util/execution_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace nsky::core::internal {

// Everything a solver run borrows from its caller. Solve() stacks a fresh
// pool + workspace per call (prepared == nullptr: every artifact is built
// in-run, the historical cold path); Engine::Query() lends its pooled
// resources and the shared artifact cache. All pointers are non-owning and
// must outlive the run; prepared is mutable because artifact builds are
// lazy.
struct SolveEnv {
  const util::ExecutionContext* ctx;
  util::ThreadPool* pool;
  SolverWorkspace* workspace;
  PreparedGraph* prepared = nullptr;
};

// Clears a result's outputs while keeping their capacity, so a reused
// result (Engine::QueryInto) reaches steady-state allocation-free.
inline void ResetResult(SkylineResult* result) {
  result->skyline.clear();
  result->dominator.clear();
  result->stats = SkylineStats{};
}

// Adds the five deterministic counters of `from` into `*into`.
inline void AddCounters(SkylineStats* into, const SkylineStats& from) {
  into->pairs_examined += from.pairs_examined;
  into->bloom_prunes += from.bloom_prunes;
  into->degree_prunes += from.degree_prunes;
  into->inclusion_tests += from.inclusion_tests;
  into->nbr_elements_scanned += from.nbr_elements_scanned;
}

// Merges per-worker stats in worker order into `*into`.
inline void MergeWorkerStats(SkylineStats* into,
                             const std::vector<SkylineStats>& per_worker) {
  for (const SkylineStats& s : per_worker) AddCounters(into, s);
}

// Resolved worker count for options.threads (0 = hardware concurrency).
unsigned ResolveThreads(uint32_t threads);

// Filter-phase front half shared by RunFilterRefine and RunBaseCSet. Leaves
// *result holding the filter phase's outputs -- dominator array, the five
// counters, candidate_count, and aux_peak_bytes set to the filter-phase
// ledger peak -- with result->skyline empty, and points *candidates at the
// sorted candidate set. Cold (env.prepared == nullptr) it runs the phase
// and parks the candidates in *storage; warm it copies the PreparedGraph's
// cached artifacts (candidates then point into the cache and *storage is
// untouched). Both paths are bit-identical in every deterministic field.
util::Status PrepareFilterOutput(const Graph& g, const SolverOptions& options,
                                 SolveEnv& env, SkylineResult* result,
                                 std::vector<VertexId>* storage,
                                 const std::vector<VertexId>** candidates);

// Algorithm bodies. Each fills *result, sets stats.seconds and mirrors
// telemetry itself; stats.threads is stamped by DispatchSolve. On a non-OK
// return *result holds a partial run: skyline may be empty or incomplete
// and dominator partially written -- DispatchSolve normalizes that to the
// documented empty-outputs shape -- but the stats counters always reflect
// the work actually done and stats.seconds the time actually spent. The
// context is consulted at every phase boundary and, via the context-aware
// ParallelFor, between slices inside every parallel scan.
util::Status RunFilterPhase(const Graph& g, const SolverOptions& options,
                            SolveEnv& env, SkylineResult* result);
util::Status RunFilterRefine(const Graph& g, const SolverOptions& options,
                             SolveEnv& env, SkylineResult* result);
util::Status RunBaseSky(const Graph& g, const SolverOptions& options,
                        SolveEnv& env, SkylineResult* result);
util::Status RunBaseCSet(const Graph& g, const SolverOptions& options,
                         SolveEnv& env, SkylineResult* result);
util::Status RunBase2Hop(const Graph& g, const SolverOptions& options,
                         SolveEnv& env, SkylineResult* result);

// The shared dispatch body behind SolveInto and Engine::QueryInto: resets
// the result, applies predictive 2hop degradation against the context's
// byte budget, routes to the Run* implementation, stamps stats.threads /
// stats.degraded_from, and normalizes failures to empty outputs.
util::Status DispatchSolve(const Graph& g, const SolverOptions& options,
                           SolveEnv& env, SkylineResult* result);

// Deterministic upper bound on RunBase2Hop's auxiliary bytes: the
// pre-dedup 2-hop buffer volume (an O(m) degree scan, no allocation) plus
// the bloom block and the dominator array. DispatchSolve compares it
// against the context's byte budget to decide -- identically at every
// thread count -- whether to degrade a kBase2Hop request to kFilterRefine.
uint64_t EstimateBase2HopBytes(const Graph& g, const SolverOptions& options);

}  // namespace nsky::core::internal

#endif  // NSKY_CORE_SOLVER_INTERNAL_H_
