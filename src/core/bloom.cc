#include "core/bloom.h"

#include <algorithm>
#include <bit>

#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nsky::core {

uint32_t NeighborhoodBlooms::ChooseBits(uint32_t max_degree,
                                        uint32_t bits_per_neighbor) {
  uint64_t want = static_cast<uint64_t>(max_degree) * bits_per_neighbor;
  uint64_t bits = 64;
  while (bits < want && bits < (1u << 20)) bits <<= 1;
  return static_cast<uint32_t>(bits);
}

uint32_t NeighborhoodBlooms::ChooseBitsAdaptive(const Graph& g,
                                                uint32_t bits_per_neighbor) {
  const double avg =
      g.NumVertices() == 0
          ? 0.0
          : 2.0 * static_cast<double>(g.NumEdges()) / g.NumVertices();
  uint64_t want = static_cast<uint64_t>(4.0 * bits_per_neighbor * avg) + 1;
  uint64_t bits = 64;
  while (bits < want && bits < (1u << 16)) bits <<= 1;
  return static_cast<uint32_t>(bits);
}

NeighborhoodBlooms::NeighborhoodBlooms(const Graph& g,
                                       const std::vector<uint8_t>& member,
                                       uint32_t bits,
                                       util::ThreadPool* pool) {
  NSKY_CHECK(bits >= 64 && std::has_single_bit(bits));
  NSKY_CHECK(member.size() == g.NumVertices());
  bits_ = bits;
  words_per_filter_ = bits / 64;

  const VertexId n = g.NumVertices();
  slot_.assign(n, kNoSlot);
  uint32_t num_filters = 0;
  for (VertexId u = 0; u < n; ++u) {
    if (member[u]) slot_[u] = num_filters++;
  }
  words_.assign(static_cast<size_t>(num_filters) * words_per_filter_, 0);

  // Row u is written only by the worker owning u, so the parallel build
  // produces the exact words of the sequential one.
  auto build_range = [&](unsigned, uint64_t begin, uint64_t end) {
    for (VertexId u = static_cast<VertexId>(begin); u < end; ++u) {
      if (slot_[u] == kNoSlot) continue;
      uint64_t* filter =
          words_.data() + static_cast<size_t>(slot_[u]) * words_per_filter_;
      for (VertexId x : g.Neighbors(u)) {
        uint64_t h = HashBit(x);
        filter[(h >> 6) & (words_per_filter_ - 1)] |= uint64_t{1} << (h & 63);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, build_range);
  } else {
    build_range(0, 0, n);
  }
}

util::Result<std::unique_ptr<NeighborhoodBlooms>> NeighborhoodBlooms::FromParts(
    uint32_t bits, std::vector<uint32_t> slots, std::vector<uint64_t> words) {
  if (bits < 64 || !std::has_single_bit(bits)) {
    return util::Status::InvalidArgument(
        "bloom width " + std::to_string(bits) +
        " is not a power of two >= 64");
  }
  const uint32_t words_per_filter = bits / 64;
  uint64_t num_filters = 0;
  for (uint32_t s : slots) {
    if (s != kNoSlot) ++num_filters;
  }
  if (words.size() != num_filters * words_per_filter) {
    return util::Status::InvalidArgument(
        "bloom block holds " + std::to_string(words.size()) +
        " words, expected " + std::to_string(num_filters * words_per_filter));
  }
  // Occupied slots must be a permutation of {0 .. k-1}: every filter row is
  // referenced by exactly one vertex and lies inside the block.
  std::vector<uint8_t> seen(num_filters, 0);
  for (uint32_t s : slots) {
    if (s == kNoSlot) continue;
    if (s >= num_filters || seen[s]) {
      return util::Status::InvalidArgument(
          "bloom slot table is not a dense permutation");
    }
    seen[s] = 1;
  }
  auto out = std::unique_ptr<NeighborhoodBlooms>(new NeighborhoodBlooms());
  out->bits_ = bits;
  out->words_per_filter_ = words_per_filter;
  out->slot_ = std::move(slots);
  out->words_ = std::move(words);
  return out;
}

void NeighborhoodBlooms::RehashRows(const Graph& g,
                                    std::span<const VertexId> vertices) {
  NSKY_CHECK(slot_.size() == g.NumVertices());
  for (VertexId u : vertices) {
    if (slot_[u] == kNoSlot) continue;
    uint64_t* filter =
        words_.data() + static_cast<size_t>(slot_[u]) * words_per_filter_;
    std::fill(filter, filter + words_per_filter_, 0);
    for (VertexId x : g.Neighbors(u)) {
      uint64_t h = HashBit(x);
      filter[(h >> 6) & (words_per_filter_ - 1)] |= uint64_t{1} << (h & 63);
    }
  }
}

std::unique_ptr<NeighborhoodBlooms> NeighborhoodBlooms::RepairedCopy(
    const Graph& g, const std::vector<uint8_t>& member,
    const NeighborhoodBlooms& old, const std::vector<uint8_t>& row_dirty) {
  NSKY_CHECK(member.size() == g.NumVertices());
  NSKY_CHECK(old.slot_.size() == g.NumVertices());
  NSKY_CHECK(row_dirty.size() == g.NumVertices());
  auto out = std::unique_ptr<NeighborhoodBlooms>(new NeighborhoodBlooms());
  out->bits_ = old.bits_;
  out->words_per_filter_ = old.words_per_filter_;
  const VertexId n = g.NumVertices();
  out->slot_.assign(n, kNoSlot);
  uint32_t num_filters = 0;
  for (VertexId u = 0; u < n; ++u) {
    if (member[u]) out->slot_[u] = num_filters++;
  }
  out->words_.assign(
      static_cast<size_t>(num_filters) * out->words_per_filter_, 0);
  for (VertexId u = 0; u < n; ++u) {
    if (out->slot_[u] == kNoSlot) continue;
    uint64_t* filter = out->words_.data() +
                       static_cast<size_t>(out->slot_[u]) *
                           out->words_per_filter_;
    if (old.Has(u) && !row_dirty[u]) {
      // Clean surviving row: the words are a pure function of N(u), which
      // did not change, so the old block's row is exactly right.
      std::copy(old.FilterOf(u), old.FilterOf(u) + old.words_per_filter_,
                filter);
      continue;
    }
    for (VertexId x : g.Neighbors(u)) {
      uint64_t h = out->HashBit(x);
      filter[(h >> 6) & (out->words_per_filter_ - 1)] |=
          uint64_t{1} << (h & 63);
    }
  }
  return out;
}

uint64_t NeighborhoodBlooms::HashBit(VertexId x) const {
  return util::Mix64(x) & (bits_ - 1);
}

bool NeighborhoodBlooms::SubsetTest(VertexId u, VertexId w) const {
  NSKY_DCHECK(Has(u) && Has(w));
  const uint64_t* fu = FilterOf(u);
  const uint64_t* fw = FilterOf(w);
  for (uint32_t i = 0; i < words_per_filter_; ++i) {
    if ((fu[i] & fw[i]) != fu[i]) return false;
  }
  return true;
}

bool NeighborhoodBlooms::SubsetTestClosed(VertexId u, VertexId w) const {
  NSKY_DCHECK(Has(u) && Has(w));
  const uint64_t* fu = FilterOf(u);
  const uint64_t* fw = FilterOf(w);
  const uint64_t hw = HashBit(w);
  const uint32_t self_word = static_cast<uint32_t>(hw >> 6);
  const uint64_t self_bit = uint64_t{1} << (hw & 63);
  for (uint32_t i = 0; i < words_per_filter_; ++i) {
    uint64_t mask = fw[i] | (i == self_word ? self_bit : 0);
    if ((fu[i] & mask) != fu[i]) return false;
  }
  return true;
}

bool NeighborhoodBlooms::TestBit(VertexId w, VertexId x) const {
  NSKY_DCHECK(Has(w));
  uint64_t h = HashBit(x);
  return (FilterOf(w)[(h >> 6) & (words_per_filter_ - 1)] >> (h & 63)) & 1;
}

uint64_t NeighborhoodBlooms::MemoryBytes() const {
  return words_.capacity() * sizeof(uint64_t) +
         slot_.capacity() * sizeof(uint32_t);
}

}  // namespace nsky::core
