// Pairwise domination predicates (Definitions 1-5 of the paper) and
// brute-force oracles used to validate the optimized solvers.
//
// Conventions:
//  * N(u) is the open neighborhood, N[u] = N(u) + {u} the closed one.
//  * "v is neighborhood-included by u"        <=>  N(v) subset-of N[u].
//  * Domination order v <= u (u dominates v)  <=>  N(v) subset-of N[u] and
//    (not mutual, or mutual and u has the smaller id).
//  * Edge-constrained variants use closed neighborhoods: N[v] subset-of N[u]
//    (which forces the edge (u, v) to exist).
//
// Isolated vertices: by a literal reading of Definition 2 an isolated vertex
// is dominated by everything, but the paper states (and its algorithms
// assume) that domination only exists between 2-hop reachable vertices. We
// follow the algorithmic semantics everywhere: a vertex with no 2-hop
// reachable dominator is a skyline member, so isolated vertices are skyline
// members. For vertices of degree >= 1 the two readings coincide.
#ifndef NSKY_CORE_DOMINATION_H_
#define NSKY_CORE_DOMINATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/skyline.h"
#include "graph/graph.h"

namespace nsky::core {

// N(v) subset-of N[u] (Definition 1). Requires u != v.
bool NeighborhoodIncluded(const Graph& g, VertexId v, VertexId u);

// N[v] subset-of N[u] (Definition 4; implies the edge (u, v) exists).
// Requires u != v.
bool ClosedNeighborhoodIncluded(const Graph& g, VertexId v, VertexId u);

// v <= u, i.e., u dominates v (Definition 2). Requires u != v.
bool Dominates(const Graph& g, VertexId u, VertexId v);

// Edge-constrained domination (Definition 5). Requires u != v.
bool EdgeConstrainedDominates(const Graph& g, VertexId u, VertexId v);

// Enumerates the distinct 2-hop reachable vertices of u (vertices w != u
// with a common neighbor or an edge to u). Sorted ascending.
std::vector<VertexId> TwoHopNeighbors(const Graph& g, VertexId u);

// Reference skyline: for every u, scans all 2-hop reachable w and applies
// Dominates(w, u). Quadratic-ish; only for tests and tiny graphs.
SkylineResult BruteForceSkyline(const Graph& g);

// Reference candidate set C under edge-constrained domination.
SkylineResult BruteForceCandidates(const Graph& g);

// All ordered domination pairs (u, v) with v <= u, u the dominator.
// For tests on small graphs.
std::vector<std::pair<VertexId, VertexId>> AllDominationPairs(const Graph& g);

}  // namespace nsky::core

#endif  // NSKY_CORE_DOMINATION_H_
