// The unified request/response surface of the serving engine.
//
// Historically Engine grew four entry points (Query, QueryOrError,
// QueryInto, QueryBatch) that each combined options, limits and output
// handling differently. QueryRequest folds every per-query input into one
// value -- solver options, execution limits, output mode -- and
// QueryResponse folds every output into another -- result, status, warmth.
// Engine::Execute(request, &response) is the single implementation; the
// historical four remain as thin inline wrappers over it (core/engine.h),
// and the network front end (src/server/) speaks this surface natively: one
// HTTP request maps to one QueryRequest, one response to one QueryResponse.
//
// Both structs are plain values: a request can be built once and replayed,
// a response can be reused across queries (Execute recycles its buffers, so
// a warm serving loop stays allocation-free exactly like the historical
// QueryInto-with-reused-result idiom).
#ifndef NSKY_CORE_QUERY_H_
#define NSKY_CORE_QUERY_H_

#include <string>

#include "core/skyline.h"
#include "core/solver.h"
#include "util/execution_context.h"
#include "util/status.h"

namespace nsky::core {

// Everything a caller can say about one skyline query.
struct QueryRequest {
  // Algorithm, thread count, bloom sizing (core/solver.h).
  SolverOptions options;

  // Cooperative limits: deadline, cancellation, byte budget. The
  // default-constructed context is unlimited, which keeps request-building
  // terse and preserves the infallible Query() contract. The context only
  // borrows a CancelToken; the caller keeps it alive for the query.
  util::ExecutionContext context;

  // Output mode. The dominator array is O(n) and most serving consumers
  // (the CLI JSON document, the wire protocol) never read it; requests that
  // do not need it skip materializing it into the response.
  bool include_dominators = true;
};

// Everything one query produced.
struct QueryResponse {
  // OK, or why the run stopped early (kDeadlineExceeded / kCancelled /
  // kResourceExhausted). On failure `result` follows the partial-results
  // contract of core/solver.h: empty outputs, stats of the work actually
  // performed.
  util::Status status;

  // Skyline, dominator array (unless the request opted out) and the
  // deterministic stats counters.
  SkylineResult result;

  // True when the query was served entirely from cached artifacts (no
  // PreparedGraph build ran during dispatch).
  bool warm = false;

  bool ok() const { return status.ok(); }
  const SkylineStats& stats() const { return result.stats; }
  // AlgorithmName of the requested algorithm when the runtime degraded the
  // run to fit the byte budget; empty otherwise.
  const std::string& degraded_from() const {
    return result.stats.degraded_from;
  }
};

}  // namespace nsky::core

#endif  // NSKY_CORE_QUERY_H_
