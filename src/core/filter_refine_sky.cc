#include <memory>
#include <vector>

#include "core/bloom.h"
#include "core/filter_phase.h"
#include "core/solver_internal.h"
#include "core/subset_check.h"
#include "core/telemetry.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace {

// Exact verification that N(u) subset-of N[w] (NBRcheck): every x in N(u)
// except w itself must appear in N(w). Galloping containment with
// first-miss exit.
bool OpenSubsetOfClosed(const Graph& g, VertexId u, VertexId w,
                        uint64_t* scanned) {
  return SortedSubsetExcept(g.Neighbors(u), g.Neighbors(w), w, scanned);
}

}  // namespace

namespace internal {

util::Status RunFilterRefine(const Graph& g, const SolverOptions& options,
                             SolveEnv& env, SkylineResult* result) {
  NSKY_TRACE_SPAN("filter_refine");
  util::Timer timer;
  const util::ExecutionContext& ctx = *env.ctx;
  util::ThreadPool& pool = *env.pool;
  const VertexId n = g.NumVertices();

  // ---- Filter phase: candidate set C and its O(*) array. ----
  std::vector<VertexId> candidate_storage;
  const std::vector<VertexId>* candidates_ptr = nullptr;
  if (util::Status s = PrepareFilterOutput(g, options, env, result,
                                           &candidate_storage,
                                           &candidates_ptr);
      !s.ok()) {
    result->stats.seconds = timer.Seconds();
    return s;
  }
  const std::vector<VertexId>& candidates = *candidates_ptr;
  std::vector<VertexId>& dominator = result->dominator;
  const SkylineStats after_filter = result->stats;

  util::MemoryTally tally;
  tally.Add(result->stats.aux_peak_bytes);  // filter-phase structures

  // Candidate-membership snapshot. Immutable once built, it serves two
  // jobs in the refine scan: the non-candidate skip, and -- because it is
  // frozen pre-refine rather than read from the concurrently-written
  // dominator array -- the determinism of that skip for every thread count.
  // Warm runs share the PreparedGraph's map; the ledger charges the same
  // logical n bytes either way.
  const std::vector<uint8_t>* member_ptr = nullptr;
  if (env.prepared != nullptr) {
    member_ptr = &env.prepared->Filter(pool).member;
  } else {
    std::vector<uint8_t>& local = env.workspace->PrepareMember(n);
    for (VertexId u : candidates) local[u] = 1;
    member_ptr = &local;
  }
  const std::vector<uint8_t>& member = *member_ptr;
  tally.Add(n);
  if (util::Status s = ctx.CheckBudget(tally.peak_bytes()); !s.ok()) {
    result->stats.seconds = timer.Seconds();
    return s;
  }

  // ---- Bloom filters over N(u) for every candidate. ----
  // The bloom block is the one optional structure: when it alone would
  // cross the byte budget the run degrades to a bloomless refine (exactness
  // is unaffected -- the bloom is a pure pre-test) instead of failing. The
  // skip decision compares the deterministic ledger against an exact size
  // precomputation, so it is identical at every thread count -- and it is
  // taken before consulting the PreparedGraph cache, so warm runs skip (and
  // count bloom_prunes) exactly when cold runs would.
  const NeighborhoodBlooms* blooms = nullptr;
  std::unique_ptr<NeighborhoodBlooms> owned_blooms;
  if (options.use_bloom && !candidates.empty()) {
    NSKY_TRACE_SPAN("bloom_build");
    uint32_t bits = options.bloom_bits != 0
                        ? options.bloom_bits
                        : NeighborhoodBlooms::ChooseBitsAdaptive(
                              g, options.bits_per_neighbor);
    if (ctx.WouldExceedBudget(tally.live_bytes(),
                              NeighborhoodBlooms::EstimateBytes(
                                  n, candidates.size(), bits))) {
      if (util::metrics::Enabled()) {
        util::metrics::GetCounter("nsky.filter_refine.bloom_skipped").Add(1);
      }
    } else if (env.prepared != nullptr) {
      blooms = &env.prepared->CandidateBlooms(bits, pool);
      tally.Add(blooms->MemoryBytes());
    } else {
      owned_blooms =
          std::make_unique<NeighborhoodBlooms>(g, member, bits, &pool);
      blooms = owned_blooms.get();
      tally.Add(blooms->MemoryBytes());
    }
  }
  if (util::Status s = ctx.CheckHealth(); !s.ok()) {
    result->stats.seconds = timer.Seconds();
    return s;
  }

  // ---- Refine phase: verify candidates against potential dominators. ----
  // Key narrowing (engineering refinement over Algorithm 3's full 2-hop
  // scan): any dominator w of u satisfies N(u) subset-of N[w], so w is
  // adjacent to *every* neighbor of u -- in particular to u's
  // minimum-degree neighbor x*. Hence it is enough to scan w in N[x*],
  // which is tiny whenever u touches any low-degree vertex.
  //
  // Each candidate's verdict is a pure function of the graph and the
  // filter-phase snapshot: the scan order (x*, then N(x*) ascending) is
  // fixed, and the first w that passes degree, id-tiebreak, membership and
  // NBRcheck becomes dominator[u]. Workers therefore race on nothing --
  // they write only their own candidates' dominator slots -- and the
  // result is bit-identical for any partition of the candidate range.
  {
    NSKY_TRACE_SPAN("refine");
    std::vector<SkylineStats>& per_worker =
        env.workspace->PrepareWorkerStats(pool.num_threads());
    util::Status scan = pool.ParallelFor(
        candidates.size(), ctx,
        [&](unsigned worker, uint64_t begin, uint64_t end) {
          NSKY_TRACE_SPAN("refine.worker");
          SkylineStats& stats = per_worker[worker];
          for (uint64_t i = begin; i < end; ++i) {
            const VertexId u = candidates[i];
            const uint32_t deg_u = g.Degree(u);
            if (deg_u == 0) continue;  // isolated: skyline by convention

            VertexId pivot = g.Neighbors(u)[0];
            for (VertexId x : g.Neighbors(u)) {
              if (g.Degree(x) < g.Degree(pivot)) pivot = x;
            }

            auto consider = [&](VertexId w) -> bool {
              // Returns true when u was shown to be dominated (stop).
              if (w == u) return false;
              ++stats.pairs_examined;
              // Degree test: N(u) subset-of N[w] forces deg(w) >= deg(u).
              if (g.Degree(w) < deg_u) {
                ++stats.degree_prunes;
                return false;
              }
              // Equal degree + inclusion would be mutual; only a smaller
              // id dominates.
              if (g.Degree(w) == deg_u && w > u) return false;
              // Non-candidate skip: a filter-dominated w is redundant --
              // transitivity guarantees an undominated dominator of u is
              // also in scan range.
              if (!member[w]) return false;
              // Bloom subset pre-test (no false negatives). The closed
              // variant is required: w may be adjacent to u here.
              if (blooms != nullptr && !blooms->SubsetTestClosed(u, w)) {
                ++stats.bloom_prunes;
                return false;
              }
              // Exact verification (NBRcheck).
              ++stats.inclusion_tests;
              if (!OpenSubsetOfClosed(g, u, w,
                                      &stats.nbr_elements_scanned)) {
                return false;
              }
              dominator[u] = w;  // strict, or equal-degree with w < u
              return true;
            };

            if (consider(pivot)) continue;
            for (VertexId w : g.Neighbors(pivot)) {
              if (consider(w)) break;
            }
          }
        });
    MergeWorkerStats(&result->stats, per_worker);
    if (!scan.ok()) {
      result->stats.seconds = timer.Seconds();
      return scan;
    }
    // Mirrored inside the span so "refine" carries its own counter deltas.
    MirrorStatsCounters("nsky.filter_refine.refine",
                        StatsSince(result->stats, after_filter));
  }

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] == u) result->skyline.push_back(u);
  }
  tally.Add(result->skyline.size() * sizeof(VertexId));
  result->stats.aux_peak_bytes = tally.peak_bytes();
  result->stats.seconds = timer.Seconds();
  MirrorStatsToMetrics("filter_refine", result->stats);
  return util::Status::Ok();
}

}  // namespace internal

}  // namespace nsky::core
