#include "core/filter_refine_sky.h"

#include <memory>
#include <vector>

#include "core/bloom.h"
#include "core/filter_phase.h"
#include "core/subset_check.h"
#include "core/telemetry.h"
#include "util/memory.h"
#include "util/timer.h"
#include "util/trace.h"

namespace nsky::core {

namespace {

// Exact verification that N(u) subset-of N[w] (NBRcheck): every x in N(u)
// except w itself must appear in N(w). Galloping containment with
// first-miss exit.
bool OpenSubsetOfClosed(const Graph& g, VertexId u, VertexId w,
                        uint64_t* scanned) {
  return SortedSubsetExcept(g.Neighbors(u), g.Neighbors(w), w, scanned);
}

}  // namespace

SkylineResult FilterRefineSky(const Graph& g,
                              const FilterRefineOptions& options) {
  NSKY_TRACE_SPAN("filter_refine");
  util::Timer timer;
  const VertexId n = g.NumVertices();

  // ---- Filter phase: candidate set C and its O(*) array. ----
  SkylineResult result = FilterPhase(g);
  std::vector<VertexId>& dominator = result.dominator;
  const std::vector<VertexId> candidates = std::move(result.skyline);
  result.skyline.clear();
  const SkylineStats after_filter = result.stats;

  util::MemoryTally tally;
  tally.Add(result.stats.aux_peak_bytes);  // filter-phase structures

  // ---- Bloom filters over N(u) for every candidate. ----
  std::vector<uint8_t> member(n, 0);
  for (VertexId u : candidates) member[u] = 1;
  tally.Add(member.capacity());

  std::unique_ptr<NeighborhoodBlooms> blooms;
  if (options.use_bloom && !candidates.empty()) {
    NSKY_TRACE_SPAN("bloom_build");
    uint32_t bits = options.bloom_bits != 0
                        ? options.bloom_bits
                        : NeighborhoodBlooms::ChooseBitsAdaptive(
                              g, options.bits_per_neighbor);
    blooms = std::make_unique<NeighborhoodBlooms>(g, member, bits);
    tally.Add(blooms->MemoryBytes());
  }

  // ---- Refine phase: verify candidates against potential dominators. ----
  // Key narrowing (engineering refinement over Algorithm 3's full 2-hop
  // scan): any dominator w of u satisfies N(u) subset-of N[w], so w is
  // adjacent to *every* neighbor of u -- in particular to u's
  // minimum-degree neighbor x*. Hence it is enough to scan w in N[x*],
  // which is tiny whenever u touches any low-degree vertex. The candidate
  // list is duplicate-free by construction, so no dedup stamps are needed.
  {
    NSKY_TRACE_SPAN("refine");
    for (VertexId u : candidates) {
      if (dominator[u] != u) continue;  // dominated meanwhile (mutual marking)
      const uint32_t deg_u = g.Degree(u);
      if (deg_u == 0) continue;  // isolated: skyline by the 2-hop convention

      VertexId pivot = g.Neighbors(u)[0];
      for (VertexId x : g.Neighbors(u)) {
        if (g.Degree(x) < g.Degree(pivot)) pivot = x;
      }

      auto consider = [&](VertexId w) -> bool {
        // Returns true when u was shown to be dominated (stop scanning).
        if (w == u) return false;
        ++result.stats.pairs_examined;
        // Degree test: N(u) subset-of N[w] forces deg(w) >= deg(u).
        if (g.Degree(w) < deg_u) {
          ++result.stats.degree_prunes;
          return false;
        }
        // Dominated-w skip: if w is dominated, transitivity guarantees an
        // undominated dominator of u is also reachable, so w is redundant.
        if (dominator[w] != w) return false;
        // Bloom subset pre-test (no false negatives). The closed variant is
        // required: w may be adjacent to u here.
        if (blooms != nullptr && blooms->Has(w) &&
            !blooms->SubsetTestClosed(u, w)) {
          ++result.stats.bloom_prunes;
          return false;
        }
        // Exact verification (NBRcheck).
        ++result.stats.inclusion_tests;
        if (!OpenSubsetOfClosed(g, u, w, &result.stats.nbr_elements_scanned)) {
          return false;
        }
        if (g.Degree(w) == deg_u) {
          // Equal degree + inclusion => mutual; smaller id dominates.
          if (u > w) {
            dominator[u] = w;
            return true;
          }
          return false;  // u has the smaller id; keep scanning
        }
        dominator[u] = w;  // strict domination
        return true;
      };

      if (consider(pivot)) continue;
      for (VertexId w : g.Neighbors(pivot)) {
        if (consider(w)) break;
      }
    }
    // Mirrored inside the span so "refine" carries its own counter deltas.
    MirrorStatsCounters("nsky.filter_refine.refine",
                        StatsSince(result.stats, after_filter));
  }

  for (VertexId u = 0; u < n; ++u) {
    if (dominator[u] == u) result.skyline.push_back(u);
  }
  tally.Add(result.skyline.capacity() * sizeof(VertexId));
  result.stats.aux_peak_bytes = tally.peak_bytes();
  result.stats.seconds = timer.Seconds();
  MirrorStatsToMetrics("filter_refine", result.stats);
  return result;
}

}  // namespace nsky::core
