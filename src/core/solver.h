// Unified solver entry point: one options struct, one Solve() call.
//
//   nsky::core::SolverOptions options;
//   options.algorithm = nsky::core::Algorithm::kFilterRefine;
//   options.threads = 8;
//   nsky::core::SkylineResult r = nsky::core::Solve(g, options);
//
// Solve() replaced the historical per-solver free functions (BaseSky,
// Base2Hop, BaseCSet, FilterRefineSky), now removed. Every execution knob
// -- algorithm choice, thread count, bloom sizing -- lives in
// SolverOptions, so new knobs reach all solvers, the CLI, the benches and
// the tests through a single struct. For repeated queries against one
// graph, prefer core::Engine (core/engine.h): same results, but
// graph-derived artifacts are cached and scratch is pooled.
//
// Parallel execution & determinism guarantee
// ------------------------------------------
// With options.threads = T, the per-vertex domination scans run on a
// fixed-size thread pool (util/thread_pool.h) that partitions the vertex /
// candidate range into T contiguous chunks with a fixed formula. Each
// worker accumulates into thread-local SkylineStats and writes only
// dominator slots it owns; shared inputs (graph, candidate snapshot, bloom
// filters) are read-only during the scan. Worker results are merged at a
// barrier in worker order. Because every per-vertex decision is a pure
// function of the graph (plus the immutable filter-phase snapshot), the
// returned SkylineResult -- skyline order, dominator array, and every
// deterministic SkylineStats counter -- is bit-identical for every value of
// T, including T = 1. Only stats.seconds (wall time) and stats.threads (the
// resolved thread count) vary.
//
// stats.aux_peak_bytes is part of the guarantee: per-worker scratch is
// charged to the ledger once (the canonical single-worker footprint), so
// the reported figure is the T = 1 footprint. Real resident scratch grows
// with T; the deterministic ledger deliberately does not.
#ifndef NSKY_CORE_SOLVER_H_
#define NSKY_CORE_SOLVER_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "core/skyline.h"
#include "util/execution_context.h"
#include "util/status.h"

namespace nsky::core {

// The neighborhood-skyline algorithms selectable through Solve().
enum class Algorithm {
  kFilterRefine,  // Algorithm 3: filter + pruned refine (the paper's best)
  kBaseSky,       // Algorithm 1: counting over 2-hop neighborhoods
  kBaseCSet,      // filter + counting refine restricted to candidates
  kBase2Hop,      // materialized 2-hop lists + bloom/NBRcheck verification
};

// Stable CLI-facing name of an algorithm ("filter-refine", "base", "cset",
// "2hop").
const char* AlgorithmName(Algorithm algorithm);

// Inverse of AlgorithmName; also accepts the historical spelling
// "filter_refine". Returns nullopt for unknown names.
std::optional<Algorithm> ParseAlgorithm(std::string_view name);

// Execution options for Solve(). The bloom fields subsume the former
// FilterRefineOptions.
struct SolverOptions {
  Algorithm algorithm = Algorithm::kFilterRefine;

  // Worker count for the parallel engine. 1 = sequential (default);
  // 0 = one worker per hardware thread. The result is bit-identical for
  // every value (see the determinism guarantee above).
  uint32_t threads = 1;

  // Bloom width in bits (power of two, >= 64); 0 picks
  // NeighborhoodBlooms::ChooseBitsAdaptive(g, bits_per_neighbor).
  uint32_t bloom_bits = 0;
  // Sizing factor used when bloom_bits == 0.
  uint32_t bits_per_neighbor = 2;
  // Disables the bloom pre-test entirely (ablation). Only meaningful for
  // kFilterRefine and kBase2Hop.
  bool use_bloom = true;
};

// Computes the neighborhood skyline of g with the selected algorithm and
// thread count. stats.threads records the resolved worker count.
//
// Infallible by construction: a thin wrapper over SolveInto with an
// unlimited ExecutionContext, preserving the historical contract (and the
// bit-identical-results guarantee) exactly.
SkylineResult Solve(const Graph& g, const SolverOptions& options = {});

// Hardened runtime entry points
// -----------------------------
// SolveOrError is Solve with cooperative limits: the run honors ctx's
// CancelToken, wall-clock deadline and auxiliary-byte budget, checked at
// phase boundaries and between slices of every parallel scan, and returns
// kCancelled / kDeadlineExceeded / kResourceExhausted instead of hanging or
// OOMing. A run that completes under a context is bit-identical to the
// plain Solve() result at every thread count.
//
// Graceful degradation: a kBase2Hop request whose materialized 2-hop lists
// or bloom block cannot fit the byte budget (decided upfront from a
// deterministic estimate, EstimateBase2HopBytes) is transparently re-routed
// to kFilterRefine -- same exact skyline, bounded memory -- and the
// original algorithm is recorded in stats.degraded_from ("2hop").
// Similarly kFilterRefine skips its optional bloom filters when they alone
// would cross the budget; correctness is unaffected (the bloom is a pure
// pre-test). A budget too small even for the fallback's mandatory
// structures yields kResourceExhausted.
util::Result<SkylineResult> SolveOrError(
    const Graph& g, const SolverOptions& options = {},
    const util::ExecutionContext& ctx = {});

// Like SolveOrError but with well-defined partial results: *result is
// always filled. On success it is the complete SkylineResult; on failure
// skyline and dominator are empty and stats holds the counters of the work
// actually performed before the early exit (plus threads, seconds and
// degraded_from), which is what the CLI and the telemetry report for
// interrupted runs.
util::Status SolveInto(const Graph& g, const SolverOptions& options,
                       const util::ExecutionContext& ctx,
                       SkylineResult* result);

}  // namespace nsky::core

#endif  // NSKY_CORE_SOLVER_H_
