// Unified solver entry point: one options struct, one Solve() call.
//
//   nsky::core::SolverOptions options;
//   options.algorithm = nsky::core::Algorithm::kFilterRefine;
//   options.threads = 8;
//   nsky::core::SkylineResult r = nsky::core::Solve(g, options);
//
// Solve() replaces the historical per-solver free functions (BaseSky,
// Base2Hop, BaseCSet, FilterRefineSky), which remain as thin deprecated
// wrappers for one release. Every execution knob -- algorithm choice,
// thread count, bloom sizing -- lives in SolverOptions, so new knobs reach
// all solvers, the CLI, the benches and the tests through a single struct.
//
// Parallel execution & determinism guarantee
// ------------------------------------------
// With options.threads = T, the per-vertex domination scans run on a
// fixed-size thread pool (util/thread_pool.h) that partitions the vertex /
// candidate range into T contiguous chunks with a fixed formula. Each
// worker accumulates into thread-local SkylineStats and writes only
// dominator slots it owns; shared inputs (graph, candidate snapshot, bloom
// filters) are read-only during the scan. Worker results are merged at a
// barrier in worker order. Because every per-vertex decision is a pure
// function of the graph (plus the immutable filter-phase snapshot), the
// returned SkylineResult -- skyline order, dominator array, and every
// deterministic SkylineStats counter -- is bit-identical for every value of
// T, including T = 1. Only stats.seconds (wall time) and stats.threads (the
// resolved thread count) vary.
//
// stats.aux_peak_bytes is part of the guarantee: per-worker scratch is
// charged to the ledger once (the canonical single-worker footprint), so
// the reported figure is the T = 1 footprint. Real resident scratch grows
// with T; the deterministic ledger deliberately does not.
#ifndef NSKY_CORE_SOLVER_H_
#define NSKY_CORE_SOLVER_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "core/skyline.h"

namespace nsky::core {

// The neighborhood-skyline algorithms selectable through Solve().
enum class Algorithm {
  kFilterRefine,  // Algorithm 3: filter + pruned refine (the paper's best)
  kBaseSky,       // Algorithm 1: counting over 2-hop neighborhoods
  kBaseCSet,      // filter + counting refine restricted to candidates
  kBase2Hop,      // materialized 2-hop lists + bloom/NBRcheck verification
};

// Stable CLI-facing name of an algorithm ("filter-refine", "base", "cset",
// "2hop").
const char* AlgorithmName(Algorithm algorithm);

// Inverse of AlgorithmName; also accepts the historical spelling
// "filter_refine". Returns nullopt for unknown names.
std::optional<Algorithm> ParseAlgorithm(std::string_view name);

// Execution options for Solve(). The bloom fields subsume the former
// FilterRefineOptions (kept as a deprecated alias below).
struct SolverOptions {
  Algorithm algorithm = Algorithm::kFilterRefine;

  // Worker count for the parallel engine. 1 = sequential (default);
  // 0 = one worker per hardware thread. The result is bit-identical for
  // every value (see the determinism guarantee above).
  uint32_t threads = 1;

  // Bloom width in bits (power of two, >= 64); 0 picks
  // NeighborhoodBlooms::ChooseBitsAdaptive(g, bits_per_neighbor).
  uint32_t bloom_bits = 0;
  // Sizing factor used when bloom_bits == 0.
  uint32_t bits_per_neighbor = 2;
  // Disables the bloom pre-test entirely (ablation). Only meaningful for
  // kFilterRefine and kBase2Hop.
  bool use_bloom = true;
};

// Computes the neighborhood skyline of g with the selected algorithm and
// thread count. stats.threads records the resolved worker count.
SkylineResult Solve(const Graph& g, const SolverOptions& options = {});

}  // namespace nsky::core

#endif  // NSKY_CORE_SOLVER_H_
