// Surrogate for the Madrid train bombing contact network (Fig. 13 case
// study). The original KONECT dataset (64 suspects, 243 contact edges) is
// not redistributable here; this deterministic surrogate matches its size
// (exactly 64 vertices and 243 edges), its heavy-tailed contact structure
// (preferential attachment), and its connectivity -- the properties the
// case study exercises (|R| well below |V|, low-degree vertices dominated).
// The substitution is recorded in DESIGN.md.
#ifndef NSKY_DATASETS_BOMBING_H_
#define NSKY_DATASETS_BOMBING_H_

#include "graph/graph.h"

namespace nsky::datasets {

// 64-vertex, 243-edge deterministic contact-network surrogate.
graph::Graph MakeBombingSurrogate();

}  // namespace nsky::datasets

#endif  // NSKY_DATASETS_BOMBING_H_
