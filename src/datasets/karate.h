// Zachary's karate club network (Fig. 13 case study), embedded exactly.
// 34 vertices, 78 edges. Vertex ids are 0-based here (the classic listing
// is 1-based); vertex 0 is the instructor ("Mr. Hi"), vertex 33 the
// administrator ("John A.").
#ifndef NSKY_DATASETS_KARATE_H_
#define NSKY_DATASETS_KARATE_H_

#include "graph/graph.h"

namespace nsky::datasets {

// The exact Zachary karate club graph.
graph::Graph MakeKarateClub();

}  // namespace nsky::datasets

#endif  // NSKY_DATASETS_KARATE_H_
