#include "datasets/bombing.h"

#include <algorithm>
#include <vector>

#include "graph/generators.h"
#include "util/logging.h"

namespace nsky::datasets {

graph::Graph MakeBombingSurrogate() {
  // Pendant-rich, clustered contact network (see MakeSocialGraph); the seed
  // and parameters are fixed so that, after trimming to exactly 243 edges,
  // the graph is connected and its skyline fraction sits near the ~31%
  // the paper reports for the original network.
  graph::Graph base =
      graph::MakeSocialGraph(64, /*avg_degree=*/8.6, /*pendant_fraction=*/0.62,
                             /*triad_prob=*/0.45, /*seed=*/11,
                             /*copy_prob=*/0.33);
  std::vector<graph::Edge> edges = base.Edges();
  NSKY_CHECK(edges.size() >= 243);

  // Trim deterministically from the lexicographic end, never dropping an
  // edge whose removal would push an endpoint below degree 1 (every suspect
  // keeps at least one contact; pendants are part of the structure).
  std::vector<uint32_t> degree(64, 0);
  for (const auto& e : edges) {
    ++degree[e.first];
    ++degree[e.second];
  }
  std::sort(edges.begin(), edges.end());
  size_t to_remove = edges.size() - 243;
  std::vector<graph::Edge> kept;
  kept.reserve(243);
  for (size_t i = edges.size(); i-- > 0;) {
    const auto& [a, b] = edges[i];
    if (to_remove > 0 && degree[a] > 2 && degree[b] > 2) {
      --degree[a];
      --degree[b];
      --to_remove;
      continue;
    }
    kept.push_back(edges[i]);
  }
  NSKY_CHECK(to_remove == 0);
  return graph::Graph::FromEdges(64, std::move(kept));
}

}  // namespace nsky::datasets
