// Registry of scaled-down stand-ins for the paper's evaluation datasets.
//
// The paper evaluates on SNAP/KONECT downloads (Table I plus Pokec, Orkut
// and LiveJournal). This environment has no network access, so each dataset
// is replaced by a seeded synthetic graph from graph::MakeSocialGraph --
// preferential attachment enriched with pendants, triads and neighborhood
// duplication, the three structures that drive neighborhood domination in
// real data. Parameters are calibrated per dataset so that the average
// degree tracks the original and the skyline/candidate ratios keep the
// paper's ordering (WikiTalk most dominated, DBLP least). DESIGN.md records
// the substitution argument.
//
// Two scales are provided: kFull for the skyline experiments (Figs. 3-6,
// 10) and kSmall for the group-centrality and clique experiments
// (Figs. 7-9, 11-12, Table II), whose baselines are orders of magnitude
// more expensive per vertex.
#ifndef NSKY_DATASETS_REGISTRY_H_
#define NSKY_DATASETS_REGISTRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace nsky::datasets {

enum class StandinScale {
  kFull,   // tens of thousands of vertices
  kSmall,  // a few thousand vertices
};

struct StandinSpec {
  std::string name;         // lower-case key, e.g. "wikitalk"
  std::string description;  // domain, as in Table I
  // Original statistics from Table I / SNAP.
  uint64_t paper_n = 0;
  uint64_t paper_m = 0;
  uint32_t paper_dmax = 0;
  // MakeSocialGraph parameters of the stand-in.
  double avg_degree = 6.0;        // target average degree before duplication
  double pendant_fraction = 0.5;  // share of single-edge arrivals
  double triad_prob = 0.4;        // triangle-closing probability
  double copy_prob = 0.3;         // neighborhood-duplication probability
  uint32_t full_n = 0;
  uint32_t small_n = 0;
  uint64_t seed = 0;
};

// All registered stand-ins, in Table I order followed by Pokec, Orkut,
// LiveJournal.
const std::vector<StandinSpec>& AllStandins();

// Spec lookup by name (case-sensitive).
util::Result<StandinSpec> FindStandin(std::string_view name);

// Deterministically generates the stand-in graph.
util::Result<graph::Graph> MakeStandin(std::string_view name,
                                       StandinScale scale = StandinScale::kFull);

// Generates directly from a spec.
graph::Graph MakeStandin(const StandinSpec& spec, StandinScale scale);

}  // namespace nsky::datasets

#endif  // NSKY_DATASETS_REGISTRY_H_
