#include "datasets/registry.h"

#include "graph/generators.h"

namespace nsky::datasets {

const std::vector<StandinSpec>& AllStandins() {
  // Calibration: pendant_fraction tracks the original's low-degree mass
  // (WikiTalk's talk-page stars are the extreme), triad_prob its clustering
  // (collaboration networks highest), copy_prob the duplicated-neighborhood
  // mass that separates C from R; avg_degree is tuned so the *realized*
  // average (duplication included) lands near the original's 2m/n.
  static const std::vector<StandinSpec>& specs = *new std::vector<StandinSpec>{
      {"notredame", "Web network", 325'731, 1'090'109, 10'721,
       /*avg_degree=*/5.2, /*pendant_fraction=*/0.68, /*triad_prob=*/0.45,
       /*copy_prob=*/0.35, /*full_n=*/36'000, /*small_n=*/4'000,
       /*seed=*/101},
      {"youtube", "Social network", 1'134'890, 2'987'624, 28'754,
       /*avg_degree=*/4.0, /*pendant_fraction=*/0.72, /*triad_prob=*/0.35,
       /*copy_prob=*/0.35, /*full_n=*/48'000, /*small_n=*/4'500,
       /*seed=*/102},
      {"wikitalk", "Communication network", 2'394'385, 4'659'565, 100'029,
       /*avg_degree=*/3.0, /*pendant_fraction=*/0.84, /*triad_prob=*/0.15,
       /*copy_prob=*/0.40, /*full_n=*/56'000, /*small_n=*/5'000,
       /*seed=*/103},
      {"flixster", "Social network", 2'523'386, 7'918'801, 1'474,
       /*avg_degree=*/5.0, /*pendant_fraction=*/0.62, /*triad_prob=*/0.40,
       /*copy_prob=*/0.30, /*full_n=*/48'000, /*small_n=*/4'500,
       /*seed=*/104},
      {"dblp", "Collaboration network", 1'843'617, 8'350'260, 2'213,
       /*avg_degree=*/7.6, /*pendant_fraction=*/0.55, /*triad_prob=*/0.65,
       /*copy_prob=*/0.30, /*full_n=*/40'000, /*small_n=*/4'000,
       /*seed=*/105},
      {"pokec", "Social network", 1'632'803, 22'301'964, 14'854,
       /*avg_degree=*/10.0, /*pendant_fraction=*/0.40, /*triad_prob=*/0.60,
       /*copy_prob=*/0.20, /*full_n=*/20'000, /*small_n=*/3'500,
       /*seed=*/106},
      {"orkut", "Social network", 3'072'441, 117'184'899, 33'313,
       /*avg_degree=*/13.0, /*pendant_fraction=*/0.35, /*triad_prob=*/0.65,
       /*copy_prob=*/0.20, /*full_n=*/16'000, /*small_n=*/3'000,
       /*seed=*/107},
      {"livejournal", "Social network", 3'997'962, 34'681'189, 14'815,
       /*avg_degree=*/7.0, /*pendant_fraction=*/0.60, /*triad_prob=*/0.50,
       /*copy_prob=*/0.30, /*full_n=*/38'000, /*small_n=*/3'500,
       /*seed=*/108},
  };
  return specs;
}

util::Result<StandinSpec> FindStandin(std::string_view name) {
  for (const StandinSpec& spec : AllStandins()) {
    if (spec.name == name) return spec;
  }
  return util::Status::NotFound("no stand-in dataset named '" +
                                std::string(name) + "'");
}

graph::Graph MakeStandin(const StandinSpec& spec, StandinScale scale) {
  uint32_t n = scale == StandinScale::kFull ? spec.full_n : spec.small_n;
  return graph::MakeSocialGraph(n, spec.avg_degree, spec.pendant_fraction,
                                spec.triad_prob, spec.seed, spec.copy_prob);
}

util::Result<graph::Graph> MakeStandin(std::string_view name,
                                       StandinScale scale) {
  util::Result<StandinSpec> spec = FindStandin(name);
  if (!spec.ok()) return spec.status();
  return MakeStandin(spec.value(), scale);
}

}  // namespace nsky::datasets
