// On-disk layout of nsky persistent snapshots (format version 1).
//
// A snapshot file is:
//
//   [ 64-byte header ][ section table ][ pad ][ section payloads ... ]
//
// Header (64 bytes, little-endian):
//   offset  size  field
//        0     8  magic "NSKYSNP1"
//        8     4  format_version (uint32, currently 1)
//       12     4  section_count  (uint32)
//       16     8  file_bytes     (uint64, total size of the file)
//       24     8  content_hash   (uint64, FNV-1a 64 over the section table
//                                 bytes; doubles as the snapshot id)
//       32     4  header_crc     (CRC-32 of header bytes [0, 32))
//       36    28  zero padding
//
// Section table: section_count entries of 32 bytes each, sorted ascending
// by (id, aux) with no duplicates -- the sort plus the absence of any
// timestamp makes serialization canonical: saving the same engine state
// twice produces byte-identical files, and content_hash is a stable id.
//
//   offset  size  field
//        0     4  id        (SectionId)
//        4     4  aux       (bloom bit width for bloom sections, else 0)
//        8     8  offset    (file offset of the payload, 64-byte aligned)
//       16     8  bytes     (payload size; not padded)
//       24     4  crc32     (CRC-32 of the payload bytes)
//       28     4  zero padding
//
// Every payload starts at a 64-byte-aligned offset (mmap/cacheline
// friendly); the gap between payloads is zero-filled. Integrity is
// checksummed per section so `nsky snapshot inspect` can pinpoint which
// section of a damaged artifact is bad.
//
// Version / compatibility policy: a reader accepts files whose
// format_version is <= its own kFormatVersion and rejects newer files
// (INVALID_ARGUMENT -- upgrade the binary, the file is fine). Any change to
// the header, the table layout, or an existing section's payload encoding
// bumps kFormatVersion; adding a NEW section id does not (readers skip
// unknown ids), which is the intended evolution path.
//
// Section payload encodings are implementation details of
// persist/snapshot.cc and are documented field-by-field in DESIGN.md 2g.
#ifndef NSKY_PERSIST_FORMAT_H_
#define NSKY_PERSIST_FORMAT_H_

#include <cstdint>

namespace nsky::persist {

inline constexpr char kMagic[8] = {'N', 'S', 'K', 'Y', 'S', 'N', 'P', '1'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint64_t kAlignment = 64;
inline constexpr uint64_t kHeaderBytes = 64;
inline constexpr uint64_t kSectionEntryBytes = 32;

// Section ids. Values are part of the on-disk format; never renumber.
enum SectionId : uint32_t {
  kSectionMeta = 1,         // graph shape summary (n, m)
  kSectionGraph = 2,        // CSR offsets + adjacency
  kSectionFilter = 3,       // filter-phase artifacts + stats
  kSectionTwoHop = 4,       // materialized 2-hop lists (CSR encoded)
  kSectionDegreeOrder = 5,  // degree-ascending vertex order
  kSectionCores = 6,        // core decomposition
  kSectionCandidateBloom = 7,  // candidate bloom block (aux = bit width)
  kSectionFullBloom = 8,       // full bloom block (aux = bit width)
};

// Stable human-readable name of a section id ("meta", "graph", ...);
// "unknown" for ids this build does not recognize.
const char* SectionName(uint32_t id);

}  // namespace nsky::persist

#endif  // NSKY_PERSIST_FORMAT_H_
