// Persistent engine snapshots: save a warm core::Engine to one file, load
// it back in O(read) instead of O(build).
//
// A snapshot serializes the engine's graph (CSR) plus every PreparedGraph
// artifact that is currently materialized -- filter verdicts, bloom blocks
// at every built width, 2-hop lists, degree order, core decomposition --
// into the versioned, checksummed container described in persist/format.h.
// Load() reverses it and returns an engine whose artifacts are
// byte-identical to the saved ones, so its query results (skyline,
// dominator array, every deterministic SkylineStats counter including
// aux_peak_bytes) are bit-identical to the engine that was saved, and its
// queries count as *warm* from the first request (no artifact builds run).
//
// Canonical serialization: the file contains no timestamps, sections are
// sorted by (id, aux), and the snapshot id is a pure content hash --
// saving the same engine state twice (including re-saving a loaded engine)
// produces byte-identical files.
//
// Failure model: everything returns util::Status through the canonical
// status table (util/status.h), never crashes on bad input. Wrong magic and
// future format versions are INVALID_ARGUMENT (exit 2: the file is not for
// this reader); truncation, checksum mismatches and malformed payloads are
// IO_ERROR (exit 1: the file is damaged). A failed Load() returns no
// engine -- there is no partially-restored state to observe.
//
// Crash consistency: Save() writes a same-directory temp file
// (`path + ".tmp"`), fsyncs it, atomically renames it over `path`, then
// fsyncs the directory. A crash (kill -9, power loss) at any byte offset
// leaves either the previous snapshot or the new one at `path`, never a
// torn file.
//
// Fault injection (util/fault_injection.h): `persist.short_write` fails
// Save at its Nth section write (destination untouched, no temp file),
// `persist.crash_at_byte=V` simulates a crash after at most V bytes of the
// temp file (temp left behind un-fsynced, destination untouched),
// `persist.short_read` truncates Load at its Nth section,
// `persist.corrupt_section` makes the Nth section's checksum validation
// fail. All are zero-cost when NSKY_FAULTS is unset.
#ifndef NSKY_PERSIST_SNAPSHOT_H_
#define NSKY_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/execution_context.h"
#include "util/status.h"

namespace nsky::persist {

// One row of a snapshot's section table, as Inspect() reports it.
struct SectionInfo {
  uint32_t id = 0;
  uint32_t aux = 0;       // bloom bit width for bloom sections, else 0
  uint64_t offset = 0;    // file offset of the payload
  uint64_t bytes = 0;     // payload size
  uint32_t crc32 = 0;     // stored checksum (validated by Inspect/Load)
  std::string name;       // SectionName(id)
};

// Everything Inspect() learns about a snapshot without building an engine.
struct Manifest {
  std::string path;
  std::string id;  // content hash as 16 lowercase hex digits
  uint32_t format_version = 0;
  uint64_t file_bytes = 0;
  std::vector<SectionInfo> sections;
};

// Serializes the engine's graph and all currently-materialized artifacts to
// `path` (atomically replacing any existing file via the temp+fsync+rename
// protocol above). The engine is read-only during the save; callers must
// not run queries concurrently (an Engine serves one caller at a time, see
// core/engine.h).
util::Status Save(const core::Engine& engine, const std::string& path);

// Reads, validates and restores a snapshot, returning a fully warm engine
// stamped with SnapshotInfo provenance (surfaced via StatsSnapshot(), the
// flight recorder origin and the server's /healthz). The load runs under
// `ctx`: the byte budget is charged with the file bytes plus the decoded
// artifact bytes as sections restore, and deadline/cancellation are honored
// between sections. `options` becomes the engine's EngineOptions (defaults
// are not persisted -- they are caller configuration, not graph state).
util::Result<std::unique_ptr<core::Engine>> Load(
    const std::string& path, const util::ExecutionContext& ctx = {},
    core::EngineOptions options = {});

// Offline integrity check (the `nsky snapshot inspect` fsck): validates the
// header, the section table and every section checksum -- the same
// validation Load() performs -- without decoding payloads or constructing
// an engine, and reports per-section sizes. A snapshot that passes
// Inspect() will not fail Load() for integrity reasons.
util::Result<Manifest> Inspect(const std::string& path);

// Reads just the 64-byte header (magic + header CRC validated) and returns
// the snapshot id without touching the section table or payloads. Cheap
// enough to poll (`serve --watch-snapshot-ms`): one small read, no
// allocation proportional to the file.
util::Result<std::string> PeekSnapshotId(const std::string& path);

// 16-lowercase-hex-digit rendering of a snapshot content hash.
std::string SnapshotIdHex(uint64_t content_hash);

}  // namespace nsky::persist

#endif  // NSKY_PERSIST_SNAPSHOT_H_
