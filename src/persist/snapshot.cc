#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "persist/format.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/memory.h"

namespace nsky::persist {

// The encoders below write integers with memcpy in host order; the format
// is defined little-endian.
static_assert(std::endian::native == std::endian::little,
              "snapshot format requires a little-endian host");

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSectionMeta: return "meta";
    case kSectionGraph: return "graph";
    case kSectionFilter: return "filter";
    case kSectionTwoHop: return "two_hop";
    case kSectionDegreeOrder: return "degree_order";
    case kSectionCores: return "cores";
    case kSectionCandidateBloom: return "candidate_bloom";
    case kSectionFullBloom: return "full_bloom";
    default: return "unknown";
  }
}

std::string SnapshotIdHex(uint64_t content_hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(content_hash));
  return buf;
}

namespace {

using core::Engine;
using core::NeighborhoodBlooms;
using core::PreparedGraph;
using graph::Graph;
using graph::VertexId;

uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// --- payload encoding ------------------------------------------------------

class Encoder {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  template <typename T>
  void Array(const T* data, uint64_t count) {
    U64(count);
    Raw(data, count * sizeof(T));
  }
  template <typename T>
  void Array(const std::vector<T>& v) {
    Array(v.data(), v.size());
  }
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string Take() && { return std::move(buf_); }

 private:
  std::string buf_;
};

std::string EncodeMeta(const Graph& g) {
  Encoder e;
  e.U32(g.NumVertices());
  e.U32(0);  // reserved
  e.U64(g.NumEdges());
  e.U64(0);  // flags, reserved
  return std::move(e).Take();
}

std::string EncodeGraph(const Graph& g) {
  Encoder e;
  e.U32(g.NumVertices());
  e.U32(0);  // reserved
  auto offsets = g.RawOffsets();
  auto adjacency = g.RawAdjacency();
  e.Array(offsets.data(), offsets.size());
  e.Array(adjacency.data(), adjacency.size());
  return std::move(e).Take();
}

std::string EncodeFilter(const PreparedGraph::FilterArtifacts& fa) {
  Encoder e;
  e.Array(fa.candidates);
  e.Array(fa.dominator);
  e.Array(fa.member);
  e.U64(fa.stats.candidate_count);
  e.U64(fa.stats.pairs_examined);
  e.U64(fa.stats.bloom_prunes);
  e.U64(fa.stats.degree_prunes);
  e.U64(fa.stats.inclusion_tests);
  e.U64(fa.stats.nbr_elements_scanned);
  e.U64(fa.stats.aux_peak_bytes);
  e.U32(fa.stats.threads);
  e.U32(0);  // reserved
  e.Str(fa.stats.degraded_from);
  e.F64(fa.stats.seconds);
  return std::move(e).Take();
}

std::string EncodeTwoHop(const PreparedGraph::TwoHopArtifacts& th) {
  Encoder e;
  const uint64_t n = th.lists.size();
  e.U64(th.charged_bytes);
  std::vector<uint64_t> offsets(n + 1, 0);
  for (uint64_t u = 0; u < n; ++u) {
    offsets[u + 1] = offsets[u] + th.lists[u].size();
  }
  e.Array(offsets);
  e.U64(offsets[n]);
  for (const std::vector<VertexId>& row : th.lists) {
    e.Raw(row.data(), row.size() * sizeof(VertexId));
  }
  return std::move(e).Take();
}

std::string EncodeDegreeOrder(const std::vector<VertexId>& order) {
  Encoder e;
  e.Array(order);
  return std::move(e).Take();
}

std::string EncodeCores(const graph::CoreDecomposition& cores) {
  Encoder e;
  e.Array(cores.core);
  e.Array(cores.order);
  e.Array(cores.position);
  e.U32(cores.degeneracy);
  e.U32(0);  // reserved
  return std::move(e).Take();
}

std::string EncodeBloom(const NeighborhoodBlooms& blooms) {
  Encoder e;
  e.Array(blooms.slots());
  e.Array(blooms.words());
  return std::move(e).Take();
}

// --- payload decoding ------------------------------------------------------

// Bounds-checked cursor over one section's payload. Every read either
// succeeds or flips the cursor into a sticky failed state; callers chain
// reads and check ok() once. Array reads validate the stored count against
// the remaining bytes BEFORE resizing, so a hostile count cannot trigger a
// huge allocation.
class Decoder {
 public:
  Decoder(const uint8_t* data, uint64_t size) : p_(data), size_(size) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* out) {
    uint64_t count = 0;
    if (!U64(&count) || count > size_ - pos_) return Fail();
    out->assign(reinterpret_cast<const char*>(p_ + pos_), count);
    pos_ += count;
    return true;
  }
  template <typename T>
  bool Array(std::vector<T>* out) {
    uint64_t count = 0;
    if (!U64(&count) || count > (size_ - pos_) / sizeof(T)) return Fail();
    out->resize(count);
    return Raw(out->data(), count * sizeof(T));
  }
  bool Raw(void* out, uint64_t n) {
    if (failed_ || n > size_ - pos_) return Fail();
    std::memcpy(out, p_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool ok() const { return failed_ == false; }
  bool AtEnd() const { return !failed_ && pos_ == size_; }
  uint64_t remaining() const { return size_ - pos_; }
  const uint8_t* cursor() const { return p_ + pos_; }
  bool Skip(uint64_t n) {
    if (failed_ || n > size_ - pos_) return Fail();
    pos_ += n;
    return true;
  }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }
  const uint8_t* p_;
  uint64_t size_;
  uint64_t pos_ = 0;
  bool failed_ = false;
};

util::Status Malformed(uint32_t id, const std::string& detail) {
  return util::Status::IoError("snapshot section " +
                               std::string(SectionName(id)) +
                               " is malformed: " + detail);
}

// --- file-level parsing ----------------------------------------------------

struct TableEntry {
  uint32_t id = 0;
  uint32_t aux = 0;
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint32_t crc32 = 0;
};

struct ParsedFile {
  std::vector<uint8_t> data;
  uint32_t format_version = 0;
  uint64_t content_hash = 0;
  std::vector<TableEntry> entries;

  const uint8_t* payload(const TableEntry& e) const {
    return data.data() + e.offset;
  }
};

util::Status ReadFileBytes(const std::string& path,
                           std::vector<uint8_t>* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::NotFound("cannot open snapshot " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return util::Status::IoError("cannot determine size of snapshot " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<uint64_t>(end));
  const size_t got = out->empty() ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (got != out->size()) {
    return util::Status::IoError("short read while loading snapshot " + path);
  }
  return util::Status::Ok();
}

// Header + section-table validation plus the per-section bounds and
// checksum pass shared by Load() and Inspect(). `ctx` bounds the work: the
// file bytes are charged to `tally` before the read and the health check
// runs between section validations.
util::Status ReadAndValidate(const std::string& path,
                             const util::ExecutionContext& ctx,
                             util::MemoryTally* tally, ParsedFile* out) {
  const bool faults = util::FaultInjector::Enabled();

  {
    // Charge the file size before materializing the bytes, mirroring how
    // the solvers precheck allocations against the ledger.
    FILE* probe = std::fopen(path.c_str(), "rb");
    if (probe != nullptr) {
      std::fseek(probe, 0, SEEK_END);
      const long end = std::ftell(probe);
      std::fclose(probe);
      if (end > 0) {
        tally->Add(static_cast<uint64_t>(end));
        util::Status budget = ctx.CheckBudget(tally->live_bytes());
        if (!budget.ok()) return budget;
      }
    }
  }

  util::Status read = ReadFileBytes(path, &out->data);
  if (!read.ok()) return read;
  const std::vector<uint8_t>& buf = out->data;

  if (buf.size() < kHeaderBytes) {
    return util::Status::IoError(
        "snapshot truncated: file is " + std::to_string(buf.size()) +
        " bytes, smaller than the " + std::to_string(kHeaderBytes) +
        "-byte header");
  }
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument(
        "not a nsky snapshot: bad magic in " + path);
  }
  uint32_t header_crc = 0;
  std::memcpy(&header_crc, buf.data() + 32, sizeof(header_crc));
  if (util::Crc32(buf.data(), 32) != header_crc) {
    return util::Status::IoError("snapshot header checksum mismatch");
  }
  std::memcpy(&out->format_version, buf.data() + 8, sizeof(uint32_t));
  if (out->format_version == 0 || out->format_version > kFormatVersion) {
    return util::Status::InvalidArgument(
        "snapshot format version " + std::to_string(out->format_version) +
        " is not supported by this build (reads up to version " +
        std::to_string(kFormatVersion) + ")");
  }
  uint32_t section_count = 0;
  uint64_t file_bytes = 0;
  std::memcpy(&section_count, buf.data() + 12, sizeof(section_count));
  std::memcpy(&file_bytes, buf.data() + 16, sizeof(file_bytes));
  std::memcpy(&out->content_hash, buf.data() + 24, sizeof(uint64_t));
  if (file_bytes != buf.size()) {
    return util::Status::IoError(
        "snapshot truncated: header records " + std::to_string(file_bytes) +
        " bytes but the file has " + std::to_string(buf.size()));
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(section_count) * kSectionEntryBytes;
  if (kHeaderBytes + table_bytes > buf.size()) {
    return util::Status::IoError(
        "snapshot truncated: section table extends past end of file");
  }
  if (Fnv1a64(buf.data() + kHeaderBytes, table_bytes) != out->content_hash) {
    return util::Status::IoError("snapshot section table hash mismatch");
  }

  out->entries.resize(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint8_t* row = buf.data() + kHeaderBytes + i * kSectionEntryBytes;
    TableEntry& e = out->entries[i];
    std::memcpy(&e.id, row + 0, sizeof(e.id));
    std::memcpy(&e.aux, row + 4, sizeof(e.aux));
    std::memcpy(&e.offset, row + 8, sizeof(e.offset));
    std::memcpy(&e.bytes, row + 16, sizeof(e.bytes));
    std::memcpy(&e.crc32, row + 24, sizeof(e.crc32));
    if (i > 0) {
      const TableEntry& prev = out->entries[i - 1];
      if (std::make_pair(e.id, e.aux) <= std::make_pair(prev.id, prev.aux)) {
        return util::Status::IoError(
            "snapshot section table is not canonically sorted");
      }
    }
  }

  for (const TableEntry& e : out->entries) {
    util::Status health = ctx.CheckHealth();
    if (!health.ok()) return health;
    const char* name = SectionName(e.id);
    if (e.offset % kAlignment != 0) {
      return util::Status::IoError("snapshot section " + std::string(name) +
                                   " payload is not 64-byte aligned");
    }
    if (e.offset > buf.size() || e.bytes > buf.size() - e.offset) {
      return util::Status::IoError("snapshot truncated: section " +
                                   std::string(name) +
                                   " extends past end of file");
    }
    if (faults && util::FaultInjector::ShouldFail("persist.short_read")) {
      return util::Status::IoError("snapshot truncated: short read in section " +
                                   std::string(name));
    }
    uint32_t crc = util::Crc32(buf.data() + e.offset, e.bytes);
    if (faults && util::FaultInjector::ShouldFail("persist.corrupt_section")) {
      crc = ~crc;
    }
    if (crc != e.crc32) {
      return util::Status::IoError("snapshot section " + std::string(name) +
                                   " checksum mismatch");
    }
  }
  return util::Status::Ok();
}

// --- section decoding into engine state ------------------------------------

util::Status DecodeGraph(const TableEntry& e, const ParsedFile& file,
                         Graph* out) {
  Decoder d(file.payload(e), e.bytes);
  uint32_t n = 0, reserved = 0;
  std::vector<uint64_t> offsets;
  std::vector<VertexId> adjacency;
  if (!d.U32(&n) || !d.U32(&reserved) || !d.Array(&offsets) ||
      !d.Array(&adjacency) || !d.AtEnd()) {
    return Malformed(e.id, "payload does not parse");
  }
  util::Result<Graph> g = Graph::FromCsr(n, std::move(offsets),
                                         std::move(adjacency));
  if (!g.ok()) return Malformed(e.id, g.status().message());
  *out = std::move(g).value();
  return util::Status::Ok();
}

util::Status DecodeMetaCheck(const TableEntry& e, const ParsedFile& file,
                             const Graph& g) {
  Decoder d(file.payload(e), e.bytes);
  uint32_t n = 0, reserved = 0;
  uint64_t m = 0, flags = 0;
  if (!d.U32(&n) || !d.U32(&reserved) || !d.U64(&m) || !d.U64(&flags) ||
      !d.AtEnd()) {
    return Malformed(e.id, "payload does not parse");
  }
  if (n != g.NumVertices() || m != g.NumEdges()) {
    return util::Status::IoError(
        "snapshot meta section does not match the graph section");
  }
  return util::Status::Ok();
}

util::Status DecodeFilter(const TableEntry& e, const ParsedFile& file,
                          VertexId n, PreparedGraph* prepared) {
  Decoder d(file.payload(e), e.bytes);
  PreparedGraph::FilterArtifacts fa;
  uint32_t reserved = 0;
  if (!d.Array(&fa.candidates) || !d.Array(&fa.dominator) ||
      !d.Array(&fa.member) || !d.U64(&fa.stats.candidate_count) ||
      !d.U64(&fa.stats.pairs_examined) || !d.U64(&fa.stats.bloom_prunes) ||
      !d.U64(&fa.stats.degree_prunes) || !d.U64(&fa.stats.inclusion_tests) ||
      !d.U64(&fa.stats.nbr_elements_scanned) ||
      !d.U64(&fa.stats.aux_peak_bytes) || !d.U32(&fa.stats.threads) ||
      !d.U32(&reserved) || !d.Str(&fa.stats.degraded_from) ||
      !d.F64(&fa.stats.seconds) || !d.AtEnd()) {
    return Malformed(e.id, "payload does not parse");
  }
  if (fa.dominator.size() != n || fa.member.size() != n) {
    return Malformed(e.id, "array sizes do not match the graph");
  }
  for (size_t i = 0; i < fa.candidates.size(); ++i) {
    if (fa.candidates[i] >= n ||
        (i > 0 && fa.candidates[i - 1] >= fa.candidates[i])) {
      return Malformed(e.id, "candidate set is not a sorted vertex set");
    }
  }
  for (VertexId v : fa.dominator) {
    if (v >= n) return Malformed(e.id, "dominator entry out of range");
  }
  prepared->RestoreFilter(std::move(fa));
  return util::Status::Ok();
}

util::Status DecodeTwoHop(const TableEntry& e, const ParsedFile& file,
                          VertexId n, PreparedGraph* prepared) {
  Decoder d(file.payload(e), e.bytes);
  PreparedGraph::TwoHopArtifacts th;
  std::vector<uint64_t> offsets;
  uint64_t total = 0;
  if (!d.U64(&th.charged_bytes) || !d.Array(&offsets) || !d.U64(&total)) {
    return Malformed(e.id, "payload does not parse");
  }
  if (offsets.size() != static_cast<size_t>(n) + 1 || offsets.front() != 0 ||
      offsets.back() != total ||
      total > d.remaining() / sizeof(VertexId)) {
    return Malformed(e.id, "list offsets do not fence the payload");
  }
  const auto* values = reinterpret_cast<const VertexId*>(d.cursor());
  if (!d.Skip(total * sizeof(VertexId)) || !d.AtEnd()) {
    return Malformed(e.id, "payload does not parse");
  }
  th.lists.resize(n);
  for (VertexId u = 0; u < n; ++u) {
    if (offsets[u] > offsets[u + 1]) {
      return Malformed(e.id, "list offsets are not monotone");
    }
    for (uint64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      if (values[i] >= n) {
        return Malformed(e.id, "list entry out of range");
      }
    }
    th.lists[u].assign(values + offsets[u], values + offsets[u + 1]);
  }
  prepared->RestoreTwoHop(std::move(th));
  return util::Status::Ok();
}

util::Status DecodeDegreeOrder(const TableEntry& e, const ParsedFile& file,
                               VertexId n, PreparedGraph* prepared) {
  Decoder d(file.payload(e), e.bytes);
  std::vector<VertexId> order;
  if (!d.Array(&order) || !d.AtEnd()) {
    return Malformed(e.id, "payload does not parse");
  }
  if (order.size() != n) {
    return Malformed(e.id, "order length does not match the graph");
  }
  for (VertexId v : order) {
    if (v >= n) return Malformed(e.id, "order entry out of range");
  }
  prepared->RestoreDegreeOrder(std::move(order));
  return util::Status::Ok();
}

util::Status DecodeCores(const TableEntry& e, const ParsedFile& file,
                         VertexId n, PreparedGraph* prepared) {
  Decoder d(file.payload(e), e.bytes);
  graph::CoreDecomposition cores;
  uint32_t reserved = 0;
  if (!d.Array(&cores.core) || !d.Array(&cores.order) ||
      !d.Array(&cores.position) || !d.U32(&cores.degeneracy) ||
      !d.U32(&reserved) || !d.AtEnd()) {
    return Malformed(e.id, "payload does not parse");
  }
  if (cores.core.size() != n || cores.order.size() != n ||
      cores.position.size() != n) {
    return Malformed(e.id, "array sizes do not match the graph");
  }
  for (VertexId u = 0; u < n; ++u) {
    if (cores.order[u] >= n || cores.position[u] >= n) {
      return Malformed(e.id, "order/position entry out of range");
    }
  }
  prepared->RestoreCores(std::move(cores));
  return util::Status::Ok();
}

util::Status DecodeBloom(const TableEntry& e, const ParsedFile& file,
                         VertexId n, PreparedGraph* prepared) {
  Decoder d(file.payload(e), e.bytes);
  std::vector<uint32_t> slots;
  std::vector<uint64_t> words;
  if (!d.Array(&slots) || !d.Array(&words) || !d.AtEnd()) {
    return Malformed(e.id, "payload does not parse");
  }
  if (slots.size() != n) {
    return Malformed(e.id, "slot table length does not match the graph");
  }
  util::Result<std::unique_ptr<NeighborhoodBlooms>> blooms =
      NeighborhoodBlooms::FromParts(e.aux, std::move(slots), std::move(words));
  if (!blooms.ok()) return Malformed(e.id, blooms.status().message());
  if (e.id == kSectionCandidateBloom) {
    prepared->RestoreCandidateBlooms(e.aux, std::move(blooms).value());
  } else {
    prepared->RestoreFullBlooms(e.aux, std::move(blooms).value());
  }
  return util::Status::Ok();
}

}  // namespace

// --- public API ------------------------------------------------------------

util::Status Save(const Engine& engine, const std::string& path) {
  const bool faults = util::FaultInjector::Enabled();
  const Graph& g = engine.graph();
  const PreparedGraph& prepared = engine.prepared();

  struct Blob {
    uint32_t id;
    uint32_t aux;
    std::string payload;
  };
  std::vector<Blob> blobs;
  blobs.push_back({kSectionMeta, 0, EncodeMeta(g)});
  blobs.push_back({kSectionGraph, 0, EncodeGraph(g)});
  if (const auto* fa = prepared.PeekFilter()) {
    blobs.push_back({kSectionFilter, 0, EncodeFilter(*fa)});
  }
  if (const auto* th = prepared.PeekTwoHop()) {
    blobs.push_back({kSectionTwoHop, 0, EncodeTwoHop(*th)});
  }
  if (const auto* order = prepared.PeekDegreeOrder()) {
    blobs.push_back({kSectionDegreeOrder, 0, EncodeDegreeOrder(*order)});
  }
  if (const auto* cores = prepared.PeekCores()) {
    blobs.push_back({kSectionCores, 0, EncodeCores(*cores)});
  }
  for (uint32_t bits : prepared.CandidateBloomWidths()) {
    blobs.push_back(
        {kSectionCandidateBloom, bits,
         EncodeBloom(*prepared.PeekCandidateBlooms(bits))});
  }
  for (uint32_t bits : prepared.FullBloomWidths()) {
    blobs.push_back(
        {kSectionFullBloom, bits, EncodeBloom(*prepared.PeekFullBlooms(bits))});
  }
  // Canonical order; the loops above already emit it, the sort pins it.
  std::sort(blobs.begin(), blobs.end(), [](const Blob& a, const Blob& b) {
    return std::make_pair(a.id, a.aux) < std::make_pair(b.id, b.aux);
  });

  // Lay out payloads and serialize the section table.
  const uint64_t table_bytes = blobs.size() * kSectionEntryBytes;
  uint64_t cursor = kHeaderBytes + table_bytes;
  Encoder table;
  std::vector<uint64_t> offsets(blobs.size());
  for (size_t i = 0; i < blobs.size(); ++i) {
    cursor = AlignUp(cursor, kAlignment);
    offsets[i] = cursor;
    cursor += blobs[i].payload.size();
    table.U32(blobs[i].id);
    table.U32(blobs[i].aux);
    table.U64(offsets[i]);
    table.U64(blobs[i].payload.size());
    table.U32(util::Crc32(blobs[i].payload.data(), blobs[i].payload.size()));
    table.U32(0);  // reserved
  }
  const uint64_t file_bytes = cursor;
  const std::string table_str = std::move(table).Take();
  const uint64_t content_hash = Fnv1a64(table_str.data(), table_str.size());

  uint8_t header[kHeaderBytes] = {0};
  std::memcpy(header, kMagic, sizeof(kMagic));
  const uint32_t version = kFormatVersion;
  const uint32_t section_count = static_cast<uint32_t>(blobs.size());
  std::memcpy(header + 8, &version, sizeof(version));
  std::memcpy(header + 12, &section_count, sizeof(section_count));
  std::memcpy(header + 16, &file_bytes, sizeof(file_bytes));
  std::memcpy(header + 24, &content_hash, sizeof(content_hash));
  const uint32_t header_crc = util::Crc32(header, 32);
  std::memcpy(header + 32, &header_crc, sizeof(header_crc));

  // Assemble the complete file image in memory. The write phase below is
  // then a pure byte stream, which makes the crash site's "at most V bytes
  // reached the temp file" contract exact. The per-section short-write site
  // still fires during assembly so a failed Save never opens the file.
  std::string image;
  image.reserve(file_bytes);
  image.append(reinterpret_cast<const char*>(header), kHeaderBytes);
  image.append(table_str);
  for (size_t i = 0; i < blobs.size(); ++i) {
    if (faults && util::FaultInjector::ShouldFail("persist.short_write")) {
      return util::Status::IoError(
          "injected short write in snapshot section " +
          std::string(SectionName(blobs[i].id)));
    }
    image.append(offsets[i] - image.size(), '\0');
    image.append(blobs[i].payload);
  }

  // Crash-consistent write protocol: write a same-directory temp file,
  // fsync it, rename over the destination, fsync the directory. A crash at
  // any byte offset leaves either the old snapshot or the new one at
  // `path`, never a torn file -- readers only ever see a file that was
  // fully written and durable before the rename made it visible.
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Status::IoError("cannot open " + tmp + " for writing");
  }
  uint64_t write_limit = image.size();
  const uint64_t crash_at =
      faults ? util::FaultInjector::Value("persist.crash_at_byte") : 0;
  if (crash_at > 0 && crash_at < write_limit) write_limit = crash_at;

  util::Status fail;
  const char* p = image.data();
  uint64_t left = write_limit;
  while (left > 0) {
    const size_t chunk = left < (uint64_t{1} << 20) ? left : (uint64_t{1} << 20);
    const ssize_t n = ::write(fd, p, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail = util::Status::IoError("write failed for snapshot " + tmp);
      break;
    }
    p += n;
    left -= static_cast<uint64_t>(n);
  }
  if (crash_at > 0 && fail.ok()) {
    // Simulated kill -9: stop dead, no fsync, no rename, no cleanup. The
    // (possibly truncated) temp file is left behind exactly as a crash
    // would leave it; the destination is untouched.
    ::close(fd);
    return util::Status::IoError(
        "injected crash after " + std::to_string(write_limit) +
        " bytes while writing snapshot " + tmp);
  }
  if (fail.ok() && ::fsync(fd) != 0) {
    fail = util::Status::IoError("fsync failed for snapshot " + tmp);
  }
  if (::close(fd) != 0 && fail.ok()) {
    fail = util::Status::IoError("close failed for snapshot " + tmp);
  }
  if (!fail.ok()) {
    ::unlink(tmp.c_str());
    return fail;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return util::Status::IoError("rename failed for snapshot " + path);
  }
  // Persist the rename itself. Directory fsync is best-effort: some
  // filesystems reject it, and the rename is already atomic for readers.
  const size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? std::string(".")
                                               : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return util::Status::Ok();
}

util::Result<std::string> PeekSnapshotId(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::NotFound("cannot open snapshot " + path);
  }
  uint8_t header[kHeaderBytes] = {0};
  const size_t got = std::fread(header, 1, sizeof(header), f);
  std::fclose(f);
  if (got != sizeof(header)) {
    return util::Status::IoError("snapshot truncated: file is smaller than the " +
                                 std::to_string(kHeaderBytes) + "-byte header");
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument("not a nsky snapshot: bad magic in " +
                                         path);
  }
  uint32_t header_crc = 0;
  std::memcpy(&header_crc, header + 32, sizeof(header_crc));
  if (util::Crc32(header, 32) != header_crc) {
    return util::Status::IoError("snapshot header checksum mismatch");
  }
  uint64_t content_hash = 0;
  std::memcpy(&content_hash, header + 24, sizeof(content_hash));
  return SnapshotIdHex(content_hash);
}

util::Result<std::unique_ptr<core::Engine>> Load(const std::string& path,
                                                 const util::ExecutionContext& ctx,
                                                 core::EngineOptions options) {
  util::MemoryTally tally;
  ParsedFile file;
  util::Status status = ReadAndValidate(path, ctx, &tally, &file);
  if (!status.ok()) return status;

  // The graph section is the substrate every artifact validates against;
  // decode it first (canonical order puts it before all artifacts anyway).
  const TableEntry* graph_entry = nullptr;
  for (const TableEntry& e : file.entries) {
    if (e.id == kSectionGraph) graph_entry = &e;
  }
  if (graph_entry == nullptr) {
    return util::Status::IoError("snapshot has no graph section");
  }
  Graph g;
  status = DecodeGraph(*graph_entry, file, &g);
  if (!status.ok()) return status;
  const VertexId n = g.NumVertices();
  tally.Add(g.MemoryBytes());
  status = ctx.CheckBudget(tally.live_bytes());
  if (!status.ok()) return status;

  auto engine = std::make_unique<Engine>(std::move(g), std::move(options));
  PreparedGraph* prepared = &engine->prepared();

  for (const TableEntry& e : file.entries) {
    status = ctx.CheckHealth();
    if (!status.ok()) return status;
    switch (e.id) {
      case kSectionMeta:
        status = DecodeMetaCheck(e, file, engine->graph());
        break;
      case kSectionGraph:
        break;  // already decoded
      case kSectionFilter:
        status = DecodeFilter(e, file, n, prepared);
        break;
      case kSectionTwoHop:
        status = DecodeTwoHop(e, file, n, prepared);
        break;
      case kSectionDegreeOrder:
        status = DecodeDegreeOrder(e, file, n, prepared);
        break;
      case kSectionCores:
        status = DecodeCores(e, file, n, prepared);
        break;
      case kSectionCandidateBloom:
      case kSectionFullBloom:
        status = DecodeBloom(e, file, n, prepared);
        break;
      default:
        break;  // section from a newer writer; ignorable by design
    }
    if (!status.ok()) return status;
    tally.Add(e.bytes);  // decoded artifact, conservatively at payload size
    status = ctx.CheckBudget(tally.live_bytes());
    if (!status.ok()) return status;
  }

  core::SnapshotInfo info;
  info.id = SnapshotIdHex(file.content_hash);
  info.format_version = file.format_version;
  info.file_bytes = file.data.size();
  info.sections = static_cast<uint32_t>(file.entries.size());
  info.path = path;
  engine->set_snapshot_info(std::move(info));
  return engine;
}

util::Result<Manifest> Inspect(const std::string& path) {
  util::MemoryTally tally;
  ParsedFile file;
  const util::ExecutionContext ctx;
  util::Status status = ReadAndValidate(path, ctx, &tally, &file);
  if (!status.ok()) return status;

  Manifest manifest;
  manifest.path = path;
  manifest.id = SnapshotIdHex(file.content_hash);
  manifest.format_version = file.format_version;
  manifest.file_bytes = file.data.size();
  manifest.sections.reserve(file.entries.size());
  for (const TableEntry& e : file.entries) {
    SectionInfo info;
    info.id = e.id;
    info.aux = e.aux;
    info.offset = e.offset;
    info.bytes = e.bytes;
    info.crc32 = e.crc32;
    info.name = SectionName(e.id);
    manifest.sections.push_back(std::move(info));
  }
  return manifest;
}

}  // namespace nsky::persist
