// Minimal HTTP/1.1 message layer for the nsky network front end.
//
// This is deliberately a small, dependency-free subset of HTTP -- exactly
// what the JSON serving endpoints need and nothing more:
//  * requests: request line + headers + optional Content-Length body,
//    incremental parsing so a session can read from a socket in chunks;
//  * responses: status line + a fixed header set + body, keep-alive aware;
//  * no chunked transfer encoding, no multipart, no TLS.
//
// The parser is defensive rather than general: hard byte limits on the
// request head and body, a strict two-token-plus-version request line, and
// a kError terminal state carrying a message suitable for a 400 body. It
// never allocates proportionally to anything but the (bounded) input.
#ifndef NSKY_SERVER_HTTP_H_
#define NSKY_SERVER_HTTP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nsky::server {

// One parsed request. Header names are lowercased; the query string is
// split off the target and percent-decoded into `query`.
struct HttpRequest {
  std::string method;   // "GET", ...
  std::string target;   // raw request target ("/v1/skyline?algo=base")
  std::string version;  // "HTTP/1.1"
  std::map<std::string, std::string> headers;
  std::string body;

  std::string path;  // target up to '?' ("/v1/skyline")
  std::map<std::string, std::string> query;

  // True when the connection should stay open after the response:
  // HTTP/1.1 without "Connection: close", or HTTP/1.0 with
  // "Connection: keep-alive".
  bool keep_alive = false;
};

// Incremental request parser. Feed() bytes as they arrive; once it returns
// kDone, request() is valid and Reset() re-arms the parser for the next
// request on the same connection (unconsumed pipelined bytes carry over).
// kError is terminal for the connection: error() explains why, and
// error_status() is the HTTP status to answer with (400 or 413).
class HttpParser {
 public:
  enum class State { kNeedMore, kDone, kError };

  // Guardrails against hostile or broken clients.
  static constexpr size_t kMaxHeadBytes = 8 * 1024;
  static constexpr size_t kMaxBodyBytes = 64 * 1024;

  State Feed(std::string_view data);
  State state() const { return state_; }

  const HttpRequest& request() const { return request_; }
  const std::string& error() const { return error_; }
  int error_status() const { return error_status_; }

  // True when Feed() has consumed any bytes of a not-yet-complete request
  // (distinguishes "idle keep-alive connection went away" from "client
  // stalled mid-request", which deserves a 408).
  bool mid_request() const {
    return state_ == State::kNeedMore && !buffer_.empty();
  }

  void Reset();

 private:
  State Fail(int status, std::string message);
  State TryParse();

  State state_ = State::kNeedMore;
  std::string buffer_;
  HttpRequest request_;
  std::string error_;
  int error_status_ = 400;
};

// Serializes a response with Content-Type, Content-Length and Connection
// headers. `status` must be one of the codes the server emits (the reason
// phrase table covers them). `extra_headers` rides between the fixed set
// and the blank line: response metadata like Retry-After on 429/503 and
// X-Nsky-Snapshot provenance, which must NOT perturb the body (the skyline
// body is pinned byte-identical to the CLI's --json output).
std::string SerializeResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive);
std::string SerializeResponse(
    int status, std::string_view content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers);

// Canonical reason phrase for the status codes this server emits;
// "Unknown" for anything else.
const char* HttpReasonPhrase(int status);

// Splits "path?k=v&k2=v2" into path + percent-decoded key/value pairs.
// Keys without '=' map to the empty string.
void SplitTarget(std::string_view target, std::string* path,
                 std::map<std::string, std::string>* query);

}  // namespace nsky::server

#endif  // NSKY_SERVER_HTTP_H_
