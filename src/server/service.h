// SkylineService: the transport-independent request handler of the nsky
// server.
//
// The service owns the serving core::Engine and maps HTTP requests to
// engine calls; src/server/server.{h,cc} owns sockets and threads and calls
// Handle() from its session workers. Keeping the two apart means every
// route -- including admission control and error rendering -- is testable
// without a socket, and the socket loop never touches JSON.
//
// Endpoints:
//   GET /v1/skyline?algo=&threads=&repeat=&timeout_ms=&max_memory_mb=&stats=1
//       One engine query; the body is the same nsky.skyline.v1 document
//       `nsky skyline --engine --json` prints, byte-for-byte (both render
//       through core/skyline_json.h). `stats=1` embeds the engine's
//       introspection documents like the CLI's --stats. Snapshot-restored
//       engines stamp the response with an `X-Nsky-Snapshot: <id>` header
//       (a header, not a body field, precisely so the body parity with the
//       CLI holds).
//   GET /v1/engine_stats    nsky.engine_stats.v1 snapshot
//   GET /v1/queries?max=N   nsky.queries.v1 flight-recorder dump
//   GET /v1/metrics         Prometheus text: process registry + engine stats
//   GET /healthz            "ok" liveness probe; a service whose engine was
//                           restored from a persistent snapshot appends a
//                           "snapshot <id>" line so probes can vet provenance
//   POST /v1/edges
//       Applies one edge batch to the served graph as a single epoch
//       transition (Engine::ApplyUpdates). Body:
//         {"updates":[{"u":0,"v":1,"op":"insert"|"delete"},...]}
//       Answers nsky.mutate.v1 with applied/skipped counts, the new epoch
//       and the repair outcome; mutations serialize with queries on the
//       serving cell's mutex, so every query response is computed against
//       exactly one epoch. Responses (here and on /v1/skyline) carry an
//       `X-Nsky-Epoch` header.
//   POST /v1/admin/reload?snapshot=PATH[&timeout_ms=&max_memory_mb=]
//       Zero-downtime hot reload (see below); answers nsky.reload.v1.
//
// Failures answer with the nsky.error.v1 document and the HTTP status from
// the canonical table in util/status.h, so a request that times out inside
// the solver returns 408 exactly where the CLI would exit 4.
//
// Admission control: at most `max_inflight` skyline queries may be admitted
// at once (admitted = waiting for or holding the engine). Requests beyond
// that are shed immediately -- RESOURCE_EXHAUSTED / 429, deterministic, no
// queueing -- and recorded via Engine::RecordRejection so shed traffic is
// visible in /v1/engine_stats and /v1/queries. A draining service (server
// shutting down) answers UNAVAILABLE / 503 instead: the 429 asks the client
// to back off, the 503 tells it to go elsewhere. Both carry a `Retry-After`
// header (ServiceOptions::retry_after_*_s) that HttpClient's retry policy
// honors.
//
// Hot reload: Reload() loads and fully validates a snapshot OFF the request
// path (no lock any query route holds), then epoch-swaps the serving
// engine: the engine plus its serialization mutex live in one
// shared_ptr'd ServingEngine cell, every request pins the cell for its
// whole lifetime, and the swap just replaces the pointer. In-flight
// queries finish on the engine they started on; requests arriving after
// the swap see the new one; the old engine is destroyed when its last
// pinned request completes. A failed reload (missing/corrupt file, budget,
// future format version) leaves the serving engine untouched and surfaces
// as a structured nsky.error.v1 response. Snapshot provenance (/healthz,
// engine stats, flight-recorder origin) flips atomically with the swap
// because it lives on the engine itself.
//
// Concurrency: Handle() may be called from any number of session workers.
// The engine itself serves one caller at a time, so query and stats routes
// serialize on the serving cell's mutex; /v1/queries reads the flight
// recorder lock-free (it is explicitly safe against concurrent writers).
// Reloads serialize on their own mutex and never block queries except for
// the pointer-sized swap.
#ifndef NSKY_SERVER_SERVICE_H_
#define NSKY_SERVER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "graph/graph.h"
#include "server/http.h"
#include "util/execution_context.h"
#include "util/status.h"

namespace nsky::server {

struct ServiceOptions {
  // Per-request defaults; a request's query parameters override them
  // (timeout_ms= / max_memory_mb=, 0 meaning "unlimited").
  uint64_t default_timeout_ms = 0;   // 0 = no deadline
  uint64_t default_max_memory_mb = 0;  // 0 = no byte budget

  // Skyline queries admitted (waiting or running) before shedding starts.
  uint32_t max_inflight = 4;

  // Retry-After values (whole seconds) attached to backpressure responses:
  // 429 shed means "same replica, brief backoff"; 503 draining means "this
  // replica is going away, wait longer or go elsewhere".
  uint32_t retry_after_shed_s = 1;
  uint32_t retry_after_drain_s = 2;
};

// What the transport writes back: status + content type + body, plus any
// extra headers (Retry-After, X-Nsky-Snapshot). The Connection header stays
// with the transport.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;
};

class SkylineService {
 public:
  SkylineService(graph::Graph g, ServiceOptions options);

  // Serves an engine built elsewhere -- the `nsky serve --snapshot` path
  // hands over the engine persist::Load restored, so the replica answers
  // its first query warm. `engine` must be non-null.
  SkylineService(std::unique_ptr<core::Engine> engine, ServiceOptions options);

  // Thread-safe; see the concurrency notes above.
  HttpResponse Handle(const HttpRequest& request);

  // Zero-downtime hot reload: loads `path` under `ctx` off the request
  // path, and on success swaps it in as the serving engine (old engine
  // drains; see header comment) and returns the new engine's provenance.
  // On failure the serving engine is untouched. Thread-safe; concurrent
  // reloads serialize. Shared by POST /v1/admin/reload and the CLI's
  // --watch-snapshot poller.
  util::Result<core::SnapshotInfo> Reload(
      const std::string& path, const util::ExecutionContext& ctx = {});

  // Lifecycle accounting for `serve --fallback-cold-build`: the CLI records
  // that a snapshot failed to load at startup and the replica cold-built
  // from the graph source instead. Surfaced in the engine-stats lifecycle
  // block.
  void RecordColdFallback() {
    cold_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t reloads() const { return reloads_.load(std::memory_order_relaxed); }
  uint64_t reload_failures() const {
    return reload_failures_.load(std::memory_order_relaxed);
  }

  // The nsky.error.v1 document (plus trailing newline) for a failure, as a
  // ready-to-send response. Shared with the transport so parse errors and
  // slow-client timeouts use the same body shape as route errors.
  static HttpResponse ErrorResponse(const util::Status& status);
  // Same body, but served under an explicit HTTP status (405, 413, ...)
  // that has no StatusCode of its own.
  static HttpResponse ErrorResponseWithHttpStatus(int http_status,
                                                  const util::Status& status);

  // Flipped by the server when it begins shutting down; skyline queries are
  // then refused with UNAVAILABLE/503.
  void set_draining(bool draining) {
    draining_.store(draining, std::memory_order_relaxed);
  }

  // The engine currently serving. NOTE: the reference is only stable while
  // no Reload() runs; in-process tests and setup code use this, request
  // handling pins the serving cell instead.
  core::Engine& engine() { return *Serving()->engine; }
  uint32_t max_inflight() const { return options_.max_inflight; }
  // Currently admitted skyline queries (tests poll this to time overload).
  uint32_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  // One serving epoch: the engine and the mutex that serializes access to
  // it (an Engine serves one caller at a time). Requests copy the
  // shared_ptr once and use only the cell for their whole lifetime, so a
  // concurrent swap can never pull the engine out from under them.
  struct ServingEngine {
    explicit ServingEngine(std::unique_ptr<core::Engine> e)
        : engine(std::move(e)) {}
    std::unique_ptr<core::Engine> engine;
    std::mutex mu;
  };

  std::shared_ptr<ServingEngine> Serving() const;

  HttpResponse HandleSkyline(const HttpRequest& request);
  HttpResponse HandleMutate(const HttpRequest& request);
  HttpResponse HandleEngineStats();
  HttpResponse HandleQueries(const HttpRequest& request);
  HttpResponse HandleMetrics();
  HttpResponse HandleReload(const HttpRequest& request);

  // Copies the lifecycle counters into a stats snapshot when any reload /
  // fallback activity happened (absent otherwise, keeping pre-reload
  // documents byte-stable).
  void StampLifecycle(core::EngineStats* stats) const;

  ServiceOptions options_;
  mutable std::mutex swap_mu_;  // guards the serving_ pointer itself
  std::shared_ptr<ServingEngine> serving_;
  std::mutex reload_mu_;  // serializes Reload() bodies
  std::atomic<uint32_t> inflight_{0};
  std::atomic<bool> draining_{false};
  // Serving-lifecycle counters; service-scoped so they survive engine
  // swaps.
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> reload_failures_{0};
  std::atomic<uint64_t> cold_fallbacks_{0};
};

}  // namespace nsky::server

#endif  // NSKY_SERVER_SERVICE_H_
