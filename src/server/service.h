// SkylineService: the transport-independent request handler of the nsky
// server.
//
// The service owns a core::Engine over one graph and maps HTTP requests to
// engine calls; src/server/server.{h,cc} owns sockets and threads and calls
// Handle() from its session workers. Keeping the two apart means every
// route -- including admission control and error rendering -- is testable
// without a socket, and the socket loop never touches JSON.
//
// Endpoints (all GET):
//   /v1/skyline?algo=&threads=&repeat=&timeout_ms=&max_memory_mb=&stats=1
//       One engine query; the body is the same nsky.skyline.v1 document
//       `nsky skyline --engine --json` prints, byte-for-byte (both render
//       through core/skyline_json.h). `stats=1` embeds the engine's
//       introspection documents like the CLI's --stats.
//   /v1/engine_stats    nsky.engine_stats.v1 snapshot
//   /v1/queries?max=N   nsky.queries.v1 flight-recorder dump
//   /v1/metrics         Prometheus text: process registry + engine stats
//   /healthz            "ok" liveness probe; a service whose engine was
//                       restored from a persistent snapshot appends a
//                       "snapshot <id>" line so probes can vet provenance
//
// Failures answer with the nsky.error.v1 document and the HTTP status from
// the canonical table in util/status.h, so a request that times out inside
// the solver returns 408 exactly where the CLI would exit 4.
//
// Admission control: at most `max_inflight` skyline queries may be admitted
// at once (admitted = waiting for or holding the engine). Requests beyond
// that are shed immediately -- RESOURCE_EXHAUSTED / 429, deterministic, no
// queueing -- and recorded via Engine::RecordRejection so shed traffic is
// visible in /v1/engine_stats and /v1/queries. A draining service (server
// shutting down) answers UNAVAILABLE / 503 instead: the 429 asks the client
// to back off, the 503 tells it to go elsewhere.
//
// Concurrency: Handle() may be called from any number of session workers.
// The engine itself serves one caller at a time, so query and stats routes
// serialize on an internal mutex; /v1/queries reads the flight recorder
// lock-free (it is explicitly safe against concurrent writers).
#ifndef NSKY_SERVER_SERVICE_H_
#define NSKY_SERVER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/engine.h"
#include "graph/graph.h"
#include "server/http.h"
#include "util/status.h"

namespace nsky::server {

struct ServiceOptions {
  // Per-request defaults; a request's query parameters override them
  // (timeout_ms= / max_memory_mb=, 0 meaning "unlimited").
  uint64_t default_timeout_ms = 0;   // 0 = no deadline
  uint64_t default_max_memory_mb = 0;  // 0 = no byte budget

  // Skyline queries admitted (waiting or running) before shedding starts.
  uint32_t max_inflight = 4;
};

// What the transport writes back: status + content type + body. The
// Connection header stays with the transport.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

class SkylineService {
 public:
  SkylineService(graph::Graph g, ServiceOptions options);

  // Serves an engine built elsewhere -- the `nsky serve --snapshot` path
  // hands over the engine persist::Load restored, so the replica answers
  // its first query warm. `engine` must be non-null.
  SkylineService(std::unique_ptr<core::Engine> engine, ServiceOptions options);

  // Thread-safe; see the concurrency notes above.
  HttpResponse Handle(const HttpRequest& request);

  // The nsky.error.v1 document (plus trailing newline) for a failure, as a
  // ready-to-send response. Shared with the transport so parse errors and
  // slow-client timeouts use the same body shape as route errors.
  static HttpResponse ErrorResponse(const util::Status& status);
  // Same body, but served under an explicit HTTP status (405, 413, ...)
  // that has no StatusCode of its own.
  static HttpResponse ErrorResponseWithHttpStatus(int http_status,
                                                  const util::Status& status);

  // Flipped by the server when it begins shutting down; skyline queries are
  // then refused with UNAVAILABLE/503.
  void set_draining(bool draining) {
    draining_.store(draining, std::memory_order_relaxed);
  }

  core::Engine& engine() { return *engine_; }
  uint32_t max_inflight() const { return options_.max_inflight; }
  // Currently admitted skyline queries (tests poll this to time overload).
  uint32_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  HttpResponse HandleSkyline(const HttpRequest& request);
  HttpResponse HandleEngineStats();
  HttpResponse HandleQueries(const HttpRequest& request);
  HttpResponse HandleMetrics();

  ServiceOptions options_;
  // Owned via pointer because Engine is neither copyable nor movable and
  // the snapshot path receives one ready-made from persist::Load.
  std::unique_ptr<core::Engine> engine_;
  std::mutex engine_mu_;
  std::atomic<uint32_t> inflight_{0};
  std::atomic<bool> draining_{false};
};

}  // namespace nsky::server

#endif  // NSKY_SERVER_SERVICE_H_
