#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/strings.h"

namespace nsky::server {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

HttpClient::HttpClient(uint16_t port) : port_(port) {}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status HttpClient::Connect() {
  if (fd_ >= 0) return util::Status::Ok();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return util::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string msg = std::string("connect 127.0.0.1:") +
                            std::to_string(port_) + ": " +
                            std::strerror(errno);
    Close();
    return util::Status::IoError(msg);
  }
  return util::Status::Ok();
}

util::Result<ClientResponse> HttpClient::ReadResponse() {
  std::string data;
  char buf[8192];
  size_t head_end = std::string::npos;
  // Head first.
  while ((head_end = data.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return util::Status::IoError("connection closed before response head");
    }
    data.append(buf, static_cast<size_t>(n));
  }

  ClientResponse response;
  const std::string head = data.substr(0, head_end);
  const size_t line_end = head.find("\r\n");
  const std::string status_line = head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos) {
    Close();
    return util::Status::IoError("malformed status line: " + status_line);
  }
  response.status = std::atoi(status_line.c_str() + sp1 + 1);

  std::string rest =
      line_end == std::string::npos ? "" : head.substr(line_end + 2);
  uint64_t content_length = 0;
  while (!rest.empty()) {
    const size_t eol = rest.find("\r\n");
    const std::string line = rest.substr(0, eol);
    rest = eol == std::string::npos ? "" : rest.substr(eol + 2);
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name =
        ToLower(std::string(util::Trim(line.substr(0, colon))));
    response.headers[name] = std::string(util::Trim(line.substr(colon + 1)));
  }
  if (auto it = response.headers.find("content-length");
      it != response.headers.end()) {
    if (!util::ParseUint64(it->second, &content_length)) {
      Close();
      return util::Status::IoError("malformed content-length");
    }
  }

  const size_t body_begin = head_end + 4;
  while (data.size() - body_begin < content_length) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return util::Status::IoError("connection closed mid-body");
    }
    data.append(buf, static_cast<size_t>(n));
  }
  response.body = data.substr(body_begin, content_length);

  if (auto it = response.headers.find("connection");
      it != response.headers.end() && ToLower(it->second) == "close") {
    Close();
  }
  return response;
}

util::Result<ClientResponse> HttpClient::Get(const std::string& target) {
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool fresh = fd_ < 0;
    if (util::Status s = Connect(); !s.ok()) return s;
    size_t written = 0;
    bool send_failed = false;
    while (written < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + written,
                               request.size() - written, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) {
        send_failed = true;
        break;
      }
      written += static_cast<size_t>(n);
    }
    if (!send_failed) {
      util::Result<ClientResponse> r = ReadResponse();
      // A stale keep-alive connection (server closed between calls) fails
      // the read; retry once on a fresh connection.
      if (r.ok() || fresh) return r;
    }
    Close();
    if (fresh) {
      return util::Status::IoError("send failed on fresh connection");
    }
  }
  return util::Status::IoError("unreachable");
}

uint64_t HttpClient::BackoffMs(const RetryPolicy& policy, uint32_t attempt,
                               uint64_t retry_after_s) {
  if (policy.respect_retry_after && retry_after_s != ~uint64_t{0}) {
    const uint64_t ms = retry_after_s > policy.max_backoff_ms / 1000
                            ? policy.max_backoff_ms
                            : retry_after_s * 1000;
    return ms;
  }
  // Exponential: base << attempt, saturating at the cap.
  uint64_t ms = policy.base_backoff_ms;
  for (uint32_t i = 0; i < attempt && ms < policy.max_backoff_ms; ++i) {
    ms *= 2;
  }
  return ms < policy.max_backoff_ms ? ms : policy.max_backoff_ms;
}

util::Result<ClientResponse> HttpClient::GetWithRetry(
    const std::string& target, const RetryPolicy& policy) {
  const uint32_t attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  util::Result<ClientResponse> last =
      util::Status::IoError("no attempts made");
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    last = Get(target);
    // Retry transport errors and explicit backpressure; anything else --
    // success or a non-retryable status -- is the answer.
    if (last.ok() && last.value().status != 429 &&
        last.value().status != 503) {
      return last;
    }
    if (attempt + 1 == attempts) break;
    uint64_t retry_after_s = ~uint64_t{0};
    if (last.ok()) {
      if (auto it = last.value().headers.find("retry-after");
          it != last.value().headers.end()) {
        uint64_t parsed = 0;
        if (util::ParseUint64(it->second, &parsed)) retry_after_s = parsed;
      }
    }
    const uint64_t sleep_ms = BackoffMs(policy, attempt, retry_after_s);
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  }
  return last;
}

util::Result<ClientResponse> HttpClient::Raw(const std::string& bytes) {
  if (util::Status s = Connect(); !s.ok()) return s;
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      Close();
      return util::Status::IoError(std::string("send: ") +
                                   std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return ReadResponse();
}

util::Result<ClientResponse> HttpGet(uint16_t port,
                                     const std::string& target) {
  HttpClient client(port);
  return client.Get(target);
}

}  // namespace nsky::server
