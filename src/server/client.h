// Minimal blocking HTTP/1.1 client for loopback testing and benchmarking.
//
// This is the measurement side of the serving stack: the server tests drive
// the real socket path through it, and bench/bench_server_load uses it as
// the load generator, so it supports exactly what those need -- GET over a
// keep-alive connection, status + headers + Content-Length body back.
// It is not a general HTTP client and never follows redirects.
#ifndef NSKY_SERVER_CLIENT_H_
#define NSKY_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/status.h"

namespace nsky::server {

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // names lowercased
  std::string body;
};

class HttpClient {
 public:
  // Connects lazily on the first Get().
  explicit HttpClient(uint16_t port);
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  ~HttpClient();

  // One GET round trip on the (kept-alive) connection. Reconnects once if
  // the server closed the connection between calls.
  util::Result<ClientResponse> Get(const std::string& target);

  // Sends raw bytes and reads one response; for malformed-request tests.
  util::Result<ClientResponse> Raw(const std::string& bytes);

  // Opens the connection without sending anything; for slow-client tests.
  util::Status Connect();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  util::Result<ClientResponse> ReadResponse();

  uint16_t port_;
  int fd_ = -1;
};

// Convenience: one-shot GET on a fresh connection.
util::Result<ClientResponse> HttpGet(uint16_t port,
                                     const std::string& target);

}  // namespace nsky::server

#endif  // NSKY_SERVER_CLIENT_H_
