// Minimal blocking HTTP/1.1 client for loopback testing and benchmarking.
//
// This is the measurement side of the serving stack: the server tests drive
// the real socket path through it, and bench/bench_server_load uses it as
// the load generator, so it supports exactly what those need -- GET over a
// keep-alive connection, status + headers + Content-Length body back.
// It is not a general HTTP client and never follows redirects.
#ifndef NSKY_SERVER_CLIENT_H_
#define NSKY_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/status.h"

namespace nsky::server {

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // names lowercased
  std::string body;
};

// Deterministic bounded retry with exponential backoff for GetWithRetry().
// Transport errors and backpressure statuses (429 shed, 503 draining) are
// retried; any other response returns immediately. When the response
// carries a Retry-After header (seconds) and `respect_retry_after` is set,
// that value -- capped at max_backoff_ms -- replaces the computed backoff,
// so the client sleeps exactly as long as the server asked.
struct RetryPolicy {
  uint32_t max_attempts = 3;       // total tries, including the first
  uint64_t base_backoff_ms = 10;   // backoff before retry k is base << k
  uint64_t max_backoff_ms = 2000;  // cap for both computed and Retry-After
  bool respect_retry_after = true;
};

class HttpClient {
 public:
  // Connects lazily on the first Get().
  explicit HttpClient(uint16_t port);
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  ~HttpClient();

  // One GET round trip on the (kept-alive) connection. Reconnects once if
  // the server closed the connection between calls.
  util::Result<ClientResponse> Get(const std::string& target);

  // Get() under a retry policy: transport failures and 429/503 responses
  // are retried up to policy.max_attempts with exponential backoff (or the
  // server's Retry-After, see RetryPolicy). Returns the last response or
  // transport error once attempts are exhausted.
  util::Result<ClientResponse> GetWithRetry(const std::string& target,
                                            const RetryPolicy& policy = {});

  // The backoff GetWithRetry sleeps before retry `attempt` (0-based) given
  // a response's Retry-After seconds (SIZE_MAX when absent). Exposed so
  // tests can pin the schedule without sleeping through it.
  static uint64_t BackoffMs(const RetryPolicy& policy, uint32_t attempt,
                            uint64_t retry_after_s);

  // Sends raw bytes and reads one response; for malformed-request tests.
  util::Result<ClientResponse> Raw(const std::string& bytes);

  // Opens the connection without sending anything; for slow-client tests.
  util::Status Connect();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  util::Result<ClientResponse> ReadResponse();

  uint16_t port_;
  int fd_ = -1;
};

// Convenience: one-shot GET on a fresh connection.
util::Result<ClientResponse> HttpGet(uint16_t port,
                                     const std::string& target);

}  // namespace nsky::server

#endif  // NSKY_SERVER_CLIENT_H_
