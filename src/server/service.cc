#include "server/service.h"

#include <optional>
#include <utility>

#include "graph/versioned_graph.h"
#include "core/engine_stats.h"
#include "core/flight_recorder.h"
#include "core/skyline_json.h"
#include "core/solver.h"
#include "persist/snapshot.h"
#include "util/execution_context.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/prom_export.h"
#include "util/strings.h"

namespace nsky::server {

namespace {

// Reads an optional non-negative integer query parameter. Returns false
// (with a message) on malformed values; leaves *out untouched when absent.
bool ReadUintParam(const HttpRequest& request, const char* name,
                   uint64_t* out, std::string* error) {
  auto it = request.query.find(name);
  if (it == request.query.end()) return true;
  if (!util::ParseUint64(it->second, out)) {
    *error = std::string("query parameter '") + name +
             "' must be a non-negative integer, got '" + it->second + "'";
    return false;
  }
  return true;
}

}  // namespace

SkylineService::SkylineService(graph::Graph g, ServiceOptions options)
    : options_(options),
      serving_(std::make_shared<ServingEngine>(
          std::make_unique<core::Engine>(std::move(g)))) {}

SkylineService::SkylineService(std::unique_ptr<core::Engine> engine,
                               ServiceOptions options)
    : options_(options) {
  NSKY_CHECK_MSG(engine != nullptr, "SkylineService requires an engine");
  serving_ = std::make_shared<ServingEngine>(std::move(engine));
}

std::shared_ptr<SkylineService::ServingEngine> SkylineService::Serving()
    const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return serving_;
}

util::Result<core::SnapshotInfo> SkylineService::Reload(
    const std::string& path, const util::ExecutionContext& ctx) {
  // One reload at a time; queries keep flowing on the current engine while
  // the new one loads and validates.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  util::Result<std::unique_ptr<core::Engine>> loaded =
      persist::Load(path, ctx);
  if (!loaded.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return loaded.status();
  }
  core::SnapshotInfo info = *loaded.value()->snapshot_info();
  auto fresh = std::make_shared<ServingEngine>(std::move(loaded).value());
  std::shared_ptr<ServingEngine> old;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    old = std::move(serving_);
    serving_ = std::move(fresh);
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  // `old` drops here; the engine it owns is destroyed now if idle, or when
  // the last in-flight request that pinned it completes.
  return info;
}

void SkylineService::StampLifecycle(core::EngineStats* stats) const {
  const uint64_t reloads = reloads_.load(std::memory_order_relaxed);
  const uint64_t failures = reload_failures_.load(std::memory_order_relaxed);
  const uint64_t fallbacks = cold_fallbacks_.load(std::memory_order_relaxed);
  if (reloads == 0 && failures == 0 && fallbacks == 0) return;
  core::ServingLifecycle lifecycle;
  lifecycle.reloads = reloads;
  lifecycle.reload_failures = failures;
  lifecycle.cold_fallbacks = fallbacks;
  stats->lifecycle = lifecycle;
}

HttpResponse SkylineService::ErrorResponse(const util::Status& status) {
  return ErrorResponseWithHttpStatus(util::HttpStatusFor(status.code()),
                                     status);
}

HttpResponse SkylineService::ErrorResponseWithHttpStatus(
    int http_status, const util::Status& status) {
  // Same shape as the CLI's failure document (tools/cli.cc EmitFailure):
  // scripts can parse one schema no matter which front end produced it.
  util::JsonWriter w;
  w.BeginObject();
  w.KV("schema", "nsky.error.v1");
  w.KV("command", "serve");
  w.KV("code", util::StatusCodeName(status.code()));
  w.KV("message", status.message());
  w.KV("exit_code",
       static_cast<uint64_t>(util::CliExitCode(status.code())));
  w.EndObject();
  HttpResponse response;
  response.status = http_status;
  response.body = std::move(w).Take() + "\n";
  return response;
}

HttpResponse SkylineService::Handle(const HttpRequest& request) {
  if (request.path == "/v1/admin/reload") {
    if (request.method != "POST") {
      return ErrorResponseWithHttpStatus(
          405, util::Status::InvalidArgument(
                   "reload requires POST, got '" + request.method + "'"));
    }
    return HandleReload(request);
  }
  if (request.path == "/v1/edges") {
    if (request.method != "POST") {
      return ErrorResponseWithHttpStatus(
          405, util::Status::InvalidArgument(
                   "edge mutation requires POST, got '" + request.method +
                   "'"));
    }
    return HandleMutate(request);
  }
  if (request.method != "GET") {
    return ErrorResponseWithHttpStatus(
        405, util::Status::InvalidArgument("method '" + request.method +
                                           "' is not supported; use GET"));
  }
  if (request.path == "/v1/skyline") return HandleSkyline(request);
  if (request.path == "/v1/engine_stats") return HandleEngineStats();
  if (request.path == "/v1/queries") return HandleQueries(request);
  if (request.path == "/v1/metrics") return HandleMetrics();
  if (request.path == "/healthz") {
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = "ok\n";
    // Snapshot-restored replicas advertise their artifact id so rollout
    // tooling can confirm which snapshot a fleet member is serving from.
    // The id lives on the engine, so a hot reload flips it with the swap.
    std::shared_ptr<ServingEngine> serving = Serving();
    if (const auto info = serving->engine->EffectiveSnapshotInfo();
        info.has_value()) {
      response.body += "snapshot " + info->id + "\n";
    }
    return response;
  }
  return ErrorResponse(
      util::Status::NotFound("no route for '" + request.path + "'"));
}

HttpResponse SkylineService::HandleReload(const HttpRequest& request) {
  auto it = request.query.find("snapshot");
  if (it == request.query.end() || it->second.empty()) {
    return ErrorResponse(util::Status::InvalidArgument(
        "reload requires a snapshot=PATH query parameter"));
  }
  const std::string& path = it->second;
  uint64_t timeout_ms = 0;
  uint64_t max_memory_mb = 0;
  std::string error;
  if (!ReadUintParam(request, "timeout_ms", &timeout_ms, &error) ||
      !ReadUintParam(request, "max_memory_mb", &max_memory_mb, &error)) {
    return ErrorResponse(util::Status::InvalidArgument(error));
  }
  util::ExecutionContext ctx;
  if (timeout_ms > 0) ctx.set_timeout_ms(timeout_ms);
  if (max_memory_mb > 0) ctx.set_byte_budget(max_memory_mb * 1024 * 1024);

  std::string previous_id;
  {
    // Effective info: a mutated replica reports the "+dirty@epoch<N>" id it
    // was actually serving under as the previous one.
    std::shared_ptr<ServingEngine> serving = Serving();
    if (const auto info = serving->engine->EffectiveSnapshotInfo();
        info.has_value()) {
      previous_id = info->id;
    }
  }

  util::Result<core::SnapshotInfo> swapped = Reload(path, ctx);
  if (!swapped.ok()) return ErrorResponse(swapped.status());

  util::JsonWriter w;
  w.BeginObject();
  w.KV("schema", "nsky.reload.v1");
  w.Key("snapshot");
  w.BeginObject();
  w.KV("id", swapped.value().id);
  w.KV("format_version",
       static_cast<uint64_t>(swapped.value().format_version));
  w.KV("file_bytes", swapped.value().file_bytes);
  w.KV("sections", static_cast<uint64_t>(swapped.value().sections));
  w.KV("path", swapped.value().path);
  w.EndObject();
  w.KV("previous_id", previous_id);
  w.KV("reloads", reloads_.load(std::memory_order_relaxed));
  w.EndObject();
  HttpResponse response;
  response.body = std::move(w).Take() + "\n";
  return response;
}

HttpResponse SkylineService::HandleSkyline(const HttpRequest& request) {
  // Parse everything before admission: a malformed request must not count
  // against capacity.
  core::SolverOptions options;
  std::string algo = "filter-refine";
  if (auto it = request.query.find("algo"); it != request.query.end()) {
    algo = it->second;
  }
  if (auto parsed = core::ParseAlgorithm(algo)) {
    options.algorithm = *parsed;
  } else {
    return ErrorResponse(
        util::Status::InvalidArgument("unknown algo '" + algo + "'"));
  }
  uint64_t threads = 1;
  uint64_t repeat = 1;
  uint64_t timeout_ms = options_.default_timeout_ms;
  uint64_t max_memory_mb = options_.default_max_memory_mb;
  uint64_t stats = 0;
  std::string error;
  if (!ReadUintParam(request, "threads", &threads, &error) ||
      !ReadUintParam(request, "repeat", &repeat, &error) ||
      !ReadUintParam(request, "timeout_ms", &timeout_ms, &error) ||
      !ReadUintParam(request, "max_memory_mb", &max_memory_mb, &error) ||
      !ReadUintParam(request, "stats", &stats, &error)) {
    return ErrorResponse(util::Status::InvalidArgument(error));
  }
  if (threads > 4096) {
    return ErrorResponse(
        util::Status::InvalidArgument("threads must be in [0, 4096]"));
  }
  if (repeat == 0) repeat = 1;
  options.threads = static_cast<uint32_t>(threads);

  // Pin the serving epoch for the whole request: a concurrent hot reload
  // swaps the pointer, but this request keeps querying -- and accounting
  // against -- the engine it started with.
  std::shared_ptr<ServingEngine> serving = Serving();
  core::Engine* engine = serving->engine.get();

  // Admission control. Deterministic by construction: the decision depends
  // only on how many queries are admitted right now, never on timing inside
  // the engine. Shed requests are accounted by the engine so they show up
  // next to served ones.
  if (draining_.load(std::memory_order_relaxed)) {
    util::Status status = util::Status::Unavailable("server is draining");
    engine->RecordRejection(options, status);
    HttpResponse response = ErrorResponse(status);
    response.headers.emplace_back(
        "Retry-After", std::to_string(options_.retry_after_drain_s));
    return response;
  }
  uint32_t admitted = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (admitted >= options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    util::Status status = util::Status::ResourceExhausted(
        "over capacity: " + std::to_string(options_.max_inflight) +
        " queries already in flight");
    engine->RecordRejection(options, status);
    HttpResponse response = ErrorResponse(status);
    response.headers.emplace_back(
        "Retry-After", std::to_string(options_.retry_after_shed_s));
    return response;
  }

  core::QueryRequest query;
  query.options = options;
  if (timeout_ms > 0) query.context.set_timeout_ms(timeout_ms);
  if (max_memory_mb > 0) {
    query.context.set_byte_budget(max_memory_mb * 1024 * 1024);
  }
  // The document never renders the dominator array; skip materializing it.
  query.include_dominators = false;

  HttpResponse response;
  uint64_t epoch = 0;
  std::optional<core::SnapshotInfo> provenance;
  {
    std::lock_guard<std::mutex> lock(serving->mu);
    core::QueryResponse result;
    for (uint64_t i = 0; i < repeat; ++i) {
      engine->Execute(query, &result);
      if (!result.ok()) break;
    }
    if (!result.ok()) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      return ErrorResponse(result.status);
    }
    core::SkylineDocOptions doc;
    doc.algorithm = algo;
    doc.engine = true;
    doc.repeat = repeat;
    doc.include_engine_docs = stats != 0;
    response.body =
        core::SkylineDocToJson(engine->graph(), result.result, doc, engine) +
        "\n";
    // Read under the same lock the body was computed under: mutations also
    // serialize on the cell mutex, so the epoch header always names the
    // exact epoch this response was computed against.
    epoch = engine->epoch();
    provenance = engine->EffectiveSnapshotInfo();
  }
  // Provenance rides in a header, never the body: the body stays
  // byte-identical to the CLI's --engine --json output, and concurrency
  // tests match each response to the snapshot that produced it.
  if (provenance.has_value()) {
    response.headers.emplace_back("X-Nsky-Snapshot", provenance->id);
  }
  response.headers.emplace_back("X-Nsky-Epoch", std::to_string(epoch));
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  return response;
}

HttpResponse SkylineService::HandleMutate(const HttpRequest& request) {
  // Parse and validate the whole batch before touching the engine: a
  // malformed document mutates nothing.
  std::string parse_error;
  std::optional<util::JsonValue> doc =
      util::JsonParse(request.body, &parse_error);
  if (!doc.has_value()) {
    return ErrorResponse(
        util::Status::InvalidArgument("mutation body: " + parse_error));
  }
  if (!doc->is_object()) {
    return ErrorResponse(util::Status::InvalidArgument(
        "mutation body must be a JSON object with an 'updates' array"));
  }
  const util::JsonValue* updates_value = doc->Find("updates");
  if (updates_value == nullptr || !updates_value->is_array()) {
    return ErrorResponse(util::Status::InvalidArgument(
        "mutation body requires an 'updates' array"));
  }
  std::vector<graph::EdgeUpdate> updates;
  updates.reserve(updates_value->array.size());
  for (size_t i = 0; i < updates_value->array.size(); ++i) {
    const util::JsonValue& entry = updates_value->array[i];
    const std::string where = "updates[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return ErrorResponse(
          util::Status::InvalidArgument(where + " must be an object"));
    }
    graph::EdgeUpdate update;
    for (const char* key : {"u", "v"}) {
      const util::JsonValue* endpoint = entry.Find(key);
      if (endpoint == nullptr || !endpoint->is_number() ||
          endpoint->number < 0 ||
          endpoint->number != static_cast<double>(
                                  static_cast<uint64_t>(endpoint->number)) ||
          endpoint->number >= 4294967296.0) {
        return ErrorResponse(util::Status::InvalidArgument(
            where + "." + key + " must be an integer vertex id in [0, 2^32)"));
      }
      const graph::VertexId id =
          static_cast<graph::VertexId>(endpoint->number);
      if (key[0] == 'u') {
        update.u = id;
      } else {
        update.v = id;
      }
    }
    const util::JsonValue* op = entry.Find("op");
    if (op == nullptr || !op->is_string() ||
        (op->str != "insert" && op->str != "delete")) {
      return ErrorResponse(util::Status::InvalidArgument(
          where + ".op must be \"insert\" or \"delete\""));
    }
    update.insert = op->str == "insert";
    updates.push_back(update);
  }

  if (draining_.load(std::memory_order_relaxed)) {
    util::Status status = util::Status::Unavailable("server is draining");
    HttpResponse response = ErrorResponse(status);
    response.headers.emplace_back(
        "Retry-After", std::to_string(options_.retry_after_drain_s));
    return response;
  }

  // Pin the serving cell and take the engine's turn: the mutation and any
  // concurrent query serialize on the same mutex, so every query response
  // is computed against exactly one epoch.
  std::shared_ptr<ServingEngine> serving = Serving();
  core::Engine::MutationResult outcome;
  uint64_t vertices = 0;
  uint64_t edges = 0;
  {
    std::lock_guard<std::mutex> lock(serving->mu);
    outcome = serving->engine->ApplyUpdates(updates);
    vertices = serving->engine->graph().NumVertices();
    edges = serving->engine->graph().NumEdges();
  }

  util::JsonWriter w;
  w.BeginObject();
  w.KV("schema", "nsky.mutate.v1");
  w.KV("command", "mutate");
  w.KV("applied", static_cast<uint64_t>(outcome.applied));
  w.KV("skipped", static_cast<uint64_t>(outcome.skipped));
  w.KV("epoch", outcome.epoch);
  w.KV("dirty_vertices", outcome.dirty_vertices);
  w.KV("repaired", outcome.repaired);
  w.KV("bulk_solve", outcome.bulk_solve);
  w.Key("graph");
  w.BeginObject();
  w.KV("vertices", vertices);
  w.KV("edges", edges);
  w.EndObject();
  w.EndObject();
  HttpResponse response;
  response.body = std::move(w).Take() + "\n";
  response.headers.emplace_back("X-Nsky-Epoch",
                                std::to_string(outcome.epoch));
  return response;
}

HttpResponse SkylineService::HandleEngineStats() {
  HttpResponse response;
  std::shared_ptr<ServingEngine> serving = Serving();
  core::EngineStats stats;
  {
    // StatsSnapshot reads the same non-atomic counters Execute writes, so
    // it takes its turn on the engine like a query does.
    std::lock_guard<std::mutex> lock(serving->mu);
    stats = serving->engine->StatsSnapshot();
  }
  StampLifecycle(&stats);
  response.body = core::EngineStatsToJson(stats) + "\n";
  return response;
}

HttpResponse SkylineService::HandleQueries(const HttpRequest& request) {
  uint64_t max = core::FlightRecorder::kDefaultCapacity;
  std::string error;
  if (!ReadUintParam(request, "max", &max, &error)) {
    return ErrorResponse(util::Status::InvalidArgument(error));
  }
  HttpResponse response;
  // The flight recorder is safe against concurrent writers; no lock.
  std::shared_ptr<ServingEngine> serving = Serving();
  response.body = serving->engine->RecentQueriesJson(max) + "\n";
  return response;
}

HttpResponse SkylineService::HandleMetrics() {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  std::string body =
      util::metrics::SnapshotToPrometheus(util::metrics::Snap());
  std::shared_ptr<ServingEngine> serving = Serving();
  core::EngineStats stats;
  {
    std::lock_guard<std::mutex> lock(serving->mu);
    stats = serving->engine->StatsSnapshot();
  }
  StampLifecycle(&stats);
  body += core::EngineStatsToPrometheus(stats);
  response.body = std::move(body);
  return response;
}

}  // namespace nsky::server
