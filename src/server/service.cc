#include "server/service.h"

#include <utility>

#include "core/engine_stats.h"
#include "core/flight_recorder.h"
#include "core/skyline_json.h"
#include "core/solver.h"
#include "util/execution_context.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/prom_export.h"
#include "util/strings.h"

namespace nsky::server {

namespace {

// Reads an optional non-negative integer query parameter. Returns false
// (with a message) on malformed values; leaves *out untouched when absent.
bool ReadUintParam(const HttpRequest& request, const char* name,
                   uint64_t* out, std::string* error) {
  auto it = request.query.find(name);
  if (it == request.query.end()) return true;
  if (!util::ParseUint64(it->second, out)) {
    *error = std::string("query parameter '") + name +
             "' must be a non-negative integer, got '" + it->second + "'";
    return false;
  }
  return true;
}

}  // namespace

SkylineService::SkylineService(graph::Graph g, ServiceOptions options)
    : options_(options),
      engine_(std::make_unique<core::Engine>(std::move(g))) {}

SkylineService::SkylineService(std::unique_ptr<core::Engine> engine,
                               ServiceOptions options)
    : options_(options), engine_(std::move(engine)) {
  NSKY_CHECK_MSG(engine_ != nullptr, "SkylineService requires an engine");
}

HttpResponse SkylineService::ErrorResponse(const util::Status& status) {
  return ErrorResponseWithHttpStatus(util::HttpStatusFor(status.code()),
                                     status);
}

HttpResponse SkylineService::ErrorResponseWithHttpStatus(
    int http_status, const util::Status& status) {
  // Same shape as the CLI's failure document (tools/cli.cc EmitFailure):
  // scripts can parse one schema no matter which front end produced it.
  util::JsonWriter w;
  w.BeginObject();
  w.KV("schema", "nsky.error.v1");
  w.KV("command", "serve");
  w.KV("code", util::StatusCodeName(status.code()));
  w.KV("message", status.message());
  w.KV("exit_code",
       static_cast<uint64_t>(util::CliExitCode(status.code())));
  w.EndObject();
  HttpResponse response;
  response.status = http_status;
  response.body = std::move(w).Take() + "\n";
  return response;
}

HttpResponse SkylineService::Handle(const HttpRequest& request) {
  if (request.method != "GET") {
    return ErrorResponseWithHttpStatus(
        405, util::Status::InvalidArgument("method '" + request.method +
                                           "' is not supported; use GET"));
  }
  if (request.path == "/v1/skyline") return HandleSkyline(request);
  if (request.path == "/v1/engine_stats") return HandleEngineStats();
  if (request.path == "/v1/queries") return HandleQueries(request);
  if (request.path == "/v1/metrics") return HandleMetrics();
  if (request.path == "/healthz") {
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = "ok\n";
    // Snapshot-restored replicas advertise their artifact id so rollout
    // tooling can confirm which snapshot a fleet member is serving from.
    if (const auto& info = engine_->snapshot_info(); info.has_value()) {
      response.body += "snapshot " + info->id + "\n";
    }
    return response;
  }
  return ErrorResponse(
      util::Status::NotFound("no route for '" + request.path + "'"));
}

HttpResponse SkylineService::HandleSkyline(const HttpRequest& request) {
  // Parse everything before admission: a malformed request must not count
  // against capacity.
  core::SolverOptions options;
  std::string algo = "filter-refine";
  if (auto it = request.query.find("algo"); it != request.query.end()) {
    algo = it->second;
  }
  if (auto parsed = core::ParseAlgorithm(algo)) {
    options.algorithm = *parsed;
  } else {
    return ErrorResponse(
        util::Status::InvalidArgument("unknown algo '" + algo + "'"));
  }
  uint64_t threads = 1;
  uint64_t repeat = 1;
  uint64_t timeout_ms = options_.default_timeout_ms;
  uint64_t max_memory_mb = options_.default_max_memory_mb;
  uint64_t stats = 0;
  std::string error;
  if (!ReadUintParam(request, "threads", &threads, &error) ||
      !ReadUintParam(request, "repeat", &repeat, &error) ||
      !ReadUintParam(request, "timeout_ms", &timeout_ms, &error) ||
      !ReadUintParam(request, "max_memory_mb", &max_memory_mb, &error) ||
      !ReadUintParam(request, "stats", &stats, &error)) {
    return ErrorResponse(util::Status::InvalidArgument(error));
  }
  if (threads > 4096) {
    return ErrorResponse(
        util::Status::InvalidArgument("threads must be in [0, 4096]"));
  }
  if (repeat == 0) repeat = 1;
  options.threads = static_cast<uint32_t>(threads);

  // Admission control. Deterministic by construction: the decision depends
  // only on how many queries are admitted right now, never on timing inside
  // the engine. Shed requests are accounted by the engine so they show up
  // next to served ones.
  if (draining_.load(std::memory_order_relaxed)) {
    util::Status status = util::Status::Unavailable("server is draining");
    engine_->RecordRejection(options, status);
    return ErrorResponse(status);
  }
  uint32_t admitted = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (admitted >= options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    util::Status status = util::Status::ResourceExhausted(
        "over capacity: " + std::to_string(options_.max_inflight) +
        " queries already in flight");
    engine_->RecordRejection(options, status);
    return ErrorResponse(status);
  }

  core::QueryRequest query;
  query.options = options;
  if (timeout_ms > 0) query.context.set_timeout_ms(timeout_ms);
  if (max_memory_mb > 0) {
    query.context.set_byte_budget(max_memory_mb * 1024 * 1024);
  }
  // The document never renders the dominator array; skip materializing it.
  query.include_dominators = false;

  HttpResponse response;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    core::QueryResponse result;
    for (uint64_t i = 0; i < repeat; ++i) {
      engine_->Execute(query, &result);
      if (!result.ok()) break;
    }
    if (!result.ok()) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      return ErrorResponse(result.status);
    }
    core::SkylineDocOptions doc;
    doc.algorithm = algo;
    doc.engine = true;
    doc.repeat = repeat;
    doc.include_engine_docs = stats != 0;
    response.body =
        core::SkylineDocToJson(engine_->graph(), result.result, doc,
                               engine_.get()) +
        "\n";
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  return response;
}

HttpResponse SkylineService::HandleEngineStats() {
  HttpResponse response;
  // StatsSnapshot reads the same non-atomic counters Execute writes, so it
  // takes its turn on the engine like a query does.
  std::lock_guard<std::mutex> lock(engine_mu_);
  response.body = engine_->StatsJson() + "\n";
  return response;
}

HttpResponse SkylineService::HandleQueries(const HttpRequest& request) {
  uint64_t max = core::FlightRecorder::kDefaultCapacity;
  std::string error;
  if (!ReadUintParam(request, "max", &max, &error)) {
    return ErrorResponse(util::Status::InvalidArgument(error));
  }
  HttpResponse response;
  // The flight recorder is safe against concurrent writers; no lock.
  response.body = engine_->RecentQueriesJson(max) + "\n";
  return response;
}

HttpResponse SkylineService::HandleMetrics() {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  std::string body =
      util::metrics::SnapshotToPrometheus(util::metrics::Snap());
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    body += core::EngineStatsToPrometheus(engine_->StatsSnapshot());
  }
  response.body = std::move(body);
  return response;
}

}  // namespace nsky::server
