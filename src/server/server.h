// Server: the TCP/HTTP 1.1 transport of the nsky serving stack.
//
// Dependency-free (POSIX sockets + poll), loopback-oriented, and built on
// the same util::ThreadPool the solvers use: Serve() runs one blocking
// ParallelFor whose chunk 0 -- which the pool always executes on the
// calling thread -- is the accept loop, and whose remaining chunks are the
// session workers. There is no dynamic thread creation anywhere: the worker
// count is fixed at construction, accepted connections queue between the
// acceptor and the workers, and each worker owns one connection at a time
// for its whole keep-alive lifetime.
//
//   SkylineService service(std::move(graph), service_options);
//   Server server(&service, options);
//   if (auto s = server.Listen(); !s.ok()) { ... }   // port() now bound
//   server.Serve();                                   // blocks until stop
//
// Stopping: Shutdown() (any thread) flips the stop flag and flips the
// service into draining; the acceptor stops accepting, queued connections
// are still answered (with 503 for queries, by the service), and Serve()
// returns once every worker has finished its connection. `max_requests`
// (ServerOptions) self-arms Shutdown() after N requests have been served --
// how tests and the check.sh smoke run the server without signals.
//
// Slow clients: a connection that stays silent for `idle_timeout_ms` is
// closed; if it had sent part of a request, it is first answered with 408
// and the nsky.error.v1 body (an idle keep-alive connection just closes).
//
// Hostile-environment hardening: SIGPIPE is ignored on the serve path (a
// peer resetting mid-response surfaces as a send error, never a signal),
// EINTR is retried on poll/accept/recv/send, and accept() backs off briefly
// on descriptor exhaustion (EMFILE/ENFILE) instead of spinning. The
// `server.accept_fail`, `server.eintr` and `server.partial_write` fault
// sites (util/fault_injection.h) drive these paths deterministically in the
// chaos suite.
#ifndef NSKY_SERVER_SERVER_H_
#define NSKY_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "server/service.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace nsky::server {

struct ServerOptions {
  // 0 binds an ephemeral port; read the result from port() after Listen().
  uint16_t port = 0;
  // Session workers (concurrent connections served); the acceptor runs on
  // the Serve() caller's thread on top of these.
  uint32_t session_threads = 4;
  // Stop after this many HTTP requests have been served (0 = run until
  // Shutdown()).
  uint64_t max_requests = 0;
  // Close connections idle longer than this mid-session; 0 disables.
  uint64_t idle_timeout_ms = 5000;
};

class Server {
 public:
  // The service must outlive the server.
  Server(SkylineService* service, ServerOptions options);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  // Binds and listens on 127.0.0.1; after OK, port() is the bound port.
  util::Status Listen();
  uint16_t port() const { return port_; }

  // Blocks serving until Shutdown() (or max_requests). Call Listen() first.
  void Serve();

  // Thread-safe, idempotent. Makes Serve() return.
  void Shutdown();

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void SessionLoop();
  void HandleConnection(int fd);
  // False once the client is gone (reset / short write).
  bool WriteAll(int fd, std::string_view data);

  SkylineService* service_;
  ServerOptions options_;
  util::ThreadPool pool_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_served_{0};

  std::mutex mu_;
  std::condition_variable conn_ready_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
};

}  // namespace nsky::server

#endif  // NSKY_SERVER_SERVER_H_
