#include "server/http.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace nsky::server {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Percent-decoding; '+' means space in query strings. Malformed escapes are
// kept verbatim (the route layer rejects values it cannot parse anyway).
std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && HexDigit(s[i + 1]) >= 0 &&
               HexDigit(s[i + 2]) >= 0) {
      out.push_back(
          static_cast<char>(HexDigit(s[i + 1]) * 16 + HexDigit(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

void SplitTarget(std::string_view target, std::string* path,
                 std::map<std::string, std::string>* query) {
  const size_t qmark = target.find('?');
  *path = std::string(target.substr(0, qmark));
  query->clear();
  if (qmark == std::string_view::npos) return;
  std::string_view rest = target.substr(qmark + 1);
  while (!rest.empty()) {
    const size_t amp = rest.find('&');
    std::string_view pair = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      (*query)[PercentDecode(pair)] = "";
    } else {
      (*query)[PercentDecode(pair.substr(0, eq))] =
          PercentDecode(pair.substr(eq + 1));
    }
  }
}

HttpParser::State HttpParser::Fail(int status, std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(message);
  return state_;
}

HttpParser::State HttpParser::Feed(std::string_view data) {
  if (state_ != State::kNeedMore) return state_;
  buffer_.append(data);
  return TryParse();
}

HttpParser::State HttpParser::TryParse() {
  const size_t head_end = buffer_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (buffer_.size() > kMaxHeadBytes) {
      return Fail(400, "request head exceeds " +
                           std::to_string(kMaxHeadBytes) + " bytes");
    }
    return state_;
  }
  if (head_end > kMaxHeadBytes) {
    return Fail(400, "request head exceeds " + std::to_string(kMaxHeadBytes) +
                         " bytes");
  }

  // Request line.
  std::string_view head(buffer_.data(), head_end);
  const size_t line_end = head.find("\r\n");
  std::string_view request_line = head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Fail(400, "malformed request line");
  }
  request_.method = std::string(request_line.substr(0, sp1));
  request_.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(request_line.substr(sp2 + 1));
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    return Fail(400, "malformed request line");
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    return Fail(400, "unsupported HTTP version '" + request_.version + "'");
  }

  // Headers: "name: value" lines, names lowercased.
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view()
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    const size_t eol = rest.find("\r\n");
    std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 2);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Fail(400, "malformed header line");
    }
    request_.headers[ToLower(util::Trim(line.substr(0, colon)))] =
        std::string(util::Trim(line.substr(colon + 1)));
  }

  // Body: Content-Length only (no chunked encoding).
  if (request_.headers.count("transfer-encoding") > 0) {
    return Fail(400, "transfer-encoding is not supported");
  }
  uint64_t content_length = 0;
  if (auto it = request_.headers.find("content-length");
      it != request_.headers.end()) {
    if (!util::ParseUint64(it->second, &content_length)) {
      return Fail(400, "malformed content-length");
    }
    if (content_length > kMaxBodyBytes) {
      return Fail(413, "request body exceeds " +
                           std::to_string(kMaxBodyBytes) + " bytes");
    }
  }
  const size_t body_begin = head_end + 4;
  if (buffer_.size() - body_begin < content_length) return state_;
  request_.body = buffer_.substr(body_begin, content_length);

  SplitTarget(request_.target, &request_.path, &request_.query);

  const std::string connection =
      ToLower(request_.headers.count("connection") > 0
                  ? request_.headers.at("connection")
                  : "");
  request_.keep_alive = request_.version == "HTTP/1.1"
                            ? connection != "close"
                            : connection == "keep-alive";

  // Keep pipelined bytes for the next Reset()+Feed() round.
  buffer_.erase(0, body_begin + content_length);
  state_ = State::kDone;
  return state_;
}

void HttpParser::Reset() {
  state_ = State::kNeedMore;
  request_ = HttpRequest{};
  error_.clear();
  error_status_ = 400;
  if (!buffer_.empty()) TryParse();
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive) {
  return SerializeResponse(status, content_type, body, keep_alive, {});
}

std::string SerializeResponse(
    int status, std::string_view content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out;
  out.reserve(body.size() + 128 + extra_headers.size() * 32);
  out.append("HTTP/1.1 ");
  out.append(std::to_string(status));
  out.append(" ");
  out.append(HttpReasonPhrase(status));
  out.append("\r\nContent-Type: ");
  out.append(content_type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(body.size()));
  out.append("\r\nConnection: ");
  out.append(keep_alive ? "keep-alive" : "close");
  for (const auto& [name, value] : extra_headers) {
    out.append("\r\n");
    out.append(name);
    out.append(": ");
    out.append(value);
  }
  out.append("\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace nsky::server
