#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <string_view>
#include <thread>

#include "server/http.h"
#include "util/fault_injection.h"

namespace nsky::server {

namespace {

// Acceptor poll granularity: the latency bound on noticing Shutdown().
constexpr int kAcceptPollMs = 20;

// Backoff when accept() reports descriptor exhaustion: the pending
// connection stays in the listen backlog, so waiting beats spinning.
constexpr auto kAcceptBackoff = std::chrono::milliseconds(1);

}  // namespace

Server::Server(SkylineService* service, ServerOptions options)
    : service_(service),
      options_(options),
      // +1: chunk 0 of the Serve() ParallelFor is the acceptor, which the
      // pool runs on the calling thread; the session workers need their own
      // threads on top of it.
      pool_(std::max<uint32_t>(options.session_threads, 1) + 1) {}

Server::~Server() {
  Shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

util::Status Server::Listen() {
  // A peer that resets mid-response must surface as an EPIPE/ECONNRESET
  // error on the worker, never as a process-killing signal. send() already
  // passes MSG_NOSIGNAL; this covers every other write path.
  std::signal(SIGPIPE, SIG_IGN);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return util::Status::IoError(std::string("bind 127.0.0.1:") +
                                 std::to_string(options_.port) + ": " +
                                 std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0) {
    return util::Status::IoError(std::string("listen: ") +
                                 std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return util::Status::IoError(std::string("getsockname: ") +
                                 std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  return util::Status::Ok();
}

void Server::Serve() {
  const uint64_t lanes =
      static_cast<uint64_t>(std::max<uint32_t>(options_.session_threads, 1)) +
      1;
  // n == num_threads(): every lane is exactly one chunk, so lane 0 (the
  // acceptor) runs on this thread and each session worker owns one pool
  // thread for the whole serve lifetime.
  pool_.ParallelFor(lanes, [this](unsigned, uint64_t begin, uint64_t end) {
    for (uint64_t lane = begin; lane < end; ++lane) {
      if (lane == 0) {
        AcceptLoop();
      } else {
        SessionLoop();
      }
    }
  });
}

void Server::Shutdown() {
  if (stop_.exchange(true)) return;
  if (service_ != nullptr) service_->set_draining(true);
  std::lock_guard<std::mutex> lock(mu_);
  conn_ready_.notify_all();
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop_
    if (util::FaultInjector::Enabled() &&
        util::FaultInjector::ShouldFailBurst("server.accept_fail")) {
      // Injected EMFILE: exercise the same backoff as the real exhaustion
      // path below. Burst semantics, so the loop converges.
      std::this_thread::sleep_for(kAcceptBackoff);
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(kAcceptBackoff);
      }
      continue;  // EINTR / ECONNABORTED / exhaustion: re-poll and retry
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(fd);
    }
    conn_ready_.notify_one();
  }
  // Wake every worker so they can observe stop_ and drain the queue.
  std::lock_guard<std::mutex> lock(mu_);
  conn_ready_.notify_all();
}

void Server::SessionLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      conn_ready_.wait(lock, [this] {
        return !pending_.empty() || stop_.load(std::memory_order_relaxed);
      });
      if (!pending_.empty()) {
        fd = pending_.front();
        pending_.pop_front();
      } else {
        return;  // stopped and drained
      }
    }
    HandleConnection(fd);
  }
}

bool Server::WriteAll(int fd, std::string_view data) {
  const bool faults = util::FaultInjector::Enabled();
  // server.partial_write caps each send() at N bytes, forcing the
  // continuation loop below to carry the response across many syscalls.
  const uint64_t cap =
      faults ? util::FaultInjector::Value("server.partial_write") : 0;
  size_t written = 0;
  while (written < data.size()) {
    size_t chunk = data.size() - written;
    if (cap > 0 && chunk > cap) chunk = static_cast<size_t>(cap);
    ssize_t n;
    if (faults && util::FaultInjector::ShouldFailBurst("server.eintr")) {
      n = -1;
      errno = EINTR;
    } else {
      n = ::send(fd, data.data() + written, chunk, MSG_NOSIGNAL);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

void Server::HandleConnection(int fd) {
  HttpParser parser;
  char buf[8192];
  const int read_timeout_ms =
      options_.idle_timeout_ms == 0
          ? -1
          : static_cast<int>(options_.idle_timeout_ms);
  bool keep_open = true;
  while (keep_open) {
    // Read until one full request is parsed (or the client goes away).
    while (parser.state() == HttpParser::State::kNeedMore) {
      const bool faults = util::FaultInjector::Enabled();
      int ready;
      pollfd pfd{fd, POLLIN, 0};
      if (faults && util::FaultInjector::ShouldFailBurst("server.eintr")) {
        ready = -1;
        errno = EINTR;
      } else {
        ready = ::poll(&pfd, 1, read_timeout_ms);
      }
      if (ready == 0) {
        // Slow client. Mid-request it earns a 408; an idle keep-alive
        // connection is just closed.
        if (parser.mid_request()) {
          WriteAll(fd, SerializeResponse(
                           408, "application/json",
                           SkylineService::ErrorResponse(
                               util::Status::DeadlineExceeded(
                                   "timed out waiting for request bytes"))
                               .body,
                           false));
        }
        keep_open = false;
        break;
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        keep_open = false;
        break;
      }
      ssize_t n;
      if (faults && util::FaultInjector::ShouldFailBurst("server.eintr")) {
        n = -1;
        errno = EINTR;
      } else {
        n = ::recv(fd, buf, sizeof(buf), 0);
      }
      if (n < 0 && errno == EINTR) continue;  // signal: retry the read
      if (n <= 0) {  // client closed or reset
        keep_open = false;
        break;
      }
      parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
    if (!keep_open) break;

    if (parser.state() == HttpParser::State::kError) {
      const HttpResponse error = SkylineService::ErrorResponse(
          util::Status::InvalidArgument(parser.error()));
      WriteAll(fd, SerializeResponse(parser.error_status(),
                                     error.content_type, error.body, false));
      break;
    }

    const HttpRequest& request = parser.request();
    const HttpResponse response = service_->Handle(request);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    const bool keep_alive =
        request.keep_alive && !stop_.load(std::memory_order_relaxed);
    if (!WriteAll(fd, SerializeResponse(response.status,
                                        response.content_type, response.body,
                                        keep_alive, response.headers))) {
      break;
    }
    if (options_.max_requests > 0 &&
        requests_served_.load(std::memory_order_relaxed) >=
            options_.max_requests) {
      Shutdown();
    }
    if (!keep_alive) break;
    parser.Reset();
  }
  ::close(fd);
}

}  // namespace nsky::server
