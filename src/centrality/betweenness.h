// Betweenness centrality and group betweenness maximization -- the
// extension the paper conjectures in Sec. IV-D ("our neighborhood skyline
// based pruning technique can also be used to handle ... group betweenness
// maximization. We leave this problem as an interesting future work.").
//
// We implement:
//  * Brandes' exact per-vertex betweenness (unweighted graphs);
//  * exact group betweenness GB(S) = sum over pairs {s,t} disjoint from S
//    of the fraction of shortest s-t paths that pass through S (computed
//    per source as 1 - sigma'_st / sigma_st, where sigma' counts paths of
//    the original length avoiding S);
//  * the greedy maximizer with optional skyline pruning (NeiSkyGB).
// GB evaluation is Theta(n m); the greedy is for small and mid graphs --
// exactly the regime where the conjecture can be tested. The accompanying
// tests probe empirically whether the max marginal gain is attained on the
// skyline, mirroring the closeness/harmonic analysis.
#ifndef NSKY_CENTRALITY_BETWEENNESS_H_
#define NSKY_CENTRALITY_BETWEENNESS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace nsky::core {
class Engine;
}  // namespace nsky::core

namespace nsky::centrality {

using graph::Graph;
using graph::VertexId;

// Exact betweenness of every vertex (Brandes). Each unordered pair {s, t}
// contributes its path fractions once (i.e., values are the undirected
// convention: sum over s < t).
std::vector<double> BrandesBetweenness(const Graph& g);

// Exact group betweenness of S: sum over unordered pairs {s, t} with
// s, t not in S of (fraction of shortest s-t paths meeting S). Pairs that
// are disconnected contribute 0; pairs whose every shortest path meets S
// contribute 1.
double GroupBetweenness(const Graph& g, std::span<const VertexId> group);

struct GroupBetweennessResult {
  std::vector<VertexId> group;
  double score = 0.0;
  uint64_t gain_calls = 0;
  uint64_t pool_size = 0;
  double seconds = 0.0;
};

// Greedy group-betweenness maximization over `pool` (empty pool = all
// vertices). Each round evaluates GB(S + u) exactly for every pool member.
GroupBetweennessResult GreedyGroupBetweenness(const Graph& g, uint32_t k,
                                              std::vector<VertexId> pool = {});

// Skyline-pruned variant (pool = neighborhood skyline).
GroupBetweennessResult NeiSkyGB(const Graph& g, uint32_t k);

// Engine-seeded variant: the pool comes from the engine's shared skyline
// cache, fixing the historical duplicated solve when closeness/harmonic
// greedy and group betweenness run on the same graph.
GroupBetweennessResult NeiSkyGB(core::Engine& engine, uint32_t k);

}  // namespace nsky::centrality

#endif  // NSKY_CENTRALITY_BETWEENNESS_H_
