#include "centrality/group_centrality.h"

#include "centrality/bfs.h"
#include "centrality/centrality.h"

namespace nsky::centrality {

double GroupClosenessFromDistances(const std::vector<uint32_t>& dist,
                                   const std::vector<uint8_t>& in_group,
                                   uint64_t cap) {
  double total = 0.0;
  bool any_outside = false;
  for (size_t v = 0; v < dist.size(); ++v) {
    if (in_group[v]) continue;
    any_outside = true;
    total += static_cast<double>(CappedDistance(dist[v], cap));
  }
  if (!any_outside || total == 0.0) return 0.0;
  return static_cast<double>(dist.size()) / total;
}

double GroupHarmonicFromDistances(const std::vector<uint32_t>& dist,
                                  const std::vector<uint8_t>& in_group,
                                  uint64_t cap) {
  double total = 0.0;
  for (size_t v = 0; v < dist.size(); ++v) {
    if (in_group[v]) continue;
    total += 1.0 / static_cast<double>(CappedDistance(dist[v], cap));
  }
  return total;
}

namespace {

void GroupDistances(const Graph& g, std::span<const VertexId> group,
                    std::vector<uint32_t>* dist,
                    std::vector<uint8_t>* in_group) {
  MultiSourceBfs(g, group, dist);
  in_group->assign(g.NumVertices(), 0);
  for (VertexId s : group) (*in_group)[s] = 1;
}

}  // namespace

double GroupCloseness(const Graph& g, std::span<const VertexId> group) {
  if (group.empty()) return 0.0;
  std::vector<uint32_t> dist;
  std::vector<uint8_t> in_group;
  GroupDistances(g, group, &dist, &in_group);
  return GroupClosenessFromDistances(dist, in_group, g.NumVertices());
}

double GroupHarmonic(const Graph& g, std::span<const VertexId> group) {
  if (group.empty()) return 0.0;
  std::vector<uint32_t> dist;
  std::vector<uint8_t> in_group;
  GroupDistances(g, group, &dist, &in_group);
  return GroupHarmonicFromDistances(dist, in_group, g.NumVertices());
}

}  // namespace nsky::centrality
