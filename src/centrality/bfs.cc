#include "centrality/bfs.h"

#include <algorithm>

#include "util/logging.h"

namespace nsky::centrality {

void BfsFrom(const Graph& g, VertexId source, std::vector<uint32_t>* dist) {
  const VertexId n = g.NumVertices();
  NSKY_CHECK(source < n);
  dist->assign(n, kUnreachable);
  std::vector<VertexId> frontier = {source};
  (*dist)[source] = 0;
  std::vector<VertexId> next;
  uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : g.Neighbors(u)) {
        if ((*dist)[v] == kUnreachable) {
          (*dist)[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
}

void MultiSourceBfs(const Graph& g, std::span<const VertexId> sources,
                    std::vector<uint32_t>* dist) {
  const VertexId n = g.NumVertices();
  dist->assign(n, kUnreachable);
  std::vector<VertexId> frontier;
  for (VertexId s : sources) {
    NSKY_CHECK(s < n);
    if ((*dist)[s] != 0) {
      (*dist)[s] = 0;
      frontier.push_back(s);
    }
  }
  std::vector<VertexId> next;
  uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : g.Neighbors(u)) {
        if ((*dist)[v] == kUnreachable) {
          (*dist)[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
}

void RelaxWithSource(const Graph& g, VertexId source,
                     std::vector<uint32_t>* dist) {
  NSKY_CHECK(source < g.NumVertices());
  NSKY_CHECK(dist->size() == g.NumVertices());
  if ((*dist)[source] == 0) return;
  (*dist)[source] = 0;
  std::vector<VertexId> frontier = {source};
  std::vector<VertexId> next;
  uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : g.Neighbors(u)) {
        if (level < (*dist)[v]) {
          (*dist)[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
}

}  // namespace nsky::centrality
