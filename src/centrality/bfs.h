// Breadth-first-search engines for unweighted shortest-path distances.
//
// Distance conventions shared by the whole centrality layer: distances are
// uint32_t hop counts; unreachable vertices get kUnreachable. The centrality
// definitions cap unreachable distances at n (see group_centrality.h).
#ifndef NSKY_CENTRALITY_BFS_H_
#define NSKY_CENTRALITY_BFS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace nsky::centrality {

using graph::Graph;
using graph::VertexId;

inline constexpr uint32_t kUnreachable = static_cast<uint32_t>(-1);

// Fills `dist` (resized to n) with hop distances from `source`.
void BfsFrom(const Graph& g, VertexId source, std::vector<uint32_t>* dist);

// Fills `dist` with hop distances from the nearest vertex of `sources`,
// i.e., d(v, S). Empty `sources` makes every vertex unreachable.
void MultiSourceBfs(const Graph& g, std::span<const VertexId> sources,
                    std::vector<uint32_t>* dist);

// Relaxes an existing distance field with a new source:
// dist[v] = min(dist[v], d(source, v)). A pruned BFS that never expands
// beyond vertices it fails to improve, so the cost is proportional to the
// improved region (the engine behind the greedy marginal-gain evaluation).
void RelaxWithSource(const Graph& g, VertexId source,
                     std::vector<uint32_t>* dist);

}  // namespace nsky::centrality

#endif  // NSKY_CENTRALITY_BFS_H_
