#include "centrality/centrality.h"

#include "centrality/bfs.h"

namespace nsky::centrality {

namespace {

// Shared single-vertex evaluation: one BFS, then fold distances.
template <typename Fold>
double EvaluateFrom(const Graph& g, VertexId u, Fold fold) {
  std::vector<uint32_t> dist;
  BfsFrom(g, u, &dist);
  const uint64_t cap = g.NumVertices();
  double acc = 0.0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (v == u) continue;
    acc += fold(CappedDistance(dist[v], cap));
  }
  return acc;
}

}  // namespace

double VertexCloseness(const Graph& g, VertexId u) {
  if (g.NumVertices() <= 1) return 0.0;
  double total = EvaluateFrom(
      g, u, [](uint64_t d) { return static_cast<double>(d); });
  return total == 0.0 ? 0.0 : static_cast<double>(g.NumVertices()) / total;
}

double VertexHarmonic(const Graph& g, VertexId u) {
  return EvaluateFrom(g, u,
                      [](uint64_t d) { return 1.0 / static_cast<double>(d); });
}

std::vector<double> AllCloseness(const Graph& g) {
  std::vector<double> out(g.NumVertices());
  for (VertexId u = 0; u < g.NumVertices(); ++u) out[u] = VertexCloseness(g, u);
  return out;
}

std::vector<double> AllHarmonic(const Graph& g) {
  std::vector<double> out(g.NumVertices());
  for (VertexId u = 0; u < g.NumVertices(); ++u) out[u] = VertexHarmonic(g, u);
  return out;
}

}  // namespace nsky::centrality
