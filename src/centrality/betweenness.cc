#include "centrality/betweenness.h"

#include <algorithm>

#include "core/engine.h"
#include "core/solver.h"
#include "util/logging.h"
#include "util/timer.h"

namespace nsky::centrality {

std::vector<double> BrandesBetweenness(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<double> centrality(n, 0.0);
  std::vector<int64_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<VertexId> order;  // vertices in non-decreasing BFS distance
  order.reserve(n);

  for (VertexId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    dist[s] = 0;
    sigma[s] = 1.0;
    order.push_back(s);
    // BFS with path counting.
    for (size_t head = 0; head < order.size(); ++head) {
      VertexId v = order[head];
      for (VertexId w : g.Neighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          order.push_back(w);
        }
        if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
      }
    }
    // Dependency accumulation in reverse BFS order.
    for (size_t i = order.size(); i-- > 1;) {
      VertexId w = order[i];
      for (VertexId v : g.Neighbors(w)) {
        if (dist[v] == dist[w] - 1) {
          delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
      }
      centrality[w] += delta[w];
    }
  }
  // Each unordered pair was counted from both endpoints.
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

namespace {

// One source's contribution to GB(S): for every t not in S (t != s),
// 1 - sigma_avoiding(t) / sigma(t) where sigma_avoiding counts paths of the
// *original* shortest length that avoid S entirely. Runs one BFS in g and
// one path-count sweep that refuses to enter S.
double SourceContribution(const Graph& g, VertexId s,
                          const std::vector<uint8_t>& in_group,
                          std::vector<int64_t>& dist,
                          std::vector<double>& sigma,
                          std::vector<double>& sigma_avoid,
                          std::vector<VertexId>& order) {
  const VertexId n = g.NumVertices();
  std::fill(dist.begin(), dist.end(), -1);
  std::fill(sigma.begin(), sigma.end(), 0.0);
  std::fill(sigma_avoid.begin(), sigma_avoid.end(), 0.0);
  order.clear();
  dist[s] = 0;
  sigma[s] = 1.0;
  sigma_avoid[s] = 1.0;  // s itself is not in S (callers guarantee)
  order.push_back(s);
  for (size_t head = 0; head < order.size(); ++head) {
    VertexId v = order[head];
    for (VertexId w : g.Neighbors(v)) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        order.push_back(w);
      }
      if (dist[w] == dist[v] + 1) {
        sigma[w] += sigma[v];
        // Paths avoiding S never leave through a group member.
        if (!in_group[v] && !in_group[w]) sigma_avoid[w] += sigma_avoid[v];
      }
    }
  }
  double total = 0.0;
  for (VertexId t = 0; t < n; ++t) {
    if (t == s || in_group[t] || dist[t] < 0) continue;
    total += 1.0 - sigma_avoid[t] / sigma[t];
  }
  return total;
}

}  // namespace

double GroupBetweenness(const Graph& g, std::span<const VertexId> group) {
  const VertexId n = g.NumVertices();
  std::vector<uint8_t> in_group(n, 0);
  for (VertexId v : group) {
    NSKY_CHECK(v < n);
    in_group[v] = 1;
  }
  std::vector<int64_t> dist(n);
  std::vector<double> sigma(n), sigma_avoid(n);
  std::vector<VertexId> order;
  order.reserve(n);
  double total = 0.0;
  for (VertexId s = 0; s < n; ++s) {
    if (in_group[s]) continue;
    total += SourceContribution(g, s, in_group, dist, sigma, sigma_avoid,
                                order);
  }
  return total / 2.0;  // each unordered pair counted from both endpoints
}

GroupBetweennessResult GreedyGroupBetweenness(const Graph& g, uint32_t k,
                                              std::vector<VertexId> pool) {
  util::Timer timer;
  GroupBetweennessResult result;
  const VertexId n = g.NumVertices();
  if (pool.empty()) {
    pool.resize(n);
    for (VertexId u = 0; u < n; ++u) pool[u] = u;
  }
  result.pool_size = pool.size();
  k = std::min<uint32_t>(k, static_cast<uint32_t>(pool.size()));

  std::vector<uint8_t> in_group(n, 0);
  for (uint32_t round = 0; round < k; ++round) {
    double best_score = -1.0;
    VertexId best = graph::VertexId(-1);
    for (VertexId u : pool) {
      if (in_group[u]) continue;
      ++result.gain_calls;
      std::vector<VertexId> trial = result.group;
      trial.push_back(u);
      double score = GroupBetweenness(g, trial);
      if (best == graph::VertexId(-1) || score > best_score) {
        best_score = score;
        best = u;
      }
    }
    NSKY_CHECK(best != graph::VertexId(-1));
    in_group[best] = 1;
    result.group.push_back(best);
    result.score = best_score;
  }
  result.seconds = timer.Seconds();
  return result;
}

GroupBetweennessResult NeiSkyGB(const Graph& g, uint32_t k) {
  return GreedyGroupBetweenness(g, k, core::Solve(g).skyline);
}

GroupBetweennessResult NeiSkyGB(core::Engine& engine, uint32_t k) {
  // Shared pool: the engine's cached skyline, so running NeiSkyGB after
  // NeiSkyGC/GH (or any other consumer) on the same engine does not
  // recompute it.
  return GreedyGroupBetweenness(engine.graph(), k, engine.SkylineCache());
}

}  // namespace nsky::centrality
