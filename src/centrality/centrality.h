// Per-vertex closeness and harmonic centrality (Definitions 6 and 8).
//
// Distance convention: the paper assumes connected graphs; real datasets are
// not. We cap d(u, v) at n for unreachable pairs, a finite penalty that
// keeps C(u) = n / sum_v d(v, u) well defined and preserves the ranking on
// each component. Harmonic centrality uses the same cap, so an unreachable
// pair contributes 1/n (vanishing as n grows, consistent with the standard
// 1/inf = 0 convention in the large-graph limit).
#ifndef NSKY_CENTRALITY_CENTRALITY_H_
#define NSKY_CENTRALITY_CENTRALITY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace nsky::centrality {

using graph::Graph;
using graph::VertexId;

// The capped distance used in all centrality sums.
inline uint64_t CappedDistance(uint32_t dist, uint64_t cap) {
  return dist == static_cast<uint32_t>(-1) || dist > cap ? cap : dist;
}

// Closeness centrality C(u) = n / sum_{v != u} d(v, u) of one vertex.
double VertexCloseness(const Graph& g, VertexId u);

// Harmonic centrality H(u) = sum_{v != u} 1 / d(v, u) of one vertex.
double VertexHarmonic(const Graph& g, VertexId u);

// All-vertices variants (n BFS traversals; use on small graphs).
std::vector<double> AllCloseness(const Graph& g);
std::vector<double> AllHarmonic(const Graph& g);

}  // namespace nsky::centrality

#endif  // NSKY_CENTRALITY_CENTRALITY_H_
