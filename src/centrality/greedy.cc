#include "centrality/greedy.h"

#include <algorithm>
#include <queue>

#include "centrality/bfs.h"
#include "centrality/centrality.h"
#include "centrality/group_centrality.h"
#include "core/engine.h"
#include "core/solver.h"
#include "util/logging.h"
#include "util/timer.h"

namespace nsky::centrality {

namespace {

// Evaluates the marginal gain of adding `u` to the group whose distance
// field is `dist`, with a BFS pruned to strictly-improving vertices.
//
// Closeness: gain = sum over improved v of (cd(v) - d_u(v)); v = u itself
// contributes cd(u) - 0, which models u leaving the sum over V \ S.
// Harmonic: gain = sum over improved v != u of (1/d_u(v) - 1/cd(v)) minus
// 1/cd(u) for u leaving the sum.
//
// Pruning soundness: d(., S) is 1-Lipschitz along edges, so on a shortest
// path from u to any improved vertex every intermediate vertex is improved
// as well; expanding only improving vertices misses nothing.
class GainEvaluator {
 public:
  GainEvaluator(const Graph& g, Objective objective)
      : g_(g),
        objective_(objective),
        cap_(g.NumVertices()),
        visited_mark_(g.NumVertices(), 0) {}

  double Evaluate(VertexId u, const std::vector<uint32_t>& dist) {
    ++stamp_;
    const uint64_t cdu = CappedDistance(dist[u], cap_);
    double gain = objective_ == Objective::kCloseness
                      ? static_cast<double>(cdu)
                      : -1.0 / static_cast<double>(cdu);
    frontier_.clear();
    frontier_.push_back(u);
    visited_mark_[u] = stamp_;
    uint32_t level = 0;
    std::vector<VertexId>& next = scratch_;
    while (!frontier_.empty()) {
      ++level;
      next.clear();
      for (VertexId x : frontier_) {
        for (VertexId v : g_.Neighbors(x)) {
          if (visited_mark_[v] == stamp_) continue;
          const uint64_t cdv = CappedDistance(dist[v], cap_);
          if (level >= cdv) continue;  // not strictly improving
          visited_mark_[v] = stamp_;
          next.push_back(v);
          if (objective_ == Objective::kCloseness) {
            gain += static_cast<double>(cdv - level);
          } else {
            gain += 1.0 / static_cast<double>(level) -
                    1.0 / static_cast<double>(cdv);
          }
        }
      }
      frontier_.swap(next);
    }
    return gain;
  }

 private:
  const Graph& g_;
  const Objective objective_;
  const uint64_t cap_;
  uint32_t stamp_ = 0;
  std::vector<uint32_t> visited_mark_;
  std::vector<VertexId> frontier_;
  std::vector<VertexId> scratch_;
};

double ScoreFromDistances(const Graph& g, Objective objective,
                          const std::vector<uint32_t>& dist,
                          const std::vector<uint8_t>& in_group) {
  return objective == Objective::kCloseness
             ? GroupClosenessFromDistances(dist, in_group, g.NumVertices())
             : GroupHarmonicFromDistances(dist, in_group, g.NumVertices());
}

}  // namespace

GreedyResult GreedyGroupMaximization(const Graph& g, uint32_t k,
                                     const GreedyOptions& options) {
  util::Timer total_timer;
  const VertexId n = g.NumVertices();
  GreedyResult result;

  // ---- Candidate pool: explicit, skyline, or all vertices. ----
  std::vector<VertexId> pool;
  if (!options.pool.empty()) {
    pool = options.pool;
  } else if (options.use_skyline_pruning) {
    util::Timer sky_timer;
    pool = options.engine != nullptr ? options.engine->SkylineCache()
                                     : core::Solve(g).skyline;
    result.skyline_seconds = sky_timer.Seconds();
  } else {
    pool.resize(n);
    for (VertexId u = 0; u < n; ++u) pool[u] = u;
  }
  result.pool_size = pool.size();
  k = std::min<uint32_t>(k, static_cast<uint32_t>(pool.size()));

  std::vector<uint32_t> dist(n, kUnreachable);  // d(v, S); S starts empty
  std::vector<uint8_t> in_group(n, 0);
  GainEvaluator evaluator(g, options.objective);

  if (!options.lazy) {
    // ---- Plain greedy: evaluate every pool member each round. ----
    for (uint32_t round = 0; round < k; ++round) {
      double best_gain = 0.0;
      VertexId best = graph::VertexId(-1);
      for (VertexId u : pool) {
        if (in_group[u]) continue;
        ++result.gain_calls;
        double gain = evaluator.Evaluate(u, dist);
        if (best == graph::VertexId(-1) || gain > best_gain) {
          best_gain = gain;
          best = u;
        }
      }
      NSKY_CHECK(best != graph::VertexId(-1));
      in_group[best] = 1;
      result.group.push_back(best);
      RelaxWithSource(g, best, &dist);
      result.round_scores.push_back(
          ScoreFromDistances(g, options.objective, dist, in_group));
    }
  } else {
    // ---- CELF lazy greedy: gains only shrink as the group grows, so a
    // stale gain is an upper bound and the top of the heap can be selected
    // as soon as its gain is fresh. ----
    struct Entry {
      double gain;
      VertexId vertex;
      uint32_t round;  // round in which `gain` was computed
      bool operator<(const Entry& other) const {
        return gain < other.gain ||
               (gain == other.gain && vertex > other.vertex);
      }
    };
    std::priority_queue<Entry> heap;
    for (VertexId u : pool) {
      ++result.gain_calls;
      heap.push({evaluator.Evaluate(u, dist), u, 0});
    }
    for (uint32_t round = 0; round < k && !heap.empty(); ++round) {
      while (true) {
        Entry top = heap.top();
        heap.pop();
        if (top.round == round) {
          in_group[top.vertex] = 1;
          result.group.push_back(top.vertex);
          RelaxWithSource(g, top.vertex, &dist);
          result.round_scores.push_back(
              ScoreFromDistances(g, options.objective, dist, in_group));
          break;
        }
        ++result.gain_calls;
        top.gain = evaluator.Evaluate(top.vertex, dist);
        top.round = round;
        heap.push(top);
      }
    }
  }

  result.score = result.round_scores.empty() ? 0.0 : result.round_scores.back();
  result.seconds = total_timer.Seconds();
  return result;
}

GreedyResult BaseGC(const Graph& g, uint32_t k) {
  GreedyOptions options;
  options.objective = Objective::kCloseness;
  return GreedyGroupMaximization(g, k, options);
}

GreedyResult NeiSkyGC(const Graph& g, uint32_t k) {
  GreedyOptions options;
  options.objective = Objective::kCloseness;
  options.use_skyline_pruning = true;
  return GreedyGroupMaximization(g, k, options);
}

GreedyResult BaseGH(const Graph& g, uint32_t k) {
  GreedyOptions options;
  options.objective = Objective::kHarmonic;
  return GreedyGroupMaximization(g, k, options);
}

GreedyResult NeiSkyGH(const Graph& g, uint32_t k) {
  GreedyOptions options;
  options.objective = Objective::kHarmonic;
  options.use_skyline_pruning = true;
  return GreedyGroupMaximization(g, k, options);
}

}  // namespace nsky::centrality
