// Group closeness and group harmonic centrality (Definitions 7 and 9).
//
// GC(S) = n / sum_{v not in S} d(v, S)    (Definition 7)
// GH(S) = sum_{v not in S} 1 / d(v, S)    (Definition 9)
// with d(v, S) capped at n for vertices unreachable from S (see
// centrality.h for the rationale).
#ifndef NSKY_CENTRALITY_GROUP_CENTRALITY_H_
#define NSKY_CENTRALITY_GROUP_CENTRALITY_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace nsky::centrality {

using graph::Graph;
using graph::VertexId;

// Group closeness centrality of S (empty S yields 0).
double GroupCloseness(const Graph& g, std::span<const VertexId> group);

// Group harmonic centrality of S (empty S yields 0).
double GroupHarmonic(const Graph& g, std::span<const VertexId> group);

// Both scores from a precomputed distance field d(v, S) and membership
// flags; used by the greedy solvers to avoid repeated BFS.
double GroupClosenessFromDistances(const std::vector<uint32_t>& dist,
                                   const std::vector<uint8_t>& in_group,
                                   uint64_t cap);
double GroupHarmonicFromDistances(const std::vector<uint32_t>& dist,
                                  const std::vector<uint8_t>& in_group,
                                  uint64_t cap);

}  // namespace nsky::centrality

#endif  // NSKY_CENTRALITY_GROUP_CENTRALITY_H_
