// Greedy group-centrality maximization (Sec. IV-A / IV-B).
//
// The greedy framework adds, for k rounds, the vertex with the largest
// marginal gain of the group centrality. Marginal gains are evaluated with a
// pruned BFS that only expands strictly-improving vertices (the engineering
// of Greedy++ / Greedy-H), so a gain call costs O(improved region), not
// O(m).
//
// The paper's pruning (Lemma 3 / Lemma 4): for v <= u the gain of u is at
// least the gain of v, so the candidate pool can be restricted to the
// neighborhood skyline R -- that is NeiSkyGC / NeiSkyGH. The pool shrinks
// from n to |R| and the number of gain calls from k(2n-k+1)/2 to
// k(2r-k+1)/2 while the achieved score is unchanged.
//
// An optional lazy-evaluation mode (CELF) exploits the diminishing-returns
// property of both objectives; it is an engineering extension kept off by
// default because the paper's accounting assumes the plain greedy.
#ifndef NSKY_CENTRALITY_GREEDY_H_
#define NSKY_CENTRALITY_GREEDY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace nsky::core {
class Engine;
}  // namespace nsky::core

namespace nsky::centrality {

using graph::Graph;
using graph::VertexId;

enum class Objective {
  kCloseness,  // maximize GC(S) (Definition 7)
  kHarmonic,   // maximize GH(S) (Definition 9)
};

struct GreedyOptions {
  Objective objective = Objective::kCloseness;
  // Restrict the candidate pool to the neighborhood skyline (NeiSky*).
  bool use_skyline_pruning = false;
  // CELF lazy gain evaluation (extension; same output score).
  bool lazy = false;
  // Explicit candidate pool; overrides use_skyline_pruning when non-empty.
  std::vector<VertexId> pool;
  // Optional shared query engine. When set and use_skyline_pruning is on,
  // the pool is read from engine->SkylineCache() instead of being solved
  // privately, so every consumer of the engine (closeness, harmonic,
  // betweenness, clique) computes the skyline at most once. Must serve the
  // same graph as `g`.
  core::Engine* engine = nullptr;
};

struct GreedyResult {
  // Selected group, in selection order.
  std::vector<VertexId> group;
  // Final group centrality score (GC or GH per the objective).
  double score = 0.0;
  // Score after each round.
  std::vector<double> round_scores;
  // Number of marginal-gain evaluations performed.
  uint64_t gain_calls = 0;
  // Candidate pool size (n for Base*, |R| for NeiSky*).
  uint64_t pool_size = 0;
  // Seconds spent computing the neighborhood skyline (0 for Base*).
  double skyline_seconds = 0.0;
  // Total seconds including skyline computation.
  double seconds = 0.0;
};

// Runs the greedy for groups of size k. k is clamped to the pool size.
GreedyResult GreedyGroupMaximization(const Graph& g, uint32_t k,
                                     const GreedyOptions& options = {});

// Paper-named wrappers.
GreedyResult BaseGC(const Graph& g, uint32_t k);     // Greedy++ stand-in
GreedyResult NeiSkyGC(const Graph& g, uint32_t k);   // Algorithm 4
GreedyResult BaseGH(const Graph& g, uint32_t k);     // Greedy-H stand-in
GreedyResult NeiSkyGH(const Graph& g, uint32_t k);

}  // namespace nsky::centrality

#endif  // NSKY_CENTRALITY_GREEDY_H_
