#include "setjoin/records.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace nsky::setjoin {

uint64_t RecordSet::TotalElements() const {
  uint64_t total = 0;
  for (const auto& r : records) total += r.size();
  return total;
}

uint64_t RecordSet::MemoryBytes() const {
  uint64_t total = records.capacity() * sizeof(std::vector<Element>);
  for (const auto& r : records) total += r.capacity() * sizeof(Element);
  return total;
}

RecordSet ClosedNeighborhoodRecords(const graph::Graph& g) {
  RecordSet out;
  out.universe_size = g.NumVertices();
  out.records.resize(g.NumVertices());
  for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    auto& rec = out.records[u];
    rec.reserve(nbrs.size() + 1);
    // Insert u in sorted position among its (sorted) neighbors.
    bool placed = false;
    for (graph::VertexId v : nbrs) {
      if (!placed && u < v) {
        rec.push_back(u);
        placed = true;
      }
      rec.push_back(v);
    }
    if (!placed) rec.push_back(u);
  }
  return out;
}

RecordSet OpenNeighborhoodRecords(const graph::Graph& g) {
  RecordSet out;
  out.universe_size = g.NumVertices();
  out.records.resize(g.NumVertices());
  for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    out.records[u].assign(nbrs.begin(), nbrs.end());
  }
  return out;
}

RecordSet RandomRecords(Element universe, size_t count, size_t min_size,
                        size_t max_size, uint64_t seed) {
  NSKY_CHECK(universe > 0);
  NSKY_CHECK(min_size <= max_size && max_size <= universe);
  util::Rng rng(seed);
  RecordSet out;
  out.universe_size = universe;
  out.records.resize(count);
  for (auto& rec : out.records) {
    size_t size = static_cast<size_t>(
        rng.NextInt(static_cast<int64_t>(min_size),
                    static_cast<int64_t>(max_size)));
    rec.clear();
    while (rec.size() < size) {
      // Zipf-ish skew: squaring a uniform variate concentrates mass on the
      // small element ids, creating overlapping records.
      double r = rng.NextDouble();
      Element e = static_cast<Element>(r * r * static_cast<double>(universe));
      if (e >= universe) e = universe - 1;
      if (std::find(rec.begin(), rec.end(), e) == rec.end()) rec.push_back(e);
    }
    std::sort(rec.begin(), rec.end());
  }
  return out;
}

}  // namespace nsky::setjoin
