// Neighborhood-skyline computation through a set containment join -- the
// external baseline ("LC-Join") of Fig. 3 / Fig. 4.
//
// Pipeline: build S = { N[w] : w in V } and Q = { N(u) : u in V }, join
// Q into S, and derive the domination order from the containment pairs:
// u is dominated iff some w != u has N(u) subset-of N[w] and the relation is
// strict or (mutual and w has the smaller id).
//
// Isolated vertices (empty queries) are skipped before the join to keep the
// 2-hop domination semantics shared by all solvers (see domination.h).
#ifndef NSKY_SETJOIN_SKYLINE_VIA_JOIN_H_
#define NSKY_SETJOIN_SKYLINE_VIA_JOIN_H_

#include "core/skyline.h"
#include "graph/graph.h"

namespace nsky::core {
class Engine;
}  // namespace nsky::core

namespace nsky::setjoin {

enum class JoinAlgorithm {
  kInvertedIndex,
  kListCrosscutting,
};

// Computes the neighborhood skyline of g via a containment join. The
// returned stats carry the join's index footprint in aux_peak_bytes.
core::SkylineResult SkylineViaJoin(
    const graph::Graph& g,
    JoinAlgorithm algorithm = JoinAlgorithm::kListCrosscutting);

// Filter-seeded variant: the join's query set is restricted to the
// engine's cached filter-phase candidates (every vertex the filter already
// dominated keeps its filter dominator), which shrinks the join input
// while producing the exact same skyline. The dominator array may differ
// from the unseeded variant for non-candidates (it records the filter's
// dominator instead of the join's first pair) -- both are valid dominators.
core::SkylineResult SkylineViaJoin(
    core::Engine& engine,
    JoinAlgorithm algorithm = JoinAlgorithm::kListCrosscutting);

}  // namespace nsky::setjoin

#endif  // NSKY_SETJOIN_SKYLINE_VIA_JOIN_H_
