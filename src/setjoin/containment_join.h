// Set containment joins: find all (query, data) pairs with query subset-of
// data record.
//
// Three implementations with identical output:
//  * NestedLoopJoin        -- O(|Q| * |S| * len) oracle, tests only.
//  * InvertedIndexJoin     -- PRETTI-style: inverted index on S, per-query
//                             candidate counting (a record containing all
//                             elements of q appears |q| times across q's
//                             posting lists).
//  * ListCrosscuttingJoin  -- LC-Join-style [Deng et al., ICDE'19]: per
//                             query, intersect the posting lists of q's
//                             elements rarest-first with early exit; this is
//                             the external baseline of Fig. 3/4.
// Empty queries are contained in every record; the joins emit those pairs,
// and the skyline adapter filters them (2-hop domination semantics).
#ifndef NSKY_SETJOIN_CONTAINMENT_JOIN_H_
#define NSKY_SETJOIN_CONTAINMENT_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "setjoin/records.h"

namespace nsky::setjoin {

// (query index, data index) result pairs, sorted lexicographically.
using JoinResult = std::vector<std::pair<uint32_t, uint32_t>>;

struct JoinStats {
  uint64_t candidates_examined = 0;  // candidate (q, s) pairs scored
  uint64_t postings_scanned = 0;     // posting-list elements touched
  uint64_t index_bytes = 0;          // inverted index footprint
  double seconds = 0.0;
};

// Reference implementation (tests only).
JoinResult NestedLoopJoin(const RecordSet& queries, const RecordSet& data);

// Inverted index + per-candidate occurrence counting.
JoinResult InvertedIndexJoin(const RecordSet& queries, const RecordSet& data,
                             JoinStats* stats = nullptr);

// Rarest-first posting-list crosscutting with early exit.
JoinResult ListCrosscuttingJoin(const RecordSet& queries,
                                const RecordSet& data,
                                JoinStats* stats = nullptr);

}  // namespace nsky::setjoin

#endif  // NSKY_SETJOIN_CONTAINMENT_JOIN_H_
