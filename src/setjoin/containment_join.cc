#include "setjoin/containment_join.h"

#include <algorithm>

#include "util/timer.h"

namespace nsky::setjoin {

namespace {

// Inverted index: postings[e] = sorted ids of data records containing e.
std::vector<std::vector<uint32_t>> BuildInvertedIndex(const RecordSet& data) {
  std::vector<std::vector<uint32_t>> postings(data.universe_size);
  for (uint32_t sid = 0; sid < data.size(); ++sid) {
    for (Element e : data.records[sid]) postings[e].push_back(sid);
  }
  return postings;
}

uint64_t IndexBytes(const std::vector<std::vector<uint32_t>>& postings) {
  uint64_t total = postings.capacity() * sizeof(std::vector<uint32_t>);
  for (const auto& p : postings) total += p.capacity() * sizeof(uint32_t);
  return total;
}

void EmitAll(uint32_t qid, size_t data_size, JoinResult* out) {
  for (uint32_t sid = 0; sid < data_size; ++sid) out->emplace_back(qid, sid);
}

}  // namespace

JoinResult NestedLoopJoin(const RecordSet& queries, const RecordSet& data) {
  JoinResult out;
  for (uint32_t qid = 0; qid < queries.size(); ++qid) {
    const auto& q = queries.records[qid];
    for (uint32_t sid = 0; sid < data.size(); ++sid) {
      const auto& s = data.records[sid];
      if (std::includes(s.begin(), s.end(), q.begin(), q.end())) {
        out.emplace_back(qid, sid);
      }
    }
  }
  return out;
}

JoinResult InvertedIndexJoin(const RecordSet& queries, const RecordSet& data,
                             JoinStats* stats) {
  util::Timer timer;
  JoinResult out;
  auto postings = BuildInvertedIndex(data);

  std::vector<uint32_t> count(data.size(), 0);
  std::vector<uint32_t> touched;
  for (uint32_t qid = 0; qid < queries.size(); ++qid) {
    const auto& q = queries.records[qid];
    if (q.empty()) {
      EmitAll(qid, data.size(), &out);
      continue;
    }
    touched.clear();
    for (Element e : q) {
      for (uint32_t sid : postings[e]) {
        if (stats != nullptr) ++stats->postings_scanned;
        if (count[sid]++ == 0) touched.push_back(sid);
      }
    }
    std::sort(touched.begin(), touched.end());
    for (uint32_t sid : touched) {
      if (stats != nullptr) ++stats->candidates_examined;
      if (count[sid] == q.size()) out.emplace_back(qid, sid);
      count[sid] = 0;
    }
  }
  if (stats != nullptr) {
    stats->index_bytes = IndexBytes(postings) + count.capacity() * 4;
    stats->seconds = timer.Seconds();
  }
  return out;
}

JoinResult ListCrosscuttingJoin(const RecordSet& queries,
                                const RecordSet& data, JoinStats* stats) {
  util::Timer timer;
  JoinResult out;
  auto postings = BuildInvertedIndex(data);

  std::vector<uint32_t> current;
  std::vector<uint32_t> next;
  std::vector<Element> ordered;
  for (uint32_t qid = 0; qid < queries.size(); ++qid) {
    const auto& q = queries.records[qid];
    if (q.empty()) {
      EmitAll(qid, data.size(), &out);
      continue;
    }
    // Crosscut the posting lists rarest-first: the candidate set shrinks as
    // fast as possible and the loop exits on the first empty intersection.
    ordered.assign(q.begin(), q.end());
    std::sort(ordered.begin(), ordered.end(), [&](Element a, Element b) {
      return postings[a].size() < postings[b].size();
    });
    current = postings[ordered[0]];
    if (stats != nullptr) stats->postings_scanned += current.size();
    for (size_t i = 1; i < ordered.size() && !current.empty(); ++i) {
      const auto& p = postings[ordered[i]];
      next.clear();
      std::set_intersection(current.begin(), current.end(), p.begin(), p.end(),
                            std::back_inserter(next));
      if (stats != nullptr) stats->postings_scanned += p.size();
      current.swap(next);
    }
    if (stats != nullptr) stats->candidates_examined += current.size();
    for (uint32_t sid : current) out.emplace_back(qid, sid);
  }
  if (stats != nullptr) {
    stats->index_bytes = IndexBytes(postings);
    stats->seconds = timer.Seconds();
  }
  return out;
}

}  // namespace nsky::setjoin
