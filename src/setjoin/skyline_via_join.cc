#include "setjoin/skyline_via_join.h"

#include <algorithm>

#include "core/engine.h"
#include "core/subset_check.h"
#include "setjoin/containment_join.h"
#include "setjoin/records.h"
#include "util/memory.h"
#include "util/timer.h"

namespace nsky::setjoin {

using core::SkylineResult;
using graph::Graph;
using graph::VertexId;

SkylineResult SkylineViaJoin(const Graph& g, JoinAlgorithm algorithm) {
  util::Timer timer;
  const VertexId n = g.NumVertices();

  SkylineResult result;
  result.dominator.resize(n);
  for (VertexId u = 0; u < n; ++u) result.dominator[u] = u;

  util::MemoryTally tally;

  // Data records: closed neighborhoods of every vertex. Query records: open
  // neighborhoods of the non-isolated vertices (isolated vertices have no
  // 2-hop dominator and are skyline members by convention).
  RecordSet data = ClosedNeighborhoodRecords(g);
  RecordSet queries;
  queries.universe_size = n;
  std::vector<VertexId> query_vertex;
  for (VertexId u = 0; u < n; ++u) {
    if (g.Degree(u) == 0) continue;
    auto nbrs = g.Neighbors(u);
    queries.records.emplace_back(nbrs.begin(), nbrs.end());
    query_vertex.push_back(u);
  }
  tally.Add(data.MemoryBytes());
  tally.Add(queries.MemoryBytes());

  JoinStats join_stats;
  JoinResult pairs = algorithm == JoinAlgorithm::kInvertedIndex
                         ? InvertedIndexJoin(queries, data, &join_stats)
                         : ListCrosscuttingJoin(queries, data, &join_stats);
  tally.Add(join_stats.index_bytes);
  tally.Add(pairs.capacity() * sizeof(pairs[0]));

  // Translate join pairs (query row, data row) to vertex pairs (u, w) with
  // N(u) subset-of N[w], dropping the trivial u == w rows.
  std::vector<std::pair<VertexId, VertexId>> inclusion;
  inclusion.reserve(pairs.size());
  for (const auto& [qrow, sid] : pairs) {
    VertexId u = query_vertex[qrow];
    if (u != sid) inclusion.emplace_back(u, sid);
  }
  std::sort(inclusion.begin(), inclusion.end());
  tally.Add(inclusion.capacity() * sizeof(inclusion[0]));

  auto included = [&](VertexId a, VertexId b) {
    // True iff N(a) subset-of N[b] appeared in the join output.
    return std::binary_search(inclusion.begin(), inclusion.end(),
                              std::make_pair(a, b));
  };

  for (const auto& [u, w] : inclusion) {
    if (result.dominator[u] != u) continue;  // first dominator only
    const bool mutual = included(w, u);
    if (!mutual || w < u) result.dominator[u] = w;
  }

  for (VertexId u = 0; u < n; ++u) {
    if (result.dominator[u] == u) result.skyline.push_back(u);
  }
  result.stats.pairs_examined = pairs.size();
  result.stats.inclusion_tests = join_stats.candidates_examined;
  result.stats.aux_peak_bytes = tally.peak_bytes();
  result.stats.seconds = timer.Seconds();
  return result;
}

SkylineResult SkylineViaJoin(core::Engine& engine, JoinAlgorithm algorithm) {
  util::Timer timer;
  const Graph& g = engine.graph();
  const VertexId n = g.NumVertices();
  const core::PreparedGraph::FilterArtifacts& fa = engine.Filter();

  SkylineResult result;
  // Non-candidates are already dominated by the filter phase and keep their
  // filter dominator; only the candidates need join verification.
  result.dominator = fa.dominator;

  util::MemoryTally tally;

  // Query records: open neighborhoods of the non-isolated filter
  // candidates. The candidate set is a superset of the skyline, so every
  // vertex whose verdict the join must decide still has a query row; the
  // data side (all closed neighborhoods) is unchanged, so each surviving
  // query sees the exact pair set it would have seen unseeded.
  RecordSet data = ClosedNeighborhoodRecords(g);
  RecordSet queries;
  queries.universe_size = n;
  std::vector<VertexId> query_vertex;
  for (VertexId u : fa.candidates) {
    if (g.Degree(u) == 0) continue;
    auto nbrs = g.Neighbors(u);
    queries.records.emplace_back(nbrs.begin(), nbrs.end());
    query_vertex.push_back(u);
  }
  tally.Add(data.MemoryBytes());
  tally.Add(queries.MemoryBytes());

  JoinStats join_stats;
  JoinResult pairs = algorithm == JoinAlgorithm::kInvertedIndex
                         ? InvertedIndexJoin(queries, data, &join_stats)
                         : ListCrosscuttingJoin(queries, data, &join_stats);
  tally.Add(join_stats.index_bytes);
  tally.Add(pairs.capacity() * sizeof(pairs[0]));

  std::vector<std::pair<VertexId, VertexId>> inclusion;
  inclusion.reserve(pairs.size());
  for (const auto& [qrow, sid] : pairs) {
    VertexId u = query_vertex[qrow];
    if (u != sid) inclusion.emplace_back(u, sid);
  }
  std::sort(inclusion.begin(), inclusion.end());
  tally.Add(inclusion.capacity() * sizeof(inclusion[0]));

  for (const auto& [u, w] : inclusion) {
    if (result.dominator[u] != u) continue;  // first dominator only
    // Mutual-inclusion check directly on the adjacency: w need not be a
    // candidate, so its own query row may be absent from the join output
    // (the unseeded variant's binary search over the pairs would miss it).
    const bool mutual =
        core::SortedSubsetExcept(g.Neighbors(w), g.Neighbors(u), u);
    if (!mutual || w < u) result.dominator[u] = w;
  }

  for (VertexId u = 0; u < n; ++u) {
    if (result.dominator[u] == u) result.skyline.push_back(u);
  }
  result.stats.candidate_count = fa.candidates.size();
  result.stats.pairs_examined = pairs.size();
  result.stats.inclusion_tests = join_stats.candidates_examined;
  result.stats.aux_peak_bytes = tally.peak_bytes();
  result.stats.seconds = timer.Seconds();
  return result;
}

}  // namespace nsky::setjoin
