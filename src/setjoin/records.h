// Set-record collections for the set-containment-join substrate.
//
// The paper frames neighborhood-inclusion discovery as a set containment
// join: a data set S with records s_i = N[i] and a query set Q with records
// q_i = N(i); q_i subset-of s_w (w != i) is exactly "i is
// neighborhood-included by w". This module provides the record
// representation, the graph adapters, and a random-record generator for
// tests.
#ifndef NSKY_SETJOIN_RECORDS_H_
#define NSKY_SETJOIN_RECORDS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace nsky::setjoin {

using Element = uint32_t;

// A collection of sets over the universe [0, universe_size). Each record is
// sorted ascending and duplicate-free.
struct RecordSet {
  Element universe_size = 0;
  std::vector<std::vector<Element>> records;

  size_t size() const { return records.size(); }

  // Total number of elements across records.
  uint64_t TotalElements() const;

  // Heap bytes of the record storage (for memory accounting).
  uint64_t MemoryBytes() const;
};

// s_i = N[i] for every vertex (closed neighborhoods).
RecordSet ClosedNeighborhoodRecords(const graph::Graph& g);

// q_i = N(i) for every vertex (open neighborhoods).
RecordSet OpenNeighborhoodRecords(const graph::Graph& g);

// Random records for tests: `count` records over `universe`, each with a
// size uniform in [min_size, max_size], elements Zipf-skewed so containments
// actually occur.
RecordSet RandomRecords(Element universe, size_t count, size_t min_size,
                        size_t max_size, uint64_t seed);

}  // namespace nsky::setjoin

#endif  // NSKY_SETJOIN_RECORDS_H_
