// Cooperative execution limits for long-running solver work.
//
// An ExecutionContext bundles the three ways a caller can bound a run:
//  * a CancelToken -- an external thread flips it and the run unwinds at the
//    next check point with kCancelled;
//  * a wall-clock deadline (steady clock) -- checks after the deadline
//    return kDeadlineExceeded;
//  * a byte budget for auxiliary structures -- solvers compare their
//    deterministic MemoryTally ledger against it and return
//    kResourceExhausted (or degrade, see core/solver.h) instead of OOMing.
//
// Checks are cooperative and cheap: CheckHealth() is one relaxed atomic load
// plus, only when a deadline is set, one steady_clock read. The thread pool
// calls it between slices of every parallel chunk
// (util/thread_pool.h, ParallelFor with a context) and the solvers call it
// at phase boundaries, so a stuck run returns within one slice of work.
//
// The default-constructed context is unlimited; every check returns OK and
// Solve()-style wrappers rely on that to stay infallible.
//
// Budget checks are deterministic by construction: they compare the
// *deterministic* ledger (never the allocator or the RSS) against the
// budget, so whether a run trips its budget is a pure function of the graph
// and the options -- identical at every thread count.
#ifndef NSKY_UTIL_EXECUTION_CONTEXT_H_
#define NSKY_UTIL_EXECUTION_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace nsky::util {

// Thread-safe cooperative cancellation flag. The owner keeps the token
// alive for the duration of every run that references it.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // May be called from any thread, any number of times.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

class ExecutionContext {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr uint64_t kUnlimitedBytes = ~uint64_t{0};

  // Unlimited: no token, no deadline, no budget; all checks return OK.
  ExecutionContext() = default;

  static ExecutionContext Unlimited() { return ExecutionContext(); }

  // Setters return *this so contexts can be built inline:
  //   SolveOrError(g, opts, ExecutionContext().set_timeout_ms(50));
  ExecutionContext& set_cancel_token(const CancelToken* token) {
    cancel_ = token;
    return *this;
  }
  ExecutionContext& set_deadline(Clock::time_point deadline) {
    has_deadline_ = true;
    deadline_ = deadline;
    return *this;
  }
  // Deadline `ms` milliseconds from now.
  ExecutionContext& set_timeout_ms(uint64_t ms) {
    return set_deadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  ExecutionContext& set_byte_budget(uint64_t bytes) {
    byte_budget_ = bytes;
    return *this;
  }

  bool has_deadline() const { return has_deadline_; }
  bool has_byte_budget() const { return byte_budget_ != kUnlimitedBytes; }
  uint64_t byte_budget() const { return byte_budget_; }
  const CancelToken* cancel_token() const { return cancel_; }

  // True when the context can never fail a check; the fast paths skip the
  // sliced execution entirely in that case.
  bool unlimited() const {
    return cancel_ == nullptr && !has_deadline_ && !has_byte_budget();
  }

  // kCancelled / kDeadlineExceeded / OK. Cancellation wins when both apply.
  Status CheckHealth() const;

  // kResourceExhausted when `bytes_in_use` (a deterministic ledger figure)
  // exceeds the budget, or when the "ctx.budget" fault-injection site is
  // armed and trips. OK otherwise.
  Status CheckBudget(uint64_t bytes_in_use) const;

  // True when allocating `bytes` on top of `bytes_in_use` would cross the
  // budget; used for predictive degradation decisions (core/solver.h).
  bool WouldExceedBudget(uint64_t bytes_in_use, uint64_t bytes) const {
    return has_byte_budget() && bytes_in_use + bytes > byte_budget_;
  }

 private:
  const CancelToken* cancel_ = nullptr;
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  uint64_t byte_budget_ = kUnlimitedBytes;
};

}  // namespace nsky::util

#endif  // NSKY_UTIL_EXECUTION_CONTEXT_H_
