#include "util/status.h"

namespace nsky::util {

namespace {

// Indexed by StatusCode value; the static_asserts in GetStatusCodeInfo keep
// the table total over the enum.
constexpr StatusCodeInfo kStatusCodeTable[] = {
    {StatusCode::kOk, "OK", 0, 200, "OK"},
    {StatusCode::kInvalidArgument, "INVALID_ARGUMENT", 2, 400, "Bad Request"},
    {StatusCode::kNotFound, "NOT_FOUND", 1, 404, "Not Found"},
    {StatusCode::kIoError, "IO_ERROR", 1, 500, "Internal Server Error"},
    {StatusCode::kOutOfRange, "OUT_OF_RANGE", 1, 400, "Bad Request"},
    {StatusCode::kDeadlineExceeded, "DEADLINE_EXCEEDED", 4, 408,
     "Request Timeout"},
    {StatusCode::kCancelled, "CANCELLED", 5, 499, "Client Closed Request"},
    {StatusCode::kResourceExhausted, "RESOURCE_EXHAUSTED", 6, 429,
     "Too Many Requests"},
    {StatusCode::kUnavailable, "UNAVAILABLE", 7, 503, "Service Unavailable"},
};

constexpr size_t kNumStatusCodes =
    sizeof(kStatusCodeTable) / sizeof(kStatusCodeTable[0]);

}  // namespace

const StatusCodeInfo& GetStatusCodeInfo(StatusCode code) {
  static_assert(static_cast<int>(StatusCode::kUnavailable) + 1 ==
                    static_cast<int>(kNumStatusCodes),
                "kStatusCodeTable must cover every StatusCode");
  const size_t index = static_cast<size_t>(code);
  if (index >= kNumStatusCodes) return kStatusCodeTable[0];
  return kStatusCodeTable[index];
}

const char* StatusCodeName(StatusCode code) {
  return GetStatusCodeInfo(code).name;
}

int CliExitCode(StatusCode code) {
  return GetStatusCodeInfo(code).cli_exit_code;
}

int HttpStatusFor(StatusCode code) {
  return GetStatusCodeInfo(code).http_status;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace nsky::util
