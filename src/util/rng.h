// Deterministic pseudo-random number generation.
//
// All synthetic workloads in this repository are seeded through this class so
// that every experiment and every test is exactly reproducible across runs
// and machines. The generator is SplitMix64-seeded xoshiro256**, which is
// fast, has a 256-bit state, and passes BigCrush.
#ifndef NSKY_UTIL_RNG_H_
#define NSKY_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nsky::util {

// 64-bit mixing function (SplitMix64 finalizer). Useful as a cheap,
// high-quality stateless hash for integers; the bloom filters use it.
uint64_t Mix64(uint64_t x);

// Deterministic RNG. Copyable so that a workload can fork sub-streams.
class Rng {
 public:
  // Seeds the full state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Next raw 64 random bits.
  uint64_t Next();

  // Uniform integer in [0, bound). `bound` must be > 0.
  // Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextUint64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p.
  bool NextBool(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& cumulative_weights);

  // Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace nsky::util

#endif  // NSKY_UTIL_RNG_H_
