// Small string helpers shared by the loaders and the benchmark tables.
#ifndef NSKY_UTIL_STRINGS_H_
#define NSKY_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nsky::util {

// Splits `input` on any of the characters in `delims`, skipping empty pieces.
std::vector<std::string_view> SplitFields(std::string_view input,
                                          std::string_view delims = " \t\r");

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// Parses a base-10 unsigned integer. Returns false on any malformed input or
// overflow; `out` is untouched on failure.
bool ParseUint64(std::string_view s, uint64_t* out);

// "12.3 KB" / "4.5 MB" style rendering for memory columns.
std::string HumanBytes(uint64_t bytes);

// Groups digits with commas: 1234567 -> "1,234,567".
std::string WithThousands(uint64_t value);

}  // namespace nsky::util

#endif  // NSKY_UTIL_STRINGS_H_
