#include "util/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

#include "util/json_writer.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace nsky::util::trace {

namespace {

using Clock = std::chrono::steady_clock;
static_assert(Clock::is_steady,
              "span durations must be measured on a monotonic clock");

std::atomic<bool> g_enabled{false};

// An open (not yet closed) span on a thread's stack.
struct OpenSpan {
  SpanNode node;
  Clock::time_point start;
  std::vector<uint64_t> counters_at_start;
  double children_dur_us = 0.0;
  // Reset() bumps the generation; spans opened before it are dropped when
  // they close instead of being attached to the new trace.
  uint64_t generation = 0;
};

// State shared by every thread; guarded by mu (generation is additionally
// atomic so Span close can check staleness cheaply).
struct SharedTracer {
  std::mutex mu;
  Clock::time_point epoch = Clock::now();
  bool epoch_set = false;
  std::atomic<uint64_t> generation{0};
  std::atomic<uint32_t> next_tid{1};
  std::vector<SpanNode> roots;
};

SharedTracer& shared() {
  static SharedTracer* t = new SharedTracer();  // never destroyed
  return *t;
}

// Per-thread span stack plus scratch for counter sampling. Nesting is a
// per-thread notion: worker spans never become children of another thread's
// open span.
struct ThreadTracer {
  uint32_t tid = 0;  // assigned on first span
  std::vector<OpenSpan> stack;
  std::vector<uint64_t> sample;
};

ThreadTracer& thread_tracer() {
  thread_local ThreadTracer t;
  return t;
}

double MicrosBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

void EmitEvents(const SpanNode& node, JsonWriter* w) {
  w->BeginObject();
  w->KV("name", node.name);
  w->KV("ph", "X");
  w->KV("ts", node.start_us);
  w->KV("dur", node.dur_us);
  w->KV("pid", static_cast<uint64_t>(1));
  w->KV("tid", static_cast<uint64_t>(node.tid));
  w->Key("args");
  w->BeginObject();
  w->KV("self_us", node.self_us);
  for (const auto& [name, delta] : node.counter_deltas) w->KV(name, delta);
  w->EndObject();
  w->EndObject();
  for (const SpanNode& child : node.children) EmitEvents(child, w);
}

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Reset() {
  SharedTracer& t = shared();
  std::lock_guard<std::mutex> lock(t.mu);
  t.roots.clear();
  t.epoch_set = false;
  t.generation.fetch_add(1, std::memory_order_relaxed);
}

uint64_t SpanNode::CounterDelta(std::string_view counter_name) const {
  for (const auto& [name, delta] : counter_deltas) {
    if (name == counter_name) return delta;
  }
  return 0;
}

std::vector<SpanNode> FinishedRoots() {
  SharedTracer& t = shared();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.roots;
}

Span::Span(const char* name) : active_(Enabled()) {
  if (!active_) return;
  SharedTracer& s = shared();
  ThreadTracer& t = thread_tracer();
  if (t.tid == 0) t.tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);

  Clock::time_point epoch;
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.epoch_set) {
      s.epoch = Clock::now();
      s.epoch_set = true;
    }
    epoch = s.epoch;
    generation = s.generation.load(std::memory_order_relaxed);
  }

  OpenSpan open;
  open.node.name = name;
  open.node.tid = t.tid;
  open.generation = generation;
  metrics::SampleCounterValues(&open.counters_at_start);
  open.start = Clock::now();
  open.node.start_us = MicrosBetween(epoch, open.start);
  t.stack.push_back(std::move(open));
}

Span::~Span() {
  if (!active_) return;
  SharedTracer& s = shared();
  ThreadTracer& t = thread_tracer();
  NSKY_CHECK_MSG(!t.stack.empty(), "trace span stack underflow");
  Clock::time_point end = Clock::now();
  OpenSpan open = std::move(t.stack.back());
  t.stack.pop_back();

  open.node.dur_us = MicrosBetween(open.start, end);
  open.node.self_us = open.node.dur_us - open.children_dur_us;

  // Counter deltas: counters registered mid-span start from zero. With
  // concurrent workers the deltas attribute *global* counter growth to the
  // span's wall-time window; exact per-phase attribution lives in the
  // deterministic SkylineStats, not here.
  metrics::SampleCounterValues(&t.sample);
  for (size_t i = 0; i < t.sample.size(); ++i) {
    uint64_t before =
        i < open.counters_at_start.size() ? open.counters_at_start[i] : 0;
    if (t.sample[i] > before) {
      open.node.counter_deltas.emplace_back(metrics::CounterName(i),
                                            t.sample[i] - before);
    }
  }

  const uint64_t generation = s.generation.load(std::memory_order_relaxed);
  if (open.generation != generation) return;  // trace was Reset() meanwhile
  if (!t.stack.empty() && t.stack.back().generation == generation) {
    OpenSpan& parent = t.stack.back();
    parent.children_dur_us += open.node.dur_us;
    parent.node.children.push_back(std::move(open.node));
  } else {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.generation.load(std::memory_order_relaxed) != generation) return;
    s.roots.push_back(std::move(open.node));
  }
}

std::string ToChromeTraceJson() {
  std::vector<SpanNode> roots = FinishedRoots();
  JsonWriter w;
  w.BeginArray();
  for (const SpanNode& root : roots) EmitEvents(root, &w);
  w.EndArray();
  return std::move(w).Take();
}

Status WriteChromeTrace(const std::string& path) {
  std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IoError("short write to trace file " + path);
  }
  return Status::Ok();
}

}  // namespace nsky::util::trace
