#include "util/rng.h"

#include <algorithm>

#include "util/logging.h"

namespace nsky::util {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 stream to fill the xoshiro state; guarantees a nonzero state.
  uint64_t z = seed;
  for (auto& s : s_) {
    z += 0x9E3779B97F4A7C15ull;
    uint64_t t = z;
    t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ull;
    t = (t ^ (t >> 27)) * 0x94D049BB133111EBull;
    s = t ^ (t >> 31);
  }
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  // xoshiro256**
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  NSKY_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  NSKY_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextWeighted(const std::vector<double>& cumulative_weights) {
  NSKY_CHECK(!cumulative_weights.empty());
  const double total = cumulative_weights.back();
  NSKY_CHECK(total > 0);
  double r = NextDouble() * total;
  auto it = std::upper_bound(cumulative_weights.begin(),
                             cumulative_weights.end(), r);
  if (it == cumulative_weights.end()) --it;
  return static_cast<size_t>(it - cumulative_weights.begin());
}

}  // namespace nsky::util
