#include "util/fault_injection.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <thread>

#include "util/strings.h"

namespace nsky::util {

namespace {

struct Site {
  std::string name;
  uint64_t value = 0;
  // Hit counter for failure-style sites; atomic so workers can count
  // concurrently. Stored per site, reset on (re)arming.
  std::atomic<uint64_t> hits{0};

  Site(std::string n, uint64_t v) : name(std::move(n)), value(v) {}
};

struct Config {
  // A handful of sites at most: linear scan beats a map and keeps lookup
  // allocation-free. A deque because Site holds an atomic (not movable).
  std::deque<Site> sites;
  std::atomic<bool> enabled{false};

  Site* Find(const char* name) {
    for (Site& s : sites) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

bool Arm(Config& config, const std::string& spec) {
  config.enabled.store(false, std::memory_order_release);
  config.sites.clear();
  if (spec.empty()) return true;
  for (std::string_view entry : SplitFields(spec, ",")) {
    entry = Trim(entry);
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) return false;
    uint64_t value = 0;
    if (!ParseUint64(Trim(entry.substr(eq + 1)), &value) || value == 0) {
      return false;
    }
    config.sites.emplace_back(std::string(Trim(entry.substr(0, eq))), value);
  }
  config.enabled.store(!config.sites.empty(), std::memory_order_release);
  return true;
}

Config& GetConfig() {
  static Config* config = [] {
    auto* c = new Config();
    const char* env = std::getenv("NSKY_FAULTS");
    if (env != nullptr && env[0] != '\0') {
      // A malformed env spec silently disarms; callers are tests/operators
      // who can check with ArmForTest() directly.
      if (!Arm(*c, env)) c->sites.clear();
    }
    return c;
  }();
  return *config;
}

}  // namespace

bool FaultInjector::Enabled() {
  return GetConfig().enabled.load(std::memory_order_acquire);
}

bool FaultInjector::ShouldFail(const char* site) {
  Config& config = GetConfig();
  if (!config.enabled.load(std::memory_order_acquire)) return false;
  Site* s = config.Find(site);
  if (s == nullptr) return false;
  return s->hits.fetch_add(1, std::memory_order_relaxed) + 1 >= s->value;
}

uint64_t FaultInjector::DelayMs(const char* site) {
  Config& config = GetConfig();
  if (!config.enabled.load(std::memory_order_acquire)) return 0;
  Site* s = config.Find(site);
  return s == nullptr ? 0 : s->value;
}

void FaultInjector::MaybeDelay(const char* site) {
  uint64_t ms = DelayMs(site);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool FaultInjector::ArmForTest(const std::string& spec) {
  Config& config = GetConfig();
  if (!Arm(config, spec)) {
    config.sites.clear();
    config.enabled.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

void FaultInjector::Disarm() { ArmForTest(""); }

}  // namespace nsky::util
