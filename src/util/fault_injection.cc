#include "util/fault_injection.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "util/strings.h"

namespace nsky::util {

namespace {

struct Site {
  std::string name;
  uint64_t value = 0;
  // Hit counter for failure-style sites; atomic so workers can count
  // concurrently. Stored per site, reset on (re)arming.
  std::atomic<uint64_t> hits{0};

  Site(std::string n, uint64_t v) : name(std::move(n)), value(v) {}
};

// One arming epoch. Immutable after publication except the atomic hit
// counters, so readers may scan it concurrently with a re-arm: armers
// publish a fresh Config and never touch an old one.
struct Config {
  // A handful of sites at most: linear scan beats a map and keeps lookup
  // allocation-free. A deque because Site holds an atomic (not movable).
  std::deque<Site> sites;

  Site* Find(const char* name) {
    for (Site& s : sites) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

// Parses the spec into a fresh Config. Returns nullptr when the spec does
// not parse; an empty spec parses to an empty (disarmed) Config.
std::unique_ptr<Config> Parse(const std::string& spec) {
  auto config = std::make_unique<Config>();
  if (spec.empty()) return config;
  for (std::string_view entry : SplitFields(spec, ",")) {
    entry = Trim(entry);
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) return nullptr;
    uint64_t value = 0;
    if (!ParseUint64(Trim(entry.substr(eq + 1)), &value) || value == 0) {
      return nullptr;
    }
    config->sites.emplace_back(std::string(Trim(entry.substr(0, eq))),
                               value);
  }
  return config;
}

struct Global {
  std::atomic<bool> enabled{false};
  // The current epoch; readers load it with acquire and scan without any
  // lock. Old epochs are parked in `retired` rather than freed: a reader
  // that loaded a pointer just before a re-arm may still be scanning it,
  // and tests arm a handful of times at most, so retiring is both safe
  // and cheap (and keeps LeakSanitizer quiet).
  std::atomic<Config*> config{nullptr};
  std::mutex arm_mu;  // serializes armers; readers never take it
  std::deque<std::unique_ptr<Config>> retired;
};

Global& GetGlobal() {
  static Global* global = [] {
    auto* g = new Global();
    const char* env = std::getenv("NSKY_FAULTS");
    if (env != nullptr && env[0] != '\0') {
      // A malformed env spec silently disarms; callers are tests/operators
      // who can check with ArmForTest() directly.
      std::unique_ptr<Config> config = Parse(env);
      if (config != nullptr && !config->sites.empty()) {
        g->config.store(config.get(), std::memory_order_release);
        g->retired.push_back(std::move(config));
        g->enabled.store(true, std::memory_order_release);
      }
    }
    return g;
  }();
  return *global;
}

// The site entry for `name` in the current epoch, or nullptr when disarmed
// or unarmed. The returned Site stays valid for the life of the process
// (epochs are retired, never freed).
Site* FindSite(const char* name) {
  Global& global = GetGlobal();
  if (!global.enabled.load(std::memory_order_acquire)) return nullptr;
  Config* config = global.config.load(std::memory_order_acquire);
  return config == nullptr ? nullptr : config->Find(name);
}

}  // namespace

bool FaultInjector::Enabled() {
  return GetGlobal().enabled.load(std::memory_order_acquire);
}

bool FaultInjector::ShouldFail(const char* site) {
  Site* s = FindSite(site);
  if (s == nullptr) return false;
  return s->hits.fetch_add(1, std::memory_order_relaxed) + 1 >= s->value;
}

bool FaultInjector::ShouldFailBurst(const char* site) {
  Site* s = FindSite(site);
  if (s == nullptr) return false;
  return s->hits.fetch_add(1, std::memory_order_relaxed) + 1 <= s->value;
}

uint64_t FaultInjector::Value(const char* site) {
  Site* s = FindSite(site);
  return s == nullptr ? 0 : s->value;
}

uint64_t FaultInjector::DelayMs(const char* site) {
  Site* s = FindSite(site);
  return s == nullptr ? 0 : s->value;
}

void FaultInjector::MaybeDelay(const char* site) {
  uint64_t ms = DelayMs(site);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool FaultInjector::ArmForTest(const std::string& spec) {
  Global& global = GetGlobal();
  std::lock_guard<std::mutex> lock(global.arm_mu);
  std::unique_ptr<Config> config = Parse(spec);
  const bool ok = config != nullptr;
  if (!ok) config = std::make_unique<Config>();
  // Disable first so no reader starts a scan between the pointer swap and
  // the enabled flip; readers mid-scan keep their (retired) epoch.
  global.enabled.store(false, std::memory_order_release);
  const bool armed = !config->sites.empty();
  global.config.store(config.get(), std::memory_order_release);
  global.retired.push_back(std::move(config));
  global.enabled.store(ok && armed, std::memory_order_release);
  return ok;
}

void FaultInjector::Disarm() { ArmForTest(""); }

}  // namespace nsky::util
