#include "util/execution_context.h"

#include "util/fault_injection.h"
#include "util/strings.h"

namespace nsky::util {

Status ExecutionContext::CheckHealth() const {
  if (cancel_ != nullptr && cancel_->IsCancelled()) {
    return Status::Cancelled("run cancelled via CancelToken");
  }
  if (has_deadline_ && Clock::now() > deadline_) {
    return Status::DeadlineExceeded("wall-clock deadline exceeded");
  }
  return Status::Ok();
}

Status ExecutionContext::CheckBudget(uint64_t bytes_in_use) const {
  // Unlimited contexts never consult the fault site either: the infallible
  // Solve() wrapper must stay infallible even under NSKY_FAULTS.
  if (!has_byte_budget()) return Status::Ok();
  if (FaultInjector::Enabled() && FaultInjector::ShouldFail("ctx.budget")) {
    return Status::ResourceExhausted(
        "byte budget tripped by fault injection (site ctx.budget)");
  }
  if (has_byte_budget() && bytes_in_use > byte_budget_) {
    return Status::ResourceExhausted("auxiliary bytes " +
                                     HumanBytes(bytes_in_use) +
                                     " exceed budget " +
                                     HumanBytes(byte_budget_));
  }
  return Status::Ok();
}

}  // namespace nsky::util
