// Dependency-free Prometheus text-format exporter for metric snapshots.
//
// Renders a metrics::Snapshot as Prometheus exposition format 0.0.4 (the
// plain-text format every Prometheus server scrapes), so a serving process
// can expose its registry -- and, via core::EngineStatsToPrometheus, each
// engine's scoped stats -- without linking any client library:
//
//   # TYPE nsky_cli_runs counter
//   nsky_cli_runs 3
//   # TYPE nsky_query_us histogram
//   nsky_query_us_bucket{le="1023"} 4
//   nsky_query_us_bucket{le="+Inf"} 5
//   nsky_query_us_sum 3210
//   nsky_query_us_count 5
//
// Metric names are sanitized to the [a-zA-Z_:][a-zA-Z0-9_:]* charset the
// format requires (the registry's dotted names become underscored).
// Histogram buckets are emitted cumulatively with inclusive integer upper
// bounds (bucket b of the power-of-two histogram covers values up to
// 2^b - 1); empty buckets are omitted, which the format permits.
#ifndef NSKY_UTIL_PROM_EXPORT_H_
#define NSKY_UTIL_PROM_EXPORT_H_

#include <string>
#include <string_view>

#include "util/metrics.h"

namespace nsky::util::metrics {

// Maps an arbitrary metric name onto the Prometheus name charset: every
// character outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets a
// '_' prefix. Empty input yields "_".
std::string PrometheusName(std::string_view name);

// One # TYPE line plus the sample line(s) per metric, counters first, then
// gauges, then histograms, each group in the snapshot's (sorted) order.
std::string SnapshotToPrometheus(const Snapshot& snapshot);

// Appends the exposition lines of a single histogram sample under
// `metric_name` (already sanitized by the caller or not -- it is sanitized
// again here), with an optional pre-rendered label set like
// `algo="filter-refine"` applied to every sample line.
void AppendPrometheusHistogram(std::string_view metric_name,
                               std::string_view labels,
                               const HistogramSample& sample,
                               std::string* out);

}  // namespace nsky::util::metrics

#endif  // NSKY_UTIL_PROM_EXPORT_H_
