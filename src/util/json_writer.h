// Dependency-free JSON emitter and (test-oriented) parser.
//
// JsonWriter builds a JSON document into a string with automatic comma and
// nesting management:
//
//   util::JsonWriter w;
//   w.BeginObject();
//   w.Key("bench"); w.String("fig3_runtime");
//   w.Key("rows");  w.BeginArray();
//   ...
//   w.EndArray();
//   w.EndObject();
//   std::string doc = std::move(w).Take();
//
// The writer is used by the metrics/trace exporters, the `nsky` CLI `--json`
// mode and the benchmark JsonReporter. JsonParse is a small recursive-descent
// parser used by tests to round-trip what the writer (or the CLI) emitted;
// it is not meant for adversarial input.
#ifndef NSKY_UTIL_JSON_WRITER_H_
#define NSKY_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nsky::util {

// Escapes `s` for inclusion inside a JSON string literal (no surrounding
// quotes). Control characters become \uXXXX; quote and backslash are escaped.
std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Writes an object key; must be inside an object, and must be followed by
  // exactly one value (or container).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  // Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  void Double(double value);
  void Bool(bool value);
  void Null();

  // Convenience: Key(key) followed by the value.
  void KV(std::string_view key, std::string_view value);
  void KV(std::string_view key, const char* value);
  void KV(std::string_view key, int64_t value);
  void KV(std::string_view key, uint64_t value);
  void KV(std::string_view key, double value);
  void KV(std::string_view key, bool value);

  // True when every container has been closed and one value was written.
  bool Complete() const;

  // The document so far. Take() requires Complete().
  const std::string& str() const { return out_; }
  std::string Take() &&;

 private:
  enum class Frame : uint8_t { kObject, kObjectValue, kArray };

  void BeforeValue();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<uint32_t> counts_;
  bool done_ = false;
};

// Parsed JSON value (tests and CLI round-trip checks).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion-ordered object members.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Parses a complete JSON document. On failure returns nullopt and, when
// `error` is non-null, stores a short diagnostic with the offset.
std::optional<JsonValue> JsonParse(std::string_view text,
                                   std::string* error = nullptr);

}  // namespace nsky::util

#endif  // NSKY_UTIL_JSON_WRITER_H_
