// Process-wide metrics registry: named counters, gauges and histograms.
//
// The registry is the telemetry backbone of the library: solvers mirror
// their deterministic SkylineStats counters into it, RAII trace spans
// (util/trace.h) attribute counter deltas to phases, and the CLI / bench
// reporters export a snapshot as JSON.
//
// Design rules:
//   * Metric objects are interned by name and never destroyed; a pointer
//     returned by GetCounter() stays valid for the process lifetime, so hot
//     paths can cache it (the NSKY_COUNTER_* macros cache in a function-local
//     static).
//   * Increments are relaxed atomics -- cheap enough for per-edge work, and
//     safe if a future PR parallelizes a solver.
//   * Instrumentation is observation-only: nothing in the library reads a
//     metric to make a decision, and SetEnabled(false) turns every mutation
//     into a no-op without perturbing any algorithm (asserted by the
//     equivalence test suite).
#ifndef NSKY_UTIL_METRICS_H_
#define NSKY_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nsky::util {
class JsonWriter;
}  // namespace nsky::util

namespace nsky::util::metrics {

// Global instrumentation switch (default on). Disabling makes Add/Set/Observe
// no-ops; registration still works.
void SetEnabled(bool enabled);
bool Enabled();

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    if (Enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  // For call sites that already checked Enabled() (the macros).
  void AddUnchecked(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void ResetValue() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<uint64_t> value_{0};
};

// Last-written value (sizes, byte counts, configuration).
class Gauge {
 public:
  void Set(int64_t value) {
    if (Enabled()) value_.store(value, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void ResetValue() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<int64_t> value_{0};
};

struct HistogramSample;

// Power-of-two bucketed distribution of non-negative integer samples.
// Bucket i counts samples v with 2^(i-1) <= v < 2^i (bucket 0 counts v == 0).
//
// Unlike Counter/Gauge, a Histogram can also be constructed directly --
// outside the global registry -- so a component (e.g. core::Engine) can own
// instance-scoped distributions that stay distinguishable when several
// instances live in one process. Max tracking uses a compare-exchange loop,
// so concurrent observers never lose the true maximum.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  // Unregistered histogram owned by the caller (engine-scoped stats). The
  // global SetEnabled() switch still gates Observe().
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value);
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Largest observed sample (0 when empty).
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  // Point-in-time copy (count, sum, max, nonzero buckets).
  HistogramSample Sample() const;
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  void ResetValue();

  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

// Interns a metric by name: the first call registers, later calls with the
// same name return the same object (duplicate registration is not an error).
// A name may be used by at most one metric kind; reusing it for a different
// kind is a programmer error (NSKY_CHECK).
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);
Histogram& GetHistogram(std::string_view name);

// Point-in-time copy of every registered metric, sorted by name.
struct CounterSample {
  std::string name;
  uint64_t value;
};
struct GaugeSample {
  std::string name;
  int64_t value;
};
struct HistogramSample {
  std::string name;
  uint64_t count;
  uint64_t sum;
  uint64_t max;
  std::vector<std::pair<int, uint64_t>> nonzero_buckets;  // (bucket, count)
};

// Quantile estimate (q in [0, 1]) from a histogram sample: the bucket
// holding the rank-q observation is found by a cumulative walk, then the
// position inside it is interpolated linearly in value space -- log-linear
// overall, since bucket widths double. The estimate is clamped to the true
// observed max (exact for the top of the distribution), and an empty sample
// yields 0. Error is bounded by one bucket width (< 2x the true value).
double EstimateQuantile(const HistogramSample& sample, double q);
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // Counter value by name; 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
};

Snapshot Snap();

// Zeroes every registered metric's value. Objects stay registered and
// pointers stay valid.
void Reset();

// Counter registry access in registration order, for cheap whole-registry
// sampling (the tracer diffs these vectors around each span).
size_t NumCounters();
// Appends values of counters [0, NumCounters()) to `out` (cleared first).
void SampleCounterValues(std::vector<uint64_t>* out);
// Name of the counter with registration index `index`.
const std::string& CounterName(size_t index);

// JSON rendering of a snapshot:
// {"counters":{name:value,...},"gauges":{...},
//  "histograms":{name:{"count":..,"sum":..,"max":..,
//                      "p50":..,"p90":..,"p99":..,"buckets":{"i":n}}}}
// The p* keys (EstimateQuantile) are present only when count > 0.
std::string SnapshotToJson(const Snapshot& snapshot);

// Same object written into an in-progress document (the CLI embeds the
// snapshot under a key of a larger schema).
void WriteSnapshotJson(const Snapshot& snapshot, JsonWriter* w);

}  // namespace nsky::util::metrics

// Cheap increment macros. The registry lookup happens once per call site
// (function-local static); subsequent executions are one branch + one relaxed
// atomic add.
#define NSKY_METRICS_CONCAT_INNER_(a, b) a##b
#define NSKY_METRICS_CONCAT_(a, b) NSKY_METRICS_CONCAT_INNER_(a, b)

#define NSKY_COUNTER_ADD(name, delta)                                   \
  do {                                                                  \
    if (::nsky::util::metrics::Enabled()) {                             \
      static ::nsky::util::metrics::Counter& NSKY_METRICS_CONCAT_(      \
          nsky_counter_, __LINE__) = ::nsky::util::metrics::GetCounter( \
          name);                                                        \
      NSKY_METRICS_CONCAT_(nsky_counter_, __LINE__)                     \
          .AddUnchecked(static_cast<uint64_t>(delta));                  \
    }                                                                   \
  } while (0)

#define NSKY_COUNTER_INC(name) NSKY_COUNTER_ADD(name, 1)

#endif  // NSKY_UTIL_METRICS_H_
