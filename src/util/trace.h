// RAII phase tracing: scoped spans building a hierarchical phase tree.
//
//   {
//     NSKY_TRACE_SPAN("refine");
//     ... work ...
//   }   // span closed here
//
// Each span records wall time, self time (wall minus direct children) and
// the delta of every registered metrics counter across its lifetime, so a
// trace answers "which phase produced which pruning work". The finished tree
// is exportable as Chrome trace_event JSON (chrome://tracing, Perfetto).
//
// Tracing is off by default; Span construction is then a single atomic load.
// The tracer keeps one span stack *per thread* (thread-local), so worker
// threads of the parallel solver engine can open their own spans
// concurrently. Nesting is tracked within each thread: a span opened on a
// worker thread becomes a root of that thread's track (identified by
// SpanNode::tid) rather than a child of whatever span the spawning thread
// has open. Only the attach-to-shared-trace step on close takes a mutex, so
// spans stay cheap enough for per-chunk (not per-item) granularity.
#ifndef NSKY_UTIL_TRACE_H_
#define NSKY_UTIL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace nsky::util::trace {

// Enables/disables span collection. Enabling does not clear previously
// collected spans; call Reset() for a fresh trace.
void SetEnabled(bool enabled);
bool Enabled();

// Discards every collected span (open spans keep recording but are dropped
// when closed; their children collected so far are discarded with them).
void Reset();

// One closed span in the phase tree.
struct SpanNode {
  std::string name;
  // Track id: 1 for the first thread that ever opened a span (normally the
  // main thread), 2, 3, ... for each further thread in first-span order.
  // Chrome trace events carry it as "tid" so worker spans render as
  // separate tracks.
  uint32_t tid = 1;
  // Microseconds since the tracer epoch (first span after Reset()).
  double start_us = 0.0;
  // Wall-clock duration.
  double dur_us = 0.0;
  // dur_us minus the duration of direct children (own work).
  double self_us = 0.0;
  // (counter name, increase) for every counter that grew during the span.
  std::vector<std::pair<std::string, uint64_t>> counter_deltas;
  std::vector<SpanNode> children;

  uint64_t CounterDelta(std::string_view counter_name) const;
};

// Copies the closed top-level spans collected since the last Reset().
std::vector<SpanNode> FinishedRoots();

// Chrome trace-event JSON: an array of complete ("ph":"X") events with
// name/ts/dur/pid/tid; counter deltas ride in "args". Loadable by
// chrome://tracing and Perfetto.
std::string ToChromeTraceJson();

// Writes ToChromeTraceJson() to `path`.
Status WriteChromeTrace(const std::string& path);

// RAII span handle. Inactive (and nearly free) when tracing is disabled at
// construction time.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
};

}  // namespace nsky::util::trace

#define NSKY_TRACE_CONCAT_INNER_(a, b) a##b
#define NSKY_TRACE_CONCAT_(a, b) NSKY_TRACE_CONCAT_INNER_(a, b)
#define NSKY_TRACE_SPAN(name) \
  ::nsky::util::trace::Span NSKY_TRACE_CONCAT_(nsky_trace_span_, __LINE__)(name)

#endif  // NSKY_UTIL_TRACE_H_
