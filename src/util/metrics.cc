#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/json_writer.h"
#include "util/logging.h"

namespace nsky::util::metrics {

namespace {

std::atomic<bool> g_enabled{true};

enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

}  // namespace

// Owns every metric object for the process lifetime. Registration is
// mutex-protected; reads of already-registered objects are lock-free.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* instance = new Registry();  // never destroyed
    return *instance;
  }

  Counter& InternCounter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_name_.find(std::string(name));
    if (it != by_name_.end()) {
      NSKY_CHECK_MSG(it->second.kind == Kind::kCounter,
                     "metric name reused with a different kind");
      return *counters_[it->second.index];
    }
    counters_.push_back(std::unique_ptr<Counter>(new Counter(std::string(name))));
    by_name_.emplace(std::string(name),
                     Entry{Kind::kCounter, counters_.size() - 1});
    num_counters_.store(counters_.size(), std::memory_order_release);
    return *counters_.back();
  }

  Gauge& InternGauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_name_.find(std::string(name));
    if (it != by_name_.end()) {
      NSKY_CHECK_MSG(it->second.kind == Kind::kGauge,
                     "metric name reused with a different kind");
      return *gauges_[it->second.index];
    }
    gauges_.push_back(std::unique_ptr<Gauge>(new Gauge(std::string(name))));
    by_name_.emplace(std::string(name), Entry{Kind::kGauge, gauges_.size() - 1});
    return *gauges_.back();
  }

  Histogram& InternHistogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_name_.find(std::string(name));
    if (it != by_name_.end()) {
      NSKY_CHECK_MSG(it->second.kind == Kind::kHistogram,
                     "metric name reused with a different kind");
      return *histograms_[it->second.index];
    }
    histograms_.push_back(
        std::unique_ptr<Histogram>(new Histogram(std::string(name))));
    by_name_.emplace(std::string(name),
                     Entry{Kind::kHistogram, histograms_.size() - 1});
    return *histograms_.back();
  }

  Snapshot Snap() {
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& c : counters_) {
      snap.counters.push_back({c->name(), c->Value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& g : gauges_) snap.gauges.push_back({g->name(), g->Value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto& h : histograms_) {
      HistogramSample s;
      s.name = h->name();
      s.count = h->Count();
      s.sum = h->Sum();
      s.max = h->Max();
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        uint64_t n = h->BucketCount(b);
        if (n != 0) s.nonzero_buckets.emplace_back(b, n);
      }
      snap.histograms.push_back(std::move(s));
    }
    auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
    return snap;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& c : counters_) c->ResetValue();
    for (const auto& g : gauges_) g->ResetValue();
    for (const auto& h : histograms_) h->ResetValue();
  }

  size_t NumCounters() const {
    return num_counters_.load(std::memory_order_acquire);
  }

  void SampleCounterValues(std::vector<uint64_t>* out) {
    out->clear();
    size_t n = NumCounters();
    out->reserve(n);
    // counters_ only grows and entries are stable unique_ptrs, so indexing
    // the first n entries without the registration mutex is safe.
    for (size_t i = 0; i < n; ++i) out->push_back(counters_[i]->Value());
  }

  const std::string& CounterName(size_t index) {
    NSKY_CHECK(index < NumCounters());
    return counters_[index]->name();
  }

 private:
  struct Entry {
    Kind kind;
    size_t index;
  };

  std::mutex mu_;
  std::unordered_map<std::string, Entry> by_name_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::atomic<size_t> num_counters_{0};
};

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Histogram::Observe(uint64_t value) {
  if (!Enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  int bucket = value == 0 ? 0 : 64 - std::countl_zero(value);
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

HistogramSample Histogram::Sample() const {
  HistogramSample s;
  s.name = name_;
  s.count = Count();
  s.sum = Sum();
  s.max = Max();
  for (int b = 0; b < kNumBuckets; ++b) {
    uint64_t n = BucketCount(b);
    if (n != 0) s.nonzero_buckets.emplace_back(b, n);
  }
  return s;
}

double EstimateQuantile(const HistogramSample& sample, double q) {
  if (sample.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based.
  double target = q * static_cast<double>(sample.count);
  if (target < 1.0) target = 1.0;
  uint64_t cumulative = 0;
  for (const auto& [bucket, n] : sample.nonzero_buckets) {
    if (static_cast<double>(cumulative + n) >= target) {
      // Bucket value range: [lo, hi) with lo = 2^(bucket-1), hi = 2^bucket
      // (bucket 0 holds only the value 0).
      double lo = bucket == 0 ? 0.0 : std::ldexp(1.0, bucket - 1);
      double hi = bucket == 0 ? 1.0 : std::ldexp(1.0, bucket);
      double max_bound = static_cast<double>(sample.max) + 1.0;
      if (hi > max_bound) hi = max_bound;
      if (hi < lo) hi = lo;
      double frac = (target - static_cast<double>(cumulative)) /
                    static_cast<double>(n);
      double estimate = lo + (hi - lo) * frac;
      double max_value = static_cast<double>(sample.max);
      return estimate > max_value ? max_value : estimate;
    }
    cumulative += n;
  }
  return static_cast<double>(sample.max);
}

void Histogram::ResetValue() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Counter& GetCounter(std::string_view name) {
  return Registry::Instance().InternCounter(name);
}

Gauge& GetGauge(std::string_view name) {
  return Registry::Instance().InternGauge(name);
}

Histogram& GetHistogram(std::string_view name) {
  return Registry::Instance().InternHistogram(name);
}

uint64_t Snapshot::CounterValue(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

Snapshot Snap() { return Registry::Instance().Snap(); }

void Reset() { Registry::Instance().Reset(); }

size_t NumCounters() { return Registry::Instance().NumCounters(); }

void SampleCounterValues(std::vector<uint64_t>* out) {
  Registry::Instance().SampleCounterValues(out);
}

const std::string& CounterName(size_t index) {
  return Registry::Instance().CounterName(index);
}

void WriteSnapshotJson(const Snapshot& snapshot, JsonWriter* w) {
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& c : snapshot.counters) w->KV(c.name, c.value);
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& g : snapshot.gauges) {
    w->KV(g.name, static_cast<int64_t>(g.value));
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& h : snapshot.histograms) {
    w->Key(h.name);
    w->BeginObject();
    w->KV("count", h.count);
    w->KV("sum", h.sum);
    w->KV("max", h.max);
    if (h.count > 0) {
      w->KV("p50", EstimateQuantile(h, 0.50));
      w->KV("p90", EstimateQuantile(h, 0.90));
      w->KV("p99", EstimateQuantile(h, 0.99));
    }
    w->Key("buckets");
    w->BeginObject();
    for (const auto& [bucket, n] : h.nonzero_buckets) {
      w->KV(std::to_string(bucket), n);
    }
    w->EndObject();
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string SnapshotToJson(const Snapshot& snapshot) {
  JsonWriter w;
  WriteSnapshotJson(snapshot, &w);
  return std::move(w).Take();
}

}  // namespace nsky::util::metrics
