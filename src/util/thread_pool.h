// Fixed-size thread pool with deterministic static partitioning.
//
// The pool is the execution substrate of the parallel solver engine
// (core/solver.h). It is deliberately work-stealing-free: ParallelFor()
// splits an index range [0, n) into exactly num_threads() contiguous chunks
// with a fixed formula, and worker i always processes chunk i. Because the
// assignment is a pure function of (n, num_threads()), any per-worker
// accumulation that is merged in worker order -- or merged with a
// commutative+associative operation such as counter summation -- yields
// bit-identical results on every run and for every thread count.
//
//   util::ThreadPool pool(8);
//   std::vector<Acc> acc(pool.num_threads());
//   pool.ParallelFor(n, [&](unsigned worker, uint64_t begin, uint64_t end) {
//     for (uint64_t i = begin; i < end; ++i) acc[worker].Consume(i);
//   });
//   // merge acc[0..T) in index order
//
// A pool constructed with one thread spawns no workers at all: ParallelFor()
// runs the single chunk inline on the calling thread, so `threads = 1`
// really is the sequential engine (no queue, no synchronization).
//
// Exceptions thrown by a chunk body are captured per worker and the one from
// the lowest worker index is rethrown from ParallelFor() after every chunk
// has finished -- deterministic even when several chunks throw. The pool
// remains usable afterwards.
#ifndef NSKY_UTIL_THREAD_POOL_H_
#define NSKY_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/execution_context.h"
#include "util/status.h"

namespace nsky::util {

class ThreadPool {
 public:
  // Body of one ParallelFor chunk: (worker index, begin, end).
  using ChunkBody = std::function<void(unsigned, uint64_t, uint64_t)>;

  // Spawns `num_threads - 1` worker threads (the calling thread always
  // executes chunk 0 itself). `num_threads == 0` is clamped to 1.
  explicit ThreadPool(unsigned num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  unsigned num_threads() const { return num_threads_; }

  // Runs body(i, begin_i, end_i) for every chunk i of [0, n), where
  //   begin_i = i * n / T,  end_i = (i + 1) * n / T,  T = num_threads().
  // Chunks are at most one item apart in size and empty chunks are skipped.
  // Blocks until every chunk has finished; rethrows the captured exception
  // of the lowest-index failing worker, if any. Not reentrant: do not call
  // ParallelFor from inside a chunk body.
  void ParallelFor(uint64_t n, const ChunkBody& body);

  // Context-aware ParallelFor: identical partitioning (worker i still owns
  // chunk i), but each chunk is executed in slices of kSliceItems and
  // ctx.CheckHealth() runs before every slice. On the first failed check
  // every worker stops at its next slice boundary and the failing status is
  // returned (the lowest worker index wins when several fail -- same
  // determinism rule as exception propagation). Items of completed slices
  // have been processed exactly once; on an early return the remainder has
  // not been touched, so callers must treat their outputs as partial.
  //
  // A run that completes (returns OK) is indistinguishable from the plain
  // overload: slicing never changes which worker processes which item or
  // the per-worker accumulation order, so the bit-identical-results
  // guarantee of core/solver.h is preserved.
  //
  // The "pool.chunk_delay_ms" fault-injection site (util/fault_injection.h)
  // delays every slice when armed, which is how tests make runs slow enough
  // to trip deadlines deterministically.
  Status ParallelFor(uint64_t n, const ExecutionContext& ctx,
                     const ChunkBody& body);

  // Slice granularity of the context-aware ParallelFor, in items. Small
  // enough that a deadline is noticed within a few milliseconds of work on
  // any solver loop, large enough that the per-slice check (one atomic
  // load, one clock read) is noise.
  static constexpr uint64_t kSliceItems = 1024;

  // std::thread::hardware_concurrency() with a floor of 1.
  static unsigned HardwareThreads();

  // Chunk boundary formula used by ParallelFor, exposed for tests and for
  // callers that pre-size per-chunk outputs.
  static uint64_t ChunkBegin(uint64_t n, unsigned num_threads, unsigned chunk) {
    return n * chunk / num_threads;
  }

 private:
  void WorkerLoop();

  const unsigned num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable batch_done_;
  std::deque<std::function<void()>> tasks_;
  unsigned pending_ = 0;  // tasks enqueued or running in the current batch
  bool stopping_ = false;
};

}  // namespace nsky::util

#endif  // NSKY_UTIL_THREAD_POOL_H_
