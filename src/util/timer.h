// Wall-clock timing helpers used by the benchmark harnesses.
#ifndef NSKY_UTIL_TIMER_H_
#define NSKY_UTIL_TIMER_H_

#include <chrono>
#include <string>

namespace nsky::util {

// Monotonic wall-clock stopwatch. Starts running on construction.
//
// Every duration in the library -- solver stats.seconds, trace spans,
// engine query latencies, bench rows -- is measured with this steady clock.
// A non-steady clock (system_clock) can jump under NTP adjustments and
// would corrupt latency percentiles; the static_assert keeps the choice
// from regressing silently.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "durations must be measured on a monotonic clock");

  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double Seconds() const;

  // Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

  // Microseconds elapsed.
  double Micros() const { return Seconds() * 1e6; }

 private:
  Clock::time_point start_;
};

// Formats a duration like "1.23 s" / "45.6 ms" for human-readable tables.
std::string FormatSeconds(double seconds);

}  // namespace nsky::util

#endif  // NSKY_UTIL_TIMER_H_
