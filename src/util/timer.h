// Wall-clock timing helpers used by the benchmark harnesses.
#ifndef NSKY_UTIL_TIMER_H_
#define NSKY_UTIL_TIMER_H_

#include <chrono>
#include <string>

namespace nsky::util {

// Monotonic wall-clock stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double Seconds() const;

  // Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

  // Microseconds elapsed.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Formats a duration like "1.23 s" / "45.6 ms" for human-readable tables.
std::string FormatSeconds(double seconds);

}  // namespace nsky::util

#endif  // NSKY_UTIL_TIMER_H_
