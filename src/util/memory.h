// Memory accounting used by the Fig. 4 memory experiment.
//
// Two complementary mechanisms:
//  * ProcessPeakRssBytes()/ProcessCurrentRssBytes() read /proc/self/status
//    (Linux) and report what the OS has actually committed. Peak RSS is
//    cumulative over the process lifetime, so a benchmark that compares
//    several algorithms in one process cannot use it directly.
//  * MemoryTally is a deterministic, per-algorithm ledger: every algorithm
//    records the sizes of its auxiliary structures (arrays, bloom filters,
//    indexes) as it allocates them. This is the number Fig. 4 reports per
//    algorithm, independent of allocator behaviour and experiment ordering.
#ifndef NSKY_UTIL_MEMORY_H_
#define NSKY_UTIL_MEMORY_H_

#include <cstddef>
#include <cstdint>

namespace nsky::util {

// Peak resident set size of this process in bytes (VmHWM). 0 if unavailable.
uint64_t ProcessPeakRssBytes();

// Current resident set size of this process in bytes (VmRSS). 0 if
// unavailable.
uint64_t ProcessCurrentRssBytes();

// Deterministic ledger of live auxiliary bytes with a running peak.
class MemoryTally {
 public:
  // Records an allocation of `bytes`.
  void Add(uint64_t bytes) {
    live_ += bytes;
    if (live_ > peak_) peak_ = live_;
  }

  // Records a release of `bytes` (must not exceed the live total).
  void Release(uint64_t bytes) { live_ = bytes > live_ ? 0 : live_ - bytes; }

  uint64_t live_bytes() const { return live_; }
  uint64_t peak_bytes() const { return peak_; }

  // Convenience: record a std::vector-like container's heap footprint.
  template <typename Container>
  void AddContainer(const Container& c) {
    Add(static_cast<uint64_t>(c.capacity()) *
        sizeof(typename Container::value_type));
  }

 private:
  uint64_t live_ = 0;
  uint64_t peak_ = 0;
};

}  // namespace nsky::util

#endif  // NSKY_UTIL_MEMORY_H_
