#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace nsky::util {

std::vector<std::string_view> SplitFields(std::string_view input,
                                          std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start < input.size()) {
    size_t end = input.find_first_of(delims, start);
    if (end == std::string_view::npos) end = input.size();
    if (end > start) out.push_back(input.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string WithThousands(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace nsky::util
