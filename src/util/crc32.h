// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), dependency-free.
//
// Used by the persistent-snapshot subsystem (src/persist/) to checksum every
// on-disk section so corruption fails closed instead of producing a wrong
// engine. The implementation is the classic 256-entry table walk: not the
// fastest possible, but byte-order independent, allocation-free, and fast
// enough that section checksumming is a small fraction of the file IO it
// protects.
#ifndef NSKY_UTIL_CRC32_H_
#define NSKY_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace nsky::util {

// CRC-32 of `data[0, size)`. Equivalent to Crc32Update(0, data, size).
uint32_t Crc32(const void* data, size_t size);

// Incremental form: feed chunks in order, starting from `crc = 0`. The
// running value already includes the standard pre/post inversion, so any
// prefix's value equals Crc32() over that prefix.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace nsky::util

#endif  // NSKY_UTIL_CRC32_H_
