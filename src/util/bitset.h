// A dynamic bitset sized at run time.
//
// std::vector<bool> hides its word layout, and std::bitset is fixed at
// compile time; the skyline algorithms need word-level access for the
// bloom-filter subset test (BF(u) & BF(w) == BF(u)), so we keep our own
// small, predictable implementation backed by uint64_t words.
#ifndef NSKY_UTIL_BITSET_H_
#define NSKY_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nsky::util {

// Fixed-capacity dynamic bitset. Bits are indexed [0, size()).
class Bitset {
 public:
  using Word = uint64_t;
  static constexpr size_t kBitsPerWord = 64;

  Bitset() = default;
  // Creates a bitset with `num_bits` bits, all clear.
  explicit Bitset(size_t num_bits);

  Bitset(const Bitset&) = default;
  Bitset& operator=(const Bitset&) = default;
  Bitset(Bitset&&) = default;
  Bitset& operator=(Bitset&&) = default;

  // Number of addressable bits.
  size_t size() const { return num_bits_; }

  // Resizes to `num_bits`; newly exposed bits are clear.
  void Resize(size_t num_bits);

  // Sets/clears/tests a single bit. `pos` must be < size().
  void Set(size_t pos);
  void Clear(size_t pos);
  bool Test(size_t pos) const;

  // Clears every bit (keeps the size).
  void Reset();

  // Number of set bits.
  size_t Count() const;

  // True when no bit is set.
  bool None() const { return Count() == 0; }
  bool Any() const { return !None(); }

  // True when every set bit of *this is also set in `other`.
  // Requires identical sizes.
  bool IsSubsetOf(const Bitset& other) const;

  // Bitwise operations (sizes must match).
  Bitset& operator&=(const Bitset& other);
  Bitset& operator|=(const Bitset& other);
  bool operator==(const Bitset& other) const;

  // Word-level access used by hot loops.
  size_t num_words() const { return words_.size(); }
  Word word(size_t i) const { return words_[i]; }
  Word* data() { return words_.data(); }
  const Word* data() const { return words_.data(); }

  // Heap bytes held by this bitset (for memory accounting).
  size_t MemoryBytes() const { return words_.capacity() * sizeof(Word); }

 private:
  size_t num_bits_ = 0;
  std::vector<Word> words_;
};

}  // namespace nsky::util

#endif  // NSKY_UTIL_BITSET_H_
