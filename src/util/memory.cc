#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace nsky::util {

namespace {
// Parses a "Vm...: 1234 kB" line from /proc/self/status.
uint64_t ReadStatusFieldKb(const char* field) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + field_len, ": %llu", &v) == 1) kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}
}  // namespace

uint64_t ProcessPeakRssBytes() { return ReadStatusFieldKb("VmHWM"); }

uint64_t ProcessCurrentRssBytes() { return ReadStatusFieldKb("VmRSS"); }

}  // namespace nsky::util
