#include "util/bitset.h"

#include <bit>

#include "util/logging.h"

namespace nsky::util {

namespace {
size_t WordsFor(size_t num_bits) {
  return (num_bits + Bitset::kBitsPerWord - 1) / Bitset::kBitsPerWord;
}
}  // namespace

Bitset::Bitset(size_t num_bits)
    : num_bits_(num_bits), words_(WordsFor(num_bits), 0) {}

void Bitset::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize(WordsFor(num_bits), 0);
  // Clear any stale bits beyond the new logical size in the last word.
  const size_t rem = num_bits_ % kBitsPerWord;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << rem) - 1;
  }
}

void Bitset::Set(size_t pos) {
  NSKY_DCHECK(pos < num_bits_);
  words_[pos / kBitsPerWord] |= Word{1} << (pos % kBitsPerWord);
}

void Bitset::Clear(size_t pos) {
  NSKY_DCHECK(pos < num_bits_);
  words_[pos / kBitsPerWord] &= ~(Word{1} << (pos % kBitsPerWord));
}

bool Bitset::Test(size_t pos) const {
  NSKY_DCHECK(pos < num_bits_);
  return (words_[pos / kBitsPerWord] >> (pos % kBitsPerWord)) & 1;
}

void Bitset::Reset() {
  std::fill(words_.begin(), words_.end(), Word{0});
}

size_t Bitset::Count() const {
  size_t total = 0;
  for (Word w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  NSKY_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != words_[i]) return false;
  }
  return true;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  NSKY_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  NSKY_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

bool Bitset::operator==(const Bitset& other) const {
  return num_bits_ == other.num_bits_ && words_ == other.words_;
}

}  // namespace nsky::util
