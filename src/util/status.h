// Minimal Status / Result types for recoverable errors (mostly file IO).
//
// The library does not use exceptions (per the project style); functions that
// can fail for environmental reasons return Status or Result<T>. Programmer
// errors are handled with NSKY_CHECK instead.
#ifndef NSKY_UTIL_STATUS_H_
#define NSKY_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/logging.h"

namespace nsky::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  // Cooperative runtime limits (util/execution_context.h): the run hit its
  // wall-clock deadline, was cancelled via a CancelToken, or would have
  // crossed its auxiliary-byte budget.
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  // The service cannot take the work right now: admission control shed the
  // request, or the server is draining. Retryable by construction -- nothing
  // about the request itself was wrong.
  kUnavailable,
};

// One row of the canonical status mapping. Every rendering of a StatusCode
// on an external surface -- the wire name in nsky.error.v1 documents, the
// `nsky` process exit code, the HTTP status of the network front end --
// comes from this single table, so the surfaces cannot drift apart
// (tools/cli.cc and src/server/ render exclusively through it; the pairing
// is pinned by tests/util/status_test.cc).
struct StatusCodeInfo {
  StatusCode code;
  const char* name;         // stable wire name ("DEADLINE_EXCEEDED", ...)
  int cli_exit_code;        // `nsky` process exit code for this outcome
  int http_status;          // HTTP status the server answers with
  const char* http_reason;  // canonical reason phrase for http_status
};

// The table row for `code`; total over the enum.
const StatusCodeInfo& GetStatusCodeInfo(StatusCode code);

// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// Shorthands over GetStatusCodeInfo. Exit codes: 0 ok, 1 runtime/IO error,
// 2 usage (invalid argument), 4 deadline, 5 cancelled, 6 resource
// exhausted, 7 unavailable (shed). HTTP: 200/400/404/500/408/499/429/503.
int CliExitCode(StatusCode code);
int HttpStatusFor(StatusCode code);

// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of T or an error Status.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error keeps call sites terse:
  //   Result<Graph> Load(...) { if (bad) return Status::IoError(...);
  //                             return graph; }
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {   // NOLINT
    NSKY_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Value access requires ok().
  const T& value() const& {
    NSKY_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T& value() & {
    NSKY_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T&& value() && {
    NSKY_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace nsky::util

#endif  // NSKY_UTIL_STATUS_H_
