// Deterministic fault injection for exercising failure paths.
//
// Production failure handling (deadlines, budget trips, IO truncation) is
// dead code unless something actually fails. The FaultInjector lets tests
// and operators force failures at *named sites* without touching the real
// environment. It is configured once from the NSKY_FAULTS environment
// variable and is disabled -- a single cached boolean test -- when the
// variable is absent, so instrumented call sites cost nothing in normal
// runs.
//
// Spec grammar (comma-separated site=value pairs):
//   NSKY_FAULTS="io.short_read=3,pool.chunk_delay_ms=10,ctx.budget=1"
//
// Site semantics (the value is a positive integer):
//   ctx.budget          ExecutionContext::CheckBudget trips from its Nth
//                       call on (1 = first call). Only contexts that carry
//                       a byte budget consult the site, so the infallible
//                       Solve() wrapper is unaffected.
//   io.short_read       LoadEdgeList/ParseEdgeList report a truncated
//                       stream (IO_ERROR) from the Nth data line on.
//   io.short_write      SaveEdgeList reports a failed write from the Nth
//                       edge line on.
//   pool.chunk_delay_ms every thread-pool slice sleeps N milliseconds
//                       before running (drives deadline paths).
//   persist.short_read  persist::Load/Inspect report a truncated snapshot
//                       file (IO_ERROR) on the Nth read on.
//   persist.short_write persist::Save reports a failed section write
//                       (IO_ERROR) on the Nth section on.
//   persist.corrupt_section
//                       persist::Load/Inspect report a checksum mismatch
//                       (IO_ERROR) for the Nth validated section on, as if
//                       the bytes rotted on disk.
//   persist.crash_at_byte
//                       persist::Save stops writing the temp file after at
//                       most N bytes and returns without cleanup, as if the
//                       process was killed mid-write. The destination file
//                       is never touched.
//   server.accept_fail  the server's accept() reports EMFILE for the first
//                       N accepts (burst semantics), as if the process ran
//                       out of file descriptors.
//   server.eintr        the server's poll/recv/send calls report EINTR for
//                       the first N calls (burst semantics), simulating a
//                       signal storm.
//   server.partial_write
//                       the server's response writer sends at most N bytes
//                       per send() call, forcing the partial-write
//                       continuation path.
//
// Failure sites count their hits with ShouldFail(site): the site fires on
// every call once the hit count reaches the armed value, so "=1" means
// "always fail" and "=3" means "the third and later calls fail". Burst
// sites use ShouldFailBurst(site): the site fires on the FIRST N calls and
// then stays quiet, so retry loops eventually succeed. Delay sites read
// their value with DelayMs(site) on every call; Value(site) exposes the
// armed integer directly for sites that parameterize behavior (byte caps,
// offsets).
//
// Tests arm sites programmatically with ArmForTest()/Disarm(); arming
// resets all hit counters. Arming is thread-safe and may run concurrently
// with instrumented code (server workers consult server.* sites on live
// connections): each (re)arm publishes a fresh immutable epoch, a reader
// mid-scan keeps the epoch it loaded, and instrumented calls observe
// either the old or the new arming, never a torn one.
#ifndef NSKY_UTIL_FAULT_INJECTION_H_
#define NSKY_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

namespace nsky::util {

class FaultInjector {
 public:
  // True when any site is armed. Call sites guard with this so the disabled
  // path is one branch on a cached bool.
  static bool Enabled();

  // True when `site` is armed and its hit count (incremented by this call)
  // has reached the armed threshold. Unarmed sites never fail and do not
  // count.
  static bool ShouldFail(const char* site);

  // Burst variant: true while the hit count (incremented by this call) is
  // still <= the armed value, i.e. the first N calls fail and later calls
  // succeed. Use for sites inside retry loops that must converge.
  static bool ShouldFailBurst(const char* site);

  // Armed integer for `site`, 0 when unarmed. Does not count a hit; use for
  // sites whose value parameterizes behavior (byte caps, offsets).
  static uint64_t Value(const char* site);

  // Armed delay in milliseconds for `site`, 0 when unarmed.
  static uint64_t DelayMs(const char* site);

  // Sleeps DelayMs(site) milliseconds; no-op when unarmed.
  static void MaybeDelay(const char* site);

  // Replaces the active configuration with `spec` (same grammar as
  // NSKY_FAULTS) and resets all hit counters. An empty spec disarms
  // everything, same as Disarm(). Returns false (and disarms) when the spec
  // does not parse.
  static bool ArmForTest(const std::string& spec);
  static void Disarm();
};

}  // namespace nsky::util

#endif  // NSKY_UTIL_FAULT_INJECTION_H_
