#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "util/fault_injection.h"

namespace nsky::util {

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (unsigned i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

unsigned ThreadPool::HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) batch_done_.notify_all();
    }
  }
}

namespace {

void RunChunk(const ThreadPool::ChunkBody& body, unsigned chunk,
              uint64_t begin, uint64_t end, std::exception_ptr* error) {
  try {
    body(chunk, begin, end);
  } catch (...) {
    *error = std::current_exception();
  }
}

}  // namespace

void ThreadPool::ParallelFor(uint64_t n, const ChunkBody& body) {
  const unsigned t = num_threads_;
  if (n == 0) return;
  if (t == 1 || workers_.empty()) {
    // Sequential engine: one chunk, inline, exceptions propagate directly.
    body(0, 0, n);
    return;
  }

  // One exception slot per chunk; the lowest-index failure wins so a
  // multi-failure run rethrows deterministically.
  std::vector<std::exception_ptr> errors(t);

  unsigned enqueued = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (unsigned i = 1; i < t; ++i) {
      const uint64_t begin = ChunkBegin(n, t, i);
      const uint64_t end = ChunkBegin(n, t, i + 1);
      if (begin == end) continue;
      tasks_.emplace_back([&body, i, begin, end, error = &errors[i]] {
        RunChunk(body, i, begin, end, error);
      });
      ++enqueued;
    }
    pending_ += enqueued;
  }
  if (enqueued > 0) task_ready_.notify_all();

  // The calling thread is worker 0.
  const uint64_t end0 = ChunkBegin(n, t, 1);
  if (end0 > 0) RunChunk(body, 0, 0, end0, &errors[0]);

  if (enqueued > 0) {
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [this] { return pending_ == 0; });
  }

  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

Status ThreadPool::ParallelFor(uint64_t n, const ExecutionContext& ctx,
                               const ChunkBody& body) {
  // With nothing to check the sliced wrapper is pure overhead.
  if (ctx.unlimited() && !FaultInjector::Enabled()) {
    ParallelFor(n, body);
    return Status::Ok();
  }

  // One status slot per chunk, merged in worker order after the barrier so
  // a multi-failure run reports deterministically.
  std::vector<Status> failures(num_threads_);
  std::atomic<bool> stop{false};
  const bool faults = FaultInjector::Enabled();

  ParallelFor(n, [&](unsigned chunk, uint64_t begin, uint64_t end) {
    for (uint64_t s = begin; s < end; s += kSliceItems) {
      if (stop.load(std::memory_order_relaxed)) return;
      Status health = ctx.CheckHealth();
      if (!health.ok()) {
        failures[chunk] = std::move(health);
        stop.store(true, std::memory_order_relaxed);
        return;
      }
      if (faults) FaultInjector::MaybeDelay("pool.chunk_delay_ms");
      body(chunk, s, std::min(end, s + kSliceItems));
    }
  });

  for (Status& failure : failures) {
    if (!failure.ok()) return std::move(failure);
  }
  return Status::Ok();
}

}  // namespace nsky::util
