// Lightweight assertion macros used across the library.
//
// NSKY_CHECK(cond) aborts with a diagnostic when `cond` is false, in every
// build type. It is meant for programmer errors (broken invariants, misuse of
// an API), not for recoverable conditions -- recoverable errors are reported
// through util::Status instead.
#ifndef NSKY_UTIL_LOGGING_H_
#define NSKY_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define NSKY_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "NSKY_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define NSKY_CHECK_MSG(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "NSKY_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

// Debug-only check; compiled out in release builds.
#ifdef NDEBUG
#define NSKY_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define NSKY_DCHECK(cond) NSKY_CHECK(cond)
#endif

#endif  // NSKY_UTIL_LOGGING_H_
