#include "util/json_writer.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/logging.h"

namespace nsky::util {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  NSKY_CHECK_MSG(!done_, "JsonWriter: value after complete document");
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top == Frame::kObjectValue) {
    top = Frame::kObject;  // the value paired with the pending Key
    return;
  }
  NSKY_CHECK_MSG(top == Frame::kArray,
                 "JsonWriter: object members need Key() before the value");
  if (counts_.back()++ > 0) out_ += ',';
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  counts_.push_back(0);
}

void JsonWriter::EndObject() {
  NSKY_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                 "JsonWriter: unbalanced EndObject");
  out_ += '}';
  stack_.pop_back();
  counts_.pop_back();
  if (stack_.empty()) done_ = true;
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  counts_.push_back(0);
}

void JsonWriter::EndArray() {
  NSKY_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                 "JsonWriter: unbalanced EndArray");
  out_ += ']';
  stack_.pop_back();
  counts_.pop_back();
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Key(std::string_view key) {
  NSKY_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                 "JsonWriter: Key() outside an object");
  if (counts_.back()++ > 0) out_ += ',';
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  stack_.back() = Frame::kObjectValue;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
  if (stack_.empty()) done_ = true;
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    // Round-trippable but shorter when possible.
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.9g", value);
    if (std::strtod(shorter, nullptr) == value) std::memcpy(buf, shorter, 40);
    out_ += buf;
  }
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  if (stack_.empty()) done_ = true;
}

void JsonWriter::KV(std::string_view key, std::string_view value) {
  Key(key);
  String(value);
}
void JsonWriter::KV(std::string_view key, const char* value) {
  Key(key);
  String(value);
}
void JsonWriter::KV(std::string_view key, int64_t value) {
  Key(key);
  Int(value);
}
void JsonWriter::KV(std::string_view key, uint64_t value) {
  Key(key);
  UInt(value);
}
void JsonWriter::KV(std::string_view key, double value) {
  Key(key);
  Double(value);
}
void JsonWriter::KV(std::string_view key, bool value) {
  Key(key);
  Bool(value);
}

bool JsonWriter::Complete() const { return done_ && stack_.empty(); }

std::string JsonWriter::Take() && {
  NSKY_CHECK_MSG(Complete(), "JsonWriter: Take() on incomplete document");
  return std::move(out_);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> Run() {
    SkipWs();
    JsonValue v;
    if (!ParseValue(&v, 0)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void Fail(const char* what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    size_t len = std::strlen(lit);
    if (text_.substr(pos_, len) != lit) {
      Fail("invalid literal");
      return false;
    }
    pos_ += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      Fail("expected string");
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad \\u escape");
              return false;
            }
          }
          // UTF-8 encode the code point (surrogate pairs unsupported; the
          // writer never emits them -- it only \u-escapes control bytes).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("bad escape");
          return false;
      }
    }
    Fail("unterminated string");
    return false;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      Fail("nesting too deep");
      return false;
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return false;
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->type = JsonValue::Type::kNull;
      return Literal("null");
    }
    return ParseNumber(out);
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected value");
      return false;
    }
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      Fail("malformed number");
      return false;
    }
    return true;
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        Fail("expected ':'");
        return false;
      }
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        Fail("unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      Fail("expected ',' or '}'");
      return false;
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        Fail("unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      Fail("expected ',' or ']'");
      return false;
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonParse(std::string_view text, std::string* error) {
  return Parser(text, error).Run();
}

}  // namespace nsky::util
