#include "util/prom_export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace nsky::util::metrics {

namespace {

bool ValidNameChar(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

void AppendTypeLine(std::string_view name, const char* type,
                    std::string* out) {
  out->append("# TYPE ");
  out->append(name);
  out->append(" ");
  out->append(type);
  out->append("\n");
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendSample(std::string_view name, std::string_view labels,
                  std::string* out) {
  out->append(name);
  if (!labels.empty()) {
    out->append("{");
    out->append(labels);
    out->append("}");
  }
  out->append(" ");
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    out.push_back(ValidNameChar(c, out.empty()) ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

void AppendPrometheusHistogram(std::string_view metric_name,
                               std::string_view labels,
                               const HistogramSample& sample,
                               std::string* out) {
  const std::string name = PrometheusName(metric_name);
  // Every _bucket line carries the caller's labels plus its le bound.
  auto bucket_line = [&](std::string_view le, uint64_t value) {
    out->append(name);
    out->append("_bucket{");
    if (!labels.empty()) {
      out->append(labels);
      out->append(",");
    }
    out->append("le=\"");
    out->append(le);
    out->append("\"} ");
    AppendU64(value, out);
    out->append("\n");
  };
  uint64_t cumulative = 0;
  for (const auto& [bucket, n] : sample.nonzero_buckets) {
    cumulative += n;
    // Bucket b covers integer values up to 2^b - 1 (bucket 0: the value 0).
    uint64_t upper = bucket == 0 ? 0 : (uint64_t{1} << bucket) - 1;
    char le[32];
    std::snprintf(le, sizeof(le), "%" PRIu64, upper);
    bucket_line(le, cumulative);
  }
  bucket_line("+Inf", sample.count);

  AppendSample(name + "_sum", labels, out);
  AppendU64(sample.sum, out);
  out->append("\n");
  AppendSample(name + "_count", labels, out);
  AppendU64(sample.count, out);
  out->append("\n");
}

std::string SnapshotToPrometheus(const Snapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = PrometheusName(c.name);
    AppendTypeLine(name, "counter", &out);
    AppendSample(name, "", &out);
    AppendU64(c.value, &out);
    out.append("\n");
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = PrometheusName(g.name);
    AppendTypeLine(name, "gauge", &out);
    AppendSample(name, "", &out);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(g.value));
    out.append(buf);
    out.append("\n");
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name);
    AppendTypeLine(name, "histogram", &out);
    AppendPrometheusHistogram(h.name, "", h, &out);
  }
  return out;
}

}  // namespace nsky::util::metrics
