#include "graph/versioned_graph.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace nsky::graph {

namespace {

// Sorted-vector membership / insert / erase helpers for the tiny per-row
// delta lists (typically a handful of entries).
bool Contains(const std::vector<VertexId>& sorted, VertexId x) {
  return std::binary_search(sorted.begin(), sorted.end(), x);
}

void InsertSorted(std::vector<VertexId>* sorted, VertexId x) {
  sorted->insert(std::upper_bound(sorted->begin(), sorted->end(), x), x);
}

void EraseSorted(std::vector<VertexId>* sorted, VertexId x) {
  sorted->erase(std::lower_bound(sorted->begin(), sorted->end(), x));
}

}  // namespace

VersionedGraph::VersionedGraph(Graph base)
    : base_(std::make_shared<const Graph>(std::move(base))) {}

bool VersionedGraph::StagedViewHasEdge(VertexId u, VertexId v) const {
  auto it = overlay_.find(u);
  if (it != overlay_.end()) {
    if (Contains(it->second.adds, v)) return true;
    if (Contains(it->second.dels, v)) return false;
  }
  return base_->HasEdge(u, v);
}

void VersionedGraph::ToggleHalf(VertexId row, VertexId other, bool insert) {
  RowDelta& delta = overlay_[row];
  std::vector<VertexId>& same = insert ? delta.adds : delta.dels;
  std::vector<VertexId>& opposite = insert ? delta.dels : delta.adds;
  if (Contains(opposite, other)) {
    // The update cancels a staged one; the row reverts to its base state.
    EraseSorted(&opposite, other);
  } else {
    InsertSorted(&same, other);
  }
  if (delta.adds.empty() && delta.dels.empty()) overlay_.erase(row);
}

bool VersionedGraph::Stage(const EdgeUpdate& update) {
  const VertexId u = update.u;
  const VertexId v = update.v;
  if (u == v) return false;
  const VertexId n = base_->NumVertices();
  if (u >= n || v >= n) return false;
  if (StagedViewHasEdge(u, v) == update.insert) return false;  // no-op
  const bool was_staged =
      base_->HasEdge(u, v) != StagedViewHasEdge(u, v);
  ToggleHalf(u, v, update.insert);
  ToggleHalf(v, u, update.insert);
  // Either the edge's staged presence now differs from the base (one more
  // net edit) or the update cancelled a staged edit (one fewer).
  if (was_staged) {
    --staged_edits_;
  } else {
    ++staged_edits_;
  }
  return true;
}

std::vector<EdgeUpdate> VersionedGraph::StagedUpdates() const {
  std::vector<EdgeUpdate> updates;
  updates.reserve(staged_edits_);
  // The overlay map iterates rows ascending and each row's lists are
  // sorted, so emitting only the u < v half yields (u, v)-ascending order.
  for (const auto& [row, delta] : overlay_) {
    size_t ai = 0;
    size_t di = 0;
    // Merge adds and dels so mixed updates still come out v-ascending.
    while (ai < delta.adds.size() || di < delta.dels.size()) {
      const bool take_add =
          di >= delta.dels.size() ||
          (ai < delta.adds.size() && delta.adds[ai] < delta.dels[di]);
      const VertexId other = take_add ? delta.adds[ai++] : delta.dels[di++];
      if (row < other) updates.push_back({row, other, take_add});
    }
  }
  return updates;
}

std::shared_ptr<const Graph> VersionedGraph::Commit() {
  NSKY_CHECK_MSG(staged_edits_ > 0, "Commit() requires staged edits");
  const Graph& base = *base_;
  const VertexId n = base.NumVertices();
  const std::span<const uint64_t> base_offsets = base.RawOffsets();
  const std::span<const VertexId> base_adj = base.RawAdjacency();

  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1);
  offsets[0] = 0;
  auto next_delta = overlay_.begin();
  for (VertexId u = 0; u < n; ++u) {
    uint64_t degree = base_offsets[u + 1] - base_offsets[u];
    if (next_delta != overlay_.end() && next_delta->first == u) {
      degree += next_delta->second.adds.size();
      degree -= next_delta->second.dels.size();
      ++next_delta;
    }
    offsets[u + 1] = offsets[u] + degree;
  }

  std::vector<VertexId> adjacency(offsets[n]);
  next_delta = overlay_.begin();
  for (VertexId u = 0; u < n; ++u) {
    const VertexId* row = base_adj.data() + base_offsets[u];
    const size_t row_len =
        static_cast<size_t>(base_offsets[u + 1] - base_offsets[u]);
    VertexId* out = adjacency.data() + offsets[u];
    if (next_delta == overlay_.end() || next_delta->first != u) {
      // Untouched row: straight copy.
      std::memcpy(out, row, row_len * sizeof(VertexId));
      continue;
    }
    // Touched row: merge (base - dels) with adds, all three sorted.
    const RowDelta& delta = next_delta->second;
    ++next_delta;
    size_t bi = 0;
    size_t di = 0;
    size_t ai = 0;
    while (bi < row_len || ai < delta.adds.size()) {
      if (bi < row_len && di < delta.dels.size() &&
          row[bi] == delta.dels[di]) {
        ++bi;
        ++di;
        continue;
      }
      if (ai >= delta.adds.size() ||
          (bi < row_len && row[bi] < delta.adds[ai])) {
        *out++ = row[bi++];
      } else {
        *out++ = delta.adds[ai++];
      }
    }
    NSKY_DCHECK(di == delta.dels.size());
    NSKY_DCHECK(out == adjacency.data() + offsets[u + 1]);
  }

  util::Result<Graph> merged =
      Graph::FromCsr(n, std::move(offsets), std::move(adjacency));
  NSKY_CHECK_MSG(merged.ok(), "overlay merge produced invalid CSR");
  base_ = std::make_shared<const Graph>(std::move(merged).value());
  epoch_.fetch_add(1, std::memory_order_relaxed);
  overlay_.clear();
  staged_edits_ = 0;
  return base_;
}

void VersionedGraph::DiscardStaged() {
  overlay_.clear();
  staged_edits_ = 0;
}

void VersionedGraph::Reset(Graph base) {
  base_ = std::make_shared<const Graph>(std::move(base));
  epoch_.store(0, std::memory_order_relaxed);
  overlay_.clear();
  staged_edits_ = 0;
}

}  // namespace nsky::graph
