#include "graph/sampling.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace nsky::graph {

Graph SampleVertices(const Graph& g, double fraction, uint64_t seed) {
  NSKY_CHECK(fraction > 0.0 && fraction <= 1.0);
  const VertexId n = g.NumVertices();
  util::Rng rng(seed);

  // Choose exactly round(fraction * n) vertices via a partial shuffle, then
  // renumber in increasing original-id order for determinism of the result.
  VertexId keep_count =
      static_cast<VertexId>(fraction * static_cast<double>(n) + 0.5);
  if (keep_count == 0) keep_count = 1;
  if (keep_count > n) keep_count = n;

  std::vector<VertexId> perm(n);
  for (VertexId i = 0; i < n; ++i) perm[i] = i;
  for (VertexId i = 0; i < keep_count; ++i) {
    VertexId j = static_cast<VertexId>(i + rng.NextUint64(n - i));
    std::swap(perm[i], perm[j]);
  }
  std::vector<VertexId> kept(perm.begin(), perm.begin() + keep_count);
  std::sort(kept.begin(), kept.end());

  constexpr VertexId kDropped = static_cast<VertexId>(-1);
  std::vector<VertexId> new_id(n, kDropped);
  for (VertexId i = 0; i < keep_count; ++i) new_id[kept[i]] = i;

  std::vector<Edge> edges;
  for (VertexId u : kept) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v && new_id[v] != kDropped) {
        edges.emplace_back(new_id[u], new_id[v]);
      }
    }
  }
  return Graph::FromEdges(keep_count, std::move(edges));
}

Graph RemoveIsolatedVertices(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<VertexId> new_id(n, 0);
  VertexId kept = 0;
  for (VertexId u = 0; u < n; ++u) {
    if (g.Degree(u) > 0) new_id[u] = kept++;
  }
  std::vector<Edge> edges;
  edges.reserve(g.NumEdges());
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) edges.emplace_back(new_id[u], new_id[v]);
    }
  }
  return Graph::FromEdges(kept, std::move(edges));
}

Graph SampleEdges(const Graph& g, double fraction, uint64_t seed) {
  NSKY_CHECK(fraction > 0.0 && fraction <= 1.0);
  util::Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(fraction * static_cast<double>(g.NumEdges())) + 16);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v && rng.NextBool(fraction)) edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(g.NumVertices(), std::move(edges));
}

}  // namespace nsky::graph
