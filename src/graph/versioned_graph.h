// VersionedGraph: epoch/RCU-style mutable view over immutable CSR graphs.
//
// The serving stack treats Graph as immutable -- every artifact cache and
// every in-flight query assumes the adjacency it reads never moves under
// it. VersionedGraph keeps that invariant while making mutation first
// class: the current graph is an immutable CSR snapshot held by
// shared_ptr, edits accumulate in an overlay of sorted per-vertex edge
// deltas, and Commit() merges base + overlay into the NEXT immutable CSR
// epoch in a single pass. Readers that pinned the old snapshot keep a
// fully consistent graph until they drop their reference; new readers see
// the new epoch. Nothing is ever patched in place.
//
// Usage (the writer side of core::Engine::ApplyUpdates):
//   VersionedGraph vg(std::move(g));               // epoch 0
//   vg.Stage({u, v, /*insert=*/true});             // buffered, not visible
//   auto old_snap = vg.Snapshot();                 // pin epoch N
//   auto new_snap = vg.Commit();                   // epoch N+1 published
//   // old_snap still reads the pre-commit adjacency.
//
// Staging is idempotent against the *staged view* (base + overlay): a
// duplicate insert, an absent delete, or a self loop returns false and
// stages nothing; an insert that cancels a staged delete (or vice versa)
// removes the overlay entry instead of stacking a second one, so
// StagedUpdates() always describes the NET difference between the base
// epoch and the staged view. Commit() with an empty overlay is forbidden
// (callers check staged_edits() first); epochs only advance when the graph
// actually changed.
//
// Not thread-safe: one writer at a time (core::Engine serializes callers).
// Snapshots handed out are safe to read from any thread.
#ifndef NSKY_GRAPH_VERSIONED_GRAPH_H_
#define NSKY_GRAPH_VERSIONED_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "graph/graph.h"

namespace nsky::graph {

// One undirected edge update. Used by VersionedGraph::Stage, by
// core::DynamicSkyline::ApplyBatch and by core::Engine::ApplyUpdates (the
// three layers of the mutation path share one vocabulary type).
struct EdgeUpdate {
  VertexId u = 0;
  VertexId v = 0;
  bool insert = true;  // false = delete
};

class VersionedGraph {
 public:
  // Epoch 0 is the construction-time graph.
  explicit VersionedGraph(Graph base);

  // The current epoch's graph. The reference is stable until the next
  // Commit() or Reset(); callers that outlive either must pin Snapshot().
  const Graph& Current() const { return *base_; }

  // Shared ownership of the current epoch; survives any later Commit().
  std::shared_ptr<const Graph> Snapshot() const { return base_; }

  // Epochs committed since construction (Reset() rewinds to 0). Atomic so
  // observers (/healthz, stats scrapers) may read it concurrently with the
  // single writer; everything else here still requires external
  // serialization.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // Stages one edge update against the staged view. Returns false -- and
  // stages nothing -- for self loops, out-of-range endpoints, inserts of
  // edges already present in the staged view, and deletes of edges absent
  // from it. An update that exactly cancels a staged one removes the
  // overlay entry.
  bool Stage(const EdgeUpdate& update);

  // Number of edges whose presence differs between the base epoch and the
  // staged view (the size of the net batch Commit() will apply).
  size_t staged_edits() const { return staged_edits_; }

  // The net staged batch, normalized: u < v, sorted ascending by (u, v),
  // inserts and deletes interleaved in that order. Applying these to the
  // base epoch (in any order -- they touch distinct edges) yields the
  // staged view; repair code derives its dirty sets from exactly this.
  std::vector<EdgeUpdate> StagedUpdates() const;

  // Merges base + overlay into the next epoch's CSR in one pass, publishes
  // it as Current(), clears the overlay and returns the new snapshot.
  // Requires staged_edits() > 0.
  std::shared_ptr<const Graph> Commit();

  // Drops every staged update; the current epoch is untouched.
  void DiscardStaged();

  // Replaces the base graph wholesale (Engine::RefreshFrom). Drops staged
  // updates and rewinds the epoch to 0: the counter tracks in-place
  // mutation history of one base, not unrelated graphs.
  void Reset(Graph base);

 private:
  // Per-row staged deltas; both endpoint rows of a staged edge carry an
  // entry, mirroring CSR's both-directions storage. Sorted ascending.
  struct RowDelta {
    std::vector<VertexId> adds;
    std::vector<VertexId> dels;
  };

  bool StagedViewHasEdge(VertexId u, VertexId v) const;
  void ToggleHalf(VertexId row, VertexId other, bool insert);

  std::shared_ptr<const Graph> base_;
  std::atomic<uint64_t> epoch_{0};
  std::map<VertexId, RowDelta> overlay_;
  size_t staged_edits_ = 0;
};

}  // namespace nsky::graph

#endif  // NSKY_GRAPH_VERSIONED_GRAPH_H_
