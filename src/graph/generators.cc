#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace nsky::graph {

namespace internal_generators {

// Miller-Hagberg Chung-Lu realization for weights sorted descending: for
// each u, walk candidate v > u with geometric skips using the upper-bound
// probability q = w_u * w_(u+1) / sum, thinning by the true probability
// ratio. O(n + m) expected time.
std::vector<Edge> ChungLuRealize(const std::vector<double>& weights,
                                 double sum, util::Rng& rng) {
  const VertexId n = static_cast<VertexId>(weights.size());
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(sum / 2.0) + 16);
  for (VertexId u = 0; u + 1 < n; ++u) {
    VertexId v = u + 1;
    double p = std::min(1.0, weights[u] * weights[v] / sum);
    while (v < n && p > 0.0) {
      if (p != 1.0) {
        double r = rng.NextDouble();
        double skip = std::floor(std::log1p(-r) / std::log1p(-p));
        // Guard against overflow of the vertex id range.
        if (skip >= static_cast<double>(n - v)) break;
        v += static_cast<VertexId>(skip);
      }
      if (v >= n) break;
      double q = std::min(1.0, weights[u] * weights[v] / sum);
      if (rng.NextDouble() < q / p) {
        edges.emplace_back(u, v);
      }
      p = q;
      ++v;
    }
  }
  return edges;
}

}  // namespace internal_generators

Graph MakeClique(VertexId n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph MakeCompleteBinaryTree(uint32_t levels) {
  NSKY_CHECK(levels >= 1 && levels < 31);
  VertexId n = (VertexId{1} << levels) - 1;
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (VertexId child = 1; child < n; ++child) {
    edges.emplace_back((child - 1) / 2, child);
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph MakeCycle(VertexId n) {
  NSKY_CHECK(n >= 3);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (VertexId u = 0; u < n; ++u) edges.emplace_back(u, (u + 1) % n);
  return Graph::FromEdges(n, std::move(edges));
}

Graph MakePath(VertexId n) {
  NSKY_CHECK(n >= 1);
  std::vector<Edge> edges;
  if (n > 1) edges.reserve(n - 1);
  for (VertexId u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  return Graph::FromEdges(n, std::move(edges));
}

Graph MakeStar(VertexId n) {
  NSKY_CHECK(n >= 1);
  std::vector<Edge> edges;
  if (n > 1) edges.reserve(n - 1);
  for (VertexId leaf = 1; leaf < n; ++leaf) edges.emplace_back(0, leaf);
  return Graph::FromEdges(n, std::move(edges));
}

Graph MakeGrid(VertexId rows, VertexId cols) {
  NSKY_CHECK(rows >= 1 && cols >= 1);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(rows) * cols * 2);
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::FromEdges(rows * cols, std::move(edges));
}

Graph MakeCaveman(VertexId num_caves, VertexId cave_size) {
  NSKY_CHECK(num_caves >= 1 && cave_size >= 2);
  VertexId n = num_caves * cave_size;
  std::vector<Edge> edges;
  for (VertexId cave = 0; cave < num_caves; ++cave) {
    VertexId base = cave * cave_size;
    for (VertexId i = 0; i < cave_size; ++i) {
      for (VertexId j = i + 1; j < cave_size; ++j) {
        edges.emplace_back(base + i, base + j);
      }
    }
    if (num_caves > 1) {
      // One bridge to the next cave (ring).
      VertexId next_base = ((cave + 1) % num_caves) * cave_size;
      edges.emplace_back(base, next_base);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph MakeErdosRenyi(VertexId n, double p, uint64_t seed) {
  NSKY_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<Edge> edges;
  if (n >= 2 && p > 0.0) {
    util::Rng rng(seed);
    if (p >= 1.0) return MakeClique(n);
    // Geometric skipping over the lexicographic enumeration of pairs.
    const double log1mp = std::log1p(-p);
    uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
    edges.reserve(static_cast<size_t>(p * static_cast<double>(total_pairs)) + 16);
    uint64_t idx = 0;  // next candidate pair index
    // Row u (pairs (u, v), v in (u, n)) starts at offset
    // u*(n-1) - u*(u-1)/2 in the lexicographic pair enumeration.
    auto row_begin = [n](uint64_t x) {
      return x * (n - 1) - x * (x - 1) / 2;
    };
    while (true) {
      double r = rng.NextDouble();
      uint64_t skip =
          static_cast<uint64_t>(std::floor(std::log1p(-r) / log1mp));
      idx += skip;
      if (idx >= total_pairs) break;
      // Decode pair index -> (u, v) with u < v: binary search for the row.
      uint64_t lo = 0, hi = n - 1;  // invariant: row_begin(lo) <= idx
      while (lo + 1 < hi) {
        uint64_t mid = (lo + hi) / 2;
        if (row_begin(mid) <= idx) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      VertexId u = static_cast<VertexId>(lo);
      VertexId v = static_cast<VertexId>(lo + 1 + (idx - row_begin(lo)));
      edges.emplace_back(u, v);
      ++idx;
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph MakeErdosRenyiLogScaled(VertexId n, double dp, uint64_t seed) {
  NSKY_CHECK(n >= 2);
  double p = dp * std::log(static_cast<double>(n)) / static_cast<double>(n);
  p = std::clamp(p, 0.0, 1.0);
  return MakeErdosRenyi(n, p, seed);
}

Graph MakeBarabasiAlbert(VertexId n, uint32_t edges_per_vertex, uint64_t seed) {
  NSKY_CHECK(edges_per_vertex >= 1);
  NSKY_CHECK(n > edges_per_vertex);
  util::Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * edges_per_vertex);
  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // is sampling proportionally to degree.
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(2 * static_cast<size_t>(n) * edges_per_vertex);

  // Seed: a small clique on m0 = edges_per_vertex + 1 vertices.
  VertexId m0 = edges_per_vertex + 1;
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = u + 1; v < m0; ++v) {
      edges.emplace_back(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }

  std::vector<VertexId> picked;
  for (VertexId u = m0; u < n; ++u) {
    picked.clear();
    // Sample `edges_per_vertex` distinct targets by degree.
    while (picked.size() < edges_per_vertex) {
      VertexId t = endpoint_pool[rng.NextUint64(endpoint_pool.size())];
      if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
        picked.push_back(t);
      }
    }
    for (VertexId t : picked) {
      edges.emplace_back(u, t);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(t);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph MakeChungLuPowerLaw(VertexId n, double beta, double avg_degree,
                          uint64_t seed, double max_weight) {
  NSKY_CHECK(n >= 2);
  NSKY_CHECK(beta > 2.0);
  NSKY_CHECK(avg_degree > 0.0);
  // Expected degrees w_i = c * (i + i0)^(-1/(beta-1)), i = 0..n-1, scaled so
  // that mean(w) == avg_degree. This yields a degree distribution with tail
  // exponent beta (Aiello-Chung-Lu form).
  const double gamma = 1.0 / (beta - 1.0);
  const double i0 = 1.0;
  std::vector<double> weights(n);
  double sum = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + i0, -gamma);
    sum += weights[i];
  }
  const double scale = avg_degree * static_cast<double>(n) / sum;
  sum = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    weights[i] *= scale;
    sum += weights[i];
  }
  // Cap weights to keep edge probabilities < 1 (standard Chung-Lu condition
  // w_i * w_j <= sum w).
  double cap = max_weight > 0.0 ? max_weight : std::sqrt(sum);
  for (auto& w : weights) w = std::min(w, cap);
  sum = std::accumulate(weights.begin(), weights.end(), 0.0);

  // Weights are already sorted descending (w_0 largest).
  util::Rng rng(seed);
  return Graph::FromEdges(n, internal_generators::ChungLuRealize(weights, sum, rng));
}

Graph MakeParetoPowerLaw(VertexId n, double beta, uint64_t seed) {
  NSKY_CHECK(n >= 2);
  NSKY_CHECK(beta > 2.0);
  util::Rng rng(seed);
  // Pareto(xmin = 1, alpha = beta - 1) expected degrees via inverse CDF.
  const double inv_alpha = 1.0 / (beta - 1.0);
  std::vector<double> weights(n);
  double sum = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    weights[i] = std::pow(1.0 - rng.NextDouble(), -inv_alpha);
    sum += weights[i];
  }
  const double cap = std::sqrt(sum);
  sum = 0.0;
  for (auto& w : weights) {
    w = std::min(w, cap);
    sum += w;
  }
  std::sort(weights.begin(), weights.end(), std::greater<double>());
  return Graph::FromEdges(n, internal_generators::ChungLuRealize(weights, sum, rng));
}

Graph MakeSocialGraph(VertexId n, double avg_degree, double pendant_fraction,
                      double triad_prob, uint64_t seed, double copy_prob) {
  NSKY_CHECK(n >= 4);
  NSKY_CHECK(pendant_fraction >= 0.0 && pendant_fraction < 1.0);
  NSKY_CHECK(triad_prob >= 0.0 && triad_prob <= 1.0);
  NSKY_CHECK(copy_prob >= 0.0 && copy_prob < 1.0);
  // Each arriving vertex adds m_v edges; E[2 m_v] must equal avg_degree, so
  // E[m_v] = avg_degree / 2 with m_v = 1 for pendants and a two-point
  // mixture on {floor(m2), ceil(m2)} otherwise.
  const double m_mean = avg_degree / 2.0;
  NSKY_CHECK(m_mean > pendant_fraction + (1.0 - pendant_fraction));
  const double m2 = (m_mean - pendant_fraction) / (1.0 - pendant_fraction);
  NSKY_CHECK(m2 >= 1.0);

  util::Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(m_mean * n) + 16);
  // Uniform sampling from this pool = degree-proportional sampling.
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(static_cast<size_t>(avg_degree * n) + 16);
  // Adjacency so far, needed for triad closure.
  std::vector<std::vector<VertexId>> adj(n);

  auto add_edge = [&](VertexId a, VertexId b) {
    edges.emplace_back(a, b);
    adj[a].push_back(b);
    adj[b].push_back(a);
    endpoint_pool.push_back(a);
    endpoint_pool.push_back(b);
  };

  // Seed triangle.
  add_edge(0, 1);
  add_edge(1, 2);
  add_edge(0, 2);

  std::vector<VertexId> picked;
  for (VertexId u = 3; u < n; ++u) {
    if (copy_prob > 0.0 && rng.NextBool(copy_prob)) {
      // Duplication step: copy most of a random prototype's neighborhood
      // (capped so hub copies stay cheap). N(u) subset-of N(prototype)
      // makes u dominated by the (typically non-adjacent) prototype.
      VertexId prototype = static_cast<VertexId>(rng.NextUint64(u));
      constexpr size_t kMaxCopied = 24;
      picked.clear();
      for (VertexId x : adj[prototype]) {
        if (x == u) continue;
        if (rng.NextBool(0.9)) picked.push_back(x);
        if (picked.size() >= kMaxCopied) break;
      }
      if (!picked.empty()) {
        for (VertexId x : picked) add_edge(u, x);
        continue;
      }
      // Prototype had no usable neighbors: fall through to normal growth.
    }
    uint32_t m_v = 1;
    if (!rng.NextBool(pendant_fraction)) {
      m_v = static_cast<uint32_t>(m2);
      if (rng.NextDouble() < m2 - static_cast<double>(m_v)) ++m_v;
    }
    picked.clear();
    VertexId anchor = 0;
    for (uint32_t e = 0; e < m_v; ++e) {
      VertexId target;
      bool found = false;
      for (int attempt = 0; attempt < 32 && !found; ++attempt) {
        if (e > 0 && rng.NextBool(triad_prob) && !adj[anchor].empty()) {
          // Triad step: neighbor of the previous anchor.
          target = adj[anchor][rng.NextUint64(adj[anchor].size())];
        } else {
          // Preferential attachment step.
          target = endpoint_pool[rng.NextUint64(endpoint_pool.size())];
        }
        found = target != u && std::find(picked.begin(), picked.end(),
                                         target) == picked.end();
      }
      if (!found) continue;  // extremely rare; drop the edge
      picked.push_back(target);
      anchor = target;
      add_edge(u, target);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

}  // namespace nsky::graph
