// Text edge-list IO in the SNAP / KONECT style.
//
// Format accepted by LoadEdgeList:
//   * lines starting with '#' or '%' are comments,
//   * each remaining line holds two whitespace-separated unsigned vertex
//     labels (any extra columns, e.g. KONECT weights/timestamps, are
//     ignored),
//   * labels are arbitrary 64-bit values and are densely relabeled.
// Directed inputs are treated as undirected, matching the paper's setup
// ("we treat all datasets as undirected graphs").
#ifndef NSKY_GRAPH_IO_H_
#define NSKY_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace nsky::graph {

// Loads a graph from an edge-list file.
util::Result<Graph> LoadEdgeList(const std::string& path);

// Writes `g` as "u v" lines (u < v), one edge per line, with a header
// comment. Round-trips through LoadEdgeList.
util::Status SaveEdgeList(const Graph& g, const std::string& path);

// Parses an edge list from an in-memory string (same format as the file
// loader); used by the embedded datasets and the tests.
util::Result<Graph> ParseEdgeList(const std::string& text);

}  // namespace nsky::graph

#endif  // NSKY_GRAPH_IO_H_
