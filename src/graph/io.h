// Text edge-list IO in the SNAP / KONECT style.
//
// Format accepted by LoadEdgeList:
//   * lines starting with '#' or '%' are comments,
//   * each remaining line holds two whitespace-separated unsigned vertex
//     labels (any extra columns, e.g. KONECT weights/timestamps, are
//     ignored),
//   * labels must fit uint32_t and are densely relabeled.
// Directed inputs are treated as undirected, matching the paper's setup
// ("we treat all datasets as undirected graphs").
//
// Malformed input handling: in strict mode (the default) the first bad line
// -- missing column, garbage token, negative id, or a label that overflows
// uint32_t -- aborts the load with a line-numbered kInvalidArgument error.
// Permissive mode (EdgeListOptions::strict = false) skips bad lines and
// counts them in EdgeListReport::skipped_lines instead, for salvaging real
// crawled datasets. Stream-level failures (unreadable file, disk errors,
// and the "io.short_read" fault-injection site) are kIoError in both modes.
#ifndef NSKY_GRAPH_IO_H_
#define NSKY_GRAPH_IO_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace nsky::graph {

// Parsing policy for the edge-list loaders.
struct EdgeListOptions {
  // Strict (default): any malformed line is a line-numbered
  // kInvalidArgument error. Permissive: malformed lines are skipped and
  // counted.
  bool strict = true;
};

// What a load actually consumed; filled (when non-null) even on failure.
struct EdgeListReport {
  uint64_t lines = 0;          // lines read, including comments/blanks
  uint64_t edges_added = 0;    // well-formed edge lines accepted
  uint64_t skipped_lines = 0;  // malformed lines skipped (permissive mode)
};

// Loads a graph from an edge-list file.
util::Result<Graph> LoadEdgeList(const std::string& path,
                                 const EdgeListOptions& options = {},
                                 EdgeListReport* report = nullptr);

// Writes `g` as "u v" lines (u < v), one edge per line, with a header
// comment. Round-trips through LoadEdgeList.
util::Status SaveEdgeList(const Graph& g, const std::string& path);

// Parses an edge list from an in-memory string (same format as the file
// loader); used by the embedded datasets and the tests.
util::Result<Graph> ParseEdgeList(const std::string& text,
                                  const EdgeListOptions& options = {},
                                  EdgeListReport* report = nullptr);

}  // namespace nsky::graph

#endif  // NSKY_GRAPH_IO_H_
