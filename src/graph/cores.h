// k-core decomposition and degeneracy ordering.
//
// The clique solvers use core numbers as an upper bound (a clique of size s
// lies in the (s-1)-core) and the degeneracy order to keep branch-and-bound
// candidate sets small.
#ifndef NSKY_GRAPH_CORES_H_
#define NSKY_GRAPH_CORES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace nsky::graph {

struct CoreDecomposition {
  // core[u] = largest k such that u belongs to the k-core.
  std::vector<uint32_t> core;
  // Vertices in degeneracy order (peeling order of the bucket algorithm).
  std::vector<VertexId> order;
  // position[u] = index of u in `order`.
  std::vector<VertexId> position;
  // Degeneracy of the graph = max core number.
  uint32_t degeneracy = 0;
};

// Computes the core decomposition with the O(n + m) bucket algorithm.
CoreDecomposition ComputeCores(const Graph& g);

}  // namespace nsky::graph

#endif  // NSKY_GRAPH_CORES_H_
