#include "graph/threshold.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace nsky::graph {

Graph MakeThresholdGraph(const std::vector<ThresholdOp>& ops) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < ops.size(); ++u) {
    if (ops[u] == ThresholdOp::kDominating) {
      for (VertexId v = 0; v < u; ++v) edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(static_cast<VertexId>(ops.size()),
                          std::move(edges));
}

std::vector<ThresholdOp> ThresholdConstructionSequence(
    const Graph& g, std::vector<VertexId>* creation_order) {
  const VertexId n = g.NumVertices();
  if (creation_order != nullptr) creation_order->clear();
  if (n == 0) return {};

  // Degree-based peeling. Threshold sequences have unique realizations, so
  // working on degrees alone is sound: at each step the minimum-degree
  // vertex is isolated (effective degree 0) or the maximum-degree vertex is
  // universal (effective degree = alive - 1). Dominating removals decrement
  // every alive vertex's degree by one, tracked lazily in `removed_dom`.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.Degree(a) != g.Degree(b) ? g.Degree(a) < g.Degree(b) : a < b;
  });

  std::vector<ThresholdOp> removal_ops;
  std::vector<VertexId> removal_order;
  removal_ops.reserve(n);
  removal_order.reserve(n);
  size_t lo = 0, hi = n;  // alive vertices are order[lo..hi)
  uint32_t removed_dom = 0;
  while (lo < hi) {
    const size_t alive = hi - lo;
    if (g.Degree(order[lo]) == removed_dom) {
      removal_ops.push_back(ThresholdOp::kIsolated);
      removal_order.push_back(order[lo]);
      ++lo;
    } else if (g.Degree(order[hi - 1]) ==
               static_cast<uint32_t>(alive - 1) + removed_dom) {
      removal_ops.push_back(ThresholdOp::kDominating);
      removal_order.push_back(order[hi - 1]);
      --hi;
      ++removed_dom;
    } else {
      return {};  // not a threshold graph
    }
  }

  // Creation order = reverse removal order; the first created vertex is
  // always recorded as isolated.
  std::vector<ThresholdOp> ops(removal_ops.rbegin(), removal_ops.rend());
  ops[0] = ThresholdOp::kIsolated;
  if (creation_order != nullptr) {
    creation_order->assign(removal_order.rbegin(), removal_order.rend());
  }
  return ops;
}

bool IsThresholdGraph(const Graph& g) {
  if (g.NumVertices() == 0) return true;
  return !ThresholdConstructionSequence(g).empty();
}

}  // namespace nsky::graph
