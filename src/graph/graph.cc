#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace nsky::graph {

Graph Graph::FromEdges(VertexId num_vertices, std::vector<Edge> edges) {
  Graph g;
  g.num_vertices_ = num_vertices;

  // Normalize: drop self-loops, validate endpoints.
  std::vector<Edge> clean;
  clean.reserve(edges.size());
  for (const Edge& e : edges) {
    NSKY_CHECK_MSG(e.first < num_vertices && e.second < num_vertices,
                   "edge endpoint out of range");
    if (e.first == e.second) continue;
    clean.push_back(e);
  }
  edges.clear();
  edges.shrink_to_fit();

  // Count both directions, then fill a CSR and finally sort + dedup each row.
  std::vector<uint64_t> counts(static_cast<size_t>(num_vertices) + 1, 0);
  for (const Edge& e : clean) {
    ++counts[e.first + 1];
    ++counts[e.second + 1];
  }
  for (size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];

  std::vector<VertexId> adj(counts.back());
  std::vector<uint64_t> cursor(counts.begin(), counts.end() - 1);
  for (const Edge& e : clean) {
    adj[cursor[e.first]++] = e.second;
    adj[cursor[e.second]++] = e.first;
  }

  // Sort and deduplicate each adjacency row, compacting in place.
  std::vector<uint64_t> offsets(static_cast<size_t>(num_vertices) + 1, 0);
  uint64_t write = 0;
  uint32_t max_degree = 0;
  for (VertexId u = 0; u < num_vertices; ++u) {
    uint64_t begin = counts[u];
    uint64_t end = counts[u + 1];
    std::sort(adj.begin() + begin, adj.begin() + end);
    uint64_t row_start = write;
    for (uint64_t i = begin; i < end; ++i) {
      if (i == begin || adj[i] != adj[i - 1]) adj[write++] = adj[i];
    }
    offsets[u + 1] = write;
    max_degree = std::max(max_degree, static_cast<uint32_t>(write - row_start));
  }
  adj.resize(write);
  adj.shrink_to_fit();

  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adj);
  g.max_degree_ = max_degree;
  NSKY_CHECK(g.adjacency_.size() % 2 == 0);
  return g;
}

util::Result<Graph> Graph::FromCsr(VertexId num_vertices,
                                   std::vector<uint64_t> offsets,
                                   std::vector<VertexId> adjacency) {
  if (offsets.size() != static_cast<size_t>(num_vertices) + 1) {
    return util::Status::InvalidArgument(
        "CSR offsets array has " + std::to_string(offsets.size()) +
        " entries, expected " + std::to_string(num_vertices + uint64_t{1}));
  }
  if (offsets.front() != 0 || offsets.back() != adjacency.size()) {
    return util::Status::InvalidArgument(
        "CSR offsets do not fence the adjacency array");
  }
  if (adjacency.size() % 2 != 0) {
    return util::Status::InvalidArgument(
        "CSR adjacency entry count is odd; undirected edges must appear in "
        "both rows");
  }
  uint32_t max_degree = 0;
  for (VertexId u = 0; u < num_vertices; ++u) {
    const uint64_t begin = offsets[u];
    const uint64_t end = offsets[u + 1];
    if (begin > end || end > adjacency.size()) {
      return util::Status::InvalidArgument(
          "CSR offsets are not monotone at vertex " + std::to_string(u));
    }
    for (uint64_t i = begin; i < end; ++i) {
      const VertexId v = adjacency[i];
      if (v >= num_vertices) {
        return util::Status::InvalidArgument(
            "CSR neighbor " + std::to_string(v) + " of vertex " +
            std::to_string(u) + " is out of range");
      }
      if (v == u) {
        return util::Status::InvalidArgument(
            "CSR row of vertex " + std::to_string(u) + " contains a "
            "self-loop");
      }
      if (i > begin && adjacency[i - 1] >= v) {
        return util::Status::InvalidArgument(
            "CSR row of vertex " + std::to_string(u) +
            " is not sorted/deduplicated");
      }
    }
    max_degree = std::max(max_degree, static_cast<uint32_t>(end - begin));
  }
  Graph g;
  g.num_vertices_ = num_vertices;
  g.max_degree_ = max_degree;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> out;
  out.reserve(NumEdges());
  for (VertexId u = 0; u < num_vertices_; ++u) {
    for (VertexId v : Neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

uint64_t Graph::MemoryBytes() const {
  return offsets_.capacity() * sizeof(uint64_t) +
         adjacency_.capacity() * sizeof(VertexId);
}

}  // namespace nsky::graph
