#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/builder.h"
#include "util/strings.h"

namespace nsky::graph {

namespace {

// Shared line-by-line parser over any istream.
util::Result<Graph> ParseStream(std::istream& in, const std::string& origin) {
  GraphBuilder builder;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view view = util::Trim(line);
    if (view.empty() || view[0] == '#' || view[0] == '%') continue;
    auto fields = util::SplitFields(view);
    if (fields.size() < 2) {
      return util::Status::InvalidArgument(
          origin + ": line " + std::to_string(line_no) +
          ": expected two vertex labels");
    }
    uint64_t a = 0, b = 0;
    if (!util::ParseUint64(fields[0], &a) || !util::ParseUint64(fields[1], &b)) {
      return util::Status::InvalidArgument(
          origin + ": line " + std::to_string(line_no) +
          ": malformed vertex label");
    }
    builder.AddEdge(a, b);
  }
  return builder.Build();
}

}  // namespace

util::Result<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return util::Status::IoError("cannot open " + path);
  }
  return ParseStream(in, path);
}

util::Result<Graph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in, "<string>");
}

util::Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return util::Status::IoError("cannot open " + path + " for writing");
  }
  out << "# undirected graph: " << g.NumVertices() << " vertices, "
      << g.NumEdges() << " edges\n";
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
  out.flush();
  if (!out.good()) {
    return util::Status::IoError("write failed for " + path);
  }
  return util::Status::Ok();
}

}  // namespace nsky::graph
