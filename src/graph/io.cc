#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "graph/builder.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace nsky::graph {

namespace {

util::Status LineError(const std::string& origin, uint64_t line_no,
                       const std::string& what) {
  return util::Status::InvalidArgument(
      origin + ": line " + std::to_string(line_no) + ": " + what);
}

// Validates one vertex token: unsigned decimal that fits uint32_t (the
// Graph's VertexId after dense relabeling caps the vertex count, but a
// label beyond 32 bits is virtually always a corrupt file, so it is
// rejected up front with a precise diagnostic). Fills `reason` on failure.
bool ParseVertexLabel(std::string_view token, uint64_t* out,
                      std::string* reason) {
  if (!token.empty() && token[0] == '-') {
    *reason = "negative vertex id '" + std::string(token) + "'";
    return false;
  }
  uint64_t value = 0;
  if (!util::ParseUint64(token, &value)) {
    *reason = "malformed vertex label '" + std::string(token) + "'";
    return false;
  }
  if (value > std::numeric_limits<uint32_t>::max()) {
    *reason = "vertex id " + std::string(token) + " overflows uint32_t";
    return false;
  }
  *out = value;
  return true;
}

// Shared line-by-line parser over any istream.
util::Result<Graph> ParseStream(std::istream& in, const std::string& origin,
                                const EdgeListOptions& options,
                                EdgeListReport* report) {
  GraphBuilder builder;
  EdgeListReport local;
  EdgeListReport& rep = report != nullptr ? *report : local;
  rep = EdgeListReport{};
  const bool faults = util::FaultInjector::Enabled();

  std::string line;
  while (std::getline(in, line)) {
    ++rep.lines;
    std::string_view view = util::Trim(line);
    if (view.empty() || view[0] == '#' || view[0] == '%') continue;
    if (faults && util::FaultInjector::ShouldFail("io.short_read")) {
      return util::Status::IoError(
          origin + ": short read (fault injection at data line " +
          std::to_string(rep.edges_added + rep.skipped_lines + 1) + ")");
    }
    std::string reason;
    auto fields = util::SplitFields(view);
    uint64_t a = 0, b = 0;
    if (fields.size() < 2) {
      reason = "expected two vertex labels";
    } else {
      (void)(ParseVertexLabel(fields[0], &a, &reason) &&
             ParseVertexLabel(fields[1], &b, &reason));
    }
    if (!reason.empty()) {
      if (options.strict) return LineError(origin, rep.lines, reason);
      ++rep.skipped_lines;
      continue;
    }
    builder.AddEdge(a, b);
    ++rep.edges_added;
  }
  if (in.bad()) {
    return util::Status::IoError(origin + ": read error at line " +
                                 std::to_string(rep.lines));
  }
  return builder.Build();
}

}  // namespace

util::Result<Graph> LoadEdgeList(const std::string& path,
                                 const EdgeListOptions& options,
                                 EdgeListReport* report) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return util::Status::IoError("cannot open " + path);
  }
  return ParseStream(in, path, options, report);
}

util::Result<Graph> ParseEdgeList(const std::string& text,
                                  const EdgeListOptions& options,
                                  EdgeListReport* report) {
  std::istringstream in(text);
  return ParseStream(in, "<string>", options, report);
}

util::Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return util::Status::IoError("cannot open " + path + " for writing");
  }
  const bool faults = util::FaultInjector::Enabled();
  out << "# undirected graph: " << g.NumVertices() << " vertices, "
      << g.NumEdges() << " edges\n";
  uint64_t written = 0;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u >= v) continue;
      if (faults && util::FaultInjector::ShouldFail("io.short_write")) {
        return util::Status::IoError(
            path + ": short write (fault injection after " +
            std::to_string(written) + " edges)");
      }
      out << u << ' ' << v << '\n';
      ++written;
    }
  }
  out.flush();
  if (!out.good()) {
    return util::Status::IoError("write failed for " + path);
  }
  return util::Status::Ok();
}

}  // namespace nsky::graph
