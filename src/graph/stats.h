// Whole-graph statistics (Table I columns and general reporting).
#ifndef NSKY_GRAPH_STATS_H_
#define NSKY_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace nsky::graph {

struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0.0;
  uint64_t num_isolated = 0;        // degree-0 vertices
  uint64_t num_components = 0;      // connected components
  uint64_t largest_component = 0;   // size of the largest component
};

// Computes all statistics in one pass plus one BFS sweep.
GraphStats ComputeStats(const Graph& g);

// Connected components via BFS; returns component id per vertex and the
// number of components.
uint64_t ConnectedComponents(const Graph& g, std::vector<uint32_t>* component);

// Id of vertices in the largest connected component, sorted ascending.
std::vector<VertexId> LargestComponentVertices(const Graph& g);

// One-line rendering "n=.. m=.. dmax=..".
std::string StatsToString(const GraphStats& stats);

}  // namespace nsky::graph

#endif  // NSKY_GRAPH_STATS_H_
