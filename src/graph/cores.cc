#include "graph/cores.h"

#include <algorithm>

namespace nsky::graph {

CoreDecomposition ComputeCores(const Graph& g) {
  const VertexId n = g.NumVertices();
  CoreDecomposition out;
  out.core.assign(n, 0);
  out.order.assign(n, 0);
  out.position.assign(n, 0);
  if (n == 0) return out;

  // Bucket sort vertices by degree (Batagelj-Zaversnik).
  const uint32_t max_deg = g.MaxDegree();
  std::vector<uint32_t> degree(n);
  std::vector<VertexId> bucket_start(max_deg + 2, 0);
  for (VertexId u = 0; u < n; ++u) {
    degree[u] = g.Degree(u);
    ++bucket_start[degree[u] + 1];
  }
  for (size_t i = 1; i < bucket_start.size(); ++i) {
    bucket_start[i] += bucket_start[i - 1];
  }
  std::vector<VertexId> sorted(n);       // vertices sorted by current degree
  std::vector<VertexId> pos(n);          // position of u in `sorted`
  {
    std::vector<VertexId> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (VertexId u = 0; u < n; ++u) {
      pos[u] = cursor[degree[u]];
      sorted[pos[u]] = u;
      ++cursor[degree[u]];
    }
  }
  // bucket_head[d] = index in `sorted` of the first vertex with degree d.
  std::vector<VertexId> bucket_head(bucket_start.begin(),
                                    bucket_start.end() - 1);

  uint32_t degeneracy = 0;
  for (VertexId i = 0; i < n; ++i) {
    VertexId u = sorted[i];
    degeneracy = std::max(degeneracy, degree[u]);
    out.core[u] = degeneracy;
    out.order[i] = u;
    out.position[u] = i;
    // Peel u: decrement the degree of unprocessed neighbours, moving each to
    // the preceding bucket.
    for (VertexId v : g.Neighbors(u)) {
      if (degree[v] > degree[u] && pos[v] > i) {
        uint32_t dv = degree[v];
        // Swap v with the first element of its bucket, then shrink bucket.
        VertexId head_idx = std::max<VertexId>(bucket_head[dv],
                                               static_cast<VertexId>(i + 1));
        VertexId w = sorted[head_idx];
        std::swap(sorted[pos[v]], sorted[head_idx]);
        std::swap(pos[v], pos[w]);
        bucket_head[dv] = head_idx + 1;
        --degree[v];
      }
      // Neighbours already at the peel level keep their degree: the core
      // level of a vertex never drops below the current peel level.
    }
  }
  out.degeneracy = degeneracy;
  return out;
}

}  // namespace nsky::graph
