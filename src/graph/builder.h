// Incremental construction of Graphs from streams of (possibly messy) edges.
//
// GraphBuilder accepts edges with arbitrary 64-bit external vertex labels
// (as found in SNAP / KONECT edge-list files), relabels them densely in
// first-appearance order, and produces a clean CSR Graph. Self-loops and
// duplicate edges are handled by Graph::FromEdges.
#ifndef NSKY_GRAPH_BUILDER_H_
#define NSKY_GRAPH_BUILDER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace nsky::graph {

class GraphBuilder {
 public:
  GraphBuilder() = default;

  // Non-copyable (holds a large edge buffer); movable.
  GraphBuilder(const GraphBuilder&) = delete;
  GraphBuilder& operator=(const GraphBuilder&) = delete;
  GraphBuilder(GraphBuilder&&) = default;
  GraphBuilder& operator=(GraphBuilder&&) = default;

  // Adds an undirected edge between external labels `a` and `b`.
  void AddEdge(uint64_t a, uint64_t b);

  // Number of distinct labels seen so far.
  VertexId NumVertices() const {
    return static_cast<VertexId>(label_to_id_.size());
  }

  // Number of edges added (before dedup).
  uint64_t NumAddedEdges() const { return edges_.size(); }

  // The dense id assigned to `label`; labels are assigned 0,1,2,... in
  // first-appearance order. Returns true and fills `id` if seen.
  bool LookupLabel(uint64_t label, VertexId* id) const;

  // External label for a dense id (inverse of LookupLabel).
  uint64_t LabelOf(VertexId id) const { return id_to_label_[id]; }

  // Finalizes into an immutable Graph. The builder is left empty.
  Graph Build();

 private:
  VertexId InternLabel(uint64_t label);

  std::unordered_map<uint64_t, VertexId> label_to_id_;
  std::vector<uint64_t> id_to_label_;
  std::vector<Edge> edges_;
};

}  // namespace nsky::graph

#endif  // NSKY_GRAPH_BUILDER_H_
