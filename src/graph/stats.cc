#include "graph/stats.h"

#include <algorithm>
#include <cstdio>
#include <deque>

namespace nsky::graph {

uint64_t ConnectedComponents(const Graph& g, std::vector<uint32_t>* component) {
  const VertexId n = g.NumVertices();
  constexpr uint32_t kUnvisited = static_cast<uint32_t>(-1);
  component->assign(n, kUnvisited);
  uint64_t num_components = 0;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if ((*component)[s] != kUnvisited) continue;
    uint32_t id = static_cast<uint32_t>(num_components++);
    (*component)[s] = id;
    stack.push_back(s);
    while (!stack.empty()) {
      VertexId u = stack.back();
      stack.pop_back();
      for (VertexId v : g.Neighbors(u)) {
        if ((*component)[v] == kUnvisited) {
          (*component)[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return num_components;
}

std::vector<VertexId> LargestComponentVertices(const Graph& g) {
  std::vector<uint32_t> component;
  uint64_t k = ConnectedComponents(g, &component);
  std::vector<uint64_t> sizes(k, 0);
  for (uint32_t c : component) ++sizes[c];
  uint32_t best =
      static_cast<uint32_t>(std::max_element(sizes.begin(), sizes.end()) -
                            sizes.begin());
  std::vector<VertexId> out;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    if (component[u] == best) out.push_back(u);
  }
  return out;
}

GraphStats ComputeStats(const Graph& g) {
  GraphStats stats;
  stats.num_vertices = g.NumVertices();
  stats.num_edges = g.NumEdges();
  stats.max_degree = g.MaxDegree();
  stats.avg_degree = stats.num_vertices == 0
                         ? 0.0
                         : 2.0 * static_cast<double>(stats.num_edges) /
                               static_cast<double>(stats.num_vertices);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    if (g.Degree(u) == 0) ++stats.num_isolated;
  }
  std::vector<uint32_t> component;
  stats.num_components = ConnectedComponents(g, &component);
  std::vector<uint64_t> sizes(stats.num_components, 0);
  for (uint32_t c : component) ++sizes[c];
  stats.largest_component =
      sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return stats;
}

std::string StatsToString(const GraphStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu m=%llu dmax=%u davg=%.2f components=%llu",
                static_cast<unsigned long long>(stats.num_vertices),
                static_cast<unsigned long long>(stats.num_edges),
                stats.max_degree, stats.avg_degree,
                static_cast<unsigned long long>(stats.num_components));
  return buf;
}

}  // namespace nsky::graph
