// Immutable undirected graph in Compressed Sparse Row form.
//
// This is the substrate every algorithm in the library runs on. Adjacency
// lists are sorted, deduplicated and free of self-loops, which the skyline
// algorithms rely on for merge-based containment tests (NBRcheck) and
// O(log d) HasEdge queries.
#ifndef NSKY_GRAPH_GRAPH_H_
#define NSKY_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/status.h"

namespace nsky::graph {

// Vertex identifier; vertices of a Graph are always [0, NumVertices()).
using VertexId = uint32_t;

// An undirected edge as a vertex pair.
using Edge = std::pair<VertexId, VertexId>;

class Graph {
 public:
  Graph() = default;

  // Builds a graph with `num_vertices` vertices from an edge list.
  // Self-loops are dropped and duplicate/parallel edges are merged; the
  // orientation of each pair is irrelevant. Endpoints must be
  // < num_vertices (checked).
  static Graph FromEdges(VertexId num_vertices, std::vector<Edge> edges);

  // Rebuilds a graph from raw CSR arrays (the persistent-snapshot load
  // path, src/persist/). Unlike FromEdges this takes untrusted input from
  // disk, so every invariant the algorithms rely on is *checked* and a
  // violation returns INVALID_ARGUMENT instead of crashing: offsets must be
  // a monotone [0 .. adjacency.size()] fence array of length n + 1, every
  // adjacency row must be sorted, duplicate-free, self-loop-free with
  // endpoints < n, and the total entry count must be even (each undirected
  // edge appears in both rows). Symmetry of individual edges is implied for
  // data written by RawOffsets()/RawAdjacency() and is not re-verified (the
  // snapshot layer's checksums cover byte integrity).
  static util::Result<Graph> FromCsr(VertexId num_vertices,
                                     std::vector<uint64_t> offsets,
                                     std::vector<VertexId> adjacency);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // Number of vertices n.
  VertexId NumVertices() const { return num_vertices_; }

  // Number of undirected edges m.
  uint64_t NumEdges() const { return adjacency_.size() / 2; }

  // Degree of u: |N(u)|.
  uint32_t Degree(VertexId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  // Maximum degree over all vertices (0 for the empty graph).
  uint32_t MaxDegree() const { return max_degree_; }

  // Open neighborhood N(u), sorted ascending.
  std::span<const VertexId> Neighbors(VertexId u) const {
    return {adjacency_.data() + offsets_[u],
            adjacency_.data() + offsets_[u + 1]};
  }

  // True iff (u, v) in E. O(log Degree(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  // All undirected edges with u < v, in CSR order.
  std::vector<Edge> Edges() const;

  // Heap bytes of the CSR arrays ("graph size" row in Fig. 4).
  uint64_t MemoryBytes() const;

  // Raw CSR arrays for serialization (src/persist/). offsets has
  // NumVertices() + 1 entries; adjacency holds both directions of every
  // edge, rows sorted ascending.
  std::span<const uint64_t> RawOffsets() const { return offsets_; }
  std::span<const VertexId> RawAdjacency() const { return adjacency_; }

 private:
  VertexId num_vertices_ = 0;
  uint32_t max_degree_ = 0;
  // offsets_[u]..offsets_[u+1] delimit u's slice of adjacency_.
  std::vector<uint64_t> offsets_;
  std::vector<VertexId> adjacency_;
};

}  // namespace nsky::graph

#endif  // NSKY_GRAPH_GRAPH_H_
