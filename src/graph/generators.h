// Deterministic graph generators.
//
// These serve two purposes:
//  * the special graphs of Fig. 2 (clique, complete binary tree, cycle,
//    path) whose skyline sizes have closed forms used as test oracles;
//  * the synthetic workloads of Fig. 6 (Erdos-Renyi with edge probability
//    p = dp*log(n)/n, and power-law graphs with exponent beta) and the
//    scaled-down stand-ins for the paper's SNAP/KONECT datasets.
// All generators are seeded and fully reproducible.
#ifndef NSKY_GRAPH_GENERATORS_H_
#define NSKY_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace nsky::graph {

// --- Deterministic structured graphs (Fig. 2) -----------------------------

// Complete graph K_n.
Graph MakeClique(VertexId n);

// Complete binary tree with `levels` full levels (2^levels - 1 vertices),
// root = vertex 0, children of i at 2i+1 / 2i+2.
Graph MakeCompleteBinaryTree(uint32_t levels);

// Cycle C_n (n >= 3).
Graph MakeCycle(VertexId n);

// Path P_n with n vertices, n-1 edges.
Graph MakePath(VertexId n);

// Star S_n: center 0 connected to n-1 leaves.
Graph MakeStar(VertexId n);

// rows x cols 4-neighbour grid.
Graph MakeGrid(VertexId rows, VertexId cols);

// `num_caves` disjoint cliques of size `cave_size` joined in a ring by one
// edge between consecutive caves (connected caveman graph).
Graph MakeCaveman(VertexId num_caves, VertexId cave_size);

// --- Random models ---------------------------------------------------------

// Erdos-Renyi G(n, p) via geometric edge skipping, O(n + m) expected time.
Graph MakeErdosRenyi(VertexId n, double p, uint64_t seed);

// Erdos-Renyi parameterised like the paper's Fig. 6(a): p = dp * log(n) / n.
Graph MakeErdosRenyiLogScaled(VertexId n, double dp, uint64_t seed);

// Barabasi-Albert preferential attachment: starts from a small clique and
// attaches each new vertex to `edges_per_vertex` existing vertices chosen
// proportionally to degree.
Graph MakeBarabasiAlbert(VertexId n, uint32_t edges_per_vertex, uint64_t seed);

// Chung-Lu power-law random graph: expected degree sequence
// w_i ~ c * (i + i0)^(-1/(beta-1)) scaled so the expected average degree is
// `avg_degree`, with expected degrees capped at `max_weight`
// (0 = uncapped -> cap sqrt(sum w)). Degree distribution follows
// P(deg = d) ~ d^-beta, matching the paper's PL graphs (vary beta).
Graph MakeChungLuPowerLaw(VertexId n, double beta, double avg_degree,
                          uint64_t seed, double max_weight = 0.0);

// Power-law random graph in NetworKit's style (used by the paper's Fig. 6
// synthetic experiment): every vertex draws an expected degree from a
// Pareto distribution with minimum 1 and tail exponent beta (so the degree
// density decays like d^-beta and the graph is pendant-rich), then edges
// are realized Chung-Lu style. Weights are capped at sqrt(sum) to keep
// probabilities valid.
Graph MakeParetoPowerLaw(VertexId n, double beta, uint64_t seed);

// Social-network stand-in generator: preferential attachment (power-law
// hubs) enriched with the two structures that drive neighborhood domination
// in real graphs and that Chung-Lu lacks:
//  * pendants -- a `pendant_fraction` of vertices attach with one edge only
//    (a pendant is always dominated by its neighbor);
//  * triangles -- each non-first edge closes a triad with probability
//    `triad_prob` (Holme-Kim style), so low-degree vertices with adjacent
//    neighbors are dominated;
//  * duplication -- with probability `copy_prob` an arriving vertex copies
//    (most of) the neighborhood of a random earlier prototype, producing
//    the 2-hop-dominated vertices that separate the candidate set C from
//    the skyline R in real data.
// The expected average degree is approximately `avg_degree`.
Graph MakeSocialGraph(VertexId n, double avg_degree, double pendant_fraction,
                      double triad_prob, uint64_t seed,
                      double copy_prob = 0.0);

}  // namespace nsky::graph

#endif  // NSKY_GRAPH_GENERATORS_H_
