// Threshold graphs (Mahadev & Peled), the graph class on which the vicinal
// preorder underlying neighborhood domination is *total*. The paper's
// introduction ties neighborhood inclusion to threshold graphs [7], [8];
// this module provides recognition and construction so the relationship can
// be exercised and tested (on a connected threshold graph the neighborhood
// skyline collapses to a single vertex).
#ifndef NSKY_GRAPH_THRESHOLD_H_
#define NSKY_GRAPH_THRESHOLD_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace nsky::graph {

// One step of a threshold construction sequence.
enum class ThresholdOp : uint8_t {
  kIsolated = 0,   // add a vertex with no edges
  kDominating = 1, // add a vertex adjacent to all previous vertices
};

// Builds the threshold graph defined by `ops` (vertex i is created by
// ops[i]; ops[0] is conventionally kIsolated). Vertices are numbered in
// creation order.
Graph MakeThresholdGraph(const std::vector<ThresholdOp>& ops);

// True iff g is a threshold graph (recognizable by repeatedly removing an
// isolated or a universal vertex). O(n log n + m).
bool IsThresholdGraph(const Graph& g);

// Recovers a construction sequence for g; empty result (for n > 0) means g
// is not a threshold graph. The returned ops rebuild g up to isomorphism;
// `creation_order` (optional) receives the vertex of g created at each
// step.
std::vector<ThresholdOp> ThresholdConstructionSequence(
    const Graph& g, std::vector<VertexId>* creation_order = nullptr);

}  // namespace nsky::graph

#endif  // NSKY_GRAPH_THRESHOLD_H_
