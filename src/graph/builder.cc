#include "graph/builder.h"

#include <utility>

namespace nsky::graph {

VertexId GraphBuilder::InternLabel(uint64_t label) {
  auto [it, inserted] =
      label_to_id_.try_emplace(label, static_cast<VertexId>(id_to_label_.size()));
  if (inserted) id_to_label_.push_back(label);
  return it->second;
}

void GraphBuilder::AddEdge(uint64_t a, uint64_t b) {
  VertexId u = InternLabel(a);
  VertexId v = InternLabel(b);
  edges_.emplace_back(u, v);
}

bool GraphBuilder::LookupLabel(uint64_t label, VertexId* id) const {
  auto it = label_to_id_.find(label);
  if (it == label_to_id_.end()) return false;
  *id = it->second;
  return true;
}

Graph GraphBuilder::Build() {
  Graph g = Graph::FromEdges(NumVertices(), std::move(edges_));
  edges_.clear();
  return g;
}

}  // namespace nsky::graph
