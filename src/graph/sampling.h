// Subgraph scalers for the scalability experiments (Exp-7).
//
// The paper builds four subgraphs per dataset by varying the number of
// vertices (n = 20%..80%) and the density (rho = 20%..80%). We reproduce
// both: vertex sampling keeps a uniform random fraction of vertices and
// takes the induced subgraph; edge sampling keeps every vertex but a uniform
// random fraction of edges.
#ifndef NSKY_GRAPH_SAMPLING_H_
#define NSKY_GRAPH_SAMPLING_H_

#include <cstdint>

#include "graph/graph.h"

namespace nsky::graph {

// Induced subgraph on a uniform `fraction` of the vertices (0 < fraction
// <= 1). Kept vertices are renumbered densely, preserving relative order.
Graph SampleVertices(const Graph& g, double fraction, uint64_t seed);

// Subgraph with all vertices and a uniform `fraction` of the edges.
Graph SampleEdges(const Graph& g, double fraction, uint64_t seed);

// Drops all degree-0 vertices and renumbers the rest densely, preserving
// relative order. Edge-list datasets (SNAP/KONECT) contain no isolated
// vertices, so the synthetic stand-ins apply this to match.
Graph RemoveIsolatedVertices(const Graph& g);

}  // namespace nsky::graph

#endif  // NSKY_GRAPH_SAMPLING_H_
