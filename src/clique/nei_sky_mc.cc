#include "clique/nei_sky_mc.h"

#include "core/engine.h"
#include "core/solver.h"
#include "util/timer.h"

namespace nsky::clique {

NeiSkyMcResult NeiSkyMC(const Graph& g) {
  util::Timer total;
  NeiSkyMcResult result;

  util::Timer sky_timer;
  core::SkylineResult skyline = core::Solve(g);
  result.skyline_seconds = sky_timer.Seconds();
  result.skyline_size = skyline.skyline.size();

  // The heuristic clique primes the incumbent; if nothing beats it the
  // heuristic is already maximum (the seeded search is exhaustive above the
  // incumbent size).
  std::vector<VertexId> incumbent = HeuristicClique(g);
  result.clique = MaxCliqueSeeded(g, skyline.skyline, incumbent);
  result.total_seconds = total.Seconds();
  return result;
}

NeiSkyMcResult NeiSkyMC(core::Engine& engine) {
  util::Timer total;
  NeiSkyMcResult result;

  // Shared skyline pool: computed at most once per engine lifetime, no
  // matter how many consumers (clique, centrality, setjoin) ask for it.
  util::Timer sky_timer;
  const std::vector<VertexId>& skyline = engine.SkylineCache();
  result.skyline_seconds = sky_timer.Seconds();
  result.skyline_size = skyline.size();

  const Graph& g = engine.graph();
  std::vector<VertexId> incumbent = HeuristicClique(g);
  result.clique = MaxCliqueSeeded(g, skyline, incumbent);
  result.total_seconds = total.Seconds();
  return result;
}

}  // namespace nsky::clique
