#include "clique/nei_sky_mc.h"

#include "core/filter_refine_sky.h"
#include "util/timer.h"

namespace nsky::clique {

NeiSkyMcResult NeiSkyMC(const Graph& g) {
  util::Timer total;
  NeiSkyMcResult result;

  util::Timer sky_timer;
  core::SkylineResult skyline = core::FilterRefineSky(g);
  result.skyline_seconds = sky_timer.Seconds();
  result.skyline_size = skyline.skyline.size();

  // The heuristic clique primes the incumbent; if nothing beats it the
  // heuristic is already maximum (the seeded search is exhaustive above the
  // incumbent size).
  std::vector<VertexId> incumbent = HeuristicClique(g);
  result.clique = MaxCliqueSeeded(g, skyline.skyline, incumbent);
  result.total_seconds = total.Seconds();
  return result;
}

}  // namespace nsky::clique
