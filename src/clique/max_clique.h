// Exact maximum clique computation (Sec. IV-C).
//
// The solver is a branch-and-bound in the Tomita style: candidates are
// greedily colored and branches whose |clique| + color bound cannot beat the
// incumbent are cut. Preprocessing uses the core decomposition (a clique of
// size s lives in the (s-1)-core) and a degeneracy-order greedy heuristic
// for the initial lower bound. This is the repository's stand-in for
// MC-BRB [Chang, KDD'19].
//
// Two search drivers share the branch-and-bound engine:
//  * MaxClique       -- BaseMCC: every vertex may seed the search; the
//    degeneracy-order driver restricts each seed's candidates to its later
//    neighbors, which covers every clique exactly once.
//  * MaxCliqueSeeded -- Algorithm 5's driver: branch from H = {u},
//    X = N(u) for each seed u in the given list. Exact whenever at least
//    one maximum clique intersects the seed set (Lemma 5 guarantees this
//    for the neighborhood skyline).
#ifndef NSKY_CLIQUE_MAX_CLIQUE_H_
#define NSKY_CLIQUE_MAX_CLIQUE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace nsky::clique {

using graph::Graph;
using graph::VertexId;

struct CliqueResult {
  // A maximum clique, sorted ascending (empty for the empty graph).
  std::vector<VertexId> clique;
  // Branch-and-bound tree nodes expanded.
  uint64_t branches = 0;
  // Seeds actually searched (after bound-based skipping).
  uint64_t seeds_searched = 0;
  double seconds = 0.0;
};

// Exact maximum clique (BaseMCC / MC-BRB stand-in).
CliqueResult MaxClique(const Graph& g);

// Exact maximum clique containing at least one seed, branching from each
// seed's full neighborhood. `incumbent` primes the search with an already
// known clique (e.g., the heuristic one); the result is the better of the
// incumbent and the best clique found through the seeds, so the output is a
// true maximum clique whenever seeds cover one (Lemma 5).
CliqueResult MaxCliqueSeeded(const Graph& g, std::span<const VertexId> seeds,
                             std::span<const VertexId> incumbent = {});

// Greedy degeneracy-order heuristic clique (lower bound; near-linear time).
std::vector<VertexId> HeuristicClique(const Graph& g);

// Brute-force maximum clique via Bron-Kerbosch enumeration; tests only.
std::vector<VertexId> BruteForceMaxClique(const Graph& g);

// True iff `vertices` forms a clique in g.
bool IsClique(const Graph& g, std::span<const VertexId> vertices);

}  // namespace nsky::clique

#endif  // NSKY_CLIQUE_MAX_CLIQUE_H_
