// Top-k maximum cliques (Sec. IV-C.3).
//
// Interpretation note (recorded in DESIGN.md): the paper describes
// BaseTopkMCC as computing MC(u) per vertex and picking the k largest, and
// NeiSkyTopkMCC as re-running the skyline-seeded search per round while
// updating the skyline. We implement the round-based reading both methods
// share: k rounds, each producing the maximum clique of the remaining
// graph, after which that clique's vertices are removed (so the k answers
// are vertex-disjoint and non-increasing in size).
//  * BaseTopkMCC seeds every round from all remaining vertices.
//  * NeiSkyTopkMCC recomputes the neighborhood skyline of the remaining
//    graph each round (Lemma 6: a dominated vertex never yields a larger
//    clique than its dominator, so skyline seeds suffice) and pays the
//    skyline cost per round -- slower at k = 1, faster for k >= 2,
//    matching Fig. 9.
#ifndef NSKY_CLIQUE_TOPK_H_
#define NSKY_CLIQUE_TOPK_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace nsky::clique {

using graph::Graph;
using graph::VertexId;

struct TopkCliquesResult {
  // The k cliques in discovery order (sizes non-increasing); vertex ids
  // refer to the input graph. Fewer than k when the graph runs out.
  std::vector<std::vector<VertexId>> cliques;
  // Seconds spent on skyline computations (NeiSky variant only).
  double skyline_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t branches = 0;
};

// k vertex-disjoint maximum cliques, all vertices eligible as seeds.
TopkCliquesResult BaseTopkMCC(const Graph& g, uint32_t k);

// Same rounds, seeds restricted to the per-round neighborhood skyline.
TopkCliquesResult NeiSkyTopkMCC(const Graph& g, uint32_t k);

}  // namespace nsky::clique

#endif  // NSKY_CLIQUE_TOPK_H_
