#include "clique/topk.h"

#include <algorithm>
#include <memory>

#include "clique/max_clique.h"
#include "core/solver.h"
#include "util/logging.h"
#include "util/timer.h"

namespace nsky::clique {

namespace {

// Induced subgraph on the vertices with alive[u] != 0, plus the map from
// subgraph ids back to the original ids.
graph::Graph AliveSubgraph(const Graph& g, const std::vector<uint8_t>& alive,
                           std::vector<VertexId>* to_original) {
  to_original->clear();
  std::vector<VertexId> new_id(g.NumVertices(), graph::VertexId(-1));
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    if (alive[u]) {
      new_id[u] = static_cast<VertexId>(to_original->size());
      to_original->push_back(u);
    }
  }
  std::vector<graph::Edge> edges;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    if (!alive[u]) continue;
    for (VertexId v : g.Neighbors(u)) {
      if (u < v && alive[v]) edges.emplace_back(new_id[u], new_id[v]);
    }
  }
  return graph::Graph::FromEdges(static_cast<VertexId>(to_original->size()),
                                 std::move(edges));
}

TopkCliquesResult TopkRounds(const Graph& g, uint32_t k, bool use_skyline) {
  util::Timer total;
  TopkCliquesResult result;
  std::vector<uint8_t> alive(g.NumVertices(), 1);
  uint64_t remaining = g.NumVertices();

  for (uint32_t round = 0; round < k && remaining > 0; ++round) {
    std::vector<VertexId> to_original;
    Graph sub = AliveSubgraph(g, alive, &to_original);

    // Both variants drive the same seeded branch-and-bound engine, as in
    // Sec. IV-C.3: BaseTopkMCC seeds every vertex of the remaining graph,
    // NeiSkyTopkMCC only its per-round skyline. (We recompute the skyline
    // per round: the filter-refine solve is near-linear, whereas incremental
    // maintenance under hub deletions touches 3-hop balls and measured
    // slower -- see DynamicSkyline for the streaming use case.)
    std::vector<VertexId> seeds;
    if (use_skyline) {
      util::Timer sky_timer;
      seeds = core::Solve(sub).skyline;
      result.skyline_seconds += sky_timer.Seconds();
    } else {
      seeds.resize(sub.NumVertices());
      for (VertexId s = 0; s < sub.NumVertices(); ++s) seeds[s] = s;
    }
    CliqueResult round_best =
        MaxCliqueSeeded(sub, seeds, HeuristicClique(sub));
    result.branches += round_best.branches;
    if (round_best.clique.empty()) break;

    std::vector<VertexId> original_clique;
    original_clique.reserve(round_best.clique.size());
    for (VertexId v : round_best.clique) {
      VertexId original = to_original[v];
      original_clique.push_back(original);
      alive[original] = 0;
      --remaining;
    }
    std::sort(original_clique.begin(), original_clique.end());
    result.cliques.push_back(std::move(original_clique));
  }
  result.total_seconds = total.Seconds();
  return result;
}

}  // namespace

TopkCliquesResult BaseTopkMCC(const Graph& g, uint32_t k) {
  return TopkRounds(g, k, /*use_skyline=*/false);
}

TopkCliquesResult NeiSkyTopkMCC(const Graph& g, uint32_t k) {
  return TopkRounds(g, k, /*use_skyline=*/true);
}

}  // namespace nsky::clique
