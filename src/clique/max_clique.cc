#include "clique/max_clique.h"

#include <algorithm>

#include "graph/cores.h"
#include "util/logging.h"
#include "util/timer.h"

namespace nsky::clique {

namespace {

// Tomita-style branch-and-bound engine with greedy-coloring bounds.
class Solver {
 public:
  explicit Solver(const Graph& g)
      : g_(g), mark_(g.NumVertices(), 0) {}

  void PrimeIncumbent(std::span<const VertexId> clique) {
    if (clique.size() > best_.size()) {
      best_.assign(clique.begin(), clique.end());
    }
  }

  // Branches from R = {seed}, P = candidates (all adjacent to seed).
  void SearchFrom(VertexId seed, std::vector<VertexId> candidates) {
    current_.clear();
    current_.push_back(seed);
    Expand(&candidates);
    current_.clear();
  }

  const std::vector<VertexId>& best() const { return best_; }
  uint64_t branches() const { return branches_; }

 private:
  // Greedy coloring of `p`: fills `ordered` with p's vertices sorted by
  // color ascending and `bound[i]` = color number of ordered[i] (an upper
  // bound on the clique size within ordered[0..i]).
  void ColorSort(const std::vector<VertexId>& p,
                 std::vector<VertexId>* ordered, std::vector<uint32_t>* bound) {
    color_classes_.clear();
    for (VertexId v : p) {
      size_t c = 0;
      for (; c < color_classes_.size(); ++c) {
        bool conflict = false;
        for (VertexId x : color_classes_[c]) {
          if (g_.HasEdge(v, x)) {
            conflict = true;
            break;
          }
        }
        if (!conflict) break;
      }
      if (c == color_classes_.size()) color_classes_.emplace_back();
      color_classes_[c].push_back(v);
    }
    ordered->clear();
    bound->clear();
    for (size_t c = 0; c < color_classes_.size(); ++c) {
      for (VertexId v : color_classes_[c]) {
        ordered->push_back(v);
        bound->push_back(static_cast<uint32_t>(c + 1));
      }
    }
  }

  void Expand(std::vector<VertexId>* p) {
    ++branches_;
    if (p->empty()) {
      if (current_.size() > best_.size()) best_ = current_;
      return;
    }
    std::vector<VertexId> ordered;
    std::vector<uint32_t> bound;
    ColorSort(*p, &ordered, &bound);
    std::vector<VertexId> next;
    for (size_t i = ordered.size(); i-- > 0;) {
      if (current_.size() + bound[i] <= best_.size()) return;
      VertexId v = ordered[i];
      // next = ordered[0..i) intersect N(v), via a neighbor stamp.
      ++stamp_;
      for (VertexId x : g_.Neighbors(v)) mark_[x] = stamp_;
      next.clear();
      for (size_t j = 0; j < i; ++j) {
        if (mark_[ordered[j]] == stamp_) next.push_back(ordered[j]);
      }
      current_.push_back(v);
      Expand(&next);
      current_.pop_back();
    }
  }

  const Graph& g_;
  std::vector<VertexId> best_;
  std::vector<VertexId> current_;
  std::vector<std::vector<VertexId>> color_classes_;
  std::vector<uint32_t> mark_;
  uint32_t stamp_ = 0;
  uint64_t branches_ = 0;
};

}  // namespace

bool IsClique(const Graph& g, std::span<const VertexId> vertices) {
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      if (!g.HasEdge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

std::vector<VertexId> HeuristicClique(const Graph& g) {
  const VertexId n = g.NumVertices();
  if (n == 0) return {};
  graph::CoreDecomposition cores = ComputeCores(g);

  // Extend greedily from the highest-core vertices; a handful of trials is
  // enough for a solid lower bound.
  std::vector<VertexId> best;
  const size_t kTrials = std::min<size_t>(n, 32);
  std::vector<uint32_t> mark(n, 0);
  uint32_t stamp = 0;
  for (size_t t = 0; t < kTrials; ++t) {
    VertexId seed = cores.order[n - 1 - t];
    if (cores.core[seed] + 1 <= best.size()) continue;
    std::vector<VertexId> clique = {seed};
    // Candidates sorted by core number descending: densest first.
    std::vector<VertexId> cands(g.Neighbors(seed).begin(),
                                g.Neighbors(seed).end());
    std::sort(cands.begin(), cands.end(), [&](VertexId a, VertexId b) {
      return cores.core[a] != cores.core[b] ? cores.core[a] > cores.core[b]
                                            : a < b;
    });
    for (VertexId v : cands) {
      // v joins if adjacent to every clique member.
      ++stamp;
      for (VertexId x : g.Neighbors(v)) mark[x] = stamp;
      bool ok = true;
      for (VertexId c : clique) {
        if (mark[c] != stamp) {
          ok = false;
          break;
        }
      }
      if (ok) clique.push_back(v);
    }
    if (clique.size() > best.size()) best = std::move(clique);
  }
  std::sort(best.begin(), best.end());
  return best;
}

CliqueResult MaxClique(const Graph& g) {
  util::Timer timer;
  CliqueResult result;
  const VertexId n = g.NumVertices();
  if (n == 0) {
    result.seconds = timer.Seconds();
    return result;
  }

  graph::CoreDecomposition cores = ComputeCores(g);
  Solver solver(g);
  solver.PrimeIncumbent(HeuristicClique(g));

  // Degeneracy-order driver: every clique is found exactly once from its
  // earliest vertex in the order, whose candidates are its later neighbors.
  for (VertexId i = 0; i < n; ++i) {
    VertexId u = cores.order[i];
    // A clique through u has size <= core(u) + 1.
    if (cores.core[u] + 1 <= solver.best().size()) continue;
    std::vector<VertexId> candidates;
    for (VertexId v : g.Neighbors(u)) {
      if (cores.position[v] > i &&
          cores.core[v] >= solver.best().size()) {
        candidates.push_back(v);
      }
    }
    if (candidates.size() + 1 <= solver.best().size()) continue;
    ++result.seeds_searched;
    solver.SearchFrom(u, std::move(candidates));
  }

  result.clique = solver.best();
  std::sort(result.clique.begin(), result.clique.end());
  result.branches = solver.branches();
  result.seconds = timer.Seconds();
  return result;
}

CliqueResult MaxCliqueSeeded(const Graph& g, std::span<const VertexId> seeds,
                             std::span<const VertexId> incumbent) {
  util::Timer timer;
  CliqueResult result;
  const VertexId n = g.NumVertices();
  if (n == 0) {
    result.seconds = timer.Seconds();
    return result;
  }

  graph::CoreDecomposition cores = ComputeCores(g);
  Solver solver(g);
  solver.PrimeIncumbent(incumbent);

  // Search dense seeds first so the incumbent grows early.
  std::vector<VertexId> order(seeds.begin(), seeds.end());
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return cores.core[a] != cores.core[b] ? cores.core[a] > cores.core[b]
                                          : a < b;
  });

  for (VertexId u : order) {
    if (cores.core[u] + 1 <= solver.best().size()) continue;
    std::vector<VertexId> candidates;
    for (VertexId v : g.Neighbors(u)) {
      // Members of a clique beating the incumbent need core >= |best|.
      if (cores.core[v] >= solver.best().size()) candidates.push_back(v);
    }
    if (candidates.size() + 1 <= solver.best().size()) continue;
    ++result.seeds_searched;
    solver.SearchFrom(u, std::move(candidates));
  }

  result.clique = solver.best();
  std::sort(result.clique.begin(), result.clique.end());
  result.branches = solver.branches();
  result.seconds = timer.Seconds();
  return result;
}

namespace {

// Bron-Kerbosch with pivoting; exponential, tests only.
void BronKerbosch(const Graph& g, std::vector<VertexId>& r,
                  std::vector<VertexId> p, std::vector<VertexId> x,
                  std::vector<VertexId>* best) {
  if (p.empty() && x.empty()) {
    if (r.size() > best->size()) *best = r;
    return;
  }
  // Pivot: vertex of p+x with most neighbors in p.
  VertexId pivot = graph::VertexId(-1);
  size_t best_cover = 0;
  auto consider = [&](VertexId c) {
    size_t cover = 0;
    for (VertexId v : p) {
      if (g.HasEdge(c, v)) ++cover;
    }
    if (pivot == graph::VertexId(-1) || cover > best_cover) {
      pivot = c;
      best_cover = cover;
    }
  };
  for (VertexId c : p) consider(c);
  for (VertexId c : x) consider(c);

  std::vector<VertexId> frontier;
  for (VertexId v : p) {
    if (!g.HasEdge(pivot, v)) frontier.push_back(v);
  }
  for (VertexId v : frontier) {
    std::vector<VertexId> p2, x2;
    for (VertexId w : p) {
      if (g.HasEdge(v, w)) p2.push_back(w);
    }
    for (VertexId w : x) {
      if (g.HasEdge(v, w)) x2.push_back(w);
    }
    r.push_back(v);
    BronKerbosch(g, r, std::move(p2), std::move(x2), best);
    r.pop_back();
    p.erase(std::find(p.begin(), p.end(), v));
    x.push_back(v);
  }
}

}  // namespace

std::vector<VertexId> BruteForceMaxClique(const Graph& g) {
  std::vector<VertexId> r, best;
  std::vector<VertexId> p(g.NumVertices());
  for (VertexId u = 0; u < g.NumVertices(); ++u) p[u] = u;
  BronKerbosch(g, r, std::move(p), {}, &best);
  std::sort(best.begin(), best.end());
  return best;
}

}  // namespace nsky::clique
