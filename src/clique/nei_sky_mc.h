// NeiSkyMC (Algorithm 5): maximum clique computation seeded only from the
// neighborhood skyline.
//
// Lemma 5 (and the companion existence argument): for every maximum clique H
// and every v in H, any terminal dominator z of v yields a maximum clique
// (H \ {v}) + {z}; hence some maximum clique intersects the skyline R and
// branching only from R's vertices is exact.
#ifndef NSKY_CLIQUE_NEI_SKY_MC_H_
#define NSKY_CLIQUE_NEI_SKY_MC_H_

#include <cstdint>

#include "clique/max_clique.h"
#include "graph/graph.h"

namespace nsky::core {
class Engine;
}  // namespace nsky::core

namespace nsky::clique {

struct NeiSkyMcResult {
  CliqueResult clique;
  // Size of the neighborhood skyline used as the seed set.
  uint64_t skyline_size = 0;
  // Seconds spent computing the skyline (included in total_seconds).
  double skyline_seconds = 0.0;
  // Skyline + search.
  double total_seconds = 0.0;
};

// Computes a maximum clique of g with skyline-restricted seeding.
NeiSkyMcResult NeiSkyMC(const Graph& g);

// Engine-seeded variant: reads the skyline from the engine's shared cache
// (core::Engine::SkylineCache), so repeated invocations -- or other
// consumers of the same engine -- compute it at most once.
NeiSkyMcResult NeiSkyMC(core::Engine& engine);

}  // namespace nsky::clique

#endif  // NSKY_CLIQUE_NEI_SKY_MC_H_
