// Influence-seed selection: pick k monitoring/broadcast locations that
// minimize the average shortest-path distance to everyone else (the group
// closeness maximization application of Sec. IV-A), and show how the
// neighborhood-skyline pruning accelerates the greedy without changing its
// answer. Also demonstrates the CELF lazy-evaluation extension.
//
//   ./influence_seeds [k]
#include <cstdio>
#include <cstdlib>

#include "centrality/greedy.h"
#include "centrality/group_centrality.h"
#include "datasets/registry.h"

int main(int argc, char** argv) {
  using namespace nsky;
  uint32_t k = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 8;

  graph::Graph g =
      datasets::MakeStandin("youtube", datasets::StandinScale::kSmall).value();
  std::printf("youtube stand-in: n = %u, m = %llu\n", g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()));

  centrality::GreedyResult base = centrality::BaseGC(g, k);
  centrality::GreedyResult pruned = centrality::NeiSkyGC(g, k);

  std::printf("\nBaseGC   (pool = all %llu vertices): GC = %.6f, "
              "%llu gain calls, %.3f s\n",
              static_cast<unsigned long long>(base.pool_size), base.score,
              static_cast<unsigned long long>(base.gain_calls), base.seconds);
  std::printf("NeiSkyGC (pool = %llu skyline vertices): GC = %.6f, "
              "%llu gain calls, %.3f s (skyline: %.3f s)\n",
              static_cast<unsigned long long>(pruned.pool_size), pruned.score,
              static_cast<unsigned long long>(pruned.gain_calls),
              pruned.seconds, pruned.skyline_seconds);

  std::printf("\nselected seeds (NeiSkyGC):");
  for (graph::VertexId v : pruned.group) std::printf(" %u", v);
  std::printf("\nscores match: %s\n",
              std::abs(base.score - pruned.score) < 1e-9 ? "yes" : "no");

  // CELF lazy evaluation on top of the skyline pruning: same score again,
  // far fewer gain evaluations.
  centrality::GreedyOptions lazy;
  lazy.objective = centrality::Objective::kCloseness;
  lazy.use_skyline_pruning = true;
  lazy.lazy = true;
  centrality::GreedyResult celf = centrality::GreedyGroupMaximization(g, k, lazy);
  std::printf("\nCELF + skyline: GC = %.6f, %llu gain calls, %.3f s\n",
              celf.score, static_cast<unsigned long long>(celf.gain_calls),
              celf.seconds);
  return 0;
}
