// Community-core mining: find the k largest vertex-disjoint cliques of a
// collaboration-style network (the maximum-clique application of
// Sec. IV-C), comparing the plain branch-and-bound rounds with the
// skyline-seeded NeiSkyTopkMCC.
//
//   ./community_cliques [k]
#include <cstdio>
#include <cstdlib>

#include "clique/nei_sky_mc.h"
#include "clique/topk.h"
#include "datasets/registry.h"

int main(int argc, char** argv) {
  using namespace nsky;
  uint32_t k = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 5;

  graph::Graph g =
      datasets::MakeStandin("orkut", datasets::StandinScale::kSmall).value();
  std::printf("orkut stand-in: n = %u, m = %llu\n", g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()));

  // Single maximum clique, both ways.
  clique::NeiSkyMcResult pruned = clique::NeiSkyMC(g);
  std::printf("\nmaximum clique (NeiSkyMC, %llu skyline seeds): size %zu, "
              "%.3f s total (%.3f s skyline)\n",
              static_cast<unsigned long long>(pruned.skyline_size),
              pruned.clique.clique.size(), pruned.total_seconds,
              pruned.skyline_seconds);
  std::printf("  members:");
  for (graph::VertexId v : pruned.clique.clique) std::printf(" %u", v);
  std::printf("\n");

  // Top-k disjoint cliques.
  auto base = clique::BaseTopkMCC(g, k);
  auto sky = clique::NeiSkyTopkMCC(g, k);
  std::printf("\ntop-%u vertex-disjoint cliques:\n", k);
  std::printf("  %-18s %-12s %-12s\n", "round", "Base size", "NeiSky size");
  for (size_t i = 0; i < base.cliques.size(); ++i) {
    std::printf("  %-18zu %-12zu %-12zu\n", i + 1, base.cliques[i].size(),
                i < sky.cliques.size() ? sky.cliques[i].size() : 0);
  }
  std::printf("BaseTopkMCC: %.3f s, NeiSkyTopkMCC: %.3f s\n",
              base.total_seconds, sky.total_seconds);
  return 0;
}
