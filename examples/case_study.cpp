// Case study (Fig. 13): visualize which members of two small real networks
// are "structurally redundant" -- dominated by someone whose neighborhood
// covers theirs -- versus the skyline members that define the network.
//
//   ./case_study
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/solver.h"
#include "datasets/bombing.h"
#include "datasets/karate.h"

namespace {

void Report(const char* name, const nsky::graph::Graph& g) {
  using namespace nsky;
  core::SkylineResult r = core::Solve(g, core::SolverOptions{});
  std::printf("=== %s (n = %u, m = %llu) ===\n", name, g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()));
  std::printf("skyline (%zu vertices, %.0f%%):\n", r.skyline.size(),
              100.0 * static_cast<double>(r.skyline.size()) / g.NumVertices());
  for (graph::VertexId u : r.skyline) {
    std::printf("  v%-3u degree %u\n", u, g.Degree(u));
  }
  std::printf("dominated vertices grouped by dominator:\n");
  for (graph::VertexId w : r.skyline) {
    std::vector<graph::VertexId> dominated;
    for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
      if (u != w && r.dominator[u] == w) dominated.push_back(u);
    }
    if (dominated.empty()) continue;
    std::printf("  v%-3u covers:", w);
    for (graph::VertexId u : dominated) std::printf(" v%u", u);
    std::printf("\n");
  }
  // Dominators can themselves be dominated (the O array records the first
  // dominator found, which need not be a skyline member).
  uint64_t chained = 0;
  for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
    if (r.dominator[u] != u && r.dominator[r.dominator[u]] != r.dominator[u]) {
      ++chained;
    }
  }
  std::printf("vertices whose recorded dominator is itself dominated: %llu\n\n",
              static_cast<unsigned long long>(chained));
}

}  // namespace

int main() {
  using namespace nsky;
  Report("Zachary karate club (exact)", datasets::MakeKarateClub());
  Report("Madrid bombing contact network (surrogate)",
         datasets::MakeBombingSurrogate());
  return 0;
}
