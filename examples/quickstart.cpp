// Quickstart: load or generate a graph, compute its neighborhood skyline,
// and inspect the result.
//
//   ./quickstart [edge_list.txt]
//
// Without an argument a small synthetic social network is generated. With a
// path, a SNAP/KONECT-style edge list is loaded ('#'/'%' comments, two
// whitespace-separated vertex labels per line).
#include <cstdio>

#include "core/nsky.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace nsky;

  // ---- 1. Obtain a graph. ----
  graph::Graph g;
  if (argc > 1) {
    util::Result<graph::Graph> loaded = graph::LoadEdgeList(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
    std::printf("loaded %s\n", argv[1]);
  } else {
    g = graph::MakeSocialGraph(/*n=*/20'000, /*avg_degree=*/6.0,
                               /*pendant_fraction=*/0.6, /*triad_prob=*/0.4,
                               /*seed=*/1, /*copy_prob=*/0.3);
    std::printf("generated a synthetic social network\n");
  }
  std::printf("graph: %s\n", graph::StatsToString(graph::ComputeStats(g)).c_str());

  // ---- 2. Compute the neighborhood skyline. ----
  // Solve() is the unified entry point; options pick the algorithm and
  // worker count (the result is identical for any thread count).
  core::SolverOptions options;
  options.threads = util::ThreadPool::HardwareThreads();
  core::SkylineResult result = core::Solve(g, options);
  std::printf("neighborhood skyline: %zu of %u vertices (%.1f%%)\n",
              result.skyline.size(), g.NumVertices(),
              100.0 * static_cast<double>(result.skyline.size()) /
                  g.NumVertices());
  std::printf("  filter phase kept %llu candidates; %llu exact checks; "
              "%llu bloom rejections\n",
              static_cast<unsigned long long>(result.stats.candidate_count),
              static_cast<unsigned long long>(result.stats.inclusion_tests),
              static_cast<unsigned long long>(result.stats.bloom_prunes));
  std::printf("  took %.3f s\n", result.stats.seconds);

  // ---- 3. Inspect a dominated vertex. ----
  for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
    if (result.dominator[u] != u) {
      graph::VertexId w = result.dominator[u];
      std::printf(
          "example: vertex %u (degree %u) is dominated by vertex %u "
          "(degree %u) -- every neighbor of %u is also adjacent to %u\n",
          u, g.Degree(u), w, g.Degree(w), u, w);
      break;
    }
  }
  return 0;
}
