// Shared graph fixtures for the test suites.
#ifndef NSKY_TESTS_TESTING_FIXTURES_H_
#define NSKY_TESTS_TESTING_FIXTURES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"

namespace nsky::testing {

// A named, seeded graph factory used by parameterized property suites.
struct GraphCase {
  std::string name;
  std::function<graph::Graph(uint64_t seed)> make;
};

// Printable parameter name for INSTANTIATE_TEST_SUITE_P.
inline std::string GraphCaseName(
    const ::testing::TestParamInfo<GraphCase>& info) {
  return info.param.name;
}

// A diverse family of small random and structured graphs. Every skyline
// property test runs over all of these with several seeds.
inline std::vector<GraphCase> SmallGraphCases() {
  using graph::Graph;
  return {
      {"er_sparse", [](uint64_t s) { return graph::MakeErdosRenyi(120, 0.03, s); }},
      {"er_medium", [](uint64_t s) { return graph::MakeErdosRenyi(80, 0.10, s); }},
      {"er_dense", [](uint64_t s) { return graph::MakeErdosRenyi(40, 0.35, s); }},
      {"powerlaw_heavy",
       [](uint64_t s) { return graph::MakeChungLuPowerLaw(200, 2.1, 5, s); }},
      {"powerlaw_light",
       [](uint64_t s) { return graph::MakeChungLuPowerLaw(200, 3.0, 8, s); }},
      {"barabasi_albert",
       [](uint64_t s) { return graph::MakeBarabasiAlbert(150, 3, s); }},
      {"caveman",
       [](uint64_t s) { return graph::MakeCaveman(5 + s % 4, 6); }},
      {"grid", [](uint64_t s) { return graph::MakeGrid(6 + s % 5, 7); }},
      {"tree", [](uint64_t s) { return graph::MakeCompleteBinaryTree(4 + s % 3); }},
      {"with_isolated",
       [](uint64_t s) {
         // Random graph plus guaranteed isolated vertices at the top ids.
         graph::Graph base = graph::MakeErdosRenyi(60, 0.08, s);
         std::vector<graph::Edge> edges = base.Edges();
         return Graph::FromEdges(70, std::move(edges));
       }},
  };
}

// Seeds used with each case.
inline std::vector<uint64_t> PropertySeeds() { return {1, 2, 3, 7, 42}; }

}  // namespace nsky::testing

#endif  // NSKY_TESTS_TESTING_FIXTURES_H_
