// Zero-downtime hot reload: POST /v1/admin/reload epoch-swaps the serving
// engine between snapshots while queries keep flowing; failed reloads leave
// the serving engine untouched; provenance (/healthz, engine stats, flight
// recorder) flips atomically with the swap. Also covers the CLI sides:
// `serve --watch-snapshot-ms` hot-reloads when the snapshot file's id
// changes, and `serve --snapshot --fallback-cold-build` degrades a failed
// load to a cold build.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "graph/generators.h"
#include "persist/snapshot.h"
#include "server/client.h"
#include "server/server.h"
#include "server/service.h"
#include "tools/cli.h"

namespace nsky::server {
namespace {

graph::Graph GraphA() { return graph::MakeChungLuPowerLaw(300, 2.3, 5, 3); }
graph::Graph GraphB() { return graph::MakeChungLuPowerLaw(250, 2.2, 4, 11); }

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/nsky_reload_" +
         std::to_string(static_cast<long>(::getpid())) + "_" + name;
}

std::string NormalizeSeconds(const std::string& json) {
  static const std::regex kSeconds("\"seconds\":[0-9.eE+-]+");
  return std::regex_replace(json, kSeconds, "\"seconds\":X");
}

// Saves a warm snapshot of `g` at TempPath(name); returns the path.
std::string SaveSnapshot(graph::Graph g, const std::string& name) {
  core::Engine engine(std::move(g));
  engine.Query();
  std::string path = TempPath(name);
  EXPECT_TRUE(persist::Save(engine, path).ok());
  return path;
}

std::unique_ptr<core::Engine> LoadEngine(const std::string& path) {
  auto loaded = persist::Load(path);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

// One POST round trip (HttpClient only speaks GET natively).
util::Result<ClientResponse> HttpPost(uint16_t port,
                                      const std::string& target) {
  HttpClient client(port);
  return client.Raw("POST " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

// A server whose service stays reachable, so tests can Reload() directly
// and read the lifecycle counters.
class ReloadServer {
 public:
  explicit ReloadServer(std::unique_ptr<core::Engine> engine,
                        ServiceOptions options = ServiceOptions{}) {
    service_ =
        std::make_unique<SkylineService>(std::move(engine), options);
    server_ = std::make_unique<Server>(service_.get(), ServerOptions{});
    auto status = server_->Listen();
    EXPECT_TRUE(status.ok()) << status.ToString();
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  ~ReloadServer() {
    server_->Shutdown();
    serve_thread_.join();
  }

  uint16_t port() const { return server_->port(); }
  SkylineService& service() { return *service_; }

 private:
  std::unique_ptr<SkylineService> service_;
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
};

TEST(Reload, PostSwapsEngineAndFlipsProvenance) {
  std::string path_a = SaveSnapshot(GraphA(), "swap_a.nsnap");
  std::string path_b = SaveSnapshot(GraphB(), "swap_b.nsnap");
  auto engine = LoadEngine(path_a);
  std::string id_a = engine->snapshot_info()->id;
  ReloadServer ts(std::move(engine));

  // Pin the pre-reload answer, then reload over the wire.
  auto before = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().status, 200);
  EXPECT_EQ(before.value().headers.at("x-nsky-snapshot"), id_a);

  auto reload = HttpPost(ts.port(), "/v1/admin/reload?snapshot=" + path_b);
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  ASSERT_EQ(reload.value().status, 200) << reload.value().body;
  EXPECT_NE(reload.value().body.find("\"schema\":\"nsky.reload.v1\""),
            std::string::npos);
  EXPECT_NE(reload.value().body.find("\"previous_id\":\"" + id_a + "\""),
            std::string::npos);
  EXPECT_NE(reload.value().body.find("\"reloads\":1"), std::string::npos);

  std::string id_b = persist::PeekSnapshotId(path_b).value();
  ASSERT_NE(id_a, id_b);

  // Every provenance surface now reports the new snapshot.
  auto health = HttpGet(ts.port(), "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().body, "ok\nsnapshot " + id_b + "\n");

  auto after = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().status, 200);
  EXPECT_EQ(after.value().headers.at("x-nsky-snapshot"), id_b);
  EXPECT_NE(NormalizeSeconds(after.value().body),
            NormalizeSeconds(before.value().body))
      << "distinct graphs must answer distinct documents";

  auto stats = HttpGet(ts.port(), "/v1/engine_stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().body.find("\"snapshot\":{\"id\":\"" + id_b + "\""),
            std::string::npos);
  EXPECT_NE(stats.value().body.find("\"lifecycle\":{\"reloads\":1"),
            std::string::npos)
      << stats.value().body;

  // The flight recorder keeps both epochs: the pre-reload query is stamped
  // with A's origin, the post-reload one with B's.
  auto queries = HttpGet(ts.port(), "/v1/queries");
  ASSERT_TRUE(queries.ok());
  EXPECT_NE(queries.value().body.find("\"origin\":\"snapshot:" + id_b + "\""),
            std::string::npos)
      << queries.value().body;

  auto prom = HttpGet(ts.port(), "/v1/metrics");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom.value().body.find("nsky_engine_reloads 1"),
            std::string::npos)
      << prom.value().body;
}

TEST(Reload, FailedReloadLeavesServingEngineUntouched) {
  std::string path_a = SaveSnapshot(GraphA(), "fail_a.nsnap");
  auto engine = LoadEngine(path_a);
  std::string id_a = engine->snapshot_info()->id;
  ReloadServer ts(std::move(engine));

  // Missing file: NOT_FOUND, structured body, engine untouched.
  auto missing = HttpPost(ts.port(), "/v1/admin/reload?snapshot=" +
                                         TempPath("missing.nsnap"));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);
  EXPECT_NE(missing.value().body.find("\"schema\":\"nsky.error.v1\""),
            std::string::npos);

  // Garbage file (full header's worth of non-snapshot bytes): bad magic,
  // invalid-argument, engine untouched.
  std::string garbage = TempPath("garbage.nsnap");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << std::string(80, 'x');
  }
  auto bad = HttpPost(ts.port(), "/v1/admin/reload?snapshot=" + garbage);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().status, 400);
  EXPECT_NE(bad.value().body.find("\"schema\":\"nsky.error.v1\""),
            std::string::npos);
  std::remove(garbage.c_str());

  EXPECT_EQ(ts.service().reloads(), 0u);
  EXPECT_EQ(ts.service().reload_failures(), 2u);

  // Still serving snapshot A, and the failures are on the books.
  auto health = HttpGet(ts.port(), "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().body, "ok\nsnapshot " + id_a + "\n");
  auto stats = HttpGet(ts.port(), "/v1/engine_stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().body.find("\"reload_failures\":2"),
            std::string::npos)
      << stats.value().body;
  auto query = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.value().status, 200);
  EXPECT_EQ(query.value().headers.at("x-nsky-snapshot"), id_a);
}

TEST(Reload, RouteValidation) {
  std::string path_a = SaveSnapshot(GraphA(), "route_a.nsnap");
  ReloadServer ts(LoadEngine(path_a));

  auto get = HttpGet(ts.port(), "/v1/admin/reload?snapshot=" + path_a);
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get.value().status, 405);

  auto no_param = HttpPost(ts.port(), "/v1/admin/reload");
  ASSERT_TRUE(no_param.ok());
  EXPECT_EQ(no_param.value().status, 400);
  EXPECT_NE(no_param.value().body.find("snapshot=PATH"), std::string::npos);

  auto bad_budget = HttpPost(
      ts.port(),
      "/v1/admin/reload?snapshot=" + path_a + "&timeout_ms=banana");
  ASSERT_TRUE(bad_budget.ok());
  EXPECT_EQ(bad_budget.value().status, 400);

  // POST on a query route stays unsupported.
  auto post_query = HttpPost(ts.port(), "/v1/skyline");
  ASSERT_TRUE(post_query.ok());
  EXPECT_EQ(post_query.value().status, 405);
}

// The acceptance drill: >= 100 queries race >= 3 hot reloads between two
// distinct snapshots. Zero failed or dropped requests, and every response
// body is byte-identical (modulo wall-clock seconds) to the canonical
// answer of the engine its X-Nsky-Snapshot header names.
TEST(ReloadStress, ConcurrentQueriesAcrossReloads) {
  std::string path_a = SaveSnapshot(GraphA(), "stress_a.nsnap");
  std::string path_b = SaveSnapshot(GraphB(), "stress_b.nsnap");
  std::string id_a = persist::PeekSnapshotId(path_a).value();
  std::string id_b = persist::PeekSnapshotId(path_b).value();
  ASSERT_NE(id_a, id_b);

  ServiceOptions options;
  options.max_inflight = 64;  // nothing sheds; every request must answer
  ReloadServer ts(LoadEngine(path_a), options);

  // Canonical answer per snapshot id, captured before the race.
  std::map<std::string, std::string> expected;
  auto first = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().status, 200);
  expected[id_a] = NormalizeSeconds(first.value().body);
  ASSERT_TRUE(ts.service().Reload(path_b).ok());
  auto second = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().status, 200);
  expected[id_b] = NormalizeSeconds(second.value().body);
  ASSERT_NE(expected[id_a], expected[id_b]);
  ASSERT_TRUE(ts.service().Reload(path_a).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;  // 120 queries total
  std::atomic<int> completed{0};
  std::atomic<int> failures{0};
  std::vector<std::string> first_error(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client(ts.port());
      for (int i = 0; i < kPerThread; ++i) {
        auto r = client.Get("/v1/skyline");
        std::string error;
        if (!r.ok()) {
          error = "transport: " + r.status().ToString();
        } else if (r.value().status != 200) {
          error = "status " + std::to_string(r.value().status) + ": " +
                  r.value().body;
        } else {
          auto it = r.value().headers.find("x-nsky-snapshot");
          auto want = it == r.value().headers.end()
                          ? expected.end()
                          : expected.find(it->second);
          if (it == r.value().headers.end()) {
            error = "missing X-Nsky-Snapshot header";
          } else if (want == expected.end()) {
            error = "unknown snapshot id " + it->second;
          } else if (NormalizeSeconds(r.value().body) != want->second) {
            error = "body does not match engine " + it->second;
          }
        }
        if (!error.empty()) {
          failures.fetch_add(1);
          if (first_error[t].empty()) first_error[t] = error;
        }
        completed.fetch_add(1);
      }
    });
  }

  // Reload back and forth while the clients hammer: four swaps, each one
  // required to succeed while queries are in flight.
  const std::string* flips[] = {&path_b, &path_a, &path_b, &path_a};
  int reloads_done = 0;
  for (const std::string* path : flips) {
    // Spread the swaps across the request stream rather than doing them
    // all before the clients ramp up.
    while (completed.load() < reloads_done * 25 &&
           completed.load() < kThreads * kPerThread) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    auto swapped = ts.service().Reload(*path);
    EXPECT_TRUE(swapped.ok()) << swapped.status().ToString();
    ++reloads_done;
  }

  for (auto& c : clients) c.join();
  EXPECT_EQ(completed.load(), kThreads * kPerThread);
  EXPECT_EQ(failures.load(), 0)
      << "first errors per thread: " << first_error[0] << " | "
      << first_error[1] << " | " << first_error[2] << " | " << first_error[3];
  EXPECT_EQ(ts.service().reloads(), 6u);  // 2 in setup + 4 in the race
}

// ---------------------------------------------------------------------------
// CLI lifecycle: --watch-snapshot-ms and --fallback-cold-build.

// Polls `port_file` until the serve thread publishes its bound port.
uint16_t WaitForPortFile(const std::string& port_file) {
  for (int i = 0; i < 1500; ++i) {
    std::ifstream in(port_file);
    uint64_t port = 0;
    if (in >> port && port > 0) return static_cast<uint16_t>(port);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return 0;
}

TEST(ServeLifecycleCli, WatchSnapshotHotReloadsOnIdChange) {
  std::string snap = SaveSnapshot(GraphA(), "watch.nsnap");
  std::string id_a = persist::PeekSnapshotId(snap).value();
  std::string port_file = TempPath("watch.port");
  std::remove(port_file.c_str());

  constexpr uint64_t kBudget = 60;  // total requests the server will answer
  std::ostringstream out, err;
  int code = -1;
  std::thread serve([&] {
    code = tools::RunCli(
        {"serve", "--snapshot", snap, "--watch-snapshot-ms", "20", "--port",
         "0", "--port-file", port_file, "--max-requests",
         std::to_string(kBudget)},
        out, err);
  });

  uint16_t port = WaitForPortFile(port_file);
  uint64_t used = 0;
  std::string flipped_to;
  if (port != 0) {
    auto health = HttpGet(port, "/healthz");
    ++used;
    EXPECT_TRUE(health.ok() &&
                health.value().body == "ok\nsnapshot " + id_a + "\n");

    // Atomically replace the snapshot file with a different engine's; the
    // watcher must notice the id change and swap, with the server up the
    // whole time.
    SaveSnapshot(GraphB(), "watch.nsnap");
    std::string id_b = persist::PeekSnapshotId(snap).value();
    EXPECT_NE(id_a, id_b);
    const std::string want = "ok\nsnapshot " + id_b + "\n";
    while (used + 1 < kBudget) {
      auto h = HttpGet(port, "/healthz");
      ++used;
      if (h.ok() && h.value().body == want) {
        flipped_to = id_b;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  // Burn the rest of the request budget so Serve() returns and the CLI
  // thread can be joined even when an expectation above failed.
  for (; used < kBudget && port != 0; ++used) HttpGet(port, "/healthz");
  serve.join();

  ASSERT_NE(port, 0) << "server never published its port: " << err.str();
  EXPECT_FALSE(flipped_to.empty())
      << "watcher never reloaded onto the new snapshot id";
  EXPECT_EQ(code, 0) << err.str();
  std::remove(port_file.c_str());
  std::remove(snap.c_str());
}

TEST(ServeLifecycleCli, FallbackColdBuildServesWhenSnapshotMissing) {
  std::string port_file = TempPath("fallback.port");
  std::remove(port_file.c_str());
  std::ostringstream out, err;
  int code = -1;
  std::thread serve([&] {
    code = tools::RunCli(
        {"serve", "--snapshot", TempPath("nope.nsnap"),
         "--fallback-cold-build", "--generate", "star:64", "--port", "0",
         "--port-file", port_file, "--max-requests", "2"},
        out, err);
  });

  uint16_t port = WaitForPortFile(port_file);
  std::string health_body, stats_body;
  if (port != 0) {
    // The port file was written atomically: no temp remnant alongside it.
    EXPECT_FALSE(std::ifstream(port_file + ".tmp").good());
    auto health = HttpGet(port, "/healthz");
    if (health.ok()) health_body = health.value().body;
    auto stats = HttpGet(port, "/v1/engine_stats");
    if (stats.ok()) stats_body = stats.value().body;
  }
  serve.join();

  ASSERT_NE(port, 0) << "server never published its port: " << err.str();
  EXPECT_EQ(code, 0) << err.str();
  // Cold-built replica: no snapshot provenance, but the fallback is on the
  // books in the lifecycle block and on stderr.
  EXPECT_EQ(health_body, "ok\n");
  EXPECT_NE(stats_body.find("\"cold_fallbacks\":1"), std::string::npos)
      << stats_body;
  EXPECT_NE(err.str().find("cold build"), std::string::npos) << err.str();
  std::remove(port_file.c_str());
}

TEST(ServeLifecycleCli, FallbackColdBuildServesWhenSnapshotCorrupt) {
  std::string snap = TempPath("corrupt.nsnap");
  {
    std::ofstream f(snap, std::ios::binary);
    f << "NOT A SNAPSHOT";
  }
  std::string port_file = TempPath("corrupt.port");
  std::remove(port_file.c_str());
  std::ostringstream out, err;
  int code = -1;
  std::thread serve([&] {
    code = tools::RunCli({"serve", "--snapshot", snap, "--fallback-cold-build",
                          "--generate", "star:64", "--port", "0",
                          "--port-file", port_file, "--max-requests", "1"},
                         out, err);
  });
  uint16_t port = WaitForPortFile(port_file);
  std::string health_body;
  if (port != 0) {
    auto health = HttpGet(port, "/healthz");
    if (health.ok()) health_body = health.value().body;
  }
  serve.join();
  ASSERT_NE(port, 0) << err.str();
  EXPECT_EQ(code, 0) << err.str();
  EXPECT_EQ(health_body, "ok\n");
  std::remove(snap.c_str());
  std::remove(port_file.c_str());
}

TEST(ServeLifecycleCli, FallbackFlagRequiresSnapshotAndServe) {
  std::ostringstream out, err;
  EXPECT_EQ(tools::RunCli({"serve", "--generate", "star:8",
                           "--fallback-cold-build"},
                          out, err),
            2);
  EXPECT_EQ(tools::RunCli({"skyline", "--generate", "star:8",
                           "--fallback-cold-build"},
                          out, err),
            2);
  EXPECT_EQ(tools::RunCli({"serve", "--generate", "star:8",
                           "--watch-snapshot-ms", "50"},
                          out, err),
            2);
}

}  // namespace
}  // namespace nsky::server
