// End-to-end server tests over real loopback sockets: byte-identity with
// the CLI, malformed-request handling, slow-client timeouts, deterministic
// load shedding, draining, and concurrent-connection stress (run under TSan
// by scripts/check.sh --tsan).
#include "server/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/registry.h"
#include "server/client.h"
#include "server/service.h"
#include "tools/cli.h"
#include "util/fault_injection.h"
#include "util/json_writer.h"

namespace nsky::server {
namespace {

// Timing jitter lives only in the "seconds" measurements; everything else in
// the documents is deterministic. Blank the numbers, keep the keys.
std::string NormalizeSeconds(const std::string& json) {
  static const std::regex kSeconds("\"seconds\":[0-9.eE+-]+");
  return std::regex_replace(json, kSeconds, "\"seconds\":X");
}

// One service + server on an ephemeral loopback port, with Serve() running
// on a helper thread for the fixture's lifetime.
class TestServer {
 public:
  explicit TestServer(ServiceOptions service_options = {},
                      ServerOptions server_options = {}) {
    auto g = datasets::MakeStandin("notredame", datasets::StandinScale::kSmall);
    service_ = std::make_unique<SkylineService>(std::move(g.value()),
                                                service_options);
    server_ = std::make_unique<Server>(service_.get(), server_options);
    auto status = server_->Listen();
    EXPECT_TRUE(status.ok()) << status.ToString();
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  ~TestServer() {
    server_->Shutdown();
    serve_thread_.join();
  }

  uint16_t port() const { return server_->port(); }
  SkylineService& service() { return *service_; }
  Server& server() { return *server_; }

 private:
  std::unique_ptr<SkylineService> service_;
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
};

TEST(Server, HealthzAndNotFound) {
  TestServer ts;
  auto ok = HttpGet(ts.port(), "/healthz");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().status, 200);
  EXPECT_EQ(ok.value().body, "ok\n");

  auto missing = HttpGet(ts.port(), "/no/such/route");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);
  EXPECT_NE(missing.value().body.find("\"schema\":\"nsky.error.v1\""),
            std::string::npos);
  EXPECT_NE(missing.value().body.find("\"code\":\"NOT_FOUND\""),
            std::string::npos);
}

// The acceptance bar of the serving PR: the loopback response body is the
// CLI's --engine --json output, byte for byte, for every algorithm at 1, 2,
// and 8 threads (seconds normalized -- wall time is the one honest
// difference).
TEST(Server, SkylineBodyIsByteIdenticalToCli) {
  TestServer ts;
  HttpClient client(ts.port());
  for (const char* algo : {"base", "filter-refine", "cset", "2hop"}) {
    for (const char* threads : {"1", "2", "8"}) {
      std::ostringstream out, err;
      int code = tools::RunCli({"skyline", "--standin", "notredame",
                                "--scale", "small", "--algo", algo,
                                "--threads", threads, "--engine", "--json"},
                               out, err);
      ASSERT_EQ(code, 0) << err.str();

      auto served = client.Get(std::string("/v1/skyline?algo=") + algo +
                               "&threads=" + threads);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      ASSERT_EQ(served.value().status, 200) << served.value().body;
      EXPECT_EQ(NormalizeSeconds(served.value().body),
                NormalizeSeconds(out.str()))
          << "algo=" << algo << " threads=" << threads;
    }
  }
}

TEST(Server, RepeatAndStatsParametersMatchCli) {
  TestServer ts;
  std::ostringstream out, err;
  int code = tools::RunCli(
      {"skyline", "--standin", "notredame", "--scale", "small", "--algo",
       "filter-refine", "--threads", "2", "--engine", "--repeat", "3",
       "--json"},
      out, err);
  ASSERT_EQ(code, 0) << err.str();
  auto served = HttpGet(
      ts.port(), "/v1/skyline?algo=filter-refine&threads=2&repeat=3");
  ASSERT_TRUE(served.ok());
  ASSERT_EQ(served.value().status, 200);
  EXPECT_EQ(NormalizeSeconds(served.value().body),
            NormalizeSeconds(out.str()));

  // stats=1 embeds the engine documents, like the CLI's --stats.
  auto with_stats = HttpGet(ts.port(), "/v1/skyline?stats=1");
  ASSERT_TRUE(with_stats.ok());
  ASSERT_EQ(with_stats.value().status, 200);
  EXPECT_NE(with_stats.value().body.find("\"engine_stats\""),
            std::string::npos);
  EXPECT_NE(with_stats.value().body.find("\"recent_queries\""),
            std::string::npos);
}

TEST(Server, IntrospectionEndpointsServeValidDocuments) {
  TestServer ts;
  HttpClient client(ts.port());
  ASSERT_TRUE(client.Get("/v1/skyline").ok());

  auto stats = client.Get("/v1/engine_stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().status, 200);
  auto stats_doc = util::JsonParse(stats.value().body);
  ASSERT_TRUE(stats_doc.has_value()) << stats.value().body;
  EXPECT_NE(stats.value().body.find("\"schema\":\"nsky.engine_stats.v1\""),
            std::string::npos);
  EXPECT_NE(stats.value().body.find("\"queries_served\":1"),
            std::string::npos);

  auto queries = client.Get("/v1/queries?max=4");
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries.value().status, 200);
  EXPECT_NE(queries.value().body.find("\"schema\":\"nsky.queries.v1\""),
            std::string::npos);

  auto metrics = client.Get("/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics.value().status, 200);
  EXPECT_NE(metrics.value().headers.at("content-type").find("text/plain"),
            std::string::npos);
  EXPECT_NE(metrics.value().body.find("nsky_engine_queries_served"),
            std::string::npos);
}

TEST(Server, BadParametersAnswer400WithErrorDocument) {
  TestServer ts;
  HttpClient client(ts.port());
  for (const char* target : {
           "/v1/skyline?algo=magic",
           "/v1/skyline?threads=banana",
           "/v1/skyline?threads=9999",
           "/v1/skyline?repeat=-1",
           "/v1/queries?max=x",
       }) {
    auto r = client.Get(target);
    ASSERT_TRUE(r.ok()) << target;
    EXPECT_EQ(r.value().status, 400) << target;
    EXPECT_NE(r.value().body.find("\"code\":\"INVALID_ARGUMENT\""),
              std::string::npos)
        << target;
    EXPECT_NE(r.value().body.find("\"exit_code\":2"), std::string::npos)
        << target;
  }
}

TEST(Server, MalformedRequestCorpusAnswers400AndCloses) {
  TestServer ts;
  for (const char* raw : {
           "GARBAGE\r\n\r\n",
           "GET /\r\n\r\n",
           "GET / HTTP/2.0\r\n\r\n",
           "GET / HTTP/1.1\r\nno colon here\r\n\r\n",
           "POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
           "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       }) {
    HttpClient client(ts.port());
    auto r = client.Raw(raw);
    ASSERT_TRUE(r.ok()) << raw << ": " << r.status().ToString();
    EXPECT_EQ(r.value().status, 400) << raw;
    EXPECT_NE(r.value().body.find("\"schema\":\"nsky.error.v1\""),
              std::string::npos)
        << raw;
    EXPECT_EQ(r.value().headers.at("connection"), "close") << raw;
  }
}

TEST(Server, OversizedHeadAnswers400) {
  TestServer ts;
  HttpClient client(ts.port());
  std::string raw = "GET / HTTP/1.1\r\nX-Pad: ";
  raw.append(HttpParser::kMaxHeadBytes, 'a');
  raw += "\r\n\r\n";
  auto r = client.Raw(raw);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 400);
}

TEST(Server, NonGetMethodAnswers405) {
  TestServer ts;
  HttpClient client(ts.port());
  auto r = client.Raw("DELETE /v1/skyline HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 405);
  EXPECT_NE(r.value().body.find("\"code\":\"INVALID_ARGUMENT\""),
            std::string::npos);
}

// A client that sends half a request and stalls gets 408 with the
// nsky.error.v1 body once idle_timeout_ms elapses.
TEST(Server, SlowClientMidRequestAnswers408) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  TestServer ts({}, options);
  HttpClient client(ts.port());
  auto r = client.Raw("GET /healthz HTT");  // never finished
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 408);
  EXPECT_NE(r.value().body.find("\"code\":\"DEADLINE_EXCEEDED\""),
            std::string::npos);
  EXPECT_NE(r.value().body.find("\"exit_code\":4"), std::string::npos);
}

// An idle keep-alive connection (no request in progress) is closed silently.
TEST(Server, IdleKeepAliveConnectionIsClosedSilently) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  TestServer ts({}, options);
  HttpClient client(ts.port());
  ASSERT_TRUE(client.Connect().ok());
  // The server closes without writing; reading one response fails cleanly.
  auto r = client.Raw("");
  EXPECT_FALSE(r.ok());
}

TEST(Server, KeepAliveServesManyRequestsOnOneConnection) {
  TestServer ts;
  HttpClient client(ts.port());
  for (int i = 0; i < 16; ++i) {
    auto r = client.Get("/healthz");
    ASSERT_TRUE(r.ok()) << "request " << i;
    EXPECT_EQ(r.value().status, 200);
  }
  EXPECT_GE(ts.server().requests_served(), 16u);
}

// Overload sheds deterministically: with max_inflight=1 and one query
// parked inside the engine (fault-injected slice delay), the next query is
// refused with 429, counted in shed_queries, and visible in the flight
// recorder. The decision depends only on the in-flight count, never on how
// far the running query got.
TEST(Server, OverloadShedsWith429AndAccountsIt) {
  ServiceOptions service_options;
  service_options.max_inflight = 1;
  // A finite timeout makes the solver take the sliced (health-checked)
  // parallel path, which is where pool.chunk_delay_ms fires. Far above the
  // injected delays, so the parked query still succeeds.
  service_options.default_timeout_ms = 30000;
  TestServer ts(service_options);
  // Warm the artifact cache first so the parked query is a plain solve.
  ASSERT_TRUE(HttpGet(ts.port(), "/v1/skyline?algo=base&threads=2").ok());

  ASSERT_TRUE(util::FaultInjector::ArmForTest("pool.chunk_delay_ms=40"));
  std::atomic<int> slow_status{0};
  std::thread slow([&] {
    auto r = HttpGet(ts.port(),
                     "/v1/skyline?algo=base&threads=2&repeat=3");
    slow_status.store(r.ok() ? r.value().status : -1);
  });
  // Wait until the slow query is admitted before firing the second one.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ts.service().inflight() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(ts.service().inflight(), 1u);

  auto shed = HttpGet(ts.port(), "/v1/skyline?algo=base&threads=2");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.value().status, 429);
  EXPECT_NE(shed.value().body.find("\"code\":\"RESOURCE_EXHAUSTED\""),
            std::string::npos);
  EXPECT_NE(shed.value().body.find("\"exit_code\":6"), std::string::npos);

  slow.join();
  util::FaultInjector::Disarm();
  EXPECT_EQ(slow_status.load(), 200);

  // The shed request shows up next to the served ones.
  auto stats = HttpGet(ts.port(), "/v1/engine_stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().body.find("\"shed_queries\":1"), std::string::npos);
  auto queries = HttpGet(ts.port(), "/v1/queries");
  ASSERT_TRUE(queries.ok());
  EXPECT_NE(queries.value().body.find("RESOURCE_EXHAUSTED"),
            std::string::npos);
}

// Draining is a service-level decision; exercise it without the transport.
TEST(Service, DrainingAnswers503Unavailable) {
  auto g = datasets::MakeStandin("notredame", datasets::StandinScale::kSmall);
  SkylineService service(std::move(g.value()), {});
  service.set_draining(true);
  HttpRequest request;
  request.method = "GET";
  request.path = "/v1/skyline";
  HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("\"code\":\"UNAVAILABLE\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"exit_code\":7"), std::string::npos);
  EXPECT_EQ(service.engine().StatsSnapshot().shed_queries, 1u);
}

TEST(Server, MaxRequestsStopsServeWithoutSignals) {
  ServerOptions options;
  options.max_requests = 3;
  auto g = datasets::MakeStandin("notredame", datasets::StandinScale::kSmall);
  SkylineService service(std::move(g.value()), {});
  Server server(&service, options);
  ASSERT_TRUE(server.Listen().ok());
  std::thread serve([&] { server.Serve(); });
  for (int i = 0; i < 3; ++i) {
    auto r = HttpGet(server.port(), "/healthz");
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
  }
  serve.join();  // returns on its own after the third request
  EXPECT_EQ(server.requests_served(), 3u);
}

// Many concurrent connections hammering mixed endpoints; every response is
// either a success or a deterministic shed. This is the test TSan watches.
TEST(Server, ConcurrentMixedTrafficStaysConsistent) {
  ServiceOptions service_options;
  service_options.max_inflight = 2;
  ServerOptions server_options;
  server_options.session_threads = 8;
  TestServer ts(service_options, server_options);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 12;
  const char* kTargets[] = {
      "/v1/skyline?algo=filter-refine&threads=2",
      "/v1/skyline?algo=2hop",
      "/v1/engine_stats",
      "/v1/queries?max=8",
      "/v1/metrics",
      "/healthz",
  };
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client(ts.port());
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const char* target = kTargets[(c + i) % std::size(kTargets)];
        auto r = client.Get(target);
        if (!r.ok() ||
            (r.value().status != 200 && r.value().status != 429)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(ts.server().requests_served(),
            static_cast<uint64_t>(kClients * kRequestsPerClient));
}

}  // namespace
}  // namespace nsky::server
