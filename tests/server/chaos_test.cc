// Socket chaos: the server keeps serving through injected accept failures,
// EINTR storms and partial writes (`server.*` fault sites), and through
// real peer resets mid-response; responses stay byte-correct throughout.
// Also pins the client's deterministic retry/backoff policy and the
// Retry-After contract on 429/503 backpressure.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <regex>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "graph/generators.h"
#include "server/client.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "util/fault_injection.h"

namespace nsky::server {
namespace {

graph::Graph TestGraph() { return graph::MakeChungLuPowerLaw(300, 2.3, 5, 3); }

std::string NormalizeSeconds(const std::string& json) {
  static const std::regex kSeconds("\"seconds\":[0-9.eE+-]+");
  return std::regex_replace(json, kSeconds, "\"seconds\":X");
}

class ChaosServer {
 public:
  explicit ChaosServer(ServiceOptions options = ServiceOptions{}) {
    service_ = std::make_unique<SkylineService>(TestGraph(), options);
    server_ = std::make_unique<Server>(service_.get(), ServerOptions{});
    auto status = server_->Listen();
    EXPECT_TRUE(status.ok()) << status.ToString();
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  ~ChaosServer() {
    server_->Shutdown();
    serve_thread_.join();
  }

  uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<SkylineService> service_;
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
};

class Chaos : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Disarm(); }
  void TearDown() override { util::FaultInjector::Disarm(); }
};

TEST_F(Chaos, AcceptFailureBurstDelaysButServes) {
  ChaosServer ts;
  // The acceptor skips its next 3 accept rounds; the pending connection
  // waits in the listen backlog and is served once the burst passes.
  ASSERT_TRUE(util::FaultInjector::ArmForTest("server.accept_fail=3"));
  auto r = HttpGet(ts.port(), "/healthz");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 200);
  EXPECT_EQ(r.value().body, "ok\n");
  util::FaultInjector::Disarm();
  EXPECT_TRUE(HttpGet(ts.port(), "/healthz").ok());
}

TEST_F(Chaos, EintrStormStillServes) {
  ChaosServer ts;
  // The first 8 poll/recv/send calls on the serve path report EINTR; every
  // one must be retried, not treated as a dead connection.
  ASSERT_TRUE(util::FaultInjector::ArmForTest("server.eintr=8"));
  auto r = HttpGet(ts.port(), "/healthz");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 200);
  EXPECT_EQ(r.value().body, "ok\n");
}

TEST_F(Chaos, PartialWritesStayByteCorrect) {
  ChaosServer ts;
  auto expected = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected.value().status, 200);

  // Every send is capped at 7 bytes: the multi-kilobyte document goes out
  // in hundreds of fragments and must reassemble identically.
  ASSERT_TRUE(util::FaultInjector::ArmForTest("server.partial_write=7"));
  auto fragged = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(fragged.ok()) << fragged.status().ToString();
  EXPECT_EQ(fragged.value().status, 200);
  EXPECT_EQ(NormalizeSeconds(fragged.value().body),
            NormalizeSeconds(expected.value().body));
}

// Connects, fires one request, and slams the connection shut with an RST
// (SO_LINGER 0) without reading a byte -- the worker's response write lands
// on a reset peer.
void SendAndSlam(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
}

TEST_F(Chaos, PeerResetMidResponseDoesNotKillWorkers) {
  ChaosServer ts;
  // 1-byte sends guarantee the worker is still mid-write when the RST
  // arrives; without SIGPIPE ignored and EPIPE handling, this kills the
  // process (and with it, this test binary).
  ASSERT_TRUE(util::FaultInjector::ArmForTest("server.partial_write=1"));
  const std::string request =
      "GET /v1/skyline HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  for (int i = 0; i < 5; ++i) SendAndSlam(ts.port(), request);
  util::FaultInjector::Disarm();

  // Every worker survived: a well-behaved request still answers.
  auto r = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 200);
}

// ---------------------------------------------------------------------------
// Backpressure headers: 429/503 carry Retry-After per ServiceOptions.

HttpRequest SkylineRequest() {
  HttpRequest request;
  request.method = "GET";
  request.target = "/v1/skyline";
  request.path = "/v1/skyline";
  return request;
}

TEST(RetryAfter, ShedResponseCarriesConfiguredDelay) {
  ServiceOptions options;
  options.max_inflight = 0;  // everything sheds
  options.retry_after_shed_s = 7;
  SkylineService service(TestGraph(), options);
  HttpResponse response = service.Handle(SkylineRequest());
  EXPECT_EQ(response.status, 429);
  ASSERT_EQ(response.headers.size(), 1u);
  EXPECT_EQ(response.headers[0].first, "Retry-After");
  EXPECT_EQ(response.headers[0].second, "7");
}

TEST(RetryAfter, DrainResponseCarriesConfiguredDelay) {
  SkylineService service(TestGraph(), ServiceOptions{});
  service.set_draining(true);
  HttpResponse response = service.Handle(SkylineRequest());
  EXPECT_EQ(response.status, 503);
  ASSERT_EQ(response.headers.size(), 1u);
  EXPECT_EQ(response.headers[0].first, "Retry-After");
  EXPECT_EQ(response.headers[0].second, "2");  // default drain delay
}

// ---------------------------------------------------------------------------
// Client retry policy: deterministic schedule, Retry-After honored.

TEST(RetryPolicy, BackoffScheduleIsExponentialAndCapped) {
  RetryPolicy policy;  // base 10ms, cap 2000ms
  constexpr uint64_t kNoRetryAfter = ~uint64_t{0};
  EXPECT_EQ(HttpClient::BackoffMs(policy, 0, kNoRetryAfter), 10u);
  EXPECT_EQ(HttpClient::BackoffMs(policy, 1, kNoRetryAfter), 20u);
  EXPECT_EQ(HttpClient::BackoffMs(policy, 2, kNoRetryAfter), 40u);
  EXPECT_EQ(HttpClient::BackoffMs(policy, 20, kNoRetryAfter), 2000u);
}

TEST(RetryPolicy, RetryAfterOverridesScheduleWhenRespected) {
  RetryPolicy policy;
  // The server's ask wins over the computed backoff, capped at the
  // client's own ceiling.
  EXPECT_EQ(HttpClient::BackoffMs(policy, 0, 1), 1000u);
  EXPECT_EQ(HttpClient::BackoffMs(policy, 3, 1), 1000u);
  EXPECT_EQ(HttpClient::BackoffMs(policy, 0, 60), 2000u);  // capped
  EXPECT_EQ(HttpClient::BackoffMs(policy, 0, 0), 0u);
  policy.respect_retry_after = false;
  EXPECT_EQ(HttpClient::BackoffMs(policy, 0, 1), 10u);
}

TEST(RetryPolicy, GetWithRetryReturnsImmediatelyOnSuccess) {
  ChaosServer ts;
  HttpClient client(ts.port());
  auto r = client.GetWithRetry("/healthz");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 200);
}

TEST(RetryPolicy, GetWithRetryRetriesShedsAndSurfacesRetryAfter) {
  ServiceOptions options;
  options.max_inflight = 0;  // every skyline query sheds with 429
  ChaosServer ts(options);
  HttpClient client(ts.port());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 1;
  policy.respect_retry_after = false;  // keep the test fast
  auto r = client.GetWithRetry("/v1/skyline", policy);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 429);
  EXPECT_EQ(r.value().headers.at("retry-after"), "1");

  // All three attempts really hit the server: the engine recorded each
  // shed in the flight recorder.
  auto queries = HttpGet(ts.port(), "/v1/queries");
  ASSERT_TRUE(queries.ok());
  size_t rejections = 0;
  const std::string& body = queries.value().body;
  for (size_t pos = body.find("RESOURCE_EXHAUSTED"); pos != std::string::npos;
       pos = body.find("RESOURCE_EXHAUSTED", pos + 1)) {
    ++rejections;
  }
  EXPECT_EQ(rejections, 3u) << body;
}

TEST(RetryPolicy, NonRetryableStatusReturnsWithoutRetry) {
  ChaosServer ts;
  HttpClient client(ts.port());
  auto r = client.GetWithRetry("/no/such/route");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 404);
}

}  // namespace
}  // namespace nsky::server
