// HTTP layer unit tests: incremental parsing, limits, keep-alive
// semantics, target splitting, response serialization. No sockets here --
// the parser is fed byte strings directly.
#include "server/http.h"

#include <string>

#include <gtest/gtest.h>

namespace nsky::server {
namespace {

TEST(HttpParser, ParsesSimpleGet) {
  HttpParser p;
  ASSERT_EQ(p.Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            HttpParser::State::kDone);
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().target, "/healthz");
  EXPECT_EQ(p.request().path, "/healthz");
  EXPECT_EQ(p.request().version, "HTTP/1.1");
  EXPECT_EQ(p.request().headers.at("host"), "x");
  EXPECT_TRUE(p.request().keep_alive);
}

TEST(HttpParser, OneByteAtATime) {
  const std::string raw =
      "GET /v1/skyline?algo=base&threads=2 HTTP/1.1\r\n"
      "Host: localhost\r\nConnection: close\r\n\r\n";
  HttpParser p;
  for (size_t i = 0; i + 1 < raw.size(); ++i) {
    ASSERT_EQ(p.Feed(std::string_view(&raw[i], 1)),
              HttpParser::State::kNeedMore)
        << "byte " << i;
    EXPECT_TRUE(p.mid_request());
  }
  ASSERT_EQ(p.Feed(std::string_view(&raw[raw.size() - 1], 1)),
            HttpParser::State::kDone);
  EXPECT_EQ(p.request().path, "/v1/skyline");
  EXPECT_EQ(p.request().query.at("algo"), "base");
  EXPECT_EQ(p.request().query.at("threads"), "2");
  EXPECT_FALSE(p.request().keep_alive);  // Connection: close
}

TEST(HttpParser, QueryDecoding) {
  HttpParser p;
  ASSERT_EQ(p.Feed("GET /r?a=x%20y&b=1+2&flag&c= HTTP/1.1\r\n\r\n"),
            HttpParser::State::kDone);
  EXPECT_EQ(p.request().query.at("a"), "x y");
  EXPECT_EQ(p.request().query.at("b"), "1 2");
  EXPECT_EQ(p.request().query.at("flag"), "");
  EXPECT_EQ(p.request().query.at("c"), "");
}

TEST(HttpParser, ContentLengthBody) {
  HttpParser p;
  ASSERT_EQ(p.Feed("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel"),
            HttpParser::State::kNeedMore);
  ASSERT_EQ(p.Feed("lo"), HttpParser::State::kDone);
  EXPECT_EQ(p.request().body, "hello");
}

TEST(HttpParser, PipelinedRequestsCarryOver) {
  HttpParser p;
  ASSERT_EQ(p.Feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"),
            HttpParser::State::kDone);
  EXPECT_EQ(p.request().path, "/a");
  p.Reset();
  // The second request was already buffered; Reset() re-parses it.
  ASSERT_EQ(p.state(), HttpParser::State::kDone);
  EXPECT_EQ(p.request().path, "/b");
}

TEST(HttpParser, Http10DefaultsToClose) {
  HttpParser p;
  ASSERT_EQ(p.Feed("GET / HTTP/1.0\r\n\r\n"), HttpParser::State::kDone);
  EXPECT_FALSE(p.request().keep_alive);
  p.Reset();
  ASSERT_EQ(p.Feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            HttpParser::State::kDone);
  EXPECT_TRUE(p.request().keep_alive);
}

TEST(HttpParser, MalformedRequestLines) {
  for (const char* raw : {
           "GARBAGE\r\n\r\n",
           "GET /\r\n\r\n",                   // missing version
           "GET / HTTP/1.1 extra\r\n\r\n",    // four tokens
           "GET nopath HTTP/1.1\r\n\r\n",     // target must start with /
           " / HTTP/1.1\r\n\r\n",             // empty method
       }) {
    HttpParser p;
    EXPECT_EQ(p.Feed(raw), HttpParser::State::kError) << raw;
    EXPECT_EQ(p.error_status(), 400) << raw;
    EXPECT_FALSE(p.error().empty()) << raw;
  }
}

TEST(HttpParser, UnsupportedVersion) {
  HttpParser p;
  EXPECT_EQ(p.Feed("GET / HTTP/2.0\r\n\r\n"), HttpParser::State::kError);
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, HeaderWithoutColon) {
  HttpParser p;
  EXPECT_EQ(p.Feed("GET / HTTP/1.1\r\nbogus header line\r\n\r\n"),
            HttpParser::State::kError);
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, OversizedHeadIsRejected) {
  HttpParser p;
  std::string raw = "GET / HTTP/1.1\r\nX-Pad: ";
  raw.append(HttpParser::kMaxHeadBytes, 'a');
  EXPECT_EQ(p.Feed(raw), HttpParser::State::kError);
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, OversizedBodyIsRejectedWith413) {
  HttpParser p;
  EXPECT_EQ(p.Feed("POST / HTTP/1.1\r\nContent-Length: " +
                   std::to_string(HttpParser::kMaxBodyBytes + 1) +
                   "\r\n\r\n"),
            HttpParser::State::kError);
  EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpParser, MalformedContentLength) {
  HttpParser p;
  EXPECT_EQ(p.Feed("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            HttpParser::State::kError);
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, TransferEncodingIsRejected) {
  HttpParser p;
  EXPECT_EQ(p.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            HttpParser::State::kError);
  EXPECT_EQ(p.error_status(), 400);
}

TEST(SerializeResponse, WellFormed) {
  const std::string wire =
      SerializeResponse(200, "application/json", "{}\n", true);
  EXPECT_EQ(wire,
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: 3\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
            "{}\n");
  EXPECT_NE(SerializeResponse(503, "application/json", "", false)
                .find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
}

TEST(SerializeResponse, ReasonPhrasesCoverEmittedCodes) {
  EXPECT_STREQ(HttpReasonPhrase(408), "Request Timeout");
  EXPECT_STREQ(HttpReasonPhrase(429), "Too Many Requests");
  EXPECT_STREQ(HttpReasonPhrase(499), "Client Closed Request");
  EXPECT_STREQ(HttpReasonPhrase(405), "Method Not Allowed");
  EXPECT_STREQ(HttpReasonPhrase(413), "Payload Too Large");
}

}  // namespace
}  // namespace nsky::server
