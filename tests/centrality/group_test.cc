#include "centrality/group_centrality.h"

#include <gtest/gtest.h>

#include "centrality/bfs.h"
#include "graph/generators.h"

namespace nsky::centrality {
namespace {

TEST(GroupCloseness, SingletonMatchesVertexDefinition) {
  graph::Graph g = graph::MakeStar(10);
  std::vector<graph::VertexId> s = {0};
  // GC({0}) = n / sum of d(v, {0}) = 10 / 9.
  EXPECT_DOUBLE_EQ(GroupCloseness(g, s), 10.0 / 9.0);
}

TEST(GroupCloseness, WholePathPair) {
  graph::Graph g = graph::MakePath(6);
  std::vector<graph::VertexId> s = {1, 4};
  // Distances of 0,2,3,5 to {1,4}: 1,1,1,1 -> GC = 6/4.
  EXPECT_DOUBLE_EQ(GroupCloseness(g, s), 6.0 / 4.0);
}

TEST(GroupCloseness, EmptyGroupIsZero) {
  graph::Graph g = graph::MakeCycle(5);
  EXPECT_DOUBLE_EQ(GroupCloseness(g, {}), 0.0);
}

TEST(GroupCloseness, GrowingGroupNeverHurts) {
  graph::Graph g = graph::MakeErdosRenyi(80, 0.06, 3);
  std::vector<graph::VertexId> s = {5};
  double prev = GroupCloseness(g, s);
  for (graph::VertexId v : {12u, 33u, 60u}) {
    s.push_back(v);
    double cur = GroupCloseness(g, s);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(GroupCloseness, DisconnectedCapApplied) {
  graph::Graph g = graph::Graph::FromEdges(4, {{0, 1}});
  std::vector<graph::VertexId> s = {0};
  // d(1)=1, d(2)=d(3)=cap=4 -> GC = 4/9.
  EXPECT_DOUBLE_EQ(GroupCloseness(g, s), 4.0 / 9.0);
}

TEST(GroupHarmonic, SingletonStarCenter) {
  graph::Graph g = graph::MakeStar(10);
  std::vector<graph::VertexId> s = {0};
  EXPECT_DOUBLE_EQ(GroupHarmonic(g, s), 9.0);
}

TEST(GroupHarmonic, PairOnPath) {
  graph::Graph g = graph::MakePath(6);
  std::vector<graph::VertexId> s = {1, 4};
  EXPECT_DOUBLE_EQ(GroupHarmonic(g, s), 4.0);
}

TEST(GroupHarmonic, EmptyGroupIsZero) {
  EXPECT_DOUBLE_EQ(GroupHarmonic(graph::MakeCycle(4), {}), 0.0);
}

TEST(FromDistances, AgreesWithDirectEvaluation) {
  graph::Graph g = graph::MakeErdosRenyi(100, 0.05, 9);
  std::vector<graph::VertexId> s = {1, 50, 99};
  std::vector<uint32_t> dist;
  MultiSourceBfs(g, s, &dist);
  std::vector<uint8_t> in_group(g.NumVertices(), 0);
  for (auto v : s) in_group[v] = 1;
  EXPECT_DOUBLE_EQ(
      GroupClosenessFromDistances(dist, in_group, g.NumVertices()),
      GroupCloseness(g, s));
  EXPECT_DOUBLE_EQ(
      GroupHarmonicFromDistances(dist, in_group, g.NumVertices()),
      GroupHarmonic(g, s));
}

TEST(GroupCentrality, FullGroupDegenerate) {
  graph::Graph g = graph::MakeClique(4);
  std::vector<graph::VertexId> s = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(GroupCloseness(g, s), 0.0);  // nobody outside
  EXPECT_DOUBLE_EQ(GroupHarmonic(g, s), 0.0);
}

}  // namespace
}  // namespace nsky::centrality
