#include "centrality/bfs.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace nsky::centrality {
namespace {

TEST(BfsFrom, PathDistances) {
  graph::Graph g = graph::MakePath(6);
  std::vector<uint32_t> dist;
  BfsFrom(g, 0, &dist);
  for (uint32_t i = 0; i < 6; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsFrom, UnreachableMarked) {
  graph::Graph g = graph::Graph::FromEdges(5, {{0, 1}, {2, 3}});
  std::vector<uint32_t> dist;
  BfsFrom(g, 0, &dist);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(BfsFrom, CycleSymmetric) {
  graph::Graph g = graph::MakeCycle(8);
  std::vector<uint32_t> dist;
  BfsFrom(g, 0, &dist);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[5], 3u);
  EXPECT_EQ(dist[7], 1u);
}

TEST(MultiSourceBfs, NearestSourceWins) {
  graph::Graph g = graph::MakePath(10);
  std::vector<uint32_t> dist;
  std::vector<graph::VertexId> sources = {0, 9};
  MultiSourceBfs(g, sources, &dist);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[9], 0u);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[5], 4u);
  EXPECT_EQ(dist[7], 2u);
}

TEST(MultiSourceBfs, EmptySourcesAllUnreachable) {
  graph::Graph g = graph::MakeCycle(5);
  std::vector<uint32_t> dist;
  MultiSourceBfs(g, {}, &dist);
  for (uint32_t d : dist) EXPECT_EQ(d, kUnreachable);
}

TEST(MultiSourceBfs, DuplicateSourcesHarmless) {
  graph::Graph g = graph::MakePath(5);
  std::vector<uint32_t> dist;
  std::vector<graph::VertexId> sources = {2, 2, 2};
  MultiSourceBfs(g, sources, &dist);
  EXPECT_EQ(dist[2], 0u);
  EXPECT_EQ(dist[0], 2u);
  EXPECT_EQ(dist[4], 2u);
}

TEST(RelaxWithSource, MatchesRecomputedMultiSource) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    graph::Graph g = graph::MakeErdosRenyi(150, 0.03, seed);
    std::vector<graph::VertexId> group = {3, 77};
    std::vector<uint32_t> incremental;
    MultiSourceBfs(g, std::span<const graph::VertexId>(group.data(), 1),
                   &incremental);
    RelaxWithSource(g, 77, &incremental);
    RelaxWithSource(g, 120, &incremental);

    std::vector<uint32_t> recomputed;
    std::vector<graph::VertexId> full_group = {3, 77, 120};
    MultiSourceBfs(g, full_group, &recomputed);
    EXPECT_EQ(incremental, recomputed) << "seed " << seed;
  }
}

TEST(RelaxWithSource, NoOpWhenSourceAlreadyZero) {
  graph::Graph g = graph::MakePath(4);
  std::vector<uint32_t> dist;
  BfsFrom(g, 1, &dist);
  std::vector<uint32_t> copy = dist;
  RelaxWithSource(g, 1, &dist);
  EXPECT_EQ(dist, copy);
}

}  // namespace
}  // namespace nsky::centrality
