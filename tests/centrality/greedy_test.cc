#include "centrality/greedy.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "centrality/group_centrality.h"
#include "core/solver.h"
#include "graph/generators.h"

namespace nsky::centrality {
namespace {

TEST(Greedy, GroupSizeAndUniqueness) {
  graph::Graph g = graph::MakeErdosRenyi(120, 0.05, 1);
  GreedyResult r = BaseGC(g, 5);
  EXPECT_EQ(r.group.size(), 5u);
  std::vector<graph::VertexId> sorted = r.group;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(Greedy, ReportedScoreMatchesGroupEvaluation) {
  graph::Graph g = graph::MakeChungLuPowerLaw(300, 2.5, 6, 2);
  GreedyResult gc = BaseGC(g, 4);
  EXPECT_NEAR(gc.score, GroupCloseness(g, gc.group), 1e-9);
  GreedyResult gh = BaseGH(g, 4);
  EXPECT_NEAR(gh.score, GroupHarmonic(g, gh.group), 1e-9);
}

TEST(Greedy, RoundScoresNonDecreasingForCloseness) {
  graph::Graph g = graph::MakeBarabasiAlbert(200, 3, 3);
  GreedyResult r = BaseGC(g, 6);
  for (size_t i = 1; i < r.round_scores.size(); ++i) {
    EXPECT_GE(r.round_scores[i], r.round_scores[i - 1] - 1e-12);
  }
}

TEST(Greedy, FirstPickIsClosenessMaximum) {
  // Round one of the greedy must select the vertex with the highest
  // closeness (equivalently, the smallest capped distance sum).
  graph::Graph g = graph::MakeStar(15);
  GreedyResult r = BaseGC(g, 1);
  EXPECT_EQ(r.group[0], 0u);
}

TEST(Greedy, GainCallAccountingPlain) {
  // Plain greedy: k rounds over a pool of size p evaluate
  // k(2p - k + 1)/2 candidates (the paper's formula).
  graph::Graph g = graph::MakeErdosRenyi(60, 0.08, 4);
  uint32_t k = 5;
  GreedyResult r = BaseGC(g, k);
  uint64_t p = r.pool_size;
  EXPECT_EQ(r.gain_calls, static_cast<uint64_t>(k) * (2 * p - k + 1) / 2);
}

TEST(Greedy, NeiSkyPoolIsSkyline) {
  graph::Graph g = graph::MakeChungLuPowerLaw(400, 2.3, 6, 5);
  GreedyResult r = NeiSkyGC(g, 3);
  EXPECT_EQ(r.pool_size, core::Solve(g).skyline.size());
  EXPECT_LT(r.pool_size, g.NumVertices());
  EXPECT_GT(r.skyline_seconds, 0.0);
}

TEST(Greedy, NeiSkyMatchesBaseScoreCloseness) {
  // Lemma 3 makes skyline pruning lossless for the greedy: scores match.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    graph::Graph g = graph::MakeChungLuPowerLaw(250, 2.4, 6, seed);
    GreedyResult base = BaseGC(g, 5);
    GreedyResult pruned = NeiSkyGC(g, 5);
    EXPECT_NEAR(base.score, pruned.score, 1e-9) << "seed " << seed;
    EXPECT_LE(pruned.gain_calls, base.gain_calls);
  }
}

TEST(Greedy, NeiSkyMatchesBaseScoreHarmonic) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    graph::Graph g = graph::MakeChungLuPowerLaw(250, 2.4, 6, seed);
    GreedyResult base = BaseGH(g, 5);
    GreedyResult pruned = NeiSkyGH(g, 5);
    EXPECT_NEAR(base.score, pruned.score, 1e-9) << "seed " << seed;
  }
}

TEST(Greedy, LazyMatchesPlainScore) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    graph::Graph g = graph::MakeErdosRenyi(150, 0.04, seed);
    GreedyOptions plain, lazy;
    plain.objective = lazy.objective = Objective::kCloseness;
    lazy.lazy = true;
    GreedyResult a = GreedyGroupMaximization(g, 6, plain);
    GreedyResult b = GreedyGroupMaximization(g, 6, lazy);
    EXPECT_NEAR(a.score, b.score, 1e-9) << "seed " << seed;
    EXPECT_LE(b.gain_calls, a.gain_calls) << "lazy should evaluate less";
  }
}

TEST(Greedy, ExplicitPoolRespected) {
  graph::Graph g = graph::MakeCycle(30);
  GreedyOptions options;
  options.pool = {3, 7, 11};
  GreedyResult r = GreedyGroupMaximization(g, 2, options);
  EXPECT_EQ(r.pool_size, 3u);
  for (graph::VertexId v : r.group) {
    EXPECT_TRUE(v == 3 || v == 7 || v == 11);
  }
}

TEST(Greedy, KClampedToPool) {
  graph::Graph g = graph::MakeClique(5);
  GreedyResult r = BaseGC(g, 10);
  EXPECT_EQ(r.group.size(), 5u);
}

TEST(Greedy, GreedyBeatsRandomGroup) {
  graph::Graph g = graph::MakeChungLuPowerLaw(400, 2.5, 6, 8);
  GreedyResult r = BaseGC(g, 5);
  std::vector<graph::VertexId> random_group = {1, 2, 3, 4, 5};
  EXPECT_GE(r.score, GroupCloseness(g, random_group));
}

}  // namespace
}  // namespace nsky::centrality
