#include "centrality/centrality.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace nsky::centrality {
namespace {

TEST(VertexCloseness, StarCenterBeatsLeaves) {
  graph::Graph g = graph::MakeStar(10);
  double center = VertexCloseness(g, 0);
  double leaf = VertexCloseness(g, 1);
  EXPECT_GT(center, leaf);
  // Center: all 9 others at distance 1 -> C = 10 / 9.
  EXPECT_DOUBLE_EQ(center, 10.0 / 9.0);
  // Leaf: center at 1, 8 leaves at 2 -> C = 10 / 17.
  EXPECT_DOUBLE_EQ(leaf, 10.0 / 17.0);
}

TEST(VertexCloseness, PathMiddleHighest) {
  graph::Graph g = graph::MakePath(7);
  std::vector<double> c = AllCloseness(g);
  auto best = std::max_element(c.begin(), c.end());
  EXPECT_EQ(best - c.begin(), 3);  // middle of the path
}

TEST(VertexCloseness, DisconnectedUsesCap) {
  graph::Graph g = graph::Graph::FromEdges(4, {{0, 1}});
  // From 0: d(1)=1, d(2)=d(3)=cap=4 -> C = 4 / 9.
  EXPECT_DOUBLE_EQ(VertexCloseness(g, 0), 4.0 / 9.0);
}

TEST(VertexCloseness, TrivialGraphs) {
  EXPECT_DOUBLE_EQ(VertexCloseness(graph::Graph::FromEdges(1, {}), 0), 0.0);
}

TEST(VertexHarmonic, StarCenter) {
  graph::Graph g = graph::MakeStar(10);
  // Center: 9 neighbors at distance 1.
  EXPECT_DOUBLE_EQ(VertexHarmonic(g, 0), 9.0);
  // Leaf: 1 at distance 1, 8 at distance 2.
  EXPECT_DOUBLE_EQ(VertexHarmonic(g, 1), 1.0 + 8.0 / 2.0);
}

TEST(VertexHarmonic, DisconnectedNearZeroContribution) {
  graph::Graph g = graph::Graph::FromEdges(4, {{0, 1}});
  // d(2)=d(3)=cap=4 contribute 1/4 each.
  EXPECT_DOUBLE_EQ(VertexHarmonic(g, 0), 1.0 + 0.25 + 0.25);
}

TEST(AllVariants, ConsistentWithSingleVertex) {
  graph::Graph g = graph::MakeErdosRenyi(60, 0.1, 5);
  std::vector<double> all_c = AllCloseness(g);
  std::vector<double> all_h = AllHarmonic(g);
  for (graph::VertexId u = 0; u < g.NumVertices(); u += 7) {
    EXPECT_DOUBLE_EQ(all_c[u], VertexCloseness(g, u));
    EXPECT_DOUBLE_EQ(all_h[u], VertexHarmonic(g, u));
  }
}

TEST(Centrality, CliqueAllEqual) {
  graph::Graph g = graph::MakeClique(8);
  std::vector<double> c = AllCloseness(g);
  for (double v : c) EXPECT_DOUBLE_EQ(v, c[0]);
  EXPECT_DOUBLE_EQ(c[0], 8.0 / 7.0);
}

}  // namespace
}  // namespace nsky::centrality
