// Checks of the paper's pruning lemmas (Lemma 3 / Lemma 4).
//
// Reproduction note (also in EXPERIMENTS.md): the *literal* statement
// "v <= u implies GC(S + u) >= GC(S + v) for every S" admits
// counterexamples -- the cross terms d(v, S + u) vs d(u, S + v) do not
// cancel when u is already close to S but v is not (see
// Lemma3LiteralCounterexample below). The property that actually powers
// NeiSkyGC / NeiSkyGH is weaker and holds: the maximum marginal gain over
// all vertices is always attained at some *skyline* vertex, so restricting
// the greedy's candidate pool to R never changes the selected score. That
// is what this suite pins down, alongside the literal lemma on the large
// majority of pairs.
#include <algorithm>

#include <gtest/gtest.h>

#include "centrality/group_centrality.h"
#include "core/domination.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace nsky::centrality {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(Lemma3, LiteralCounterexample) {
  // Path s(0) - u(1) - x(2) - v(3): u strictly dominates v
  // (N(v) = {x} inside N[u]), yet with S = {s}:
  //   GC(S + u) = 4 / (d(x)=1 + d(v)=2) = 4/3
  //   GC(S + v) = 4 / (d(u)=1 + d(x)=1) = 2.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(core::Dominates(g, 1, 3));
  std::vector<VertexId> with_u = {0, 1}, with_v = {0, 3};
  EXPECT_DOUBLE_EQ(GroupCloseness(g, with_u), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(GroupCloseness(g, with_v), 2.0);
  // The pruning is nevertheless safe: the max gain (vertex x, also 2) is
  // attained at a skyline vertex.
  auto skyline = core::Solve(g).skyline;
  EXPECT_TRUE(std::binary_search(skyline.begin(), skyline.end(), 2u));
  std::vector<VertexId> with_x = {0, 2};
  EXPECT_DOUBLE_EQ(GroupCloseness(g, with_x), 2.0);
}

TEST(Lemma3, EmptyGroupAlwaysHolds) {
  // With S = {} there are no cross terms: the literal lemma holds and
  // explains why the greedy's first pick can be restricted to R.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = graph::MakeErdosRenyi(40, 0.12, seed);
    for (auto [u, v] : core::AllDominationPairs(g)) {
      std::vector<VertexId> su = {u}, sv = {v};
      EXPECT_GE(GroupCloseness(g, su), GroupCloseness(g, sv) - 1e-12)
          << "u=" << u << " v=" << v << " seed=" << seed;
      EXPECT_GE(GroupHarmonic(g, su), GroupHarmonic(g, sv) - 1e-12);
    }
  }
}

TEST(Lemma34, HoldsForTheVastMajorityOfPairs) {
  uint64_t checked = 0, closeness_viol = 0, harmonic_viol = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Graph g = (seed % 2) != 0
                  ? graph::MakeErdosRenyi(30, 0.12, seed)
                  : graph::MakeChungLuPowerLaw(40, 2.4, 4, seed);
    auto pairs = core::AllDominationPairs(g);
    util::Rng rng(seed);
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<VertexId> s;
      size_t size = rng.NextUint64(4);
      while (s.size() < size) {
        VertexId w = static_cast<VertexId>(rng.NextUint64(g.NumVertices()));
        if (std::find(s.begin(), s.end(), w) == s.end()) s.push_back(w);
      }
      for (auto [u, v] : pairs) {
        if (std::find(s.begin(), s.end(), u) != s.end()) continue;
        if (std::find(s.begin(), s.end(), v) != s.end()) continue;
        auto su = s, sv = s;
        su.push_back(u);
        sv.push_back(v);
        ++checked;
        closeness_viol +=
            GroupCloseness(g, su) < GroupCloseness(g, sv) - 1e-12;
        harmonic_viol += GroupHarmonic(g, su) < GroupHarmonic(g, sv) - 1e-12;
      }
    }
  }
  ASSERT_GT(checked, 500u);
  EXPECT_LT(static_cast<double>(closeness_viol), 0.05 * checked);
  EXPECT_LT(static_cast<double>(harmonic_viol), 0.05 * checked);
}

// The operative pruning property: for random groups S, the best marginal
// gain over all candidates is attained at a skyline vertex -- for both
// objectives.
void CheckMaxGainOnSkyline(const Graph& g, uint64_t seed) {
  auto skyline = core::Solve(g).skyline;
  util::Rng rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<VertexId> s;
    size_t size = rng.NextUint64(4);
    while (s.size() < size) {
      VertexId w = static_cast<VertexId>(rng.NextUint64(g.NumVertices()));
      if (std::find(s.begin(), s.end(), w) == s.end()) s.push_back(w);
    }
    double best_all_gc = -1, best_sky_gc = -1;
    double best_all_gh = -1, best_sky_gh = -1;
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      if (std::find(s.begin(), s.end(), u) != s.end()) continue;
      auto su = s;
      su.push_back(u);
      double gc = GroupCloseness(g, su);
      double gh = GroupHarmonic(g, su);
      best_all_gc = std::max(best_all_gc, gc);
      best_all_gh = std::max(best_all_gh, gh);
      if (std::binary_search(skyline.begin(), skyline.end(), u)) {
        best_sky_gc = std::max(best_sky_gc, gc);
        best_sky_gh = std::max(best_sky_gh, gh);
      }
    }
    if (best_sky_gc < 0) continue;  // every skyline vertex already in S
    EXPECT_GE(best_sky_gc, best_all_gc - 1e-12) << "closeness, S size " << size;
    EXPECT_GE(best_sky_gh, best_all_gh - 1e-12) << "harmonic, S size " << size;
  }
}

TEST(MaxGainOnSkyline, ErdosRenyi) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    CheckMaxGainOnSkyline(graph::MakeErdosRenyi(35, 0.12, seed), seed);
  }
}

TEST(MaxGainOnSkyline, PowerLaw) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    CheckMaxGainOnSkyline(graph::MakeChungLuPowerLaw(50, 2.3, 5, seed), seed);
  }
}

TEST(MaxGainOnSkyline, StructuredGraphs) {
  CheckMaxGainOnSkyline(graph::MakeStar(12), 1);
  CheckMaxGainOnSkyline(graph::MakeCompleteBinaryTree(4), 2);
  CheckMaxGainOnSkyline(graph::MakeCaveman(3, 5), 3);
  CheckMaxGainOnSkyline(graph::MakePath(10), 4);
}

}  // namespace
}  // namespace nsky::centrality
