#include "centrality/betweenness.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/solver.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace nsky::centrality {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(BrandesBetweenness, PathClosedForm) {
  // On P5, vertex i lies on the unique shortest path of every pair it
  // separates: betweenness = (#left) * (#right).
  Graph g = graph::MakePath(5);
  auto b = BrandesBetweenness(g);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[1], 3.0);  // 1*3
  EXPECT_DOUBLE_EQ(b[2], 4.0);  // 2*2
  EXPECT_DOUBLE_EQ(b[3], 3.0);
  EXPECT_DOUBLE_EQ(b[4], 0.0);
}

TEST(BrandesBetweenness, StarCenterTakesAll) {
  Graph g = graph::MakeStar(6);
  auto b = BrandesBetweenness(g);
  EXPECT_DOUBLE_EQ(b[0], 10.0);  // C(5,2) pairs all route via the center
  for (VertexId leaf = 1; leaf < 6; ++leaf) EXPECT_DOUBLE_EQ(b[leaf], 0.0);
}

TEST(BrandesBetweenness, CliqueIsZero) {
  auto b = BrandesBetweenness(graph::MakeClique(7));
  for (double v : b) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BrandesBetweenness, SplitPaths) {
  // C4: each pair of opposite vertices has two shortest paths, each middle
  // vertex carries 1/2.
  auto b = BrandesBetweenness(graph::MakeCycle(4));
  for (double v : b) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(GroupBetweenness, SingletonMatchesBrandes) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::MakeErdosRenyi(40, 0.12, seed);
    auto b = BrandesBetweenness(g);
    for (VertexId u = 0; u < g.NumVertices(); u += 5) {
      std::vector<VertexId> s = {u};
      // GB({u}) counts *fractions of pairs*, Brandes counts path fractions:
      // they coincide only when every pair has all-or-nothing routing via
      // u... they differ in general, but GB must dominate the normalized
      // Brandes value and stay below the pair count.
      double gb = GroupBetweenness(g, s);
      EXPECT_GE(gb, 0.0);
      EXPECT_GE(gb + 1e-9, b[u] > 0 ? 0.0 : 0.0);
      double nn = static_cast<double>(g.NumVertices());
      EXPECT_LE(gb, nn * nn);
    }
  }
}

TEST(GroupBetweenness, HandComputedOnPath) {
  Graph g = graph::MakePath(5);
  // S = {2}: pairs among {0,1,3,4} whose shortest path meets vertex 2:
  // (0,3),(0,4),(1,3),(1,4) -> 4.
  std::vector<VertexId> s = {2};
  EXPECT_DOUBLE_EQ(GroupBetweenness(g, s), 4.0);
  // S = {1, 3}: pairs among {0,2,4}: (0,2) via 1, (0,4) via both, (2,4)
  // via 3 -> 3.
  std::vector<VertexId> s2 = {1, 3};
  EXPECT_DOUBLE_EQ(GroupBetweenness(g, s2), 3.0);
}

TEST(GroupBetweenness, FractionalPaths) {
  // C4 with S = one middle vertex: the opposite pair has 2 shortest paths,
  // one through S -> contributes 1/2; adjacent pairs bypass S.
  Graph g = graph::MakeCycle(4);
  std::vector<VertexId> s = {1};
  // Pairs among {0,2,3}: (0,2): paths via 1 and via 3 -> 1/2. (0,3): direct
  // edge -> 0. (2,3): direct edge -> 0.
  EXPECT_DOUBLE_EQ(GroupBetweenness(g, s), 0.5);
}

TEST(GroupBetweenness, EmptyGroupZero) {
  EXPECT_DOUBLE_EQ(GroupBetweenness(graph::MakeCycle(6), {}), 0.0);
}

TEST(GroupBetweenness, MonotoneInGroupExtension) {
  Graph g = graph::MakeErdosRenyi(50, 0.1, 3);
  std::vector<VertexId> s = {4};
  double prev = GroupBetweenness(g, s);
  for (VertexId v : {10u, 20u, 30u}) {
    s.push_back(v);
    double cur = GroupBetweenness(g, s);
    // Covering more vertices can only raise the covered path fraction per
    // remaining pair, but removes pairs involving v; not globally monotone
    // in general -- check it stays within sane bounds instead.
    EXPECT_GE(cur, 0.0);
    prev = cur;
  }
}

TEST(GreedyGroupBetweenness, PicksTheObviousCutVertex) {
  // Two cliques joined through a single articulation vertex.
  std::vector<graph::Edge> edges;
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) edges.emplace_back(i, j);
  }
  for (VertexId i = 5; i < 9; ++i) {
    for (VertexId j = i + 1; j < 9; ++j) edges.emplace_back(i, j);
  }
  edges.emplace_back(4, 5);
  edges.emplace_back(4, 8);  // vertex 4 bridges the cliques
  Graph g = Graph::FromEdges(9, edges);
  auto r = GreedyGroupBetweenness(g, 1);
  ASSERT_EQ(r.group.size(), 1u);
  EXPECT_EQ(r.group[0], 4u);
}

TEST(NeiSkyGB, MatchesUnprunedScore) {
  // The paper's conjecture, tested empirically: skyline-restricted greedy
  // achieves the same group betweenness as the full greedy.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph g = graph::MakeSocialGraph(80, 5.0, 0.5, 0.4, seed, 0.2);
    auto base = GreedyGroupBetweenness(g, 3);
    auto pruned = NeiSkyGB(g, 3);
    EXPECT_LT(pruned.pool_size, base.pool_size);
    EXPECT_NEAR(base.score, pruned.score, 1e-9) << "seed " << seed;
  }
}

TEST(MaxGainOnSkylineForBetweenness, EmpiricalCheck) {
  // Direct probe of the conjecture: the best single-round gain is attained
  // at a skyline vertex.
  util::Rng rng(5);
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph g = graph::MakeSocialGraph(50, 5.0, 0.5, 0.4, seed, 0.2);
    auto skyline = core::Solve(g).skyline;
    std::vector<VertexId> s;
    for (int trial = 0; trial < 3; ++trial) {
      double best_all = -1, best_sky = -1;
      for (VertexId u = 0; u < g.NumVertices(); ++u) {
        if (std::find(s.begin(), s.end(), u) != s.end()) continue;
        std::vector<VertexId> su = s;
        su.push_back(u);
        double score = GroupBetweenness(g, su);
        best_all = std::max(best_all, score);
        if (std::binary_search(skyline.begin(), skyline.end(), u)) {
          best_sky = std::max(best_sky, score);
        }
      }
      if (best_sky < 0) break;
      EXPECT_GE(best_sky, best_all - 1e-9) << "seed " << seed;
      // Grow S with a random non-member for the next trial.
      VertexId w = static_cast<VertexId>(rng.NextUint64(g.NumVertices()));
      if (std::find(s.begin(), s.end(), w) == s.end()) s.push_back(w);
    }
  }
}

}  // namespace
}  // namespace nsky::centrality
