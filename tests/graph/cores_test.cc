#include "graph/cores.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace nsky::graph {
namespace {

// Reference core decomposition: repeatedly peel all vertices of minimum
// remaining degree.
std::vector<uint32_t> BruteForceCores(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<uint32_t> degree(n), core(n, 0);
  std::vector<bool> removed(n, false);
  for (VertexId u = 0; u < n; ++u) degree[u] = g.Degree(u);
  uint32_t running_max = 0;  // core number = max min-degree seen while peeling
  for (VertexId iter = 0; iter < n; ++iter) {
    VertexId best = n;
    for (VertexId u = 0; u < n; ++u) {
      if (!removed[u] && (best == n || degree[u] < degree[best])) best = u;
    }
    if (best == n) break;
    running_max = std::max(running_max, degree[best]);
    core[best] = running_max;
    removed[best] = true;
    for (VertexId v : g.Neighbors(best)) {
      if (!removed[v] && degree[v] > 0) --degree[v];
    }
  }
  return core;
}

TEST(ComputeCores, CliqueCores) {
  Graph g = MakeClique(7);
  CoreDecomposition d = ComputeCores(g);
  EXPECT_EQ(d.degeneracy, 6u);
  for (VertexId u = 0; u < 7; ++u) EXPECT_EQ(d.core[u], 6u);
}

TEST(ComputeCores, TreeIsOneDegenerate) {
  Graph g = MakeCompleteBinaryTree(5);
  CoreDecomposition d = ComputeCores(g);
  EXPECT_EQ(d.degeneracy, 1u);
  for (VertexId u = 0; u < g.NumVertices(); ++u) EXPECT_EQ(d.core[u], 1u);
}

TEST(ComputeCores, CycleIsTwoCore) {
  Graph g = MakeCycle(11);
  CoreDecomposition d = ComputeCores(g);
  EXPECT_EQ(d.degeneracy, 2u);
  for (VertexId u = 0; u < 11; ++u) EXPECT_EQ(d.core[u], 2u);
}

TEST(ComputeCores, CliqueWithTail) {
  // Clique {0..4} + path 4-5-6: clique vertices are 4-core, tail 1-core.
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) edges.emplace_back(i, j);
  }
  edges.emplace_back(4, 5);
  edges.emplace_back(5, 6);
  Graph g = Graph::FromEdges(7, edges);
  CoreDecomposition d = ComputeCores(g);
  EXPECT_EQ(d.degeneracy, 4u);
  for (VertexId u = 0; u < 5; ++u) EXPECT_EQ(d.core[u], 4u);
  EXPECT_EQ(d.core[5], 1u);
  EXPECT_EQ(d.core[6], 1u);
}

TEST(ComputeCores, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = MakeErdosRenyi(60, 0.1, seed);
    CoreDecomposition d = ComputeCores(g);
    EXPECT_EQ(d.core, BruteForceCores(g)) << "seed " << seed;
  }
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = MakeChungLuPowerLaw(120, 2.3, 6, seed);
    CoreDecomposition d = ComputeCores(g);
    EXPECT_EQ(d.core, BruteForceCores(g)) << "powerlaw seed " << seed;
  }
}

TEST(ComputeCores, OrderIsAPermutationConsistentWithPosition) {
  Graph g = MakeErdosRenyi(100, 0.08, 3);
  CoreDecomposition d = ComputeCores(g);
  std::vector<bool> seen(g.NumVertices(), false);
  for (VertexId i = 0; i < g.NumVertices(); ++i) {
    VertexId u = d.order[i];
    ASSERT_LT(u, g.NumVertices());
    EXPECT_FALSE(seen[u]);
    seen[u] = true;
    EXPECT_EQ(d.position[u], i);
  }
}

TEST(ComputeCores, DegeneracyOrderProperty) {
  // Each vertex has at most `degeneracy` neighbors later in the order.
  Graph g = MakeChungLuPowerLaw(300, 2.4, 7, 5);
  CoreDecomposition d = ComputeCores(g);
  for (VertexId i = 0; i < g.NumVertices(); ++i) {
    VertexId u = d.order[i];
    uint32_t later = 0;
    for (VertexId v : g.Neighbors(u)) {
      if (d.position[v] > i) ++later;
    }
    EXPECT_LE(later, d.degeneracy);
  }
}

TEST(ComputeCores, EmptyAndIsolated) {
  Graph empty = Graph::FromEdges(0, {});
  EXPECT_EQ(ComputeCores(empty).degeneracy, 0u);
  Graph isolated = Graph::FromEdges(4, {});
  CoreDecomposition d = ComputeCores(isolated);
  EXPECT_EQ(d.degeneracy, 0u);
  for (VertexId u = 0; u < 4; ++u) EXPECT_EQ(d.core[u], 0u);
}

}  // namespace
}  // namespace nsky::graph
