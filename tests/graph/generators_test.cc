#include "graph/generators.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nsky::graph {
namespace {

TEST(MakeClique, AllPairsAdjacent) {
  Graph g = MakeClique(6);
  EXPECT_EQ(g.NumVertices(), 6u);
  EXPECT_EQ(g.NumEdges(), 15u);
  for (VertexId u = 0; u < 6; ++u) EXPECT_EQ(g.Degree(u), 5u);
}

TEST(MakeCompleteBinaryTree, StructureAndSize) {
  Graph g = MakeCompleteBinaryTree(4);  // 15 vertices
  EXPECT_EQ(g.NumVertices(), 15u);
  EXPECT_EQ(g.NumEdges(), 14u);
  EXPECT_EQ(g.Degree(0), 2u);                 // root
  EXPECT_EQ(g.Degree(14), 1u);                // a leaf
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(3, 7));
  EXPECT_TRUE(g.HasEdge(3, 8));
}

TEST(MakeCycle, EveryVertexDegreeTwo) {
  Graph g = MakeCycle(9);
  EXPECT_EQ(g.NumEdges(), 9u);
  for (VertexId u = 0; u < 9; ++u) EXPECT_EQ(g.Degree(u), 2u);
  EXPECT_TRUE(g.HasEdge(8, 0));
}

TEST(MakePath, Endpoints) {
  Graph g = MakePath(7);
  EXPECT_EQ(g.NumEdges(), 6u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(6), 1u);
  EXPECT_EQ(g.Degree(3), 2u);
}

TEST(MakePath, SingleVertex) {
  Graph g = MakePath(1);
  EXPECT_EQ(g.NumVertices(), 1u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(MakeStar, CenterAndLeaves) {
  Graph g = MakeStar(10);
  EXPECT_EQ(g.NumEdges(), 9u);
  EXPECT_EQ(g.Degree(0), 9u);
  for (VertexId leaf = 1; leaf < 10; ++leaf) EXPECT_EQ(g.Degree(leaf), 1u);
}

TEST(MakeGrid, InteriorDegreeFour) {
  Graph g = MakeGrid(4, 5);
  EXPECT_EQ(g.NumVertices(), 20u);
  EXPECT_EQ(g.NumEdges(), 4u * 4 + 3u * 5);
  EXPECT_EQ(g.Degree(0), 2u);        // corner
  EXPECT_EQ(g.Degree(1 * 5 + 2), 4u);  // interior
}

TEST(MakeCaveman, CliquesPlusBridges) {
  Graph g = MakeCaveman(4, 5);
  EXPECT_EQ(g.NumVertices(), 20u);
  // 4 * C(5,2) + 4 bridges.
  EXPECT_EQ(g.NumEdges(), 4u * 10 + 4);
}

TEST(MakeErdosRenyi, EdgeCountNearExpectation) {
  const VertexId n = 400;
  const double p = 0.02;
  Graph g = MakeErdosRenyi(n, p, 7);
  double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expected,
              4 * std::sqrt(expected));
  EXPECT_EQ(g.NumVertices(), n);
}

TEST(MakeErdosRenyi, Deterministic) {
  Graph a = MakeErdosRenyi(100, 0.05, 42);
  Graph b = MakeErdosRenyi(100, 0.05, 42);
  EXPECT_EQ(a.Edges(), b.Edges());
  Graph c = MakeErdosRenyi(100, 0.05, 43);
  EXPECT_NE(a.Edges(), c.Edges());
}

TEST(MakeErdosRenyi, ExtremeProbabilities) {
  Graph empty = MakeErdosRenyi(50, 0.0, 1);
  EXPECT_EQ(empty.NumEdges(), 0u);
  Graph full = MakeErdosRenyi(20, 1.0, 1);
  EXPECT_EQ(full.NumEdges(), 190u);
}

TEST(MakeErdosRenyi, NoSelfLoopsOrDuplicates) {
  Graph g = MakeErdosRenyi(200, 0.05, 3);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_NE(nbrs[i], u);
      if (i > 0) EXPECT_LT(nbrs[i - 1], nbrs[i]);
    }
  }
}

TEST(MakeErdosRenyiLogScaled, MatchesFormula) {
  const VertexId n = 1000;
  const double dp = 0.8;
  Graph g = MakeErdosRenyiLogScaled(n, dp, 5);
  double p = dp * std::log(n) / n;
  double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expected,
              5 * std::sqrt(expected));
}

TEST(MakeBarabasiAlbert, SizeAndHubSkew) {
  Graph g = MakeBarabasiAlbert(500, 3, 11);
  EXPECT_EQ(g.NumVertices(), 500u);
  // C(4,2) + 496 * 3 edges.
  EXPECT_EQ(g.NumEdges(), 6u + 496u * 3);
  // Preferential attachment produces hubs well above the average degree.
  EXPECT_GT(g.MaxDegree(), 20u);
}

TEST(MakeBarabasiAlbert, MinimumDegreeIsM) {
  Graph g = MakeBarabasiAlbert(300, 4, 2);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    EXPECT_GE(g.Degree(u), 4u);
  }
}

TEST(MakeChungLuPowerLaw, AverageDegreeRoughlyMatches) {
  Graph g = MakeChungLuPowerLaw(5000, 2.5, 8.0, 9);
  double avg = 2.0 * static_cast<double>(g.NumEdges()) / g.NumVertices();
  EXPECT_NEAR(avg, 8.0, 2.0);
}

TEST(MakeChungLuPowerLaw, HeavierTailForSmallerBeta) {
  Graph heavy = MakeChungLuPowerLaw(5000, 2.1, 6.0, 13);
  Graph light = MakeChungLuPowerLaw(5000, 3.2, 6.0, 13);
  EXPECT_GT(heavy.MaxDegree(), light.MaxDegree());
}

TEST(MakeChungLuPowerLaw, Deterministic) {
  Graph a = MakeChungLuPowerLaw(1000, 2.5, 6.0, 21);
  Graph b = MakeChungLuPowerLaw(1000, 2.5, 6.0, 21);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(MakeChungLuPowerLaw, HubCapRespectedApproximately) {
  Graph g = MakeChungLuPowerLaw(20000, 2.2, 6.0, 5, /*max_weight=*/50.0);
  // Realized degrees fluctuate around the capped expectation.
  EXPECT_LT(g.MaxDegree(), 90u);
}

TEST(MakeParetoPowerLaw, PendantRichAndDeterministic) {
  Graph a = MakeParetoPowerLaw(5000, 2.8, 3);
  Graph b = MakeParetoPowerLaw(5000, 2.8, 3);
  EXPECT_EQ(a.Edges(), b.Edges());
  // Pareto(xmin=1) expected degrees put a large mass at degree ~1.
  uint64_t low_degree = 0;
  for (VertexId u = 0; u < a.NumVertices(); ++u) low_degree += a.Degree(u) <= 1;
  EXPECT_GT(low_degree, a.NumVertices() / 4);
  // Average degree near (beta-1)/(beta-2) = 2.25 for beta = 2.8.
  double avg = 2.0 * static_cast<double>(a.NumEdges()) / a.NumVertices();
  EXPECT_GT(avg, 1.2);
  EXPECT_LT(avg, 4.0);
}

TEST(MakeParetoPowerLaw, SmallerBetaHeavierTail) {
  Graph heavy = MakeParetoPowerLaw(20000, 2.2, 5);
  Graph light = MakeParetoPowerLaw(20000, 3.4, 5);
  EXPECT_GT(heavy.MaxDegree(), light.MaxDegree());
}

TEST(MakeSocialGraph, SizeAndDeterminism) {
  Graph a = MakeSocialGraph(2000, 6.0, 0.5, 0.4, 9, 0.3);
  Graph b = MakeSocialGraph(2000, 6.0, 0.5, 0.4, 9, 0.3);
  EXPECT_EQ(a.NumVertices(), 2000u);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(MakeSocialGraph, NoIsolatedVerticesAndConnectedish) {
  Graph g = MakeSocialGraph(3000, 5.0, 0.6, 0.3, 4, 0.3);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    EXPECT_GE(g.Degree(u), 1u) << "vertex " << u;
  }
}

TEST(MakeSocialGraph, PendantFractionShowsUp) {
  Graph heavy = MakeSocialGraph(5000, 5.0, 0.7, 0.3, 7, 0.0);
  Graph light = MakeSocialGraph(5000, 5.0, 0.1, 0.3, 7, 0.0);
  auto pendant_count = [](const Graph& g) {
    uint64_t c = 0;
    for (VertexId u = 0; u < g.NumVertices(); ++u) c += g.Degree(u) == 1;
    return c;
  };
  EXPECT_GT(pendant_count(heavy), 2 * pendant_count(light));
}

TEST(MakeSocialGraph, TriadProbabilityRaisesTriangles) {
  auto triangles = [](const Graph& g) {
    uint64_t t = 0;
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      for (VertexId v : g.Neighbors(u)) {
        if (v <= u) continue;
        for (VertexId w : g.Neighbors(v)) {
          if (w > v && g.HasEdge(u, w)) ++t;
        }
      }
    }
    return t;
  };
  Graph clustered = MakeSocialGraph(3000, 6.0, 0.3, 0.8, 11, 0.0);
  Graph random = MakeSocialGraph(3000, 6.0, 0.3, 0.0, 11, 0.0);
  EXPECT_GT(triangles(clustered), 2 * triangles(random));
}

TEST(MakeSocialGraph, AverageDegreeNearTargetWithoutCopying) {
  Graph g = MakeSocialGraph(8000, 6.0, 0.5, 0.4, 13, 0.0);
  double avg = 2.0 * static_cast<double>(g.NumEdges()) / g.NumVertices();
  EXPECT_NEAR(avg, 6.0, 1.0);
}

TEST(MakeSocialGraph, HubsEmerge) {
  Graph g = MakeSocialGraph(10000, 6.0, 0.5, 0.4, 17, 0.2);
  EXPECT_GT(g.MaxDegree(), 50u);
}

}  // namespace
}  // namespace nsky::graph
