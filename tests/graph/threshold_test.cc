#include "graph/threshold.h"

#include <gtest/gtest.h>

#include "core/solver.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace nsky::graph {
namespace {

using Op = ThresholdOp;

TEST(MakeThresholdGraph, BasicShapes) {
  // isolated, isolated, dominating -> path-shaped K1,2 (a star).
  Graph g = MakeThresholdGraph({Op::kIsolated, Op::kIsolated, Op::kDominating});
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(2), 2u);

  // All dominating -> clique.
  Graph k4 = MakeThresholdGraph(
      {Op::kIsolated, Op::kDominating, Op::kDominating, Op::kDominating});
  EXPECT_EQ(k4.NumEdges(), 6u);
}

TEST(IsThresholdGraph, Positives) {
  EXPECT_TRUE(IsThresholdGraph(Graph::FromEdges(0, {})));
  EXPECT_TRUE(IsThresholdGraph(Graph::FromEdges(1, {})));
  EXPECT_TRUE(IsThresholdGraph(Graph::FromEdges(5, {})));  // all isolated
  EXPECT_TRUE(IsThresholdGraph(MakeClique(6)));
  EXPECT_TRUE(IsThresholdGraph(MakeStar(7)));
}

TEST(IsThresholdGraph, ClassicNegatives) {
  // P4, C4 and 2K2 are the three forbidden induced subgraphs.
  EXPECT_FALSE(IsThresholdGraph(MakePath(4)));
  EXPECT_FALSE(IsThresholdGraph(MakeCycle(4)));
  EXPECT_FALSE(
      IsThresholdGraph(Graph::FromEdges(4, {{0, 1}, {2, 3}})));  // 2K2
  EXPECT_FALSE(IsThresholdGraph(MakeCycle(5)));
  EXPECT_FALSE(IsThresholdGraph(MakeGrid(3, 3)));
}

TEST(ThresholdConstructionSequence, RoundTripsRandomSequences) {
  util::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Op> ops = {Op::kIsolated};
    size_t len = 2 + rng.NextUint64(12);
    for (size_t i = 1; i < len; ++i) {
      ops.push_back(rng.NextBool(0.5) ? Op::kIsolated : Op::kDominating);
    }
    Graph g = MakeThresholdGraph(ops);
    ASSERT_TRUE(IsThresholdGraph(g)) << "trial " << trial;
    auto recovered = ThresholdConstructionSequence(g);
    ASSERT_FALSE(recovered.empty());
    Graph rebuilt = MakeThresholdGraph(recovered);
    // Threshold graphs are determined by their degree sequence; compare via
    // sorted degree multisets.
    auto degrees = [](const Graph& h) {
      std::vector<uint32_t> d;
      for (VertexId u = 0; u < h.NumVertices(); ++u) d.push_back(h.Degree(u));
      std::sort(d.begin(), d.end());
      return d;
    };
    EXPECT_EQ(degrees(rebuilt), degrees(g)) << "trial " << trial;
  }
}

TEST(ThresholdConstructionSequence, CreationOrderIsPermutation) {
  Graph g = MakeStar(6);
  std::vector<VertexId> order;
  auto ops = ThresholdConstructionSequence(g, &order);
  ASSERT_EQ(ops.size(), 6u);
  ASSERT_EQ(order.size(), 6u);
  std::vector<VertexId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));
  // The star's center must be created last (as the dominating vertex).
  EXPECT_EQ(order.back(), 0u);
  EXPECT_EQ(ops.back(), Op::kDominating);
}

TEST(ThresholdAndSkyline, ConnectedThresholdGraphHasSingletonSkyline) {
  // On a threshold graph the vicinal preorder is total, so exactly one
  // vertex per connected structure survives; with a dominating vertex last
  // the graph is connected and |R| = 1.
  util::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Op> ops = {Op::kIsolated};
    size_t len = 3 + rng.NextUint64(15);
    for (size_t i = 1; i + 1 < len; ++i) {
      ops.push_back(rng.NextBool(0.5) ? Op::kIsolated : Op::kDominating);
    }
    ops.push_back(Op::kDominating);  // force connectivity
    Graph g = MakeThresholdGraph(ops);
    auto skyline = core::Solve(g).skyline;
    EXPECT_EQ(skyline.size(), 1u) << "trial " << trial;
  }
}

TEST(ThresholdAndSkyline, IsolatedTailKeptByConvention) {
  // Trailing isolated vertices are skyline members (2-hop convention).
  Graph g = MakeThresholdGraph(
      {Op::kIsolated, Op::kDominating, Op::kDominating, Op::kIsolated});
  auto skyline = core::Solve(g).skyline;
  EXPECT_EQ(skyline.size(), 2u);  // one from the triangle, plus vertex 3
}

}  // namespace
}  // namespace nsky::graph
