#include "graph/sampling.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace nsky::graph {
namespace {

TEST(SampleVertices, KeepsRequestedFraction) {
  Graph g = MakeErdosRenyi(1000, 0.01, 1);
  Graph s = SampleVertices(g, 0.4, 7);
  EXPECT_EQ(s.NumVertices(), 400u);
  EXPECT_LT(s.NumEdges(), g.NumEdges());
}

TEST(SampleVertices, FullFractionIsIdentity) {
  Graph g = MakeErdosRenyi(200, 0.05, 2);
  Graph s = SampleVertices(g, 1.0, 7);
  EXPECT_EQ(s.NumVertices(), g.NumVertices());
  EXPECT_EQ(s.NumEdges(), g.NumEdges());
}

TEST(SampleVertices, InducedEdgesOnly) {
  // On a clique, an induced subgraph of k vertices is a k-clique.
  Graph g = MakeClique(20);
  Graph s = SampleVertices(g, 0.5, 3);
  EXPECT_EQ(s.NumVertices(), 10u);
  EXPECT_EQ(s.NumEdges(), 45u);
}

TEST(SampleVertices, Deterministic) {
  Graph g = MakeErdosRenyi(300, 0.03, 4);
  Graph a = SampleVertices(g, 0.6, 11);
  Graph b = SampleVertices(g, 0.6, 11);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(SampleVertices, EdgeCountScalesQuadratically) {
  Graph g = MakeErdosRenyi(2000, 0.005, 5);
  Graph half = SampleVertices(g, 0.5, 9);
  // Induced sampling keeps ~ fraction^2 of the edges.
  double expected = 0.25 * static_cast<double>(g.NumEdges());
  EXPECT_NEAR(static_cast<double>(half.NumEdges()), expected, expected * 0.3);
}

TEST(SampleEdges, KeepsAllVerticesAndFractionOfEdges) {
  Graph g = MakeErdosRenyi(500, 0.04, 6);
  Graph s = SampleEdges(g, 0.3, 8);
  EXPECT_EQ(s.NumVertices(), g.NumVertices());
  double expected = 0.3 * static_cast<double>(g.NumEdges());
  EXPECT_NEAR(static_cast<double>(s.NumEdges()), expected, expected * 0.25);
}

TEST(SampleEdges, FullFractionIsIdentity) {
  Graph g = MakeErdosRenyi(100, 0.1, 10);
  Graph s = SampleEdges(g, 1.0, 1);
  EXPECT_EQ(s.NumEdges(), g.NumEdges());
}

TEST(RemoveIsolatedVertices, DropsOnlyIsolated) {
  Graph g = Graph::FromEdges(7, {{1, 3}, {3, 5}});
  Graph c = RemoveIsolatedVertices(g);
  EXPECT_EQ(c.NumVertices(), 3u);
  EXPECT_EQ(c.NumEdges(), 2u);
  // Relative order preserved: 1->0, 3->1, 5->2.
  EXPECT_TRUE(c.HasEdge(0, 1));
  EXPECT_TRUE(c.HasEdge(1, 2));
  EXPECT_FALSE(c.HasEdge(0, 2));
}

TEST(RemoveIsolatedVertices, NoopWhenNoneIsolated) {
  Graph g = MakeCycle(6);
  Graph c = RemoveIsolatedVertices(g);
  EXPECT_EQ(c.NumVertices(), 6u);
  EXPECT_EQ(c.NumEdges(), 6u);
}

TEST(RemoveIsolatedVertices, AllIsolated) {
  Graph g = Graph::FromEdges(4, {});
  Graph c = RemoveIsolatedVertices(g);
  EXPECT_EQ(c.NumVertices(), 0u);
}

TEST(SampleEdges, SampledEdgesExistInOriginal) {
  Graph g = MakeErdosRenyi(150, 0.05, 12);
  Graph s = SampleEdges(g, 0.5, 13);
  for (const Edge& e : s.Edges()) {
    EXPECT_TRUE(g.HasEdge(e.first, e.second));
  }
}

}  // namespace
}  // namespace nsky::graph
