#include "graph/graph.h"

#include <vector>

#include <gtest/gtest.h>

namespace nsky::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g = Graph::FromEdges(0, {});
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(Graph, VerticesWithoutEdges) {
  Graph g = Graph::FromEdges(5, {});
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  for (VertexId u = 0; u < 5; ++u) EXPECT_EQ(g.Degree(u), 0u);
}

TEST(Graph, BasicTriangle) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.NumEdges(), 3u);
  for (VertexId u = 0; u < 3; ++u) EXPECT_EQ(g.Degree(u), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_EQ(g.MaxDegree(), 2u);
}

TEST(Graph, DropsSelfLoops) {
  Graph g = Graph::FromEdges(3, {{0, 0}, {0, 1}, {2, 2}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_EQ(g.Degree(2), 0u);
}

TEST(Graph, MergesDuplicateAndReversedEdges) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 0}, {0, 1}, {2, 3}, {3, 2}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(Graph, NeighborsAreSortedAndComplete) {
  Graph g = Graph::FromEdges(6, {{3, 1}, {3, 5}, {3, 0}, {3, 4}});
  auto nbrs = g.Neighbors(3);
  std::vector<VertexId> got(nbrs.begin(), nbrs.end());
  EXPECT_EQ(got, (std::vector<VertexId>{0, 1, 4, 5}));
  EXPECT_EQ(g.Degree(3), 4u);
  EXPECT_EQ(g.MaxDegree(), 4u);
}

TEST(Graph, HasEdgeNegativeCases) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(1, 3));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(Graph, EdgesRoundTrip) {
  std::vector<Edge> in = {{0, 1}, {1, 2}, {0, 4}, {3, 4}};
  Graph g = Graph::FromEdges(5, in);
  std::vector<Edge> out = g.Edges();
  ASSERT_EQ(out.size(), in.size());
  for (const Edge& e : out) EXPECT_LT(e.first, e.second);
  Graph g2 = Graph::FromEdges(5, out);
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (VertexId u = 0; u < 5; ++u) EXPECT_EQ(g2.Degree(u), g.Degree(u));
}

TEST(Graph, MemoryBytesPositive) {
  Graph g = Graph::FromEdges(10, {{0, 1}});
  EXPECT_GT(g.MemoryBytes(), 0u);
}

TEST(Graph, SymmetryInvariant) {
  Graph g = Graph::FromEdges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0},
          {0, 4}, {2, 6}});
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      EXPECT_TRUE(g.HasEdge(v, u)) << u << "-" << v;
    }
  }
  uint64_t degree_sum = 0;
  for (VertexId u = 0; u < g.NumVertices(); ++u) degree_sum += g.Degree(u);
  EXPECT_EQ(degree_sum, 2 * g.NumEdges());
}

}  // namespace
}  // namespace nsky::graph
