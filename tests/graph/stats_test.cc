#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace nsky::graph {
namespace {

TEST(ComputeStats, ConnectedCycle) {
  GraphStats s = ComputeStats(MakeCycle(12));
  EXPECT_EQ(s.num_vertices, 12u);
  EXPECT_EQ(s.num_edges, 12u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.largest_component, 12u);
  EXPECT_EQ(s.num_isolated, 0u);
}

TEST(ComputeStats, TwoComponentsPlusIsolated) {
  Graph g = Graph::FromEdges(8, {{0, 1}, {1, 2}, {3, 4}});
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_components, 5u);  // {0,1,2}, {3,4}, {5}, {6}, {7}
  EXPECT_EQ(s.largest_component, 3u);
  EXPECT_EQ(s.num_isolated, 3u);
}

TEST(ComputeStats, EmptyGraph) {
  GraphStats s = ComputeStats(Graph::FromEdges(0, {}));
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.num_components, 0u);
  EXPECT_EQ(s.largest_component, 0u);
}

TEST(ConnectedComponents, LabelsAreConsistent) {
  Graph g = Graph::FromEdges(7, {{0, 1}, {2, 3}, {3, 4}, {5, 6}});
  std::vector<uint32_t> comp;
  EXPECT_EQ(ConnectedComponents(g, &comp), 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_EQ(comp[5], comp[6]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[5]);
  EXPECT_NE(comp[2], comp[5]);
}

TEST(LargestComponentVertices, PicksTheBiggest) {
  Graph g = Graph::FromEdges(9, {{0, 1}, {1, 2}, {2, 3}, {5, 6}});
  std::vector<VertexId> big = LargestComponentVertices(g);
  EXPECT_EQ(big, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(StatsToString, ContainsKeyNumbers) {
  GraphStats s = ComputeStats(MakeClique(5));
  std::string str = StatsToString(s);
  EXPECT_NE(str.find("n=5"), std::string::npos);
  EXPECT_NE(str.find("m=10"), std::string::npos);
  EXPECT_NE(str.find("dmax=4"), std::string::npos);
}

}  // namespace
}  // namespace nsky::graph
