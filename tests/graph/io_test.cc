#include "graph/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace nsky::graph {
namespace {

TEST(ParseEdgeList, BasicWithComments) {
  auto r = ParseEdgeList(
      "# SNAP style comment\n"
      "% KONECT style comment\n"
      "0 1\n"
      "1 2\n"
      "\n"
      "2 0\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().NumVertices(), 3u);
  EXPECT_EQ(r.value().NumEdges(), 3u);
}

TEST(ParseEdgeList, IgnoresExtraColumns) {
  auto r = ParseEdgeList("1 2 1.5 1082723199\n2 3 2.0 1082723200\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumVertices(), 3u);
  EXPECT_EQ(r.value().NumEdges(), 2u);
}

TEST(ParseEdgeList, RelabelsSparseIds) {
  auto r = ParseEdgeList("1000000 2000000\n2000000 5\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumVertices(), 3u);
}

TEST(ParseEdgeList, DirectedInputBecomesUndirected) {
  auto r = ParseEdgeList("0 1\n1 0\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumEdges(), 1u);
}

TEST(ParseEdgeList, RejectsMissingColumn) {
  auto r = ParseEdgeList("0 1\n17\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(ParseEdgeList, RejectsMalformedLabel) {
  auto r = ParseEdgeList("0 abc\n");
  ASSERT_FALSE(r.ok());
}

TEST(LoadEdgeList, MissingFileIsIoError) {
  auto r = LoadEdgeList("/nonexistent/definitely/missing.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
}

TEST(SaveLoad, RoundTrips) {
  // Path + chord: in CSR edge order the labels appear as 0,1,2,3,4, so the
  // loader's first-appearance relabeling is the identity and adjacency can
  // be compared directly.
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
  std::string path = ::testing::TempDir() + "/nsky_io_roundtrip.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto r = LoadEdgeList(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Graph& g2 = r.value();
  EXPECT_EQ(g2.NumVertices(), g.NumVertices());
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v : g.Neighbors(u)) EXPECT_TRUE(g2.HasEdge(u, v));
  }
  std::remove(path.c_str());
}

TEST(SaveEdgeList, UnwritablePathFails) {
  Graph g = Graph::FromEdges(2, {{0, 1}});
  EXPECT_FALSE(SaveEdgeList(g, "/nonexistent/dir/file.txt").ok());
}

}  // namespace
}  // namespace nsky::graph
