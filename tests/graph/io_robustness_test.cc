// Malformed-input corpus for the edge-list loaders plus the IO fault sites.
//
// Strict mode (default) must reject every corrupt line with a line-numbered
// kInvalidArgument; permissive mode must skip and count the same lines and
// still build the graph from the well-formed remainder.
#include "graph/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "util/fault_injection.h"

namespace nsky::graph {
namespace {

struct BadLine {
  const char* name;
  const char* text;       // one corrupt data line
  const char* fragment;   // expected substring of the strict-mode message
};

// One entry per malformation class the loader distinguishes.
const BadLine kCorpus[] = {
    {"missing_column", "17", "expected two vertex labels"},
    {"garbage_token", "0 abc", "malformed vertex label"},
    {"garbage_first_token", "x7 3", "malformed vertex label"},
    {"trailing_junk_in_label", "0 1z", "malformed vertex label"},
    {"negative_first_id", "-1 2", "negative vertex id"},
    {"negative_second_id", "0 -2", "negative vertex id"},
    {"uint32_overflow", "0 4294967296", "overflows uint32_t"},
    {"uint64_overflow", "0 99999999999999999999", "malformed vertex label"},
    {"float_label", "0 1.5e3", "malformed vertex label"},
};

TEST(EdgeListCorpus, StrictModeRejectsWithLineNumbers) {
  for (const BadLine& bad : kCorpus) {
    // The corrupt line sits at line 3, after a comment and a good edge.
    const std::string text =
        std::string("# header\n0 1\n") + bad.text + "\n1 2\n";
    auto r = ParseEdgeList(text);
    ASSERT_FALSE(r.ok()) << bad.name;
    EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument)
        << bad.name;
    EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
        << bad.name << ": " << r.status().message();
    EXPECT_NE(r.status().message().find(bad.fragment), std::string::npos)
        << bad.name << ": " << r.status().message();
  }
}

TEST(EdgeListCorpus, PermissiveModeSkipsAndCounts) {
  EdgeListOptions permissive;
  permissive.strict = false;
  for (const BadLine& bad : kCorpus) {
    const std::string text =
        std::string("# header\n0 1\n") + bad.text + "\n1 2\n";
    EdgeListReport report;
    auto r = ParseEdgeList(text, permissive, &report);
    ASSERT_TRUE(r.ok()) << bad.name << ": " << r.status().ToString();
    EXPECT_EQ(report.skipped_lines, 1u) << bad.name;
    EXPECT_EQ(report.edges_added, 2u) << bad.name;
    EXPECT_EQ(report.lines, 4u) << bad.name;
    EXPECT_EQ(r.value().NumEdges(), 2u) << bad.name;
  }
}

TEST(EdgeListCorpus, PermissiveModeCountsEverySkip) {
  EdgeListOptions permissive;
  permissive.strict = false;
  std::string text = "0 1\n";
  for (const BadLine& bad : kCorpus) text += std::string(bad.text) + "\n";
  EdgeListReport report;
  auto r = ParseEdgeList(text, permissive, &report);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(report.skipped_lines, std::size(kCorpus));
  EXPECT_EQ(report.edges_added, 1u);
}

TEST(EdgeListCorpus, MaxVertexIdIsAccepted) {
  auto r = ParseEdgeList("0 4294967295\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().NumVertices(), 2u);
}

TEST(EdgeListCorpus, ReportFilledOnStrictFailure) {
  EdgeListReport report;
  auto r = ParseEdgeList("0 1\n1 2\nbad\n", EdgeListOptions{}, &report);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(report.lines, 3u);
  EXPECT_EQ(report.edges_added, 2u);
}

class IoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Disarm(); }
  void TearDown() override { util::FaultInjector::Disarm(); }
};

TEST_F(IoFaultTest, ShortReadSurfacesAsIoError) {
  ASSERT_TRUE(util::FaultInjector::ArmForTest("io.short_read=3"));
  // Comments and blanks do not count as data lines: the third *data* line
  // trips the fault.
  auto r = ParseEdgeList("# c\n0 1\n\n1 2\n2 3\n3 4\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
  EXPECT_NE(r.status().message().find("short read"), std::string::npos);
}

TEST_F(IoFaultTest, ShortWriteSurfacesAsIoError) {
  ASSERT_TRUE(util::FaultInjector::ArmForTest("io.short_write=2"));
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  std::string path = ::testing::TempDir() + "/nsky_short_write.txt";
  util::Status s = SaveEdgeList(g, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kIoError);
  EXPECT_NE(s.message().find("short write"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(IoFaultTest, DisarmedFaultsDoNotFire) {
  auto r = ParseEdgeList("0 1\n1 2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumEdges(), 2u);
}

}  // namespace
}  // namespace nsky::graph
