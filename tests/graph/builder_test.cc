#include "graph/builder.h"

#include <gtest/gtest.h>

namespace nsky::graph {
namespace {

TEST(GraphBuilder, RelabelsInFirstAppearanceOrder) {
  GraphBuilder b;
  b.AddEdge(1000, 7);
  b.AddEdge(7, 42);
  EXPECT_EQ(b.NumVertices(), 3u);
  VertexId id = 99;
  ASSERT_TRUE(b.LookupLabel(1000, &id));
  EXPECT_EQ(id, 0u);
  ASSERT_TRUE(b.LookupLabel(7, &id));
  EXPECT_EQ(id, 1u);
  ASSERT_TRUE(b.LookupLabel(42, &id));
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(b.LabelOf(0), 1000u);
  EXPECT_EQ(b.LabelOf(2), 42u);
}

TEST(GraphBuilder, UnknownLabelLookupFails) {
  GraphBuilder b;
  b.AddEdge(1, 2);
  VertexId id;
  EXPECT_FALSE(b.LookupLabel(3, &id));
}

TEST(GraphBuilder, BuildProducesCleanGraph) {
  GraphBuilder b;
  b.AddEdge(10, 20);
  b.AddEdge(20, 10);  // duplicate (reversed)
  b.AddEdge(30, 30);  // self-loop
  b.AddEdge(20, 30);
  EXPECT_EQ(b.NumAddedEdges(), 4u);
  Graph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphBuilder, LargeSparseLabels) {
  GraphBuilder b;
  b.AddEdge(1ull << 60, 5);
  b.AddEdge(5, 1ull << 61);
  Graph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);  // label 5 interned second
}

TEST(GraphBuilder, EmptyBuild) {
  GraphBuilder b;
  Graph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

}  // namespace
}  // namespace nsky::graph
