#include "core/dynamic_skyline.h"

#include <gtest/gtest.h>

#include "core/solver.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace nsky::core {
namespace {

using graph::Graph;
using graph::VertexId;

// The differential check: the maintained skyline always equals the
// recomputed one.
void ExpectConsistent(const DynamicSkyline& dyn) {
  EXPECT_EQ(dyn.Skyline(), Solve(dyn.ToGraph()).skyline);
}

TEST(DynamicSkyline, EmptyGraphAllSkyline) {
  DynamicSkyline dyn(5);
  EXPECT_EQ(dyn.Skyline().size(), 5u);
  EXPECT_EQ(dyn.NumEdges(), 0u);
}

TEST(DynamicSkyline, SingleEdgeCreatesMutualPair) {
  DynamicSkyline dyn(4);
  EXPECT_TRUE(dyn.AddEdge(1, 2));
  // K2: smaller id dominates; isolated 0, 3 stay.
  EXPECT_EQ(dyn.Skyline(), (std::vector<VertexId>{0, 1, 3}));
  ExpectConsistent(dyn);
}

TEST(DynamicSkyline, DuplicateAndSelfEdgesRejected) {
  DynamicSkyline dyn(3);
  EXPECT_TRUE(dyn.AddEdge(0, 1));
  EXPECT_FALSE(dyn.AddEdge(0, 1));
  EXPECT_FALSE(dyn.AddEdge(1, 0));
  EXPECT_FALSE(dyn.AddEdge(2, 2));
  EXPECT_EQ(dyn.NumEdges(), 1u);
}

TEST(DynamicSkyline, RemoveRestoresPreviousState) {
  DynamicSkyline dyn(4);
  dyn.AddEdge(0, 1);
  dyn.AddEdge(1, 2);
  auto before = dyn.Skyline();
  dyn.AddEdge(2, 3);
  EXPECT_TRUE(dyn.RemoveEdge(2, 3));
  EXPECT_EQ(dyn.Skyline(), before);
  EXPECT_FALSE(dyn.RemoveEdge(2, 3));  // already gone
  ExpectConsistent(dyn);
}

TEST(DynamicSkyline, SeededFromExistingGraph) {
  Graph g = graph::MakeSocialGraph(300, 6.0, 0.5, 0.4, 3, 0.3);
  DynamicSkyline dyn(g);
  EXPECT_EQ(dyn.Skyline(), Solve(g).skyline);
  EXPECT_EQ(dyn.NumEdges(), g.NumEdges());
}

TEST(DynamicSkyline, StarGrowsIncrementally) {
  DynamicSkyline dyn(8);
  for (VertexId leaf = 1; leaf < 8; ++leaf) {
    dyn.AddEdge(0, leaf);
    ExpectConsistent(dyn);
  }
  EXPECT_EQ(dyn.Skyline(), (std::vector<VertexId>{0}));
}

TEST(DynamicSkyline, RandomInsertionStream) {
  const VertexId n = 60;
  DynamicSkyline dyn(n);
  util::Rng rng(7);
  for (int step = 0; step < 250; ++step) {
    VertexId u = static_cast<VertexId>(rng.NextUint64(n));
    VertexId v = static_cast<VertexId>(rng.NextUint64(n));
    if (u == v) continue;
    dyn.AddEdge(u, v);
    if (step % 10 == 0) ExpectConsistent(dyn);
  }
  ExpectConsistent(dyn);
  EXPECT_GT(dyn.total_rechecks(), 0u);
}

TEST(DynamicSkyline, RandomMixedStream) {
  const VertexId n = 50;
  DynamicSkyline dyn(n);
  util::Rng rng(13);
  std::vector<std::pair<VertexId, VertexId>> live_edges;
  for (int step = 0; step < 300; ++step) {
    bool remove = !live_edges.empty() && rng.NextBool(0.35);
    if (remove) {
      size_t i = rng.NextUint64(live_edges.size());
      auto [u, v] = live_edges[i];
      EXPECT_TRUE(dyn.RemoveEdge(u, v));
      live_edges.erase(live_edges.begin() + static_cast<int64_t>(i));
    } else {
      VertexId u = static_cast<VertexId>(rng.NextUint64(n));
      VertexId v = static_cast<VertexId>(rng.NextUint64(n));
      if (u == v || dyn.HasEdge(u, v)) continue;
      EXPECT_TRUE(dyn.AddEdge(u, v));
      live_edges.emplace_back(u, v);
    }
    if (step % 7 == 0) ExpectConsistent(dyn);
  }
  ExpectConsistent(dyn);
}

TEST(DynamicSkyline, TearDownToEmpty) {
  Graph g = graph::MakeErdosRenyi(30, 0.2, 5);
  DynamicSkyline dyn(g);
  for (const auto& [u, v] : g.Edges()) {
    EXPECT_TRUE(dyn.RemoveEdge(u, v));
  }
  EXPECT_EQ(dyn.NumEdges(), 0u);
  // All vertices isolated again -> all skyline.
  EXPECT_EQ(dyn.Skyline().size(), 30u);
}

TEST(DynamicSkyline, ToGraphRoundTrip) {
  Graph g = graph::MakeBarabasiAlbert(100, 3, 9);
  DynamicSkyline dyn(g);
  Graph back = dyn.ToGraph();
  EXPECT_EQ(back.NumVertices(), g.NumVertices());
  EXPECT_EQ(back.NumEdges(), g.NumEdges());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) EXPECT_TRUE(back.HasEdge(u, v));
  }
}

}  // namespace
}  // namespace nsky::core
