#include "core/solver.h"

#include <gtest/gtest.h>

#include "core/domination.h"
#include "graph/generators.h"

namespace nsky::core {
namespace {

using graph::Graph;

TEST(FilterRefineSky, EmptyAndTinyGraphs) {
  EXPECT_TRUE(Solve(Graph::FromEdges(0, {})).skyline.empty());
  EXPECT_EQ(Solve(Graph::FromEdges(1, {})).skyline.size(), 1u);
  EXPECT_EQ(Solve(Graph::FromEdges(2, {{0, 1}})).skyline,
            (std::vector<graph::VertexId>{0}));
}

TEST(FilterRefineSky, MatchesBruteForceAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Graph g = graph::MakeChungLuPowerLaw(250, 2.3, 6, seed);
    EXPECT_EQ(Solve(g).skyline, BruteForceSkyline(g).skyline)
        << "seed " << seed;
  }
}

TEST(FilterRefineSky, BloomDisabledSameResult) {
  SolverOptions no_bloom;
  no_bloom.use_bloom = false;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::MakeErdosRenyi(150, 0.05, seed);
    EXPECT_EQ(Solve(g).skyline, Solve(g, no_bloom).skyline)
        << "seed " << seed;
  }
}

TEST(FilterRefineSky, TinyBloomStillExact) {
  // A deliberately undersized filter floods with false positives; NBRcheck
  // must still keep the result exact.
  SolverOptions tiny;
  tiny.bloom_bits = 64;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::MakeBarabasiAlbert(180, 4, seed);
    EXPECT_EQ(Solve(g, tiny).skyline, BruteForceSkyline(g).skyline)
        << "seed " << seed;
  }
}

TEST(FilterRefineSky, LargeBloomPrunesMore) {
  Graph g = graph::MakeChungLuPowerLaw(600, 2.2, 7, 3);
  SolverOptions tiny, large;
  tiny.bloom_bits = 64;
  large.bloom_bits = 4096;
  SkylineResult with_tiny = Solve(g, tiny);
  SkylineResult with_large = Solve(g, large);
  EXPECT_EQ(with_tiny.skyline, with_large.skyline);
  // A wider filter rejects no fewer pairs before the exact check.
  EXPECT_GE(with_large.stats.bloom_prunes, with_tiny.stats.bloom_prunes / 2);
  EXPECT_LE(with_large.stats.inclusion_tests, with_tiny.stats.inclusion_tests);
}

TEST(FilterRefineSky, CandidateCountRecorded) {
  Graph g = graph::MakeChungLuPowerLaw(400, 2.4, 6, 11);
  SkylineResult r = Solve(g);
  EXPECT_GT(r.stats.candidate_count, 0u);
  EXPECT_GE(r.stats.candidate_count, r.skyline.size());
  EXPECT_LE(r.stats.candidate_count, g.NumVertices());
}

TEST(FilterRefineSky, DominatorsActuallyDominate) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::MakeErdosRenyi(120, 0.07, seed);
    SkylineResult r = Solve(g);
    for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
      if (r.dominator[u] != u) {
        EXPECT_TRUE(Dominates(g, r.dominator[u], u))
            << r.dominator[u] << " vs " << u << " seed " << seed;
      }
    }
  }
}

TEST(FilterRefineSky, ExaminesFewerPairsThanBaseSky) {
  // The headline claim on power-law graphs: the filter phase plus blooms
  // shrink the verification work dramatically.
  Graph g = graph::MakeChungLuPowerLaw(3000, 2.3, 7, 5);
  SkylineResult fr = Solve(g);
  SkylineResult bs = Solve(g, {.algorithm = Algorithm::kBaseSky});
  EXPECT_EQ(fr.skyline, bs.skyline);
  EXPECT_LT(fr.stats.inclusion_tests + fr.stats.pairs_examined,
            bs.stats.pairs_examined);
}

}  // namespace
}  // namespace nsky::core
