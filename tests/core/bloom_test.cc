#include "core/bloom.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace nsky::core {
namespace {

using graph::Graph;
using graph::VertexId;

std::vector<uint8_t> AllMembers(const Graph& g) {
  return std::vector<uint8_t>(g.NumVertices(), 1);
}

bool OpenSubset(const Graph& g, VertexId u, VertexId w) {
  auto nu = g.Neighbors(u);
  auto nw = g.Neighbors(w);
  return std::includes(nw.begin(), nw.end(), nu.begin(), nu.end());
}

TEST(ChooseBits, PowerOfTwoAndClamped) {
  EXPECT_EQ(NeighborhoodBlooms::ChooseBits(0), 64u);
  EXPECT_EQ(NeighborhoodBlooms::ChooseBits(10, 2), 64u);
  EXPECT_EQ(NeighborhoodBlooms::ChooseBits(100, 2), 256u);
  EXPECT_EQ(NeighborhoodBlooms::ChooseBits(1000, 2), 2048u);
  uint32_t big = NeighborhoodBlooms::ChooseBits(10'000'000, 4);
  EXPECT_EQ(big, 1u << 20);  // clamp
}

TEST(Blooms, MembershipBitsNeverFalseNegative) {
  Graph g = graph::MakeErdosRenyi(100, 0.08, 3);
  NeighborhoodBlooms blooms(g, AllMembers(g), 256);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      EXPECT_TRUE(blooms.TestBit(u, v))
          << "neighbor " << v << " missing from BF(" << u << ")";
    }
  }
}

TEST(Blooms, SubsetTestNeverFalseNegative) {
  // If N(u) really is a subset of N(w), the filter test must pass.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::MakeErdosRenyi(60, 0.15, seed);
    NeighborhoodBlooms blooms(g, AllMembers(g), 128);
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      for (VertexId w = 0; w < g.NumVertices(); ++w) {
        if (u == w) continue;
        if (OpenSubset(g, u, w)) {
          EXPECT_TRUE(blooms.SubsetTest(u, w)) << u << " vs " << w;
        }
      }
    }
  }
}

TEST(Blooms, SubsetTestRejectsMostNonSubsets) {
  Graph g = graph::MakeErdosRenyi(200, 0.05, 5);
  NeighborhoodBlooms blooms(g, AllMembers(g),
                            NeighborhoodBlooms::ChooseBits(g.MaxDegree(), 4));
  uint64_t non_subsets = 0, false_positives = 0;
  for (VertexId u = 0; u < 50; ++u) {
    for (VertexId w = 0; w < g.NumVertices(); ++w) {
      if (u == w || g.Degree(u) == 0) continue;
      if (!OpenSubset(g, u, w)) {
        ++non_subsets;
        false_positives += blooms.SubsetTest(u, w);
      }
    }
  }
  ASSERT_GT(non_subsets, 0u);
  // The one-hash filter is coarse but must reject the vast majority.
  EXPECT_LT(static_cast<double>(false_positives),
            0.2 * static_cast<double>(non_subsets));
}

TEST(Blooms, ClosedSubsetAllowsDominatorOwnBit) {
  // Adjacent dominator: N(u) = {w, x} subset of N[w]; the open test may
  // fail (w not in N(w)) but the closed test must pass.
  Graph g = graph::Graph::FromEdges(3, {{0, 1}, {0, 2}, {1, 2}});
  NeighborhoodBlooms blooms(g, AllMembers(g), 64);
  // N(0) = {1, 2}, N[1] = {0, 1, 2}: closed containment through bit of 1.
  EXPECT_TRUE(blooms.SubsetTestClosed(0, 1));
}

TEST(Blooms, MemberSlotsOnlyForMembers) {
  Graph g = graph::MakeErdosRenyi(50, 0.1, 7);
  std::vector<uint8_t> member(g.NumVertices(), 0);
  member[3] = member[10] = 1;
  NeighborhoodBlooms blooms(g, member, 64);
  EXPECT_TRUE(blooms.Has(3));
  EXPECT_TRUE(blooms.Has(10));
  EXPECT_FALSE(blooms.Has(0));
  EXPECT_FALSE(blooms.Has(49));
}

TEST(Blooms, MemoryScalesWithMembersAndBits) {
  Graph g = graph::MakeErdosRenyi(100, 0.05, 9);
  NeighborhoodBlooms small(g, AllMembers(g), 64);
  NeighborhoodBlooms big(g, AllMembers(g), 1024);
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace nsky::core
