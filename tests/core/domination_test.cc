#include "core/domination.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace nsky::core {
namespace {

using graph::Graph;

// Fixture graph: a hub 0 adjacent to everything, a pendant 4 on 1, and a
// mutual pair (2, 3) with identical neighborhoods {0, 1}.
//
//      0 --- 1 --- 4
//      |\   /|
//      | \ / |
//      |  X  |
//      | / \ |
//      2     3
Graph MakeFixture() {
  return Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {1, 4}});
}

TEST(NeighborhoodIncluded, PendantIncludedByItsNeighbor) {
  Graph g = MakeFixture();
  // N(4) = {1} and 1 is in N[1]; trivially included.
  EXPECT_TRUE(NeighborhoodIncluded(g, 4, 1));
  // N(1) = {0,2,3,4} is not inside N[4] = {1,4}.
  EXPECT_FALSE(NeighborhoodIncluded(g, 1, 4));
}

TEST(NeighborhoodIncluded, MutualPair) {
  Graph g = MakeFixture();
  EXPECT_TRUE(NeighborhoodIncluded(g, 2, 3));
  EXPECT_TRUE(NeighborhoodIncluded(g, 3, 2));
}

TEST(NeighborhoodIncluded, SelfElementHandling) {
  // u in N(v) must not break the subset test (u is in N[u]).
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});  // triangle
  EXPECT_TRUE(NeighborhoodIncluded(g, 0, 1));  // N(0)={1,2} vs N[1]={0,1,2}
}

TEST(ClosedNeighborhoodIncluded, RequiresEdge) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {1, 3}});
  // N(0) = {1} subset of N[2] = {1,2,3}, but (0,2) is no edge: closed
  // inclusion must fail while open inclusion holds.
  EXPECT_TRUE(NeighborhoodIncluded(g, 0, 2));
  EXPECT_FALSE(ClosedNeighborhoodIncluded(g, 0, 2));
}

TEST(ClosedNeighborhoodIncluded, PendantCase) {
  Graph g = MakeFixture();
  // N[4] = {1,4} subset of N[1] = {0,1,2,3,4}.
  EXPECT_TRUE(ClosedNeighborhoodIncluded(g, 4, 1));
  EXPECT_FALSE(ClosedNeighborhoodIncluded(g, 1, 4));
}

TEST(Dominates, StrictDomination) {
  Graph g = MakeFixture();
  EXPECT_TRUE(Dominates(g, 1, 4));   // 1 dominates the pendant
  EXPECT_FALSE(Dominates(g, 4, 1));
}

TEST(Dominates, MutualBreaksTiesById) {
  Graph g = MakeFixture();
  EXPECT_TRUE(Dominates(g, 2, 3));   // same neighborhoods, 2 < 3
  EXPECT_FALSE(Dominates(g, 3, 2));
}

TEST(Dominates, ImpliesDegreeOrder) {
  // Property: v <= u implies deg(v) <= deg(u).
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = graph::MakeErdosRenyi(50, 0.12, seed);
    for (auto [u, v] : AllDominationPairs(g)) {
      EXPECT_LE(g.Degree(v), g.Degree(u))
          << "dominator " << u << " dominated " << v;
    }
  }
}

TEST(Dominates, Antisymmetric) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = graph::MakeErdosRenyi(40, 0.15, seed);
    for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
      for (graph::VertexId v = 0; v < g.NumVertices(); ++v) {
        if (u == v) continue;
        EXPECT_FALSE(Dominates(g, u, v) && Dominates(g, v, u))
            << u << " and " << v << " dominate each other";
      }
    }
  }
}

TEST(Dominates, TransitiveOnRandomGraphs) {
  // The vicinal preorder is transitive; with id tie-breaks domination stays
  // transitive as an order on vertices.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph g = graph::MakeErdosRenyi(35, 0.2, seed);
    auto pairs = AllDominationPairs(g);
    std::sort(pairs.begin(), pairs.end());
    auto dominated_by = [&](graph::VertexId a, graph::VertexId b) {
      return std::binary_search(pairs.begin(), pairs.end(),
                                std::make_pair(b, a));
    };
    for (auto [u, v] : pairs) {       // v <= u
      for (auto [x, y] : pairs) {     // y <= x
        if (y == u && x != v) {
          // v <= u and u <= x: expect v <= x.
          EXPECT_TRUE(dominated_by(v, x))
              << v << " <= " << u << " <= " << x;
        }
      }
    }
  }
}

TEST(TwoHopNeighbors, ExactSet) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 5}});
  auto two_hop = TwoHopNeighbors(g, 0);
  EXPECT_EQ(two_hop, (std::vector<graph::VertexId>{1, 2, 5}));
  auto of_2 = TwoHopNeighbors(g, 2);
  EXPECT_EQ(of_2, (std::vector<graph::VertexId>{0, 1, 3, 4}));
}

TEST(TwoHopNeighbors, IsolatedVertexHasNone) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  EXPECT_TRUE(TwoHopNeighbors(g, 2).empty());
}

TEST(BruteForceSkyline, FixtureGraph) {
  Graph g = MakeFixture();
  SkylineResult r = BruteForceSkyline(g);
  // 4 is dominated by 1; 3 is dominated by 2 (mutual, id); 2 is dominated
  // by nothing... check against manual reasoning:
  // N(2)={0,1} subset N[0]={0,1,2,3}? yes. N(0)={1,2,3} subset N[2]={0,1,2}?
  // no -> 0 strictly dominates 2. Similarly 3. And 0,1 are mutual?
  // N(0)={1,2,3}, N[1]={0,1,2,3,4}: yes. N(1)={0,2,3,4}, N[0]={0,1,2,3}:
  // 4 not inside -> 1 strictly dominates 0.
  EXPECT_EQ(r.skyline, (std::vector<graph::VertexId>{1}));
}

TEST(BruteForceSkyline, IsolatedVerticesAreSkyline) {
  Graph g = Graph::FromEdges(4, {{0, 1}});
  SkylineResult r = BruteForceSkyline(g);
  // 0 and 1 are a mutual K2 pair: 0 dominates 1. Isolated 2, 3 stay.
  EXPECT_EQ(r.skyline, (std::vector<graph::VertexId>{0, 2, 3}));
}

TEST(BruteForceCandidates, SupersetOfSkyline) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = graph::MakeChungLuPowerLaw(150, 2.4, 6, seed);
    auto r = BruteForceSkyline(g);
    auto c = BruteForceCandidates(g);
    EXPECT_TRUE(std::includes(c.skyline.begin(), c.skyline.end(),
                              r.skyline.begin(), r.skyline.end()))
        << "Lemma 1 violated at seed " << seed;
  }
}

}  // namespace
}  // namespace nsky::core
