// Observability contract of core::Engine: the stats snapshot's cache
// hit/miss ledger is EXACT against a scripted query sequence, the flight
// recorder remembers queries in order (and wraps correctly), the slow-query
// hook captures phase traces, and both JSON documents parse with the
// documented schemas. Everything here is observation-only -- the
// equivalence suite separately pins that none of it changes results.
#include "core/engine_stats.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/flight_recorder.h"
#include "core/solver.h"
#include "core/solver_internal.h"
#include "graph/generators.h"
#include "util/execution_context.h"
#include "util/json_writer.h"
#include "util/metrics.h"

namespace nsky::core {
namespace {

using graph::Graph;

Graph TestGraph() { return graph::MakeChungLuPowerLaw(2000, 2.6, 8, 7); }

SolverOptions Opts(Algorithm algorithm, uint32_t threads = 1) {
  SolverOptions o;
  o.algorithm = algorithm;
  o.threads = threads;
  return o;
}

// The filter-refine serving path consults the filter artifact three times
// per query (filter phase output, membership map, and the candidate-bloom
// accessor re-deriving its input) and the candidate blooms once. The first
// query builds each artifact (a miss), every later query hits.
TEST(EngineStats, FilterRefineCacheLedgerIsExact) {
  Engine engine{TestGraph()};

  engine.Query(Opts(Algorithm::kFilterRefine));
  EngineStats s1 = engine.StatsSnapshot();
  EXPECT_EQ(s1.queries_served, 1u);
  EXPECT_EQ(s1.cold_queries, 1u);
  EXPECT_EQ(s1.warm_queries, 0u);
  EXPECT_EQ(s1.cache.filter.misses, 1u);
  EXPECT_EQ(s1.cache.filter.hits, 2u);
  ASSERT_EQ(s1.cache.candidate_blooms.size(), 1u);
  const PreparedGraph::ArtifactStats& blooms1 =
      s1.cache.candidate_blooms.begin()->second;
  EXPECT_EQ(blooms1.misses, 1u);
  EXPECT_EQ(blooms1.hits, 0u);
  // Nothing the filter-refine path does not use was built.
  EXPECT_EQ(s1.cache.two_hop.misses, 0u);
  EXPECT_EQ(s1.cache.two_hop.hits, 0u);
  EXPECT_TRUE(s1.cache.full_blooms.empty());

  engine.Query(Opts(Algorithm::kFilterRefine));
  engine.Query(Opts(Algorithm::kFilterRefine));
  EngineStats s3 = engine.StatsSnapshot();
  EXPECT_EQ(s3.queries_served, 3u);
  EXPECT_EQ(s3.cold_queries, 1u);
  EXPECT_EQ(s3.warm_queries, 2u);
  EXPECT_EQ(s3.cache.filter.misses, 1u);
  EXPECT_EQ(s3.cache.filter.hits, 8u);  // 2 on the cold query, 3 per warm one
  const PreparedGraph::ArtifactStats& blooms3 =
      s3.cache.candidate_blooms.begin()->second;
  EXPECT_EQ(blooms3.misses, 1u);
  EXPECT_EQ(blooms3.hits, 2u);
}

TEST(EngineStats, TwoHopCacheLedgerIsExact) {
  Engine engine{TestGraph()};

  engine.Query(Opts(Algorithm::kBase2Hop));
  EngineStats s1 = engine.StatsSnapshot();
  EXPECT_EQ(s1.cold_queries, 1u);
  EXPECT_EQ(s1.cache.two_hop.misses, 1u);
  EXPECT_EQ(s1.cache.two_hop.hits, 0u);
  ASSERT_EQ(s1.cache.full_blooms.size(), 1u);
  EXPECT_EQ(s1.cache.full_blooms.begin()->second.misses, 1u);

  engine.Query(Opts(Algorithm::kBase2Hop));
  EngineStats s2 = engine.StatsSnapshot();
  EXPECT_EQ(s2.warm_queries, 1u);
  EXPECT_EQ(s2.cache.two_hop.misses, 1u);
  EXPECT_EQ(s2.cache.two_hop.hits, 1u);
  EXPECT_EQ(s2.cache.full_blooms.begin()->second.hits, 1u);
  // Build time was measured for each built artifact.
  EXPECT_GT(s2.artifact_builds, 0u);
}

TEST(EngineStats, WorkspaceAndLatencyLedgers) {
  Engine engine{TestGraph()};
  engine.Query(Opts(Algorithm::kFilterRefine, 1));
  engine.Query(Opts(Algorithm::kFilterRefine, 2));
  engine.Query(Opts(Algorithm::kBase2Hop, 2));
  engine.Query(Opts(Algorithm::kBaseSky, 1));

  EngineStats s = engine.StatsSnapshot();
  // One pooled workspace per resolved thread count, each with a live
  // allocation ledger.
  ASSERT_EQ(s.workspaces.size(), 2u);
  EXPECT_EQ(s.workspaces[0].threads, 1u);
  EXPECT_EQ(s.workspaces[1].threads, 2u);
  for (const EngineStats::WorkspaceStats& ws : s.workspaces) {
    EXPECT_GT(ws.allocation_events, 0u);
    EXPECT_GT(ws.allocated_bytes, 0u);
  }

  // Latency histograms in Algorithm enum order; never-queried algorithms
  // (cset here) are omitted.
  ASSERT_EQ(s.latency.size(), 3u);
  EXPECT_EQ(s.latency[0].algorithm, "filter-refine");
  EXPECT_EQ(s.latency[0].latency_us.count, 2u);
  EXPECT_EQ(s.latency[1].algorithm, "base");
  EXPECT_EQ(s.latency[1].latency_us.count, 1u);
  EXPECT_EQ(s.latency[2].algorithm, "2hop");
  EXPECT_EQ(s.latency[2].latency_us.count, 1u);
}

// A degraded query's latency is charged to the algorithm that ran
// (filter-refine), and the recorder keeps the requested algorithm in
// degraded_from.
TEST(EngineStats, DegradedQueryAttribution) {
  Graph g = TestGraph();
  SolverOptions options = Opts(Algorithm::kBase2Hop);
  Engine engine{Graph(g)};
  SkylineResult result;
  util::ExecutionContext ctx;
  // Just under what 2hop needs: it must degrade to filter-refine.
  ctx.set_byte_budget(internal::EstimateBase2HopBytes(g, options) - 1);
  util::Status status = engine.QueryInto(options, ctx, &result);
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_EQ(result.stats.degraded_from, "2hop");

  EngineStats s = engine.StatsSnapshot();
  ASSERT_EQ(s.latency.size(), 1u);
  EXPECT_EQ(s.latency[0].algorithm, "filter-refine");
  EXPECT_EQ(s.latency[0].latency_us.count, 1u);

  std::vector<QueryRecord> recent = engine.recorder().Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].algorithm, Algorithm::kFilterRefine);
  EXPECT_EQ(recent[0].degraded_from,
            static_cast<int8_t>(Algorithm::kBase2Hop));
}

TEST(EngineStats, MetricsDisabledSkipsLatencyButKeepsLedgers) {
  Engine engine{TestGraph()};
  util::metrics::SetEnabled(false);
  engine.Query(Opts(Algorithm::kFilterRefine));
  util::metrics::SetEnabled(true);

  EngineStats s = engine.StatsSnapshot();
  // The cache ledger and query counters are engine bookkeeping -- always
  // on; only the Histogram::Observe path honors the global switch.
  EXPECT_EQ(s.queries_served, 1u);
  EXPECT_EQ(s.cache.filter.misses, 1u);
  EXPECT_TRUE(s.latency.empty());
}

TEST(EngineStats, JsonDocumentParsesWithSchema) {
  Engine engine{TestGraph()};
  engine.Query(Opts(Algorithm::kFilterRefine, 2));
  engine.Query(Opts(Algorithm::kFilterRefine, 2));

  std::string error;
  auto v = util::JsonParse(engine.StatsJson(), &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->Find("schema")->str, "nsky.engine_stats.v1");
  EXPECT_EQ(v->Find("queries_served")->number, 2);
  EXPECT_EQ(v->Find("warm_queries")->number, 1);
  EXPECT_EQ(v->Find("cold_queries")->number, 1);
  const util::JsonValue* filter = v->Find("cache")->Find("filter");
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->Find("misses")->number, 1);
  EXPECT_EQ(filter->Find("hits")->number, 5);
  const util::JsonValue* latency =
      v->Find("latency_us")->Find("filter-refine");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Find("count")->number, 2);
  ASSERT_NE(latency->Find("p50"), nullptr);
  ASSERT_NE(latency->Find("p99"), nullptr);
  ASSERT_FALSE(v->Find("workspaces")->array.empty());
}

TEST(EngineStats, PrometheusExportLintsClean) {
  Engine engine{TestGraph()};
  engine.Query(Opts(Algorithm::kFilterRefine));
  std::string text = EngineStatsToPrometheus(engine.StatsSnapshot());
  EXPECT_NE(text.find("# TYPE nsky_engine_queries_served counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("nsky_engine_queries_served 1\n"), std::string::npos);
  EXPECT_NE(text.find("nsky_engine_artifact_misses{artifact=\"filter\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("algo=\"filter-refine\""), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  // No unsanitized characters leaked into series names.
  EXPECT_EQ(text.find("nsky."), std::string::npos);
}

// --- Flight recorder -------------------------------------------------------

QueryRecord MakeRecord(uint64_t duration) {
  QueryRecord r;
  r.algorithm = Algorithm::kBaseSky;
  r.threads = 2;
  r.warm = true;
  r.duration_us = duration;
  r.skyline_size = duration + 1;
  r.aux_peak_bytes = duration * 10;
  return r;
}

TEST(FlightRecorder, RecentReturnsOldestFirstAndWraps) {
  FlightRecorder rec(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    uint64_t seq = rec.Record(MakeRecord(i));
    EXPECT_EQ(seq, i);
  }
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.capacity(), 4u);

  std::vector<QueryRecord> recent = rec.Recent();
  ASSERT_EQ(recent.size(), 4u);  // ring wrapped: only the last 4 survive
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].seq, 7 + i);
    EXPECT_EQ(recent[i].duration_us, 7 + i);
    EXPECT_EQ(recent[i].skyline_size, 8 + i);
  }

  std::vector<QueryRecord> last2 = rec.Recent(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0].seq, 9u);
  EXPECT_EQ(last2[1].seq, 10u);
}

TEST(FlightRecorder, JsonDocumentParsesWithSchema) {
  FlightRecorder rec(8);
  rec.Record(MakeRecord(5));
  rec.Record(MakeRecord(6));

  std::string error;
  auto v = util::JsonParse(rec.ToJson(), &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->Find("schema")->str, "nsky.queries.v1");
  EXPECT_EQ(v->Find("capacity")->number, 8);
  EXPECT_EQ(v->Find("total")->number, 2);
  const util::JsonValue* records = v->Find("records");
  ASSERT_EQ(records->array.size(), 2u);
  EXPECT_EQ(records->array[0].Find("seq")->number, 1);
  EXPECT_EQ(records->array[0].Find("algorithm")->str, "base");
  EXPECT_EQ(records->array[0].Find("duration_us")->number, 5);
  EXPECT_EQ(records->array[0].Find("status")->str, "OK");
  EXPECT_TRUE(v->Find("slow")->array.empty());
}

TEST(FlightRecorder, EngineRecordsEveryQueryInOrder) {
  Engine engine{TestGraph()};
  engine.Query(Opts(Algorithm::kFilterRefine, 2));
  engine.Query(Opts(Algorithm::kBase2Hop, 1));

  std::vector<QueryRecord> recent = engine.recorder().Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].seq, 1u);
  EXPECT_EQ(recent[0].algorithm, Algorithm::kFilterRefine);
  EXPECT_EQ(recent[0].threads, 2u);
  EXPECT_FALSE(recent[0].warm);  // first query builds artifacts
  EXPECT_GT(recent[0].skyline_size, 0u);
  EXPECT_GT(recent[0].aux_peak_bytes, 0u);
  EXPECT_EQ(recent[0].status, util::StatusCode::kOk);
  EXPECT_EQ(recent[0].degraded_from, -1);
  EXPECT_EQ(recent[1].seq, 2u);
  EXPECT_EQ(recent[1].algorithm, Algorithm::kBase2Hop);
  EXPECT_FALSE(recent[1].warm);  // 2hop builds its own artifacts

  // Record matches the result the caller saw.
  SkylineResult again = engine.Query(Opts(Algorithm::kFilterRefine, 2));
  std::vector<QueryRecord> r3 = engine.recorder().Recent();
  ASSERT_EQ(r3.size(), 3u);
  EXPECT_TRUE(r3[2].warm);
  EXPECT_EQ(r3[2].skyline_size, again.skyline.size());
  EXPECT_EQ(r3[2].aux_peak_bytes, again.stats.aux_peak_bytes);
}

TEST(FlightRecorder, SlowQueryHookCapturesPhaseTrace) {
  Engine engine{TestGraph()};
  EXPECT_EQ(engine.slow_query_threshold_us(), 0u);  // env var not set
  engine.set_slow_query_threshold_us(1);            // everything is "slow"
  engine.Query(Opts(Algorithm::kFilterRefine));

  std::vector<FlightRecorder::SlowQuery> slow =
      engine.recorder().SlowQueries();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].threshold_us, 1u);
  EXPECT_EQ(slow[0].record.seq, 1u);
  EXPECT_GE(slow[0].record.duration_us, 1u);
  ASSERT_FALSE(slow[0].spans.empty());
  for (const FlightRecorder::SpanSummary& span : slow[0].spans) {
    EXPECT_FALSE(span.name.empty());
    EXPECT_GE(span.dur_us, span.self_us);
  }

  // A fast threshold stops capturing once queries beat it.
  engine.set_slow_query_threshold_us(60u * 1000 * 1000);
  engine.Query(Opts(Algorithm::kFilterRefine));
  EXPECT_EQ(engine.recorder().SlowQueries().size(), 1u);
}

TEST(FlightRecorder, SlowLogIsBounded) {
  FlightRecorder rec(4);
  for (uint64_t i = 1; i <= FlightRecorder::kMaxSlowQueries + 3; ++i) {
    QueryRecord r = MakeRecord(i);
    r.seq = rec.Record(r);
    rec.RecordSlow(r, 1, {});
  }
  std::vector<FlightRecorder::SlowQuery> slow = rec.SlowQueries();
  ASSERT_EQ(slow.size(), FlightRecorder::kMaxSlowQueries);
  // Oldest entries were evicted; the newest survive in order.
  EXPECT_EQ(slow.front().record.duration_us, 4u);
  EXPECT_EQ(slow.back().record.duration_us,
            FlightRecorder::kMaxSlowQueries + 3);
}

}  // namespace
}  // namespace nsky::core
