#include <gtest/gtest.h>

#include "core/domination.h"
#include "core/solver.h"
#include "graph/generators.h"

namespace nsky::core {
namespace {

using graph::Graph;

// The historical BaseSky(g) wrapper is gone; the suite drives the same
// algorithm through the unified Solve() entry point.
SkylineResult BaseSky(const Graph& g) {
  return Solve(g, SolverOptions{.algorithm = Algorithm::kBaseSky});
}

TEST(BaseSky, EmptyGraph) {
  SkylineResult r = BaseSky(Graph::FromEdges(0, {}));
  EXPECT_TRUE(r.skyline.empty());
}

TEST(BaseSky, SingleVertex) {
  SkylineResult r = BaseSky(Graph::FromEdges(1, {}));
  EXPECT_EQ(r.skyline, (std::vector<graph::VertexId>{0}));
}

TEST(BaseSky, K2MutualPair) {
  SkylineResult r = BaseSky(Graph::FromEdges(2, {{0, 1}}));
  // Mutual inclusion; the smaller id survives.
  EXPECT_EQ(r.skyline, (std::vector<graph::VertexId>{0}));
  EXPECT_EQ(r.dominator[1], 0u);
}

TEST(BaseSky, StarCenterSurvives) {
  SkylineResult r = BaseSky(graph::MakeStar(8));
  EXPECT_EQ(r.skyline, (std::vector<graph::VertexId>{0}));
  for (graph::VertexId leaf = 1; leaf < 8; ++leaf) {
    EXPECT_NE(r.dominator[leaf], leaf);
  }
}

TEST(BaseSky, DominatorArrayConsistentWithSkyline) {
  Graph g = graph::MakeChungLuPowerLaw(300, 2.3, 6, 17);
  SkylineResult r = BaseSky(g);
  for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
    bool in_skyline = std::binary_search(r.skyline.begin(), r.skyline.end(), u);
    EXPECT_EQ(in_skyline, r.dominator[u] == u);
  }
}

TEST(BaseSky, RecordedDominatorsActuallyDominate) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::MakeErdosRenyi(100, 0.06, seed);
    SkylineResult r = BaseSky(g);
    for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
      if (r.dominator[u] != u) {
        EXPECT_TRUE(Dominates(g, r.dominator[u], u))
            << r.dominator[u] << " recorded as dominator of " << u;
      }
    }
  }
}

TEST(BaseSky, MatchesBruteForce) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = graph::MakeErdosRenyi(120, 0.05, seed);
    EXPECT_EQ(BaseSky(g).skyline, BruteForceSkyline(g).skyline)
        << "seed " << seed;
  }
}

TEST(BaseSky, StatsPopulated) {
  Graph g = graph::MakeErdosRenyi(200, 0.05, 1);
  SkylineResult r = BaseSky(g);
  EXPECT_GT(r.stats.pairs_examined, 0u);
  EXPECT_GT(r.stats.aux_peak_bytes, 0u);
  EXPECT_GE(r.stats.seconds, 0.0);
}

TEST(BaseSky, IsolatedVerticesSurvive) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}});
  SkylineResult r = BaseSky(g);
  for (graph::VertexId u : {3u, 4u, 5u}) {
    EXPECT_TRUE(std::binary_search(r.skyline.begin(), r.skyline.end(), u));
  }
}

}  // namespace
}  // namespace nsky::core
