// Fig. 2 of the paper gives closed forms for |R| and |C| on special graphs:
// clique |R| = |C| = 1; complete binary tree R = C = internal vertices;
// cycle |R| = |C| = n; path |R| = |C| = n - 2. This suite pins those down.
#include <gtest/gtest.h>

#include "core/filter_phase.h"
#include "core/solver.h"
#include "graph/generators.h"

namespace nsky::core {
namespace {

class CliqueSizes : public ::testing::TestWithParam<graph::VertexId> {};

TEST_P(CliqueSizes, SkylineAndCandidatesAreSingletons) {
  graph::Graph g = graph::MakeClique(GetParam());
  EXPECT_EQ(Solve(g).skyline.size(), 1u);
  EXPECT_EQ(FilterPhase(g).skyline.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Fig2a, CliqueSizes,
                         ::testing::Values(2, 3, 5, 8, 16, 33));

class CycleSizes : public ::testing::TestWithParam<graph::VertexId> {};

TEST_P(CycleSizes, EverythingSurvives) {
  // For n >= 5 no cycle vertex's neighborhood is contained in another's.
  graph::Graph g = graph::MakeCycle(GetParam());
  EXPECT_EQ(Solve(g).skyline.size(), g.NumVertices());
  EXPECT_EQ(FilterPhase(g).skyline.size(), g.NumVertices());
}

INSTANTIATE_TEST_SUITE_P(Fig2c, CycleSizes, ::testing::Values(5, 6, 9, 20, 101));

class PathSizes : public ::testing::TestWithParam<graph::VertexId> {};

TEST_P(PathSizes, EndpointsAreDominated) {
  // For n >= 4 exactly the two endpoints are dominated: |R| = n - 2.
  graph::Graph g = graph::MakePath(GetParam());
  SkylineResult r = Solve(g);
  EXPECT_EQ(r.skyline.size(), g.NumVertices() - 2);
  EXPECT_NE(r.dominator[0], 0u);
  EXPECT_NE(r.dominator[g.NumVertices() - 1], g.NumVertices() - 1);
  EXPECT_EQ(FilterPhase(g).skyline.size(), g.NumVertices() - 2);
}

INSTANTIATE_TEST_SUITE_P(Fig2d, PathSizes, ::testing::Values(4, 5, 9, 33, 100));

class TreeLevels : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TreeLevels, InternalVerticesSurvive) {
  // Complete binary tree: leaves are dominated (pendant rule), internal
  // vertices survive. Internal count = 2^(levels-1) - 1.
  uint32_t levels = GetParam();
  graph::Graph g = graph::MakeCompleteBinaryTree(levels);
  SkylineResult r = Solve(g);
  graph::VertexId internal = (graph::VertexId{1} << (levels - 1)) - 1;
  EXPECT_EQ(r.skyline.size(), internal);
  for (graph::VertexId u : r.skyline) {
    EXPECT_GT(g.Degree(u), 1u) << "leaf " << u << " in skyline";
  }
  EXPECT_EQ(FilterPhase(g).skyline.size(), internal);
}

INSTANTIATE_TEST_SUITE_P(Fig2b, TreeLevels, ::testing::Values(3, 4, 5, 7, 10));

TEST(SpecialGraphs, SmallCyclesAreFullyMutual) {
  // Triangle = K3: one survivor. C4: opposite vertices have equal
  // neighborhoods, so ids break ties and two survive.
  EXPECT_EQ(Solve(graph::MakeCycle(3)).skyline.size(), 1u);
  EXPECT_EQ(Solve(graph::MakeCycle(4)).skyline.size(), 2u);
}

TEST(SpecialGraphs, ShortPaths) {
  // P2 = K2 -> 1 survivor; P3: the middle dominates both endpoints.
  EXPECT_EQ(Solve(graph::MakePath(2)).skyline.size(), 1u);
  EXPECT_EQ(Solve(graph::MakePath(3)).skyline.size(), 1u);
}

TEST(SpecialGraphs, StarIsDominatedByCenter) {
  graph::Graph g = graph::MakeStar(12);
  SkylineResult r = Solve(g);
  EXPECT_EQ(r.skyline, (std::vector<graph::VertexId>{0}));
}

TEST(SpecialGraphs, SocialGraphSkylineMuchSmallerThanErdosRenyi) {
  // The observation behind the whole approach: on skewed graphs with real
  // low-degree structure (pendants/triads/duplication) |R| << n, while on
  // ER graphs |R| stays close to n (Fig. 6).
  graph::Graph social = graph::MakeSocialGraph(5000, 6.0, 0.6, 0.4, 42, 0.3);
  graph::Graph er = graph::MakeErdosRenyi(5000, 7.0 / 4999.0 /*same avg*/, 42);
  double social_ratio =
      static_cast<double>(Solve(social).skyline.size()) /
      social.NumVertices();
  double er_ratio = static_cast<double>(Solve(er).skyline.size()) /
                    er.NumVertices();
  EXPECT_LT(social_ratio, 0.6);
  EXPECT_GT(er_ratio, 0.8);
}

}  // namespace
}  // namespace nsky::core
