#include "core/filter_phase.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/domination.h"
#include "graph/generators.h"

namespace nsky::core {
namespace {

using graph::Graph;

TEST(FilterPhase, MatchesBruteForceCandidates) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = graph::MakeErdosRenyi(100, 0.08, seed);
    EXPECT_EQ(FilterPhase(g).skyline, BruteForceCandidates(g).skyline)
        << "seed " << seed;
  }
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::MakeChungLuPowerLaw(250, 2.3, 6, seed);
    EXPECT_EQ(FilterPhase(g).skyline, BruteForceCandidates(g).skyline)
        << "powerlaw seed " << seed;
  }
}

TEST(FilterPhase, Lemma1SkylineSubsetOfCandidates) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = graph::MakeBarabasiAlbert(200, 3, seed);
    auto candidates = FilterPhase(g).skyline;
    auto skyline = BruteForceSkyline(g).skyline;
    EXPECT_TRUE(std::includes(candidates.begin(), candidates.end(),
                              skyline.begin(), skyline.end()))
        << "seed " << seed;
  }
}

TEST(FilterPhase, CliqueKeepsOnlySmallestId) {
  // In a clique all closed neighborhoods are equal: vertex 0 dominates all.
  SkylineResult r = FilterPhase(graph::MakeClique(9));
  EXPECT_EQ(r.skyline, (std::vector<graph::VertexId>{0}));
  EXPECT_EQ(r.stats.candidate_count, 1u);
}

TEST(FilterPhase, PendantsAreFiltered) {
  // Every pendant's closed neighborhood is inside its neighbor's.
  Graph g = graph::MakeStar(10);
  SkylineResult r = FilterPhase(g);
  EXPECT_EQ(r.skyline, (std::vector<graph::VertexId>{0}));
}

TEST(FilterPhase, CycleKeepsEverything) {
  // On a cycle of length >= 5, no closed neighborhood contains another.
  SkylineResult r = FilterPhase(graph::MakeCycle(8));
  EXPECT_EQ(r.skyline.size(), 8u);
}

TEST(FilterPhase, CandidateCountMatchesSkylineField) {
  Graph g = graph::MakeErdosRenyi(150, 0.05, 9);
  SkylineResult r = FilterPhase(g);
  EXPECT_EQ(r.stats.candidate_count, r.skyline.size());
}

TEST(FilterPhase, RecordedDominatorsEdgeConstrainedDominate) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::MakeChungLuPowerLaw(200, 2.5, 7, seed);
    SkylineResult r = FilterPhase(g);
    for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
      if (r.dominator[u] != u) {
        EXPECT_TRUE(EdgeConstrainedDominates(g, r.dominator[u], u));
        EXPECT_TRUE(g.HasEdge(u, r.dominator[u]));
      }
    }
  }
}

TEST(FilterPhase, IsolatedVerticesAreCandidates) {
  Graph g = Graph::FromEdges(5, {{0, 1}});
  SkylineResult r = FilterPhase(g);
  for (graph::VertexId u : {2u, 3u, 4u}) {
    EXPECT_TRUE(std::binary_search(r.skyline.begin(), r.skyline.end(), u));
  }
}

TEST(FilterPhase, DegreePruneCounterMoves) {
  Graph g = graph::MakeStar(20);
  SkylineResult r = FilterPhase(g);
  // The center examines 19 leaves, all with smaller degree.
  EXPECT_GT(r.stats.degree_prunes, 0u);
}

}  // namespace
}  // namespace nsky::core
