// Graceful degradation under byte budgets (core/solver.h): a kBase2Hop
// request that cannot fit its materialized 2-hop lists falls back
// deterministically to kFilterRefine with stats.degraded_from = "2hop" and
// the exact skyline; a budget too small even for the fallback returns
// kResourceExhausted.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/nsky.h"
#include "core/solver_internal.h"
#include "graph/generators.h"
#include "util/execution_context.h"

namespace nsky::core {
namespace {

using util::ExecutionContext;
using util::StatusCode;

graph::Graph TestGraph() { return graph::MakeChungLuPowerLaw(400, 2.3, 7, 13); }

TEST(EstimateBase2HopBytes, GrowsWithTwoHopVolume) {
  SolverOptions options;
  options.use_bloom = false;
  graph::Graph sparse = graph::MakeErdosRenyi(200, 0.02, 3);
  graph::Graph dense = graph::MakeErdosRenyi(200, 0.30, 3);
  EXPECT_LT(internal::EstimateBase2HopBytes(sparse, options),
            internal::EstimateBase2HopBytes(dense, options));
}

TEST(EstimateBase2HopBytes, BloomAddsToTheEstimate) {
  graph::Graph g = TestGraph();
  SolverOptions with_bloom;
  SolverOptions without_bloom;
  without_bloom.use_bloom = false;
  EXPECT_GT(internal::EstimateBase2HopBytes(g, with_bloom),
            internal::EstimateBase2HopBytes(g, without_bloom));
}

TEST(Degradation, Base2HopUnderBudgetFallsBackToFilterRefine) {
  graph::Graph g = TestGraph();
  SolverOptions options;
  options.algorithm = Algorithm::kBase2Hop;
  const SkylineResult oracle = Solve(g, SolverOptions{});  // filter-refine
  // Below the 2-hop estimate but plenty for filter-refine's structures.
  ExecutionContext ctx;
  ctx.set_byte_budget(internal::EstimateBase2HopBytes(g, options) - 1);
  for (uint32_t threads : {1u, 2u, 8u}) {
    options.threads = threads;
    util::Result<SkylineResult> run = SolveOrError(g, options, ctx);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.value().stats.degraded_from, "2hop") << threads;
    EXPECT_EQ(run.value().skyline, oracle.skyline) << threads;
    EXPECT_EQ(run.value().dominator, oracle.dominator) << threads;
  }
}

TEST(Degradation, GenerousBudgetDoesNotDegrade) {
  graph::Graph g = TestGraph();
  SolverOptions options;
  options.algorithm = Algorithm::kBase2Hop;
  ExecutionContext ctx;
  ctx.set_byte_budget(internal::EstimateBase2HopBytes(g, options) * 2);
  util::Result<SkylineResult> run = SolveOrError(g, options, ctx);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run.value().stats.degraded_from.empty());
  EXPECT_EQ(run.value().skyline, Solve(g, SolverOptions{}).skyline);
}

TEST(Degradation, TinyBudgetExhaustsEvenTheFallback) {
  graph::Graph g = TestGraph();
  SolverOptions options;
  options.algorithm = Algorithm::kBase2Hop;
  ExecutionContext ctx;
  ctx.set_byte_budget(16);  // not even the dominator array fits
  for (uint32_t threads : {1u, 2u, 8u}) {
    options.threads = threads;
    SkylineResult r;
    util::Status s = SolveInto(g, options, ctx, &r);
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << threads;
    EXPECT_TRUE(r.skyline.empty());
    EXPECT_TRUE(r.dominator.empty());
    EXPECT_EQ(r.stats.degraded_from, "2hop");
  }
}

TEST(Degradation, TinyBudgetExhaustsEveryAlgorithm) {
  graph::Graph g = TestGraph();
  ExecutionContext ctx;
  ctx.set_byte_budget(16);
  for (Algorithm algorithm :
       {Algorithm::kFilterRefine, Algorithm::kBaseSky, Algorithm::kBaseCSet}) {
    SolverOptions options;
    options.algorithm = algorithm;
    SkylineResult r;
    util::Status s = SolveInto(g, options, ctx, &r);
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted)
        << AlgorithmName(algorithm);
    EXPECT_TRUE(r.stats.degraded_from.empty()) << AlgorithmName(algorithm);
  }
}

TEST(Degradation, FilterRefineSkipsBloomUnderTightBudget) {
  // A budget that fits filter-refine's mandatory structures but not its
  // bloom block: the solver drops the bloom pre-test, not the run. The
  // skyline is exact either way (the bloom is a pure pre-filter).
  graph::Graph g = TestGraph();
  SolverOptions options;  // kFilterRefine
  const SkylineResult oracle = Solve(g, options);
  // The ledger's peak without bloom is a safe "mandatory" proxy.
  SolverOptions no_bloom = options;
  no_bloom.use_bloom = false;
  const uint64_t mandatory = Solve(g, no_bloom).stats.aux_peak_bytes;
  ExecutionContext ctx;
  ctx.set_byte_budget(mandatory + 64);  // headroom far below the bloom size
  util::Result<SkylineResult> run = SolveOrError(g, options, ctx);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().skyline, oracle.skyline);
  EXPECT_EQ(run.value().stats.bloom_prunes, 0u);
  EXPECT_TRUE(run.value().stats.degraded_from.empty());
}

TEST(Degradation, DegradationDecisionIsThreadCountInvariant) {
  // The fall-back decision is made from a deterministic upfront estimate,
  // so the same budget always picks the same path regardless of threads.
  graph::Graph g = TestGraph();
  SolverOptions options;
  options.algorithm = Algorithm::kBase2Hop;
  const uint64_t estimate = internal::EstimateBase2HopBytes(g, options);
  for (uint64_t budget : {estimate - 1, estimate, estimate + 1}) {
    std::vector<std::string> paths;
    for (uint32_t threads : {1u, 2u, 8u}) {
      options.threads = threads;
      ExecutionContext ctx;
      ctx.set_byte_budget(budget);
      util::Result<SkylineResult> run = SolveOrError(g, options, ctx);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      paths.push_back(run.value().stats.degraded_from);
    }
    EXPECT_EQ(paths[0], paths[1]) << "budget " << budget;
    EXPECT_EQ(paths[0], paths[2]) << "budget " << budget;
  }
}

}  // namespace
}  // namespace nsky::core
