// Serving-engine contract (core/engine.h): a warm Engine::Query() is
// bit-identical to a cold Solve() for every algorithm and thread count, no
// matter how many queries -- of any mix of shapes -- the engine served
// before, whether earlier queries were cancelled mid-run, and whether the
// pooled scratch was poisoned in between. Plus: artifact sharing across the
// clique / centrality / setjoin consumers, invalidation via DynamicSkyline,
// and the batch API.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "centrality/betweenness.h"
#include "centrality/greedy.h"
#include "clique/nei_sky_mc.h"
#include "core/nsky.h"
#include "core/solver_internal.h"
#include "graph/generators.h"
#include "setjoin/skyline_via_join.h"
#include "testing/fixtures.h"
#include "util/execution_context.h"

namespace nsky::core {
namespace {

using graph::Graph;
using nsky::testing::GraphCase;
using nsky::testing::GraphCaseName;
using nsky::testing::SmallGraphCases;

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kFilterRefine, Algorithm::kBaseSky, Algorithm::kBaseCSet,
    Algorithm::kBase2Hop};

constexpr uint32_t kThreadCounts[] = {1, 2, 8};

// Everything except stats.threads (configuration) and stats.seconds (wall
// time) must match -- including the aux_peak_bytes ledger, which is charged
// from logical sizes precisely so warm runs can reproduce it.
void ExpectSameResult(const SkylineResult& cold, const SkylineResult& warm,
                      Algorithm algorithm, uint32_t threads) {
  SCOPED_TRACE(::testing::Message() << AlgorithmName(algorithm) << " threads "
                                    << threads);
  EXPECT_EQ(cold.skyline, warm.skyline);
  EXPECT_EQ(cold.dominator, warm.dominator);
  EXPECT_EQ(cold.stats.candidate_count, warm.stats.candidate_count);
  EXPECT_EQ(cold.stats.pairs_examined, warm.stats.pairs_examined);
  EXPECT_EQ(cold.stats.bloom_prunes, warm.stats.bloom_prunes);
  EXPECT_EQ(cold.stats.degree_prunes, warm.stats.degree_prunes);
  EXPECT_EQ(cold.stats.inclusion_tests, warm.stats.inclusion_tests);
  EXPECT_EQ(cold.stats.nbr_elements_scanned, warm.stats.nbr_elements_scanned);
  EXPECT_EQ(cold.stats.aux_peak_bytes, warm.stats.aux_peak_bytes);
  EXPECT_EQ(cold.stats.degraded_from, warm.stats.degraded_from);
}

class EngineEquivalence : public ::testing::TestWithParam<GraphCase> {};

TEST_P(EngineEquivalence, RepeatedMixedQueriesMatchFreshSolve) {
  // One engine serves 3 rounds of every (algorithm, thread count) pair; the
  // artifact caches go from cold to warm along the way, and every single
  // answer must match a dedicated cold Solve().
  Graph g = GetParam().make(7);
  Engine engine{Graph(g)};
  for (int round = 0; round < 3; ++round) {
    for (Algorithm algorithm : kAllAlgorithms) {
      for (uint32_t threads : kThreadCounts) {
        SolverOptions options;
        options.algorithm = algorithm;
        options.threads = threads;
        SkylineResult cold = Solve(g, options);
        SkylineResult warm = engine.Query(options);
        EXPECT_EQ(warm.stats.threads, threads);
        ExpectSameResult(cold, warm, algorithm, threads);
      }
    }
  }
  EXPECT_EQ(engine.queries_served(),
            3u * std::size(kAllAlgorithms) * std::size(kThreadCounts));
}

TEST_P(EngineEquivalence, PoisonedScratchDoesNotLeakBetweenQueries) {
  // Garbage left in the pooled buffers by a previous query must never be
  // read: fill everything with 0xAB between queries and re-compare.
  Graph g = GetParam().make(3);
  Engine engine{Graph(g)};
  for (Algorithm algorithm : kAllAlgorithms) {
    SolverOptions options;
    options.algorithm = algorithm;
    options.threads = 2;
    SkylineResult cold = Solve(g, options);
    ExpectSameResult(cold, engine.Query(options), algorithm, 2);
    engine.PoisonScratchForTesting();
    ExpectSameResult(cold, engine.Query(options), algorithm, 2);
  }
}

TEST_P(EngineEquivalence, CancelledQueryLeavesEngineServiceable) {
  // A query killed by an immediate deadline abandons scratch mid-write; the
  // next (unlimited) query must still be bit-identical to a cold solve.
  Graph g = GetParam().make(5);
  Engine engine{Graph(g)};
  for (Algorithm algorithm : kAllAlgorithms) {
    SolverOptions options;
    options.algorithm = algorithm;
    options.threads = 2;
    util::ExecutionContext expired;
    expired.set_timeout_ms(0);
    SkylineResult scratch;
    util::Status status = engine.QueryInto(options, expired, &scratch);
    if (!status.ok()) {
      // Failed queries must not leave partial output behind.
      EXPECT_TRUE(scratch.skyline.empty());
    }
    ExpectSameResult(Solve(g, options), engine.Query(options), algorithm, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(AllGraphFamilies, EngineEquivalence,
                         ::testing::ValuesIn(SmallGraphCases()),
                         GraphCaseName);

TEST(Engine, WarmQueriesAllocateNothing) {
  // The headline serving property: once the engine has served one query of
  // a given shape, identical queries never grow the pooled scratch. (Result
  // reuse via QueryInto keeps the outputs allocation-free too.)
  Graph g = graph::MakeChungLuPowerLaw(400, 2.3, 6, 9);
  Engine engine{std::move(g)};
  SkylineResult result;
  for (Algorithm algorithm : kAllAlgorithms) {
    SolverOptions options;
    options.algorithm = algorithm;
    options.threads = 2;
    // Warm-up: artifact builds plus first-shape scratch growth.
    ASSERT_TRUE(engine
                    .QueryInto(options, util::ExecutionContext::Unlimited(),
                               &result)
                    .ok());
  }
  const uint64_t events = engine.WorkspaceAllocationEvents(2);
  const uint64_t bytes = engine.WorkspaceAllocatedBytes(2);
  for (int round = 0; round < 3; ++round) {
    for (Algorithm algorithm : kAllAlgorithms) {
      SolverOptions options;
      options.algorithm = algorithm;
      options.threads = 2;
      ASSERT_TRUE(engine
                      .QueryInto(options, util::ExecutionContext::Unlimited(),
                                 &result)
                      .ok());
    }
  }
  EXPECT_EQ(engine.WorkspaceAllocationEvents(2), events);
  EXPECT_EQ(engine.WorkspaceAllocatedBytes(2), bytes);
}

TEST(Engine, QueryBatchMatchesIndividualQueries) {
  Graph g = graph::MakeErdosRenyi(150, 0.05, 4);
  Engine engine{Graph(g)};
  std::vector<SolverOptions> batch;
  for (Algorithm algorithm : kAllAlgorithms) {
    SolverOptions options;
    options.algorithm = algorithm;
    batch.push_back(options);
  }
  std::vector<SkylineResult> results = engine.QueryBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectSameResult(Solve(g, batch[i]), results[i], batch[i].algorithm, 1);
  }
}

TEST(Engine, WarmDegradationMatchesCold) {
  // The predictive 2hop degradation consults the byte budget before the
  // artifact cache, so a warm engine degrades exactly when a cold solve
  // would -- even though the cached 2-hop lists already exist.
  Graph g = graph::MakeChungLuPowerLaw(300, 2.2, 7, 2);
  SolverOptions options;
  options.algorithm = Algorithm::kBase2Hop;
  Engine engine{Graph(g)};
  engine.Query(options);  // builds the 2-hop artifacts

  util::ExecutionContext tight;
  tight.set_byte_budget(internal::EstimateBase2HopBytes(g, options) - 1);
  SkylineResult cold;
  ASSERT_TRUE(SolveInto(g, options, tight, &cold).ok());
  EXPECT_EQ(cold.stats.degraded_from, "2hop");
  SkylineResult warm;
  ASSERT_TRUE(engine.QueryInto(options, tight, &warm).ok());
  ExpectSameResult(cold, warm, options.algorithm, 1);
}

TEST(Engine, SkylineCacheIsComputedOnceAcrossConsumers) {
  // The duplicated-solve fix: clique search, greedy closeness and group
  // betweenness on one engine share a single skyline computation.
  Graph g = graph::MakeChungLuPowerLaw(120, 2.4, 5, 6);
  Engine engine{Graph(g)};
  clique::NeiSkyMcResult mc = clique::NeiSkyMC(engine);
  EXPECT_EQ(engine.queries_served(), 1u);

  centrality::GreedyOptions greedy_options;
  greedy_options.use_skyline_pruning = true;
  greedy_options.engine = &engine;
  centrality::GreedyResult gc =
      centrality::GreedyGroupMaximization(engine.graph(), 2, greedy_options);
  centrality::GroupBetweennessResult gb = centrality::NeiSkyGB(engine, 2);
  EXPECT_EQ(engine.queries_served(), 1u);

  // Same answers as the self-solving variants.
  EXPECT_EQ(mc.clique.clique.size(), clique::NeiSkyMC(g).clique.clique.size());
  EXPECT_EQ(gc.group, centrality::NeiSkyGC(g, 2).group);
  EXPECT_EQ(gb.group, centrality::NeiSkyGB(g, 2).group);
}

TEST(Engine, SeededSetJoinMatchesUnseeded) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = graph::MakeChungLuPowerLaw(200, 2.4, 6, seed);
    Engine engine{Graph(g)};
    for (auto algorithm : {setjoin::JoinAlgorithm::kListCrosscutting,
                           setjoin::JoinAlgorithm::kInvertedIndex}) {
      SkylineResult unseeded = setjoin::SkylineViaJoin(g, algorithm);
      SkylineResult seeded = setjoin::SkylineViaJoin(engine, algorithm);
      EXPECT_EQ(unseeded.skyline, seeded.skyline) << "seed " << seed;
      // Every recorded dominator must be a real dominator (the arrays may
      // differ entry-wise: the seeded variant keeps filter dominators).
      for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
        if (seeded.dominator[u] != u) {
          EXPECT_TRUE(Dominates(g, seeded.dominator[u], u))
              << seeded.dominator[u] << " vs " << u << " seed " << seed;
        }
      }
      // Seeding the queries from the filter candidates must shrink (or at
      // worst match) the join's pair volume.
      EXPECT_LE(seeded.stats.pairs_examined, unseeded.stats.pairs_examined);
    }
  }
}

TEST(Engine, InvalidateArtifactsForcesRebuild) {
  Graph g = graph::MakeErdosRenyi(100, 0.08, 3);
  Engine engine{Graph(g)};
  engine.Query();
  const uint64_t builds = engine.prepared().builds();
  EXPECT_GT(builds, 0u);
  engine.Query();  // warm: no new builds
  EXPECT_EQ(engine.prepared().builds(), builds);
  engine.InvalidateArtifacts();
  EXPECT_FALSE(engine.prepared().has_filter());
  SkylineResult rebuilt = engine.Query();
  EXPECT_GT(engine.prepared().builds(), builds);
  ExpectSameResult(Solve(g), rebuilt, Algorithm::kFilterRefine, 1);
}

TEST(Engine, RefreshFromServesTheNewGraph) {
  Graph before = graph::MakeErdosRenyi(80, 0.06, 1);
  Graph after = graph::MakeBarabasiAlbert(120, 3, 2);
  Engine engine{Graph(before)};
  engine.Query();
  engine.RefreshFrom(Graph(after));
  ExpectSameResult(Solve(after), engine.Query(), Algorithm::kFilterRefine, 1);
  EXPECT_EQ(engine.graph().NumVertices(), after.NumVertices());
}

TEST(Engine, DynamicSkylineInvalidationHookKeepsEngineFresh) {
  // The documented wiring: incremental updates refresh the engine's graph
  // snapshot; a bulk batch does the same but arrives as one bulk=true call.
  Graph g = graph::MakeErdosRenyi(60, 0.08, 9);
  DynamicSkyline dyn(g);
  Engine engine{dyn.ToGraph()};
  uint64_t incremental_calls = 0;
  uint64_t bulk_calls = 0;
  dyn.set_invalidation_hook([&](bool bulk) {
    (bulk ? bulk_calls : incremental_calls)++;
    engine.RefreshFrom(dyn.ToGraph());
  });

  // Small batch: applied incrementally, one hook call per applied update.
  std::vector<EdgeUpdate> small;
  for (graph::VertexId u = 0; u < 5; ++u) {
    small.push_back({u, static_cast<graph::VertexId>(u + 30), true});
  }
  size_t applied = dyn.ApplyBatch(small);
  EXPECT_EQ(incremental_calls, applied);
  EXPECT_EQ(bulk_calls, 0u);
  EXPECT_EQ(engine.Query().skyline, dyn.Skyline());

  // Bulk batch: structural apply + one recompute, one bulk hook call.
  std::vector<EdgeUpdate> bulk;
  for (graph::VertexId u = 0; u < DynamicSkyline::kBulkThreshold + 4; ++u) {
    bulk.push_back({u % 50, static_cast<graph::VertexId>(50 + u % 9), true});
  }
  dyn.ApplyBatch(bulk);
  EXPECT_EQ(bulk_calls, 1u);
  EXPECT_EQ(engine.Query().skyline, dyn.Skyline());
}

TEST(DynamicSkylineBatch, NoOpUpdatesAreNotApplied) {
  DynamicSkyline dyn(10);
  ASSERT_TRUE(dyn.AddEdge(0, 1));
  std::vector<EdgeUpdate> updates = {
      {0, 1, true},   // duplicate insert
      {2, 2, true},   // self loop
      {3, 4, false},  // absent delete
      {0, 1, false},  // real delete
      {5, 6, true},   // real insert
  };
  EXPECT_EQ(dyn.ApplyBatch(updates), 2u);
  EXPECT_FALSE(dyn.HasEdge(0, 1));
  EXPECT_TRUE(dyn.HasEdge(5, 6));
}

TEST(DynamicSkylineBatch, BulkBatchMatchesIncrementalReplay) {
  // The two ApplyBatch regimes must converge to the same skyline.
  Graph g = graph::MakeErdosRenyi(70, 0.05, 12);
  std::vector<EdgeUpdate> updates;
  for (graph::VertexId u = 0; u < DynamicSkyline::kBulkThreshold + 8; ++u) {
    updates.push_back({u % 60, static_cast<graph::VertexId>((u * 7 + 3) % 60),
                       u % 3 != 0});
  }
  DynamicSkyline batched(g);
  batched.ApplyBatch(updates);
  DynamicSkyline incremental(g);
  for (const EdgeUpdate& e : updates) {
    if (e.u == e.v) continue;
    if (e.insert) {
      incremental.AddEdge(e.u, e.v);
    } else {
      incremental.RemoveEdge(e.u, e.v);
    }
  }
  EXPECT_EQ(batched.Skyline(), incremental.Skyline());
  EXPECT_EQ(batched.NumEdges(), incremental.NumEdges());
}

// --- Execute(): the unified request/response surface --------------------

TEST(EngineExecute, MatchesLegacyQueryForEveryAlgorithmAndThreadCount) {
  Graph g = graph::MakeErdosRenyi(300, 0.04, 9);
  Engine via_execute{Graph(g)};
  Engine via_query{Graph(g)};
  for (Algorithm algorithm : kAllAlgorithms) {
    for (uint32_t threads : kThreadCounts) {
      SolverOptions options;
      options.algorithm = algorithm;
      options.threads = threads;
      QueryResponse response = via_execute.Execute({.options = options});
      ASSERT_TRUE(response.ok());
      SkylineResult legacy = via_query.Query(options);
      ExpectSameResult(legacy, response.result, algorithm, threads);
    }
  }
}

TEST(EngineExecute, WarmFlagTracksArtifactBuilds) {
  Graph g = graph::MakeErdosRenyi(200, 0.05, 3);
  Engine engine{Graph(g)};
  SolverOptions options;
  options.algorithm = Algorithm::kFilterRefine;
  QueryResponse first = engine.Execute({.options = options});
  QueryResponse second = engine.Execute({.options = options});
  EXPECT_FALSE(first.warm);  // filter artifacts built during the query
  EXPECT_TRUE(second.warm);
  ExpectSameResult(first.result, second.result, options.algorithm, 1);
}

TEST(EngineExecute, IncludeDominatorsFalseSkipsOnlyTheArray) {
  Graph g = graph::MakeErdosRenyi(200, 0.05, 4);
  Engine engine{Graph(g)};
  SolverOptions options;
  options.algorithm = Algorithm::kBaseSky;
  QueryResponse full = engine.Execute({.options = options});
  QueryRequest lean_request;
  lean_request.options = options;
  lean_request.include_dominators = false;
  QueryResponse lean = engine.Execute(lean_request);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(lean.ok());
  EXPECT_FALSE(full.result.dominator.empty());
  EXPECT_TRUE(lean.result.dominator.empty());
  // Everything else -- including the flight-recorder view of the query --
  // is unaffected by the output mode.
  EXPECT_EQ(full.result.skyline, lean.result.skyline);
  EXPECT_EQ(full.stats().aux_peak_bytes, lean.stats().aux_peak_bytes);
  std::vector<QueryRecord> records = engine.recorder().Recent();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].skyline_size, records[1].skyline_size);
}

TEST(EngineExecute, ResponseBuffersAreRecycledAcrossQueries) {
  Graph g = graph::MakeErdosRenyi(300, 0.05, 5);
  Engine engine{Graph(g)};
  SolverOptions options;
  options.algorithm = Algorithm::kFilterRefine;
  QueryResponse response;
  engine.Execute({.options = options}, &response);
  engine.Execute({.options = options}, &response);  // outputs now at capacity
  const uint64_t events = engine.WorkspaceAllocationEvents(options.threads);
  for (int i = 0; i < 5; ++i) {
    engine.Execute({.options = options}, &response);
    ASSERT_TRUE(response.ok());
  }
  // Warm queries into a reused response allocate nothing anywhere: neither
  // in the pooled workspace ledger nor for the response outputs.
  EXPECT_EQ(engine.WorkspaceAllocationEvents(options.threads), events);
}

TEST(EngineExecute, DeadlineAndCancellationAreCountedInStats) {
  Graph g = graph::MakeErdosRenyi(300, 0.05, 6);
  Engine engine{Graph(g)};
  SolverOptions options;
  options.algorithm = Algorithm::kBaseSky;

  QueryRequest timed;
  timed.options = options;
  timed.context.set_deadline(util::ExecutionContext::Clock::now() -
                             std::chrono::milliseconds(1));
  QueryResponse response = engine.Execute(timed);
  EXPECT_EQ(response.status.code(), util::StatusCode::kDeadlineExceeded);

  util::CancelToken token;
  token.Cancel();
  QueryRequest cancelled;
  cancelled.options = options;
  cancelled.context.set_cancel_token(&token);
  response = engine.Execute(cancelled);
  EXPECT_EQ(response.status.code(), util::StatusCode::kCancelled);

  EngineStats stats = engine.StatsSnapshot();
  EXPECT_EQ(stats.timeout_queries, 1u);
  EXPECT_EQ(stats.cancelled_queries, 1u);
  EXPECT_EQ(stats.shed_queries, 0u);
}

TEST(EngineExecute, RecordRejectionFeedsStatsAndRecorder) {
  Graph g = graph::MakeErdosRenyi(100, 0.05, 7);
  Engine engine{Graph(g)};
  SolverOptions options;
  options.algorithm = Algorithm::kBase2Hop;
  options.threads = 2;
  engine.Query(options);  // one served query ahead of the rejection
  engine.RecordRejection(options,
                         util::Status::ResourceExhausted("over capacity"));

  EXPECT_EQ(engine.shed_queries(), 1u);
  EngineStats stats = engine.StatsSnapshot();
  EXPECT_EQ(stats.shed_queries, 1u);
  // Shed requests never ran, so they are not "served".
  EXPECT_EQ(stats.queries_served, 1u);

  std::vector<QueryRecord> records = engine.recorder().Recent();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].status, util::StatusCode::kResourceExhausted);
  EXPECT_EQ(records[1].duration_us, 0u);
  EXPECT_EQ(records[1].skyline_size, 0u);
  EXPECT_EQ(records[1].threads, 2u);

  // The JSON document renders the rejection like any other record.
  EXPECT_NE(engine.RecentQueriesJson().find("RESOURCE_EXHAUSTED"),
            std::string::npos);
}

}  // namespace
}  // namespace nsky::core
