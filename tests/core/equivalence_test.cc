// Property suite: every skyline solver in the library agrees with the
// brute-force oracle on every graph family and seed, and the structural
// invariants (Lemma 1, degree monotonicity) hold.
#include <algorithm>

#include <gtest/gtest.h>

#include "core/nsky.h"
#include "setjoin/skyline_via_join.h"
#include "testing/fixtures.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace nsky::core {
namespace {

using nsky::testing::GraphCase;
using nsky::testing::GraphCaseName;
using nsky::testing::PropertySeeds;
using nsky::testing::SmallGraphCases;

class SkylineEquivalence : public ::testing::TestWithParam<GraphCase> {};

// All core solvers route through the unified dispatcher.
SkylineResult SolveWith(const graph::Graph& g, Algorithm algorithm) {
  SolverOptions options;
  options.algorithm = algorithm;
  return Solve(g, options);
}

TEST_P(SkylineEquivalence, AllSolversMatchBruteForce) {
  for (uint64_t seed : PropertySeeds()) {
    graph::Graph g = GetParam().make(seed);
    SkylineResult oracle = BruteForceSkyline(g);
    EXPECT_EQ(SolveWith(g, Algorithm::kBaseSky).skyline, oracle.skyline)
        << "BaseSky seed " << seed;
    EXPECT_EQ(SolveWith(g, Algorithm::kFilterRefine).skyline, oracle.skyline)
        << "FilterRefineSky seed " << seed;
    EXPECT_EQ(SolveWith(g, Algorithm::kBase2Hop).skyline, oracle.skyline)
        << "Base2Hop seed " << seed;
    EXPECT_EQ(SolveWith(g, Algorithm::kBaseCSet).skyline, oracle.skyline)
        << "BaseCSet seed " << seed;
    EXPECT_EQ(setjoin::SkylineViaJoin(
                  g, setjoin::JoinAlgorithm::kListCrosscutting)
                  .skyline,
              oracle.skyline)
        << "SkylineViaJoin(LC) seed " << seed;
    EXPECT_EQ(
        setjoin::SkylineViaJoin(g, setjoin::JoinAlgorithm::kInvertedIndex)
            .skyline,
        oracle.skyline)
        << "SkylineViaJoin(II) seed " << seed;
  }
}

TEST_P(SkylineEquivalence, Lemma1CandidatesContainSkyline) {
  for (uint64_t seed : PropertySeeds()) {
    graph::Graph g = GetParam().make(seed);
    auto candidates = FilterPhase(g).skyline;
    auto skyline = SolveWith(g, Algorithm::kFilterRefine).skyline;
    EXPECT_TRUE(std::includes(candidates.begin(), candidates.end(),
                              skyline.begin(), skyline.end()))
        << "seed " << seed;
  }
}

TEST_P(SkylineEquivalence, SkylineNeverEmptyOnNonEmptyGraph) {
  for (uint64_t seed : PropertySeeds()) {
    graph::Graph g = GetParam().make(seed);
    if (g.NumVertices() == 0) continue;
    // Domination is a partial order on mutual-classes; a maximal element
    // always exists.
    EXPECT_FALSE(SolveWith(g, Algorithm::kFilterRefine).skyline.empty());
  }
}

TEST_P(SkylineEquivalence, SkylineContainsAMaximumDegreeVertex) {
  for (uint64_t seed : PropertySeeds()) {
    graph::Graph g = GetParam().make(seed);
    if (g.NumEdges() == 0) continue;
    // A vertex of maximum degree can only be dominated by another vertex of
    // maximum degree (degree monotonicity), so at least one survives.
    auto skyline = SolveWith(g, Algorithm::kFilterRefine).skyline;
    bool found = false;
    for (graph::VertexId u : skyline) {
      if (g.Degree(u) == g.MaxDegree()) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no max-degree vertex in skyline, seed " << seed;
  }
}

TEST_P(SkylineEquivalence, StatsIdenticalWithTelemetryOnAndOff) {
  // Instrumentation is observation-only: the deterministic SkylineStats
  // counters must not change when metrics and tracing are recording.
  auto run_all = [](const graph::Graph& g) {
    return std::vector<SkylineStats>{
        SolveWith(g, Algorithm::kBaseSky).stats,
        SolveWith(g, Algorithm::kFilterRefine).stats,
        SolveWith(g, Algorithm::kBase2Hop).stats,
        SolveWith(g, Algorithm::kBaseCSet).stats, FilterPhase(g).stats};
  };
  auto expect_same = [](const SkylineStats& a, const SkylineStats& b,
                        uint64_t seed, size_t solver) {
    EXPECT_EQ(a.candidate_count, b.candidate_count)
        << "solver " << solver << " seed " << seed;
    EXPECT_EQ(a.pairs_examined, b.pairs_examined)
        << "solver " << solver << " seed " << seed;
    EXPECT_EQ(a.bloom_prunes, b.bloom_prunes)
        << "solver " << solver << " seed " << seed;
    EXPECT_EQ(a.degree_prunes, b.degree_prunes)
        << "solver " << solver << " seed " << seed;
    EXPECT_EQ(a.inclusion_tests, b.inclusion_tests)
        << "solver " << solver << " seed " << seed;
    EXPECT_EQ(a.nbr_elements_scanned, b.nbr_elements_scanned)
        << "solver " << solver << " seed " << seed;
  };
  namespace metrics = nsky::util::metrics;
  namespace trace = nsky::util::trace;
  for (uint64_t seed : PropertySeeds()) {
    graph::Graph g = GetParam().make(seed);

    metrics::SetEnabled(false);
    trace::SetEnabled(false);
    std::vector<SkylineStats> off = run_all(g);

    metrics::SetEnabled(true);
    trace::Reset();
    trace::SetEnabled(true);
    std::vector<SkylineStats> on = run_all(g);
    trace::SetEnabled(false);
    trace::Reset();

    ASSERT_EQ(off.size(), on.size());
    for (size_t i = 0; i < off.size(); ++i) {
      expect_same(off[i], on[i], seed, i);
    }
  }
}

// Serving-path observability is observation-only too: an Engine with the
// full instrumentation stack armed (metrics, latency histograms, flight
// recorder, slow-query tracing) returns bit-identical results -- skyline,
// dominator, every deterministic stat including the aux_peak_bytes ledger
// -- to an uninstrumented engine, across algorithms and thread counts, on
// cold and warm queries alike.
TEST_P(SkylineEquivalence, EngineInstrumentationDoesNotChangeResults) {
  namespace metrics = nsky::util::metrics;
  constexpr Algorithm kAlgorithms[] = {
      Algorithm::kFilterRefine, Algorithm::kBaseSky, Algorithm::kBaseCSet,
      Algorithm::kBase2Hop};
  constexpr uint32_t kThreads[] = {1, 2, 8};

  graph::Graph g = GetParam().make(7);
  Engine plain{graph::Graph(g)};
  Engine instrumented{graph::Graph(g)};
  instrumented.set_slow_query_threshold_us(1);  // trace every query

  for (int round = 0; round < 2; ++round) {  // round 0 cold, round 1 warm
    for (Algorithm algorithm : kAlgorithms) {
      for (uint32_t threads : kThreads) {
        SCOPED_TRACE(::testing::Message()
                     << AlgorithmName(algorithm) << " threads " << threads
                     << " round " << round);
        SolverOptions options;
        options.algorithm = algorithm;
        options.threads = threads;

        metrics::SetEnabled(false);
        SkylineResult off = plain.Query(options);
        metrics::SetEnabled(true);
        SkylineResult on = instrumented.Query(options);

        EXPECT_EQ(off.skyline, on.skyline);
        EXPECT_EQ(off.dominator, on.dominator);
        EXPECT_EQ(off.stats.candidate_count, on.stats.candidate_count);
        EXPECT_EQ(off.stats.pairs_examined, on.stats.pairs_examined);
        EXPECT_EQ(off.stats.bloom_prunes, on.stats.bloom_prunes);
        EXPECT_EQ(off.stats.degree_prunes, on.stats.degree_prunes);
        EXPECT_EQ(off.stats.inclusion_tests, on.stats.inclusion_tests);
        EXPECT_EQ(off.stats.nbr_elements_scanned,
                  on.stats.nbr_elements_scanned);
        EXPECT_EQ(off.stats.aux_peak_bytes, on.stats.aux_peak_bytes);
        EXPECT_EQ(off.stats.degraded_from, on.stats.degraded_from);
      }
    }
  }
  // The instrumented engine actually recorded everything while agreeing.
  EXPECT_EQ(instrumented.recorder().total_recorded(),
            2u * std::size(kAlgorithms) * std::size(kThreads));
  EXPECT_FALSE(instrumented.recorder().SlowQueries().empty());
}

INSTANTIATE_TEST_SUITE_P(AllGraphFamilies, SkylineEquivalence,
                         ::testing::ValuesIn(SmallGraphCases()),
                         GraphCaseName);

}  // namespace
}  // namespace nsky::core
