// Interruption contract of the hardened runtime (core/solver.h):
//  * cancellation and deadlines abort a run promptly with the right code,
//  * partial results are well-defined (empty skyline, populated stats),
//  * a run that completes under a context is bit-identical to plain Solve()
//    at every thread count.
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/nsky.h"
#include "graph/generators.h"
#include "testing/fixtures.h"
#include "util/execution_context.h"
#include "util/fault_injection.h"

namespace nsky::core {
namespace {

using nsky::testing::GraphCase;
using nsky::testing::GraphCaseName;
using nsky::testing::SmallGraphCases;
using util::CancelToken;
using util::ExecutionContext;
using util::FaultInjector;
using util::StatusCode;

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kFilterRefine, Algorithm::kBaseSky, Algorithm::kBaseCSet,
    Algorithm::kBase2Hop};

constexpr uint32_t kThreadCounts[] = {1, 2, 8};

// On failure the partial-result contract holds: empty outputs, stamped
// configuration, and a populated (possibly zero) stats block.
void ExpectWellFormedPartial(const SkylineResult& r, uint32_t threads) {
  EXPECT_TRUE(r.skyline.empty());
  EXPECT_TRUE(r.dominator.empty());
  EXPECT_EQ(r.stats.threads, threads);
  EXPECT_GE(r.stats.seconds, 0.0);
}

class Interruption : public ::testing::TestWithParam<GraphCase> {};

TEST_P(Interruption, PreCancelledRunReturnsCancelled) {
  graph::Graph g = GetParam().make(7);
  CancelToken token;
  token.Cancel();
  ExecutionContext ctx;
  ctx.set_cancel_token(&token);
  for (Algorithm algorithm : kAllAlgorithms) {
    for (uint32_t threads : kThreadCounts) {
      SolverOptions options;
      options.algorithm = algorithm;
      options.threads = threads;
      SkylineResult r;
      util::Status s = SolveInto(g, options, ctx, &r);
      EXPECT_EQ(s.code(), StatusCode::kCancelled)
          << AlgorithmName(algorithm) << " threads " << threads;
      ExpectWellFormedPartial(r, threads);
    }
  }
}

TEST_P(Interruption, ExpiredDeadlineReturnsDeadlineExceeded) {
  graph::Graph g = GetParam().make(7);
  ExecutionContext ctx;
  ctx.set_deadline(ExecutionContext::Clock::now() -
                   std::chrono::milliseconds(1));
  for (Algorithm algorithm : kAllAlgorithms) {
    for (uint32_t threads : kThreadCounts) {
      SolverOptions options;
      options.algorithm = algorithm;
      options.threads = threads;
      SkylineResult r;
      util::Status s = SolveInto(g, options, ctx, &r);
      EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded)
          << AlgorithmName(algorithm) << " threads " << threads;
      ExpectWellFormedPartial(r, threads);
    }
  }
}

TEST_P(Interruption, CompletedRunMatchesPlainSolve) {
  // A generous context must not perturb the bit-identical contract.
  graph::Graph g = GetParam().make(42);
  ExecutionContext ctx;
  ctx.set_timeout_ms(600000);
  CancelToken token;  // live but never cancelled
  ctx.set_cancel_token(&token);
  for (Algorithm algorithm : kAllAlgorithms) {
    SolverOptions options;
    options.algorithm = algorithm;
    options.threads = 1;
    const SkylineResult base = Solve(g, options);
    for (uint32_t threads : kThreadCounts) {
      options.threads = threads;
      util::Result<SkylineResult> run = SolveOrError(g, options, ctx);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(run.value().skyline, base.skyline)
          << AlgorithmName(algorithm) << " threads " << threads;
      EXPECT_EQ(run.value().dominator, base.dominator);
      EXPECT_EQ(run.value().stats.pairs_examined, base.stats.pairs_examined);
      EXPECT_EQ(run.value().stats.aux_peak_bytes, base.stats.aux_peak_bytes);
      EXPECT_TRUE(run.value().stats.degraded_from.empty());
    }
  }
}

TEST_P(Interruption, MidSolveCancellationAborts) {
  // A sibling thread cancels shortly after the solve starts; the run must
  // come back cancelled (or finished, on a tiny graph) and well-formed.
  graph::Graph g = GetParam().make(3);
  for (uint32_t threads : kThreadCounts) {
    CancelToken token;
    ExecutionContext ctx;
    ctx.set_cancel_token(&token);
    SolverOptions options;
    options.algorithm = Algorithm::kBaseSky;
    options.threads = threads;
    std::thread canceller([&token] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      token.Cancel();
    });
    SkylineResult r;
    util::Status s = SolveInto(g, options, ctx, &r);
    canceller.join();
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kCancelled);
      ExpectWellFormedPartial(r, threads);
    } else {
      EXPECT_EQ(r.skyline, Solve(g, options).skyline);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGraphFamilies, Interruption,
                         ::testing::ValuesIn(SmallGraphCases()),
                         GraphCaseName);

TEST(InterruptionLargeGraph, OneMsDeadlineReturnsPromptly) {
  // Acceptance bar: a 1ms deadline on a >= 100k-vertex graph comes back
  // kDeadlineExceeded within ~100ms at every thread count. The chunk-delay
  // fault keeps even the fastest scan from finishing inside 1ms.
  graph::Graph g = graph::MakeChungLuPowerLaw(120000, 2.5, 8, 9);
  ASSERT_GE(g.NumVertices(), 100000u);
  ASSERT_TRUE(FaultInjector::ArmForTest("pool.chunk_delay_ms=2"));
  for (uint32_t threads : kThreadCounts) {
    SolverOptions options;
    options.algorithm = Algorithm::kFilterRefine;
    options.threads = threads;
    ExecutionContext ctx;
    ctx.set_timeout_ms(1);
    const auto start = std::chrono::steady_clock::now();
    SkylineResult r;
    util::Status s = SolveInto(g, options, ctx, &r);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << threads;
    // Generous 10x headroom over the 100ms bar to stay robust on loaded CI.
    EXPECT_LE(elapsed.count(), 1000) << "threads " << threads;
    ExpectWellFormedPartial(r, threads);
  }
  FaultInjector::Disarm();
}

TEST(InterruptionFaults, ChunkDelayStretchesRuntimeDeterministically) {
  // The delay site slows execution without changing the answer.
  graph::Graph g = graph::MakeErdosRenyi(300, 0.05, 5);
  SolverOptions options;
  options.threads = 2;
  const SkylineResult base = Solve(g, options);
  ASSERT_TRUE(FaultInjector::ArmForTest("pool.chunk_delay_ms=1"));
  ExecutionContext ctx;
  ctx.set_timeout_ms(600000);
  util::Result<SkylineResult> run = SolveOrError(g, options, ctx);
  FaultInjector::Disarm();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().skyline, base.skyline);
  EXPECT_EQ(run.value().dominator, base.dominator);
}

TEST(InterruptionFaults, BudgetFaultSiteTripsBudgetedSolve) {
  graph::Graph g = graph::MakeErdosRenyi(200, 0.05, 5);
  ASSERT_TRUE(FaultInjector::ArmForTest("ctx.budget=1"));
  ExecutionContext ctx;
  ctx.set_byte_budget(uint64_t{1} << 40);  // huge: only the fault can trip it
  SolverOptions options;
  SkylineResult r;
  util::Status s = SolveInto(g, options, ctx, &r);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // The infallible wrapper must remain immune to the armed site.
  SkylineResult plain = Solve(g, options);
  FaultInjector::Disarm();
  EXPECT_FALSE(plain.skyline.empty());
}

}  // namespace
}  // namespace nsky::core
