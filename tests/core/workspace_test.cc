// SolverWorkspace contract (core/workspace.h): Prepare*() hands back
// correctly sized, correctly initialized buffers; capacity growth is the
// only allocation and is fully visible through the ledger counters.
#include <cstdint>

#include <gtest/gtest.h>

#include "core/workspace.h"

namespace nsky::core {
namespace {

TEST(SolverWorkspace, PrepareMemberIsSizedAndZeroFilled) {
  SolverWorkspace ws;
  auto& member = ws.PrepareMember(64);
  ASSERT_EQ(member.size(), 64u);
  for (uint8_t b : member) EXPECT_EQ(b, 0);
  member[10] = 1;
  // Re-preparing must clear what the previous query wrote.
  auto& again = ws.PrepareMember(64);
  EXPECT_EQ(again[10], 0);
}

TEST(SolverWorkspace, PrepareWorkerCountsZeroedEveryTime) {
  SolverWorkspace ws;
  auto& counts = ws.PrepareWorkerCounts(3, 32);
  ASSERT_EQ(counts.size(), 3u);
  for (auto& per_worker : counts) {
    ASSERT_EQ(per_worker.size(), 32u);
  }
  counts[1][7] = 99;
  auto& again = ws.PrepareWorkerCounts(3, 32);
  EXPECT_EQ(again[1][7], 0u);
}

TEST(SolverWorkspace, PrepareWorkerStatsResets) {
  SolverWorkspace ws;
  auto& stats = ws.PrepareWorkerStats(2);
  ASSERT_EQ(stats.size(), 2u);
  stats[0].pairs_examined = 123;
  auto& again = ws.PrepareWorkerStats(2);
  EXPECT_EQ(again[0].pairs_examined, 0u);
}

TEST(SolverWorkspace, PrepareTwoHopClearsInnerListsKeepsCapacity) {
  SolverWorkspace ws;
  auto& two_hop = ws.PrepareTwoHop(8);
  ASSERT_EQ(two_hop.size(), 8u);
  two_hop[3] = {1, 2, 3, 4, 5};
  const uint64_t events = ws.allocation_events();
  auto& again = ws.PrepareTwoHop(8);
  EXPECT_TRUE(again[3].empty());
  EXPECT_GE(again[3].capacity(), 5u);
  EXPECT_EQ(ws.allocation_events(), events);
}

TEST(SolverWorkspace, GrowthIsTheOnlyAllocation) {
  SolverWorkspace ws;
  ws.PrepareMember(100);
  ws.PrepareWorkerCounts(4, 100);
  ws.PrepareWorkerTouched(4);
  ws.PrepareWorkerBytes(4);
  const uint64_t events = ws.allocation_events();
  const uint64_t bytes = ws.allocated_bytes();
  EXPECT_GT(events, 0u);
  EXPECT_GT(bytes, 0u);
  // Same shape again, and smaller shapes: no growth.
  ws.PrepareMember(100);
  ws.PrepareMember(40);
  ws.PrepareWorkerCounts(4, 100);
  ws.PrepareWorkerCounts(2, 50);
  ws.PrepareWorkerTouched(3);
  ws.PrepareWorkerBytes(1);
  EXPECT_EQ(ws.allocation_events(), events);
  EXPECT_EQ(ws.allocated_bytes(), bytes);
  // A larger shape must grow and must say so.
  ws.PrepareMember(200);
  EXPECT_GT(ws.allocation_events(), events);
  EXPECT_GT(ws.allocated_bytes(), bytes);
}

TEST(SolverWorkspace, PoisonedBuffersComeBackInitialized) {
  SolverWorkspace ws;
  ws.PrepareMember(32);
  ws.PrepareWorkerCounts(2, 32);
  ws.PrepareWorkerStats(2);
  ws.PrepareWorkerBytes(2);
  ws.PoisonForTesting();
  auto& member = ws.PrepareMember(32);
  for (uint8_t b : member) EXPECT_EQ(b, 0);
  auto& counts = ws.PrepareWorkerCounts(2, 32);
  for (auto& per_worker : counts) {
    for (uint32_t c : per_worker) EXPECT_EQ(c, 0u);
  }
  auto& stats = ws.PrepareWorkerStats(2);
  for (const SkylineStats& s : stats) {
    EXPECT_EQ(s.pairs_examined, 0u);
    EXPECT_EQ(s.inclusion_tests, 0u);
  }
  auto& worker_bytes = ws.PrepareWorkerBytes(2);
  for (uint64_t b : worker_bytes) EXPECT_EQ(b, 0u);
}

TEST(SolverWorkspace, PoisonDoesNotCountAsAllocation) {
  SolverWorkspace ws;
  ws.PrepareMember(64);
  ws.PrepareTwoHop(16);
  const uint64_t events = ws.allocation_events();
  ws.PoisonForTesting();
  ws.PrepareMember(64);
  ws.PrepareTwoHop(16);
  EXPECT_EQ(ws.allocation_events(), events);
}

}  // namespace
}  // namespace nsky::core
