// Determinism contract of the parallel engine (core/solver.h): for every
// algorithm, graph family, seed and thread count, Solve() returns the same
// SkylineResult -- same skyline order, same dominator array, and the same
// deterministic SkylineStats counters. Only stats.threads (configuration)
// and stats.seconds (wall time) may differ between runs.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/nsky.h"
#include "testing/fixtures.h"

namespace nsky::core {
namespace {

using nsky::testing::GraphCase;
using nsky::testing::GraphCaseName;
using nsky::testing::PropertySeeds;
using nsky::testing::SmallGraphCases;

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kFilterRefine, Algorithm::kBaseSky, Algorithm::kBaseCSet,
    Algorithm::kBase2Hop};

constexpr uint32_t kThreadCounts[] = {1, 2, 8};

// Asserts everything except the two fields documented as run-dependent.
void ExpectSameResult(const SkylineResult& base, const SkylineResult& run,
                      Algorithm algorithm, uint64_t seed, uint32_t threads) {
  SCOPED_TRACE(::testing::Message()
               << AlgorithmName(algorithm) << " seed " << seed << " threads "
               << threads);
  EXPECT_EQ(base.skyline, run.skyline);
  EXPECT_EQ(base.dominator, run.dominator);
  EXPECT_EQ(base.stats.candidate_count, run.stats.candidate_count);
  EXPECT_EQ(base.stats.pairs_examined, run.stats.pairs_examined);
  EXPECT_EQ(base.stats.bloom_prunes, run.stats.bloom_prunes);
  EXPECT_EQ(base.stats.degree_prunes, run.stats.degree_prunes);
  EXPECT_EQ(base.stats.inclusion_tests, run.stats.inclusion_tests);
  EXPECT_EQ(base.stats.nbr_elements_scanned, run.stats.nbr_elements_scanned);
  EXPECT_EQ(base.stats.aux_peak_bytes, run.stats.aux_peak_bytes);
}

class ParallelDeterminism : public ::testing::TestWithParam<GraphCase> {};

TEST_P(ParallelDeterminism, IdenticalResultForEveryThreadCount) {
  for (uint64_t seed : PropertySeeds()) {
    graph::Graph g = GetParam().make(seed);
    for (Algorithm algorithm : kAllAlgorithms) {
      SolverOptions options;
      options.algorithm = algorithm;
      options.threads = 1;
      SkylineResult base = Solve(g, options);
      EXPECT_EQ(base.stats.threads, 1u);
      for (uint32_t threads : kThreadCounts) {
        options.threads = threads;
        SkylineResult run = Solve(g, options);
        EXPECT_EQ(run.stats.threads, threads);
        ExpectSameResult(base, run, algorithm, seed, threads);
      }
    }
  }
}

TEST_P(ParallelDeterminism, IdenticalResultWithoutBloom) {
  // The no-bloom path takes different branches; it must be deterministic too.
  for (uint64_t seed : {PropertySeeds().front(), PropertySeeds().back()}) {
    graph::Graph g = GetParam().make(seed);
    for (Algorithm algorithm : {Algorithm::kFilterRefine,
                                Algorithm::kBase2Hop}) {
      SolverOptions options;
      options.algorithm = algorithm;
      options.use_bloom = false;
      options.threads = 1;
      SkylineResult base = Solve(g, options);
      for (uint32_t threads : kThreadCounts) {
        options.threads = threads;
        ExpectSameResult(base, Solve(g, options), algorithm, seed, threads);
      }
    }
  }
}

TEST_P(ParallelDeterminism, RepeatedRunsAreIdentical) {
  // Same thread count twice: no run-to-run scheduling sensitivity.
  graph::Graph g = GetParam().make(7);
  SolverOptions options;
  options.threads = 4;
  SkylineResult first = Solve(g, options);
  SkylineResult second = Solve(g, options);
  ExpectSameResult(first, second, options.algorithm, 7, 4);
}

INSTANTIATE_TEST_SUITE_P(AllGraphFamilies, ParallelDeterminism,
                         ::testing::ValuesIn(SmallGraphCases()),
                         GraphCaseName);

TEST(SolverApiTest, ParseAlgorithmAcceptsCanonicalAndAliasNames) {
  EXPECT_EQ(ParseAlgorithm("filter-refine"), Algorithm::kFilterRefine);
  EXPECT_EQ(ParseAlgorithm("filter_refine"), Algorithm::kFilterRefine);
  EXPECT_EQ(ParseAlgorithm("base"), Algorithm::kBaseSky);
  EXPECT_EQ(ParseAlgorithm("cset"), Algorithm::kBaseCSet);
  EXPECT_EQ(ParseAlgorithm("2hop"), Algorithm::kBase2Hop);
  EXPECT_EQ(ParseAlgorithm("join"), std::nullopt);
  EXPECT_EQ(ParseAlgorithm(""), std::nullopt);
  EXPECT_EQ(ParseAlgorithm("nope"), std::nullopt);
}

TEST(SolverApiTest, AlgorithmNameRoundTrips) {
  for (Algorithm a : kAllAlgorithms) {
    EXPECT_EQ(ParseAlgorithm(AlgorithmName(a)), a);
  }
}

TEST(SolverApiTest, ThreadsZeroResolvesToHardwareCount) {
  graph::Graph g = graph::MakeErdosRenyi(50, 0.1, 3);
  SolverOptions options;
  options.threads = 0;
  SkylineResult r = Solve(g, options);
  EXPECT_GE(r.stats.threads, 1u);
  // And it still matches the sequential result.
  options.threads = 1;
  EXPECT_EQ(Solve(g, options).skyline, r.skyline);
}

TEST(SolverApiTest, EngineQueryMatchesSolveForEveryAlgorithm) {
  // The serving path (Engine::Query, warm artifacts) and the one-shot path
  // (Solve, cold) share one dispatch body and must agree bit-for-bit.
  graph::Graph g = graph::MakeChungLuPowerLaw(150, 2.5, 6, 11);
  Engine engine{graph::Graph(g)};
  for (Algorithm algorithm : kAllAlgorithms) {
    SolverOptions options;
    options.algorithm = algorithm;
    SkylineResult cold = Solve(g, options);
    // Twice: first query may build artifacts, second is fully warm.
    ExpectSameResult(cold, engine.Query(options), algorithm, 11, 1);
    ExpectSameResult(cold, engine.Query(options), algorithm, 11, 1);
  }
}

}  // namespace
}  // namespace nsky::core
