#include "setjoin/records.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace nsky::setjoin {
namespace {

TEST(ClosedNeighborhoodRecords, ContainsSelfSorted) {
  graph::Graph g = graph::Graph::FromEdges(4, {{1, 0}, {1, 2}, {1, 3}});
  RecordSet s = ClosedNeighborhoodRecords(g);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.records[1], (std::vector<Element>{0, 1, 2, 3}));
  EXPECT_EQ(s.records[0], (std::vector<Element>{0, 1}));
  EXPECT_EQ(s.records[3], (std::vector<Element>{1, 3}));
  for (const auto& rec : s.records) {
    EXPECT_TRUE(std::is_sorted(rec.begin(), rec.end()));
  }
}

TEST(ClosedNeighborhoodRecords, SelfInsertionAtBothEnds) {
  // Vertex with all-smaller neighbors and vertex with all-larger neighbors.
  graph::Graph g = graph::Graph::FromEdges(3, {{2, 0}, {2, 1}});
  RecordSet s = ClosedNeighborhoodRecords(g);
  EXPECT_EQ(s.records[2], (std::vector<Element>{0, 1, 2}));
  EXPECT_EQ(s.records[0], (std::vector<Element>{0, 2}));
}

TEST(ClosedNeighborhoodRecords, IsolatedVertexIsSingleton) {
  graph::Graph g = graph::Graph::FromEdges(2, {});
  RecordSet s = ClosedNeighborhoodRecords(g);
  EXPECT_EQ(s.records[0], (std::vector<Element>{0}));
  EXPECT_EQ(s.records[1], (std::vector<Element>{1}));
}

TEST(OpenNeighborhoodRecords, MatchesAdjacency) {
  graph::Graph g = graph::MakeCycle(5);
  RecordSet q = OpenNeighborhoodRecords(g);
  EXPECT_EQ(q.records[0], (std::vector<Element>{1, 4}));
  EXPECT_EQ(q.records[2], (std::vector<Element>{1, 3}));
}

TEST(RecordSet, TotalsAndMemory) {
  graph::Graph g = graph::MakeClique(5);
  RecordSet s = ClosedNeighborhoodRecords(g);
  EXPECT_EQ(s.TotalElements(), 25u);  // each closed neighborhood has 5
  EXPECT_GT(s.MemoryBytes(), 0u);
}

TEST(RandomRecords, RespectsSizesAndSorted) {
  RecordSet r = RandomRecords(100, 50, 2, 8, 3);
  ASSERT_EQ(r.size(), 50u);
  for (const auto& rec : r.records) {
    EXPECT_GE(rec.size(), 2u);
    EXPECT_LE(rec.size(), 8u);
    EXPECT_TRUE(std::is_sorted(rec.begin(), rec.end()));
    EXPECT_TRUE(std::adjacent_find(rec.begin(), rec.end()) == rec.end());
    for (Element e : rec) EXPECT_LT(e, 100u);
  }
}

TEST(RandomRecords, Deterministic) {
  RecordSet a = RandomRecords(64, 20, 1, 5, 9);
  RecordSet b = RandomRecords(64, 20, 1, 5, 9);
  EXPECT_EQ(a.records, b.records);
}

}  // namespace
}  // namespace nsky::setjoin
