#include "setjoin/skyline_via_join.h"

#include <gtest/gtest.h>

#include "core/domination.h"
#include "graph/generators.h"

namespace nsky::setjoin {
namespace {

TEST(SkylineViaJoin, MatchesBruteForceBothAlgorithms) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    graph::Graph g = graph::MakeChungLuPowerLaw(200, 2.4, 6, seed);
    auto oracle = core::BruteForceSkyline(g).skyline;
    EXPECT_EQ(SkylineViaJoin(g, JoinAlgorithm::kListCrosscutting).skyline,
              oracle)
        << "LC seed " << seed;
    EXPECT_EQ(SkylineViaJoin(g, JoinAlgorithm::kInvertedIndex).skyline, oracle)
        << "II seed " << seed;
  }
}

TEST(SkylineViaJoin, IsolatedVerticesKeptBy2HopConvention) {
  graph::Graph g = graph::Graph::FromEdges(5, {{0, 1}});
  auto r = SkylineViaJoin(g);
  // 1 dominated by 0 (mutual K2); isolated 2,3,4 stay.
  EXPECT_EQ(r.skyline, (std::vector<graph::VertexId>{0, 2, 3, 4}));
}

TEST(SkylineViaJoin, MutualPairsBreakById) {
  // 2 and 3 share the neighborhood {0, 1}.
  graph::Graph g = graph::Graph::FromEdges(
      4, {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  auto r = SkylineViaJoin(g);
  EXPECT_NE(r.dominator[3], 3u);
  EXPECT_TRUE(std::binary_search(r.skyline.begin(), r.skyline.end(), 2u));
}

TEST(SkylineViaJoin, StatsCarryJoinFootprint) {
  graph::Graph g = graph::MakeBarabasiAlbert(300, 3, 7);
  auto r = SkylineViaJoin(g);
  EXPECT_GT(r.stats.aux_peak_bytes, 0u);
  EXPECT_GT(r.stats.pairs_examined, 0u);
  EXPECT_GE(r.stats.seconds, 0.0);
}

TEST(SkylineViaJoin, DominatorsValid) {
  graph::Graph g = graph::MakeErdosRenyi(120, 0.06, 11);
  auto r = SkylineViaJoin(g);
  for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
    if (r.dominator[u] != u) {
      EXPECT_TRUE(core::Dominates(g, r.dominator[u], u));
    }
  }
}

}  // namespace
}  // namespace nsky::setjoin
