#include "setjoin/containment_join.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "setjoin/records.h"

namespace nsky::setjoin {
namespace {

TEST(NestedLoopJoin, TinyHandChecked) {
  RecordSet data;
  data.universe_size = 5;
  data.records = {{0, 1, 2}, {1, 2, 3}, {0, 4}};
  RecordSet queries;
  queries.universe_size = 5;
  queries.records = {{1, 2}, {4}, {0, 3}};
  JoinResult r = NestedLoopJoin(queries, data);
  // q0={1,2} in s0 and s1; q1={4} in s2; q2={0,3} in none.
  EXPECT_EQ(r, (JoinResult{{0, 0}, {0, 1}, {1, 2}}));
}

TEST(AllJoins, AgreeOnRandomRecords) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RecordSet data = RandomRecords(80, 120, 1, 10, seed);
    RecordSet queries = RandomRecords(80, 60, 1, 4, seed + 100);
    JoinResult oracle = NestedLoopJoin(queries, data);
    EXPECT_EQ(InvertedIndexJoin(queries, data), oracle) << "seed " << seed;
    EXPECT_EQ(ListCrosscuttingJoin(queries, data), oracle) << "seed " << seed;
  }
}

TEST(AllJoins, EmptyQueryMatchesEverything) {
  RecordSet data = RandomRecords(20, 10, 1, 5, 1);
  RecordSet queries;
  queries.universe_size = 20;
  queries.records = {{}};
  EXPECT_EQ(NestedLoopJoin(queries, data).size(), 10u);
  EXPECT_EQ(InvertedIndexJoin(queries, data).size(), 10u);
  EXPECT_EQ(ListCrosscuttingJoin(queries, data).size(), 10u);
}

TEST(AllJoins, NoMatches) {
  RecordSet data;
  data.universe_size = 10;
  data.records = {{0, 1}, {2, 3}};
  RecordSet queries;
  queries.universe_size = 10;
  queries.records = {{7}, {0, 2}};
  EXPECT_TRUE(NestedLoopJoin(queries, data).empty());
  EXPECT_TRUE(InvertedIndexJoin(queries, data).empty());
  EXPECT_TRUE(ListCrosscuttingJoin(queries, data).empty());
}

TEST(AllJoins, ExactEqualityCounts) {
  RecordSet data;
  data.universe_size = 4;
  data.records = {{0, 1, 2, 3}};
  RecordSet queries;
  queries.universe_size = 4;
  queries.records = {{0, 1, 2, 3}};
  EXPECT_EQ(InvertedIndexJoin(queries, data).size(), 1u);
  EXPECT_EQ(ListCrosscuttingJoin(queries, data).size(), 1u);
}

TEST(JoinStats, Populated) {
  RecordSet data = RandomRecords(50, 80, 1, 8, 2);
  RecordSet queries = RandomRecords(50, 40, 1, 4, 3);
  JoinStats ii_stats, lc_stats;
  InvertedIndexJoin(queries, data, &ii_stats);
  ListCrosscuttingJoin(queries, data, &lc_stats);
  EXPECT_GT(ii_stats.postings_scanned, 0u);
  EXPECT_GT(ii_stats.index_bytes, 0u);
  EXPECT_GT(lc_stats.postings_scanned, 0u);
  EXPECT_GT(lc_stats.index_bytes, 0u);
}

TEST(AllJoins, GraphNeighborhoodAdapters) {
  // Join of open neighborhoods into closed neighborhoods must recover the
  // neighborhood-inclusion pairs of Definition 1 (plus the trivial i==i).
  graph::Graph g = graph::MakeStar(6);
  RecordSet data = ClosedNeighborhoodRecords(g);
  RecordSet queries = OpenNeighborhoodRecords(g);
  JoinResult r = NestedLoopJoin(queries, data);
  // Every leaf's N = {0} is in N[0] and in every other leaf's... no:
  // N[leaf'] = {0, leaf'}, contains {0}: yes! So each leaf query matches
  // s[0] and every s[leaf'] (including itself). Center query {1..5}
  // matches only s[0].
  uint64_t leaf_matches = 0, center_matches = 0;
  for (auto [q, s] : r) {
    if (q == 0) {
      ++center_matches;
      EXPECT_EQ(s, 0u);
    } else {
      ++leaf_matches;
    }
  }
  EXPECT_EQ(center_matches, 1u);
  EXPECT_EQ(leaf_matches, 5u * 6);
  EXPECT_EQ(InvertedIndexJoin(queries, data), r);
  EXPECT_EQ(ListCrosscuttingJoin(queries, data), r);
}

}  // namespace
}  // namespace nsky::setjoin
