#include "persist/snapshot.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/query.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "persist/format.h"
#include "util/crc32.h"
#include "util/execution_context.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace nsky::persist {
namespace {

using core::Algorithm;
using core::Engine;
using core::SolverOptions;
using graph::Graph;

Graph TestGraph() { return graph::MakeChungLuPowerLaw(400, 2.2, 6, 7); }

// The algorithm x thread grid every determinism assertion runs over.
std::vector<Algorithm> Algorithms() {
  return {Algorithm::kBaseSky, Algorithm::kFilterRefine, Algorithm::kBaseCSet,
          Algorithm::kBase2Hop};
}
std::vector<uint32_t> ThreadCounts() { return {1, 2, 8}; }

// Warms every artifact the solvers can request, so the snapshot carries the
// full PreparedGraph population.
void WarmEngine(Engine* engine) {
  for (Algorithm algorithm : Algorithms()) {
    for (uint32_t threads : ThreadCounts()) {
      SolverOptions options;
      options.algorithm = algorithm;
      options.threads = threads;
      engine->Query(options);
    }
  }
  engine->prepared().DegreeOrder();
  engine->prepared().Cores();
}

// ctest runs each test as its own process, potentially in parallel; key the
// scratch files by pid so concurrent tests never race on a shared path.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/nsky_persist_" +
         std::to_string(static_cast<long>(::getpid())) + "_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Saves a warm engine over TestGraph() and returns the snapshot path.
std::string SaveWarmSnapshot(const std::string& name) {
  Engine engine(TestGraph());
  WarmEngine(&engine);
  std::string path = TempPath(name);
  EXPECT_TRUE(Save(engine, path).ok());
  return path;
}

// Everything deterministic in a query outcome: the result arrays plus every
// SkylineStats counter except wall-clock seconds.
void ExpectSameOutcome(const core::SkylineResult& cold,
                       const core::SkylineResult& warm,
                       const std::string& label) {
  EXPECT_EQ(cold.skyline, warm.skyline) << label;
  EXPECT_EQ(cold.dominator, warm.dominator) << label;
  EXPECT_EQ(cold.stats.candidate_count, warm.stats.candidate_count) << label;
  EXPECT_EQ(cold.stats.pairs_examined, warm.stats.pairs_examined) << label;
  EXPECT_EQ(cold.stats.bloom_prunes, warm.stats.bloom_prunes) << label;
  EXPECT_EQ(cold.stats.degree_prunes, warm.stats.degree_prunes) << label;
  EXPECT_EQ(cold.stats.inclusion_tests, warm.stats.inclusion_tests) << label;
  EXPECT_EQ(cold.stats.nbr_elements_scanned, warm.stats.nbr_elements_scanned)
      << label;
  EXPECT_EQ(cold.stats.aux_peak_bytes, warm.stats.aux_peak_bytes) << label;
  EXPECT_EQ(cold.stats.threads, warm.stats.threads) << label;
  EXPECT_EQ(cold.stats.degraded_from, warm.stats.degraded_from) << label;
}

TEST(SnapshotRoundTrip, LoadedEngineMatchesColdBitForBit) {
  std::string path = SaveWarmSnapshot("roundtrip.nsnap");
  auto loaded = Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Engine& warm = *loaded.value();

  // A fresh cold engine answers every (algorithm, threads) cell; the loaded
  // engine must agree on every deterministic bit, aux_peak_bytes included.
  Engine cold(TestGraph());
  for (Algorithm algorithm : Algorithms()) {
    for (uint32_t threads : ThreadCounts()) {
      SolverOptions options;
      options.algorithm = algorithm;
      options.threads = threads;
      std::string label = std::string(core::AlgorithmName(algorithm)) + "/t" +
                          std::to_string(threads);
      ExpectSameOutcome(cold.Query(options), warm.Query(options), label);
    }
  }
}

TEST(SnapshotRoundTrip, LoadedEngineServesWarmFromFirstQuery) {
  std::string path = SaveWarmSnapshot("warmth.nsnap");
  auto loaded = Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Engine& engine = *loaded.value();

  EXPECT_EQ(engine.prepared().builds(), 0u);
  for (Algorithm algorithm : Algorithms()) {
    core::QueryRequest request;
    request.options.algorithm = algorithm;
    core::QueryResponse response = engine.Execute(request);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.warm) << core::AlgorithmName(algorithm);
  }
  // Restored artifacts ARE the warm state: nothing was rebuilt.
  EXPECT_EQ(engine.prepared().builds(), 0u);
  core::EngineStats stats = engine.StatsSnapshot();
  EXPECT_EQ(stats.cold_queries, 0u);
  EXPECT_EQ(stats.warm_queries, static_cast<uint64_t>(Algorithms().size()));
  EXPECT_EQ(stats.artifact_builds, 0u);
}

TEST(SnapshotRoundTrip, LoadStampsProvenance) {
  std::string path = SaveWarmSnapshot("provenance.nsnap");
  auto manifest = Inspect(path);
  ASSERT_TRUE(manifest.ok());
  auto loaded = Load(path);
  ASSERT_TRUE(loaded.ok());
  const auto& info = loaded.value()->snapshot_info();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->id, manifest.value().id);
  EXPECT_EQ(info->format_version, kFormatVersion);
  EXPECT_EQ(info->sections, manifest.value().sections.size());
  EXPECT_EQ(info->file_bytes, manifest.value().file_bytes);
  auto stats = loaded.value()->StatsSnapshot();
  ASSERT_TRUE(stats.snapshot.has_value());
  EXPECT_EQ(stats.snapshot->id, manifest.value().id);
}

TEST(SnapshotRoundTrip, ResaveOfLoadedEngineIsByteIdentical) {
  std::string path = SaveWarmSnapshot("resave_a.nsnap");
  auto loaded = Load(path);
  ASSERT_TRUE(loaded.ok());
  std::string path_b = TempPath("resave_b.nsnap");
  ASSERT_TRUE(Save(*loaded.value(), path_b).ok());
  EXPECT_EQ(ReadFile(path), ReadFile(path_b));
}

TEST(SnapshotRoundTrip, SavingTheSameStateTwiceIsByteIdentical) {
  Engine engine(TestGraph());
  WarmEngine(&engine);
  std::string a = TempPath("same_a.nsnap");
  std::string b = TempPath("same_b.nsnap");
  ASSERT_TRUE(Save(engine, a).ok());
  ASSERT_TRUE(Save(engine, b).ok());
  EXPECT_EQ(ReadFile(a), ReadFile(b));
}

TEST(SnapshotRoundTrip, ColdEngineSavesGraphOnly) {
  // No queries ran: only meta + graph are materialized, and the loaded
  // engine still works (it just builds artifacts on demand).
  Engine engine(TestGraph());
  std::string path = TempPath("cold.nsnap");
  ASSERT_TRUE(Save(engine, path).ok());
  auto manifest = Inspect(path);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().sections.size(), 2u);
  auto loaded = Load(path);
  ASSERT_TRUE(loaded.ok());
  Engine cold(TestGraph());
  ExpectSameOutcome(cold.Query(), loaded.value()->Query(), "cold-snapshot");
}

TEST(SnapshotInspect, ReportsEverySectionWithSizes) {
  std::string path = SaveWarmSnapshot("inspect.nsnap");
  auto manifest = Inspect(path);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  const Manifest& m = manifest.value();
  EXPECT_EQ(m.format_version, kFormatVersion);
  EXPECT_EQ(m.id.size(), 16u);
  EXPECT_EQ(m.file_bytes, ReadFile(path).size());
  ASSERT_GE(m.sections.size(), 6u);
  // Sections come back in canonical (id, aux) order with aligned payloads.
  for (size_t i = 0; i < m.sections.size(); ++i) {
    const SectionInfo& s = m.sections[i];
    EXPECT_EQ(s.offset % kAlignment, 0u) << s.name;
    EXPECT_GT(s.bytes, 0u) << s.name;
    if (i > 0) {
      const SectionInfo& prev = m.sections[i - 1];
      EXPECT_TRUE(prev.id < s.id || (prev.id == s.id && prev.aux < s.aux));
    }
  }
  EXPECT_EQ(m.sections.front().name, "meta");
  EXPECT_EQ(m.sections[1].name, "graph");
}

// ---------------------------------------------------------------------------
// Corruption corpus: every damage pattern fails closed, with a distinct
// message, through the canonical status table -- and Inspect() reports the
// same verdict Load() does.

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = SaveWarmSnapshot("corpus.nsnap");
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), kHeaderBytes);
  }

  // Writes `bytes` as a sibling snapshot and expects both Load and Inspect
  // to fail with `code` and a message containing `needle`.
  void ExpectFailsClosed(const std::string& bytes, util::StatusCode code,
                         const std::string& needle) {
    std::string path = TempPath("corrupt.nsnap");
    WriteFile(path, bytes);
    auto loaded = Load(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), code) << loaded.status().ToString();
    EXPECT_NE(loaded.status().message().find(needle), std::string::npos)
        << loaded.status().ToString();
    auto manifest = Inspect(path);
    ASSERT_FALSE(manifest.ok());
    EXPECT_EQ(manifest.status().code(), code);
    EXPECT_NE(manifest.status().message().find(needle), std::string::npos);
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruption, MissingFileIsNotFound) {
  auto loaded = Load(TempPath("does_not_exist.nsnap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST_F(SnapshotCorruption, TruncatedBelowHeader) {
  ExpectFailsClosed(bytes_.substr(0, 10), util::StatusCode::kIoError,
                    "smaller than the 64-byte header");
}

TEST_F(SnapshotCorruption, TruncatedMidSection) {
  ExpectFailsClosed(bytes_.substr(0, bytes_.size() - 100),
                    util::StatusCode::kIoError, "snapshot truncated");
}

TEST_F(SnapshotCorruption, WrongMagic) {
  std::string bytes = bytes_;
  bytes[0] ^= 0x01;
  ExpectFailsClosed(bytes, util::StatusCode::kInvalidArgument,
                    "not a nsky snapshot");
}

TEST_F(SnapshotCorruption, FutureFormatVersionIsRejected) {
  std::string bytes = bytes_;
  uint32_t future = kFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  // Keep the header checksum valid so the *version* check is what fires.
  uint32_t crc = util::Crc32(bytes.data(), 32);
  std::memcpy(bytes.data() + 32, &crc, sizeof(crc));
  ExpectFailsClosed(bytes, util::StatusCode::kInvalidArgument,
                    "is not supported by this build");
}

TEST_F(SnapshotCorruption, HeaderBitFlip) {
  std::string bytes = bytes_;
  bytes[16] ^= 0x40;  // file_bytes field; header CRC no longer matches
  ExpectFailsClosed(bytes, util::StatusCode::kIoError,
                    "header checksum mismatch");
}

TEST_F(SnapshotCorruption, SectionTableBitFlip) {
  std::string bytes = bytes_;
  bytes[kHeaderBytes + 4] ^= 0x01;  // inside the first table entry
  ExpectFailsClosed(bytes, util::StatusCode::kIoError,
                    "section table hash mismatch");
}

TEST_F(SnapshotCorruption, PayloadBitFlip) {
  auto manifest = Inspect(path_);
  ASSERT_TRUE(manifest.ok());
  std::string bytes = bytes_;
  // Flip one bit in the middle of the last section's payload.
  const SectionInfo& s = manifest.value().sections.back();
  bytes[s.offset + s.bytes / 2] ^= 0x10;
  ExpectFailsClosed(bytes, util::StatusCode::kIoError, "checksum mismatch");
}

TEST_F(SnapshotCorruption, EveryPayloadByteIsCovered) {
  // Sparse sweep: a bit flip anywhere in any payload must be caught.
  auto manifest = Inspect(path_);
  ASSERT_TRUE(manifest.ok());
  for (const SectionInfo& s : manifest.value().sections) {
    for (uint64_t at : {uint64_t{0}, s.bytes / 3, s.bytes - 1}) {
      std::string bytes = bytes_;
      bytes[s.offset + at] ^= 0x80;
      std::string path = TempPath("sweep.nsnap");
      WriteFile(path, bytes);
      EXPECT_FALSE(Load(path).ok()) << s.name << " byte " << at;
    }
  }
}

// ---------------------------------------------------------------------------
// Fault injection: the persist.* sites drive the same failure paths without
// touching the file.

class SnapshotFaults : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Disarm(); }
  void TearDown() override { util::FaultInjector::Disarm(); }
};

TEST_F(SnapshotFaults, ShortWriteFailsSave) {
  Engine engine(TestGraph());
  WarmEngine(&engine);
  ASSERT_TRUE(util::FaultInjector::ArmForTest("persist.short_write=1"));
  util::Status status = Save(engine, TempPath("fault_write.nsnap"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kIoError);
  EXPECT_NE(status.message().find("short write"), std::string::npos);
}

TEST_F(SnapshotFaults, ShortReadFailsLoad) {
  std::string path = SaveWarmSnapshot("fault_read.nsnap");
  ASSERT_TRUE(util::FaultInjector::ArmForTest("persist.short_read=1"));
  auto loaded = Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("short read"), std::string::npos);
}

TEST_F(SnapshotFaults, CorruptSectionFailsLoadAtNthSection) {
  std::string path = SaveWarmSnapshot("fault_corrupt.nsnap");
  ASSERT_TRUE(util::FaultInjector::ArmForTest("persist.corrupt_section=3"));
  auto loaded = Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos);
  // Disarmed again, the same file loads fine: the damage was injected.
  util::FaultInjector::Disarm();
  EXPECT_TRUE(Load(path).ok());
}

// ---------------------------------------------------------------------------
// Execution limits: Load honors the context like any other engine entry
// point.

TEST(SnapshotLimits, ByteBudgetTooSmallIsResourceExhausted) {
  std::string path = SaveWarmSnapshot("budget.nsnap");
  util::ExecutionContext ctx;
  ctx.set_byte_budget(1024);  // smaller than the file itself
  auto loaded = Load(path, ctx);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(SnapshotLimits, GenerousBudgetSucceeds) {
  std::string path = SaveWarmSnapshot("budget_ok.nsnap");
  util::ExecutionContext ctx;
  ctx.set_byte_budget(uint64_t{1} << 32);
  EXPECT_TRUE(Load(path, ctx).ok());
}

TEST(SnapshotLimits, ExpiredDeadlineIsDeadlineExceeded) {
  std::string path = SaveWarmSnapshot("deadline.nsnap");
  util::ExecutionContext ctx;
  ctx.set_deadline(util::ExecutionContext::Clock::now() -
                   std::chrono::milliseconds(1));
  auto loaded = Load(path, ctx);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kDeadlineExceeded);
}

TEST(SnapshotLimits, CancelledTokenIsCancelled) {
  std::string path = SaveWarmSnapshot("cancel.nsnap");
  util::CancelToken token;
  token.Cancel();
  util::ExecutionContext ctx;
  ctx.set_cancel_token(&token);
  auto loaded = Load(path, ctx);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kCancelled);
}

TEST(SnapshotIdHexTest, RendersSixteenLowercaseHexDigits) {
  EXPECT_EQ(SnapshotIdHex(0), "0000000000000000");
  EXPECT_EQ(SnapshotIdHex(0xDEADBEEF12345678ull), "deadbeef12345678");
}

}  // namespace
}  // namespace nsky::persist
