// Crash consistency of persist::Save's temp+fsync+rename protocol.
//
// The `persist.crash_at_byte=V` fault site simulates kill -9 / power loss
// after at most V bytes of the temp file: Save returns IoError without
// cleaning up, fsyncing or renaming. These tests sweep V across every
// region of the file (header, section table, payloads, past the end) and
// assert the invariants the protocol promises:
//   * the destination is bit-identical to the previous snapshot -- Inspect
//     passes, Load restores the pre-save state, and re-saving that state
//     reproduces the old file byte for byte;
//   * Inspect and Load always agree on the surviving temp file's verdict
//     (never inspect-accepts-but-load-rejects or vice versa);
//   * a crash after the full image leaves a complete, loadable temp.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "persist/snapshot.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace nsky::persist {
namespace {

using core::Engine;
using graph::Graph;

// Two distinct engine states, so the interrupted save writes genuinely
// different bytes than the snapshot it would replace.
Graph OldGraph() { return graph::MakeChungLuPowerLaw(300, 2.3, 5, 3); }
Graph NewGraph() { return graph::MakeChungLuPowerLaw(250, 2.2, 4, 11); }

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/nsky_crash_" +
         std::to_string(static_cast<long>(::getpid())) + "_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

bool FileExists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

class CrashConsistency : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::Disarm();
    old_engine_ = std::make_unique<Engine>(OldGraph());
    old_engine_->Query();
    new_engine_ = std::make_unique<Engine>(NewGraph());
    new_engine_->Query();
    core::SolverOptions base;
    base.algorithm = core::Algorithm::kBaseSky;
    new_engine_->Query(base);  // extra artifact: new image differs in shape
  }
  void TearDown() override { util::FaultInjector::Disarm(); }

  // The byte offsets the crash sweep probes, spanning every file region:
  // first byte, inside the 64-byte header, the header boundary, inside the
  // section table, inside payloads, and the last byte.
  static std::vector<uint64_t> SweepOffsets(uint64_t file_bytes) {
    std::vector<uint64_t> offsets = {1, 16, 63, 64, 65, 200, 1024};
    offsets.push_back(file_bytes / 2);
    offsets.push_back(file_bytes - 1);
    return offsets;
  }

  std::unique_ptr<Engine> old_engine_;
  std::unique_ptr<Engine> new_engine_;
};

TEST_F(CrashConsistency, KillMidSaveSweepNeverTearsDestination) {
  const std::string path = TempPath("sweep.nsnap");
  const std::string tmp = path + ".tmp";
  ASSERT_TRUE(Save(*old_engine_, path).ok());
  const std::string old_bytes = ReadFile(path);
  ASSERT_FALSE(old_bytes.empty());
  auto old_manifest = Inspect(path);
  ASSERT_TRUE(old_manifest.ok());
  const std::string old_id = old_manifest.value().id;

  // Size the sweep by the image the interrupted save would have written.
  const std::string probe = TempPath("sweep_probe.nsnap");
  ASSERT_TRUE(Save(*new_engine_, probe).ok());
  const uint64_t new_bytes = ReadFile(probe).size();
  ASSERT_GT(new_bytes, 64u);
  std::remove(probe.c_str());

  for (uint64_t v : SweepOffsets(new_bytes)) {
    SCOPED_TRACE("crash_at_byte=" + std::to_string(v));
    std::remove(tmp.c_str());
    ASSERT_TRUE(util::FaultInjector::ArmForTest("persist.crash_at_byte=" +
                                                std::to_string(v)));
    util::Status status = Save(*new_engine_, path);
    util::FaultInjector::Disarm();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), util::StatusCode::kIoError);
    EXPECT_NE(status.message().find("injected crash"), std::string::npos)
        << status.ToString();

    // The destination never changed: same bytes, same verdicts.
    EXPECT_EQ(ReadFile(path), old_bytes);
    auto manifest = Inspect(path);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    EXPECT_EQ(manifest.value().id, old_id);

    // The simulated crash leaves the partial temp behind (no cleanup ran,
    // exactly like a killed process). Whatever survived, the offline fsck
    // and the loader must agree about it.
    ASSERT_TRUE(FileExists(tmp));
    EXPECT_LE(ReadFile(tmp).size(), v);
    const bool inspect_ok = Inspect(tmp).ok();
    const bool load_ok = Load(tmp).ok();
    EXPECT_EQ(inspect_ok, load_ok)
        << "inspect and load disagree on the surviving temp file";
    // A temp truncated strictly inside the image can never pass: the
    // header's file_bytes field no longer matches.
    if (v < new_bytes) EXPECT_FALSE(inspect_ok);
  }
  std::remove(tmp.c_str());
  std::remove(path.c_str());
}

TEST_F(CrashConsistency, LoadAfterCrashYieldsPreSaveStateBitIdentically) {
  const std::string path = TempPath("presave.nsnap");
  ASSERT_TRUE(Save(*old_engine_, path).ok());
  const std::string old_bytes = ReadFile(path);

  ASSERT_TRUE(util::FaultInjector::ArmForTest("persist.crash_at_byte=100"));
  ASSERT_FALSE(Save(*new_engine_, path).ok());
  util::FaultInjector::Disarm();

  // The survivor restores, and re-saving the restored engine reproduces the
  // pre-crash file exactly (the format is canonical, so bit-identical bytes
  // mean bit-identical engine state).
  auto loaded = Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::string resaved = TempPath("presave_again.nsnap");
  ASSERT_TRUE(Save(*loaded.value(), resaved).ok());
  EXPECT_EQ(ReadFile(resaved), old_bytes);

  std::remove((path + ".tmp").c_str());
  std::remove(resaved.c_str());
  std::remove(path.c_str());
}

TEST_F(CrashConsistency, CrashAfterFullImageLeavesCompleteTemp) {
  const std::string path = TempPath("full.nsnap");
  const std::string tmp = path + ".tmp";
  ASSERT_TRUE(Save(*old_engine_, path).ok());
  const std::string old_bytes = ReadFile(path);

  // A crash between the last write and the rename: the temp is a complete,
  // valid snapshot, and the destination still holds the old one. Recovery
  // tooling may adopt either -- both load.
  ASSERT_TRUE(
      util::FaultInjector::ArmForTest("persist.crash_at_byte=1000000000"));
  ASSERT_FALSE(Save(*new_engine_, path).ok());
  util::FaultInjector::Disarm();

  EXPECT_EQ(ReadFile(path), old_bytes);
  auto tmp_manifest = Inspect(tmp);
  ASSERT_TRUE(tmp_manifest.ok()) << tmp_manifest.status().ToString();
  auto tmp_loaded = Load(tmp);
  ASSERT_TRUE(tmp_loaded.ok()) << tmp_loaded.status().ToString();
  EXPECT_EQ(tmp_loaded.value()->snapshot_info()->id, tmp_manifest.value().id);

  std::remove(tmp.c_str());
  std::remove(path.c_str());
}

TEST_F(CrashConsistency, CompletedSaveReplacesAtomicallyAndRemovesTemp) {
  const std::string path = TempPath("replace.nsnap");
  ASSERT_TRUE(Save(*old_engine_, path).ok());
  const std::string old_bytes = ReadFile(path);

  ASSERT_TRUE(Save(*new_engine_, path).ok());
  EXPECT_FALSE(FileExists(path + ".tmp"));
  const std::string new_bytes = ReadFile(path);
  EXPECT_NE(new_bytes, old_bytes);
  auto manifest = Inspect(path);
  ASSERT_TRUE(manifest.ok());
  EXPECT_TRUE(Load(path).ok());
  std::remove(path.c_str());
}

TEST_F(CrashConsistency, PeekSnapshotIdMatchesManifestAndFlipsOnResave) {
  const std::string path = TempPath("peek.nsnap");
  ASSERT_TRUE(Save(*old_engine_, path).ok());
  auto manifest = Inspect(path);
  ASSERT_TRUE(manifest.ok());
  auto peeked = PeekSnapshotId(path);
  ASSERT_TRUE(peeked.ok()) << peeked.status().ToString();
  EXPECT_EQ(peeked.value(), manifest.value().id);

  ASSERT_TRUE(Save(*new_engine_, path).ok());
  auto peeked_new = PeekSnapshotId(path);
  ASSERT_TRUE(peeked_new.ok());
  EXPECT_NE(peeked_new.value(), peeked.value());

  EXPECT_FALSE(PeekSnapshotId(path + ".does-not-exist").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nsky::persist
