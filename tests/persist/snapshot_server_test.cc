// Serving from a restored snapshot: the service built over persist::Load's
// engine answers /v1/skyline byte-identically to one built cold from the
// same graph, advertises the snapshot id on /healthz and /v1/engine_stats,
// and serves its first query warm.
#include <unistd.h>

#include <memory>
#include <regex>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "graph/generators.h"
#include "persist/snapshot.h"
#include "server/client.h"
#include "server/server.h"
#include "server/service.h"

namespace nsky::server {
namespace {

graph::Graph TestGraph() { return graph::MakeChungLuPowerLaw(300, 2.3, 5, 3); }

std::string NormalizeSeconds(const std::string& json) {
  static const std::regex kSeconds("\"seconds\":[0-9.eE+-]+");
  return std::regex_replace(json, kSeconds, "\"seconds\":X");
}

// A server over a caller-supplied engine, Serve() on a helper thread.
class EngineServer {
 public:
  explicit EngineServer(std::unique_ptr<core::Engine> engine) {
    service_ = std::make_unique<SkylineService>(std::move(engine),
                                                ServiceOptions{});
    server_ = std::make_unique<Server>(service_.get(), ServerOptions{});
    auto status = server_->Listen();
    EXPECT_TRUE(status.ok()) << status.ToString();
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  ~EngineServer() {
    server_->Shutdown();
    serve_thread_.join();
  }

  uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<SkylineService> service_;
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
};

// Saves a warm snapshot of TestGraph() and returns a loaded engine.
std::unique_ptr<core::Engine> LoadedEngine(const std::string& name) {
  core::Engine cold(TestGraph());
  cold.Query();  // warm the default algorithm's artifacts
  std::string path = ::testing::TempDir() + "/nsky_persist_srv_" +
                     std::to_string(static_cast<long>(::getpid())) + "_" + name;
  EXPECT_TRUE(persist::Save(cold, path).ok());
  auto loaded = persist::Load(path);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

TEST(SnapshotServer, HealthzAdvertisesSnapshotId) {
  auto engine = LoadedEngine("server_healthz.nsnap");
  std::string id = engine->snapshot_info()->id;
  EngineServer ts(std::move(engine));
  auto r = HttpGet(ts.port(), "/healthz");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 200);
  // First line stays "ok" (liveness probes keep working); the snapshot id
  // rides on its own line.
  EXPECT_EQ(r.value().body, "ok\nsnapshot " + id + "\n");
}

TEST(SnapshotServer, EngineStatsCarrySnapshotProvenance) {
  auto engine = LoadedEngine("server_stats.nsnap");
  std::string id = engine->snapshot_info()->id;
  EngineServer ts(std::move(engine));
  auto stats = HttpGet(ts.port(), "/v1/engine_stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().body.find("\"snapshot\":{\"id\":\"" + id + "\""),
            std::string::npos)
      << stats.value().body;
  auto prom = HttpGet(ts.port(), "/v1/metrics");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom.value().body.find("nsky_engine_snapshot_loaded{id=\"" + id),
            std::string::npos);
}

TEST(SnapshotServer, SkylineByteIdenticalToColdBuiltService) {
  EngineServer warm(LoadedEngine("server_parity.nsnap"));
  EngineServer cold(std::make_unique<core::Engine>(TestGraph()));
  for (const char* query :
       {"/v1/skyline", "/v1/skyline?algo=base&threads=2",
        "/v1/skyline?algo=2hop&threads=8"}) {
    auto a = HttpGet(warm.port(), query);
    auto b = HttpGet(cold.port(), query);
    ASSERT_TRUE(a.ok() && b.ok()) << query;
    EXPECT_EQ(a.value().status, 200) << query;
    EXPECT_EQ(NormalizeSeconds(a.value().body),
              NormalizeSeconds(b.value().body))
        << query;
  }
}

TEST(SnapshotServer, FirstQueryIsWarmAndRecorderCarriesOrigin) {
  auto engine = LoadedEngine("server_warm.nsnap");
  std::string id = engine->snapshot_info()->id;
  EngineServer ts(std::move(engine));
  auto r = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 200);
  auto stats = HttpGet(ts.port(), "/v1/engine_stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().body.find("\"warm_queries\":1"), std::string::npos)
      << stats.value().body;
  EXPECT_NE(stats.value().body.find("\"cold_queries\":0"), std::string::npos);
  auto queries = HttpGet(ts.port(), "/v1/queries");
  ASSERT_TRUE(queries.ok());
  EXPECT_NE(queries.value().body.find("\"origin\":\"snapshot:" + id + "\""),
            std::string::npos)
      << queries.value().body;
}

}  // namespace
}  // namespace nsky::server
