// End-to-end coverage of the `nsky snapshot` verbs and the --snapshot
// sources of `skyline`/`serve`, including the documented exit codes of the
// corruption corpus (tools/cli.h; format in persist/format.h).
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/format.h"
#include "tools/cli.h"
#include "util/crc32.h"

namespace nsky::tools {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun RunTool(std::vector<std::string> args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

// ctest runs each test as its own process, potentially in parallel; key the
// scratch files by pid so concurrent tests never race on a shared path.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/nsky_persist_cli_" +
         std::to_string(static_cast<long>(::getpid())) + "_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

constexpr char kSource[] = "er:500:0.02:11";

// Saves a snapshot of the standard test graph and returns its path.
std::string SaveSnapshot(const std::string& name) {
  std::string path = TempPath(name);
  CliRun r = RunTool(
      {"snapshot", "save", "--generate", kSource, "--output", path});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  return path;
}

// Drops the wall-clock "seconds" stat, the only nondeterministic field in
// the skyline document.
std::string StripSeconds(const std::string& doc) {
  size_t at = doc.find("\"seconds\":");
  if (at == std::string::npos) return doc;
  size_t end = doc.find_first_of(",}", at);
  return doc.substr(0, at) + doc.substr(end);
}

TEST(SnapshotCli, SaveInspectLoadSucceed) {
  std::string path = SaveSnapshot("cli_basic.nsnap");
  CliRun inspect = RunTool({"snapshot", "inspect", "--snapshot", path});
  EXPECT_EQ(inspect.exit_code, 0) << inspect.err;
  EXPECT_NE(inspect.out.find("graph"), std::string::npos);
  EXPECT_NE(inspect.out.find("format v1"), std::string::npos);
  CliRun load = RunTool({"snapshot", "load", "--snapshot", path});
  EXPECT_EQ(load.exit_code, 0) << load.err;
  EXPECT_NE(load.out.find("n=500"), std::string::npos);
}

TEST(SnapshotCli, InspectJsonIsStableSchema) {
  std::string path = SaveSnapshot("cli_json.nsnap");
  CliRun r = RunTool({"snapshot", "inspect", "--snapshot", path, "--json"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("\"schema\":\"nsky.snapshot.v1\""), std::string::npos);
  EXPECT_NE(r.out.find("\"action\":\"inspect\""), std::string::npos);
  EXPECT_NE(r.out.find("\"sections\":["), std::string::npos);
  EXPECT_NE(r.out.find("\"crc32\":"), std::string::npos);
}

TEST(SnapshotCli, SkylineFromSnapshotMatchesColdBuild) {
  std::string path = SaveSnapshot("cli_parity.nsnap");
  for (const char* algo : {"filter-refine", "base", "cset", "2hop"}) {
    for (const char* threads : {"1", "2", "8"}) {
      CliRun warm = RunTool({"skyline", "--snapshot", path, "--algo", algo,
                             "--threads", threads, "--json"});
      CliRun cold = RunTool({"skyline", "--generate", kSource, "--engine",
                             "--algo", algo, "--threads", threads, "--json"});
      ASSERT_EQ(warm.exit_code, 0) << warm.err;
      ASSERT_EQ(cold.exit_code, 0) << cold.err;
      EXPECT_EQ(StripSeconds(warm.out), StripSeconds(cold.out))
          << algo << "/t" << threads;
    }
  }
}

TEST(SnapshotCli, ResaveIsByteIdentical) {
  std::string a = SaveSnapshot("cli_resave_a.nsnap");
  std::string b = TempPath("cli_resave_b.nsnap");
  CliRun r =
      RunTool({"snapshot", "save", "--snapshot", a, "--output", b});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_EQ(ReadFile(a), ReadFile(b));
}

TEST(SnapshotCli, WarmNoneSavesGraphOnly) {
  std::string path = TempPath("cli_cold.nsnap");
  CliRun r = RunTool({"snapshot", "save", "--generate", kSource, "--warm",
                      "none", "--output", path});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  CliRun inspect = RunTool({"snapshot", "inspect", "--snapshot", path});
  EXPECT_NE(inspect.out.find("2 section(s)"), std::string::npos)
      << inspect.out;
}

TEST(SnapshotCli, WarmListRejectsUnknownAlgorithm) {
  CliRun r = RunTool({"snapshot", "save", "--generate", kSource, "--warm",
                      "frobnicate", "--output", TempPath("x.nsnap")});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown algorithm"), std::string::npos);
}

TEST(SnapshotCli, UsageErrors) {
  std::string path = SaveSnapshot("cli_usage.nsnap");
  // Missing required flags.
  EXPECT_EQ(RunTool({"snapshot", "save", "--generate", kSource}).exit_code, 2);
  EXPECT_EQ(RunTool({"snapshot", "load"}).exit_code, 2);
  EXPECT_EQ(RunTool({"snapshot", "inspect"}).exit_code, 2);
  // Unknown subcommand.
  CliRun bad = RunTool({"snapshot", "frobnicate"});
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.err.find("save, load or inspect"), std::string::npos);
  // --snapshot and a graph source are mutually exclusive for skyline.
  CliRun both = RunTool(
      {"skyline", "--snapshot", path, "--generate", kSource});
  EXPECT_EQ(both.exit_code, 2);
  EXPECT_NE(both.err.find("mutually exclusive"), std::string::npos);
  // --snapshot does not apply to commands that never serve from one.
  EXPECT_EQ(RunTool({"stats", "--snapshot", path}).exit_code, 2);
}

// The corruption corpus through the CLI: each damage class exits with its
// documented code and renders the nsky.error.v1 document under --json.
class SnapshotCliCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = SaveSnapshot("cli_corpus.nsnap");
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), persist::kHeaderBytes);
  }

  CliRun LoadDamaged(const std::string& bytes, bool json = false) {
    std::string path = TempPath("cli_corrupt.nsnap");
    WriteFile(path, bytes);
    std::vector<std::string> args = {"snapshot", "load", "--snapshot", path};
    if (json) args.push_back("--json");
    return RunTool(args);
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCliCorruption, TruncatedFileExitsIoError) {
  CliRun r = LoadDamaged(bytes_.substr(0, bytes_.size() - 64));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("truncated"), std::string::npos);
}

TEST_F(SnapshotCliCorruption, BitFlipExitsIoErrorWithJsonDocument) {
  std::string bytes = bytes_;
  bytes[bytes.size() - 10] ^= 0x20;
  CliRun r = LoadDamaged(bytes, /*json=*/true);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("\"schema\":\"nsky.error.v1\""), std::string::npos);
  EXPECT_NE(r.out.find("\"code\":\"IO_ERROR\""), std::string::npos);
  EXPECT_NE(r.out.find("checksum mismatch"), std::string::npos);
}

TEST_F(SnapshotCliCorruption, WrongMagicExitsUsage) {
  std::string bytes = bytes_;
  bytes[0] ^= 0x01;
  CliRun r = LoadDamaged(bytes);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("not a nsky snapshot"), std::string::npos);
}

TEST_F(SnapshotCliCorruption, FutureVersionExitsUsage) {
  std::string bytes = bytes_;
  uint32_t future = persist::kFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  uint32_t crc = util::Crc32(bytes.data(), 32);
  std::memcpy(bytes.data() + 32, &crc, sizeof(crc));
  CliRun r = LoadDamaged(bytes);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("not supported"), std::string::npos);
}

TEST_F(SnapshotCliCorruption, MissingFileExitsNotFound) {
  CliRun r = RunTool(
      {"snapshot", "load", "--snapshot", TempPath("missing.nsnap")});
  EXPECT_EQ(r.exit_code, 1);  // NOT_FOUND shares the runtime-error exit
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST_F(SnapshotCliCorruption, InspectReportsSameVerdictAsLoad) {
  std::string bytes = bytes_;
  bytes[bytes.size() - 1] ^= 0x01;
  std::string path = TempPath("cli_fsck.nsnap");
  WriteFile(path, bytes);
  CliRun inspect = RunTool({"snapshot", "inspect", "--snapshot", path});
  CliRun load = RunTool({"snapshot", "load", "--snapshot", path});
  EXPECT_EQ(inspect.exit_code, load.exit_code);
  EXPECT_EQ(inspect.exit_code, 1);
}

TEST(SnapshotCli, LoadHonorsMemoryBudget) {
  std::string path = SaveSnapshot("cli_budget.nsnap");
  CliRun r = RunTool(
      {"snapshot", "load", "--snapshot", path, "--max-memory-mb", "1"});
  // The snapshot above is well under 1 MB only if tiny; accept either
  // success or the documented budget exit, but never a crash exit.
  EXPECT_TRUE(r.exit_code == 0 || r.exit_code == 6) << r.err;
}

}  // namespace
}  // namespace nsky::tools
