// Cross-module property suite: the application-level guarantees (greedy
// score preservation, clique size preservation) hold across every graph
// family and seed, not just the stand-ins.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "centrality/greedy.h"
#include "clique/max_clique.h"
#include "clique/nei_sky_mc.h"
#include "clique/topk.h"
#include "core/solver.h"
#include "testing/fixtures.h"

namespace nsky {
namespace {

using nsky::testing::GraphCase;
using nsky::testing::GraphCaseName;
using nsky::testing::SmallGraphCases;

class ApplicationProperties : public ::testing::TestWithParam<GraphCase> {};

TEST_P(ApplicationProperties, GreedyClosenessScorePreservedBySkylinePruning) {
  for (uint64_t seed : {1ull, 5ull}) {
    graph::Graph g = GetParam().make(seed);
    if (g.NumVertices() < 8) continue;
    centrality::GreedyResult base = centrality::BaseGC(g, 4);
    centrality::GreedyResult pruned = centrality::NeiSkyGC(g, 4);
    EXPECT_NEAR(base.score, pruned.score, 1e-9 * std::max(1.0, base.score))
        << "seed " << seed;
    EXPECT_LE(pruned.pool_size, base.pool_size);
  }
}

TEST_P(ApplicationProperties, GreedyHarmonicScorePreservedBySkylinePruning) {
  for (uint64_t seed : {2ull, 7ull}) {
    graph::Graph g = GetParam().make(seed);
    if (g.NumVertices() < 8) continue;
    centrality::GreedyResult base = centrality::BaseGH(g, 4);
    centrality::GreedyResult pruned = centrality::NeiSkyGH(g, 4);
    EXPECT_NEAR(base.score, pruned.score, 1e-9 * std::max(1.0, base.score))
        << "seed " << seed;
  }
}

TEST_P(ApplicationProperties, LazyGreedyMatchesPlain) {
  graph::Graph g = GetParam().make(3);
  if (g.NumVertices() < 8) return;
  centrality::GreedyOptions plain, lazy;
  lazy.lazy = true;
  centrality::GreedyResult a = centrality::GreedyGroupMaximization(g, 4, plain);
  centrality::GreedyResult b = centrality::GreedyGroupMaximization(g, 4, lazy);
  EXPECT_NEAR(a.score, b.score, 1e-9 * std::max(1.0, a.score));
}

TEST_P(ApplicationProperties, MaxCliqueSizePreservedBySkylineSeeding) {
  for (uint64_t seed : {1ull, 4ull}) {
    graph::Graph g = GetParam().make(seed);
    clique::CliqueResult base = clique::MaxClique(g);
    clique::NeiSkyMcResult pruned = clique::NeiSkyMC(g);
    EXPECT_EQ(base.clique.size(), pruned.clique.clique.size())
        << "seed " << seed;
    EXPECT_TRUE(clique::IsClique(g, pruned.clique.clique));
  }
}

TEST_P(ApplicationProperties, TopkCliquesSizesPreserved) {
  graph::Graph g = GetParam().make(6);
  auto base = clique::BaseTopkMCC(g, 3);
  auto pruned = clique::NeiSkyTopkMCC(g, 3);
  ASSERT_EQ(base.cliques.size(), pruned.cliques.size());
  for (size_t i = 0; i < base.cliques.size(); ++i) {
    EXPECT_EQ(base.cliques[i].size(), pruned.cliques[i].size()) << i;
  }
}

TEST_P(ApplicationProperties, SkylineSeedsSufficeForAnyMaximumClique) {
  // Lemma 5's operative form on every family: the seeded search with *only*
  // skyline seeds and no incumbent still reaches the maximum size.
  graph::Graph g = GetParam().make(9);
  auto skyline = core::Solve(g).skyline;
  clique::CliqueResult via_skyline = clique::MaxCliqueSeeded(g, skyline);
  clique::CliqueResult base = clique::MaxClique(g);
  EXPECT_EQ(via_skyline.clique.size(), base.clique.size());
}

INSTANTIATE_TEST_SUITE_P(AllGraphFamilies, ApplicationProperties,
                         ::testing::ValuesIn(SmallGraphCases()),
                         GraphCaseName);

}  // namespace
}  // namespace nsky
