// End-to-end integration: the full pipelines the examples and benchmarks
// run, exercised at reduced scale on the stand-in datasets and the embedded
// case-study graphs.
#include <algorithm>

#include <gtest/gtest.h>

#include "centrality/greedy.h"
#include "centrality/group_centrality.h"
#include "clique/nei_sky_mc.h"
#include "clique/topk.h"
#include "core/nsky.h"
#include "datasets/bombing.h"
#include "datasets/karate.h"
#include "datasets/registry.h"
#include "graph/io.h"
#include "graph/sampling.h"
#include "setjoin/skyline_via_join.h"

namespace nsky {
namespace {

TEST(Pipeline, SkylineSolversAgreeOnStandinDataset) {
  graph::Graph g =
      datasets::MakeStandin("dblp", datasets::StandinScale::kSmall).value();
  core::SkylineResult fr = core::Solve(g);
  EXPECT_EQ(core::Solve(g, {.algorithm = core::Algorithm::kBaseSky}).skyline, fr.skyline);
  EXPECT_EQ(core::Solve(g, {.algorithm = core::Algorithm::kBaseCSet}).skyline, fr.skyline);
  EXPECT_EQ(setjoin::SkylineViaJoin(g).skyline, fr.skyline);
  // Power-law stand-in: skyline clearly below n (Exp-3's key observation).
  EXPECT_LT(fr.skyline.size(), g.NumVertices());
}

TEST(Pipeline, KarateCaseStudy) {
  // Fig. 13 reports 15 skyline vertices (44%) on Karate. Exact graph, so
  // the exact count is reproducible.
  graph::Graph g = datasets::MakeKarateClub();
  core::SkylineResult r = core::Solve(g);
  EXPECT_EQ(core::BruteForceSkyline(g).skyline, r.skyline);
  double ratio = static_cast<double>(r.skyline.size()) / g.NumVertices();
  EXPECT_GT(ratio, 0.25);
  EXPECT_LT(ratio, 0.65);
  // Low-degree vertices are the dominated ones: every dominated vertex has
  // degree <= its dominator's degree.
  for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
    if (r.dominator[u] != u) {
      EXPECT_LE(g.Degree(u), g.Degree(r.dominator[u]));
    }
  }
}

TEST(Pipeline, BombingCaseStudy) {
  graph::Graph g = datasets::MakeBombingSurrogate();
  core::SkylineResult r = core::Solve(g);
  EXPECT_EQ(core::BruteForceSkyline(g).skyline, r.skyline);
  // Fig. 13 reports ~31% on the original; the surrogate should also be
  // well below the vertex count.
  EXPECT_LT(r.skyline.size(), g.NumVertices() * 3 / 4);
  EXPECT_GT(r.skyline.size(), 4u);
}

TEST(Pipeline, GroupCentralityOnStandin) {
  graph::Graph g =
      datasets::MakeStandin("youtube", datasets::StandinScale::kSmall).value();
  centrality::GreedyResult base = centrality::BaseGC(g, 3);
  centrality::GreedyResult pruned = centrality::NeiSkyGC(g, 3);
  EXPECT_NEAR(base.score, pruned.score, 1e-9);
  EXPECT_LT(pruned.pool_size, base.pool_size);
  EXPECT_LT(pruned.gain_calls, base.gain_calls);
}

TEST(Pipeline, CliqueSearchOnStandin) {
  graph::Graph g =
      datasets::MakeStandin("orkut", datasets::StandinScale::kSmall).value();
  clique::NeiSkyMcResult pruned = clique::NeiSkyMC(g);
  clique::CliqueResult base = clique::MaxClique(g);
  EXPECT_EQ(pruned.clique.clique.size(), base.clique.size());
  EXPECT_TRUE(clique::IsClique(g, pruned.clique.clique));
}

TEST(Pipeline, TopkCliquesOnStandin) {
  graph::Graph g =
      datasets::MakeStandin("pokec", datasets::StandinScale::kSmall).value();
  auto base = clique::BaseTopkMCC(g, 3);
  auto pruned = clique::NeiSkyTopkMCC(g, 3);
  ASSERT_EQ(base.cliques.size(), pruned.cliques.size());
  for (size_t i = 0; i < base.cliques.size(); ++i) {
    EXPECT_EQ(base.cliques[i].size(), pruned.cliques[i].size());
  }
}

TEST(Pipeline, ScalabilitySamplersPreserveAgreement) {
  // Exp-7's subgraphs: solvers agree on sampled subgraphs too.
  graph::Graph g =
      datasets::MakeStandin("livejournal", datasets::StandinScale::kSmall)
          .value();
  for (double frac : {0.4, 0.8}) {
    graph::Graph by_n = graph::SampleVertices(g, frac, 1);
    graph::Graph by_rho = graph::SampleEdges(g, frac, 1);
    EXPECT_EQ(core::Solve(by_n, {.algorithm = core::Algorithm::kBaseSky}).skyline, core::Solve(by_n).skyline);
    EXPECT_EQ(core::Solve(by_rho, {.algorithm = core::Algorithm::kBaseSky}).skyline,
              core::Solve(by_rho).skyline);
  }
}

TEST(Pipeline, SaveLoadThenAnalyze) {
  graph::Graph g = datasets::MakeKarateClub();
  std::string path = ::testing::TempDir() + "/karate_roundtrip.txt";
  ASSERT_TRUE(graph::SaveEdgeList(g, path).ok());
  auto loaded = graph::LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumVertices(), g.NumVertices());
  EXPECT_EQ(loaded.value().NumEdges(), g.NumEdges());
  // The loader relabels by first appearance, which permutes ids; the
  // skyline *size* is relabeling-invariant (one survivor per mutual class).
  EXPECT_EQ(core::Solve(loaded.value()).skyline.size(),
            core::Solve(g).skyline.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nsky
