#include <algorithm>

#include <gtest/gtest.h>

#include "core/solver.h"
#include "datasets/bombing.h"
#include "datasets/karate.h"
#include "datasets/registry.h"
#include "graph/stats.h"

namespace nsky::datasets {
namespace {

TEST(Karate, CanonicalStatistics) {
  graph::Graph g = MakeKarateClub();
  EXPECT_EQ(g.NumVertices(), 34u);
  EXPECT_EQ(g.NumEdges(), 78u);
  // Instructor (0) and administrator (33) are the two hubs.
  EXPECT_EQ(g.Degree(0), 16u);
  EXPECT_EQ(g.Degree(33), 17u);
  EXPECT_EQ(g.MaxDegree(), 17u);
  // The network is connected.
  graph::GraphStats s = graph::ComputeStats(g);
  EXPECT_EQ(s.num_components, 1u);
}

TEST(Karate, KnownAdjacencies) {
  graph::Graph g = MakeKarateClub();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(32, 33));
  EXPECT_FALSE(g.HasEdge(0, 33));  // the two leaders are not directly linked
}

TEST(Bombing, SurrogateSizeContract) {
  graph::Graph g = MakeBombingSurrogate();
  EXPECT_EQ(g.NumVertices(), 64u);
  EXPECT_EQ(g.NumEdges(), 243u);
  graph::GraphStats s = graph::ComputeStats(g);
  EXPECT_EQ(s.num_components, 1u);
  // Heavy-tailed: hubs well above the ~7.6 average degree.
  EXPECT_GE(g.MaxDegree(), 15u);
  // Every suspect keeps at least one contact.
  for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
    EXPECT_GE(g.Degree(u), 1u);
  }
}

TEST(Bombing, Deterministic) {
  graph::Graph a = MakeBombingSurrogate();
  graph::Graph b = MakeBombingSurrogate();
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(Registry, AllStandinsListed) {
  const auto& all = AllStandins();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].name, "notredame");
  EXPECT_EQ(all[4].name, "dblp");
  for (const auto& spec : all) {
    EXPECT_GT(spec.full_n, spec.small_n);
    EXPECT_GT(spec.avg_degree, 0.0);
    EXPECT_GE(spec.pendant_fraction, 0.0);
    EXPECT_LT(spec.pendant_fraction, 1.0);
    EXPECT_GE(spec.triad_prob, 0.0);
    EXPECT_LE(spec.triad_prob, 1.0);
    EXPECT_GT(spec.paper_n, 0u);
  }
}

TEST(Registry, FindByName) {
  auto spec = FindStandin("wikitalk");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().paper_n, 2'394'385u);
  EXPECT_FALSE(FindStandin("no-such-dataset").ok());
}

TEST(Registry, MakeStandinScales) {
  auto full = MakeStandin("dblp", StandinScale::kFull);
  auto small = MakeStandin("dblp", StandinScale::kSmall);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(full.value().NumVertices(), FindStandin("dblp").value().full_n);
  EXPECT_EQ(small.value().NumVertices(), FindStandin("dblp").value().small_n);
  EXPECT_GT(full.value().NumEdges(), small.value().NumEdges());
}

TEST(Registry, StandinsAreDeterministic) {
  auto a = MakeStandin("youtube", StandinScale::kSmall);
  auto b = MakeStandin("youtube", StandinScale::kSmall);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().Edges(), b.value().Edges());
}

TEST(Registry, AverageDegreeTracksSpec) {
  // The duplication step adds edges on top of the attachment budget, so the
  // realized average sits somewhat above avg_degree but within range.
  for (const char* name : {"notredame", "flixster", "dblp"}) {
    auto spec = FindStandin(name).value();
    auto g = MakeStandin(name, StandinScale::kFull).value();
    double avg = 2.0 * static_cast<double>(g.NumEdges()) / g.NumVertices();
    EXPECT_GE(avg, spec.avg_degree * 0.9) << name;
    EXPECT_LE(avg, spec.avg_degree * 1.8) << name;
  }
}

TEST(Registry, SkylineRatioOrderingMatchesPaper) {
  // Fig. 5's key ordering: WikiTalk is by far the most dominated dataset,
  // DBLP the least. The stand-ins preserve that ordering.
  auto ratio = [](const char* name) {
    auto g = MakeStandin(name, StandinScale::kFull).value();
    return static_cast<double>(core::Solve(g).skyline.size()) /
           g.NumVertices();
  };
  double wikitalk = ratio("wikitalk");
  double dblp = ratio("dblp");
  EXPECT_LT(wikitalk, dblp);
  EXPECT_LT(wikitalk, 0.45);
  EXPECT_LT(dblp, 0.75);
}

}  // namespace
}  // namespace nsky::datasets
