#include "util/memory.h"

#include <vector>

#include <gtest/gtest.h>

namespace nsky::util {
namespace {

TEST(MemoryTally, TracksLiveAndPeak) {
  MemoryTally t;
  EXPECT_EQ(t.live_bytes(), 0u);
  t.Add(100);
  t.Add(50);
  EXPECT_EQ(t.live_bytes(), 150u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.Release(120);
  EXPECT_EQ(t.live_bytes(), 30u);
  EXPECT_EQ(t.peak_bytes(), 150u);  // peak is sticky
  t.Add(10);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.Add(200);
  EXPECT_EQ(t.peak_bytes(), 240u);
}

TEST(MemoryTally, ReleaseClampsAtZero) {
  MemoryTally t;
  t.Add(10);
  t.Release(100);
  EXPECT_EQ(t.live_bytes(), 0u);
}

TEST(MemoryTally, AddContainerUsesCapacity) {
  MemoryTally t;
  std::vector<uint32_t> v;
  v.reserve(100);
  t.AddContainer(v);
  EXPECT_EQ(t.live_bytes(), 400u);
}

TEST(ProcessMemory, ReportsPlausibleRss) {
  uint64_t rss = ProcessCurrentRssBytes();
  uint64_t peak = ProcessPeakRssBytes();
  // On Linux both must be nonzero and peak >= current.
  ASSERT_GT(rss, 0u);
  ASSERT_GT(peak, 0u);
  EXPECT_GE(peak, rss / 2);  // tolerate accounting jitter
  EXPECT_LT(rss, 64ull << 30);
}

TEST(ProcessMemory, PeakGrowsWithAllocation) {
  uint64_t before = ProcessPeakRssBytes();
  {
    std::vector<char> big(64 << 20, 1);
    // Touch so the pages are really committed.
    volatile char sink = big[13] + big[big.size() - 1];
    (void)sink;
  }
  uint64_t after = ProcessPeakRssBytes();
  EXPECT_GE(after, before + (32 << 20));
}

}  // namespace
}  // namespace nsky::util
